// Package seq provides the sequential (non-transactional) executor used as
// the speed-up denominator for the STAMP and EigenBench figures, exactly as
// the paper normalizes those plots to "sequential execution".
package seq

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// System runs bodies directly against memory with no synchronization at
// all. It must only ever be driven by a single goroutine.
type System struct {
	m     *mem.Memory
	stats tm.Stats
}

// New creates a sequential executor over m. The memory must not have an HTM
// engine observer attached (sequential runs use their own pristine memory).
func New(m *mem.Memory) *System { return &System{m: m} }

// Name implements tm.System.
func (s *System) Name() string { return "Sequential" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

type tx struct {
	s      *System
	thread int
}

var _ tm.Tx = (*tx)(nil)

func (x *tx) Thread() int                     { return x.thread }
func (x *tx) Pause()                          {}
func (x *tx) Read(a mem.Addr) uint64          { return x.s.m.Load(a) }
func (x *tx) Write(a mem.Addr, v uint64)      { x.s.m.Store(a, v) }
func (x *tx) WriteLocal(a mem.Addr, v uint64) { x.s.m.Store(a, v) }
func (x *tx) Work(c int64)                    { tm.Spin(c) }
func (x *tx) NonTxWork(c int64)               { tm.Spin(c) }

// Atomic implements tm.System: the body runs once, directly.
func (s *System) Atomic(thread int, body func(tm.Tx)) {
	body(&tx{s: s, thread: thread})
	s.stats.Shard(thread).CommitsSW.Inc()
}
