package seq

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tm"
)

func TestDirectExecution(t *testing.T) {
	s := New(mem.New(1 << 12))
	a := s.Memory().Alloc(2)
	s.Atomic(0, func(x tm.Tx) {
		x.Write(a, 4)
		x.Write(a+1, x.Read(a)*2)
		x.Pause()
		x.Work(5)
		x.NonTxWork(5)
	})
	if s.Memory().Load(a) != 4 || s.Memory().Load(a+1) != 8 {
		t.Fatal("sequential execution wrong")
	}
	if st := s.Stats().Snapshot(); st.Commits() != 1 {
		t.Fatalf("commits = %d", st.Commits())
	}
	if s.Name() != "Sequential" {
		t.Fatalf("Name = %q", s.Name())
	}
}
