package hle

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

func newEngine(mut func(*htm.Config)) *htm.Engine {
	cfg := htm.DefaultConfig()
	cfg.Quantum = 0
	cfg.ReadEvictProb = 0
	if mut != nil {
		mut(&cfg)
	}
	return htm.New(mem.New(1<<18), cfg)
}

func TestElisionForSmallSections(t *testing.T) {
	eng := newEngine(nil)
	l := New(eng)
	a := eng.Memory().Alloc(1)
	for i := 0; i < 50; i++ {
		l.Critical(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	if got := eng.Memory().Load(a); got != 50 {
		t.Fatalf("counter = %d", got)
	}
	if l.Elisions.Load() != 50 || l.Acquisitions.Load() != 0 {
		t.Fatalf("elisions=%d acquisitions=%d", l.Elisions.Load(), l.Acquisitions.Load())
	}
}

func TestAcquisitionForOversizedSections(t *testing.T) {
	eng := newEngine(func(c *htm.Config) {
		c.WriteLines = 2
		c.WriteWays = 64
		c.WriteSets = 1
	})
	l := New(eng)
	base := eng.Memory().AllocLines(4)
	l.Critical(0, func(x tm.Tx) {
		for i := 0; i < 4; i++ {
			x.Write(base+mem.Addr(i*mem.LineWords), 9)
		}
	})
	if l.Acquisitions.Load() != 1 {
		t.Fatalf("oversized section did not acquire the lock: elisions=%d acquisitions=%d",
			l.Elisions.Load(), l.Acquisitions.Load())
	}
	for i := 0; i < 4; i++ {
		if got := eng.Memory().Load(base + mem.Addr(i*mem.LineWords)); got != 9 {
			t.Fatalf("line %d = %d", i, got)
		}
	}
}

func TestElisionConcurrentCounter(t *testing.T) {
	eng := newEngine(nil)
	l := New(eng)
	a := eng.Memory().Alloc(1)
	var wg sync.WaitGroup
	const per = 300
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Critical(id, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
			}
		}(w)
	}
	wg.Wait()
	if got := eng.Memory().Load(a); got != 4*per {
		t.Fatalf("counter = %d, want %d", got, 4*per)
	}
}

func TestPartHTMLockAvoidsSerialization(t *testing.T) {
	eng := newEngine(func(c *htm.Config) {
		c.WriteLines = 4
		c.WriteWays = 64
		c.WriteSets = 1
	})
	part := core.New(eng, 4, core.DefaultConfig())
	l := NewPartHTM(part)
	m := eng.Memory()
	base := m.AllocLines(12)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				l.Critical(id, func(x tm.Tx) {
					v := x.Read(base)
					for k := 0; k < 12; k++ {
						x.Write(base+mem.Addr(k*mem.LineWords), v+1)
						if k%3 == 2 {
							x.Pause()
						}
					}
				})
			}
		}(w)
	}
	wg.Wait()
	st := part.Stats().Snapshot()
	if st.CommitsSW == 0 {
		t.Fatalf("oversized critical sections never partitioned: %+v", st)
	}
	if st.CommitsGL > st.Commits()/4 {
		t.Fatalf("too many global-lock commits: %+v", st)
	}
	v := m.Load(base)
	for k := 1; k < 12; k++ {
		if got := m.Load(base + mem.Addr(k*mem.LineWords)); got != v {
			t.Fatalf("line %d = %d, want %d (atomicity broken)", k, got, v)
		}
	}
}

func TestWorkloadPanicPropagatesFromElision(t *testing.T) {
	eng := newEngine(nil)
	l := New(eng)
	a := eng.Memory().Alloc(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic lost")
			}
		}()
		l.Critical(0, func(x tm.Tx) { panic("bug") })
	}()
	// The engine slot must still be usable.
	l.Critical(0, func(x tm.Tx) { x.Write(a, 1) })
	if eng.Memory().Load(a) != 1 {
		t.Fatal("lock unusable after panic")
	}
}
