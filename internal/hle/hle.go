// Package hle implements Hardware Lock Elision on the simulated HTM, plus
// the extension the paper describes in §2: "applying Part-HTM to HLE's
// first speculative trial before the lock acquisition is a simple
// extension".
//
// A classic ElidedLock executes the critical section as a hardware
// transaction that subscribes to the lock word; any abort acquires the
// real lock. A PartHTMLock instead routes the critical section through a
// Part-HTM system — so a section that is merely too big or too long for
// the hardware still runs concurrently as a partitioned transaction, and
// only Part-HTM's slow path ever serializes everything.
//
// Locks are domain-oblivious: an elided critical section's addresses take
// domain-0 semantics (the single-domain topology of internal/domain)
// unless the section runs through a PartHTMLock whose backing Part-HTM
// system was configured with sharded domains — routing is then that
// system's concern, invisible to the lock.
package hle

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

const codeLocked uint8 = 1

// ElidedLock is a mutual-exclusion lock whose critical sections are
// speculated in hardware: the classic HLE discipline of one hardware trial
// subscribed to the lock word, then acquiring the word for real. The zero
// value is not usable; create instances with New.
type ElidedLock struct {
	eng  *htm.Engine
	m    *mem.Memory
	word mem.Addr

	stats tm.Stats
	run   *exec.Runner

	// Elisions / Acquisitions count how critical sections completed:
	// speculated in hardware or under the real lock.
	Elisions     atomic.Uint64
	Acquisitions atomic.Uint64
}

// New creates an elided lock on the engine's memory.
func New(eng *htm.Engine) *ElidedLock {
	l := &ElidedLock{
		eng:  eng,
		m:    eng.Memory(),
		word: eng.Memory().AllocLines(1),
	}
	// One speculative trial gated on the lock word, then the real lock:
	// the HLE hardware discipline as an exec policy.
	l.run = exec.New(exec.Policy{FastAttempts: 1},
		&l.stats, func() bool { return l.m.Load(l.word) == 0 })
	return l
}

// Stats returns the lock's commit/abort counters (elisions count as
// hardware commits, real acquisitions as global-lock commits).
func (l *ElidedLock) Stats() *tm.Stats { return &l.stats }

// SetTrace attaches a trace sink to the execution kernel (nil detaches).
// Attach before starting workers.
func (l *ElidedLock) SetTrace(sink *trace.Sink) { l.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (l *ElidedLock) SetGovernor(g *governor.Governor) { l.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches): the
// engine records conflict lines, capacity overflows, and elision-window
// footprints; the kernel registers as the time-series source. Attach
// before starting workers.
func (l *ElidedLock) SetProfile(p *prof.Profile) {
	l.run.SetProfile(p)
	l.eng.SetProfile(p)
}

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (l *ElidedLock) BumpPressure(n int64) { l.run.BumpPressure(n) }

// Degraded reports whether the kernel is currently in degraded serialized
// mode (observability and tests).
func (l *ElidedLock) Degraded() bool { return l.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (l *ElidedLock) Pressure() int64 { return l.run.Pressure() }

// PartHTMLock is the paper's §2 extension: a lock-shaped API whose critical
// sections run through Part-HTM. The speculative trial is Part-HTM's
// (instrumented) fast path — a raw elided transaction would bypass the
// write-locks signature and could observe a partitioned transaction's
// non-visible locations — and a trial that fails for resources becomes a
// partitioned transaction instead of serializing behind the lock. Only
// Part-HTM's own slow path ever excludes everything.
type PartHTMLock struct {
	part *core.System
}

// NewPartHTM creates the Part-HTM-backed elided lock.
func NewPartHTM(part *core.System) *PartHTMLock {
	return &PartHTMLock{part: part}
}

// Critical runs body as one atomic critical section; the commit-path
// breakdown is available from the underlying system's Stats.
func (l *PartHTMLock) Critical(thread int, body func(x tm.Tx)) {
	l.part.Atomic(thread, body)
}

// Critical runs body with the atomicity and mutual-exclusion guarantees of
// a lock-protected critical section, eliding the lock when possible.
// thread identifies the hardware context, as in tm.System.Atomic. The exec
// kernel drives the schedule: one speculative trial (with lemming
// avoidance on the lock word), then the real lock.
func (l *ElidedLock) Critical(thread int, body func(x tm.Tx)) {
	txn := exec.Txn{
		// Kernel dispatch: the elided section runs the caller's critical-
		// section body, unbounded at this site; an oversized section
		// capacity-aborts into the real lock, which is exactly HLE.
		// parthtm:bigtx — dispatch wrapper, bounded at the workload site
		Fast:          func() htm.Result { return l.elideAttempt(thread, body) },
		FastCommitted: func() { l.Elisions.Add(1) },
		Slow:          func() { l.lockedSection(thread, body) },
	}
	l.run.Run(thread, &txn)
}

// lockedSection acquires the lock word for real (classic HLE fallback).
func (l *ElidedLock) lockedSection(thread int, body func(x tm.Tx)) {
	for !l.m.CAS(l.word, 0, 1) {
		runtime.Gosched()
	}
	start := time.Now()
	body(&lockedTx{l: l, thread: thread})
	l.m.Store(l.word, 0)
	l.stats.Shard(thread).AddSerial(time.Since(start))
	l.Acquisitions.Add(1)
}

// elideAttempt runs body as one hardware transaction subscribed to the lock
// word.
func (l *ElidedLock) elideAttempt(thread int, body func(x tm.Tx)) (res htm.Result) {
	defer func() {
		r := recover()
		if ar, isAbort := htm.AsAbort(r); isAbort {
			res = ar
			return
		}
		if r != nil {
			panic(r)
		}
	}()
	// Allocate the Tx view before the window opens: on real hardware a
	// heap allocation inside the transaction drags allocator metadata
	// lines into the footprint (enforced by parthtm-vet's htmregion).
	x := &elidedTx{l: l, thread: thread}
	ht := l.eng.Begin(thread)
	x.ht = ht
	if ht.Read(l.word) != 0 {
		ht.Abort(codeLocked)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := htm.AsAbort(r); !isAbort {
					ht.Cancel() // workload panic: tear down, re-raise
				}
				panic(r)
			}
		}()
		body(x)
	}()
	ht.Commit()
	return htm.Result{Committed: true}
}

// elidedTx is the tm.Tx view of a speculated critical section.
type elidedTx struct {
	l      *ElidedLock
	ht     *htm.Txn
	thread int
}

var _ tm.Tx = (*elidedTx)(nil)

func (x *elidedTx) Thread() int                     { return x.thread }
func (x *elidedTx) Pause()                          {}
func (x *elidedTx) Read(a mem.Addr) uint64          { return x.ht.Read(a) }
func (x *elidedTx) Write(a mem.Addr, v uint64)      { x.ht.Write(a, v) }
func (x *elidedTx) WriteLocal(a mem.Addr, v uint64) { x.ht.WriteLocal(a, v) }
func (x *elidedTx) Work(c int64)                    { x.ht.Work(c); tm.Spin(c) }
func (x *elidedTx) NonTxWork(c int64)               { x.ht.Work(c); tm.Spin(c) }

// lockedTx is the tm.Tx view of a critical section under the acquired lock.
type lockedTx struct {
	l      *ElidedLock
	thread int
}

var _ tm.Tx = (*lockedTx)(nil)

func (x *lockedTx) Thread() int                     { return x.thread }
func (x *lockedTx) Pause()                          {}
func (x *lockedTx) Read(a mem.Addr) uint64          { return x.l.m.Load(a) }
func (x *lockedTx) Write(a mem.Addr, v uint64)      { x.l.m.Store(a, v) }
func (x *lockedTx) WriteLocal(a mem.Addr, v uint64) { x.l.m.Store(a, v) }
func (x *lockedTx) Work(c int64)                    { tm.Spin(c) }
func (x *lockedTx) NonTxWork(c int64)               { tm.Spin(c) }
