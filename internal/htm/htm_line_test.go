package htm

import (
	"sync"
	"testing"

	"repro/internal/mem"
)

func TestReadLineRoundTrip(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	base := m.AllocLines(1)
	for i := 0; i < mem.LineWords; i++ {
		m.Store(base+mem.Addr(i), uint64(100+i))
	}
	res := e.Execute(0, func(tx *Txn) {
		var out [mem.LineWords]uint64
		tx.ReadLine(base, &out)
		for i, v := range out {
			if v != uint64(100+i) {
				t.Errorf("word %d = %d", i, v)
			}
		}
	})
	if !res.Committed {
		t.Fatalf("abort: %+v", res)
	}
}

func TestReadLineUnalignedPanics(t *testing.T) {
	e := newTestEngine(1024, nil)
	base := e.Memory().AllocLines(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Execute(0, func(tx *Txn) {
		var out [mem.LineWords]uint64
		tx.ReadLine(base+1, &out)
	})
}

func TestWriteLinePublishesAtomically(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	base := m.AllocLines(1)
	var vals [mem.LineWords]uint64
	for i := range vals {
		vals[i] = uint64(i) * 7
	}
	res := e.Execute(0, func(tx *Txn) {
		tx.WriteLine(base, &vals)
		// Read-back through the line buffer.
		if got := tx.Read(base + 3); got != 21 {
			t.Errorf("read-own-line-write = %d, want 21", got)
		}
		var out [mem.LineWords]uint64
		tx.ReadLine(base, &out)
		if out != vals {
			t.Error("ReadLine after WriteLine mismatch")
		}
	})
	if !res.Committed {
		t.Fatalf("abort: %+v", res)
	}
	for i := range vals {
		if got := m.Load(base + mem.Addr(i)); got != vals[i] {
			t.Fatalf("word %d = %d after commit", i, got)
		}
	}
}

func TestWriteLineDiscardedOnAbort(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	base := m.AllocLines(1)
	m.Store(base, 5)
	var vals [mem.LineWords]uint64
	vals[0] = 99
	res := e.Execute(0, func(tx *Txn) {
		tx.WriteLine(base, &vals)
		tx.Abort(1)
	})
	if res.Committed {
		t.Fatal("expected abort")
	}
	if got := m.Load(base); got != 5 {
		t.Fatalf("aborted WriteLine leaked: %d", got)
	}
}

func TestWriteLineConflictsLikeWrite(t *testing.T) {
	e := newTestEngine(1024, nil)
	base := e.Memory().AllocLines(1)
	r1, r2 := runConflict(e,
		func(tx *Txn, sync1 chan struct{}) {
			tx.Read(base)
			close(sync1)
			for !tx.Doomed() {
			}
			tx.Work(1)
		},
		func(tx *Txn, sync1 chan struct{}) {
			<-sync1
			var vals [mem.LineWords]uint64
			tx.WriteLine(base, &vals)
		},
	)
	if r1.Committed || !r2.Committed {
		t.Fatalf("WriteLine did not doom the reader: %+v %+v", r1, r2)
	}
}

func TestWriteLineCountsCapacity(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.WriteLines = 2
		c.WriteWays = 64
		c.WriteSets = 1
	})
	base := e.Memory().AllocLines(4)
	var vals [mem.LineWords]uint64
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 3; i++ {
			tx.WriteLine(base+mem.Addr(i*mem.LineWords), &vals)
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want capacity abort, got %+v", res)
	}
}

func TestWriteLocalVisibleAndCheap(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.AllocLines(1)
	res := e.Execute(0, func(tx *Txn) {
		tx.WriteLocal(a, 42)
		// Local writes are applied in place immediately.
		if got := m.Load(a); got != 42 {
			t.Errorf("local write not in place: %d", got)
		}
		if got := tx.Read(a); got != 42 {
			t.Errorf("transactional read of local write = %d", got)
		}
	})
	if !res.Committed {
		t.Fatalf("abort: %+v", res)
	}
}

func TestWriteLocalCountsCapacity(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.WriteLines = 2
		c.WriteWays = 64
		c.WriteSets = 1
	})
	base := e.Memory().AllocLines(4)
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 3; i++ {
			tx.WriteLocal(base+mem.Addr(i*mem.LineWords), 1)
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want capacity abort, got %+v", res)
	}
}

func TestWriteLocalSurvivesAbortByContract(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.AllocLines(1)
	res := e.Execute(0, func(tx *Txn) {
		tx.WriteLocal(a, 7)
		tx.Abort(1)
	})
	if res.Committed {
		t.Fatal("expected abort")
	}
	// The contract: post-abort value of a local write is unspecified; this
	// implementation stores in place, so the value persists.
	if got := m.Load(a); got != 7 {
		t.Fatalf("local write = %d", got)
	}
}

func TestTxnRecyclingIsClean(t *testing.T) {
	e := newTestEngine(1<<14, nil)
	m := e.Memory()
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	// First transaction writes a and aborts; second must not inherit any
	// buffered state.
	e.Execute(0, func(tx *Txn) {
		tx.Write(a, 111)
		tx.WriteLocal(b, 5)
		tx.Abort(1)
	})
	res := e.Execute(0, func(tx *Txn) {
		if got := tx.Read(a); got != 0 {
			t.Errorf("recycled txn sees stale buffered write: %d", got)
		}
		tx.Write(a, 1)
	})
	if !res.Committed {
		t.Fatalf("abort: %+v", res)
	}
	if got := m.Load(a); got != 1 {
		t.Fatalf("a = %d", got)
	}
}

func TestBeginCommitHandleAPI(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	func() {
		defer func() {
			if _, ok := Recover(recover()); ok {
				t.Fatal("unexpected abort")
			}
		}()
		tx := e.Begin(0)
		tx.Write(a, 9)
		tx.Commit()
	}()
	if got := m.Load(a); got != 9 {
		t.Fatalf("a = %d", got)
	}
	// Cancel discards.
	tx := e.Begin(0)
	tx.Write(a, 100)
	tx.Cancel()
	if got := m.Load(a); got != 9 {
		t.Fatalf("a = %d after Cancel", got)
	}
	// The slot is reusable after Cancel.
	res := e.Execute(0, func(tx *Txn) { tx.Write(a, 10) })
	if !res.Committed || m.Load(a) != 10 {
		t.Fatal("slot unusable after Cancel")
	}
}

func TestAsAbortDoesNotReraise(t *testing.T) {
	if _, ok := AsAbort("not an abort"); ok {
		t.Fatal("AsAbort accepted a non-abort")
	}
	if _, ok := AsAbort(nil); ok {
		t.Fatal("AsAbort accepted nil")
	}
}

func TestConcurrentRecyclingStress(t *testing.T) {
	e := newTestEngine(1<<14, nil)
	m := e.Memory()
	a := m.AllocLines(1)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				for {
					res := e.Execute(slot, func(tx *Txn) {
						tx.Write(a, tx.Read(a)+1)
					})
					if res.Committed {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Load(a); got != 2400 {
		t.Fatalf("counter = %d, want 2400", got)
	}
}
