// Package htm simulates an Intel TSX-style best-effort hardware
// transactional memory over a simulated memory (internal/mem).
//
// The engine reproduces the behaviours the Part-HTM paper depends on:
//
//   - Eager conflict detection at cache-line granularity. The requesting
//     core wins: an access that conflicts with another running transaction
//     dooms that transaction (as a cache-coherence invalidation would).
//   - Buffered (invisible until commit) writes, published atomically.
//   - Write-set capacity bounded by an L1-like set-associative cache model:
//     a transaction aborts with Capacity when its distinct written lines
//     exceed the total budget or any cache set's associativity.
//   - Read-set soft capacity: reads beyond the L1 spill into L2 and survive;
//     beyond the soft budget each extra line risks eviction with a
//     probability that grows with the number of concurrently running
//     hardware transactions (shared-cache pressure), and a hard budget
//     deterministically aborts.
//   - Time limitation: every transactional operation advances a cycle
//     clock; exceeding the quantum aborts with Other (the timer interrupt
//     that unconditionally kills long transactions on real hardware).
//   - Explicit aborts with an 8-bit user code (the _xabort immediate).
//   - Strong atomicity: non-transactional accesses through mem.Memory abort
//     conflicting hardware transactions (the engine is the memory's
//     Observer).
//
// A transaction body runs inside Engine.Execute; transactional operations
// panic with an internal sentinel when the transaction aborts, and Execute
// converts that into a Result, mirroring how control returns to _xbegin
// with an abort code on real hardware.
package htm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/prof"
)

// AbortReason classifies why a hardware transaction aborted, matching the
// categories of Intel TSX status codes used throughout the paper.
type AbortReason uint8

const (
	// NoAbort means the transaction committed.
	NoAbort AbortReason = iota
	// Conflict: another thread accessed a monitored cache line.
	Conflict
	// Capacity: the transactional footprint exceeded the cache resources.
	Capacity
	// Explicit: the program executed Abort (i.e. _xabort).
	Explicit
	// Other: any other hardware event — here, the timer-interrupt model.
	Other
)

// String returns the lower-case name of the reason.
func (r AbortReason) String() string {
	switch r {
	case NoAbort:
		return "none"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Explicit:
		return "explicit"
	case Other:
		return "other"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Result is what Execute reports back, standing in for the _xbegin status.
type Result struct {
	Committed bool
	Reason    AbortReason
	Code      uint8 // user code for Explicit aborts
	Injected  bool  // the abort was forced by the fault injector
}

// Config describes the hardware resource model.
type Config struct {
	// WriteSets and WriteWays model the L1 data cache used as the write
	// buffer: a line maps to set (line mod WriteSets) and at most WriteWays
	// distinct written lines fit per set. Defaults model a 32 KB 8-way L1:
	// 64 sets x 8 ways = 512 lines.
	WriteSets int
	WriteWays int
	// WriteLines caps the total number of distinct written lines.
	WriteLines int

	// ReadLinesSoft is the read-set size (in lines) that always fits (the
	// L2-backed budget). ReadLinesHard is the deterministic maximum.
	ReadLinesSoft int
	ReadLinesHard int
	// ReadEvictProb is the per-line probability, for each read line beyond
	// ReadLinesSoft, of a capacity abort, multiplied by the number of
	// concurrently running hardware transactions beyond ReadFreeThreads
	// (shared last-level-cache pressure).
	ReadEvictProb   float64
	ReadFreeThreads int

	// Quantum is the cycle budget before a timer interrupt aborts the
	// transaction (AbortReason Other). Zero disables time aborts.
	Quantum int64
	// ReadCost/WriteCost are the cycles charged per transactional
	// operation; Txn.Work charges arbitrary extra cycles.
	ReadCost  int64
	WriteCost int64

	// MaxSlots is the maximum number of concurrent hardware contexts
	// (threads). At most 64.
	MaxSlots int

	// Seed seeds the per-slot random generators used by the probabilistic
	// read-eviction model.
	Seed int64
}

// DefaultConfig returns the resource model used throughout the evaluation:
// a 32 KB 8-way L1 write buffer, a 256 KB L2 read budget, and a 150k-cycle
// timer quantum.
func DefaultConfig() Config {
	return Config{
		WriteSets:       64,
		WriteWays:       8,
		WriteLines:      512,
		ReadLinesSoft:   4096,
		ReadLinesHard:   65536,
		ReadEvictProb:   1e-4,
		ReadFreeThreads: 8,
		Quantum:         150_000,
		ReadCost:        1,
		WriteCost:       2,
		MaxSlots:        64,
		Seed:            1,
	}
}

// Oversubscribed returns a copy of the configuration with the cache budgets
// halved, modelling two hyper-threads sharing one core's L1/L2.
func (c Config) Oversubscribed() Config {
	c.WriteWays = max(1, c.WriteWays/2)
	c.WriteLines = max(1, c.WriteLines/2)
	c.ReadLinesSoft = max(1, c.ReadLinesSoft/2)
	c.ReadLinesHard = max(1, c.ReadLinesHard/2)
	return c
}

// Stats counts engine-level outcomes. Fields are updated atomically.
type Stats struct {
	Commits        atomic.Uint64
	AbortsConflict atomic.Uint64
	AbortsCapacity atomic.Uint64
	AbortsExplicit atomic.Uint64
	AbortsOther    atomic.Uint64
}

// Aborts returns the total number of aborts recorded.
func (s *Stats) Aborts() uint64 {
	return s.AbortsConflict.Load() + s.AbortsCapacity.Load() +
		s.AbortsExplicit.Load() + s.AbortsOther.Load()
}

// transaction status values.
const (
	stActive int32 = iota
	stDoomed
	stCommitting
	stCommitted
)

// entry is the per-line monitor record: which hardware contexts currently
// hold the line in their read set (bitmask by slot) and which one, if any,
// holds it in its write set. Entries are only touched under the line's
// memory stripe lock.
type entry struct {
	readers uint64
	writer  int16 // slot+1; 0 = none
}

// Engine is a best-effort HTM bound to one simulated memory.
type Engine struct {
	mem     *mem.Memory
	cfg     Config
	entries []entry
	slots   []atomic.Pointer[Txn]
	// recycled holds each slot's last transaction object for reuse: a slot
	// runs one transaction at a time, and a finished transaction can no
	// longer be reached through any monitor entry.
	recycled []*Txn
	rngs     []*rand.Rand
	nActive  atomic.Int32
	stats    Stats
	inj      *fault.Injector
	prof     *prof.Profile
}

// New creates an engine over m and installs it as m's strong-atomicity
// observer.
func New(m *mem.Memory, cfg Config) *Engine {
	if cfg.MaxSlots <= 0 || cfg.MaxSlots > 64 {
		cfg.MaxSlots = 64
	}
	e := &Engine{
		mem:      m,
		cfg:      cfg,
		entries:  make([]entry, m.Lines()),
		slots:    make([]atomic.Pointer[Txn], cfg.MaxSlots),
		recycled: make([]*Txn, cfg.MaxSlots),
		rngs:     make([]*rand.Rand, cfg.MaxSlots),
	}
	for i := range e.rngs {
		e.rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
	}
	m.SetObserver(e)
	return e
}

// Memory returns the memory the engine is bound to.
func (e *Engine) Memory() *mem.Memory { return e.mem }

// Config returns the engine's resource model.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// SetInjector installs a fault injector consulted at every hardware begin
// and commit (and, via Txn.InjectionPoint, at protocol-level sites). Call
// it before any transaction runs; the injector must cover at least as many
// threads as the slots in use (fault.New defaults to 64, the MaxSlots
// ceiling). A nil injector (the default) costs one nil check per site.
func (e *Engine) SetInjector(in *fault.Injector) { e.inj = in }

// Injector returns the installed fault injector, or nil.
func (e *Engine) Injector() *fault.Injector { return e.inj }

// SetProfile attaches the abort-attribution profiler (nil detaches): every
// transaction begun afterwards caches its slot's shard and records conflict
// lines, capacity overflows, and commit/abort footprints into it. Like
// SetInjector it must be flipped only while no transactions run. A nil
// profile (the default) costs one nil check per Begin and per abort site.
//
// Attribution is requester-side: the transaction that dooms a rival over a
// line records the conflict into its own shard, preserving the
// single-writer shard discipline even though the doom crosses threads.
// Strong-atomicity dooms from non-transactional accesses (NonTxRead/Write)
// carry no requester transaction and are not attributed.
func (e *Engine) SetProfile(p *prof.Profile) { e.prof = p }

// Profile returns the attached profiler, or nil.
func (e *Engine) Profile() *prof.Profile { return e.prof }

// fromFault maps an injected fault reason onto the engine's abort taxonomy.
func fromFault(r fault.Reason) AbortReason {
	switch r {
	case fault.Capacity:
		return Capacity
	case fault.Explicit:
		return Explicit
	case fault.Other:
		return Other
	}
	return Conflict
}

// Active returns the number of hardware transactions currently running.
func (e *Engine) Active() int { return int(e.nActive.Load()) }

// abortPanic is the sentinel carried by the internal panic that unwinds an
// aborting transaction body back to Execute.
type abortPanic struct {
	reason   AbortReason
	code     uint8
	injected bool
}

// Txn is a running hardware transaction. It must only be used by the thread
// that called Execute, inside the body passed to Execute.
type Txn struct {
	eng    *Engine
	slot   int
	status atomic.Int32

	writeBuf   map[mem.Addr]uint64
	writeOrder []mem.Addr
	readLines  []mem.Line // distinct monitored read lines (deduped by the monitor bit)
	writeLines []mem.Line // distinct monitored write lines (deduped by the writer field)
	setOcc     []uint8
	maxOcc     uint8 // peak set occupancy, tracked for footprint profiling
	ps         *prof.Shard
	class      uint8 // profiler commit-path class (prof.ClassFast/ClassSub)
	cycles     int64
	quantum    int64 // per-transaction timer quantum (cfg.Quantum, possibly jittered)
	rng        *rand.Rand
	finished   bool

	// Pending injected abort, armed at Begin and delivered at the next
	// transactional operation — a hardware transaction aborts at some
	// instruction after _xbegin, never "instead of" it.
	injPending bool
	injReason  AbortReason
	injCode    uint8

	// Thread-private (WriteLocal) capacity accounting: a direct-mapped line
	// cache whose misses bump localLines. Collisions recount a line —
	// overestimating occupancy, which is the conservative direction for a
	// capacity model.
	localCache []mem.Line
	localLines int

	// Whole-line write buffer (WriteLine). A line must not be written both
	// word-wise and line-wise within one transaction.
	lineBuf   map[mem.Line][mem.LineWords]uint64
	lineOrder []mem.Line
}

// localCacheSize is the direct-mapped cache used to deduplicate WriteLocal
// lines (a power of two).
const localCacheSize = 256

// Begin starts a hardware transaction on the given hardware context slot
// (0 <= slot < MaxSlots; one slot per thread). From this point every
// transactional operation may abort the transaction by panicking with an
// internal sentinel; the caller must either use Execute (which handles the
// unwinding) or run the transactional region inside a function protected by
// Recover.
func (e *Engine) Begin(slot int) *Txn {
	if slot < 0 || slot >= len(e.slots) {
		panic(fmt.Sprintf("htm: slot %d out of range [0,%d)", slot, len(e.slots)))
	}
	if e.slots[slot].Load() != nil {
		panic(fmt.Sprintf("htm: slot %d already running a transaction (no nesting)", slot))
	}
	t := e.recycled[slot]
	if t == nil {
		t = &Txn{
			eng:      e,
			slot:     slot,
			writeBuf: make(map[mem.Addr]uint64, 16),
			setOcc:   make([]uint8, e.cfg.WriteSets),
			rng:      e.rngs[slot],
		}
	} else {
		e.recycled[slot] = nil
		t.recycle()
	}
	t.quantum = e.cfg.Quantum
	t.injPending = false
	t.class = prof.ClassFast
	if e.prof != nil {
		t.ps = e.prof.Shard(slot)
	} else {
		t.ps = nil
	}
	if e.inj != nil {
		t.quantum = e.inj.Quantum(slot, e.cfg.Quantum)
		if r, code, ok := e.inj.Draw(fault.SiteHTMBegin, slot); ok {
			t.injReason, t.injCode, t.injPending = fromFault(r), code, true
		}
	}
	e.slots[slot].Store(t)
	e.nActive.Add(1)
	return t
}

// recycle resets a finished transaction object for its next life on the
// same slot.
func (t *Txn) recycle() {
	t.status.Store(stActive)
	if len(t.writeBuf) > 0 {
		clear(t.writeBuf)
	}
	t.writeOrder = t.writeOrder[:0]
	t.readLines = t.readLines[:0]
	t.writeLines = t.writeLines[:0]
	clear(t.setOcc)
	t.maxOcc = 0
	t.cycles = 0
	t.finished = false
	if t.localLines > 0 {
		clear(t.localCache)
		t.localLines = 0
	}
	if len(t.lineBuf) > 0 {
		clear(t.lineBuf)
	}
	t.lineOrder = t.lineOrder[:0]
}

// finish tears the transaction down: monitors released, slot freed. It is
// idempotent so the user-panic escape path cannot double-release.
func (t *Txn) finish() {
	if t.finished {
		return
	}
	t.finished = true
	t.releaseMonitors()
	t.eng.slots[t.slot].Store(nil)
	t.eng.recycled[t.slot] = t
	t.eng.nActive.Add(-1)
}

// Recover converts an in-flight abort panic into a Result. Call it from a
// deferred function wrapping a transactional region used via Begin:
//
//	defer func() {
//	    if res, ok := htm.Recover(recover()); ok { ... aborted ... }
//	}()
//
// Non-abort panics are re-raised after the transaction is torn down.
func Recover(r any) (Result, bool) {
	if r == nil {
		return Result{}, false
	}
	if ap, ok := r.(abortPanic); ok {
		return Result{Committed: false, Reason: ap.reason, Code: ap.code, Injected: ap.injected}, true
	}
	panic(r)
}

// AsAbort reports whether r is an abort panic and, if so, its Result. Unlike
// Recover it never re-raises: callers that multiplex abort panics with their
// own control-flow sentinels use it to dispatch.
func AsAbort(r any) (Result, bool) {
	if ap, ok := r.(abortPanic); ok {
		return Result{Committed: false, Reason: ap.reason, Code: ap.code, Injected: ap.injected}, true
	}
	return Result{}, false
}

// Execute runs body as a hardware transaction on the given slot. It returns
// whether the transaction committed and, if not, the abort reason —
// mirroring the control flow of _xbegin. The body may be discarded mid-run:
// any panic raised by the engine's own operations must be allowed to
// propagate out of it.
func (e *Engine) Execute(slot int, body func(*Txn)) (res Result) {
	var t *Txn
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ap, ok := r.(abortPanic); ok {
			res = Result{Committed: false, Reason: ap.reason, Code: ap.code, Injected: ap.injected}
			return
		}
		if t != nil {
			t.finish()
		}
		panic(r)
	}()
	t = e.Begin(slot)
	body(t)
	t.Commit()
	res = Result{Committed: true}
	return
}

func (e *Engine) recordAbort(r AbortReason) {
	switch r {
	case Conflict:
		e.stats.AbortsConflict.Add(1)
	case Capacity:
		e.stats.AbortsCapacity.Add(1)
	case Explicit:
		e.stats.AbortsExplicit.Add(1)
	case Other:
		e.stats.AbortsOther.Add(1)
	}
}

// SetProfileClass tags the transaction's footprint records with a
// commit-path class (prof.ClassFast, the Begin default, or prof.ClassSub
// for the partitioned path's sub-HTM windows). A plain field store,
// callable from inside the window.
func (t *Txn) SetProfileClass(c uint8) { t.class = c }

// profFinish records the transaction's footprint into its profiler shard:
// distinct read lines, write lines (monitored plus thread-private), and
// peak set occupancy. outcome is prof.OutcomeCommit or the abort reason's
// ordinal (the prof outcome constants mirror AbortReason value for value).
// The fields are still intact here — recycle, not finish, clears them.
func (t *Txn) profFinish(outcome uint8) {
	if t.ps == nil {
		return
	}
	t.ps.RecordFootprint(t.class, outcome,
		len(t.readLines), len(t.writeLines)+t.localLines, int(t.maxOcc))
}

// abort tears the transaction down, records the outcome, and unwinds.
func (t *Txn) abort(reason AbortReason, code uint8) {
	t.finish()
	t.eng.recordAbort(reason)
	t.profFinish(uint8(reason))
	panic(abortPanic{reason: reason, code: code})
}

// abortInjected is abort for injector-forced faults: the unwound Result
// carries Injected so frameworks can account the fault separately.
func (t *Txn) abortInjected(reason AbortReason, code uint8) {
	t.finish()
	t.eng.recordAbort(reason)
	t.profFinish(uint8(reason))
	panic(abortPanic{reason: reason, code: code, injected: true})
}

// InjectionPoint consults the fault injector at a protocol-level site
// (ring publication, lock-signature read) from inside the transaction
// body, aborting the transaction if a fault fires. A no-op without an
// injector.
func (t *Txn) InjectionPoint(site fault.Site) {
	in := t.eng.inj
	if in == nil {
		return
	}
	if r, code, ok := in.Draw(site, t.slot); ok {
		t.abortInjected(fromFault(r), code)
	}
}

// Abort explicitly aborts the transaction with a user code (_xabort).
func (t *Txn) Abort(code uint8) {
	t.abort(Explicit, code)
}

// Cancel abandons an open transaction without unwinding: buffered writes
// are discarded and monitors released. Callers holding a Begin handle use
// it when software control flow (not a hardware event) decides the
// transaction must not commit.
func (t *Txn) Cancel() {
	if t.finished {
		return
	}
	t.finish()
	t.eng.recordAbort(Explicit)
	t.profFinish(uint8(Explicit))
}

// Doomed reports whether the transaction has been aborted by a conflicting
// access and just hasn't noticed yet. The next transactional operation will
// unwind it.
func (t *Txn) Doomed() bool { return t.status.Load() == stDoomed }

// checkDoomed unwinds the transaction if a concurrent access doomed it or
// an injected begin-site fault is pending delivery.
func (t *Txn) checkDoomed() {
	if t.status.Load() == stDoomed {
		t.abort(Conflict, 0)
	}
	if t.injPending {
		t.injPending = false
		t.abortInjected(t.injReason, t.injCode)
	}
}

// step charges cycles against the timer quantum.
func (t *Txn) step(c int64) {
	t.cycles += c
	if q := t.quantum; q > 0 && t.cycles > q {
		t.abort(Other, 0)
	}
}

// Work charges c cycles of (non-memory) computation inside the transaction,
// modelling code between transactional accesses. Long computations push the
// transaction over the timer quantum exactly as on real hardware.
func (t *Txn) Work(c int64) {
	t.checkDoomed()
	t.step(c)
}

// Cycles returns the cycles consumed so far.
func (t *Txn) Cycles() int64 { return t.cycles }

// doom attempts to transition victim from active to doomed.
// It returns false when the victim is past the point of no return
// (committing or committed).
func doom(victim *Txn) bool {
	for {
		s := victim.status.Load()
		switch s {
		case stActive:
			if victim.status.CompareAndSwap(stActive, stDoomed) {
				return true
			}
		case stDoomed:
			return true
		default:
			return false
		}
	}
}

// Read performs a transactional (monitored) read of the word at a.
func (t *Txn) Read(a mem.Addr) uint64 {
	t.checkDoomed()
	t.step(t.eng.cfg.ReadCost)
	if len(t.writeBuf) > 0 {
		if v, ok := t.writeBuf[a]; ok {
			return v
		}
	}
	l := mem.LineOf(a)
	if len(t.lineBuf) > 0 {
		if vals, ok := t.lineBuf[l]; ok {
			return vals[a%mem.LineWords]
		}
	}
	e := t.eng
	bit := uint64(1) << uint(t.slot)
	self := int16(t.slot + 1)

	// Fast path: the line is already monitored and carries no foreign
	// writer — the overwhelmingly common case on re-reads and scans.
	e.mem.Lock(l)
	en := &e.entries[l]
	if w := en.writer; w == 0 || w == self {
		first := en.readers&bit == 0
		en.readers |= bit
		v := e.mem.RawLoad(a)
		e.mem.Unlock(l)
		if first {
			t.readLines = append(t.readLines, l)
			t.admitReadLine()
		}
		return v
	}
	e.mem.Unlock(l)
	return t.readSlow(a, l)
}

// readSlow resolves a foreign-writer conflict before reading (requester
// wins, as a cache-coherence invalidation would).
func (t *Txn) readSlow(a mem.Addr, l mem.Line) uint64 {
	e := t.eng
	bit := uint64(1) << uint(t.slot)
	for {
		var wait *Txn
		var v uint64
		first, done, doomed := false, false, false
		e.mem.Lock(l)
		en := &e.entries[l]
		if w := en.writer; w != 0 && int(w-1) != t.slot {
			other := e.slots[w-1].Load()
			if other != nil {
				switch other.status.Load() {
				case stActive, stDoomed:
					// Requester wins: invalidate the writer's monitor.
					if doom(other) {
						en.writer = 0
						doomed = true
					} else {
						wait = other
					}
				case stCommitting:
					wait = other
				case stCommitted:
					// Stale entry; its writes are already published.
				}
			}
		}
		if wait == nil {
			first = en.readers&bit == 0
			en.readers |= bit
			v = e.mem.RawLoad(a)
			done = true
		}
		e.mem.Unlock(l)
		if doomed {
			t.ps.RecordConflict(uint32(l))
		}
		if done {
			if first {
				t.readLines = append(t.readLines, l)
				t.admitReadLine()
			}
			return v
		}
		waitNotCommitting(wait)
		t.checkDoomed()
	}
}

// profCapacity attributes a capacity overflow to the line whose admission
// exceeded the resources (the last access, exactly as on real hardware).
func (t *Txn) profCapacity(l mem.Line) {
	t.ps.RecordCapacity(uint32(l))
}

// admitReadLine applies the read-capacity model after a new line entered
// the read set: on real hardware the access that exceeds the resources is
// the one that aborts.
func (t *Txn) admitReadLine() {
	cfg := &t.eng.cfg
	n := len(t.readLines)
	if cfg.ReadLinesHard > 0 && n > cfg.ReadLinesHard {
		t.profCapacity(t.readLines[n-1])
		t.abort(Capacity, 0)
	}
	if cfg.ReadLinesSoft > 0 && n > cfg.ReadLinesSoft && cfg.ReadEvictProb > 0 {
		pressure := int(t.eng.nActive.Load()) - cfg.ReadFreeThreads
		if pressure > 0 {
			p := cfg.ReadEvictProb * float64(pressure)
			if t.rng.Float64() < p {
				t.profCapacity(t.readLines[n-1])
				t.abort(Capacity, 0)
			}
		}
	}
}

// Write performs a transactional write: buffered locally, monitored
// eagerly, published at commit.
func (t *Txn) Write(a mem.Addr, v uint64) {
	t.checkDoomed()
	t.step(t.eng.cfg.WriteCost)
	t.ensureWriteMonitor(mem.LineOf(a))
	if _, dup := t.writeBuf[a]; !dup {
		t.writeOrder = append(t.writeOrder, a)
	}
	t.writeBuf[a] = v
}

// WriteLocal performs a transactional store of thread-private data: it
// occupies write-buffer capacity exactly like Write — the hardware buffers
// every store — but takes no monitor (nothing else accesses the line) and
// stores in place immediately. If the transaction aborts, the written words
// keep whatever values were stored; callers must only pass addresses whose
// post-abort contents are irrelevant (scratch buffers).
func (t *Txn) WriteLocal(a mem.Addr, v uint64) {
	t.checkDoomed()
	t.step(t.eng.cfg.WriteCost)
	l := mem.LineOf(a)
	if t.localCache == nil {
		t.localCache = make([]mem.Line, localCacheSize)
	}
	if i := uint32(l) & (localCacheSize - 1); t.localCache[i] != l {
		t.localCache[i] = l
		cfg := &t.eng.cfg
		set := int(uint32(l)) % cfg.WriteSets
		if int(t.setOcc[set])+1 > cfg.WriteWays {
			t.profCapacity(l)
			t.abort(Capacity, 0)
		}
		t.localLines++
		if cfg.WriteLines > 0 && t.localLines+len(t.writeLines) > cfg.WriteLines {
			t.profCapacity(l)
			t.abort(Capacity, 0)
		}
		t.setOcc[set]++
		if t.setOcc[set] > t.maxOcc {
			t.maxOcc = t.setOcc[set]
		}
	}
	e := t.eng
	e.mem.Lock(l)
	e.mem.RawStore(a, v)
	e.mem.Unlock(l)
}

// ReadLine performs one monitored read of a whole cache line into out.
// base must be line aligned. Hardware fetches lines, not words: protocol
// metadata (signatures, ring entries) is read at this granularity, costing
// one access instead of eight.
func (t *Txn) ReadLine(base mem.Addr, out *[mem.LineWords]uint64) {
	if base%mem.LineWords != 0 {
		panic("htm: ReadLine of unaligned address")
	}
	t.checkDoomed()
	t.step(t.eng.cfg.ReadCost)
	l := mem.LineOf(base)
	if len(t.lineBuf) > 0 {
		if vals, ok := t.lineBuf[l]; ok {
			*out = vals
			return
		}
	}
	e := t.eng
	bit := uint64(1) << uint(t.slot)
	self := int16(t.slot + 1)
	for {
		var wait *Txn
		first, done, doomed := false, false, false
		e.mem.Lock(l)
		en := &e.entries[l]
		w := en.writer
		if w != 0 && w != self {
			other := e.slots[w-1].Load()
			if other != nil {
				switch other.status.Load() {
				case stActive, stDoomed:
					if doom(other) {
						en.writer = 0
						doomed = true
					} else {
						wait = other
					}
				case stCommitting:
					wait = other
				case stCommitted:
				}
			}
		}
		if wait == nil {
			first = en.readers&bit == 0
			en.readers |= bit
			for i := 0; i < mem.LineWords; i++ {
				out[i] = e.mem.RawLoad(base + mem.Addr(i))
			}
			done = true
		}
		e.mem.Unlock(l)
		if doomed {
			t.ps.RecordConflict(uint32(l))
		}
		if done {
			if first {
				t.readLines = append(t.readLines, l)
				t.admitReadLine()
			}
			return
		}
		waitNotCommitting(wait)
		t.checkDoomed()
	}
}

// WriteLine buffers one whole cache line of writes (base must be line
// aligned), acquiring the write monitor once. A line written with WriteLine
// must not also be written word-wise in the same transaction.
func (t *Txn) WriteLine(base mem.Addr, vals *[mem.LineWords]uint64) {
	if base%mem.LineWords != 0 {
		panic("htm: WriteLine of unaligned address")
	}
	t.checkDoomed()
	t.step(t.eng.cfg.WriteCost)
	l := mem.LineOf(base)
	t.ensureWriteMonitor(l)
	if t.lineBuf == nil {
		t.lineBuf = make(map[mem.Line][mem.LineWords]uint64, 8)
	}
	if _, dup := t.lineBuf[l]; !dup {
		t.lineOrder = append(t.lineOrder, l)
	}
	t.lineBuf[l] = *vals
}

// ensureWriteMonitor puts line l into the write set: a no-op if already
// held, otherwise it applies the capacity model and registers the write
// monitor, dooming conflicting readers and writers (requester wins). One
// stripe acquisition in the common cases.
func (t *Txn) ensureWriteMonitor(l mem.Line) {
	e := t.eng
	self := int16(t.slot + 1)
	for {
		var wait *Txn
		acquired, overCap := false, false
		doomed := 0
		e.mem.Lock(l)
		en := &e.entries[l]
		if en.writer == self {
			e.mem.Unlock(l)
			return
		}
		if w := en.writer; w != 0 {
			other := e.slots[w-1].Load()
			if other != nil {
				switch other.status.Load() {
				case stActive, stDoomed:
					if doom(other) {
						en.writer = 0
						doomed++
					} else {
						wait = other
					}
				case stCommitting:
					wait = other
				case stCommitted:
				}
			}
		}
		if wait == nil {
			cfg := &e.cfg
			set := int(uint32(l)) % cfg.WriteSets
			switch {
			case int(t.setOcc[set])+1 > cfg.WriteWays,
				cfg.WriteLines > 0 && len(t.writeLines)+1 > cfg.WriteLines:
				// Abort outside the stripe lock: teardown re-acquires it.
				overCap = true
			default:
				// Doom all other active readers of the line.
				mask := en.readers &^ (1 << uint(t.slot))
				for mask != 0 {
					s := trailingSlot(mask)
					mask &^= 1 << uint(s)
					other := e.slots[s].Load()
					if other == nil {
						continue
					}
					switch other.status.Load() {
					case stActive, stDoomed:
						if doom(other) {
							doomed++
						}
						// Bit stays set until the victim cleans up; it is
						// doomed, so the stale bit is harmless.
					case stCommitting, stCommitted:
						// A committing reader serializes before this
						// writer; its monitor no longer matters.
					}
				}
				en.writer = self
				t.setOcc[set]++
				if t.setOcc[set] > t.maxOcc {
					t.maxOcc = t.setOcc[set]
				}
				acquired = true
			}
		}
		e.mem.Unlock(l)
		// Requester-side conflict attribution: one event per rival doomed
		// over this line (outside the stripe lock; the hook is htmsafe).
		if t.ps != nil {
			for ; doomed > 0; doomed-- {
				t.ps.RecordConflict(uint32(l))
			}
		}
		if overCap {
			t.profCapacity(l)
			t.abort(Capacity, 0)
		}
		if acquired {
			t.writeLines = append(t.writeLines, l)
			return
		}
		waitNotCommitting(wait)
		t.checkDoomed()
	}
}

// Commit atomically publishes the write buffer (_xend). If the transaction
// lost a conflict it unwinds with the abort panic instead, exactly like any
// other transactional operation.
func (t *Txn) Commit() {
	t.checkDoomed()
	if in := t.eng.inj; in != nil {
		if r, code, ok := in.Draw(fault.SiteHTMCommit, t.slot); ok {
			t.abortInjected(fromFault(r), code)
		}
	}
	if !t.status.CompareAndSwap(stActive, stCommitting) {
		t.abort(Conflict, 0)
	}
	e := t.eng
	for _, l := range t.lineOrder {
		vals := t.lineBuf[l]
		base := mem.Addr(l) * mem.LineWords
		e.mem.Lock(l)
		for i := 0; i < mem.LineWords; i++ {
			e.mem.RawStore(base+mem.Addr(i), vals[i])
		}
		e.mem.Unlock(l)
	}
	for _, a := range t.writeOrder {
		l := mem.LineOf(a)
		e.mem.Lock(l)
		e.mem.RawStore(a, t.writeBuf[a])
		e.mem.Unlock(l)
	}
	t.status.Store(stCommitted)
	t.finish()
	e.stats.Commits.Add(1)
	t.profFinish(prof.OutcomeCommit)
}

// releaseMonitors removes this transaction's read and write monitor
// registrations.
func (t *Txn) releaseMonitors() {
	e := t.eng
	for _, l := range t.readLines {
		e.mem.Lock(l)
		e.entries[l].readers &^= 1 << uint(t.slot)
		e.mem.Unlock(l)
	}
	self := int16(t.slot + 1)
	for _, l := range t.writeLines {
		e.mem.Lock(l)
		if e.entries[l].writer == self {
			e.entries[l].writer = 0
		}
		e.mem.Unlock(l)
	}
}

// waitNotCommitting spins until the other transaction leaves the committing
// state. Called without holding any stripe lock.
func waitNotCommitting(other *Txn) {
	for other.status.Load() == stCommitting {
		runtime.Gosched()
	}
}

// trailingSlot returns the index of the least significant set bit.
func trailingSlot(mask uint64) int {
	n := 0
	for mask&1 == 0 {
		mask >>= 1
		n++
	}
	return n
}

// NonTxRead implements mem.Observer: a non-transactional read aborts any
// hardware transaction holding the line in its write set, or asks the
// caller to retry if that transaction is mid-commit.
func (e *Engine) NonTxRead(l mem.Line) (retry bool) {
	en := &e.entries[l]
	if w := en.writer; w != 0 {
		other := e.slots[w-1].Load()
		if other != nil {
			switch other.status.Load() {
			case stActive, stDoomed:
				if doom(other) {
					en.writer = 0
				} else {
					return true
				}
			case stCommitting:
				return true
			case stCommitted:
			}
		}
	}
	return false
}

// NonTxWrite implements mem.Observer: a non-transactional write aborts any
// hardware transaction holding the line in its read or write set.
func (e *Engine) NonTxWrite(l mem.Line) (retry bool) {
	en := &e.entries[l]
	if w := en.writer; w != 0 {
		other := e.slots[w-1].Load()
		if other != nil {
			switch other.status.Load() {
			case stActive, stDoomed:
				if doom(other) {
					en.writer = 0
				} else {
					return true
				}
			case stCommitting:
				return true
			case stCommitted:
			}
		}
	}
	mask := en.readers
	for mask != 0 {
		s := trailingSlot(mask)
		mask &^= 1 << uint(s)
		other := e.slots[s].Load()
		if other == nil {
			continue
		}
		switch other.status.Load() {
		case stActive, stDoomed:
			doom(other)
		case stCommitting, stCommitted:
			// A committing reader serializes before this write.
		}
	}
	return false
}
