package htm

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
)

func newFaultEngine(t *testing.T, fcfg *fault.Config) *Engine {
	t.Helper()
	m := mem.New(1 << 12)
	e := New(m, DefaultConfig())
	if fcfg != nil {
		e.SetInjector(fault.New(*fcfg))
	}
	return e
}

func TestNoInjectorIsInert(t *testing.T) {
	e := newFaultEngine(t, nil)
	for i := 0; i < 100; i++ {
		res := e.Execute(0, func(tx *Txn) {
			tx.Write(8, uint64(i))
			tx.InjectionPoint(fault.SiteRingPub)
			tx.InjectionPoint(fault.SiteLockSigRead)
		})
		if !res.Committed || res.Injected {
			t.Fatalf("iter %d: %+v", i, res)
		}
	}
	if e.Injector() != nil {
		t.Fatal("injector not nil by default")
	}
}

func TestBeginInjectionAbortsFirstOperation(t *testing.T) {
	cfg := fault.Config{Seed: 1, Threads: 1}
	cfg.Rates[fault.SiteHTMBegin] = fault.SiteRate{Prob: 1, Reason: fault.Other}
	e := newFaultEngine(t, &cfg)
	reached := false
	res := e.Execute(0, func(tx *Txn) {
		tx.Read(0) // first transactional op delivers the pending abort
		reached = true
	})
	if res.Committed || res.Reason != Other || !res.Injected {
		t.Fatalf("res = %+v", res)
	}
	if reached {
		t.Fatal("body continued past the injected abort")
	}
	if e.Stats().AbortsOther.Load() != 1 {
		t.Fatal("engine abort counter not bumped")
	}
	// The slot must be reusable after the injected teardown (and with a
	// 100% begin rate, every retry aborts again — nothing ever commits).
	for i := 0; i < 10; i++ {
		if res := e.Execute(0, func(tx *Txn) { tx.Read(0) }); res.Committed {
			t.Fatal("commit under a total begin fault rate")
		}
	}
	if e.Stats().Commits.Load() != 0 {
		t.Fatal("hardware commits under total begin fault rate")
	}
}

func TestBeginInjectionDeliveredAtCommitOfEmptyTxn(t *testing.T) {
	cfg := fault.Config{Seed: 1, Threads: 1}
	cfg.Rates[fault.SiteHTMBegin] = fault.SiteRate{Prob: 1, Reason: fault.Capacity}
	e := newFaultEngine(t, &cfg)
	res := e.Execute(0, func(tx *Txn) {})
	if res.Committed || res.Reason != Capacity || !res.Injected {
		t.Fatalf("res = %+v", res)
	}
}

func TestCommitInjection(t *testing.T) {
	cfg := fault.Config{Seed: 1, Threads: 1}
	cfg.Rates[fault.SiteHTMCommit] = fault.SiteRate{Prob: 1, Reason: fault.Conflict}
	e := newFaultEngine(t, &cfg)
	res := e.Execute(0, func(tx *Txn) { tx.Write(8, 7) })
	if res.Committed || res.Reason != Conflict || !res.Injected {
		t.Fatalf("res = %+v", res)
	}
	// The buffered write must have been discarded.
	if got := e.Memory().Load(8); got != 0 {
		t.Fatalf("aborted write leaked: mem[8] = %d", got)
	}
}

func TestScriptedInjectionPointCarriesCode(t *testing.T) {
	cfg := fault.Config{Seed: 1, Threads: 1, Scripts: map[int][]fault.ScriptEvent{
		0: {{Site: fault.SiteLockSigRead, Reason: fault.Explicit, Code: 3, Count: 1}},
	}}
	e := newFaultEngine(t, &cfg)
	res := e.Execute(0, func(tx *Txn) {
		tx.InjectionPoint(fault.SiteLockSigRead)
	})
	if res.Committed || res.Reason != Explicit || res.Code != 3 || !res.Injected {
		t.Fatalf("res = %+v", res)
	}
	// Script drained: next attempt commits, with Injected false.
	res = e.Execute(0, func(tx *Txn) {
		tx.InjectionPoint(fault.SiteLockSigRead)
	})
	if !res.Committed || res.Injected {
		t.Fatalf("res = %+v", res)
	}
}

func TestQuantumJitterVariesAbortPoint(t *testing.T) {
	// With a jittered quantum, the same body sometimes survives and
	// sometimes trips the timer, depending on the per-transaction draw.
	ecfg := DefaultConfig()
	ecfg.Quantum = 1000
	m := mem.New(1 << 12)
	e := New(m, ecfg)
	e.SetInjector(fault.New(fault.Config{Seed: 3, Threads: 1, QuantumJitter: 0.5}))
	committed, aborted := 0, 0
	for i := 0; i < 200; i++ {
		res := e.Execute(0, func(tx *Txn) { tx.Work(1100) })
		if res.Committed {
			committed++
		} else if res.Reason == Other {
			aborted++
		}
	}
	if committed == 0 || aborted == 0 {
		t.Fatalf("jitter had no effect: %d committed, %d aborted", committed, aborted)
	}
	// Timer aborts from jitter are organic, not injected faults.
	if e.Injector().Stats().Total() != 0 {
		t.Fatal("jitter counted as injected faults")
	}
}
