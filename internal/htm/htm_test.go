package htm

import (
	"sync"
	"testing"

	"repro/internal/mem"
)

// newTestEngine returns an engine with deterministic, generous limits
// unless overridden.
func newTestEngine(words int, mut func(*Config)) *Engine {
	m := mem.New(words)
	cfg := DefaultConfig()
	cfg.Quantum = 0 // no timer aborts unless a test asks for them
	if mut != nil {
		mut(&cfg)
	}
	return New(m, cfg)
}

func TestCommitPublishesWrites(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(2)
	res := e.Execute(0, func(tx *Txn) {
		tx.Write(a, 11)
		tx.Write(a+1, 22)
	})
	if !res.Committed {
		t.Fatalf("commit failed: %+v", res)
	}
	if m.Load(a) != 11 || m.Load(a+1) != 22 {
		t.Fatal("committed writes not visible")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	m.Store(a, 5)
	res := e.Execute(0, func(tx *Txn) {
		tx.Write(a, 99)
		tx.Abort(7)
	})
	if res.Committed || res.Reason != Explicit || res.Code != 7 {
		t.Fatalf("want explicit abort code 7, got %+v", res)
	}
	if m.Load(a) != 5 {
		t.Fatal("aborted write leaked to memory")
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	e.Memory().Store(a, 1)
	res := e.Execute(0, func(tx *Txn) {
		tx.Write(a, 2)
		if got := tx.Read(a); got != 2 {
			t.Errorf("Read after Write = %d, want 2", got)
		}
	})
	if !res.Committed {
		t.Fatalf("unexpected abort: %+v", res)
	}
}

func TestWriteCapacityTotal(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.WriteLines = 4
		c.WriteWays = 64 // don't trip associativity first
		c.WriteSets = 1
	})
	m := e.Memory()
	base := m.AllocLines(8)
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 5; i++ {
			tx.Write(base+mem.Addr(i*mem.LineWords), 1)
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want capacity abort, got %+v", res)
	}
	// Exactly at the limit it must commit.
	res = e.Execute(0, func(tx *Txn) {
		for i := 0; i < 4; i++ {
			tx.Write(base+mem.Addr(i*mem.LineWords), 1)
		}
	})
	if !res.Committed {
		t.Fatalf("transaction at capacity limit aborted: %+v", res)
	}
}

func TestWriteCapacityAssociativity(t *testing.T) {
	// 2 ways, 4 sets: writing 3 lines that map to the same set must abort
	// even though the total budget (8) is not exceeded.
	e := newTestEngine(1<<16, func(c *Config) {
		c.WriteSets = 4
		c.WriteWays = 2
		c.WriteLines = 8
	})
	m := e.Memory()
	base := m.AllocLines(16)
	baseLine := uint32(mem.LineOf(base))
	// Align so that line stride 4 stays in one set.
	for uint32(baseLine)%4 != 0 {
		base += mem.LineWords
		baseLine = uint32(mem.LineOf(base))
	}
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 3; i++ {
			tx.Write(base+mem.Addr(i*4*mem.LineWords), 1)
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want associativity capacity abort, got %+v", res)
	}
}

func TestReadCapacityHard(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.ReadLinesHard = 8
		c.ReadLinesSoft = 4
		c.ReadEvictProb = 0
	})
	m := e.Memory()
	base := m.AllocLines(16)
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 9; i++ {
			tx.Read(base + mem.Addr(i*mem.LineWords))
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want hard read-capacity abort, got %+v", res)
	}
}

func TestReadCapacitySoftNeedsPressure(t *testing.T) {
	// With only one running transaction there is no shared-cache pressure:
	// reads beyond the soft budget must survive.
	e := newTestEngine(1<<16, func(c *Config) {
		c.ReadLinesSoft = 2
		c.ReadLinesHard = 1 << 20
		c.ReadEvictProb = 1.0 // would always abort under pressure
		c.ReadFreeThreads = 1
	})
	m := e.Memory()
	base := m.AllocLines(16)
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 10; i++ {
			tx.Read(base + mem.Addr(i*mem.LineWords))
		}
	})
	if !res.Committed {
		t.Fatalf("soft capacity aborted without concurrency pressure: %+v", res)
	}
}

func TestTimerQuantumAborts(t *testing.T) {
	e := newTestEngine(1024, func(c *Config) { c.Quantum = 100 })
	res := e.Execute(0, func(tx *Txn) {
		tx.Work(101)
	})
	if res.Committed || res.Reason != Other {
		t.Fatalf("want timer (Other) abort, got %+v", res)
	}
	res = e.Execute(0, func(tx *Txn) {
		tx.Work(99)
	})
	if !res.Committed {
		t.Fatalf("short transaction aborted: %+v", res)
	}
}

func TestTimerCountsMemoryOps(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.Quantum = 10
		c.ReadCost = 1
	})
	base := e.Memory().AllocLines(4)
	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 11; i++ {
			tx.Read(base)
		}
	})
	if res.Committed || res.Reason != Other {
		t.Fatalf("want Other abort from accumulated read cost, got %+v", res)
	}
}

// runConflict executes two transaction bodies on two goroutines with a
// rendezvous between their phases, returning both results.
func runConflict(e *Engine, first, second func(*Txn, chan struct{})) (r1, r2 Result) {
	var wg sync.WaitGroup
	sync1 := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		r1 = e.Execute(0, func(tx *Txn) { first(tx, sync1) })
	}()
	go func() {
		defer wg.Done()
		r2 = e.Execute(1, func(tx *Txn) { second(tx, sync1) })
	}()
	wg.Wait()
	return
}

func TestWriteWriteConflictRequesterWins(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	r1, r2 := runConflict(e,
		func(tx *Txn, sync1 chan struct{}) {
			tx.Write(a, 1)
			close(sync1) // let the second writer in
			// Spin until doomed, then touch the transaction to unwind.
			for !tx.Doomed() {
			}
			tx.Work(1)
		},
		func(tx *Txn, sync1 chan struct{}) {
			<-sync1
			tx.Write(a, 2) // requester wins: dooms the first writer
		},
	)
	if r1.Committed || r1.Reason != Conflict {
		t.Fatalf("first writer should lose with Conflict, got %+v", r1)
	}
	if !r2.Committed {
		t.Fatalf("second writer should win, got %+v", r2)
	}
	if got := e.Memory().Load(a); got != 2 {
		t.Fatalf("memory = %d, want 2", got)
	}
}

func TestWriteDoomsReader(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	r1, r2 := runConflict(e,
		func(tx *Txn, sync1 chan struct{}) {
			tx.Read(a)
			close(sync1)
			for !tx.Doomed() {
			}
			tx.Work(1)
		},
		func(tx *Txn, sync1 chan struct{}) {
			<-sync1
			tx.Write(a, 2)
		},
	)
	if r1.Committed || r1.Reason != Conflict {
		t.Fatalf("reader should be doomed, got %+v", r1)
	}
	if !r2.Committed {
		t.Fatalf("writer should commit, got %+v", r2)
	}
}

func TestReadDoomsWriter(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	e.Memory().Store(a, 10)
	r1, r2 := runConflict(e,
		func(tx *Txn, sync1 chan struct{}) {
			tx.Write(a, 99)
			close(sync1)
			for !tx.Doomed() {
			}
			tx.Work(1)
		},
		func(tx *Txn, sync1 chan struct{}) {
			<-sync1
			if got := tx.Read(a); got != 10 {
				t.Errorf("reader saw uncommitted value %d", got)
			}
		},
	)
	if r1.Committed || r1.Reason != Conflict {
		t.Fatalf("writer should be doomed by conflicting read, got %+v", r1)
	}
	if !r2.Committed {
		t.Fatalf("reader should commit, got %+v", r2)
	}
}

func TestConcurrentReadersDoNotConflict(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	e.Memory().Store(a, 3)
	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			results[slot] = e.Execute(slot, func(tx *Txn) {
				for j := 0; j < 100; j++ {
					if got := tx.Read(a); got != 3 {
						t.Errorf("read %d, want 3", got)
					}
				}
			})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !r.Committed {
			t.Fatalf("reader %d aborted: %+v", i, r)
		}
	}
}

func TestStrongAtomicityNonTxWriteDoomsReader(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	started := make(chan struct{})
	var res Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = e.Execute(0, func(tx *Txn) {
			tx.Read(a)
			close(started)
			for !tx.Doomed() {
			}
			tx.Work(1)
		})
	}()
	<-started
	m.Store(a, 1) // non-transactional write dooms the reader
	wg.Wait()
	if res.Committed || res.Reason != Conflict {
		t.Fatalf("want conflict abort from strong atomicity, got %+v", res)
	}
}

func TestStrongAtomicityNonTxReadDoomsWriter(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	m.Store(a, 8)
	started := make(chan struct{})
	var res Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = e.Execute(0, func(tx *Txn) {
			tx.Write(a, 9)
			close(started)
			for !tx.Doomed() {
			}
			tx.Work(1)
		})
	}()
	<-started
	if got := m.Load(a); got != 8 {
		t.Fatalf("non-tx read saw buffered value %d", got)
	}
	wg.Wait()
	if res.Committed || res.Reason != Conflict {
		t.Fatalf("want conflict abort, got %+v", res)
	}
}

func TestStrongAtomicityNonTxReadDoesNotDoomReader(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	done := make(chan struct{})
	started := make(chan struct{})
	var res Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = e.Execute(0, func(tx *Txn) {
			tx.Read(a)
			close(started)
			<-done
			tx.Read(a)
		})
	}()
	<-started
	m.Load(a) // non-tx read of a read-monitored line: no conflict
	close(done)
	wg.Wait()
	if !res.Committed {
		t.Fatalf("reader aborted by non-conflicting non-tx read: %+v", res)
	}
}

func TestFalseSharingSameLineConflicts(t *testing.T) {
	// Two different words on the same cache line must conflict: that is the
	// detection granularity the paper's metadata design works around.
	e := newTestEngine(1024, nil)
	base := e.Memory().AllocLines(1)
	r1, r2 := runConflict(e,
		func(tx *Txn, sync1 chan struct{}) {
			tx.Write(base, 1)
			close(sync1)
			for !tx.Doomed() {
			}
			tx.Work(1)
		},
		func(tx *Txn, sync1 chan struct{}) {
			<-sync1
			tx.Write(base+1, 2) // different word, same line
		},
	)
	if r1.Committed {
		t.Fatalf("false sharing not detected: %+v %+v", r1, r2)
	}
}

func TestDisjointLinesNoConflict(t *testing.T) {
	e := newTestEngine(4096, nil)
	m := e.Memory()
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	var wg sync.WaitGroup
	res := make([]Result, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		res[0] = e.Execute(0, func(tx *Txn) {
			for i := 0; i < 200; i++ {
				tx.Write(a, tx.Read(a)+1)
			}
		})
	}()
	go func() {
		defer wg.Done()
		res[1] = e.Execute(1, func(tx *Txn) {
			for i := 0; i < 200; i++ {
				tx.Write(b, tx.Read(b)+1)
			}
		})
	}()
	wg.Wait()
	if !res[0].Committed || !res[1].Committed {
		t.Fatalf("disjoint transactions conflicted: %+v %+v", res[0], res[1])
	}
	if m.Load(a) != 200 || m.Load(b) != 200 {
		t.Fatal("wrong final values")
	}
}

func TestStatsCounting(t *testing.T) {
	e := newTestEngine(1024, func(c *Config) { c.Quantum = 10 })
	a := e.Memory().Alloc(1)
	e.Execute(0, func(tx *Txn) { tx.Write(a, 1) })
	e.Execute(0, func(tx *Txn) { tx.Abort(1) })
	e.Execute(0, func(tx *Txn) { tx.Work(11) })
	s := e.Stats()
	if s.Commits.Load() != 1 || s.AbortsExplicit.Load() != 1 || s.AbortsOther.Load() != 1 {
		t.Fatalf("stats wrong: commits=%d explicit=%d other=%d",
			s.Commits.Load(), s.AbortsExplicit.Load(), s.AbortsOther.Load())
	}
	if s.Aborts() != 2 {
		t.Fatalf("Aborts() = %d, want 2", s.Aborts())
	}
}

func TestNestingPanics(t *testing.T) {
	e := newTestEngine(1024, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nested Execute on one slot must panic")
		}
	}()
	e.Execute(0, func(tx *Txn) {
		e.Execute(0, func(*Txn) {})
	})
}

func TestUserPanicPropagates(t *testing.T) {
	e := newTestEngine(1024, nil)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("want user panic to propagate, got %v", r)
		}
	}()
	e.Execute(0, func(*Txn) { panic("boom") })
}

func TestOversubscribedHalvesBudgets(t *testing.T) {
	c := DefaultConfig()
	o := c.Oversubscribed()
	if o.WriteLines != c.WriteLines/2 || o.ReadLinesSoft != c.ReadLinesSoft/2 ||
		o.WriteWays != c.WriteWays/2 || o.ReadLinesHard != c.ReadLinesHard/2 {
		t.Fatalf("oversubscription scaling wrong: %+v", o)
	}
}

func TestAbortReasonString(t *testing.T) {
	want := map[AbortReason]string{
		NoAbort: "none", Conflict: "conflict", Capacity: "capacity",
		Explicit: "explicit", Other: "other",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("String(%d) = %q, want %q", r, r.String(), s)
		}
	}
}

// TestCounterStress is the core atomicity invariant: concurrent
// read-modify-write transactions on one counter, retried until they commit,
// must never lose an increment.
func TestCounterStress(t *testing.T) {
	e := newTestEngine(1024, nil)
	m := e.Memory()
	a := m.Alloc(1)
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					res := e.Execute(slot, func(tx *Txn) {
						tx.Write(a, tx.Read(a)+1)
					})
					if res.Committed {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Load(a); got != workers*per {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

// TestBankStress checks that concurrent transfers preserve the total
// balance — the snapshot-consistency invariant of the commit protocol.
func TestBankStress(t *testing.T) {
	e := newTestEngine(1<<14, nil)
	m := e.Memory()
	const accounts = 32
	base := m.AllocLines(accounts) // one account per line
	for i := 0; i < accounts; i++ {
		m.Store(base+mem.Addr(i*mem.LineWords), 100)
	}
	const workers = 6
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rng := uint64(slot*2654435761 + 12345)
			next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
			for i := 0; i < per; i++ {
				from := mem.Addr(next()%accounts) * mem.LineWords
				to := mem.Addr(next()%accounts) * mem.LineWords
				for {
					res := e.Execute(slot, func(tx *Txn) {
						f := tx.Read(base + from)
						tv := tx.Read(base + to)
						if from != to {
							tx.Write(base+from, f-1)
							tx.Write(base+to, tv+1)
						}
					})
					if res.Committed {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += m.Load(base + mem.Addr(i*mem.LineWords))
	}
	if total != accounts*100 {
		t.Fatalf("total balance = %d, want %d", total, accounts*100)
	}
}
