package htm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prof"
)

// TestProfOutcomeMirrorsAbortReason pins the value-for-value mapping the
// engine relies on when it casts an AbortReason straight into a profiler
// outcome (profFinish(uint8(reason))).
func TestProfOutcomeMirrorsAbortReason(t *testing.T) {
	pairs := []struct {
		reason  AbortReason
		outcome uint8
	}{
		{NoAbort, prof.OutcomeCommit},
		{Conflict, prof.OutcomeConflict},
		{Capacity, prof.OutcomeCapacity},
		{Explicit, prof.OutcomeExplicit},
		{Other, prof.OutcomeOther},
	}
	for _, pr := range pairs {
		if uint8(pr.reason) != pr.outcome {
			t.Fatalf("AbortReason %v = %d, prof outcome = %d: taxonomies diverged",
				pr.reason, pr.reason, pr.outcome)
		}
	}
	if prof.OutcomeCount != 5 {
		t.Fatalf("prof.OutcomeCount = %d, want 5 (new AbortReason needs a prof outcome)",
			prof.OutcomeCount)
	}
}

// TestProfConflictAttribution checks requester-side attribution: the
// transaction that dooms a rival over a line records that line into its
// own shard.
func TestProfConflictAttribution(t *testing.T) {
	e := newTestEngine(1024, nil)
	p := prof.New(prof.Config{Sets: e.Config().WriteSets})
	e.SetProfile(p)
	a := e.Memory().Alloc(1)
	line := uint32(mem.LineOf(a))

	// Victim (slot 0) writes the line and stalls; requester (slot 1)
	// writes the same line, dooming the victim, then commits.
	victim := e.Begin(0)
	func() {
		defer func() { recover() }() // victim may notice the doom mid-write
		victim.Write(a, 1)
	}()

	requester := e.Begin(1)
	requester.Write(a, 2)
	requester.Commit()

	// The victim unwinds with Conflict at its next transactional step.
	func() {
		defer func() {
			res, ok := AsAbort(recover())
			if !ok || res.Reason != Conflict {
				t.Errorf("victim should unwind with Conflict, got %+v (ok=%v)", res, ok)
			}
		}()
		victim.Read(a)
		victim.Commit()
		t.Error("victim committed despite being doomed")
	}()

	// Requester-side attribution: slot 1's shard holds the line.
	top := p.TopK(0)
	if len(top) == 0 {
		t.Fatal("no conflict lines recorded")
	}
	if top[0].Line != line {
		t.Fatalf("hot line = %d, want %d", top[0].Line, line)
	}
	if p.ConflictEvents() == 0 {
		t.Fatal("ConflictEvents = 0 after a doom")
	}
	heat := p.Heat()
	if heat[int(line)%len(heat)].Conflicts == 0 {
		t.Fatal("set heat not bumped for the conflict line")
	}
	// The commit and the conflict abort both leave footprint rows.
	var sawCommit, sawConflict bool
	for _, f := range p.Footprints() {
		if f.Class != "fast" {
			t.Fatalf("unexpected class %q on whole-hw windows", f.Class)
		}
		switch f.Outcome {
		case "commit":
			sawCommit = true
			if f.WriteMax < 1 {
				t.Fatalf("commit footprint has no write lines: %+v", f)
			}
		case "conflict":
			sawConflict = true
		}
	}
	if !sawCommit || !sawConflict {
		t.Fatalf("footprints missing rows: commit=%v conflict=%v", sawCommit, sawConflict)
	}
}

// TestProfCapacityAttribution: the access that exceeds the write-buffer
// resources is the one attributed, into the capacity heat plane.
func TestProfCapacityAttribution(t *testing.T) {
	e := newTestEngine(1<<16, func(c *Config) {
		c.WriteSets = 1
		c.WriteWays = 2 // third distinct line overflows
	})
	p := prof.New(prof.Config{Sets: 1})
	e.SetProfile(p)
	base := e.Memory().AllocLines(4)

	res := e.Execute(0, func(tx *Txn) {
		for i := 0; i < 3; i++ {
			tx.Write(base+mem.Addr(i*mem.LineWords), 1)
		}
	})
	if res.Committed || res.Reason != Capacity {
		t.Fatalf("want capacity abort, got %+v", res)
	}
	heat := p.Heat()
	if len(heat) != 1 || heat[0].Capacity == 0 {
		t.Fatalf("capacity overflow not recorded in heat: %+v", heat)
	}
	if heat[0].Conflicts != 0 {
		t.Fatalf("capacity abort recorded as conflict: %+v", heat)
	}
	var sawCap bool
	for _, f := range p.Footprints() {
		if f.Outcome == "capacity" && f.Class == "fast" {
			sawCap = true
			if f.OccMax < 2 {
				t.Fatalf("capacity footprint occupancy %d, want >= 2", f.OccMax)
			}
		}
	}
	if !sawCap {
		t.Fatalf("no fast/capacity footprint row: %+v", p.Footprints())
	}
}

// TestProfDetached: with no profile attached (the default), transactions
// run and abort exactly as before and nothing is recorded anywhere.
func TestProfDetached(t *testing.T) {
	e := newTestEngine(1024, nil)
	a := e.Memory().Alloc(1)
	res := e.Execute(0, func(tx *Txn) { tx.Write(a, 1) })
	if !res.Committed {
		t.Fatalf("commit failed without profile: %+v", res)
	}
	// Attaching after the fact starts from a clean slate.
	p := prof.New(prof.Config{})
	e.SetProfile(p)
	if p.ConflictEvents() != 0 || len(p.Footprints()) != 0 {
		t.Fatal("pre-attach activity leaked into the profile")
	}
	res = e.Execute(0, func(tx *Txn) { tx.Write(a, 2) })
	if !res.Committed {
		t.Fatalf("commit failed with profile: %+v", res)
	}
	if len(p.Footprints()) == 0 {
		t.Fatal("post-attach commit recorded no footprint")
	}
}
