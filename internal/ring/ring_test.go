package ring

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sig"
)

func newRing(size int) (*Ring, *mem.Memory) {
	m := mem.New(1 << 16)
	return New(m, size), m
}

func TestNewRequiresPowerOfTwo(t *testing.T) {
	m := mem.New(1 << 16)
	for _, bad := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(m, bad)
		}()
	}
}

func TestTimestampStartsZero(t *testing.T) {
	r, _ := newRing(8)
	if r.Timestamp() != 0 {
		t.Fatalf("fresh ring timestamp = %d", r.Timestamp())
	}
	if r.Size() != 8 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestPublishAndReadEntry(t *testing.T) {
	r, _ := newRing(8)
	var s sig.Signature
	s.Add(42)
	s.Add(1000)
	r.PublishSW(1, &s)
	var w [sig.Words]uint64
	if !r.ReadEntry(1, w[:]) {
		t.Fatal("ReadEntry(1) reported rollover")
	}
	var got sig.Signature
	copy(got[:], w[:])
	if !got.Equal(&s) {
		t.Fatal("entry signature mismatch")
	}
}

func TestReadEntryZeroIsEmpty(t *testing.T) {
	r, _ := newRing(8)
	w := make([]uint64, sig.Words)
	w[0] = ^uint64(0) // must be cleared
	if !r.ReadEntry(0, w) {
		t.Fatal("ReadEntry(0) failed")
	}
	for i, v := range w {
		if v != 0 {
			t.Fatalf("word %d = %d, want 0", i, v)
		}
	}
}

func TestReadEntryRollover(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	for ts := uint64(1); ts <= 6; ts++ {
		r.PublishSW(ts, &s)
	}
	w := make([]uint64, sig.Words)
	if r.ReadEntry(1, w) {
		t.Fatal("entry 1 was overwritten by 5 but ReadEntry succeeded")
	}
	if !r.ReadEntry(6, w) {
		t.Fatal("latest entry must be readable")
	}
}

func TestValidateDisjoint(t *testing.T) {
	r, _ := newRing(8)
	var wsig sig.Signature
	wsig.Add(500)
	r.PublishSW(1, &wsig)
	var readSig sig.Signature
	readSig.Add(600)
	if sig.HashBit(500) == sig.HashBit(600) {
		t.Skip("hash collision between test addresses")
	}
	if !r.Validate(&readSig, 0, 1) {
		t.Fatal("disjoint read set failed validation")
	}
}

func TestValidateConflict(t *testing.T) {
	r, _ := newRing(8)
	var wsig sig.Signature
	wsig.Add(500)
	r.PublishSW(1, &wsig)
	var readSig sig.Signature
	readSig.Add(500)
	if r.Validate(&readSig, 0, 1) {
		t.Fatal("conflicting read set passed validation")
	}
}

func TestValidateRangeSemantics(t *testing.T) {
	r, _ := newRing(8)
	var w1, w2 sig.Signature
	w1.Add(100)
	w2.Add(200)
	r.PublishSW(1, &w1)
	r.PublishSW(2, &w2)
	var readSig sig.Signature
	readSig.Add(100)
	// (1, 2]: only entry 2 is checked; entry 1's conflict is out of range.
	if sig.HashBit(100) == sig.HashBit(200) {
		t.Skip("hash collision")
	}
	if !r.Validate(&readSig, 1, 2) {
		t.Fatal("validation checked an entry outside (from, to]")
	}
	if r.Validate(&readSig, 0, 2) {
		t.Fatal("validation missed entry 1")
	}
}

func TestValidateRolloverFails(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	for ts := uint64(1); ts <= 6; ts++ {
		r.PublishSW(ts, &s)
	}
	var readSig sig.Signature
	if r.Validate(&readSig, 0, 6) {
		t.Fatal("validation across a rolled-over range must fail")
	}
	if !r.Validate(&readSig, 2, 6) {
		t.Fatal("validation within the live window must pass")
	}
}

func TestWaitDoneZero(t *testing.T) {
	r, _ := newRing(4)
	r.WaitDone(0) // must not block
}

func TestSetDoneWaitDone(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	r.PublishSW(1, &s)
	done := make(chan struct{})
	go func() {
		r.WaitDone(1)
		close(done)
	}()
	r.SetDone(1)
	<-done
}

func TestAddrHelpersDistinct(t *testing.T) {
	r, _ := newRing(8)
	if r.SeqAddr(1) == r.DoneAddr(1) || r.SeqAddr(1) == r.SigAddr(1) {
		t.Fatal("entry field addresses collide")
	}
	if r.SeqAddr(1) != r.SeqAddr(9) {
		t.Fatal("timestamps 1 and 9 must share a slot in a ring of 8")
	}
	if r.SeqAddr(1) == r.SeqAddr(2) {
		t.Fatal("distinct slots must have distinct addresses")
	}
	if r.SigAddr(1)%mem.LineWords != 0 {
		t.Fatal("signature must start on a line boundary")
	}
}

func TestAwaitPrevPublishedGate(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	for ts := uint64(1); ts <= 4; ts++ {
		r.PublishSW(ts, &s)
	}
	// Slot for ts=5 holds generation 1: the gate must pass immediately
	// (prevGen(5) == 1) and publishing must succeed.
	done := make(chan struct{})
	go func() {
		r.PublishSW(5, &s)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("gate deadlocked on a free slot")
	}
}

func TestAwaitPrevDoneBlocksUntilPreviousWriteback(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	r.PublishSW(1, &s)
	// ts=5 reuses ts=1's slot; its done-gate must block until SetDone(1).
	released := make(chan struct{})
	go func() {
		r.AwaitPrevDone(5)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("gate passed before the previous write-back completed")
	case <-time.After(30 * time.Millisecond):
	}
	r.SetDone(1)
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("gate never released")
	}
}

func TestWaitDoneAcceptsLaterGenerations(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	r.PublishSW(1, &s)
	r.SetDone(1)
	r.AwaitPrevDone(5)
	r.PublishSW(5, &s)
	r.SetDone(5)
	// A reader holding the stale snapshot ts=1 must not hang: the slot's
	// done-word (5) proves generation 1 finished long ago.
	done := make(chan struct{})
	go func() {
		r.WaitDone(1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitDone hung on a lapped slot (the pre-fix livelock)")
	}
}

func TestReadEntrySpinsThroughWritingSentinel(t *testing.T) {
	r, m := newRing(8)
	var s sig.Signature
	s.Add(99)
	// Simulate a mid-flight publisher: seq = Writing, then complete it.
	m.Store(r.SeqAddr(1), Writing)
	done := make(chan bool)
	go func() {
		var w [sig.Words]uint64
		done <- r.ReadEntry(1, w[:])
	}()
	select {
	case <-done:
		t.Fatal("ReadEntry returned while the entry was mid-publish")
	case <-time.After(30 * time.Millisecond):
	}
	for i := 0; i < sig.Words; i++ {
		m.Store(r.SigAddr(1)+mem.Addr(i), s[i])
	}
	m.Store(r.SeqAddr(1), 1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("ReadEntry reported rollover for a live entry")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadEntry never completed")
	}
}

func TestValidateManyMultipleFilters(t *testing.T) {
	r, _ := newRing(8)
	var wsig sig.Signature
	wsig.Add(500)
	r.PublishSW(1, &wsig)
	var clean, dirty sig.Signature
	clean.Add(600)
	dirty.Add(500)
	if sig.HashBit(500) == sig.HashBit(600) {
		t.Skip("hash collision between test addresses")
	}
	if ok, roll := r.ValidateMany([]*sig.Signature{&clean}, 0, 1); !ok || roll {
		t.Fatalf("disjoint filter failed: ok=%v rollover=%v", ok, roll)
	}
	// Any one intersecting filter fails the batch, wherever it sits.
	for _, fs := range [][]*sig.Signature{
		{&dirty},
		{&clean, &dirty},
		{&dirty, &clean},
	} {
		if ok, roll := r.ValidateMany(fs, 0, 1); ok || roll {
			t.Fatalf("intersecting batch passed: filters=%d ok=%v roll=%v", len(fs), ok, roll)
		}
	}
}

func TestValidateManyNilFilters(t *testing.T) {
	r, _ := newRing(8)
	var wsig sig.Signature
	wsig.Add(500)
	r.PublishSW(1, &wsig)
	var dirty sig.Signature
	dirty.Add(500)
	// Nil slots are skipped: callers pass sparse per-domain filter sets.
	if ok, _ := r.ValidateMany([]*sig.Signature{nil, nil}, 0, 1); !ok {
		t.Fatal("all-nil batch must validate")
	}
	if ok, _ := r.ValidateMany([]*sig.Signature{nil, &dirty}, 0, 1); ok {
		t.Fatal("nil slots must not mask an intersecting filter")
	}
}

func TestValidateManyRollover(t *testing.T) {
	r, _ := newRing(4)
	var s sig.Signature
	for ts := uint64(1); ts <= 6; ts++ {
		r.PublishSW(ts, &s)
	}
	var readSig sig.Signature
	if ok, roll := r.ValidateMany([]*sig.Signature{&readSig}, 0, 6); ok || !roll {
		t.Fatalf("rolled-over range: ok=%v rollover=%v, want false,true", ok, roll)
	}
	if ok, roll := r.ValidateMany([]*sig.Signature{&readSig}, 2, 6); !ok || roll {
		t.Fatalf("live window: ok=%v rollover=%v, want true,false", ok, roll)
	}
	// to < from is a plain failure, not a rollover.
	if ok, roll := r.ValidateMany([]*sig.Signature{&readSig}, 6, 2); ok || roll {
		t.Fatalf("inverted range: ok=%v rollover=%v, want false,false", ok, roll)
	}
}
