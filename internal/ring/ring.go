// Package ring implements the RingSTM-style global ring of committed write
// signatures that Part-HTM uses for its in-flight validation, and that the
// RingSTM baseline uses directly.
//
// The ring lives in simulated memory so that hardware transactions can
// publish an entry atomically at commit (the paper's fast path does
// `ring[++timestamp] = write_sig` inside the hardware transaction) and so
// that software validators reading entries produce exactly the strong-
// atomicity conflicts with in-flight hardware committers that the paper's
// overhead analysis describes.
//
// Software publishers cannot write an entry atomically, so each entry
// carries a sequence word used as a seqlock: the publisher stamps it with a
// Writing sentinel, fills the 32 signature words, then stamps the
// timestamp. Validators reading an entry retry around the sentinel.
package ring

import (
	"runtime"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sig"
)

// Writing is the sentinel a software publisher stores in an entry's
// sequence word while the signature words are being filled.
const Writing = ^uint64(0)

// CodeRingBusy is the explicit abort code raised when a hardware publisher
// finds its ring slot still occupied by an unpublished previous generation.
const CodeRingBusy uint8 = 250

// Entry layout, in words. Entries are line aligned; the sequence word and
// the done flag occupy the first line, the signature the next four.
const (
	entryHeaderWords = mem.LineWords
	// EntryWords is the size of one ring entry.
	EntryWords = entryHeaderWords + sig.Words
	offSeq     = 0 // sequence word: timestamp of the occupant or Writing
	offDone    = 1 // timestamp whose write-back completed (RingSTM)
)

// Ring is a fixed-size circular buffer of committed write signatures,
// indexed by commit timestamp modulo the size.
type Ring struct {
	m      *mem.Memory
	base   mem.Addr
	size   uint64
	tsAddr mem.Addr
}

// New allocates a ring with size entries (a power of two) and a global
// timestamp word on its own cache line.
func New(m *mem.Memory, size int) *Ring {
	if size <= 0 || size&(size-1) != 0 {
		panic("ring: size must be a positive power of two")
	}
	r := &Ring{
		m:      m,
		base:   m.AllocLines(size * EntryWords / mem.LineWords),
		size:   uint64(size),
		tsAddr: m.AllocLines(1),
	}
	return r
}

// Size returns the number of entries.
func (r *Ring) Size() int { return int(r.size) }

// TimestampAddr returns the address of the global commit timestamp, for
// code that must access it transactionally (the fast path's monitored
// increment, Part-HTM-O's timestamp subscription).
func (r *Ring) TimestampAddr() mem.Addr { return r.tsAddr }

// Timestamp returns the current global commit timestamp
// (non-transactional read).
func (r *Ring) Timestamp() uint64 { return r.m.Load(r.tsAddr) }

// entryBase returns the address of the entry for timestamp ts.
func (r *Ring) entryBase(ts uint64) mem.Addr {
	return r.base + mem.Addr((ts&(r.size-1))*EntryWords)
}

// SeqAddr returns the address of the sequence word of ts's entry.
func (r *Ring) SeqAddr(ts uint64) mem.Addr { return r.entryBase(ts) + offSeq }

// DoneAddr returns the address of the write-back-done word of ts's entry.
func (r *Ring) DoneAddr(ts uint64) mem.Addr { return r.entryBase(ts) + offDone }

// SigAddr returns the address of the first signature word of ts's entry.
func (r *Ring) SigAddr(ts uint64) mem.Addr { return r.entryBase(ts) + entryHeaderWords }

// prevGen returns the sequence value the slot must carry before ts may
// claim it: the previous occupant's timestamp, or zero for the first lap.
func (r *Ring) prevGen(ts uint64) uint64 {
	if ts > r.size {
		return ts - r.size
	}
	return 0
}

// AwaitPrevPublished blocks until ts's slot carries the previous
// generation's fully-published entry. Without this gate, a publisher
// preempted long enough for the ring to lap could interleave its stores
// with the slot's next occupant and tear the entry.
func (r *Ring) AwaitPrevPublished(ts uint64) {
	a := r.SeqAddr(ts)
	want := r.prevGen(ts)
	for r.m.Load(a) != want {
		runtime.Gosched()
	}
}

// PublishSW publishes s as the committed write signature for timestamp ts
// from software (non-transactional) code. The caller must have uniquely
// claimed ts (by winning the timestamp increment); the slot generation gate
// is applied internally.
func (r *Ring) PublishSW(ts uint64, s *sig.Signature) {
	r.AwaitPrevPublished(ts)
	base := r.entryBase(ts)
	r.m.Store(base+offSeq, Writing)
	for i := 0; i < sig.Words; i++ {
		r.m.Store(base+entryHeaderWords+mem.Addr(i), s[i])
	}
	r.m.Store(base+offSeq, ts)
}

// PublishHTM writes the entry for ts from inside a hardware transaction.
// The hardware commit makes the whole entry visible atomically, so no
// seqlock discipline is needed; the write-back-done word is stamped too
// because a hardware committer's writes are visible the instant the entry
// is. Whole cache lines are written at once — the hardware granularity.
func (r *Ring) PublishHTM(t *htm.Txn, ts uint64, s *sig.Signature) {
	base := r.entryBase(ts)
	// Slot generation gate: the previous occupant must be fully published.
	// The monitored read means a concurrent publisher dooms this
	// transaction anyway; an explicit abort covers the already-stale case.
	var header [mem.LineWords]uint64
	t.ReadLine(base, &header)
	if header[offSeq] != r.prevGen(ts) {
		t.Abort(CodeRingBusy)
	}
	header = [mem.LineWords]uint64{}
	header[offSeq] = ts
	header[offDone] = ts
	t.WriteLine(base, &header)
	var line [mem.LineWords]uint64
	for i := 0; i < sig.Lines; i++ {
		copy(line[:], s[i*mem.LineWords:(i+1)*mem.LineWords])
		t.WriteLine(base+entryHeaderWords+mem.Addr(i*mem.LineWords), &line)
	}
}

// SetDone marks ts's write-back as complete (RingSTM only).
func (r *Ring) SetDone(ts uint64) { r.m.Store(r.DoneAddr(ts), ts) }

// AwaitPrevDone blocks until the previous occupant of ts's slot has
// completed its write-back (RingSTM committers call this after claiming
// ts, so done-words advance one generation at a time and WaitDone's
// comparisons stay meaningful across ring laps).
func (r *Ring) AwaitPrevDone(ts uint64) {
	a := r.DoneAddr(ts)
	want := r.prevGen(ts)
	for r.m.Load(a) != want {
		runtime.Gosched()
	}
}

// WaitDone blocks until the write-back of ts's entry has completed.
// Timestamp zero is the pristine ring and is always done. A done-word from
// a later generation means ts's write-back finished long ago (committers
// gate on AwaitPrevDone), so any value >= ts satisfies the wait.
func (r *Ring) WaitDone(ts uint64) {
	a := r.DoneAddr(ts)
	for r.m.Load(a) < ts {
		runtime.Gosched()
	}
}

// ReadEntry copies the signature published for timestamp ts into dst,
// retrying around concurrent publication. It returns false when the entry
// has been reused by a later timestamp (ring rollover), in which case the
// validator must abort.
func (r *Ring) ReadEntry(ts uint64, dst []uint64) bool {
	if ts == 0 {
		// The pristine ring: timestamp 0 committed nothing.
		for i := range dst[:sig.Words] {
			dst[i] = 0
		}
		return true
	}
	base := r.entryBase(ts)
	for {
		s1 := r.m.Load(base + offSeq)
		switch {
		case s1 == Writing || s1 < ts:
			// Publisher in flight (it claimed ts before filling the
			// entry) — wait for it.
			runtime.Gosched()
			continue
		case s1 > ts:
			return false // overwritten: rollover
		}
		for i := 0; i < sig.Words; i++ {
			dst[i] = r.m.Load(base + entryHeaderWords + mem.Addr(i))
		}
		if r.m.Load(base+offSeq) == ts {
			return true
		}
	}
}

// Validate checks readSig against every write signature committed in
// (from, to]. It returns false — the caller must abort — when readSig
// intersects any of them or when the range has rolled off the ring.
func (r *Ring) Validate(readSig *sig.Signature, from, to uint64) bool {
	ok, _ := r.ValidateDetail(readSig, from, to)
	return ok
}

// ValidateDetail is Validate with the failure cause split out: rollover is
// true when validation failed because the range rolled off the ring (the
// validator fell too far behind the commit rate) rather than because of a
// genuine signature intersection. Contention managers use the distinction
// to detect persistent ring pressure.
func (r *Ring) ValidateDetail(readSig *sig.Signature, from, to uint64) (ok, rollover bool) {
	one := [1]*sig.Signature{readSig}
	return r.ValidateMany(one[:], from, to)
}

// ValidateMany is the batched form of ValidateDetail: it checks every
// filter against every write signature committed in (from, to] in a single
// pass over the ring. Each entry is read out of simulated memory exactly
// once and its words are tested word-parallel across all filters
// (sig.AnyIntersectsWords), so validating k filters costs one entry scan
// instead of k — the commit path uses it to validate the read and write
// signatures together, and cross-domain commit uses it per touched ring.
// Nil filters are permitted and skipped.
func (r *Ring) ValidateMany(filters []*sig.Signature, from, to uint64) (ok, rollover bool) {
	if to < from {
		return false, false
	}
	if to-from > r.size {
		return false, true // guaranteed rollover
	}
	var words [sig.Words]uint64
	for i := to; i > from; i-- {
		if !r.ReadEntry(i, words[:]) {
			return false, true
		}
		if sig.AnyIntersectsWords(filters, words[:]) {
			return false, false
		}
	}
	return true, false
}
