package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	if Bits != 2048 || Words != 32 || Lines != 4 {
		t.Fatalf("signature geometry changed: Bits=%d Words=%d Lines=%d", Bits, Words, Lines)
	}
}

func TestAddTest(t *testing.T) {
	var s Signature
	if s.Test(42) {
		t.Fatal("empty signature reported membership")
	}
	s.Add(42)
	if !s.Test(42) {
		t.Fatal("no false negative allowed: added address not found")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	var s Signature
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint32, 500)
	for i := range addrs {
		addrs[i] = rng.Uint32()
		s.Add(addrs[i])
	}
	for _, a := range addrs {
		if !s.Test(a) {
			t.Fatalf("address %d added but Test is false", a)
		}
	}
}

func TestHashBitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		b := HashBit(rng.Uint32())
		if b >= Bits {
			t.Fatalf("HashBit returned %d >= %d", b, Bits)
		}
	}
}

func TestHashBitSpreadsNeighbours(t *testing.T) {
	// Consecutive addresses (array elements) must not all collapse onto a
	// handful of bits, or every array workload would self-conflict.
	seen := make(map[uint32]bool)
	for a := uint32(1); a <= 256; a++ {
		seen[HashBit(a)] = true
	}
	if len(seen) < 200 {
		t.Fatalf("256 consecutive addresses map to only %d distinct bits", len(seen))
	}
}

func TestClearEmpty(t *testing.T) {
	var s Signature
	if !s.Empty() {
		t.Fatal("zero signature not Empty")
	}
	s.Add(1)
	s.Add(99)
	if s.Empty() {
		t.Fatal("non-zero signature reported Empty")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear did not empty the signature")
	}
}

func TestIntersects(t *testing.T) {
	var a, b Signature
	a.Add(10)
	b.Add(20)
	if HashBit(10) != HashBit(20) && a.Intersects(&b) {
		t.Fatal("disjoint signatures intersect")
	}
	b.Add(10)
	if !a.Intersects(&b) {
		t.Fatal("overlapping signatures do not intersect")
	}
}

func TestIntersectsWords(t *testing.T) {
	var a Signature
	a.Add(10)
	w := make([]uint64, Words)
	if a.IntersectsWords(w) {
		t.Fatal("intersects all-zero words")
	}
	b := HashBit(10)
	w[b>>6] = 1 << (b & 63)
	if !a.IntersectsWords(w) {
		t.Fatal("does not intersect matching words")
	}
}

func TestUnionAndNot(t *testing.T) {
	var a, b, c Signature
	a.Add(1)
	b.Add(2)
	a.Union(&b)
	if !a.Test(1) || !a.Test(2) {
		t.Fatal("union lost a member")
	}
	// a &^ b should retain 1 and drop 2 (assuming no collision).
	if HashBit(1) == HashBit(2) {
		t.Skip("hash collision between test addresses")
	}
	a.AndNot(&b, &c)
	if !c.Test(1) || c.Test(2) {
		t.Fatal("AndNot result wrong")
	}
}

func TestPopCountEqualCopy(t *testing.T) {
	var a, b Signature
	a.Add(3)
	a.Add(4)
	want := 2
	if HashBit(3) == HashBit(4) {
		want = 1
	}
	if got := a.PopCount(); got != want {
		t.Fatalf("PopCount = %d, want %d", got, want)
	}
	b.CopyFrom(&a)
	if !a.Equal(&b) {
		t.Fatal("copy not Equal to original")
	}
	b.Add(77777)
	if a.Equal(&b) && HashBit(77777) != HashBit(3) && HashBit(77777) != HashBit(4) {
		t.Fatal("Equal after divergence")
	}
}

func TestAddBit(t *testing.T) {
	var s Signature
	s.AddBit(0)
	s.AddBit(2047)
	if s[0]&1 == 0 || s[Words-1]>>63 == 0 {
		t.Fatal("AddBit boundary bits not set")
	}
	if got := s.PopCount(); got != 2 {
		t.Fatalf("PopCount = %d, want 2", got)
	}
}

func TestCollisionFree(t *testing.T) {
	if !CollisionFree([]uint32{}) {
		t.Fatal("empty set should be collision free")
	}
	// Find a genuine collision pair by brute force to validate the negative
	// case.
	byBit := make(map[uint32]uint32)
	var x, y uint32
	for a := uint32(1); ; a++ {
		b := HashBit(a)
		if prev, ok := byBit[b]; ok {
			x, y = prev, a
			break
		}
		byBit[b] = a
	}
	if CollisionFree([]uint32{x, y}) {
		t.Fatalf("addresses %d and %d collide but CollisionFree says no", x, y)
	}
}

func TestQuickUnionSuperset(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b Signature
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		u := a
		u.Union(&b)
		for _, x := range xs {
			if !u.Test(x) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Test(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectsSymmetric(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b Signature
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		return a.Intersects(&b) == b.Intersects(&a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotDisjointFromSubtrahend(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b, d Signature
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		a.AndNot(&b, &d)
		return !d.Intersects(&b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnyIntersectsWords(t *testing.T) {
	var entry Signature
	entry.Add(500)
	var hit, miss Signature
	hit.Add(500)
	miss.Add(600)
	if HashBit(500) == HashBit(600) {
		t.Skip("hash collision between test addresses")
	}
	w := entry[:]
	if AnyIntersectsWords(nil, w) {
		t.Fatal("empty filter set intersected")
	}
	if AnyIntersectsWords([]*Signature{nil, &miss}, w) {
		t.Fatal("disjoint filters intersected")
	}
	if !AnyIntersectsWords([]*Signature{&miss, &hit}, w) {
		t.Fatal("intersecting filter missed")
	}
	if !AnyIntersectsWords([]*Signature{nil, &hit}, w) {
		t.Fatal("nil slot masked an intersecting filter")
	}
	var zero [Words]uint64
	if AnyIntersectsWords([]*Signature{&hit}, zero[:]) {
		t.Fatal("all-zero entry words intersected")
	}
}

func TestAnyIntersectsWordsMatchesIntersects(t *testing.T) {
	f := func(aAddrs, bAddrs []uint32) bool {
		var a, b Signature
		for _, x := range aAddrs {
			a.Add(x)
		}
		for _, x := range bAddrs {
			b.Add(x)
		}
		return AnyIntersectsWords([]*Signature{&a}, b[:]) == a.Intersects(&b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
