// Package sig implements the cache-aligned Bloom-filter signatures Part-HTM
// uses for all of its conflict-management metadata.
//
// Following the paper, a signature is a bit array of 2048 bits — 32 words,
// i.e. exactly 4 cache lines of the simulated memory — with a single hash
// function. A signature therefore fits the HTM resource budget (reading one
// costs 4 monitored cache lines) while keeping the false-conflict rate low.
package sig

import "math/bits"

const (
	// Bits is the signature size in bits (2048, as in the paper).
	Bits = 2048
	// Words is the signature size in 64-bit words.
	Words = Bits / 64
	// Lines is the signature size in 64-byte cache lines.
	Lines = Words / 8
)

// Signature is a 2048-bit Bloom filter over memory addresses. The zero value
// is an empty signature ready for use.
type Signature [Words]uint64

// HashBit maps an address to its bit position in [0, Bits). A single
// multiplicative (Fibonacci) hash is used, matching the paper's single hash
// function per signature.
func HashBit(a uint32) uint32 {
	return uint32((uint64(a) * 0x9E3779B97F4A7C15) >> (64 - 11)) // top 11 bits => 0..2047
}

// Add records address a in the signature.
func (s *Signature) Add(a uint32) {
	b := HashBit(a)
	s[b>>6] |= 1 << (b & 63)
}

// AddBit sets bit b directly. Used by tests and by code replaying signature
// words read from simulated memory.
func (s *Signature) AddBit(b uint32) {
	s[b>>6] |= 1 << (b & 63)
}

// Test reports whether address a may have been added (Bloom semantics:
// false positives possible, false negatives impossible).
func (s *Signature) Test(a uint32) bool {
	b := HashBit(a)
	return s[b>>6]&(1<<(b&63)) != 0
}

// Clear empties the signature.
func (s *Signature) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Empty reports whether no bits are set.
func (s *Signature) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share any set bit — the bitwise-AND
// test Part-HTM uses for every validation.
func (s *Signature) Intersects(o *Signature) bool {
	for i := range s {
		if s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectsWords reports whether s shares any set bit with the raw words w.
// w must have at least Words elements; used when the other signature was
// just read out of simulated memory.
func (s *Signature) IntersectsWords(w []uint64) bool {
	for i := range s {
		if s[i]&w[i] != 0 {
			return true
		}
	}
	return false
}

// AnyIntersectsWords reports whether any of the filters shares a set bit
// with the raw words w. It is the word-parallel kernel of the ring's
// batched ValidateMany: each non-zero entry word is tested against every
// filter before moving on, so a mostly-sparse committed signature costs one
// pass over its words regardless of how many filters are open against it.
// w must have at least Words elements; nil filters are skipped.
func AnyIntersectsWords(filters []*Signature, w []uint64) bool {
	for i := 0; i < Words; i++ {
		ew := w[i]
		if ew == 0 {
			continue
		}
		for _, f := range filters {
			if f != nil && f[i]&ew != 0 {
				return true
			}
		}
	}
	return false
}

// Union merges o into s.
func (s *Signature) Union(o *Signature) {
	for i := range s {
		s[i] |= o[i]
	}
}

// AndNot returns s &^ o into dst: the bits of s that are not in o. Part-HTM
// uses this to subtract its own aggregate write signature from the global
// write-locks signature ("others_locks" in the paper's pseudo-code).
func (s *Signature) AndNot(o *Signature, dst *Signature) {
	for i := range s {
		dst[i] = s[i] &^ o[i]
	}
}

// CopyFrom overwrites s with o.
func (s *Signature) CopyFrom(o *Signature) { *s = *o }

// PopCount returns the number of set bits.
func (s *Signature) PopCount() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether the two signatures are identical.
func (s *Signature) Equal(o *Signature) bool { return *s == *o }

// CollisionFree reports whether the given addresses all map to distinct
// bits. Correctness tests use it to pick address sets on which signature
// aliasing cannot mask or fabricate conflicts.
func CollisionFree(addrs []uint32) bool {
	seen := make(map[uint32]struct{}, len(addrs))
	for _, a := range addrs {
		b := HashBit(a)
		if _, dup := seen[b]; dup {
			return false
		}
		seen[b] = struct{}{}
	}
	return true
}
