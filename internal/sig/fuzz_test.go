package sig

import (
	"encoding/binary"
	"testing"
)

// addrsFromFuzz decodes the fuzz input into two address sets: a length
// prefix splits the word stream, so the fuzzer explores both set sizes and
// contents.
func addrsFromFuzz(data []byte) (as, bs []uint32) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0])
	data = data[1:]
	var addrs []uint32
	for len(data) >= 4 {
		addrs = append(addrs, binary.LittleEndian.Uint32(data[:4]))
		data = data[4:]
	}
	if split > len(addrs) {
		split = len(addrs)
	}
	return addrs[:split], addrs[split:]
}

// FuzzSignature checks the Bloom-filter invariants Part-HTM's conflict
// detection rests on, for arbitrary address sets: no false negatives,
// symmetric and word-level-consistent intersection, union as superset,
// AndNot disjointness, and Clear restoring the empty signature.
func FuzzSignature(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{0})
	f.Add([]byte{255, 0xFF, 0xEE, 0xDD, 0xCC, 0x01, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		as, bs := addrsFromFuzz(data)
		var sa, sb Signature
		for _, a := range as {
			sa.Add(a)
		}
		for _, b := range bs {
			sb.Add(b)
		}

		// Bloom filters never produce false negatives.
		for _, a := range as {
			if !sa.Test(a) {
				t.Fatalf("inserted address %#x not found", a)
			}
			if sa[HashBit(a)>>6]&(1<<(HashBit(a)&63)) == 0 {
				t.Fatalf("bit for %#x not set", a)
			}
		}
		for _, b := range bs {
			if !sb.Test(b) {
				t.Fatalf("inserted address %#x not found", b)
			}
		}
		if len(as) > 0 && sa.Empty() {
			t.Fatal("signature empty after insertions")
		}
		if got, want := sa.PopCount() > len(as), false; got != want {
			t.Fatalf("PopCount %d exceeds insertions %d", sa.PopCount(), len(as))
		}

		// Intersection is symmetric and agrees with the word-level variant
		// used on signatures read back out of simulated memory.
		if sa.Intersects(&sb) != sb.Intersects(&sa) {
			t.Fatal("Intersects not symmetric")
		}
		if sa.Intersects(&sb) != sa.IntersectsWords(sb[:]) {
			t.Fatal("Intersects disagrees with IntersectsWords")
		}

		// A shared inserted address forces an intersection (no false
		// negative on the pairwise test either).
		shared := map[uint32]bool{}
		for _, a := range as {
			shared[a] = true
		}
		for _, b := range bs {
			if shared[b] && !sa.Intersects(&sb) {
				t.Fatalf("shared address %#x not detected as intersection", b)
			}
		}

		// Union contains both operands; AndNot removes the subtrahend.
		u := sa
		u.Union(&sb)
		for _, a := range append(append([]uint32{}, as...), bs...) {
			if !u.Test(a) {
				t.Fatalf("union lost address %#x", a)
			}
		}
		var diff Signature
		u.AndNot(&sb, &diff)
		if diff.Intersects(&sb) {
			t.Fatal("AndNot result intersects the subtracted signature")
		}
		check := u
		check.Union(&sa)
		if !check.Equal(&u) {
			t.Fatal("union not idempotent over its operand")
		}

		// Clear restores the zero value.
		u.Clear()
		if !u.Empty() || u.PopCount() != 0 {
			t.Fatal("Clear left bits set")
		}
		var zero Signature
		if !u.Equal(&zero) {
			t.Fatal("cleared signature differs from the zero value")
		}
	})
}
