// Package htmgl implements the paper's primary baseline: best-effort HTM
// with the default single-global-lock software fallback (HTM-GL).
//
// A transaction is attempted as one hardware transaction up to Retries
// times (5 in the paper's evaluation), subscribing to the global lock at
// begin; when the attempts are exhausted the transaction runs under the
// global lock. The lemming effect is avoided as in the paper: an aborted
// transaction does not retry in hardware until the global lock is free.
//
// HTM-GL is domain-oblivious: it keeps exactly one global lock however the
// memory substrate is sharded, so every address takes domain-0 semantics
// (the single-domain topology of internal/domain). Only Part-HTM
// (internal/core) routes its commit metadata per domain.
package htmgl

import (
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

const codeGLock uint8 = 1

// Config tunes HTM-GL.
type Config struct {
	// Retries is the number of hardware attempts before falling back to
	// the global lock.
	Retries int
}

// DefaultConfig matches the paper's evaluation (5 hardware retries).
func DefaultConfig() Config { return Config{Retries: 5} }

// System is an HTM-GL instance.
type System struct {
	m     *mem.Memory
	eng   *htm.Engine
	glock mem.Addr
	cfg   Config
	stats tm.Stats
	run   *exec.Runner
}

// New creates an HTM-GL system over the engine's memory.
func New(eng *htm.Engine, cfg Config) *System {
	if cfg.Retries <= 0 {
		cfg.Retries = 5
	}
	s := &System{
		m:     eng.Memory(),
		eng:   eng,
		glock: eng.Memory().AllocLines(1),
		cfg:   cfg,
	}
	// Fast (hardware) attempts gated on the global lock, then the lock
	// itself: the paper's default fallback schedule, with no mid level.
	s.run = exec.New(exec.Policy{FastAttempts: cfg.Retries},
		&s.stats, func() bool { return s.m.Load(s.glock) == 0 })
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "HTM-GL" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// SetTrace attaches a trace sink to the execution kernel (nil detaches).
// Attach before starting workers.
func (s *System) SetTrace(sink *trace.Sink) { s.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (s *System) SetGovernor(g *governor.Governor) { s.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches): the
// engine records conflict lines, capacity overflows, and footprints; the
// kernel registers as the time-series source. Attach before starting
// workers.
func (s *System) SetProfile(p *prof.Profile) {
	s.run.SetProfile(p)
	s.eng.SetProfile(p)
}

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (s *System) BumpPressure(n int64) { s.run.BumpPressure(n) }

// Degraded reports whether the system is currently in degraded serialized
// mode (observability and tests).
func (s *System) Degraded() bool { return s.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (s *System) Pressure() int64 { return s.run.Pressure() }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// Engine returns the underlying HTM engine (Table 1 abort breakdown).
func (s *System) Engine() *htm.Engine { return s.eng }

// tx adapts the current path to tm.Tx.
type tx struct {
	s      *System
	thread int
	ht     *htm.Txn // nil on the global-lock path
}

var _ tm.Tx = (*tx)(nil)

func (x *tx) Thread() int { return x.thread }
func (x *tx) Pause()      {} // HTM-GL has no partitioned execution

func (x *tx) Read(a mem.Addr) uint64 {
	if x.ht != nil {
		return x.ht.Read(a)
	}
	return x.s.m.Load(a)
}

func (x *tx) Write(a mem.Addr, v uint64) {
	if x.ht != nil {
		x.ht.Write(a, v)
		return
	}
	x.s.m.Store(a, v)
}

// WriteLocal costs hardware write capacity like Write but skips the
// conflict monitor (the data is thread private); the lock path stores
// directly.
func (x *tx) WriteLocal(a mem.Addr, v uint64) {
	if x.ht != nil {
		x.ht.WriteLocal(a, v)
		return
	}
	x.s.m.Store(a, v)
}

func (x *tx) Work(c int64) {
	if x.ht != nil {
		x.ht.Work(c)
	}
	tm.Spin(c)
}

// NonTxWork still runs inside the hardware transaction on the fast path —
// HTM-GL cannot take it out — so it pays the timer-quantum cost. This is
// precisely the disadvantage Part-HTM's software framework removes.
func (x *tx) NonTxWork(c int64) {
	if x.ht != nil {
		x.ht.Work(c)
	}
	tm.Spin(c)
}

// Atomic implements tm.System. The exec kernel drives the paper's schedule
// — Retries gated hardware attempts, then the global lock — and records all
// commit/abort outcomes.
func (s *System) Atomic(thread int, body func(tm.Tx)) {
	txn := exec.Txn{
		// Kernel dispatch: the level runs the caller's body, unbounded at
		// this site; an oversized transaction burns its retries and falls to
		// the global lock — the baseline behavior Part-HTM improves on.
		// parthtm:bigtx — dispatch wrapper, bounded at the workload site
		Fast: func() htm.Result { return s.hwAttempt(thread, body) },
		Slow: func() { s.lockAttempt(thread, body) },
	}
	s.run.Run(thread, &txn)
}

// lockAttempt runs the body under the global lock.
func (s *System) lockAttempt(thread int, body func(tm.Tx)) {
	for !s.m.CAS(s.glock, 0, 1) {
		runtime.Gosched()
	}
	start := time.Now()
	body(&tx{s: s, thread: thread})
	s.m.Store(s.glock, 0)
	s.stats.Shard(thread).AddSerial(time.Since(start))
}

func (s *System) hwAttempt(thread int, body func(tm.Tx)) (res htm.Result) {
	x := &tx{s: s, thread: thread}
	defer func() {
		r := recover()
		if ar, ok := htm.AsAbort(r); ok {
			res = ar
		} else if r != nil {
			if x.ht != nil {
				x.ht.Cancel()
			}
			panic(r)
		}
	}()
	ht := s.eng.Begin(thread)
	x.ht = ht
	if ht.Read(s.glock) != 0 {
		ht.Abort(codeGLock)
	}
	body(x)
	ht.Commit()
	return htm.Result{Committed: true}
}
