package htmgl

import (
	"sync"
	"testing"
	"time"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

func newSys(mut func(*htm.Config)) *System {
	cfg := htm.DefaultConfig()
	cfg.Quantum = 0
	cfg.ReadEvictProb = 0
	if mut != nil {
		mut(&cfg)
	}
	return New(htm.New(mem.New(1<<16), cfg), DefaultConfig())
}

func TestSmallTxCommitsInHardware(t *testing.T) {
	s := newSys(nil)
	a := s.Memory().Alloc(1)
	for i := 0; i < 20; i++ {
		s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	st := s.Stats().Snapshot()
	if st.CommitsHTM != 20 || st.CommitsGL != 0 {
		t.Fatalf("want 20 hardware commits, got %+v", st)
	}
}

func TestCapacityFallsToGlobalLock(t *testing.T) {
	s := newSys(func(c *htm.Config) {
		c.WriteLines = 4
		c.WriteWays = 64
		c.WriteSets = 1
	})
	m := s.Memory()
	base := m.AllocLines(8)
	s.Atomic(0, func(x tm.Tx) {
		for l := 0; l < 8; l++ {
			x.Write(base+mem.Addr(l*mem.LineWords), uint64(l))
		}
	})
	st := s.Stats().Snapshot()
	if st.CommitsGL != 1 {
		t.Fatalf("want global-lock commit, got %+v", st)
	}
	if st.AbortsCapacity == 0 {
		t.Fatal("expected capacity aborts before the fallback")
	}
	// Capacity aborts should not be retried 5 times pointlessly? HTM-GL
	// retries blindly — that is its documented weakness; all 5 attempts
	// abort for capacity.
	if st.AbortsCapacity != 5 {
		t.Fatalf("want 5 capacity aborts (blind retries), got %d", st.AbortsCapacity)
	}
}

func TestTimerQuantumFallsToGlobalLock(t *testing.T) {
	s := newSys(func(c *htm.Config) { c.Quantum = 100 })
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		x.NonTxWork(500) // HTM-GL cannot take non-transactional work out
		x.Write(a, 1)
	})
	st := s.Stats().Snapshot()
	if st.CommitsGL != 1 || st.AbortsOther != 5 {
		t.Fatalf("want GL commit after 5 timer aborts, got %+v", st)
	}
}

func TestGlobalLockSerializesWithHardware(t *testing.T) {
	// While one transaction runs under the global lock, hardware attempts
	// must abort (lock subscription) and not commit mid-critical-section.
	// Force thread 0 onto the GL path by exceeding capacity, and have it
	// hold the critical section while we probe.
	inCS := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sCap := newSys(func(c *htm.Config) { c.WriteLines = 1; c.WriteWays = 1; c.WriteSets = 1 })
	mCap := sCap.Memory()
	aa := mCap.AllocLines(1)
	bb := mCap.AllocLines(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sCap.Atomic(0, func(x tm.Tx) {
			x.Write(aa, 1)
			x.Write(bb, 1) // 2 lines > capacity: ends up on GL path
			once.Do(func() {
				close(inCS)
				<-release
			})
		})
	}()
	<-inCS
	done := make(chan struct{})
	go func() {
		sCap.Atomic(1, func(x tm.Tx) { x.Write(aa, 7) })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("hardware transaction committed inside the global-lock critical section")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	<-done
	if got := mCap.Load(aa); got != 7 {
		t.Fatalf("aa = %d, want 7", got)
	}
}

func TestPauseIsNoOp(t *testing.T) {
	s := newSys(nil)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		x.Write(a, 1)
		x.Pause()
		x.Write(a, 2)
	})
	if s.Stats().Snapshot().CommitsHTM != 1 {
		t.Fatal("Pause must not affect HTM-GL")
	}
	if got := s.Memory().Load(a); got != 2 {
		t.Fatalf("a = %d", got)
	}
}
