package prof

import "sort"

// DefaultTopK is the sketch capacity used when Config.TopK is not set: 32
// counters comfortably cover the handful of genuinely hot lines any
// workload in this repository produces while keeping the replace-min scan
// short enough for an abort path.
const DefaultTopK = 32

// Sketch is a SpaceSaving heavy-hitter summary over cache-line addresses.
// It keeps at most cap (key, count, err) triples; when a new key arrives
// at capacity it replaces the minimum-count entry, inheriting its count as
// the new entry's overestimation error. The classic guarantees hold:
//
//   - count is an upper bound on the key's true frequency, and
//     count-err a lower bound;
//   - any key whose true frequency exceeds Total()/Cap() is present.
//
// After a truncating Merge only the lower bound survives per key (a key
// evicted from one source leaves its mass behind in that source's other
// entries), and the presence guarantee relaxes to 2*Total()/Cap(). The
// fuzz harness pins exactly these post-merge properties.
//
// A Sketch is single-writer like tm.Counter: only the owning thread calls
// Observe. Readers (Top, Count, Merge sources) must run after the writer
// has quiesced — the harness joins its workers before reporting, exactly
// as it does for trace buffers. Observe is allocation-free: the arrays are
// sized at construction and never grow.
type Sketch struct {
	keys   []uint32
	counts []uint64
	errs   []uint64
	n      int
	total  uint64
}

// HotLine is one sketch entry surfaced by Top: an estimated hit count and
// its overestimation bound for one cache line. True count lies in
// [Count-Err, Count].
type HotLine struct {
	Line  uint32 `json:"line"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// NewSketch creates a sketch with capacity k (k <= 0 selects DefaultTopK).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultTopK
	}
	return &Sketch{
		keys:   make([]uint32, k),
		counts: make([]uint64, k),
		errs:   make([]uint64, k),
	}
}

// Cap returns the sketch capacity.
func (s *Sketch) Cap() int {
	if s == nil {
		return 0
	}
	return len(s.keys)
}

// Len returns the number of occupied entries.
func (s *Sketch) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Total returns the number of observations folded into the sketch.
func (s *Sketch) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Observe records one occurrence of key (owner thread only). It is
// allocation-free and htmsafe by construction: a linear scan over the
// fixed arrays and plain stores.
func (s *Sketch) Observe(key uint32) { s.ObserveN(key, 1) }

// ObserveN records n occurrences of key (owner thread only).
func (s *Sketch) ObserveN(key uint32, n uint64) {
	if s == nil || n == 0 {
		return
	}
	s.total += n
	// Existing entry: bump. The scan also remembers the minimum for the
	// replacement case so one pass serves both.
	min := 0
	for i := 0; i < s.n; i++ {
		if s.keys[i] == key {
			s.counts[i] += n
			return
		}
		if s.counts[i] < s.counts[min] {
			min = i
		}
	}
	if s.n < len(s.keys) {
		s.keys[s.n] = key
		s.counts[s.n] = n
		s.errs[s.n] = 0
		s.n++
		return
	}
	// Replace the minimum: the evicted count becomes the newcomer's error
	// (it may have been the evicted key's occurrences, not ours).
	s.errs[min] = s.counts[min]
	s.counts[min] += n
	s.keys[min] = key
}

// Count returns the estimated count and error bound for key, and whether
// the key is present. An absent key's true count is at most the sketch's
// minimum entry count (or Total when the sketch is not full).
func (s *Sketch) Count(key uint32) (count, err uint64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	for i := 0; i < s.n; i++ {
		if s.keys[i] == key {
			return s.counts[i], s.errs[i], true
		}
	}
	return 0, 0, false
}

// Merge folds o into s (union counts and errors, then keep the top Cap
// entries by count with deterministic key-order tie-breaking). Merging is
// exactly commutative; it is associative whenever the union fits the
// capacity, and preserves the heavy-hitter guarantee with the usual
// merged-summary relaxation (keys above 2*Total/Cap always survive).
// Both sketches' writers must have quiesced.
func (s *Sketch) Merge(o *Sketch) {
	if s == nil || o == nil || o.n == 0 {
		return
	}
	type ent struct {
		key        uint32
		count, err uint64
	}
	union := make([]ent, 0, s.n+o.n)
	for i := 0; i < s.n; i++ {
		union = append(union, ent{s.keys[i], s.counts[i], s.errs[i]})
	}
	for i := 0; i < o.n; i++ {
		found := false
		for j := range union {
			if union[j].key == o.keys[i] {
				union[j].count += o.counts[i]
				union[j].err += o.errs[i]
				found = true
				break
			}
		}
		if !found {
			union = append(union, ent{o.keys[i], o.counts[i], o.errs[i]})
		}
	}
	sort.Slice(union, func(a, b int) bool {
		if union[a].count != union[b].count {
			return union[a].count > union[b].count
		}
		return union[a].key < union[b].key
	})
	if len(union) > len(s.keys) {
		union = union[:len(s.keys)]
	}
	s.n = len(union)
	for i, e := range union {
		s.keys[i], s.counts[i], s.errs[i] = e.key, e.count, e.err
	}
	s.total += o.total
}

// Top appends the sketch's entries to out, sorted by count descending
// (key ascending on ties), and returns the result. Writers must have
// quiesced.
func (s *Sketch) Top(out []HotLine) []HotLine {
	if s == nil {
		return out
	}
	start := len(out)
	for i := 0; i < s.n; i++ {
		out = append(out, HotLine{Line: s.keys[i], Count: s.counts[i], Err: s.errs[i]})
	}
	top := out[start:]
	sort.Slice(top, func(a, b int) bool {
		if top[a].Count != top[b].Count {
			return top[a].Count > top[b].Count
		}
		return top[a].Line < top[b].Line
	})
	return out
}

// Reset empties the sketch (owner thread, or after writers quiesced).
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	s.n = 0
	s.total = 0
}
