package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Sample is one time-series point: cumulative tm.Stats counters plus the
// governor gauges, as captured by the attached runner's source function.
// Counters are cumulative since the runner's last stats reset; consumers
// difference adjacent samples for rates. Source changes when a new runner
// attaches (a sweep over several systems), so series from different
// systems never get differenced across the seam.
type Sample struct {
	TS     int64 `json:"ts_ns"` // nanoseconds since the profile epoch
	Source int32 `json:"source"`

	CommitsHTM uint64 `json:"commits_htm"`
	CommitsSW  uint64 `json:"commits_sw"`
	CommitsGL  uint64 `json:"commits_gl"`

	AbortsConflict uint64 `json:"aborts_conflict"`
	AbortsCapacity uint64 `json:"aborts_capacity"`
	AbortsExplicit uint64 `json:"aborts_explicit"`
	AbortsOther    uint64 `json:"aborts_other"`

	Escalations     uint64 `json:"escalations"`
	DegradedCommits uint64 `json:"degraded_commits"`

	// Governor state (zero when no governor is attached to the runner).
	Shed             uint64 `json:"shed"`
	BudgetSerialized uint64 `json:"budget_serialized"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	BreakerSlow      uint64 `json:"breaker_slow"`
	Inflight         int64  `json:"inflight"`
	TimeBudgetNanos  int64  `json:"time_budget_ns"`

	// Kernel gauges.
	Degraded bool  `json:"degraded"`
	Pressure int64 `json:"pressure"`
}

// SampleMark is one labelled instant in the series (the harness marks
// each system/rate run so one profile can record a whole sweep).
type SampleMark struct {
	TS    int64  `json:"ts_ns"`
	Label string `json:"label"`
}

// epoch anchors the profile's monotonic sample clock.
var epoch = time.Now()

// nowNanos returns nanoseconds since the profile epoch. It reads the
// clock and therefore must never run inside a hardware window; only the
// sampler goroutine and Mark call it.
func nowNanos() int64 { return time.Since(epoch).Nanoseconds() }

// SetSource registers the snapshot function the sampler polls (nil
// detaches). exec.Runner registers itself when a profile is attached;
// each registration bumps the source sequence stamped into samples.
// Not safe to flip while the attached runner's workers run.
func (p *Profile) SetSource(f func() Sample) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src = f
	p.srcSeq++
}

// Mark appends a labelled instant to the series.
func (p *Profile) Mark(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.marks = append(p.marks, SampleMark{TS: nowNanos(), Label: label})
}

// Marks returns a copy of the recorded marks.
func (p *Profile) Marks() []SampleMark {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SampleMark, len(p.marks))
	copy(out, p.marks)
	return out
}

// Start launches the periodic sampler (idempotent; a nil profile or an
// already-running sampler is a no-op). The sampler holds the most recent
// Config.SampleCap samples — a flight recorder, like the trace rings.
func (p *Profile) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	if p.ring == nil {
		p.ring = make([]Sample, p.cfg.SampleCap)
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop halts the sampler and waits for its goroutine to exit (idempotent).
func (p *Profile) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Profile) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(p.cfg.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			p.sampleOnce()
		}
	}
}

// sampleOnce polls the source and appends one sample to the ring. Also
// used directly by tests (and by Stop-less callers wanting a final point).
func (p *Profile) sampleOnce() {
	p.mu.Lock()
	src, seq := p.src, p.srcSeq
	p.mu.Unlock()
	if src == nil {
		return
	}
	s := src() // outside the lock: it sums the runner's stats shards
	s.TS = nowNanos()
	s.Source = seq
	p.mu.Lock()
	if p.ring == nil {
		p.ring = make([]Sample, p.cfg.SampleCap)
	}
	p.ring[p.pos] = s
	p.pos++
	if p.pos == len(p.ring) {
		p.pos = 0
		p.wrap = true
	}
	p.mu.Unlock()
}

// Samples returns the recorded samples in chronological order.
func (p *Profile) Samples() []Sample {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.wrap {
		out := make([]Sample, p.pos)
		copy(out, p.ring[:p.pos])
		return out
	}
	out := make([]Sample, 0, len(p.ring))
	out = append(out, p.ring[p.pos:]...)
	out = append(out, p.ring[:p.pos]...)
	return out
}

// Series is the exported time-series document. Footprints carries the
// whole session's merged footprint rows (SessionFootprints), so a profile
// written after a multi-row sweep still reconciles against static bounds.
type Series struct {
	Samples    []Sample        `json:"samples"`
	Marks      []SampleMark    `json:"marks,omitempty"`
	Footprints []FootprintStat `json:"footprints,omitempty"`
}

// WriteJSON writes the recorded time series as an indented JSON document.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Series{
		Samples:    p.Samples(),
		Marks:      p.Marks(),
		Footprints: p.SessionFootprints(),
	})
}

// DecodeSeries reads a Series document written by WriteJSON. Decoding is
// strict — an unknown field means the document is not a profile (or the
// schema drifted), and the consumers (parthtm-vet -prof) must fail loudly
// rather than reconcile against garbage.
func DecodeSeries(r io.Reader) (*Series, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Series
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decoding profile series: %w", err)
	}
	return &s, nil
}

// csvHeader lists the CSV columns, matching Sample field order.
const csvHeader = "ts_ns,source,commits_htm,commits_sw,commits_gl," +
	"aborts_conflict,aborts_capacity,aborts_explicit,aborts_other," +
	"escalations,degraded_commits,shed,budget_serialized,breaker_trips," +
	"breaker_slow,inflight,time_budget_ns,degraded,pressure"

// WriteCSV writes the recorded samples as CSV (marks are JSON-only).
func (p *Profile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, s := range p.Samples() {
		deg := 0
		if s.Degraded {
			deg = 1
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.TS, s.Source, s.CommitsHTM, s.CommitsSW, s.CommitsGL,
			s.AbortsConflict, s.AbortsCapacity, s.AbortsExplicit, s.AbortsOther,
			s.Escalations, s.DegradedCommits, s.Shed, s.BudgetSerialized,
			s.BreakerTrips, s.BreakerSlow, s.Inflight, s.TimeBudgetNanos,
			deg, s.Pressure)
		if err != nil {
			return err
		}
	}
	return nil
}
