// Package prof is the abort-attribution profiler: where tmtrace records
// *when* and *why* transactions abort, prof records *where* — which cache
// lines are conflict hot spots, which associativity sets run hot, and how
// big transactional footprints actually are at commit and abort time. It
// is the address-level telemetry substrate the trace-driven self-tuning
// controller consumes, and the tool that makes the Dice/Harris/Kogan/Lev
// malloc-placement effect visible in the simulator (see the harness
// heatmap experiment).
//
// # Capture planes
//
// 1. Conflict attribution: every time a hardware transaction dooms a rival
// over a line (requester-wins invalidation), the requester records the
// line into its shard's bounded SpaceSaving sketch and bumps the line's
// associativity-set heat counter. Top-K hot lines fall out of merging the
// per-thread sketches.
//
// 2. Footprint profiling: at every commit and abort the engine records the
// transaction's read-line count, write-line count, and peak
// set occupancy into log-bucketed histograms (trace/hist), split by
// commit-path class (whole-hardware fast window vs sub-HTM window) and
// outcome (commit, or the abort cause).
//
// 3. Time-series sampling: a periodic sampler snapshots the attached
// runner's tm.Stats counters and governor state into a fixed ring,
// exported as JSON or CSV so abort-rate trends over a run are visible
// instead of only end-of-run totals.
//
// # Memory model
//
// A Profile owns one Shard per hardware slot/thread, each cache-line
// padded. A Shard is single-writer — only the owning thread calls the
// Record* hooks — following exactly the tm.Stats / trace.Buffer
// discipline: recording is a bounded linear scan plus plain stores, no
// locks, no atomic read-modify-write, and no allocation. The Record*
// hooks are htmsafe by construction (the parthtm-vet htmregion analyzer
// admits them inside hardware windows and rejects every other prof call
// there); they tolerate a nil receiver as a no-op, so the disabled path
// is a single branch. Merged queries (TopK, SetHeat, Footprints) must run
// after the writers have quiesced, exactly like trace exports.
package prof

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace/hist"
)

// Commit-path classes for footprint profiling. The values are stored in
// htm.Txn and travel through the Record hooks as plain uint8.
const (
	// ClassFast is a whole-hardware window (the fast path, HTM-GL's
	// single transaction, HLE's elided section, NOrecRH's hardware run).
	ClassFast uint8 = iota
	// ClassSub is a sub-HTM window of Part-HTM's partitioned path.
	ClassSub
	ClassCount
)

// ClassName returns the stable short name of a commit-path class.
func ClassName(c uint8) string {
	switch c {
	case ClassFast:
		return "fast"
	case ClassSub:
		return "sub"
	}
	return "class?"
}

// Footprint outcomes. OutcomeCommit is 0; the abort outcomes mirror the
// htm.AbortReason taxonomy value for value (Conflict=1 .. Other=4, pinned
// by a test) so the engine can cast the reason directly.
const (
	OutcomeCommit uint8 = iota
	OutcomeConflict
	OutcomeCapacity
	OutcomeExplicit
	OutcomeOther
	OutcomeCount
)

// OutcomeName returns the stable short name of a footprint outcome.
func OutcomeName(o uint8) string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeConflict:
		return "conflict"
	case OutcomeCapacity:
		return "capacity"
	case OutcomeExplicit:
		return "explicit"
	case OutcomeOther:
		return "other"
	}
	return "outcome?"
}

// footprint is one (class, outcome) cell's distributions.
type footprint struct {
	read  hist.Histogram // distinct monitored read lines
	write hist.Histogram // distinct write lines (monitored + thread-private)
	occ   hist.Histogram // peak associativity-set occupancy (ways)
}

// Shard is one thread's profiler cell: the conflict sketch, the per-set
// heat counters, and the footprint histograms. Only the owning thread may
// call the Record* hooks; any goroutine may run the merged queries after
// the writer has quiesced. The trailing padding keeps neighbouring
// shards' hot words on distinct cache lines.
type Shard struct {
	sketch  Sketch
	conHeat []uint64 // conflict events per associativity set
	capHeat []uint64 // capacity overflows per associativity set
	// Domain heat: conflict/capacity events per memory domain, populated
	// only when a domain router is attached (sharded-domain topologies).
	domCon []uint64
	domCap []uint64
	domOf  func(line uint32) int
	foot   [ClassCount][OutcomeCount]footprint
	thread int32
	_      [64]byte
}

// RecordConflict records one conflict event on line (owner thread only):
// the requester doomed a rival over it. Allocation-free and htmsafe by
// construction; nil receiver is a no-op.
func (s *Shard) RecordConflict(line uint32) {
	if s == nil {
		return
	}
	s.sketch.Observe(line)
	s.conHeat[line%uint32(len(s.conHeat))]++
	if s.domOf != nil {
		if d := s.domOf(line); d >= 0 && d < len(s.domCon) {
			s.domCon[d]++
		}
	}
}

// RecordCapacity records one capacity overflow on line — the access that
// exceeded the write-set ways or line budget (owner thread only).
// Allocation-free and htmsafe by construction; nil receiver is a no-op.
func (s *Shard) RecordCapacity(line uint32) {
	if s == nil {
		return
	}
	s.capHeat[line%uint32(len(s.capHeat))]++
	if s.domOf != nil {
		if d := s.domOf(line); d >= 0 && d < len(s.domCap) {
			s.domCap[d]++
		}
	}
}

// RecordFootprint records one transaction outcome's footprint: distinct
// read lines, write lines (monitored plus thread-private), and peak
// set occupancy, keyed by commit-path class and outcome (owner thread
// only). Allocation-free and htmsafe by construction; nil receiver is a
// no-op. Out-of-range class/outcome values are clamped rather than
// dropped so miscounts surface as visible skew, not silence.
func (s *Shard) RecordFootprint(class, outcome uint8, readLines, writeLines, occ int) {
	if s == nil {
		return
	}
	if class >= ClassCount {
		class = ClassCount - 1
	}
	if outcome >= OutcomeCount {
		outcome = OutcomeCount - 1
	}
	f := &s.foot[class][outcome]
	f.read.Add(int64(readLines))
	f.write.Add(int64(writeLines))
	f.occ.Add(int64(occ))
}

// Thread returns the shard's owning thread index.
func (s *Shard) Thread() int {
	if s == nil {
		return 0
	}
	return int(s.thread)
}

// reset clears the shard (after writers quiesced).
func (s *Shard) reset() {
	s.sketch.Reset()
	clear(s.conHeat)
	clear(s.capHeat)
	clear(s.domCon)
	clear(s.domCap)
	for c := range s.foot {
		for o := range s.foot[c] {
			f := &s.foot[c][o]
			f.read.Reset()
			f.write.Reset()
			f.occ.Reset()
		}
	}
}

// Config sizes a Profile. The zero value selects the defaults.
type Config struct {
	// TopK is the per-shard sketch capacity (DefaultTopK when <= 0).
	TopK int
	// Sets is the number of associativity sets tracked by the heat
	// counters; it should match the engine's WriteSets so set indices
	// line up (64, the htm.DefaultConfig value, when <= 0).
	Sets int
	// SampleEvery is the time-series sampling period (5ms when <= 0).
	SampleEvery time.Duration
	// SampleCap is the sample ring capacity (4096 when <= 0).
	SampleCap int
}

// DefaultSets matches htm.DefaultConfig's WriteSets so heat indices line
// up with the engine's capacity model out of the box.
const DefaultSets = 64

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.Sets <= 0 {
		c.Sets = DefaultSets
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Millisecond
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 4096
	}
	return c
}

// Profile owns the per-thread shards and the time-series sampler of one
// profiling session. A nil *Profile disables profiling everywhere it is
// plumbed. Shard growth is mutex-guarded exactly like tm.Stats shards;
// the hot path (the Record* hooks) touches only the calling thread's
// shard.
type Profile struct {
	cfg Config

	mu     sync.Mutex // guards growth, marks, and sampler state
	shards atomic.Pointer[[]*Shard]

	// Domain router (sharded-domain topologies): copied into every shard,
	// existing and future, under mu.
	domN  int
	domOf func(line uint32) int

	// Session accumulator: Reset folds the shards' footprint histograms
	// here (under mu) before clearing them, so SessionFootprints can
	// reconcile a whole run even when the heatmap experiment resets the
	// per-row state between sweep points.
	session [ClassCount][OutcomeCount]footprint

	// Sampler state: the source snapshots the attached runner's counters
	// (exec.Runner registers itself via SetSource); srcSeq stamps samples
	// so a sweep over several systems remains separable.
	src    func() Sample
	srcSeq int32
	ring   []Sample
	pos    int
	wrap   bool
	marks  []SampleMark
	stop   chan struct{}
	done   chan struct{}
}

// New creates a profile with the given configuration.
func New(cfg Config) *Profile {
	return &Profile{cfg: cfg.withDefaults()}
}

// Config returns the profile's effective (defaulted) configuration.
func (p *Profile) Config() Config {
	if p == nil {
		return Config{}.withDefaults()
	}
	return p.cfg
}

// Shard returns thread id's profiler shard, growing the set as needed.
// Callers on a measured path must cache the pointer per thread (the
// engine does, at Begin). Returns nil from a nil profile.
func (p *Profile) Shard(id int) *Shard {
	if p == nil {
		return nil
	}
	if sp := p.shards.Load(); sp != nil && id < len(*sp) {
		return (*sp)[id]
	}
	return p.growShard(id)
}

func (p *Profile) growShard(id int) *Shard {
	p.mu.Lock()
	defer p.mu.Unlock()
	var cur []*Shard
	if sp := p.shards.Load(); sp != nil {
		cur = *sp
	}
	if id < len(cur) {
		return cur[id]
	}
	next := make([]*Shard, id+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		sh := &Shard{
			conHeat: make([]uint64, p.cfg.Sets),
			capHeat: make([]uint64, p.cfg.Sets),
			thread:  int32(i),
		}
		sh.sketch = *NewSketch(p.cfg.TopK)
		p.routeShard(sh)
		next[i] = sh
	}
	p.shards.Store(&next)
	return next[id]
}

// all returns the current shard set.
func (p *Profile) all() []*Shard {
	if p == nil {
		return nil
	}
	if sp := p.shards.Load(); sp != nil {
		return *sp
	}
	return nil
}

// TopK merges the per-thread sketches and returns the top k hot conflict
// lines (all merged entries when k <= 0). Writers must have quiesced.
func (p *Profile) TopK(k int) []HotLine {
	if p == nil {
		return nil
	}
	merged := NewSketch(p.cfg.TopK)
	for _, sh := range p.all() {
		merged.Merge(&sh.sketch)
	}
	top := merged.Top(nil)
	if k > 0 && len(top) > k {
		top = top[:k]
	}
	return top
}

// ConflictEvents returns the total conflict events observed across all
// shards (the denominator for sketch guarantees). Writers must have
// quiesced.
func (p *Profile) ConflictEvents() uint64 {
	var n uint64
	for _, sh := range p.all() {
		n += sh.sketch.Total()
	}
	return n
}

// SetHeat is one associativity set's merged abort heat.
type SetHeat struct {
	Set       int    `json:"set"`
	Conflicts uint64 `json:"conflicts"`
	Capacity  uint64 `json:"capacity"`
}

// Heat merges the per-thread set-heat counters. The result has Config
// Sets entries, indexed by set. Writers must have quiesced.
func (p *Profile) Heat() []SetHeat {
	if p == nil {
		return nil
	}
	out := make([]SetHeat, p.cfg.Sets)
	for i := range out {
		out[i].Set = i
	}
	for _, sh := range p.all() {
		for i, n := range sh.conHeat {
			out[i].Conflicts += n
		}
		for i, n := range sh.capHeat {
			out[i].Capacity += n
		}
	}
	return out
}

// DomainHeat is one memory domain's merged abort heat (sharded-domain
// topologies; see SetDomainRouter).
type DomainHeat struct {
	Domain    int    `json:"domain"`
	Conflicts uint64 `json:"conflicts"`
	Capacity  uint64 `json:"capacity"`
}

// SetDomainRouter attaches a line→domain router covering n domains: from
// then on every conflict and capacity event is also attributed to the
// owning memory domain, and DomainHeat reports the per-domain totals.
// Attach before workers start (like marks, the router is not
// synchronized against the Record* hot path); nil detaches. The router
// must be allocation-free and side-effect-free — it runs inside the
// htmsafe Record* hooks.
func (p *Profile) SetDomainRouter(n int, of func(line uint32) int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.domN, p.domOf = n, of
	for _, sh := range p.all() {
		p.routeShard(sh)
	}
}

// routeShard applies the current router to one shard (mu held).
func (p *Profile) routeShard(sh *Shard) {
	if p.domOf == nil || p.domN <= 0 {
		sh.domOf, sh.domCon, sh.domCap = nil, nil, nil
		return
	}
	sh.domCon = make([]uint64, p.domN)
	sh.domCap = make([]uint64, p.domN)
	sh.domOf = p.domOf
}

// DomainHeat merges the per-thread domain-heat counters; nil when no
// domain router is attached. Writers must have quiesced.
func (p *Profile) DomainHeat() []DomainHeat {
	if p == nil || p.domN <= 0 {
		return nil
	}
	out := make([]DomainHeat, p.domN)
	for i := range out {
		out[i].Domain = i
	}
	for _, sh := range p.all() {
		for i, n := range sh.domCon {
			out[i].Conflicts += n
		}
		for i, n := range sh.domCap {
			out[i].Capacity += n
		}
	}
	return out
}

// FootprintStat is one (class, outcome) cell's merged distribution
// summary: counts and log-bucketed quantiles of read lines, write lines,
// and peak set occupancy.
type FootprintStat struct {
	Class   string `json:"class"`
	Outcome string `json:"outcome"`
	Count   uint64 `json:"count"`

	ReadP50 int64 `json:"read_p50"`
	ReadP95 int64 `json:"read_p95"`
	ReadP99 int64 `json:"read_p99"`
	ReadMax int64 `json:"read_max"`

	WriteP50 int64 `json:"write_p50"`
	WriteP95 int64 `json:"write_p95"`
	WriteP99 int64 `json:"write_p99"`
	WriteMax int64 `json:"write_max"`

	OccP50 int64 `json:"occ_p50"`
	OccP95 int64 `json:"occ_p95"`
	OccP99 int64 `json:"occ_p99"`
	OccMax int64 `json:"occ_max"`
}

// Footprints merges the per-thread footprint histograms and returns one
// row per non-empty (class, outcome) cell, classes outer, outcomes inner.
// Writers must have quiesced.
func (p *Profile) Footprints() []FootprintStat {
	if p == nil {
		return nil
	}
	return p.footprintRows(false)
}

// SessionFootprints returns the footprint rows of the whole profiling
// session: the live shards merged with everything earlier Reset calls
// folded away. Reset runs between report rows (the heatmap experiment
// resets per sweep point), so the per-row view loses history — this view
// does not, which is what the parthtm-vet -prof reconciliation checks
// static bounds against. Writers must have quiesced.
func (p *Profile) SessionFootprints() []FootprintStat {
	if p == nil {
		return nil
	}
	return p.footprintRows(true)
}

// footprintRows merges shard (and optionally session-accumulated)
// footprint cells into summary rows.
func (p *Profile) footprintRows(session bool) []FootprintStat {
	shards := p.all()
	if session {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	var out []FootprintStat
	var read, write, occ hist.Histogram
	for c := uint8(0); c < ClassCount; c++ {
		for o := uint8(0); o < OutcomeCount; o++ {
			read.Reset()
			write.Reset()
			occ.Reset()
			if session {
				f := &p.session[c][o]
				read.Merge(&f.read)
				write.Merge(&f.write)
				occ.Merge(&f.occ)
			}
			for _, sh := range shards {
				f := &sh.foot[c][o]
				read.Merge(&f.read)
				write.Merge(&f.write)
				occ.Merge(&f.occ)
			}
			n := read.Count()
			if n == 0 {
				continue
			}
			out = append(out, FootprintStat{
				Class:   ClassName(c),
				Outcome: OutcomeName(o),
				Count:   n,
				ReadP50: read.Quantile(0.50), ReadP95: read.Quantile(0.95),
				ReadP99: read.Quantile(0.99), ReadMax: read.Max(),
				WriteP50: write.Quantile(0.50), WriteP95: write.Quantile(0.95),
				WriteP99: write.Quantile(0.99), WriteMax: write.Max(),
				OccP50: occ.Quantile(0.50), OccP95: occ.Quantile(0.95),
				OccP99: occ.Quantile(0.99), OccMax: occ.Max(),
			})
		}
	}
	return out
}

// FootprintCell is one (class, outcome) cell's live distribution summary:
// the fixed-shape counterpart of FootprintStat, sized for in-place
// sampling by the telemetry plane.
type FootprintCell struct {
	Count uint64 `json:"count"`

	ReadP50 int64 `json:"read_p50"`
	ReadP99 int64 `json:"read_p99"`
	ReadMax int64 `json:"read_max"`

	WriteP50 int64 `json:"write_p50"`
	WriteP99 int64 `json:"write_p99"`
	WriteMax int64 `json:"write_max"`

	OccP50 int64 `json:"occ_p50"`
	OccP99 int64 `json:"occ_p99"`
	OccMax int64 `json:"occ_max"`
}

// FootprintCells fills dst with every (class, outcome) cell's live
// footprint summary, merging the per-thread histograms on the stack.
// Unlike Footprints it is safe while writers are still recording — the
// histograms are atomic counter arrays, so the merge observes some
// coherent prefix of each shard — and it never allocates, which makes it
// the footprint source for the obs sampling path. The sketch and heat
// planes have no such live view (plain single-writer memory) and are
// deliberately not summarized here. Empty cells read as all-zero.
func (p *Profile) FootprintCells(dst *[ClassCount][OutcomeCount]FootprintCell) {
	*dst = [ClassCount][OutcomeCount]FootprintCell{}
	if p == nil {
		return
	}
	shards := p.all()
	var read, write, occ hist.Histogram
	for c := uint8(0); c < ClassCount; c++ {
		for o := uint8(0); o < OutcomeCount; o++ {
			read.Reset()
			write.Reset()
			occ.Reset()
			for _, sh := range shards {
				f := &sh.foot[c][o]
				read.Merge(&f.read)
				write.Merge(&f.write)
				occ.Merge(&f.occ)
			}
			n := read.Count()
			if n == 0 {
				continue
			}
			dst[c][o] = FootprintCell{
				Count:   n,
				ReadP50: read.Quantile(0.50), ReadP99: read.Quantile(0.99), ReadMax: read.Max(),
				WriteP50: write.Quantile(0.50), WriteP99: write.Quantile(0.99), WriteMax: write.Max(),
				OccP50: occ.Quantile(0.50), OccP99: occ.Quantile(0.99), OccMax: occ.Max(),
			}
		}
	}
}

// Reset clears every shard's sketch, heat, and footprint state (between
// report rows; writers must have quiesced). The footprint histograms are
// folded into the session accumulator before clearing, so
// SessionFootprints still sees them; the sample ring and marks are left
// intact — the time series spans the whole session.
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	shards := p.all()
	p.mu.Lock()
	for _, sh := range shards {
		for c := range sh.foot {
			for o := range sh.foot[c] {
				acc := &p.session[c][o]
				f := &sh.foot[c][o]
				acc.read.Merge(&f.read)
				acc.write.Merge(&f.write)
				acc.occ.Merge(&f.occ)
			}
		}
	}
	p.mu.Unlock()
	for _, sh := range shards {
		sh.reset()
	}
}
