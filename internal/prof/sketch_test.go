package prof

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// oracle tracks exact frequencies next to a sketch.
type oracle map[uint32]uint64

func (o oracle) observe(s *Sketch, key uint32, n uint64) {
	s.ObserveN(key, n)
	o[key] += n
}

// checkBounds asserts the SpaceSaving invariants against exact counts:
// every present key's count is an upper bound and count-err a lower
// bound; every absent key's true count is bounded by the minimum entry.
func checkBounds(t *testing.T, s *Sketch, o oracle) {
	t.Helper()
	var total uint64
	for _, n := range o {
		total += n
	}
	if s.Total() != total {
		t.Fatalf("Total() = %d, want %d", s.Total(), total)
	}
	if s.Len() > s.Cap() {
		t.Fatalf("Len() %d exceeds Cap() %d", s.Len(), s.Cap())
	}
	minCount := uint64(0)
	if s.Len() == s.Cap() {
		minCount = ^uint64(0)
		for _, h := range s.Top(nil) {
			if h.Count < minCount {
				minCount = h.Count
			}
		}
	}
	for key, want := range o {
		count, errB, ok := s.Count(key)
		if !ok {
			// Absent: true frequency can be at most the min entry count
			// (SpaceSaving evicts only keys at the minimum).
			if s.Len() == s.Cap() && want > minCount {
				t.Fatalf("key %d (true %d) absent but exceeds min entry %d", key, want, minCount)
			}
			continue
		}
		if count < want {
			t.Fatalf("key %d: count %d underestimates true %d", key, count, want)
		}
		if count-errB > want {
			t.Fatalf("key %d: lower bound %d exceeds true %d", key, count-errB, want)
		}
	}
}

func TestSketchExactUnderCapacity(t *testing.T) {
	s := NewSketch(8)
	o := oracle{}
	for i := 0; i < 100; i++ {
		o.observe(s, uint32(i%8), 1)
	}
	for key, want := range o {
		count, errB, ok := s.Count(key)
		if !ok || count != want || errB != 0 {
			t.Fatalf("key %d: got (%d, %d, %v), want exact (%d, 0, true)", key, count, errB, ok, want)
		}
	}
	checkBounds(t, s, o)
}

func TestSketchBoundsUnderEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch(8)
	o := oracle{}
	// Zipf-ish stream over 64 keys through an 8-entry sketch.
	zipf := rand.NewZipf(rng, 1.3, 1.0, 63)
	for i := 0; i < 10_000; i++ {
		o.observe(s, uint32(zipf.Uint64()), 1)
	}
	checkBounds(t, s, o)
}

// TestSketchHeavyHitterGuarantee: any key with true frequency strictly
// above Total/Cap must be present in the sketch.
func TestSketchHeavyHitterGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSketch(4)
	o := oracle{}
	// One heavy key buried in uniform noise over 1000 keys.
	for i := 0; i < 8_000; i++ {
		if rng.Intn(3) == 0 {
			o.observe(s, 42, 1)
		} else {
			o.observe(s, uint32(rng.Intn(1000))+100, 1)
		}
	}
	threshold := s.Total() / uint64(s.Cap())
	for key, n := range o {
		if n > threshold {
			if _, _, ok := s.Count(key); !ok {
				t.Fatalf("heavy hitter %d (true %d > %d) missing from sketch", key, n, threshold)
			}
		}
	}
	if _, _, ok := s.Count(42); !ok {
		t.Fatal("planted heavy key missing")
	}
}

func fill(keys ...uint32) *Sketch {
	s := NewSketch(4)
	for _, k := range keys {
		s.Observe(k)
	}
	return s
}

func tops(s *Sketch) []HotLine { return s.Top(nil) }

func TestSketchMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		mk := func() (*Sketch, *Sketch) {
			a, b := NewSketch(4), NewSketch(4)
			for i := 0; i < 200; i++ {
				a.Observe(uint32(rng.Intn(12)))
				b.Observe(uint32(rng.Intn(12)))
			}
			return a, b
		}
		rng = rand.New(rand.NewSource(int64(trial)))
		a1, b1 := mk()
		rng = rand.New(rand.NewSource(int64(trial)))
		a2, b2 := mk()
		a1.Merge(b1) // A+B
		b2.Merge(a2) // B+A
		if !reflect.DeepEqual(tops(a1), tops(b2)) {
			t.Fatalf("trial %d: merge not commutative:\nA+B=%v\nB+A=%v", trial, tops(a1), tops(b2))
		}
		if a1.Total() != b2.Total() {
			t.Fatalf("trial %d: totals differ after merge", trial)
		}
	}
}

// Merge is associative whenever the union of keys fits the capacity (no
// truncation): exercised with 4 distinct keys in a capacity-4 sketch.
func TestSketchMergeAssociativeNoTruncation(t *testing.T) {
	mk := func() (*Sketch, *Sketch, *Sketch) {
		return fill(1, 1, 2), fill(2, 3, 3), fill(4, 4, 1)
	}
	a, b, c := mk()
	b.Merge(c)
	a.Merge(b) // A+(B+C)
	left := tops(a)

	a2, b2, c2 := mk()
	a2.Merge(b2)
	a2.Merge(c2) // (A+B)+C
	right := tops(a2)

	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative without truncation:\nA+(B+C)=%v\n(A+B)+C=%v", left, right)
	}
}

// TestSketchMergedHeavyHitter: after merging shards, keys above
// 2*Total/Cap survive (the relaxed merged-summary guarantee).
func TestSketchMergedHeavyHitter(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shards := make([]*Sketch, 4)
	o := oracle{}
	for i := range shards {
		shards[i] = NewSketch(8)
		for j := 0; j < 2_000; j++ {
			key := uint32(rng.Intn(500)) + 10
			if rng.Intn(4) == 0 {
				key = 7 // planted hot key, ~25% of all events
			}
			o.observe(shards[i], key, 1)
		}
	}
	merged := NewSketch(8)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	threshold := 2 * merged.Total() / uint64(merged.Cap())
	for key, n := range o {
		if n > threshold {
			if _, _, ok := merged.Count(key); !ok {
				t.Fatalf("merged heavy hitter %d (true %d > %d) missing", key, n, threshold)
			}
		}
	}
	if _, _, ok := merged.Count(7); !ok {
		t.Fatal("planted hot key missing after merge")
	}
}

func TestSketchTopOrder(t *testing.T) {
	s := fill(5, 5, 5, 9, 9, 2)
	top := tops(s)
	want := []HotLine{{Line: 5, Count: 3}, {Line: 9, Count: 2}, {Line: 2, Count: 1}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("Top = %v, want %v", top, want)
	}
}

func TestSketchReset(t *testing.T) {
	s := fill(1, 2, 3)
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 || len(tops(s)) != 0 {
		t.Fatalf("Reset left state: len=%d total=%d", s.Len(), s.Total())
	}
	s.Observe(9)
	if c, _, ok := s.Count(9); !ok || c != 1 {
		t.Fatal("sketch unusable after Reset")
	}
}

func TestSketchNilSafe(t *testing.T) {
	var s *Sketch
	s.Observe(1)
	s.ObserveN(2, 3)
	s.Merge(fill(1))
	s.Reset()
	if s.Cap() != 0 || s.Len() != 0 || s.Total() != 0 || s.Top(nil) != nil {
		t.Fatal("nil sketch not inert")
	}
	if _, _, ok := s.Count(1); ok {
		t.Fatal("nil sketch claims a key")
	}
}

func TestSketchObserveAllocFree(t *testing.T) {
	s := NewSketch(8)
	if n := testing.AllocsPerRun(1000, func() { s.Observe(uint32(s.Total()) % 16) }); n != 0 {
		t.Fatalf("Observe allocates %.1f allocs/op, want 0", n)
	}
}

// TestSketchRaceHammer drives the intended concurrency discipline under
// -race: one sketch per goroutine (single-writer), merged after the join.
func TestSketchRaceHammer(t *testing.T) {
	const workers = 8
	shards := make([]*Sketch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = NewSketch(16)
		wg.Add(1)
		go func(s *Sketch, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				s.Observe(uint32(rng.Intn(64)))
			}
		}(shards[w], int64(w))
	}
	wg.Wait()
	merged := NewSketch(16)
	var want uint64
	for _, sh := range shards {
		want += sh.Total()
		merged.Merge(sh)
	}
	if merged.Total() != want {
		t.Fatalf("merged total %d, want %d", merged.Total(), want)
	}
}

func FuzzSketch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 1, 200, 7})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the bytes as an observation stream split across two
		// shards, then check every invariant against the exact oracles.
		a, b := NewSketch(4), NewSketch(4)
		oa, ob, o := oracle{}, oracle{}, oracle{}
		for i, c := range data {
			key := uint32(c % 32)
			n := uint64(c%3) + 1
			if i%2 == 0 {
				oa.observe(a, key, n)
			} else {
				ob.observe(b, key, n)
			}
			o[key] += n
		}
		// Per-shard, the full upper/lower bound invariants hold.
		checkBounds(t, a, oa)
		checkBounds(t, b, ob)
		a.Merge(b)
		var total uint64
		for _, n := range o {
			total += n
		}
		if a.Total() != total {
			t.Fatalf("merged total %d, want %d", a.Total(), total)
		}
		if a.Len() > a.Cap() {
			t.Fatalf("len %d over cap %d", a.Len(), a.Cap())
		}
		// After a truncating merge only the lower bound survives per key:
		// a key evicted from one shard leaves its mass in that shard's
		// other entries, so the merged count can undercount it (the upper
		// bound is a per-shard property).
		for key, want := range o {
			if count, errB, ok := a.Count(key); ok {
				if count-errB > want {
					t.Fatalf("key %d: lower bound %d exceeds %d", key, count-errB, want)
				}
			}
		}
		// The merged heavy-hitter guarantee.
		threshold := 2 * total / uint64(a.Cap())
		for key, n := range o {
			if n > threshold {
				if _, _, ok := a.Count(key); !ok {
					t.Fatalf("heavy key %d (%d > %d) lost in merge", key, n, threshold)
				}
			}
		}
		// Top is sorted by count desc, line asc.
		top := a.Top(nil)
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count ||
				(top[i].Count == top[i-1].Count && top[i].Line < top[i-1].Line) {
				t.Fatalf("Top not ordered at %d: %v", i, top)
			}
		}
	})
}
