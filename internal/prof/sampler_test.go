package prof

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSamplerRingWrap(t *testing.T) {
	p := New(Config{SampleCap: 4})
	var n uint64
	p.SetSource(func() Sample {
		n++
		return Sample{CommitsSW: n}
	})
	for i := 0; i < 6; i++ {
		p.sampleOnce()
	}
	got := p.Samples()
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	// The flight recorder keeps the most recent 4, in chronological order.
	for i, s := range got {
		if want := uint64(i + 3); s.CommitsSW != want {
			t.Fatalf("sample %d: CommitsSW = %d, want %d", i, s.CommitsSW, want)
		}
		if i > 0 && s.TS < got[i-1].TS {
			t.Fatalf("samples not chronological at %d", i)
		}
	}
}

func TestSamplerSourceSeq(t *testing.T) {
	p := New(Config{SampleCap: 8})
	p.SetSource(func() Sample { return Sample{} })
	p.sampleOnce()
	p.SetSource(func() Sample { return Sample{} }) // new runner attaches
	p.sampleOnce()
	got := p.Samples()
	if len(got) != 2 || got[0].Source == got[1].Source {
		t.Fatalf("source seq not bumped across SetSource: %+v", got)
	}
}

func TestSamplerNoSourceNoSamples(t *testing.T) {
	p := New(Config{SampleCap: 8})
	p.sampleOnce()
	if len(p.Samples()) != 0 {
		t.Fatal("sampleOnce recorded without a source")
	}
}

func TestSamplerStartStopIdempotent(t *testing.T) {
	p := New(Config{SampleCap: 8})
	p.SetSource(func() Sample { return Sample{} })
	p.Start()
	p.Start() // second Start is a no-op, not a second goroutine
	p.Stop()
	p.Stop() // second Stop must not panic or block
	p.Start()
	p.Stop()
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	p := New(Config{SampleCap: 8})
	p.SetSource(func() Sample {
		return Sample{CommitsHTM: 7, AbortsConflict: 3, Pressure: 2, Degraded: true}
	})
	p.Mark("phase=a")
	p.sampleOnce()
	p.sampleOnce()
	p.Mark("phase=b")

	var b strings.Builder
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(got.Samples) != 2 || len(got.Marks) != 2 {
		t.Fatalf("round trip lost data: %d samples, %d marks", len(got.Samples), len(got.Marks))
	}
	s := got.Samples[0]
	if s.CommitsHTM != 7 || s.AbortsConflict != 3 || s.Pressure != 2 || !s.Degraded {
		t.Fatalf("sample fields lost in round trip: %+v", s)
	}
	if got.Marks[0].Label != "phase=a" || got.Marks[1].Label != "phase=b" {
		t.Fatalf("marks lost: %+v", got.Marks)
	}
}

func TestWriteCSV(t *testing.T) {
	p := New(Config{SampleCap: 8})
	p.SetSource(func() Sample { return Sample{CommitsSW: 5, Inflight: 2, Degraded: true} })
	p.sampleOnce()
	p.sampleOnce()

	var b strings.Builder
	if err := p.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != csvHeader {
		t.Fatalf("CSV header = %q", lines[0])
	}
	cols := strings.Split(lines[1], ",")
	want := strings.Count(csvHeader, ",") + 1
	if len(cols) != want {
		t.Fatalf("CSV row has %d columns, want %d", len(cols), want)
	}
	if cols[3] != "5" { // commits_sw
		t.Fatalf("commits_sw column = %q, want 5", cols[3])
	}
	if cols[len(cols)-2] != "1" { // degraded encodes true as 1
		t.Fatalf("degraded column = %q, want 1", cols[len(cols)-2])
	}
}

// Reset folds the shard footprints into the session accumulator, so a
// profile written after a multi-row sweep (the heatmap experiment resets
// between rows) still reconciles against static bounds.
func TestSessionFootprintsSurviveReset(t *testing.T) {
	p := New(Config{})
	p.Shard(0).RecordFootprint(ClassFast, OutcomeCommit, 40, 20, 60)
	p.Reset() // row boundary: per-row view clears, session view must not
	p.Shard(0).RecordFootprint(ClassFast, OutcomeCommit, 10, 5, 15)

	if rows := p.Footprints(); len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("per-row view should hold only the post-reset event: %+v", rows)
	}
	rows := p.SessionFootprints()
	if len(rows) != 1 {
		t.Fatalf("session view lost rows: %+v", rows)
	}
	got := rows[0]
	if got.Class != "fast" || got.Outcome != "commit" || got.Count != 2 {
		t.Fatalf("session row = %+v, want fast/commit count 2", got)
	}
	if got.ReadMax < 40 || got.WriteMax < 20 {
		t.Fatalf("pre-reset footprints lost from session view: %+v", got)
	}
}

func TestSeriesFootprintsRoundTripAndStrictDecode(t *testing.T) {
	p := New(Config{SampleCap: 4})
	p.Shard(0).RecordFootprint(ClassFast, OutcomeCommit, 8, 7, 12)
	p.Reset()
	p.Shard(1).RecordFootprint(ClassSub, OutcomeConflict, 3, 2, 4)

	var b strings.Builder
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSeries(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Footprints) != 2 {
		t.Fatalf("round trip lost footprint rows: %+v", got.Footprints)
	}
	if got.Footprints[0].Class != "fast" || got.Footprints[0].ReadP99 < 8 {
		t.Fatalf("fast/commit row mangled: %+v", got.Footprints[0])
	}

	// Strictness: an unknown field means the document is not a profile —
	// the reconciliation consumer must fail loudly, not decode garbage.
	if _, err := DecodeSeries(strings.NewReader(`{"samples": [], "bogus": 1}`)); err == nil {
		t.Error("unknown field decoded without error")
	}
}
