package prof

import (
	"strings"
	"testing"
)

func TestShardRecordAndMergedQueries(t *testing.T) {
	p := New(Config{TopK: 8, Sets: 16})
	s0, s1 := p.Shard(0), p.Shard(1)
	if s0 == nil || s1 == nil || s0 == s1 {
		t.Fatal("Shard() did not return distinct shards")
	}
	if s0.Thread() != 0 || s1.Thread() != 1 {
		t.Fatalf("shard thread ids: %d, %d", s0.Thread(), s1.Thread())
	}

	// Two threads both hammer line 100; thread 1 also sees line 17 once.
	for i := 0; i < 5; i++ {
		s0.RecordConflict(100)
	}
	for i := 0; i < 3; i++ {
		s1.RecordConflict(100)
	}
	s1.RecordConflict(17)
	s0.RecordCapacity(33)

	if got := p.ConflictEvents(); got != 9 {
		t.Fatalf("ConflictEvents = %d, want 9", got)
	}
	top := p.TopK(0)
	if len(top) != 2 || top[0].Line != 100 || top[0].Count != 8 || top[1].Line != 17 {
		t.Fatalf("TopK = %v, want line 100 count 8 then line 17", top)
	}
	if got := p.TopK(1); len(got) != 1 || got[0].Line != 100 {
		t.Fatalf("TopK(1) = %v", got)
	}

	heat := p.Heat()
	if len(heat) != 16 {
		t.Fatalf("Heat has %d sets, want 16", len(heat))
	}
	if heat[100%16].Conflicts != 8 || heat[17%16].Conflicts != 1 {
		t.Fatalf("conflict heat wrong: %+v", heat)
	}
	if heat[33%16].Capacity != 1 {
		t.Fatalf("capacity heat wrong: %+v", heat)
	}

	// Footprints: commits on the fast path, one sub-path conflict abort.
	s0.RecordFootprint(ClassFast, OutcomeCommit, 4, 2, 2)
	s1.RecordFootprint(ClassFast, OutcomeCommit, 8, 1, 1)
	s1.RecordFootprint(ClassSub, OutcomeConflict, 3, 3, 3)
	fps := p.Footprints()
	if len(fps) != 2 {
		t.Fatalf("Footprints rows = %d, want 2: %+v", len(fps), fps)
	}
	if fps[0].Class != "fast" || fps[0].Outcome != "commit" || fps[0].Count != 2 {
		t.Fatalf("fast/commit row wrong: %+v", fps[0])
	}
	if fps[0].ReadMax < 8 || fps[0].WriteMax < 2 {
		t.Fatalf("fast/commit maxima wrong: %+v", fps[0])
	}
	if fps[1].Class != "sub" || fps[1].Outcome != "conflict" || fps[1].Count != 1 {
		t.Fatalf("sub/conflict row wrong: %+v", fps[1])
	}

	p.Reset()
	if p.ConflictEvents() != 0 || len(p.TopK(0)) != 0 || len(p.Footprints()) != 0 {
		t.Fatal("Reset left shard state")
	}
	for _, h := range p.Heat() {
		if h.Conflicts != 0 || h.Capacity != 0 {
			t.Fatalf("Reset left heat: %+v", h)
		}
	}
}

func TestRecordFootprintClamps(t *testing.T) {
	p := New(Config{})
	s := p.Shard(0)
	s.RecordFootprint(200, 200, 1, 1, 1) // out-of-range class and outcome
	fps := p.Footprints()
	if len(fps) != 1 {
		t.Fatalf("clamped record produced %d rows, want 1", len(fps))
	}
	if fps[0].Class != ClassName(ClassCount-1) || fps[0].Outcome != OutcomeName(OutcomeCount-1) {
		t.Fatalf("clamp landed in %s/%s", fps[0].Class, fps[0].Outcome)
	}
}

func TestNilProfileAndShardInert(t *testing.T) {
	var p *Profile
	if p.Shard(3) != nil {
		t.Fatal("nil profile returned a shard")
	}
	p.Reset()
	p.Start()
	p.Stop()
	p.Mark("x")
	p.SetSource(func() Sample { return Sample{} })
	if p.TopK(0) != nil || p.Heat() != nil || p.Footprints() != nil ||
		p.ConflictEvents() != 0 || p.Samples() != nil || p.Marks() != nil {
		t.Fatal("nil profile not inert")
	}

	var s *Shard
	s.RecordConflict(1)
	s.RecordCapacity(1)
	s.RecordFootprint(0, 0, 1, 1, 1)
	if s.Thread() != 0 {
		t.Fatal("nil shard not inert")
	}
}

func TestRecordHooksAllocFree(t *testing.T) {
	s := New(Config{TopK: 8, Sets: 16}).Shard(0)
	var line uint32
	if n := testing.AllocsPerRun(1000, func() {
		line = (line + 7) % 64
		s.RecordConflict(line)
	}); n != 0 {
		t.Fatalf("RecordConflict allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { s.RecordCapacity(line) }); n != 0 {
		t.Fatalf("RecordCapacity allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		s.RecordFootprint(ClassFast, OutcomeCommit, 4, 2, 2)
	}); n != 0 {
		t.Fatalf("RecordFootprint allocates %.1f allocs/op, want 0", n)
	}
}

func TestClassAndOutcomeNames(t *testing.T) {
	for c := uint8(0); c < ClassCount; c++ {
		if name := ClassName(c); strings.Contains(name, "?") {
			t.Fatalf("ClassName(%d) = %q", c, name)
		}
	}
	for o := uint8(0); o < OutcomeCount; o++ {
		if name := OutcomeName(o); strings.Contains(name, "?") {
			t.Fatalf("OutcomeName(%d) = %q", o, name)
		}
	}
	if ClassName(ClassCount) != "class?" || OutcomeName(OutcomeCount) != "outcome?" {
		t.Fatal("out-of-range names must be marked unknown")
	}
}
