package core

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// TestSelfTuningSkipsDoomedFastAttempts: after a few transactions that keep
// exceeding the timer quantum, the fast path must stop being attempted
// (except for periodic probes), so engine-level timer aborts stop
// accumulating one-per-transaction.
func TestSelfTuningSkipsDoomedFastAttempts(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) { c.Quantum = 500 }, nil)
	a := s.Memory().Alloc(1)
	body := func(x tm.Tx) {
		v := x.Read(a)
		for i := 0; i < 4; i++ {
			x.Work(400)
			x.Pause()
		}
		x.Write(a, v+1)
	}
	const txns = 64
	for i := 0; i < txns; i++ {
		s.Atomic(0, body)
	}
	if got := s.Memory().Load(a); got != txns {
		t.Fatalf("counter = %d", got)
	}
	other := s.Engine().Stats().AbortsOther.Load()
	// Without self-tuning every transaction would burn one timer abort
	// (64); with it only the first few plus the 1-in-32 probes do.
	if other > txns/4 {
		t.Fatalf("timer aborts = %d of %d transactions; fast path not being skipped", other, txns)
	}
	if s.Stats().Snapshot().CommitsSW != txns {
		t.Fatalf("stats: %+v", s.Stats().Snapshot())
	}
}

// TestSelfTuningRecoversForSmallTransactions: a thread that ran big
// transactions must return to the fast path when its transactions become
// hardware-sized again.
func TestSelfTuningRecoversForSmallTransactions(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) { c.Quantum = 500 }, nil)
	a := s.Memory().Alloc(1)
	// Phase 1: big transactions build up a fast-fail streak.
	for i := 0; i < 8; i++ {
		s.Atomic(0, func(x tm.Tx) {
			v := x.Read(a)
			for k := 0; k < 4; k++ {
				x.Work(400)
				x.Pause()
			}
			x.Write(a, v+1)
		})
	}
	// Phase 2: small transactions. The first may run partitioned, but its
	// single small segment resets the streak, so the rest commit in
	// hardware.
	before := s.Stats().Snapshot().CommitsHTM
	for i := 0; i < 16; i++ {
		s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	gained := s.Stats().Snapshot().CommitsHTM - before
	if gained < 15 {
		t.Fatalf("only %d of 16 small transactions used the fast path", gained)
	}
}

// TestLockPerWriteStillCorrect: the ablation configuration must preserve
// correctness (it only moves lock publication earlier).
func TestLockPerWriteStillCorrect(t *testing.T) {
	s := newSystem(2, 1<<17, nil, func(c *Config) {
		c.NoFastPath = true
		c.LockPerWrite = true
	})
	m := s.Memory()
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	done := make(chan struct{}, 2)
	for w := 0; w < 2; w++ {
		go func(id int) {
			for i := 0; i < 200; i++ {
				s.Atomic(id, func(x tm.Tx) {
					va := x.Read(a)
					x.Pause()
					vb := x.Read(b)
					x.Write(a, va+1)
					x.Write(b, vb+1)
				})
			}
			done <- struct{}{}
		}(w)
	}
	<-done
	<-done
	if m.Load(a) != 400 || m.Load(b) != 400 {
		t.Fatalf("a=%d b=%d, want 400", m.Load(a), m.Load(b))
	}
}

// TestAutoPartitionLearnsCycleBudget: a Work-heavy unsplit transaction must
// teach a cycle budget and commit partitioned.
func TestAutoPartitionLearnsCycleBudget(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) { c.Quantum = 1000 }, nil)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		v := x.Read(a)
		for i := 0; i < 40; i++ {
			x.Work(100) // 4000 cycles total: 4x the quantum, no Pause hints
		}
		x.Write(a, v+1)
	})
	if got := s.Memory().Load(a); got != 1 {
		t.Fatalf("a = %d", got)
	}
	st := s.Stats().Snapshot()
	if st.CommitsSW != 1 || st.CommitsGL != 0 {
		t.Fatalf("want partitioned commit, got %+v", st)
	}
	if lim := s.SegLimits()[0]; lim.Cycles == 0 {
		t.Fatal("no cycle budget learned")
	}
}

// TestOpaqueWriteLocalBypassesCells: Part-HTM-O must not lock cells for
// thread-private writes.
func TestOpaqueWriteLocalBypassesCells(t *testing.T) {
	s := newSystem(1, 1<<17, nil, func(c *Config) {
		c.Opaque = true
		c.NoFastPath = true
	})
	m := s.Memory()
	scratch := m.AllocLines(2)
	s.Atomic(0, func(x tm.Tx) {
		x.WriteLocal(scratch, 9)
		x.Pause()
		x.WriteLocal(scratch+1, 10)
	})
	if m.Load(scratch) != 9 || m.Load(scratch+1) != 10 {
		t.Fatal("local writes lost")
	}
	// The shadow cells must never have been locked (no unlock writes
	// needed => cells still zero).
	if m.Load(s.cell(scratch)) != 0 {
		t.Fatal("WriteLocal acquired an address-embedded lock")
	}
}

// TestOpaqueCellsUnlockedAfterCommit: every cell locked by a Part-HTM-O
// transaction is unlocked at global commit.
func TestOpaqueCellsUnlockedAfterCommit(t *testing.T) {
	s := newSystem(1, 1<<18, nil, func(c *Config) {
		c.Opaque = true
		c.NoFastPath = true
	})
	m := s.Memory()
	base := m.AllocLines(4)
	s.Atomic(0, func(x tm.Tx) {
		for i := 0; i < 4; i++ {
			x.Write(base+mem.Addr(i*mem.LineWords), uint64(i))
			x.Pause()
		}
	})
	for i := 0; i < 4; i++ {
		a := base + mem.Addr(i*mem.LineWords)
		c := m.Load(s.cell(a))
		if c&1 != 0 {
			t.Fatalf("cell for %d still locked: %#x", a, c)
		}
		if c != 0 && c>>1 != uint64(a) {
			t.Fatalf("cell for %d corrupted: %#x", a, c)
		}
	}
}

// TestFastPathProbesEventually: with self-tuning active, the 1-in-32 probe
// keeps trying the fast path so a workload phase change is noticed.
func TestFastPathProbesEventually(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) { c.Quantum = 500 }, nil)
	a := s.Memory().Alloc(1)
	big := func(x tm.Tx) {
		v := x.Read(a)
		for k := 0; k < 4; k++ {
			x.Work(400)
			x.Pause()
		}
		x.Write(a, v+1)
	}
	for i := 0; i < 40; i++ {
		s.Atomic(0, big)
	}
	// At least one probe must have happened after the streak formed: the
	// engine saw more than the initial 3 timer aborts.
	if got := s.Engine().Stats().AbortsOther.Load(); got < 4 {
		t.Fatalf("timer aborts = %d; probing seems disabled", got)
	}
}
