package core
