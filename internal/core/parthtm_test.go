package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// newSystem builds a Part-HTM system over a fresh memory with a
// deterministic engine (no timer, no probabilistic evictions) unless the
// engine config is mutated.
func newSystem(threads int, words int, mutEng func(*htm.Config), mutCfg func(*Config)) *System {
	ecfg := htm.DefaultConfig()
	ecfg.Quantum = 0
	ecfg.ReadEvictProb = 0
	if mutEng != nil {
		mutEng(&ecfg)
	}
	cfg := DefaultConfig()
	if mutCfg != nil {
		mutCfg(&cfg)
	}
	if cfg.Opaque {
		words *= 2
	}
	eng := htm.New(mem.New(words), ecfg)
	return New(eng, threads, cfg)
}

func TestNames(t *testing.T) {
	if got := newSystem(1, 1<<17, nil, nil).Name(); got != "Part-HTM" {
		t.Errorf("Name = %q", got)
	}
	if got := newSystem(1, 1<<17, nil, func(c *Config) { c.NoFastPath = true }).Name(); got != "Part-HTM-no-fast" {
		t.Errorf("Name = %q", got)
	}
	if got := newSystem(1, 1<<17, nil, func(c *Config) { c.Opaque = true }).Name(); got != "Part-HTM-O" {
		t.Errorf("Name = %q", got)
	}
}

func TestFastPathUsedForSmallTransactions(t *testing.T) {
	s := newSystem(1, 1<<17, nil, nil)
	a := s.Memory().Alloc(1)
	for i := 0; i < 50; i++ {
		s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	st := s.Stats().Snapshot()
	if st.CommitsHTM != 50 || st.CommitsSW != 0 || st.CommitsGL != 0 {
		t.Fatalf("want all 50 commits on the fast path, got %+v", st)
	}
	if got := s.Memory().Load(a); got != 50 {
		t.Fatalf("counter = %d", got)
	}
}

func TestCapacityFailureFallsToPartitionedPath(t *testing.T) {
	// 10-line write budget: a 12-line transaction (plus its ring-entry
	// metadata) cannot commit in hardware, but 3-line segments plus their
	// write-locks-signature updates (up to 4 more lines) can.
	s := newSystem(1, 1<<17, func(c *htm.Config) {
		c.WriteLines = 10
		c.WriteWays = 64
		c.WriteSets = 1
	}, nil)
	m := s.Memory()
	base := m.AllocLines(12)
	s.Atomic(0, func(x tm.Tx) {
		for l := 0; l < 12; l++ {
			x.Write(base+mem.Addr(l*mem.LineWords), uint64(l+1))
			if l%3 == 2 {
				x.Pause()
			}
		}
	})
	st := s.Stats().Snapshot()
	if st.CommitsSW != 1 || st.CommitsHTM != 0 || st.CommitsGL != 0 {
		t.Fatalf("want 1 partitioned commit, got %+v", st)
	}
	if st.AbortsCapacity == 0 {
		t.Fatal("expected a capacity abort from the fast attempt")
	}
	for l := 0; l < 12; l++ {
		if got := m.Load(base + mem.Addr(l*mem.LineWords)); got != uint64(l+1) {
			t.Fatalf("line %d = %d", l, got)
		}
	}
}

func TestTimerFailureFallsToPartitionedPath(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) {
		c.Quantum = 1000
	}, nil)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		v := x.Read(a)
		for i := 0; i < 4; i++ {
			x.Work(400) // 1600 > quantum as one transaction; 400 fits per segment
			x.Pause()
		}
		x.Write(a, v+1)
	})
	st := s.Stats().Snapshot()
	if st.CommitsSW != 1 {
		t.Fatalf("want partitioned commit after timer abort, got %+v", st)
	}
	if st.AbortsOther == 0 {
		t.Fatal("expected an Other (timer) abort from the fast attempt")
	}
	if got := s.Memory().Load(a); got != 1 {
		t.Fatalf("a = %d", got)
	}
}

func TestSegmentTooBigEscalatesToSlowPath(t *testing.T) {
	// No Pause calls and no adaptive partitioning: the partitioned path
	// cannot split the transaction, so the single segment keeps failing on
	// capacity and the transaction ends up on the global-lock path.
	s := newSystem(1, 1<<17, func(c *htm.Config) {
		c.WriteLines = 4
		c.WriteWays = 64
		c.WriteSets = 1
	}, func(c *Config) { c.AutoPartition = false })
	m := s.Memory()
	base := m.AllocLines(12)
	s.Atomic(0, func(x tm.Tx) {
		for l := 0; l < 12; l++ {
			x.Write(base+mem.Addr(l*mem.LineWords), 7)
		}
	})
	st := s.Stats().Snapshot()
	if st.CommitsGL != 1 {
		t.Fatalf("want global-lock commit, got %+v", st)
	}
	for l := 0; l < 12; l++ {
		if got := m.Load(base + mem.Addr(l*mem.LineWords)); got != 7 {
			t.Fatalf("line %d = %d", l, got)
		}
	}
}

func TestAutoPartitionRescuesUnsplitTransaction(t *testing.T) {
	// Same oversized transaction, no Pause hints — the run-time breaking
	// points (paper §3) must learn a budget and commit it on the
	// partitioned path instead of the global lock.
	s := newSystem(1, 1<<17, func(c *htm.Config) {
		c.WriteLines = 4
		c.WriteWays = 64
		c.WriteSets = 1
	}, nil)
	m := s.Memory()
	base := m.AllocLines(12)
	for round := 0; round < 3; round++ {
		s.Atomic(0, func(x tm.Tx) {
			for l := 0; l < 12; l++ {
				x.Write(base+mem.Addr(l*mem.LineWords), uint64(round+1))
			}
		})
	}
	st := s.Stats().Snapshot()
	if st.CommitsGL != 0 || st.CommitsSW != 3 {
		t.Fatalf("want 3 partitioned commits and no GL, got %+v", st)
	}
	lim := s.SegLimits()[0]
	if lim.WriteLines == 0 {
		t.Fatal("no write-line budget was learned")
	}
	for l := 0; l < 12; l++ {
		if got := m.Load(base + mem.Addr(l*mem.LineWords)); got != 3 {
			t.Fatalf("line %d = %d", l, got)
		}
	}
}

// TestInFlightValidationAndUndo reproduces the paper's §5.3.6 scenario: a
// partitioned transaction whose first segment's read is invalidated by a
// concurrent commit must abort, roll back its published writes, and retry
// with the new value.
func TestInFlightValidationAndUndo(t *testing.T) {
	s := newSystem(2, 1<<17, nil, func(c *Config) { c.NoFastPath = true })
	m := s.Memory()
	x0 := m.AllocLines(1) // target
	y0 := m.AllocLines(1) // flag read by A, written by B
	m.Store(x0, 1)

	var once sync.Once
	bStart := make(chan struct{})
	bDone := make(chan struct{})
	go func() {
		<-bStart
		s.Atomic(1, func(x tm.Tx) { x.Write(y0, 7) })
		close(bDone)
	}()

	s.Atomic(0, func(x tm.Tx) {
		v := x.Read(y0)
		x.Pause() // commit segment 1: v is now part of the validated snapshot
		if v == 0 {
			// First attempt only (v is replayed identically within an
			// attempt, and the retry reads 7): let B commit y.
			once.Do(func() {
				close(bStart)
				<-bDone
			})
		}
		x.Write(x0, v+10)
	})

	if got := m.Load(x0); got != 17 {
		t.Fatalf("x = %d, want 17 (transaction must retry with B's value)", got)
	}
	if got := m.Load(y0); got != 7 {
		t.Fatalf("y = %d, want 7", got)
	}
	st := s.Stats().Snapshot()
	if st.CommitsSW != 2 {
		t.Fatalf("want 2 partitioned commits, got %+v", st)
	}
}

// TestLockedLocationBlocksOtherWriters: while a partitioned transaction
// holds a write lock (committed sub-HTM, uncommitted global), no other
// transaction may commit a conflicting write; after the holder commits, the
// other proceeds and serializes after it.
func TestLockedLocationBlocksOtherWriters(t *testing.T) {
	for _, opaque := range []bool{false, true} {
		name := "Part-HTM"
		if opaque {
			name = "Part-HTM-O"
		}
		t.Run(name, func(t *testing.T) {
			s := newSystem(2, 1<<17, nil, func(c *Config) {
				c.NoFastPath = true
				c.Opaque = opaque
			})
			m := s.Memory()
			x0 := m.AllocLines(1)
			m.Store(x0, 1)

			var once sync.Once
			locked := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Atomic(0, func(x tm.Tx) {
					v := x.Read(x0)
					x.Write(x0, v+1) // becomes 2 when this sub commits
					x.Pause()        // sub commits: x is now locked, globally uncommitted
					if v == 1 {
						once.Do(func() {
							close(locked)
							<-release
						})
					}
				})
			}()

			<-locked
			bDone := make(chan struct{})
			go func() {
				s.Atomic(1, func(x tm.Tx) {
					x.Write(x0, x.Read(x0)*100)
				})
				close(bDone)
			}()
			select {
			case <-bDone:
				t.Fatal("writer committed while the location was locked")
			case <-time.After(50 * time.Millisecond):
			}
			close(release)
			wg.Wait()
			<-bDone
			if got := m.Load(x0); got != 200 {
				t.Fatalf("x = %d, want 200 (A then B)", got)
			}
		})
	}
}

// TestOpacityNoLockedReads: Part-HTM-O must never let any execution —
// committed or doomed — observe the value of a locked (non-visible)
// location. Part-HTM (non-opaque) explicitly allows such doomed reads.
func TestOpacityNoLockedReads(t *testing.T) {
	s := newSystem(2, 1<<17, nil, func(c *Config) {
		c.NoFastPath = true
		c.Opaque = true
	})
	m := s.Memory()
	x0 := m.AllocLines(1)
	m.Store(x0, 1)

	var once sync.Once
	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(0, func(x tm.Tx) {
			v := x.Read(x0)
			x.Write(x0, 99)
			x.Pause() // x=99 is in memory but locked and globally uncommitted
			if v == 1 {
				once.Do(func() {
					close(locked)
					<-release
				})
			}
		})
	}()

	<-locked
	var mu sync.Mutex
	var observed []uint64
	windowOpen := true
	bDone := make(chan struct{})
	go func() {
		s.Atomic(1, func(x tm.Tx) {
			v := x.Read(x0)
			mu.Lock()
			if windowOpen {
				observed = append(observed, v)
			}
			mu.Unlock()
		})
		close(bDone)
	}()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	windowOpen = false
	bad := false
	for _, v := range observed {
		if v == 99 {
			bad = true
		}
	}
	mu.Unlock()
	close(release)
	wg.Wait()
	<-bDone
	if bad {
		t.Fatal("Part-HTM-O execution observed a locked (non-visible) value")
	}
	if got := m.Load(x0); got != 99 {
		t.Fatalf("x = %d, want 99", got)
	}
}

// TestNonOpaqueAllowsDoomedLockedReads documents the anomaly Part-HTM
// accepts (and Part-HTM-O removes): a doomed execution may observe a locked
// location's value.
func TestNonOpaqueAllowsDoomedLockedReads(t *testing.T) {
	s := newSystem(2, 1<<17, nil, func(c *Config) { c.NoFastPath = true })
	m := s.Memory()
	x0 := m.AllocLines(1)
	m.Store(x0, 1)

	var once sync.Once
	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(0, func(x tm.Tx) {
			v := x.Read(x0)
			x.Write(x0, 99)
			x.Pause()
			if v == 1 {
				once.Do(func() {
					close(locked)
					<-release
				})
			}
		})
	}()

	<-locked
	var mu sync.Mutex
	sawLocked := false
	windowOpen := true
	bDone := make(chan struct{})
	go func() {
		s.Atomic(1, func(x tm.Tx) {
			v := x.Read(x0)
			mu.Lock()
			if windowOpen && v == 99 {
				sawLocked = true
			}
			mu.Unlock()
		})
		close(bDone)
	}()
	// Give B time to run a few doomed attempts against the locked value.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		mu.Lock()
		if sawLocked {
			mu.Unlock()
			break
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	windowOpen = false
	got := sawLocked
	mu.Unlock()
	close(release)
	wg.Wait()
	<-bDone
	if !got {
		t.Skip("doomed attempt did not observe the locked value in time (scheduling)")
	}
}

// TestLockConflictEventuallySlowPath: with partition retries exhausted by a
// persistently locked location, the transaction must complete via the
// global-lock path rather than spin forever.
func TestSlowPathWaitsForActivePartitioned(t *testing.T) {
	s := newSystem(2, 1<<17, nil, func(c *Config) {
		c.NoFastPath = true
		c.PartRetries = 1
	})
	m := s.Memory()
	x0 := m.AllocLines(1)

	var once sync.Once
	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(0, func(x tm.Tx) {
			v := x.Read(x0)
			x.Write(x0, v+1)
			x.Pause()
			once.Do(func() {
				close(locked)
				<-release
			})
		})
	}()
	<-locked

	bDone := make(chan struct{})
	go func() {
		s.Atomic(1, func(x tm.Tx) { x.Write(x0, x.Read(x0)+10) })
		close(bDone)
	}()
	// B exhausts its single partitioned retry and heads for the slow path,
	// where it must wait for A (active_tx handshake) instead of committing.
	select {
	case <-bDone:
		t.Fatal("B committed while A was active and holding the lock")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	<-bDone
	if got := m.Load(x0); got != 11 {
		t.Fatalf("x = %d, want 11", got)
	}
	if s.Stats().Snapshot().CommitsGL == 0 {
		t.Fatal("expected B to commit on the slow path")
	}
}

// TestReadOnlyPartitionedCommit: read-only global transactions skip the
// ring publication but still validate.
func TestReadOnlyPartitionedCommit(t *testing.T) {
	for _, everySub := range []bool{true, false} {
		s := newSystem(1, 1<<17, nil, func(c *Config) {
			c.NoFastPath = true
			c.ValidateEverySub = everySub
		})
		m := s.Memory()
		a := m.Alloc(2)
		m.Store(a, 5)
		m.Store(a+1, 6)
		var sum uint64
		s.Atomic(0, func(x tm.Tx) {
			sum = x.Read(a)
			x.Pause()
			sum += x.Read(a + 1)
		})
		if sum != 11 {
			t.Fatalf("sum = %d, want 11 (everySub=%v)", sum, everySub)
		}
		if ts := s.doms.Ring(0).Timestamp(); ts != 0 {
			t.Fatalf("read-only transaction advanced the timestamp to %d", ts)
		}
	}
}

// TestNoFastPathSkipsHardwareFastAttempts verifies the Part-HTM-no-fast
// variant goes straight to the partitioned path.
func TestNoFastPathSkipsHardwareFastAttempts(t *testing.T) {
	s := newSystem(1, 1<<17, nil, func(c *Config) { c.NoFastPath = true })
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Write(a, 1) })
	st := s.Stats().Snapshot()
	if st.CommitsHTM != 0 || st.CommitsSW != 1 {
		t.Fatalf("want a single partitioned commit, got %+v", st)
	}
}

// TestWorkloadPanicPropagates: a panic in the body must escape Atomic (on
// any path) without corrupting the system for later transactions.
func TestWorkloadPanicPropagates(t *testing.T) {
	for _, noFast := range []bool{false, true} {
		s := newSystem(1, 1<<17, nil, func(c *Config) { c.NoFastPath = noFast })
		a := s.Memory().Alloc(1)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic did not propagate")
				}
			}()
			s.Atomic(0, func(x tm.Tx) {
				x.Read(a)
				panic("workload bug")
			})
		}()
		// The system must still work afterwards.
		s.Atomic(0, func(x tm.Tx) { x.Write(a, 3) })
		if got := s.Memory().Load(a); got != 3 {
			t.Fatalf("a = %d after recovery", got)
		}
	}
}

// TestUndoRestoresExactValues: a global abort after several committed
// segments must restore every written word to its pre-transaction value.
// Forced via a lock conflict with a concurrent holder.
func TestUndoRestoresExactValues(t *testing.T) {
	s := newSystem(2, 1<<18, nil, func(c *Config) {
		c.NoFastPath = true
		c.PartRetries = 1
	})
	m := s.Memory()
	// A's data: 8 lines it will write across two segments.
	aBase := m.AllocLines(8)
	for i := 0; i < 8; i++ {
		m.Store(aBase+mem.Addr(i*mem.LineWords), uint64(100+i))
	}
	// The contested word B locks.
	contested := m.AllocLines(1)

	var once sync.Once
	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(1, func(x tm.Tx) {
			v := x.Read(contested)
			x.Write(contested, v+1)
			x.Pause()
			once.Do(func() {
				close(locked)
				<-release
			})
		})
	}()
	<-locked

	// A writes its 8 lines in two committed segments, then touches the
	// contested (locked) word: lock conflict => global abort => retries
	// once => slow path (waits for B). While A is stuck we can't observe;
	// instead verify after completion that the final state reflects a
	// consistent serial order.
	aDone := make(chan struct{})
	go func() {
		s.Atomic(0, func(x tm.Tx) {
			for i := 0; i < 8; i++ {
				old := x.Read(aBase + mem.Addr(i*mem.LineWords))
				x.Write(aBase+mem.Addr(i*mem.LineWords), old+1000)
				if i == 3 {
					x.Pause()
				}
			}
			x.Write(contested, x.Read(contested)+100)
		})
		close(aDone)
	}()
	// Let A hit the lock and globally abort at least once; its first four
	// lines were published by a committed sub-HTM and must be rolled back.
	time.Sleep(50 * time.Millisecond)
	// B still holds the lock; A cannot have committed.
	for i := 0; i < 8; i++ {
		got := m.Load(aBase + mem.Addr(i*mem.LineWords))
		want := uint64(100 + i)
		if got != want && got != want+1000 {
			t.Fatalf("line %d = %d: neither original nor final value (torn undo)", i, got)
		}
	}
	close(release)
	wg.Wait()
	<-aDone
	for i := 0; i < 8; i++ {
		got := m.Load(aBase + mem.Addr(i*mem.LineWords))
		if got != uint64(1100+i) {
			t.Fatalf("final line %d = %d, want %d", i, got, 1100+i)
		}
	}
	if got := m.Load(contested); got != 101 {
		t.Fatalf("contested = %d, want 101", got)
	}
}

// TestReplayDeterminism: many sub-HTM retries against a hot counter still
// produce exact counts (replay must serve identical values).
func TestReplayDeterminism(t *testing.T) {
	s := newSystem(4, 1<<18, nil, func(c *Config) { c.NoFastPath = true })
	m := s.Memory()
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	var wg sync.WaitGroup
	const per = 150
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Atomic(id, func(x tm.Tx) {
					va := x.Read(a)
					x.Pause()
					vb := x.Read(b)
					x.Pause()
					x.Write(a, va+1)
					x.Pause()
					x.Write(b, vb+1)
				})
			}
		}(w)
	}
	wg.Wait()
	if m.Load(a) != 4*per || m.Load(b) != 4*per {
		t.Fatalf("a=%d b=%d, want %d", m.Load(a), m.Load(b), 4*per)
	}
}

func TestZeroConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero Config")
		}
	}()
	eng := htm.New(mem.New(1<<16), htm.DefaultConfig())
	New(eng, 1, Config{})
}
