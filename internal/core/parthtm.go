// Package core implements Part-HTM — the paper's contribution — and its
// opacity-preserving variant Part-HTM-O.
//
// Part-HTM commits transactions that best-effort HTM cannot commit because
// of resource (space/time) limitations, without falling back to the global
// lock: it splits them into multiple sub-HTM transactions and stitches
// those back into one isolated, serializable global transaction with a thin
// software framework built on Bloom-filter signatures, a shared write-locks
// signature, a RingSTM-style ring of committed write signatures, and a
// value-based undo log.
//
// Execution follows the paper's three paths:
//
//   - fast path: the whole transaction as one lightly instrumented hardware
//     transaction (Figure 1, lines 1–15);
//   - partitioned path: a chain of sub-HTM transactions with eager writes,
//     write locks, in-flight validation and undo-based rollback (lines
//     16–60);
//   - slow path: global lock, mutual exclusion with everything else (lines
//     61–65).
//
// Partition points come from tm.Tx.Pause calls placed in the workload — the
// equivalent of the paper's statically profiled breaking points. When a
// sub-HTM transaction aborts retryably, the enclosing global transaction is
// re-executed in replay mode: operations of already-committed sub-HTM
// transactions are served from an operation log (reads return the logged
// values, writes are suppressed — their effects are already in memory), and
// execution switches back to live mode at the first un-replayed operation.
// This reproduces the paper's "sub-HTM transactions retry a limited number
// of times" without requiring segment bodies to be separately re-enterable
// closures.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"repro/internal/domain"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sig"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Explicit abort codes used inside hardware transactions.
const (
	// codeGLock: the global lock was held at hardware begin.
	codeGLock uint8 = 1
	// codeLockHit: fast-path commit validation found a read or written
	// location locked by a partitioned transaction.
	codeLockHit uint8 = 2
	// codeLockConflict: a sub-HTM transaction touched a location locked by
	// another global transaction — propagates to a global abort.
	codeLockConflict uint8 = 3
	// codeTsChanged: Part-HTM-O's timestamp subscription observed a new
	// commit at sub-HTM begin — validate, then retry the sub-transaction.
	codeTsChanged uint8 = 4
)

// Config tunes Part-HTM. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// FastRetries is how many fast-path attempts are made before giving up
	// on the unpartitioned execution (resource aborts give up immediately).
	FastRetries int
	// PartRetries is how many partitioned-path attempts are made before the
	// transaction falls back to the slow (global-lock) path. The paper uses
	// 5.
	PartRetries int
	// SubRetries is how many times an aborted sub-HTM transaction is
	// retried (by replay) before the global transaction aborts.
	SubRetries int
	// RingSize is the number of global-ring entries (a power of two).
	RingSize int
	// NoFastPath starts every transaction directly on the partitioned path
	// (the Part-HTM-no-fast variant of Figure 3(b)).
	NoFastPath bool
	// ValidateEverySub runs the in-flight validation after every sub-HTM
	// commit (the paper's default); when false, validation happens only at
	// global commit, which is still serializable but wastes doomed work.
	ValidateEverySub bool
	// Opaque selects Part-HTM-O (Figure 2): address-embedded write locks
	// checked at encounter time plus timestamp subscription at sub-HTM
	// begin, guaranteeing opacity.
	Opaque bool
	// LockPerWrite publishes each write's lock bit into the shared
	// write-locks signature immediately at the write instead of once at the
	// sub-HTM commit. The paper argues (§5.3.5) that per-write updates
	// multiply false conflicts on the signature's cache lines; this knob
	// exists to measure that design decision (ablation).
	LockPerWrite bool
	// SelfTuneFastPath skips the fast path for a thread whose recent
	// transactions kept failing it for resource reasons (re-probing it
	// periodically), in the spirit of self-tuning HTM retry policies
	// (Diegues & Romano, ICAC'14 — the paper's reference [10]). Without it,
	// a workload of persistently over-budget transactions pays every
	// transaction's work twice: once in the doomed hardware attempt and
	// once on the partitioned path.
	SelfTuneFastPath bool
	// AutoPartition activates additional partition points at run time: when
	// a sub-HTM transaction aborts for resources (capacity or time), the
	// thread halves its segment budget and thereafter commits the running
	// sub-HTM transaction automatically once a segment reaches that budget.
	// This is the run-time breaking-point activation the paper sketches in
	// §3 (the advisory-lock/LLVM discussion); the workload's explicit Pause
	// calls remain the static profile it refines.
	AutoPartition bool
	// MaxBackoff bounds the exponential backoff after a global abort.
	MaxBackoff time.Duration

	// RetryBudget caps the hardware aborts (fast-path and sub-HTM alike)
	// one transaction may absorb before it escalates straight to the slow
	// path. Counting aborts rather than begins keeps many-segment
	// partitioned transactions unpenalized. Zero disables the budget (the
	// paper's bare retry schedule).
	RetryBudget int
	// StarveThreshold is how many global aborts in a row make a transaction
	// bid for eldest priority: the oldest starving transaction wins the bid
	// and serializes on the slow path — guaranteed progress in bounded
	// steps, so two partitioned transactions invalidating each other cannot
	// livelock. Zero disables priority bidding.
	StarveThreshold int
	// LemmingWaitSpins bounds the pre-attempt wait on the global lock: a
	// waiter that exceeds the (jittered) bound stops feeding the lemming
	// convoy and joins the slow path instead. Zero restores the unbounded
	// spin.
	LemmingWaitSpins int
	// DegradeThreshold is the contention-pressure level (fed by ring
	// rollovers and write-locks-signature saturation) at which the system
	// enters a degraded serialized mode, recovering automatically as
	// commits drain the pressure. Zero disables degradation.
	DegradeThreshold int

	// Domains shards the memory substrate into this many independent
	// domains, each with its own ring and write-locks signature
	// (internal/domain). 0 and 1 both select the single-domain topology,
	// which is byte-for-byte identical to the pre-domain protocol.
	// Transactions whose footprint spans several domains commit with the
	// cross-domain protocol: canonical-order lock acquisition, per-domain
	// claim+publish, post-publish validation of read-only domains, reverse-
	// order release.
	Domains int
}

// DefaultConfig returns the configuration used in the paper's evaluation.
func DefaultConfig() Config {
	return Config{
		FastRetries:      5,
		PartRetries:      5,
		SubRetries:       5,
		RingSize:         1024,
		ValidateEverySub: true,
		SelfTuneFastPath: true,
		AutoPartition:    true,
		MaxBackoff:       100 * time.Microsecond,
		RetryBudget:      24,
		StarveThreshold:  3,
		LemmingWaitSpins: 4096,
		DegradeThreshold: 12,
	}
}

// System is a Part-HTM (or Part-HTM-O) instance over one simulated memory
// and one HTM engine.
type System struct {
	m   *mem.Memory
	eng *htm.Engine
	cfg Config

	// doms owns the per-domain metadata: each domain's ring and write-locks
	// signature, plus the addr→domain routing. nd caches doms.N(). With
	// nd == 1 every per-domain loop below collapses to a single iteration
	// over domain 0 and the protocol is byte-for-byte the pre-domain one.
	doms *domain.Domains
	nd   int

	glock    mem.Addr // global lock word (own line)
	activeTx mem.Addr // count of partitioned-path transactions (own line)

	// shadowBase maps a data address a to its lock cell shadowBase+a
	// (Part-HTM-O only). A cell holds a<<1|lockbit, standing in for the
	// paper's address-embedded lock behind one level of indirection; zero
	// means "never locked".
	shadowBase mem.Addr

	threads []*thread
	stats   tm.Stats

	// run is the shared execution kernel: it owns the retry schedule, the
	// contention manager (budget, eldest priority, lemming-wait, graceful
	// degradation) and all commit/abort stats recording.
	run *exec.Runner
}

// New creates a Part-HTM system for up to maxThreads concurrent threads.
// The engine's memory must have been created with room for the metadata
// (ring, signatures) and — for Part-HTM-O — a ReserveTop'd shadow region is
// carved automatically.
func New(eng *htm.Engine, maxThreads int, cfg Config) *System {
	if cfg.RingSize == 0 {
		panic("core: zero Config; use DefaultConfig")
	}
	m := eng.Memory()
	s := &System{
		m:   m,
		eng: eng,
		cfg: cfg,
	}
	// Metadata layout: the domain set first (each domain's ring then its
	// write-locks signature, ascending domain order), then the global lock
	// and active counter. At Domains<=1 the total metadata words equal the
	// pre-domain layout's, so every data address — and with it every
	// signature hash — is unchanged.
	s.doms = domain.New(m, domain.Config{N: cfg.Domains, RingSize: cfg.RingSize})
	s.nd = s.doms.N()
	s.glock = m.AllocLines(1)
	s.activeTx = m.AllocLines(1)
	if cfg.Opaque {
		// Shadow the entire allocatable range with lock cells.
		words := m.Words()
		s.shadowBase = m.ReserveTop(words / 2)
		if int(s.shadowBase) < words/2-mem.LineWords {
			// ReserveTop returned less than half: allocations already
			// consumed space; the shadow still covers [0, shadowBase).
			panic("core: opaque shadow region unexpectedly small")
		}
	}
	s.run = exec.New(exec.Policy{
		FastAttempts:       cfg.FastRetries,
		StopFastOnResource: true,
		MidAttempts:        cfg.PartRetries,
		GateMid:            true,
		Backoff:            true,
		MaxBackoff:         cfg.MaxBackoff,
		RetryBudget:        cfg.RetryBudget,
		StarveThreshold:    cfg.StarveThreshold,
		LemmingWaitSpins:   cfg.LemmingWaitSpins,
		DegradeThreshold:   cfg.DegradeThreshold,
	}, &s.stats, func() bool { return m.Load(s.glock) == 0 })
	s.threads = make([]*thread, maxThreads)
	for i := range s.threads {
		t := newThread(i)
		t.sh = s.stats.Shard(i)
		t.et = s.run.Thread(i)
		t.ds = domain.NewTxnState(s.nd, t.sh)
		x := &tx{s: s, t: t}
		t.xtxn = exec.Txn{
			// Kernel dispatch: the level runs whatever body the caller handed
			// Atomic, so no static bound exists at this site; each workload
			// body is bounded at its own definition site, and an oversized
			// one capacity-aborts into the partitioned/slow paths by design.
			// parthtm:bigtx — dispatch wrapper, bounded at the workload site
			Fast:          func() htm.Result { return s.fastAttempt(t, x, t.body) },
			FastCommitted: func() { t.fastFailStreak = 0 },
			FastResource:  func() { t.fastFailStreak++ },
			Mid:           func() bool { return s.partitionedAttempt(t, x, t.body) },
			Slow:          func() { s.slowAttempt(t, x, t.body) },
			Domains:       func() int { return t.ds.Count() },
		}
		s.threads[i] = t
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string {
	switch {
	case s.cfg.Opaque:
		return "Part-HTM-O"
	case s.cfg.NoFastPath:
		return "Part-HTM-no-fast"
	default:
		return "Part-HTM"
	}
}

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// SetTrace attaches a trace sink (nil detaches). Beyond the kernel's
// lifecycle events, Part-HTM records its protocol events: sub-HTM
// begin/commit, write-lock publication/release, and ring publication.
// Attach before starting workers.
func (s *System) SetTrace(sink *trace.Sink) { s.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (s *System) SetGovernor(g *governor.Governor) { s.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches): the
// engine records conflict lines, capacity overflows, and per-window
// footprints (fast windows as prof.ClassFast, sub-HTM windows as
// prof.ClassSub), and the kernel registers as the time-series source.
// Attach before starting workers.
func (s *System) SetProfile(p *prof.Profile) {
	s.run.SetProfile(p)
	s.eng.SetProfile(p)
}

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (s *System) BumpPressure(n int64) { s.run.BumpPressure(n) }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// Engine returns the underlying HTM engine (for abort-breakdown reporting,
// Table 1).
func (s *System) Engine() *htm.Engine { return s.eng }

// Domains returns the number of memory domains (1 on the single-domain
// topology).
func (s *System) Domains() int { return s.nd }

// DomainSet exposes the domain set — workloads use it to route allocations
// into specific domains (domain.AllocLinesIn) and observability code to
// inspect per-domain metadata. Setup-time allocation only; see the domain
// package for concurrency rules.
func (s *System) DomainSet() *domain.Domains { return s.doms }

// cell returns the lock-cell address of data address a (Part-HTM-O).
func (s *System) cell(a mem.Addr) mem.Addr { return s.shadowBase + a }

// SegLimit describes one thread's learned adaptive segment budgets
// (0 = unlimited).
type SegLimit struct {
	Cycles                int64
	ReadLines, WriteLines int
}

// SegLimits reports each thread's learned adaptive segment budgets;
// exposed for observability and tests.
func (s *System) SegLimits() []SegLimit {
	out := make([]SegLimit, len(s.threads))
	for i, t := range s.threads {
		out[i] = SegLimit{Cycles: t.cycleLimit, ReadLines: t.rlineLimit, WriteLines: t.wlineLimit}
	}
	return out
}

// execution modes of a thread's current attempt.
type mode uint8

const (
	modeIdle mode = iota
	modeFast
	modeLive   // partitioned path, executing a live sub-HTM transaction
	modeReplay // partitioned path, replaying committed segments
	modeSlow
)

// opKind tags operation-log records.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opPause
)

type opRec struct {
	kind opKind
	addr mem.Addr
	val  uint64
}

type undoRec struct {
	addr mem.Addr
	old  uint64
}

// thread is the per-thread scratch state; buffers are reused across
// transactions to avoid allocation churn.
type thread struct {
	id   int
	mode mode

	// ds is the per-domain transactional footprint: read/write/aggregate
	// signatures, validation start times, and the touched/written domain
	// masks. With one domain it degenerates to exactly the pre-domain
	// per-thread signatures (domain 0 permanently touched).
	ds *domain.TxnState

	ht *htm.Txn // open fast-path or sub-HTM transaction

	undo      []undoRec
	opLog     []opRec
	replayPos int

	// segment marks: state is truncated back to these when the live
	// segment aborts, so only committed segments' effects survive.
	undoMark int
	logMark  int
	lockMark int

	// Part-HTM-O: cells locked by this global transaction, in acquisition
	// order, with a set for O(1) self-lock tests.
	lockedCells []mem.Addr
	lockedSet   map[mem.Addr]struct{}

	// Adaptive partitioning state: the running segment's footprint along
	// the three hardware resource dimensions, and the learned budgets at
	// which a partition point is auto-activated (0 = unlimited until a
	// resource abort teaches one). Cycle budgets guard the timer quantum;
	// line budgets guard cache capacity, including set-associativity
	// evictions the software cannot predict geometrically. Distinct lines
	// are counted through small direct-mapped caches: a collision evicts
	// and later recounts, so the counts only ever overestimate —
	// conservative for budget purposes.
	segCycles  int64
	segRCache  [64]mem.Line
	segWCache  [64]mem.Line
	segRCount  int
	segWCount  int
	cycleLimit int64
	rlineLimit int
	wlineLimit int

	// Self-tuning fast path: consecutive transactions whose fast attempts
	// died for resources, and a transaction counter for periodic re-probes.
	fastFailStreak int
	txCount        uint64

	// Kernel plumbing: this thread's stats shard, its exec-kernel state,
	// its reusable level descriptor (the closures capture the thread, the
	// body of the current transaction arrives via t.body), and the body
	// slot itself.
	sh   *tm.Shard
	et   *exec.Thread
	xtxn exec.Txn
	body func(tm.Tx)

	// Whole-attempt footprint (accumulated per committed segment): used to
	// detect that a partitioned transaction would actually have fit in
	// hardware, so a mixed workload's small transactions return to the
	// fast path quickly.
	attemptSegs   int
	attemptCycles int64
	attemptWLines int
}

func newThread(id int) *thread {
	return &thread{
		id:        id,
		lockedSet: make(map[mem.Addr]struct{}),
	}
}

// resetSegmentBudget clears the per-segment footprint trackers. Line 0 is
// the reserved null line, so a zeroed cache is empty.
func (t *thread) resetSegmentBudget() {
	t.segCycles = 0
	t.segRCount = 0
	t.segWCount = 0
	clear(t.segRCache[:])
	clear(t.segWCache[:])
}

func (t *thread) resetFast() {
	t.ds.Reset()
	t.mode = modeFast
}

// resetPartitioned prepares a fresh partitioned attempt. The caller must
// follow it with doms.SnapshotTimestamps(t.ds.Start) — the validation
// start times are part of the attempt's state but live in the domain set.
func (t *thread) resetPartitioned() {
	t.ds.Reset()
	t.undo = t.undo[:0]
	t.opLog = t.opLog[:0]
	t.replayPos = 0
	t.undoMark = 0
	t.logMark = 0
	t.lockMark = 0
	t.lockedCells = t.lockedCells[:0]
	clear(t.lockedSet)
	t.ht = nil
	t.resetSegmentBudget()
	t.attemptSegs = 0
	t.attemptCycles = 0
	t.attemptWLines = 0
}

// truncateSegment discards the live segment's uncommitted effects after a
// sub-HTM abort: its undo records (the writes were never published), its
// log suffix, and — for Part-HTM-O — its lock bookkeeping (the lock-bit
// writes were buffered in the aborted hardware transaction).
//
// In Part-HTM-O the write signature accumulates across the whole global
// transaction (it is what gets published to the ring), so bits from the
// aborted segment are kept: they are merely conservative. In Part-HTM the
// write signature is per-segment and is cleared.
func (s *System) truncateSegment(t *thread) {
	t.undo = t.undo[:t.undoMark]
	t.opLog = t.opLog[:t.logMark]
	for _, c := range t.lockedCells[t.lockMark:] {
		delete(t.lockedSet, c)
	}
	t.lockedCells = t.lockedCells[:t.lockMark]
	if !s.cfg.Opaque {
		// Per-segment write signatures: drop the aborted segment's bits in
		// every touched domain (bits of committed segments were already
		// folded into the aggregates). The written-domain mask is kept, as
		// the pre-domain code kept its `wrote` flag.
		for m := t.ds.Touched; m != 0; m &= m - 1 {
			t.ds.Write[bits.TrailingZeros64(m)].Clear()
		}
	}
	t.resetSegmentBudget()
}

// markSegment records that everything logged so far belongs to committed
// sub-HTM transactions, and folds the segment's footprint into the
// attempt totals.
func (t *thread) markSegment() {
	t.undoMark = len(t.undo)
	t.logMark = len(t.opLog)
	t.lockMark = len(t.lockedCells)
	t.attemptSegs++
	t.attemptCycles += t.segCycles
	t.attemptWLines += t.segWCount
}

var debugSegLearn = false

// Control-flow sentinels for the partitioned path.
type globalAbortPanic struct{}

// outcome of one body execution attempt on the partitioned path.
type outcome uint8

const (
	outDone outcome = iota
	outRetrySeg
	outAbortGlobal
)

// Atomic implements tm.System: fast path, then partitioned path, then slow
// path, with the retry policy of the paper's evaluation (5 attempts per
// level; resource aborts skip straight to partitioning) hardened by the
// contention manager: a per-transaction hardware-abort budget, eldest
// priority for starving transactions, bounded lemming-waits, and a degraded
// serialized mode under persistent metadata pressure. All of that schedule
// lives in the exec kernel; this method only decides whether the self-tuned
// fast path applies to this transaction and hands the level closures over.
func (s *System) Atomic(threadID int, body func(tm.Tx)) {
	t := s.threads[threadID]
	t.body = body
	t.txCount++
	// Skip the doomed fast attempt when this thread's transactions keep
	// exceeding the hardware budget, re-probing every 32nd transaction.
	t.xtxn.SkipFast = s.cfg.NoFastPath ||
		(s.cfg.SelfTuneFastPath && t.fastFailStreak >= 3 && t.txCount%32 != 0)
	s.run.Run(threadID, &t.xtxn)
	t.body = nil
}

// ---------------------------------------------------------------------------
// Contention manager (forwarders into the exec kernel)

// SetEscalateHook installs f to be called on every contention-manager
// escalation with the escalating thread and its age ticket (nil to remove).
// Test instrumentation; not safe to flip while transactions run.
func SetEscalateHook(f func(threadID int, ticket uint64)) { exec.SetEscalateHook(f) }

// Degradation pressure: ring rollovers mean validators cannot keep up with
// the commit rate; a near-saturated write-locks signature means almost every
// validation is a (false) conflict. Both are metadata-pressure conditions
// that retrying harder only worsens — serializing drains them.
const (
	degradeBumpRollover = 4
	degradeBumpSaturate = 1
	// wlocksSaturationBits is the write-locks-signature population at which
	// a sub-commit reports saturation pressure (7/8 of all bits set: nearly
	// every signature test against it will collide).
	wlocksSaturationBits = sig.Bits * 7 / 8
)

// serialSampleCap bounds one ring-publish serial-time sample. A publish is a
// bounded pipeline wait plus a fixed store sequence (one ring entry), so a
// genuine sample is microseconds; samples beyond the cap are a descheduled
// publisher wall-clocking the host scheduler, not the protocol.
const serialSampleCap = 10 * time.Microsecond

// bumpPressure raises the degradation pressure by n, tripping degraded mode
// at the threshold.
func (s *System) bumpPressure(n int64) { s.run.BumpPressure(n) }

// Degraded reports whether the system is currently in degraded serialized
// mode (observability and tests).
func (s *System) Degraded() bool { return s.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (s *System) Pressure() int64 { return s.run.Pressure() }

// PriorityTicket returns the age ticket currently holding eldest priority
// (0 = none).
func (s *System) PriorityTicket() uint64 { return s.run.PriorityTicket() }

// ---------------------------------------------------------------------------
// Fast path (Figure 1 lines 1–15; Figure 2 lines 1–13 when opaque)

func (s *System) fastAttempt(t *thread, x *tx, body func(tm.Tx)) (res htm.Result) {
	defer func() {
		r := recover()
		if ar, ok := htm.AsAbort(r); ok {
			res = ar
		} else if r != nil {
			// Workload panic: tear the open hardware transaction down and
			// re-raise.
			if t.ht != nil {
				t.ht.Cancel()
			}
			t.ht = nil
			t.mode = modeIdle
			panic(r)
		}
		t.ht = nil
		t.mode = modeIdle
	}()
	ht := s.eng.Begin(t.id)
	t.ht = ht
	t.resetFast()
	if ht.Read(s.glock) != 0 {
		ht.Abort(codeGLock) // the lock line stays monitored: later acquisition dooms us
	}
	body(x)
	ds := t.ds
	if !s.cfg.Opaque {
		// Commit-time validation: no read from or write over a non-visible
		// (locked) location (Figure 1 lines 7-8), per touched domain in
		// canonical (ascending) order. Each domain's signature is fetched
		// at cache-line granularity — four monitored line reads.
		var wl [sig.Words]uint64
		for m := ds.Touched; m != 0; m &= m - 1 {
			d := bits.TrailingZeros64(m)
			s.readWriteLocks(ht, d, &wl)
			if ds.Write[d].IntersectsWords(wl[:]) || ds.Read[d].IntersectsWords(wl[:]) {
				ht.Abort(codeLockHit)
			}
		}
	}
	// Opaque mode checked locks at encounter time and keeps every touched
	// lock cell monitored, so no commit validation is needed (Figure 2).
	if ds.Wrote != 0 {
		ht.InjectionPoint(fault.SiteRingPub)
		// Publish to every written domain's ring inside the hardware
		// window, ascending; the hardware commit makes all the entries (and
		// all the timestamp increments) visible atomically, so a fast-path
		// cross-domain commit needs no ordering protocol at all.
		for m := ds.Wrote; m != 0; m &= m - 1 {
			d := bits.TrailingZeros64(m)
			r := s.doms.Ring(d)
			ts := ht.Read(r.TimestampAddr()) + 1
			ht.Write(r.TimestampAddr(), ts)
			r.PublishHTM(ht, ts, &ds.Write[d])
		}
	}
	ht.Commit()
	if ds.Wrote != 0 {
		// The ring entries became visible with the hardware commit; record
		// now that the window is closed.
		t.et.TraceEvent(trace.EvRingPub, 0)
	}
	return htm.Result{Committed: true}
}

// ---------------------------------------------------------------------------
// Partitioned path (Figure 1 lines 16–60; Figure 2 lines 14–67 when opaque)

// partitionedAttempt runs one global-transaction attempt on the partitioned
// path, reporting whether it committed. On failure the caller backs off and
// retries (or escalates to the slow path).
func (s *System) partitionedAttempt(t *thread, x *tx, body func(tm.Tx)) bool {
	// Begin (lines 16-19): handshake with the slow path. The caller already
	// waited for the global lock; the re-check after the active announcement
	// closes the race with a slow transaction acquiring it in between.
	s.m.Add(s.activeTx, 1)
	if s.m.Load(s.glock) != 0 {
		// Reset the footprint masks so the kernel does not attribute this
		// non-attempt to the previous attempt's domain set.
		t.ds.Reset()
		s.decActive()
		return false
	}
	t.resetPartitioned()
	s.doms.SnapshotTimestamps(t.ds.Start)

	subAttempts := 0
	for {
		out := s.tryRunBody(t, x, body)
		if out == outDone {
			break
		}
		if out == outAbortGlobal {
			s.globalAbort(t)
			return false
		}
		// Retry the aborted segment by replaying the committed prefix.
		subAttempts++
		if subAttempts > s.cfg.SubRetries {
			s.globalAbort(t)
			return false
		}
		t.replayPos = 0
	}

	if !s.globalCommit(t) {
		s.globalAbort(t)
		return false
	}
	if s.cfg.AutoPartition && subAttempts == 0 {
		t.regrowSegLimits()
	}
	if s.cfg.SelfTuneFastPath && t.attemptSegs <= 1 {
		// The whole transaction fit one modest sub-HTM transaction: it
		// would very likely commit on the fast path too, so resume probing
		// it immediately (mixed short/long workloads, Table 1).
		ecfg := s.eng.Config()
		if (ecfg.Quantum == 0 || t.attemptCycles < ecfg.Quantum/4) &&
			(ecfg.WriteLines == 0 || t.attemptWLines < ecfg.WriteLines/4) {
			t.fastFailStreak = 0
		}
	}
	return true
}

// tryRunBody executes the body once: replaying the committed prefix, going
// live at the first un-replayed operation, and committing the final open
// sub-HTM transaction at the end.
func (s *System) tryRunBody(t *thread, x *tx, body func(tm.Tx)) (out outcome) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if res, ok := htm.AsAbort(r); ok {
			// The open sub-HTM transaction aborted; htm already tore it
			// down. Learn from the failed segment's footprint before the
			// truncation wipes the trackers.
			t.ht = nil
			t.et.NoteHWAbort(res)
			if s.cfg.AutoPartition && (res.Reason == htm.Capacity || res.Reason == htm.Other) {
				if debugSegLearn {
					fmt.Printf("learn: reason=%v cycles=%d rlines=%d wlines=%d limits=(%d,%d,%d)\n",
						res.Reason, t.segCycles, t.segRCount, t.segWCount,
						t.cycleLimit, t.rlineLimit, t.wlineLimit)
				}
				t.learnSegLimit(res.Reason)
			}
			s.truncateSegment(t)
			switch {
			case res.Reason == htm.Explicit && res.Code == codeLockConflict:
				// Conflict on a global write lock propagates to the global
				// transaction (paper §5.3.5).
				out = outAbortGlobal
			case res.Reason == htm.Capacity || res.Reason == htm.Other:
				// Resource failure of one segment: the budgets learned
				// above make the retry partition more aggressively.
				out = outRetrySeg
			case res.Reason == htm.Explicit && res.Code == codeTsChanged:
				// Part-HTM-O timestamp subscription (Figure 2 lines 36-39):
				// validate; if still consistent, only the sub-transaction
				// restarts.
				if s.inFlightValidate(t) {
					out = outRetrySeg
				} else {
					out = outAbortGlobal
				}
			default:
				out = outRetrySeg
			}
			return
		}
		if _, ok := r.(globalAbortPanic); ok {
			if t.ht != nil {
				t.ht.Cancel()
				t.ht = nil
			}
			s.truncateSegment(t)
			out = outAbortGlobal
			return
		}
		// A workload panic: tear down and re-raise.
		if t.ht != nil {
			t.ht.Cancel()
			t.ht = nil
		}
		panic(r)
	}()

	if len(t.opLog) > 0 {
		t.mode = modeReplay
	} else {
		t.mode = modeLive
	}
	body(x)
	s.subCommitIfOpen(t)
	t.mode = modeIdle
	return outDone
}

// learnSegLimit halves the relevant segment budgets toward the footprint
// that just failed: capacity aborts teach the line budgets, timer aborts
// teach the cycle budget.
func (t *thread) learnSegLimit(reason htm.AbortReason) {
	lower := func(cur, observed, floor int) int {
		n := observed / 2
		if n < floor {
			n = floor
		}
		if cur == 0 || n < cur {
			return n
		}
		return cur
	}
	switch reason {
	case htm.Capacity:
		t.wlineLimit = lower(t.wlineLimit, t.segWCount, 2)
		t.rlineLimit = lower(t.rlineLimit, t.segRCount, 16)
	case htm.Other:
		t.cycleLimit = int64(lower(int(t.cycleLimit), int(t.segCycles), 64))
	}
}

// regrowSegLimits relaxes the learned budgets after a clean commit so one
// unlucky transaction cannot pin the thread at tiny segments forever.
func (t *thread) regrowSegLimits() {
	if t.wlineLimit > 0 {
		t.wlineLimit += max(1, t.wlineLimit/4)
	}
	if t.rlineLimit > 0 {
		t.rlineLimit += max(1, t.rlineLimit/4)
	}
	if t.cycleLimit > 0 {
		t.cycleLimit += max(1, t.cycleLimit/4)
	}
}

// overBudget reports whether the running segment has reached a learned
// budget along any resource dimension.
func (t *thread) overBudget() bool {
	if t.cycleLimit > 0 && t.segCycles >= t.cycleLimit {
		return true
	}
	if t.wlineLimit > 0 && t.segWCount >= t.wlineLimit {
		return true
	}
	if t.rlineLimit > 0 && t.segRCount >= t.rlineLimit {
		return true
	}
	return false
}

// maybeAutoPause commits the running segment when a learned budget is
// reached, then charges the upcoming operation (c cycles plus, when
// nonzero, its read or write line) to the — possibly fresh — segment.
func (s *System) maybeAutoPause(t *thread, c int64, rline, wline mem.Line, hasR, hasW bool) {
	if s.cfg.AutoPartition && t.ht != nil && t.overBudget() {
		s.subCommitIfOpen(t)
		t.opLog = append(t.opLog, opRec{kind: opPause})
		t.markSegment()
		t.resetSegmentBudget()
	}
	t.segCycles += c
	if hasR {
		if i := rline & 63; t.segRCache[i] != rline {
			t.segRCache[i] = rline
			t.segRCount++
		}
	}
	if hasW {
		if i := wline & 63; t.segWCache[i] != wline {
			t.segWCache[i] = wline
			t.segWCount++
		}
	}
}

// ensureSub lazily opens the next sub-HTM transaction.
func (s *System) ensureSub(t *thread) *htm.Txn {
	if t.ht != nil {
		return t.ht
	}
	t.et.TraceEvent(trace.EvSubBegin, 0) // before Begin: outside the window
	ht := s.eng.Begin(t.id)
	ht.SetProfileClass(prof.ClassSub) // footprints split fast vs sub-HTM
	t.ht = ht
	if s.cfg.Opaque {
		// Timestamp subscription (Figure 2 lines 23-24), per touched
		// domain: the monitored reads make any commit in a touched domain
		// doom this sub-transaction, and a stale start forces validation
		// before any memory is touched. Domains first touched later in this
		// segment subscribe at the touch (touchLive).
		for m := t.ds.Touched; m != 0; m &= m - 1 {
			d := bits.TrailingZeros64(m)
			if ht.Read(s.doms.Ring(d).TimestampAddr()) != t.ds.Start[d] {
				ht.Abort(codeTsChanged)
			}
		}
	}
	return ht
}

// touchLive records domain d in the live segment's footprint. The first
// touch of a new domain also takes that domain's validation start time:
// the timestamp is read before the data access that triggered the touch,
// so validation from it covers every read the transaction makes in d. The
// mask bit is set before the start is taken so a recovery path validates
// the new domain too. Under opacity the start is read inside the open
// sub-HTM transaction, which doubles as the timestamp subscription that
// ensureSub performs for domains already known at segment begin.
// Single-domain topologies keep domain 0 permanently touched, so this is
// a no-op there — the start was taken at attempt begin and the
// subscription at segment begin, as in the pre-domain protocol.
func (s *System) touchLive(t *thread, ht *htm.Txn, d int) {
	bit := uint64(1) << uint(d)
	if t.ds.Touched&bit != 0 {
		return
	}
	t.ds.Touched |= bit
	if s.cfg.Opaque {
		t.ds.Start[d] = ht.Read(s.doms.Ring(d).TimestampAddr())
	} else {
		t.ds.Start[d] = s.doms.Ring(d).Timestamp()
	}
}

// subCommitIfOpen commits the currently open sub-HTM transaction, if any,
// with the paper's pre-commit validation and lock publication, then runs
// the in-flight validation.
func (s *System) subCommitIfOpen(t *thread) {
	ht := t.ht
	if ht == nil {
		return
	}
	ds := t.ds
	if !s.cfg.Opaque {
		// Pre-commit validation (Figure 1 lines 26-28), per touched domain
		// in canonical (ascending) order: exclude our own locks, then check
		// reads and writes against others' locks in that domain.
		var wl [sig.Words]uint64
		for m := ds.Touched; m != 0; m &= m - 1 {
			d := bits.TrailingZeros64(m)
			s.readWriteLocks(ht, d, &wl)
			if s.cfg.DegradeThreshold > 0 {
				pop := 0
				for _, w := range wl {
					pop += bits.OnesCount64(w)
				}
				if pop >= wlocksSaturationBits {
					s.bumpPressure(degradeBumpSaturate)
				}
			}
			for i := range wl {
				wl[i] &^= ds.Agg[d][i] // others_locks = write_locks - agg_write_sig
				if s.cfg.LockPerWrite {
					// Our current segment's locks are already published too.
					wl[i] &^= ds.Write[d][i]
				}
			}
			if ds.Write[d].IntersectsWords(wl[:]) || ds.Read[d].IntersectsWords(wl[:]) {
				ht.Abort(codeLockConflict)
			}
			// Announce the new non-visible locations (line 29): set our
			// write signature's bits in this domain's shared write-locks
			// signature, touching only the words that change to keep the
			// false-conflict footprint minimal.
			if ds.Wrote&(1<<uint(d)) != 0 {
				wlocks := s.doms.Wlocks(d)
				for i := range ds.Write[d] {
					if ds.Write[d][i] != 0 {
						cur := ht.Read(wlocks + mem.Addr(i))
						if cur|ds.Write[d][i] != cur {
							ht.Write(wlocks+mem.Addr(i), cur|ds.Write[d][i])
						}
					}
				}
			}
		}
	}
	ht.Commit()
	t.ht = nil
	t.et.TraceEvent(trace.EvSubCommit, 0)
	if ds.Wrote != 0 {
		// The segment's write locks became visible with the commit
		// (signature bits, or the cells written inside the window).
		t.et.TraceEvent(trace.EvLockAcq, uint64(len(t.lockedCells)))
		if s.nd > 1 && ds.Count() > 1 {
			for m := ds.Wrote; m != 0; m &= m - 1 {
				t.et.TraceEvent(trace.EvDomainAcquire, uint64(bits.TrailingZeros64(m)))
			}
		}
	}

	// The segment is committed the instant the hardware commit succeeds:
	// its writes are in memory and its locks are published. Fold its write
	// signatures into the aggregates and advance the segment marks *before*
	// anything that can trigger a global abort, so that rollback always
	// covers the segment's writes and lock release always covers its locks.
	if !s.cfg.Opaque {
		for m := ds.Touched; m != 0; m &= m - 1 {
			d := bits.TrailingZeros64(m)
			ds.Agg[d].Union(&ds.Write[d])
			ds.Write[d].Clear()
		}
	}
	t.markSegment()

	if !s.cfg.Opaque && s.cfg.ValidateEverySub {
		if !s.inFlightValidate(t) {
			panic(globalAbortPanic{})
		}
	}
	// Part-HTM-O needs no post-commit validation: the timestamp
	// subscription aborts any sub-transaction that overlaps a commit, so a
	// committed sub-transaction is already known consistent.
}

// readWriteLocks fetches domain d's shared write-locks signature with four
// monitored line reads (the hardware access granularity).
func (s *System) readWriteLocks(ht *htm.Txn, d int, wl *[sig.Words]uint64) {
	ht.InjectionPoint(fault.SiteLockSigRead)
	wlocks := s.doms.Wlocks(d)
	var line [mem.LineWords]uint64
	for i := 0; i < sig.Lines; i++ {
		ht.ReadLine(wlocks+mem.Addr(i*mem.LineWords), &line)
		copy(wl[i*mem.LineWords:(i+1)*mem.LineWords], line[:])
	}
}

// inFlightValidate checks the memory snapshot observed so far against every
// concurrently committed transaction in every touched domain (Figure 1
// lines 34-41). It returns false when the global transaction must abort.
func (s *System) inFlightValidate(t *thread) bool {
	ok, rollover := s.doms.Validate(t.ds)
	if !ok {
		if rollover {
			s.bumpPressure(degradeBumpRollover)
			if s.nd > 1 {
				t.sh.DomainRingRollovers.Inc()
			}
		}
		return false
	}
	return true
}

// globalCommit implements Figure 1 lines 42-52 (Figure 2 lines 48-59 for
// Part-HTM-O), with each written domain's timestamp claimed by a
// validate-and-CAS loop so the window between the last validation of that
// domain and its ring insertion is closed.
//
// Cross-domain commits extend the protocol in canonical (ascending) domain
// order: each written domain is claimed and published immediately — nothing
// blocks between the claim and the publication, so validators (who spin on
// unpublished entries) only ever wait backwards within one domain's
// timestamp order and no cross-domain wait cycle can form. After the last
// publication every touched domain is re-validated: for a racing pair of
// cross-domain transactions each validates after it publishes, so at least
// one of them observes the other's entry — the classic OCC argument that
// makes mutual misses (write skew through a read-only domain) impossible.
// Locks are released in reverse (descending) domain order.
func (s *System) globalCommit(t *thread) bool {
	ds := t.ds
	if ds.Wrote == 0 {
		// With per-sub validation (or Part-HTM-O's subscription) the reads
		// are already known consistent; otherwise a read-only transaction
		// still needs one final validation before it may return values.
		if !s.cfg.Opaque && !s.cfg.ValidateEverySub && !s.inFlightValidate(t) {
			return false
		}
		s.decActive()
		return true
	}
	// Software ring-publication faults must fire before any timestamp is
	// claimed: a claimed timestamp is always published (the seqlock on its
	// entry would otherwise wedge every validator of that domain).
	if in := s.eng.Injector(); in != nil {
		if _, _, ok := in.Draw(fault.SiteRingPub, t.id); ok {
			t.sh.FaultsInjected.Inc()
			return false
		}
	}
	cross := ds.Count() > 1
	var lastTS uint64
	for m := ds.Wrote; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		pub := &ds.Agg[d]
		if s.cfg.Opaque {
			pub = &ds.Write[d]
		}
		myts, ok, rollover := s.doms.ClaimTimestamp(d, &ds.Read[d], &ds.Start[d])
		if !ok {
			if rollover {
				s.bumpPressure(degradeBumpRollover)
				if s.nd > 1 {
					t.sh.DomainRingRollovers.Inc()
				}
			}
			// Domains already published stay published: their entries are
			// merely conservative (the writes remain lock-protected until
			// globalAbort rolls them back and releases the locks), costing
			// at worst spurious aborts in validators of those domains.
			return false
		}
		start := time.Now()
		s.doms.Publish(d, myts, pub)
		// Validators of this domain spin on the entry until it is
		// published: that window serializes the domain — 1/N of the
		// topology's commit capacity. Lock release is not serializing — it
		// only delays true conflictors. The per-sample clamp discards
		// scheduler-preemption artifacts: on an oversubscribed host a
		// publisher descheduled mid-window wall-clocks other goroutines'
		// entire time slices, which is not publish-pipeline occupancy.
		el := time.Since(start)
		if el > serialSampleCap {
			el = serialSampleCap
		}
		t.sh.AddSerial(el / time.Duration(s.nd))
		// Our own entry must not fail our later validation of this domain.
		ds.Start[d] = myts
		lastTS = myts
		if cross {
			t.et.TraceEvent(trace.EvDomainPublish, uint64(d))
		}
	}
	if cross {
		// Post-publish validation of every touched domain — the read-only
		// ones in particular, whose consistency no claim re-checked.
		ok, rollover := s.doms.Validate(ds)
		if !ok {
			if rollover {
				s.bumpPressure(degradeBumpRollover)
				t.sh.DomainRingRollovers.Inc()
			}
			return false
		}
	}
	t.et.TraceEvent(trace.EvRingPub, lastTS)
	if s.cfg.Opaque {
		s.releaseCellLocks(t)
	} else {
		s.releaseSigLocks(t)
	}
	if cross {
		for m := ds.Wrote; m != 0; {
			d := 63 - bits.LeadingZeros64(m)
			t.et.TraceEvent(trace.EvDomainRelease, uint64(d))
			m &^= 1 << uint(d)
		}
	}
	t.et.TraceEvent(trace.EvLockRel, 0)
	s.decActive()
	return true
}

// globalAbort implements Figure 1 lines 53-58: restore old values from the
// undo log (newest first), release the write locks, and leave the
// partitioned path. The caller handles backoff and retry.
func (s *System) globalAbort(t *thread) {
	for i := len(t.undo) - 1; i >= 0; i-- {
		s.m.Store(t.undo[i].addr, t.undo[i].old)
	}
	if s.cfg.Opaque {
		s.releaseCellLocks(t)
	} else {
		s.releaseSigLocks(t)
	}
	if t.ds.Wrote != 0 {
		if s.nd > 1 && t.ds.Count() > 1 {
			for m := t.ds.Wrote; m != 0; {
				d := 63 - bits.LeadingZeros64(m)
				t.et.TraceEvent(trace.EvDomainRelease, uint64(d))
				m &^= 1 << uint(d)
			}
		}
		t.et.TraceEvent(trace.EvLockRel, 0)
	}
	s.decActive()
}

// releaseSigLocks removes this transaction's bits from every written
// domain's shared write-locks signature (Figure 1 lines 48-49), one atomic
// AND-NOT per changed word, in reverse (descending) canonical order — the
// mirror of the ascending acquisition order.
func (s *System) releaseSigLocks(t *thread) {
	for m := t.ds.Wrote; m != 0; {
		d := 63 - bits.LeadingZeros64(m)
		s.doms.ReleaseWlocks(d, &t.ds.Agg[d])
		m &^= 1 << uint(d)
	}
}

// releaseCellLocks clears the lock bit of every cell this transaction
// acquired (Figure 2 lines 55-56 / 61-62).
func (s *System) releaseCellLocks(t *thread) {
	for _, c := range t.lockedCells {
		a := c - s.shadowBase
		s.m.Store(c, uint64(a)<<1)
	}
}

func (s *System) decActive() {
	s.m.Add(s.activeTx, ^uint64(0)) // -1
}

// ---------------------------------------------------------------------------
// Slow path (Figure 1 lines 61-65)

func (s *System) slowAttempt(t *thread, x *tx, body func(tm.Tx)) {
	for !s.m.CAS(s.glock, 0, 1) {
		runtime.Gosched()
	}
	for s.m.Load(s.activeTx) != 0 {
		runtime.Gosched()
	}
	start := time.Now()
	t.mode = modeSlow
	body(x)
	t.mode = modeIdle
	s.m.Store(s.glock, 0)
	t.sh.AddSerial(time.Since(start))
}

// ---------------------------------------------------------------------------
// The tm.Tx view

// tx adapts a thread's current execution mode to the tm.Tx interface.
type tx struct {
	s *System
	t *thread
}

var _ tm.Tx = (*tx)(nil)

// Thread implements tm.Tx.
func (x *tx) Thread() int { return x.t.id }

// Pause implements tm.Tx: a partition point. On the partitioned path it
// commits the open sub-HTM transaction; everywhere else it is free.
func (x *tx) Pause() {
	t := x.t
	switch t.mode {
	case modeLive:
		x.s.subCommitIfOpen(t)
		t.opLog = append(t.opLog, opRec{kind: opPause})
		t.markSegment()
		t.resetSegmentBudget()
	case modeReplay:
		x.replayExpect(opPause, 0, 0)
	}
}

// Work implements tm.Tx: transactional computation. It burns real CPU and,
// inside a hardware transaction, counts against the timer quantum.
func (x *tx) Work(c int64) {
	t := x.t
	switch t.mode {
	case modeFast:
		t.ht.Work(c)
	case modeLive:
		x.s.maybeAutoPause(t, c, 0, 0, false, false)
		x.s.ensureSub(t).Work(c)
	case modeReplay:
		// Re-executed during replay like any other body code.
	}
	tm.Spin(c)
}

// NonTxWork implements tm.Tx: computation the software framework runs
// outside sub-HTM transactions. On the fast path it is inevitably inside
// the hardware transaction and pays the quantum cost.
func (x *tx) NonTxWork(c int64) {
	t := x.t
	if t.mode == modeFast {
		t.ht.Work(c)
	}
	tm.Spin(c)
}

// Read implements tm.Tx.
func (x *tx) Read(a mem.Addr) uint64 {
	s, t := x.s, x.t
	switch t.mode {
	case modeFast:
		if s.cfg.Opaque {
			// Encounter-time lock check through the cell (Figure 2 lines
			// 3-4); the monitored cell read dooms us if it is locked later.
			t.ds.Touched |= 1 << uint(s.doms.Of(a))
			if t.ht.Read(s.cell(a))&1 != 0 {
				t.ht.Abort(codeLockHit)
			}
			return t.ht.Read(a)
		}
		d := s.doms.Of(a)
		t.ds.Touched |= 1 << uint(d)
		t.ds.Read[d].Add(uint32(a))
		return t.ht.Read(a)

	case modeLive:
		s.maybeAutoPause(t, 1, mem.LineOf(a), 0, true, false)
		ht := s.ensureSub(t)
		d := s.doms.Of(a)
		s.touchLive(t, ht, d)
		if s.cfg.Opaque {
			if c := ht.Read(s.cell(a)); c&1 != 0 {
				if _, self := t.lockedSet[s.cell(a)]; !self {
					ht.Abort(codeLockConflict) // locked by others (Figure 2 lines 25-26)
				}
			}
		}
		t.ds.Read[d].Add(uint32(a))
		v := ht.Read(a)
		t.opLog = append(t.opLog, opRec{kind: opRead, addr: a, val: v})
		return v

	case modeReplay:
		return x.replayExpect(opRead, a, 0)

	case modeSlow:
		return s.m.Load(a)
	}
	panic(fmt.Sprintf("core: Read outside a transaction (mode %d)", t.mode))
}

// Write implements tm.Tx.
func (x *tx) Write(a mem.Addr, v uint64) {
	s, t := x.s, x.t
	switch t.mode {
	case modeFast:
		d := s.doms.Of(a)
		t.ds.Touched |= 1 << uint(d)
		if s.cfg.Opaque {
			if t.ht.Read(s.cell(a))&1 != 0 {
				t.ht.Abort(codeLockHit)
			}
		}
		t.ds.Write[d].Add(uint32(a))
		t.ht.Write(a, v)
		t.ds.Wrote |= 1 << uint(d)
		return

	case modeLive:
		s.maybeAutoPause(t, 2, 0, mem.LineOf(a), false, true)
		ht := s.ensureSub(t)
		d := s.doms.Of(a)
		s.touchLive(t, ht, d)
		if s.cfg.Opaque {
			c := s.cell(a)
			if cv := ht.Read(c); cv&1 != 0 {
				if _, self := t.lockedSet[c]; !self {
					ht.Abort(codeLockConflict)
				}
				// Already locked by us: just write the data in place
				// (Figure 2 line 31/35).
				old := ht.Read(a)
				t.undo = append(t.undo, undoRec{addr: a, old: old})
				ht.Write(a, v)
				t.opLog = append(t.opLog, opRec{kind: opWrite, addr: a, val: v})
				t.ds.Wrote |= 1 << uint(d)
				return
			}
			// Acquire the address-embedded lock (Figure 2 line 34): the
			// lock becomes visible when this sub-HTM transaction commits.
			old := ht.Read(a)
			t.undo = append(t.undo, undoRec{addr: a, old: old})
			t.ds.Write[d].Add(uint32(a))
			ht.Write(c, uint64(a)<<1|1)
			t.lockedCells = append(t.lockedCells, c)
			t.lockedSet[c] = struct{}{}
			ht.Write(a, v)
			t.opLog = append(t.opLog, opRec{kind: opWrite, addr: a, val: v})
			t.ds.Wrote |= 1 << uint(d)
			return
		}
		// Figure 1 lines 23-25: log the old value, record the signature,
		// write in place (buffered until the sub-HTM commit).
		old := ht.Read(a)
		t.undo = append(t.undo, undoRec{addr: a, old: old})
		t.ds.Write[d].Add(uint32(a))
		if s.cfg.LockPerWrite {
			// Ablation: publish the lock bit immediately instead of at the
			// sub-HTM commit — every touched signature word becomes a false
			// conflict with all concurrent hardware transactions.
			b := sig.HashBit(uint32(a))
			w := s.doms.Wlocks(d) + mem.Addr(b>>6)
			cur := ht.Read(w)
			if cur&(1<<(b&63)) == 0 {
				ht.Write(w, cur|1<<(b&63))
			}
		}
		ht.Write(a, v)
		t.opLog = append(t.opLog, opRec{kind: opWrite, addr: a, val: v})
		t.ds.Wrote |= 1 << uint(d)
		return

	case modeReplay:
		x.replayExpect(opWrite, a, v)
		return

	case modeSlow:
		s.m.Store(a, v)
		return
	}
	panic(fmt.Sprintf("core: Write outside a transaction (mode %d)", t.mode))
}

// WriteLocal implements tm.Tx: an uninstrumented store of thread-private
// data. Inside a hardware transaction the store is still buffered (and so
// costs write capacity); the software framework adds no locks, signatures,
// or undo records — the paper's manual barriers likewise skip accesses to
// non-shared objects.
func (x *tx) WriteLocal(a mem.Addr, v uint64) {
	s, t := x.s, x.t
	switch t.mode {
	case modeFast:
		t.ht.WriteLocal(a, v)
	case modeLive:
		s.maybeAutoPause(t, 2, 0, mem.LineOf(a), false, true)
		s.ensureSub(t).WriteLocal(a, v)
	case modeReplay:
		// The committed prefix already published these values; local
		// writes are not logged and need no replay.
	case modeSlow:
		s.m.Store(a, v)
	default:
		panic(fmt.Sprintf("core: WriteLocal outside a transaction (mode %d)", t.mode))
	}
}

// replayExpect consumes the next operation-log record, switching back to
// live execution when the committed prefix is exhausted. A divergence
// between the replayed body and the log means the body is not deterministic
// in its reads; the only safe recovery is a global abort.
func (x *tx) replayExpect(kind opKind, a mem.Addr, v uint64) uint64 {
	t := x.t
	// Partition points are soft: auto-activated breaking points from a
	// previous execution need not line up with this execution's, so pause
	// records are skipped transparently.
	for t.replayPos < len(t.opLog) && t.opLog[t.replayPos].kind == opPause {
		t.replayPos++
	}
	if kind == opPause {
		if t.replayPos >= len(t.opLog) {
			t.mode = modeLive
		}
		return 0
	}
	if t.replayPos >= len(t.opLog) {
		// Committed prefix fully replayed: go live and re-dispatch.
		t.mode = modeLive
		t.resetSegmentBudget()
		switch kind {
		case opRead:
			return x.Read(a)
		case opWrite:
			x.Write(a, v)
			return 0
		}
	}
	rec := t.opLog[t.replayPos]
	if rec.kind != kind || rec.addr != a || (kind == opWrite && rec.val != v) {
		panic(globalAbortPanic{})
	}
	t.replayPos++
	if t.replayPos == len(t.opLog) {
		// Next operation goes live.
		t.mode = modeLive
		t.resetSegmentBudget()
	}
	return rec.val
}

// DebugSegLearn toggles verbose logging of adaptive-partition learning
// events (development aid).
func DebugSegLearn(on bool) { debugSegLearn = on }
