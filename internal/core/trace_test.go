package core

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
	"repro/internal/trace"
)

func countKind(evs []trace.Event, k trace.Kind) int {
	n := 0
	for _, e := range evs {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestTraceProtocolEvents runs a partitioned transaction under tracing and
// checks Part-HTM's protocol events appear: sub-HTM begin/commit pairs,
// write-lock acquire/release, and the ring publication of the global
// commit.
func TestTraceProtocolEvents(t *testing.T) {
	s := newSystem(1, 1<<17, func(c *htm.Config) {
		c.WriteLines = 10
		c.WriteWays = 64
		c.WriteSets = 1
	}, nil)
	sink := trace.NewSink(512)
	s.SetTrace(sink)
	m := s.Memory()
	base := m.AllocLines(12)
	s.Atomic(0, func(x tm.Tx) {
		for l := 0; l < 12; l++ {
			x.Write(base+mem.Addr(l*mem.LineWords), uint64(l+1))
			if l%3 == 2 {
				x.Pause()
			}
		}
	})
	st := s.Stats().Snapshot()
	if st.CommitsSW != 1 {
		t.Fatalf("want a partitioned commit, got %+v", st)
	}

	evs := sink.Events()
	subBegin := countKind(evs, trace.EvSubBegin)
	subCommit := countKind(evs, trace.EvSubCommit)
	if subCommit < 4 {
		t.Fatalf("sub-HTM commits traced = %d, want >= 4 (one per segment): %v", subCommit, evs)
	}
	if subBegin < subCommit {
		t.Fatalf("sub begins (%d) < sub commits (%d)", subBegin, subCommit)
	}
	if countKind(evs, trace.EvLockAcq) != subCommit {
		t.Fatalf("lock acquisitions = %d, want one per writing sub commit (%d)",
			countKind(evs, trace.EvLockAcq), subCommit)
	}
	if countKind(evs, trace.EvRingPub) != 1 {
		t.Fatalf("ring publications = %d, want 1", countKind(evs, trace.EvRingPub))
	}
	if countKind(evs, trace.EvLockRel) != 1 {
		t.Fatalf("lock releases = %d, want 1", countKind(evs, trace.EvLockRel))
	}
	if countKind(evs, trace.EvCommit) != 1 || countKind(evs, trace.EvBegin) != 1 {
		t.Fatalf("begin/commit events: %v", evs)
	}
	lat := sink.Latency()
	if lat.Path[trace.PathSW].Count != 1 {
		t.Fatalf("SW commit latency count = %d, want 1", lat.Path[trace.PathSW].Count)
	}
}

// TestTraceFastPathRingPub: a writing fast-path commit records its ring
// publication after the window closes.
func TestTraceFastPathRingPub(t *testing.T) {
	s := newSystem(1, 1<<17, nil, nil)
	sink := trace.NewSink(64)
	s.SetTrace(sink)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Write(a, 1) })
	evs := sink.Events()
	if countKind(evs, trace.EvRingPub) != 1 {
		t.Fatalf("ring publications = %d, want 1: %v", countKind(evs, trace.EvRingPub), evs)
	}
	if evs[len(evs)-1].Kind != trace.EvCommit || evs[len(evs)-1].Path != trace.PathHTM {
		t.Fatalf("last event = %v, want HTM commit", evs[len(evs)-1])
	}
}
