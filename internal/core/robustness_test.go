package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// newFaultSystem builds a Part-HTM system over a deterministic engine with
// the given fault injector installed.
func newFaultSystem(threads int, fcfg *fault.Config, mutCfg func(*Config)) *System {
	ecfg := htm.DefaultConfig()
	ecfg.Quantum = 0
	ecfg.ReadEvictProb = 0
	cfg := DefaultConfig()
	if mutCfg != nil {
		mutCfg(&cfg)
	}
	eng := htm.New(mem.New(1<<17), ecfg)
	if fcfg != nil {
		eng.SetInjector(fault.New(*fcfg))
	}
	return New(eng, threads, cfg)
}

// seedPolicy reverts the contention manager to the seed's bare retry
// schedule: unbounded budget, no priority, unbounded lemming-wait, no
// degradation.
func seedPolicy(c *Config) {
	c.RetryBudget = 0
	c.StarveThreshold = 0
	c.LemmingWaitSpins = 0
	c.DegradeThreshold = 0
}

// TestStormRetryBudgetBoundsAborts runs transactions under a total
// hardware-abort storm (every hardware begin fails — a timer-interrupt
// burst that never ends) and checks two things: every transaction still
// commits, and the retry budget caps the hardware aborts burned per
// transaction. The seed's bare retry schedule commits too, but burns the
// full FastRetries*SubRetries*PartRetries schedule on every transaction —
// it cannot satisfy the per-transaction bound this test asserts.
func TestStormRetryBudgetBoundsAborts(t *testing.T) {
	const txns = 8
	storm := func() *fault.Config {
		return &fault.Config{Seed: 1, Threads: 1,
			Storms: []fault.Storm{{From: 1, To: fault.Forever, Reason: fault.Other}}}
	}
	run := func(s *System) (abortsPerTxn float64) {
		a := s.Memory().Alloc(1)
		for i := 0; i < txns; i++ {
			s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
		}
		if got := s.Memory().Load(a); got != txns {
			t.Fatalf("counter = %d, want %d (lost commits under storm)", got, txns)
		}
		return float64(s.Engine().Stats().Aborts()) / txns
	}

	const budget = 6
	cm := newFaultSystem(1, storm(), func(c *Config) {
		c.NoFastPath = true
		c.RetryBudget = budget
		c.MaxBackoff = 0
	})
	cmAborts := run(cm)
	st := cm.Stats().Snapshot()
	if st.EscalationsBudget != txns {
		t.Fatalf("EscalationsBudget = %d, want %d (every transaction must escalate)", st.EscalationsBudget, txns)
	}
	if st.CommitsGL != txns {
		t.Fatalf("CommitsGL = %d, want %d", st.CommitsGL, txns)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("FaultsInjected = 0 under a total storm")
	}

	seed := newFaultSystem(1, storm(), func(c *Config) {
		c.NoFastPath = true
		c.MaxBackoff = 0
		seedPolicy(c)
	})
	seedAborts := run(seed)

	// The bound the budget guarantees: at most RetryBudget aborts plus the
	// tail of the partitioned attempt that exhausted it.
	bound := float64(budget + cm.cfg.SubRetries + 1)
	if cmAborts > bound {
		t.Fatalf("budgeted policy burned %.1f aborts/txn, want <= %.1f", cmAborts, bound)
	}
	// The seed policy exceeds that bound by construction: this is the
	// assertion that fails on the seed retry loops.
	if seedAborts <= bound {
		t.Fatalf("seed policy burned only %.1f aborts/txn (<= %.1f): the budget adds nothing", seedAborts, bound)
	}
	ss := seed.Stats().Snapshot()
	if ss.Escalations() != 0 || ss.DegradedEnter != 0 {
		t.Fatalf("seed policy recorded contention-manager activity: %+v", ss)
	}
}

// TestMutualInvalidationNoLivelock scripts two partitioned transactions to
// invalidate each other's every sub-HTM commit (the injected explicit abort
// carries codeLockConflict, so each commit attempt becomes a global abort —
// the Alistarh-style mutual-kill pattern). Both must commit, with the
// eldest transaction winning the priority bid and escalating first.
func TestMutualInvalidationNoLivelock(t *testing.T) {
	var mu sync.Mutex
	var order []uint64
	SetEscalateHook(func(_ int, ticket uint64) {
		mu.Lock()
		order = append(order, ticket)
		mu.Unlock()
	})
	defer SetEscalateHook(nil)

	fcfg := &fault.Config{Seed: 1, Threads: 2, Scripts: map[int][]fault.ScriptEvent{
		0: {{Site: fault.SiteHTMCommit, Reason: fault.Explicit, Code: codeLockConflict, Count: 1000}},
		1: {{Site: fault.SiteHTMCommit, Reason: fault.Explicit, Code: codeLockConflict, Count: 1000}},
	}}
	s := newFaultSystem(2, fcfg, func(c *Config) {
		c.NoFastPath = true
		c.StarveThreshold = 2
		c.MaxBackoff = 10 * time.Microsecond
	})
	m := s.Memory()
	a, b := m.AllocLines(1), m.AllocLines(1)

	escalations := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(order)
	}

	done := make(chan int, 2)
	go func() {
		s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(b)+1) })
		done <- 0
	}()
	// The elder transaction (ticket 1) runs alone until it has bid for
	// priority and escalated; only then is the younger one released, so the
	// escalation order is deterministic.
	deadline := time.After(30 * time.Second)
	for escalations() == 0 {
		select {
		case <-deadline:
			t.Fatal("elder transaction never escalated (livelock?)")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	go func() {
		s.Atomic(1, func(x tm.Tx) { x.Write(b, x.Read(a)+1) })
		done <- 1
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("a mutually-invalidating transaction never committed")
		}
	}

	st := s.Stats().Snapshot()
	if st.Commits() != 2 {
		t.Fatalf("commits = %d, want 2", st.Commits())
	}
	if st.EscalationsStarve < 2 {
		t.Fatalf("EscalationsStarve = %d, want both transactions to escalate", st.EscalationsStarve)
	}
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 {
		t.Fatalf("escalation order %v: the eldest (ticket 1) must escalate first", order)
	}
	if s.PriorityTicket() != 0 {
		t.Fatalf("priority ticket %d still held after both commits", s.PriorityTicket())
	}
}

// TestDegradedModeTripsAndRecovers drives the pressure counter directly
// (ring rollover and signature saturation feed it in production) and checks
// the mode trips at the threshold, serializes commits while active, and
// recovers automatically as commits drain the pressure.
func TestDegradedModeTripsAndRecovers(t *testing.T) {
	s := newFaultSystem(1, nil, nil)
	a := s.Memory().Alloc(1)
	body := func(x tm.Tx) { x.Write(a, x.Read(a)+1) }

	thr := s.cfg.DegradeThreshold
	s.bumpPressure(int64(thr))
	if !s.Degraded() {
		t.Fatal("not degraded at threshold pressure")
	}
	st := s.Stats()
	if got := st.Snapshot().DegradedEnter; got != 1 {
		t.Fatalf("DegradedEnter = %d", got)
	}
	for i := 0; i < thr; i++ {
		if !s.Degraded() {
			t.Fatalf("degraded mode exited after only %d of %d drain commits", i, thr)
		}
		s.Atomic(0, body)
	}
	if s.Degraded() {
		t.Fatalf("degraded mode did not recover (pressure %d)", s.Pressure())
	}
	snap := st.Snapshot()
	if snap.DegradedExit != 1 || snap.DegradedCommits != uint64(thr) || snap.CommitsGL != uint64(thr) {
		t.Fatalf("degradation accounting off: %+v", snap)
	}
	// Recovered: the next transaction is back on the fast path.
	s.Atomic(0, body)
	if got := st.Snapshot().CommitsHTM; got != 1 {
		t.Fatalf("CommitsHTM = %d after recovery", got)
	}
	if got := s.Memory().Load(a); got != uint64(thr)+1 {
		t.Fatalf("counter = %d", got)
	}
}

// TestCountersZeroWithoutInjector: the whole robustness layer is
// pay-for-use — an uninjected run must leave every new counter at zero.
func TestCountersZeroWithoutInjector(t *testing.T) {
	s := newFaultSystem(2, nil, nil)
	a := s.Memory().Alloc(1)
	var wg sync.WaitGroup
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Atomic(th, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
			}
		}(th)
	}
	wg.Wait()
	st := s.Stats().Snapshot()
	if st.FaultsInjected != 0 {
		t.Fatalf("FaultsInjected = %d without an injector", st.FaultsInjected)
	}
	if st.DegradedEnter != 0 || st.DegradedExit != 0 || st.DegradedCommits != 0 {
		t.Fatalf("degradation counters nonzero without pressure: %+v", st)
	}
	if got := s.Memory().Load(a); got != 400 {
		t.Fatalf("counter = %d", got)
	}
}
