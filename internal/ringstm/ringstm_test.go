package ringstm

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/tm"
)

func newSys(threads, ringSize int) *System {
	return New(mem.New(1<<17), threads, ringSize)
}

func TestReadYourWrites(t *testing.T) {
	s := newSys(1, 64)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		x.Write(a, 3)
		if got := x.Read(a); got != 3 {
			t.Errorf("read-your-write = %d", got)
		}
	})
}

func TestWriterJoinsRing(t *testing.T) {
	s := newSys(1, 64)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Write(a, 1) })
	if ts := s.r.Timestamp(); ts != 1 {
		t.Fatalf("ring timestamp = %d, want 1", ts)
	}
	s.Atomic(0, func(x tm.Tx) { x.Read(a) })
	if ts := s.r.Timestamp(); ts != 1 {
		t.Fatalf("read-only transaction joined the ring: ts = %d", ts)
	}
}

func TestSmallRingStillCorrect(t *testing.T) {
	// With a tiny ring, rollover forces extra aborts but must never lose
	// updates.
	s := newSys(4, 4)
	a := s.Memory().Alloc(1)
	var wg sync.WaitGroup
	const per = 200
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Atomic(id, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
			}
		}(w)
	}
	wg.Wait()
	if got := s.Memory().Load(a); got != 4*per {
		t.Fatalf("counter = %d, want %d", got, 4*per)
	}
}

func TestSnapshotConsistencyAcrossLines(t *testing.T) {
	s := newSys(4, 1024)
	m := s.Memory()
	x0 := m.AllocLines(1)
	y0 := m.AllocLines(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Atomic(0, func(x tm.Tx) {
				x.Write(x0, i)
				x.Write(y0, i)
			})
		}
	}()
	for i := 0; i < 300; i++ {
		var vx, vy uint64
		s.Atomic(1, func(x tm.Tx) {
			vx = x.Read(x0)
			vy = x.Read(y0)
		})
		if vx != vy {
			t.Fatalf("snapshot torn: x=%d y=%d", vx, vy)
		}
	}
	close(stop)
	wg.Wait()
}
