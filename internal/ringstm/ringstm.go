// Package ringstm implements RingSTM (Spear, Michael, von Praun — SPAA
// 2008), the paper's second STM baseline and the origin of the global-ring
// validation scheme Part-HTM reuses.
//
// A transaction tracks its reads and writes in Bloom-filter signatures and
// buffers its writes. Commit joins the global ring: validate the read
// signature against every entry committed since the snapshot, claim the
// next timestamp with a CAS, publish the write signature, write back, and
// mark the entry complete. Readers that observe a newer timestamp validate
// their signature against the new suffix before trusting the value. As in
// the paper's evaluation, the ring has the same size and signature geometry
// as Part-HTM's.
//
// RingSTM here keeps the single global ring of the original paper: every
// address takes domain-0 semantics (the single-domain topology of
// internal/domain). Part-HTM (internal/core) is the system that shards the
// ring per memory domain; its N=1 configuration is this global-ring
// scheme.
package ringstm

import (
	"time"

	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/ring"
	"repro/internal/sig"
	"repro/internal/tm"
	"repro/internal/trace"
)

type retryPanic struct{}

// System is a RingSTM instance.
type System struct {
	m       *mem.Memory
	r       *ring.Ring
	threads []*thread
	stats   tm.Stats
	run     *exec.Runner
}

type thread struct {
	id        int
	ts        uint64
	readSig   sig.Signature
	writeSig  sig.Signature
	redo      map[mem.Addr]uint64
	redoOrder []mem.Addr
	sh        *tm.Shard
	xtxn      exec.Txn
	body      func(tm.Tx)
}

// New creates a RingSTM system on m with the given ring size (the paper
// uses the same ring configuration as Part-HTM).
func New(m *mem.Memory, maxThreads, ringSize int) *System {
	s := &System{
		m:       m,
		r:       ring.New(m, ringSize),
		threads: make([]*thread, maxThreads),
	}
	// A pure STM is an unbounded mid level to the exec kernel: no fast
	// level, no gates, no slow path to fall to.
	s.run = exec.New(exec.Policy{}, &s.stats, nil)
	for i := range s.threads {
		t := &thread{id: i, redo: make(map[mem.Addr]uint64, 16)}
		t.sh = s.stats.Shard(i)
		x := &tx{s: s, t: t}
		t.xtxn = exec.Txn{
			Mid:  func() bool { return s.attempt(t, x, t.body) },
			Slow: func() { panic("ringstm: unbounded software loop cannot fall through") },
		}
		s.threads[i] = t
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "RingSTM" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// SetTrace attaches a trace sink to the execution kernel (nil detaches).
// Attach before starting workers.
func (s *System) SetTrace(sink *trace.Sink) { s.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (s *System) SetGovernor(g *governor.Governor) { s.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches).
// RingSTM runs no hardware windows, so only the time-series plane is fed:
// the kernel registers as the sampler source. Attach before starting
// workers.
func (s *System) SetProfile(p *prof.Profile) { s.run.SetProfile(p) }

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (s *System) BumpPressure(n int64) { s.run.BumpPressure(n) }

// Degraded reports whether the system is currently in degraded serialized
// mode (observability and tests).
func (s *System) Degraded() bool { return s.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (s *System) Pressure() int64 { return s.run.Pressure() }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

func (t *thread) reset() {
	t.readSig.Clear()
	t.writeSig.Clear()
	for _, a := range t.redoOrder {
		delete(t.redo, a)
	}
	t.redoOrder = t.redoOrder[:0]
}

// begin snapshots the ring timestamp, waiting for that entry's write-back
// to complete so every committed value at or before the snapshot is
// visible.
func (s *System) begin(t *thread) {
	ts := s.r.Timestamp()
	s.r.WaitDone(ts)
	t.ts = ts
}

// advance validates the read signature against entries committed in
// (t.ts, now] and moves the snapshot forward.
func (s *System) advance(t *thread, now uint64) {
	if !s.r.Validate(&t.readSig, t.ts, now) {
		panic(retryPanic{})
	}
	s.r.WaitDone(now)
	t.ts = now
}

func (s *System) read(t *thread, a mem.Addr) uint64 {
	if v, ok := t.redo[a]; ok {
		return v
	}
	t.readSig.Add(uint32(a))
	v := s.m.Load(a)
	if now := s.r.Timestamp(); now != t.ts {
		// Something committed since the snapshot: the value just read is
		// only safe if no new entry wrote anything we have read.
		s.advance(t, now)
		v = s.m.Load(a)
	}
	return v
}

func (t *thread) write(a mem.Addr, v uint64) {
	t.writeSig.Add(uint32(a))
	if _, dup := t.redo[a]; !dup {
		t.redoOrder = append(t.redoOrder, a)
	}
	t.redo[a] = v
}

func (s *System) commit(t *thread) {
	if len(t.redoOrder) == 0 {
		return
	}
	tsAddr := s.r.TimestampAddr()
	for {
		now := s.m.Load(tsAddr)
		if now != t.ts {
			s.advance(t, now)
		}
		if s.m.CAS(tsAddr, now, now+1) {
			t.ts = now + 1
			break
		}
	}
	start := time.Now()
	s.r.PublishSW(t.ts, &t.writeSig)
	for _, a := range t.redoOrder {
		s.m.Store(a, t.redo[a])
	}
	s.r.SetDone(t.ts)
	t.sh.AddSerial(time.Since(start))
}

type tx struct {
	s *System
	t *thread
}

var _ tm.Tx = (*tx)(nil)

func (x *tx) Thread() int { return x.t.id }
func (x *tx) Pause()      {}
func (x *tx) Read(a mem.Addr) uint64 {
	tm.Spin(tm.SWReadBarrier) // modelled barrier cost (see tm package docs)
	return x.s.read(x.t, a)
}

func (x *tx) Write(a mem.Addr, v uint64) {
	tm.Spin(tm.SWWriteBarrier)
	x.t.write(a, v)
}

// WriteLocal stores thread-private data directly, outside the redo log and
// write signature.
func (x *tx) WriteLocal(a mem.Addr, v uint64) { x.s.m.Store(a, v) }
func (x *tx) Work(c int64)                    { tm.Spin(c) }
func (x *tx) NonTxWork(c int64)               { tm.Spin(c) }

// Atomic implements tm.System: the exec kernel retries the software
// attempt until it commits and records commit/abort outcomes.
func (s *System) Atomic(thread int, body func(tm.Tx)) {
	t := s.threads[thread]
	t.body = body
	s.run.Run(thread, &t.xtxn)
	t.body = nil
}

func (s *System) attempt(t *thread, x *tx, body func(tm.Tx)) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, isRetry := r.(retryPanic); isRetry {
			ok = false
			return
		}
		panic(r)
	}()
	t.reset()
	s.begin(t)
	body(x)
	s.commit(t)
	return true
}
