//go:build !race

package harness

// raceEnabled reports whether the race detector is active; the calibrated
// shape tests are skipped under it because its instrumentation reweights
// every cost the calibration depends on.
const raceEnabled = false
