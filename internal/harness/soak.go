// Soak experiment: liveness under a multi-phase chaos campaign. Where the
// chaos experiment sweeps steady-state fault rates, the soak drives every
// system through adversarial *regimes* — a total hardware-begin-failure
// storm, sustained degradation, recovery — with the resource governor and
// the progress watchdog attached, and reports per-phase throughput,
// commit-path splits, and the governor/watchdog counters. The liveness
// invariants themselves (every transaction commits, no stall past the
// watchdog deadline, post-storm throughput recovers) are asserted by
// soak_test.go; the experiment is the observable version of the same run.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bench/nrmw"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/tm"
	"repro/internal/trace"
)

// SoakCampaigns lists the chaos-campaign presets the soak experiment
// accepts (the -campaign flag).
func SoakCampaigns() []string { return []string{"storm", "ramp"} }

// SoakFaultConfig builds the fault campaign for a preset. Phases carry no
// Begins budget: the harness advances them manually at wall-clock
// boundaries. The phase-name list is returned alongside so callers can
// sequence without re-deriving it from the config.
func SoakFaultConfig(preset string, seed int64) (*fault.Config, []string, error) {
	cfg := &fault.Config{Seed: seed}
	stormPhase := fault.Phase{Name: "storm", Storms: []fault.Storm{
		{From: 1, To: fault.Forever, Reason: fault.Other},
	}}
	switch preset {
	case "", "storm":
		cfg.Campaign = []fault.Phase{{Name: "pre"}, stormPhase, {Name: "clear"}}
	case "ramp":
		// Storm, then sustained degradation (the chaos sweep's 0.3 regime),
		// then clear — the full storm → degrade → clear arc.
		degrade := fault.Phase{Name: "degrade"}
		degrade.Rates[fault.SiteHTMBegin] = fault.SiteRate{Prob: 0.3, Reason: fault.Other}
		degrade.Rates[fault.SiteHTMCommit] = fault.SiteRate{Prob: 0.05, Reason: fault.Conflict}
		cfg.Campaign = []fault.Phase{{Name: "pre"}, stormPhase, degrade, {Name: "clear"}}
	default:
		return nil, nil, fmt.Errorf("unknown soak campaign %q (have: storm, ramp)", preset)
	}
	names := make([]string, len(cfg.Campaign))
	for i, ph := range cfg.Campaign {
		names[i] = ph.Name
	}
	return cfg, names, nil
}

// soakWatchdogConfig samples fast enough that a stall inside one phase of a
// short run still crosses the alarm deadline.
func soakWatchdogConfig(phase time.Duration) governor.WatchdogConfig {
	cfg := governor.DefaultWatchdogConfig()
	if iv := phase / 50; iv < cfg.Interval {
		cfg.Interval = iv
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	return cfg
}

// runSoak drives every system through the campaign phases on the chaos
// workload, one Throughput window per phase, with a fresh governor attached
// and a watchdog sampling each phase. TM stats reset at phase boundaries so
// each report row covers exactly one phase (the engine's hardware taxonomy
// stays cumulative).
func runSoak(o Options) (*Result, error) {
	o = o.withDefaults([]int{4}, SystemNames)
	threads := o.Threads[0]
	fcfg, phases, err := SoakFaultConfig(o.Campaign, o.Seed)
	if err != nil {
		return nil, err
	}
	wcfg := soakWatchdogConfig(o.Duration)
	if o.Watchdog != nil {
		wcfg = *o.Watchdog
	}
	cfg := nrmw.Config{ArraySize: 65536, N: 64, M: 16, PartitionEvery: 16}
	out := &Result{Notes: []string{fmt.Sprintf(
		"# Soak: campaign %q, N-Reads M-Writes N=%d M=%d @%d threads, governor+watchdog attached (stall deadline %v)",
		phases, cfg.N, cfg.M, threads, wcfg.Deadline())}}
	for _, name := range o.Systems {
		gcfg := governor.DefaultConfig()
		if o.Governor != nil {
			gcfg = *o.Governor
		}
		gov := governor.New(gcfg)
		sys := Build(name, BuildOptions{
			DataWords: cfg.MemWords(), Threads: threads,
			PhysCores: o.PhysCores, Seed: o.Seed,
			Fault: fcfg, Trace: o.Trace, Profile: o.Profile,
		})
		sys.(interface{ SetGovernor(*governor.Governor) }).SetGovernor(gov)
		// Registered manually (Build was not given Obs) so the registry
		// sees the governor built here, not a Build-internal one.
		RegisterObs(o.Obs, name, sys, gov, o.Trace, o.Profile)
		var inj *fault.Injector
		if eng := EngineOf(sys); eng != nil {
			inj = eng.Injector()
		}
		b := nrmw.New(sys, threads, cfg)
		op := func(th int, rng *rand.Rand) { b.Op(th, rng) }
		for pi, phase := range phases {
			if pi > 0 {
				if inj != nil {
					inj.AdvancePhase()
				}
				sys.Stats().Reset()
			}
			if o.Trace != nil {
				o.Trace.Mark(fmt.Sprintf("soak %s phase=%s", name, phase))
			}
			o.Profile.Mark(fmt.Sprintf("soak %s phase=%s", name, phase))
			wd := soakWatchdog(wcfg, sys, gov, threads, o.Trace)
			if o.Flight != nil {
				wd.OnAlarm(o.Flight.NoteAlarm)
			}
			wd.Start()
			stopProgress := soakProgress(&o, sys, name, phase)
			res := Throughput(sys, op, threads, o.Duration, o.Seed)
			stopProgress()
			wd.Stop()
			snap := sys.Stats().Snapshot()
			o.progressf("soak %s phase=%s done: %.0f tx/s commits=%d alarms=%d",
				name, phase, res.OpsPerSec, snap.Commits(), snap.WatchdogAlarms)
			// The workers have joined and the watchdog has stopped: a
			// quiesce point, so an armed flight dump may read the trace
			// rings. A phase that ends still degraded is itself a trigger.
			if o.Flight != nil {
				if d, ok := sys.(interface{ Degraded() bool }); ok && d.Degraded() {
					o.Flight.ArmPhaseDegraded(name, phase)
				}
				if dump, err := o.Flight.Flush(fmt.Sprintf("%s-%s", name, phase)); err != nil {
					return nil, fmt.Errorf("soak: flight dump: %w", err)
				} else if dump != "" {
					o.progressf("soak %s phase=%s flight artifact %s", name, phase, dump)
				}
			}
			out.Reports = append(out.Reports, SystemReport{
				System:     name,
				Threads:    threads,
				Phase:      phase,
				Throughput: &res,
				Stats:      snap,
				Engine:     EngineSnapshotOf(sys),
				Latency:    captureLatency(o.Trace),
				Profile:    captureProfile(o.Profile),
			})
		}
	}
	return out, nil
}

// soakProgressEvery is the mid-phase progress cadence. Phases shorter
// than this emit only their completion line.
const soakProgressEvery = 10 * time.Second

// soakProgress starts a ticker emitting mid-phase progress lines (live
// counter snapshots are safe while workers run) and returns its stop
// func. No-op without a progress writer.
func soakProgress(o *Options, sys tm.System, name, phase string) func() {
	if o.Progress == nil {
		return func() {}
	}
	start := time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(soakProgressEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				snap := sys.Stats().Snapshot()
				o.progressf("soak %s phase=%s elapsed=%v commits=%d aborts=%d alarms=%d",
					name, phase, time.Since(start).Round(time.Second),
					snap.Commits(), snap.Aborts(), snap.WatchdogAlarms)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// soakWatchdog builds one phase's watchdog: governor gauge attached, trace
// sink shared with the workers (the watchdog writes its own slot), forced
// recovery enabled when the system exposes the degradation-pressure hook.
func soakWatchdog(cfg governor.WatchdogConfig, sys tm.System, gov *governor.Governor, threads int, sink *trace.Sink) *governor.Watchdog {
	d, canRecover := sys.(governor.Degrader)
	cfg.RecoverStall = canRecover
	wd := governor.NewWatchdog(cfg, sys.Stats(), threads)
	wd.AttachGovernor(gov)
	if canRecover {
		wd.SetDegrader(d)
	}
	if sink != nil {
		wd.SetTrace(sink)
	}
	return wd
}
