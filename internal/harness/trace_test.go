package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestBuildAttachesTrace: every buildable system accepts the sink via
// BuildOptions.Trace (the Sequential baseline has no runner and is allowed
// to ignore it).
func TestBuildAttachesTrace(t *testing.T) {
	for _, name := range AllSystemNames {
		sink := trace.NewSink(64)
		sys := Build(name, BuildOptions{DataWords: 1 << 12, Threads: 2, Trace: sink})
		if _, ok := sys.(interface{ SetTrace(*trace.Sink) }); !ok {
			t.Fatalf("%s does not implement SetTrace", name)
		}
	}
}

// TestChaosTraced runs a short traced chaos sweep end to end: every report
// row carries a latency table, the sink holds events from the run, and the
// per-row marks landed.
func TestChaosTraced(t *testing.T) {
	sink := trace.NewSink(1 << 12)
	res, err := runChaos(Options{
		Threads: []int{2}, Duration: 30 * time.Millisecond,
		Systems: []string{"Part-HTM"}, FaultRate: 0.1, Seed: 1, Trace: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 { // rates {0, 0.1}
		t.Fatalf("reports = %d, want 2", len(res.Reports))
	}
	for i, rep := range res.Reports {
		if rep.Latency == nil {
			t.Fatalf("report %d (rate %g) has no latency table", i, rep.FaultRate)
		}
		var commits uint64
		for _, row := range rep.Latency.Paths {
			commits += row.Count
		}
		if commits == 0 {
			t.Fatalf("report %d traced no commit latencies", i)
		}
	}
	if len(sink.Events()) == 0 {
		t.Fatal("sink recorded no events")
	}
	marks := sink.Marks()
	if len(marks) != 2 || !strings.Contains(marks[1].Label, "rate=0.1") {
		t.Fatalf("marks = %+v, want one per report row", marks)
	}
	// The rendered text carries the latency block.
	if !strings.Contains(res.Text(), "# latency (ns)") {
		t.Fatalf("traced chaos text has no latency block:\n%s", res.Text())
	}
}
