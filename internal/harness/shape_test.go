package harness

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench/eigen"
	"repro/internal/bench/list"
	"repro/internal/bench/nrmw"
	"repro/internal/tm"
)

// Shape regression tests: the paper's headline orderings, asserted with
// generous margins so scheduler noise cannot flip them. Each compares two
// systems on one workload at one thread count using the projected metric
// (the paper's machines are multicore).

// measure runs the op workload on the named system and returns the
// projected throughput.
func measure(t *testing.T, name string, words, threads int,
	bind func(sys tm.System) OpFunc) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("shape assertions are calibrated without race instrumentation")
	}
	sys := Build(name, BuildOptions{
		DataWords: words, Threads: threads, PhysCores: 4, Seed: 1,
	})
	op := bind(sys)
	return Throughput(sys, op, threads, 200*time.Millisecond, 1).Projected
}

// TestShapeFig3aHTMWinsSmallTransactions: with small hardware-friendly
// transactions, HTM-GL must clearly beat the heavyweight STM (RingSTM),
// and Part-HTM must stay within striking distance of HTM-GL.
func TestShapeFig3aHTMWinsSmallTransactions(t *testing.T) {
	cfg := nrmw.Fig3a()
	bind := func(sys tm.System) OpFunc {
		b := nrmw.New(sys, 2, cfg)
		return func(th int, rng *rand.Rand) { b.Op(th, rng) }
	}
	htmgl := measure(t, "HTM-GL", cfg.MemWords(), 2, bind)
	ringstm := measure(t, "RingSTM", cfg.MemWords(), 2, bind)
	parthtm := measure(t, "Part-HTM", cfg.MemWords(), 2, bind)
	if htmgl < 1.2*ringstm {
		t.Errorf("HTM-GL (%.0f) must clearly beat RingSTM (%.0f) on small transactions", htmgl, ringstm)
	}
	if parthtm < htmgl/3 {
		t.Errorf("Part-HTM (%.0f) fell too far behind HTM-GL (%.0f) on its worst case", parthtm, htmgl)
	}
}

// TestShapeFig4bPartHTMWinsBigLists: 10K-element list traversals exceed the
// hardware budget; Part-HTM must beat both the global-lock fallback and the
// STM.
func TestShapeFig4bPartHTMWinsBigLists(t *testing.T) {
	cfg := list.Fig4b()
	cfg.Capacity = cfg.Size + 200_000
	bind := func(sys tm.System) OpFunc {
		l := list.New(sys, cfg)
		return func(th int, rng *rand.Rand) { l.Op(th, rng) }
	}
	htmgl := measure(t, "HTM-GL", cfg.MemWords(), 4, bind)
	norec := measure(t, "NOrec", cfg.MemWords(), 4, bind)
	parthtm := measure(t, "Part-HTM", cfg.MemWords(), 4, bind)
	if parthtm < 1.2*htmgl {
		t.Errorf("Part-HTM (%.0f) must beat HTM-GL (%.0f) on resource-bound lists", parthtm, htmgl)
	}
	if parthtm < 1.2*norec {
		t.Errorf("Part-HTM (%.0f) must beat NOrec (%.0f) on resource-bound lists", parthtm, norec)
	}
}

// TestShapeFig3bPartHTMWinsBigReads: transactions reading far past the L1
// survive in hardware only while shared-cache pressure is low; beyond the
// physical cores (the paper's >8-thread regime, 12 threads here) they
// thrash under HTM-GL while Part-HTM's partitioned path keeps committing.
func TestShapeFig3bPartHTMWinsBigReads(t *testing.T) {
	cfg := nrmw.Fig3b()
	const threads = 12
	bind := func(sys tm.System) OpFunc {
		b := nrmw.New(sys, threads, cfg)
		return func(th int, rng *rand.Rand) { b.Op(th, rng) }
	}
	htmgl := measure(t, "HTM-GL", cfg.MemWords(), threads, bind)
	parthtm := measure(t, "Part-HTM", cfg.MemWords(), threads, bind)
	if parthtm < 1.5*htmgl {
		t.Errorf("Part-HTM (%.2f) must clearly beat HTM-GL (%.2f) on huge read sets under pressure", parthtm, htmgl)
	}
}

// TestShapeFig6aLongTransactionsEscapeTheLock: with 50% long transactions,
// the global-lock fallback must be far behind every system that can run
// them concurrently.
func TestShapeFig6aLongTransactionsEscapeTheLock(t *testing.T) {
	cfg := eigen.Fig6a()
	bind := func(sys tm.System) OpFunc {
		b := eigen.New(sys, 4, cfg)
		return func(th int, rng *rand.Rand) { b.Op(th, rng) }
	}
	htmgl := measure(t, "HTM-GL", cfg.MemWords(), 4, bind)
	parthtm := measure(t, "Part-HTM", cfg.MemWords(), 4, bind)
	if parthtm < 2*htmgl {
		t.Errorf("Part-HTM (%.0f) must dominate HTM-GL (%.0f) on long-transaction mixes", parthtm, htmgl)
	}
}
