// Experiment registry: one entry per table and figure of the paper's
// evaluation (§7), plus the ablations called out in DESIGN.md.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/bench/eigen"
	"repro/internal/bench/list"
	"repro/internal/bench/nrmw"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stamp"
	"repro/internal/stamp/genome"
	"repro/internal/stamp/intruder"
	"repro/internal/stamp/kmeans"
	"repro/internal/stamp/labyrinth"
	"repro/internal/stamp/ssca2"
	"repro/internal/stamp/vacation"
	"repro/internal/stamp/yada"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Threads is the x-axis sweep; nil uses the experiment's default.
	Threads []int
	// Duration is the measured window per throughput data point.
	Duration time.Duration
	// Systems restricts the compared systems; nil uses the experiment's
	// default set.
	Systems []string
	// PhysCores models the host CPU for the hyper-threading capacity model
	// (the paper's i7 has 4 physical cores).
	PhysCores int
	// Seed makes probabilistic hardware behaviour reproducible.
	Seed int64
	// FaultRate, when positive, replaces the chaos experiment's default
	// fault-rate sweep with {0, FaultRate} (the -fault flag).
	FaultRate float64
	// Trace, when non-nil, is attached to every system the experiment
	// builds: reports gain per-path/per-cause latency tables and the sink
	// accumulates the event stream for -trace export.
	Trace *trace.Sink
	// Governor, when non-nil, attaches a resource governor built from this
	// config to every system the experiment builds (the -governor flag).
	Governor *governor.Config
	// Campaign selects the soak experiment's chaos-campaign preset; empty
	// uses the default ("storm").
	Campaign string
	// Profile, when non-nil, is attached to every system the experiment
	// builds: report rows gain hot-line and footprint tables, and the
	// profile accumulates the time series for -prof export.
	Profile *prof.Profile
	// ProfCheck makes profiled experiments assert their acceptance
	// invariants — the heatmap experiment fails unless the planted hot
	// lines rank in the sketch top-K and the packed layout shows the
	// conflict-abort excess (the -prof-check flag).
	ProfCheck bool
	// Domains replaces the domains experiment's default domain-count sweep
	// (the -domains flag); nil keeps {1, 2, 4, 8}.
	Domains []int
	// Cross replaces the domains experiment's default cross-domain-ratio
	// sweep (the -cross flag); nil keeps {0, 0.2}.
	Cross []float64
	// Obs, when non-nil, is threaded into every Build the experiment
	// performs, so each constructed system registers its telemetry sources
	// with the live registry (the -serve / -watch plumbing).
	Obs *obs.Registry
	// Flight, when non-nil, is the black-box flight recorder: soak
	// campaigns wire watchdog alarms into it, arm it when a phase ends
	// degraded, and flush any armed dump at phase boundaries (the workers
	// are quiesced there, so the trace rings are safe to read).
	Flight *obs.FlightRecorder
	// Watchdog overrides the soak campaigns' progress-watchdog
	// configuration (the -wd-interval / -wd-stall flags; CI uses a
	// hair-trigger setting to force an alarm deterministically).
	Watchdog *governor.WatchdogConfig
	// Progress, when non-nil, receives periodic plain-text progress lines
	// (phase, elapsed, commits, alarms) from long-running experiments, so
	// a hung nightly job is diagnosable from its CI log alone.
	Progress io.Writer
}

// withDefaults fills unset options.
func (o Options) withDefaults(threads []int, systems []string) Options {
	if o.Threads == nil {
		o.Threads = threads
	}
	if o.Duration == 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.Systems == nil {
		o.Systems = systems
	}
	if o.PhysCores == 0 {
		o.PhysCores = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// progressf emits one progress line when the experiment was given a
// progress writer (no-op otherwise). One line per completed unit of work
// — a sweep row, a campaign phase — keeps long CI logs diagnosable
// without flooding them.
func (o *Options) progressf(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	fmt.Fprintf(o.Progress, "progress: "+format+"\n", args...)
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (*Result, error)
}

// Execute runs the experiment and stamps the result with the experiment's
// identity, so renderers and JSON consumers can tell results apart.
func (e Experiment) Execute(o Options) (*Result, error) {
	res, err := e.Run(o)
	if res != nil {
		res.ID, res.Title = e.ID, e.Title
	}
	return res, err
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: abort breakdown and commit paths, Labyrinth @4 threads", runTable1},
		{"fig3a", "Figure 3(a): N-Reads M-Writes, N=M=10", microExp(func() microBench { return nrmwBench(nrmw.Fig3a()) }, "M tx/sec", 1e6, nil)},
		{"fig3b", "Figure 3(b): N-Reads M-Writes, N=100k M=100", microExp(func() microBench { return nrmwBench(nrmw.Fig3b()) }, "K tx/sec", 1e3, fig3bOpts)},
		{"fig3c", "Figure 3(c): 100x(read,FP work,write), 25 iters/sub-tx", microExp(func() microBench { return nrmwBench(nrmw.Fig3c()) }, "K tx/sec", 1e3, nil)},
		{"fig4a", "Figure 4(a): linked list, 1K elements, 50% writes", microExp(func() microBench { return listBench(list.Fig4a()) }, "M tx/sec", 1e6, nil)},
		{"fig4b", "Figure 4(b): linked list, 10K elements, 50% writes", microExp(func() microBench { return listBench(list.Fig4b()) }, "K tx/sec", 1e3, nil)},
		{"fig5a", "Figure 5(a): STAMP kmeans, low contention", stampExp(func() stamp.App { return kmeans.New(kmeans.LowContention()) })},
		{"fig5b", "Figure 5(b): STAMP kmeans, high contention", stampExp(func() stamp.App { return kmeans.New(kmeans.HighContention()) })},
		{"fig5c", "Figure 5(c): STAMP ssca2", stampExp(func() stamp.App { return ssca2.New(ssca2.Default()) })},
		{"fig5d", "Figure 5(d): STAMP labyrinth", stampExp(func() stamp.App { return labyrinth.New(labyrinth.Default()) })},
		{"fig5e", "Figure 5(e): STAMP intruder", stampExp(func() stamp.App { return intruder.New(intruder.Default()) })},
		{"fig5f", "Figure 5(f): STAMP vacation, low contention", stampExp(func() stamp.App { return vacation.New(vacation.LowContention()) })},
		{"fig5g", "Figure 5(g): STAMP vacation, high contention", stampExp(func() stamp.App { return vacation.New(vacation.HighContention()) })},
		{"fig5h", "Figure 5(h): STAMP yada", stampExp(func() stamp.App { return yada.New(yada.Default()) })},
		{"fig5i", "Figure 5(i): STAMP genome", stampExp(func() stamp.App { return genome.New(genome.Default()) })},
		{"fig6a", "Figure 6(a): EigenBench, 50% long / 50% short transactions", microExp(func() microBench { return eigenBench(eigen.Fig6a()) }, "M tx/sec", 1e6, nil)},
		{"fig6b", "Figure 6(b): EigenBench, high contention", microExp(func() microBench { return eigenBench(eigen.Fig6b()) }, "K tx/sec", 1e3, nil)},
		{"chaos", "Chaos: fault-injection sweep — throughput, commit paths, escalations, degradation", runChaos},
		{"soak", "Soak: multi-phase chaos campaign under the resource governor and progress watchdog", runSoak},
		{"heatmap", "Heatmap: planted conflict hotspot under packed vs spread allocation (Dice et al. placement effect)", runHeatmap},
		{"domains", "Domains: sharded memory domains — throughput vs domain count and cross-domain ratio", runDomains},
		{"ablation-validation", "Ablation: in-flight validation every sub-tx vs end-only", runAblationValidation},
		{"ablation-lockgrain", "Ablation: write-lock publication per write vs per sub-commit", runAblationLockGrain},
		{"ablation-ringsize", "Ablation: global ring size", runAblationRingSize},
		{"ablation-redo", "Ablation: eager undo (Part-HTM) vs lazy redo (SpHT-style last sub-tx)", runAblationRedo},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Micro-benchmark experiments (Figures 3, 4, 6)

// microBench abstracts a throughput workload: how much memory it needs and
// an OpFunc bound to a concrete system.
type microBench struct {
	words int
	bind  func(sys tm.System, threads int) OpFunc
}

func nrmwBench(cfg nrmw.Config) microBench {
	return microBench{
		words: cfg.MemWords(),
		bind: func(sys tm.System, threads int) OpFunc {
			b := nrmw.New(sys, threads, cfg)
			return func(th int, rng *rand.Rand) { b.Op(th, rng) }
		},
	}
}

func listBench(cfg list.Config) microBench {
	// Size the node pool for the longest plausible measurement window.
	cfg.Capacity = cfg.Size + 1_500_000
	return microBench{
		words: cfg.MemWords(),
		bind: func(sys tm.System, threads int) OpFunc {
			l := list.New(sys, cfg)
			return func(th int, rng *rand.Rand) { l.Op(th, rng) }
		},
	}
}

func eigenBench(cfg eigen.Config) microBench {
	return microBench{
		words: cfg.MemWords(),
		bind: func(sys tm.System, threads int) OpFunc {
			b := eigen.New(sys, threads, cfg)
			return func(th int, rng *rand.Rand) { b.Op(th, rng) }
		},
	}
}

var defaultThreads = []int{1, 2, 4, 8}

func fig3bOpts(o *Options) {
	if len(o.Threads) == len(defaultThreads) {
		// Figure 3(b) sweeps to 18 threads on the Xeon.
		o.Threads = []int{1, 2, 4, 8, 12, 18}
	}
	o.Systems = append(append([]string{}, o.Systems...), "Part-HTM-no-fast")
}

// microExp builds a throughput-vs-threads experiment. The headline table is
// the throughput projected onto N cores (the paper's machines are
// multicore); the raw single-host measurement follows for transparency.
func microExp(mk func() microBench, metric string, scale float64, mut func(*Options)) func(Options) (*Result, error) {
	return func(o Options) (*Result, error) {
		o = o.withDefaults(defaultThreads, SystemNames)
		if mut != nil {
			mut(&o)
		}
		proj := Table{Title: "projected on N cores", Metric: metric, Threads: o.Threads}
		raw := Table{Title: "raw on this host", Metric: metric, Threads: o.Threads}
		for _, name := range o.Systems {
			var pv, rv []float64
			for _, th := range o.Threads {
				b := mk()
				sys := Build(name, BuildOptions{
					DataWords: b.words, Threads: th,
					PhysCores: o.PhysCores, Seed: o.Seed,
					Governor: o.Governor, Obs: o.Obs,
				})
				op := b.bind(sys, th)
				res := Throughput(sys, op, th, o.Duration, o.Seed)
				pv = append(pv, res.Projected/scale)
				rv = append(rv, res.OpsPerSec/scale)
				o.progressf("%s @%d threads: %.0f tx/s", name, th, res.OpsPerSec)
			}
			proj.Series = append(proj.Series, Series{System: name, Values: pv})
			raw.Series = append(raw.Series, Series{System: name, Values: rv})
		}
		proj.SortSeries()
		raw.SortSeries()
		return &Result{Tables: []Table{proj, raw}}, nil
	}
}

// ---------------------------------------------------------------------------
// STAMP experiments (Figure 5): speed-up over sequential execution

func stampExp(mk func() stamp.App) func(Options) (*Result, error) {
	return func(o Options) (*Result, error) {
		o = o.withDefaults(defaultThreads, SystemNames)
		proj := Table{Title: "projected on N cores", Metric: "speedup vs sequential", Threads: o.Threads}
		raw := Table{Title: "raw on this host", Metric: "speedup vs sequential", Threads: o.Threads}
		for _, name := range o.Systems {
			var pv, rv []float64
			for _, th := range o.Threads {
				res := Speedup(mk, name, th, BuildOptions{
					PhysCores: o.PhysCores, Seed: o.Seed,
				})
				pv = append(pv, res.Projected)
				rv = append(rv, res.Raw)
			}
			proj.Series = append(proj.Series, Series{System: name, Values: pv})
			raw.Series = append(raw.Series, Series{System: name, Values: rv})
		}
		proj.SortSeries()
		raw.SortSeries()
		return &Result{Tables: []Table{proj, raw}}, nil
	}
}

// ---------------------------------------------------------------------------
// Table 1

func runTable1(o Options) (*Result, error) {
	o = o.withDefaults([]int{4}, []string{"HTM-GL", "Part-HTM"})
	threads := o.Threads[0]
	res := &Result{Notes: []string{fmt.Sprintf(
		"# Table 1: Labyrinth @%d threads — %% of HTM aborts and %% of committed transactions", threads)}}
	for _, name := range o.Systems {
		app := labyrinth.New(labyrinth.Default())
		if o.Trace != nil {
			o.Trace.Mark(fmt.Sprintf("table1 %s @%d", name, threads))
		}
		o.Profile.Mark(fmt.Sprintf("table1 %s @%d", name, threads))
		sys := Build(name, BuildOptions{
			DataWords: app.MemWords(), Threads: threads,
			PhysCores: o.PhysCores, Seed: o.Seed, Trace: o.Trace,
			Governor: o.Governor, Profile: o.Profile, Obs: o.Obs,
		})
		app.Setup(sys)
		app.Run(threads)
		if err := app.Validate(); err != nil {
			return nil, fmt.Errorf("table1: %s: %w", name, err)
		}
		res.Reports = append(res.Reports, SystemReport{
			System:  name,
			Threads: threads,
			Stats:   sys.Stats().Snapshot(),
			Engine:  EngineSnapshotOf(sys),
			Latency: captureLatency(o.Trace),
			Profile: captureProfile(o.Profile),
		})
	}
	return res, nil
}

// captureLatency drains the sink's latency histograms into a report (and
// resets them, so the next report row starts clean). Nil-safe: untraced
// runs get a nil report.
func captureLatency(s *trace.Sink) *LatencyReport {
	if s == nil {
		return nil
	}
	rep := LatencyReportOf(s.Latency())
	s.ResetLatency()
	return rep
}

// captureProfile drains the profile's shard state (sketches, heat,
// footprints) into a report and resets it, so the next report row starts
// clean; the time-series ring is left intact — it spans the whole session.
// Nil-safe: unprofiled runs get a nil report.
func captureProfile(p *prof.Profile) *ProfileReport {
	if p == nil {
		return nil
	}
	rep := ProfileReportOf(p)
	p.Reset()
	return rep
}

// ---------------------------------------------------------------------------
// Chaos experiment: behaviour under injected hardware faults

// chaosSystems are the engine-backed systems the chaos sweep compares
// (pure-software systems have no hardware to fail).
var chaosSystems = []string{"HTM-GL", "NOrecRH", "Part-HTM", "Part-HTM-O"}

// chaosFaultConfig maps one scalar fault rate onto the injector: hardware
// begins fail with an unexplained (Other) abort at the given rate, hardware
// commits are killed by a conflict at a quarter of it — NOrecRH's reduced
// commit retries conflicts, so the commit rate must stay well below 1 —
// ring publications fail at the full rate, lock-signature reads at a
// quarter, and the timer quantum jitters by ±20%. Nil when the rate is
// zero: the zero row of the sweep runs with no injector installed at all.
func chaosFaultConfig(rate float64, seed int64) *fault.Config {
	if rate <= 0 {
		return nil
	}
	cfg := &fault.Config{Seed: seed, QuantumJitter: 0.2}
	cfg.Rates[fault.SiteHTMBegin] = fault.SiteRate{Prob: rate, Reason: fault.Other}
	cfg.Rates[fault.SiteHTMCommit] = fault.SiteRate{Prob: rate / 4, Reason: fault.Conflict}
	cfg.Rates[fault.SiteRingPub] = fault.SiteRate{Prob: rate, Reason: fault.Conflict}
	cfg.Rates[fault.SiteLockSigRead] = fault.SiteRate{Prob: rate / 4, Reason: fault.Conflict}
	return cfg
}

// runChaos sweeps fault rates over a partitioned N-Reads M-Writes workload
// and reports, per system and rate, the throughput, the commit-path split,
// and the robustness counters: injected faults absorbed, contention-manager
// escalations, and degraded-mode entries/exits/commits.
func runChaos(o Options) (*Result, error) {
	o = o.withDefaults([]int{4}, chaosSystems)
	threads := o.Threads[0]
	rates := []float64{0, 0.02, 0.1, 0.3, 1.0}
	if o.FaultRate > 0 {
		rates = []float64{0, o.FaultRate}
	}
	cfg := nrmw.Config{ArraySize: 65536, N: 64, M: 16, PartitionEvery: 16}
	out := &Result{Notes: []string{fmt.Sprintf(
		"# Chaos: injected hardware faults, N-Reads M-Writes N=%d M=%d @%d threads",
		cfg.N, cfg.M, threads)}}
	for _, name := range o.Systems {
		for _, rate := range rates {
			if o.Trace != nil {
				o.Trace.Mark(fmt.Sprintf("chaos %s rate=%g", name, rate))
			}
			o.Profile.Mark(fmt.Sprintf("chaos %s rate=%g", name, rate))
			sys := Build(name, BuildOptions{
				DataWords: cfg.MemWords(), Threads: threads,
				PhysCores: o.PhysCores, Seed: o.Seed,
				Fault:    chaosFaultConfig(rate, o.Seed),
				Trace:    o.Trace,
				Governor: o.Governor, Obs: o.Obs,
				Profile: o.Profile,
			})
			b := nrmw.New(sys, threads, cfg)
			op := func(th int, rng *rand.Rand) { b.Op(th, rng) }
			res := Throughput(sys, op, threads, o.Duration, o.Seed)
			o.progressf("chaos %s rate=%g: %.0f tx/s", name, rate, res.OpsPerSec)
			out.Reports = append(out.Reports, SystemReport{
				System:     name,
				Threads:    threads,
				FaultRate:  rate,
				Throughput: &res,
				Stats:      sys.Stats().Snapshot(),
				Engine:     EngineSnapshotOf(sys),
				Latency:    captureLatency(o.Trace),
				Profile:    captureProfile(o.Profile),
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// ablationWorkload: medium transactions with partition points on a shared
// array — enough contention that validation policy and lock granularity
// matter.
func ablationWorkload(sys tm.System, threads int) OpFunc {
	cfg := eigen.Config{HotWords: 4096, Reads: 200, Writes: 20,
		Disjoint: false, PartitionEvery: 32}
	b := eigen.New(sys, threads, cfg)
	return func(th int, rng *rand.Rand) { b.Op(th, rng) }
}

type coreVariant struct {
	name string
	cfg  core.Config
}

func runCoreVariants(o Options, title string, variants []coreVariant) (*Result, error) {
	o = o.withDefaults([]int{1, 2, 4, 8}, nil)
	tbl := Table{Title: title, Metric: "M tx/sec", Threads: o.Threads}
	for _, v := range variants {
		name, cfg := v.name, v.cfg
		var vals []float64
		for _, th := range o.Threads {
			sys := Build("Part-HTM", BuildOptions{
				DataWords: 8192 + metaWords, Threads: th,
				PhysCores: o.PhysCores, Seed: o.Seed, Core: &cfg,
			})
			op := ablationWorkload(sys, th)
			vals = append(vals, Throughput(sys, op, th, o.Duration, o.Seed).Projected/1e6)
		}
		tbl.Series = append(tbl.Series, Series{System: name, Values: vals})
	}
	return &Result{Tables: []Table{tbl}}, nil
}

func runAblationValidation(o Options) (*Result, error) {
	every := core.DefaultConfig()
	every.NoFastPath = true // isolate the partitioned path
	endOnly := every
	endOnly.ValidateEverySub = false
	return runCoreVariants(o, "Ablation: in-flight validation frequency (partitioned path)",
		[]coreVariant{
			{"validate-every-sub", every},
			{"validate-end-only", endOnly},
		})
}

func runAblationLockGrain(o Options) (*Result, error) {
	atCommit := core.DefaultConfig()
	atCommit.NoFastPath = true
	perWrite := atCommit
	perWrite.LockPerWrite = true
	return runCoreVariants(o, "Ablation: write-lock publication granularity (partitioned path)",
		[]coreVariant{
			{"lock-at-sub-commit", atCommit},
			{"lock-per-write", perWrite},
		})
}

func runAblationRingSize(o Options) (*Result, error) {
	small := core.DefaultConfig()
	small.NoFastPath = true
	small.RingSize = 16
	large := small
	large.RingSize = 1024
	return runCoreVariants(o, "Ablation: global ring size (rollover aborts)",
		[]coreVariant{
			{"ring-16", small},
			{"ring-1024", large},
		})
}

// runAblationRedo contrasts Part-HTM's eager sub-transactions against an
// SpHT-style lazy scheme, where every sub-transaction re-applies the redo
// log of its predecessors: the last sub-transaction's write set is as big
// as the whole transaction, so partitioning cannot relieve a capacity
// failure. We emulate the lazy scheme's footprint by running the same
// workload without partition points (the final footprint is what matters).
func runAblationRedo(o Options) (*Result, error) {
	o = o.withDefaults([]int{1, 2, 4}, nil)
	tbl := Table{
		Title:   "Ablation: eager partitioning vs SpHT-style redo (write-capacity-bound tx)",
		Metric:  "K tx/sec",
		Threads: o.Threads,
	}
	mk := func(partition bool) nrmw.Config {
		cfg := nrmw.Config{ArraySize: 65536, N: 8, M: 1400, PartitionEvery: 0}
		if partition {
			cfg.PartitionEvery = 128
		}
		return cfg
	}
	for _, variant := range []struct {
		name      string
		partition bool
	}{
		{"eager-partitioned", true},
		{"redo-last-subtx", false},
	} {
		var vals []float64
		for _, th := range o.Threads {
			cfg := mk(variant.partition)
			sys := Build("Part-HTM", BuildOptions{
				DataWords: cfg.MemWords(), Threads: th,
				PhysCores: o.PhysCores, Seed: o.Seed,
			})
			b := nrmw.New(sys, th, cfg)
			op := func(t int, rng *rand.Rand) { b.Op(t, rng) }
			vals = append(vals, Throughput(sys, op, th, o.Duration, o.Seed).Projected/1e3)
		}
		tbl.Series = append(tbl.Series, Series{System: variant.name, Values: vals})
	}
	return &Result{Tables: []Table{tbl}}, nil
}
