// Benchstat-style comparison of two ResultSet artifacts: per-system
// throughput and abort-rate deltas between an "old" and a "new" run of the
// same experiments, for `parthtm-bench -compare a.json b.json`.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// compareKey identifies one comparable report row across two runs.
type compareKey struct {
	ID        string
	System    string
	Threads   int
	FaultRate float64
	Phase     string
}

// CompareRow is one matched report pair: the metric values on both sides
// and the relative throughput delta.
type CompareRow struct {
	Key                compareKey
	OldKTxs, NewKTxs   float64 // projected throughput, K tx/s (0 when absent)
	OldAbort, NewAbort float64 // aborts / (commits + aborts), in [0, 1]
	HasThroughput      bool
}

// CompareResultSets matches the reports of two decoded ResultSets by
// (experiment, system, threads, fault rate) and renders the per-row
// throughput and abort-rate deltas. Rows present on only one side are
// listed as unmatched. An error is returned when the two sets share no
// comparable reports at all (e.g. table-only artifacts, or disjoint
// experiment sets).
func CompareResultSets(oldSet, newSet *ResultSet) (string, error) {
	oldRows := indexReports(oldSet)
	newRows := indexReports(newSet)
	if len(oldRows) == 0 && len(newRows) == 0 {
		return "", fmt.Errorf("neither input carries per-system reports (tables-only artifacts cannot be compared)")
	}

	var keys []compareKey
	for k := range oldRows {
		if _, ok := newRows[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "", fmt.Errorf("no comparable reports: old has %d report rows, new has %d, none match on (experiment, system, threads, fault rate)",
			len(oldRows), len(newRows))
	}
	sortKeys(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %3s %6s %-8s | %10s %10s %8s | %7s %7s %8s\n",
		"exp", "system", "thr", "rate", "phase", "old K tx/s", "new K tx/s", "delta", "old ab%", "new ab%", "delta")
	for _, k := range keys {
		o, n := oldRows[k], newRows[k]
		fmt.Fprintf(&b, "%-8s %-10s %3d %6.2f %-8s | ", k.ID, k.System, k.Threads, k.FaultRate, k.Phase)
		if o.HasThroughput && n.HasThroughput {
			fmt.Fprintf(&b, "%10.1f %10.1f %8s | ", o.OldKTxs, n.NewKTxs, pctDelta(o.OldKTxs, n.NewKTxs))
		} else {
			fmt.Fprintf(&b, "%10s %10s %8s | ", "-", "-", "-")
		}
		fmt.Fprintf(&b, "%6.2f%% %6.2f%% %+7.2fpp\n",
			100*o.OldAbort, 100*n.NewAbort, 100*(n.NewAbort-o.OldAbort))
	}
	writeUnmatched(&b, "old", oldRows, newRows)
	writeUnmatched(&b, "new", newRows, oldRows)
	return b.String(), nil
}

// pctDelta renders the relative change new/old - 1.
func pctDelta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new/old-1))
}

func writeUnmatched(b *strings.Builder, side string, rows, other map[compareKey]CompareRow) {
	var miss []compareKey
	for k := range rows {
		if _, ok := other[k]; !ok {
			miss = append(miss, k)
		}
	}
	if len(miss) == 0 {
		return
	}
	sortKeys(miss)
	fmt.Fprintf(b, "# only in %s:", side)
	for _, k := range miss {
		fmt.Fprintf(b, " %s/%s@%d/%.2f", k.ID, k.System, k.Threads, k.FaultRate)
		if k.Phase != "" {
			fmt.Fprintf(b, "/%s", k.Phase)
		}
	}
	b.WriteByte('\n')
}

// sortKeys orders compare keys for stable rendering.
func sortKeys(keys []compareKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.System != b.System {
			return a.System < b.System
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		if a.FaultRate != b.FaultRate {
			return a.FaultRate < b.FaultRate
		}
		return a.Phase < b.Phase
	})
}

// CheckRegression compares two ResultSets and returns the matched rows
// whose projected throughput dropped by more than maxDropPct percent from
// old to new (the CI regression gate for `-compare -compare-max-drop`).
// Rows without throughput on both sides are skipped. The error mirrors
// CompareResultSets: it is non-nil only when nothing is comparable.
func CheckRegression(oldSet, newSet *ResultSet, maxDropPct float64) ([]CompareRow, error) {
	oldRows := indexReports(oldSet)
	newRows := indexReports(newSet)
	var keys []compareKey
	for k := range oldRows {
		if _, ok := newRows[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("no comparable reports between the two sets")
	}
	sortKeys(keys)
	var bad []CompareRow
	for _, k := range keys {
		o, n := oldRows[k], newRows[k]
		if !o.HasThroughput || !n.HasThroughput || o.OldKTxs <= 0 {
			continue
		}
		drop := 100 * (1 - n.NewKTxs/o.OldKTxs)
		if drop > maxDropPct {
			bad = append(bad, CompareRow{Key: k,
				OldKTxs: o.OldKTxs, NewKTxs: n.NewKTxs,
				OldAbort: o.OldAbort, NewAbort: n.NewAbort,
				HasThroughput: true})
		}
	}
	return bad, nil
}

// indexReports flattens a ResultSet's reports into comparable rows. On both
// sides of a CompareRow the same fields are filled; the Old*/New* naming
// just reflects which map the row will be read from.
func indexReports(set *ResultSet) map[compareKey]CompareRow {
	rows := map[compareKey]CompareRow{}
	if set == nil {
		return rows
	}
	for _, res := range set.Results {
		if res == nil {
			continue
		}
		for i := range res.Reports {
			rep := &res.Reports[i]
			k := compareKey{ID: res.ID, System: rep.System,
				Threads: rep.Threads, FaultRate: rep.FaultRate, Phase: rep.Phase}
			row := CompareRow{Key: k}
			if rep.Throughput != nil {
				row.HasThroughput = true
				row.OldKTxs = rep.Throughput.Projected / 1e3
				row.NewKTxs = row.OldKTxs
			}
			commits := float64(rep.Stats.Commits())
			aborts := float64(rep.Stats.Aborts())
			if commits+aborts > 0 {
				r := aborts / (commits + aborts)
				row.OldAbort, row.NewAbort = r, r
			}
			rows[k] = row
		}
	}
	return rows
}
