// Heatmap experiment: the profiler's acceptance test and the simulator's
// rendition of the malloc-placement effect (Dice, Harris, Kogan, Lev:
// where the allocator puts unrelated objects decides which cache lines
// transactions fight over). Each thread transactionally increments a
// private counter; the only difference between the two runs is layout —
// "packed" co-locates every counter on one cache line, "spread" gives
// each its own line. The abort-attribution profiler must identify the
// packed line as the top conflict hot spot, and the engine's conflict-
// abort count must show the packed excess over spread.
package harness

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
)

// heatmapSystems are the engine-backed systems the heatmap profiles
// (pure-software systems never run hardware windows, so the conflict
// plane has nothing to attribute).
var heatmapSystems = []string{"HTM-GL", "Part-HTM"}

const (
	// heatmapOps is the fixed per-thread operation count: the run is
	// op-counted, not wall-clocked, so totals are deterministic.
	heatmapOps = 256
	// heatmapWork spins inside the transaction, crossing tm.Spin's yield
	// threshold so transactions interleave mid-window even on one core.
	heatmapWork = 10_000
)

// heatmapLayout is one allocation of the per-thread counters.
type heatmapLayout struct {
	name  string
	addrs []mem.Addr
}

// layoutCounters allocates one counter per thread. Packed shares a single
// cache line across all threads (wrapping onto the same words past
// LineWords threads — still the same line, which is all that matters);
// spread puts each counter on its own line.
func layoutCounters(m *mem.Memory, name string, threads int) heatmapLayout {
	l := heatmapLayout{name: name, addrs: make([]mem.Addr, threads)}
	if name == "packed" {
		base := m.AllocLines(1)
		for th := 0; th < threads; th++ {
			l.addrs[th] = base + mem.Addr(th%mem.LineWords)
		}
		return l
	}
	base := m.AllocLines(threads)
	for th := 0; th < threads; th++ {
		l.addrs[th] = base + mem.Addr(th*mem.LineWords)
	}
	return l
}

// lines returns the distinct cache lines the layout planted.
func (l *heatmapLayout) lines() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, a := range l.addrs {
		ln := uint32(mem.LineOf(a))
		if !seen[ln] {
			seen[ln] = true
			out = append(out, ln)
		}
	}
	return out
}

// runHeatmapLayout drives one (system, layout) cell: every thread runs
// heatmapOps read-work-increment transactions on its counter.
func runHeatmapLayout(sys tm.System, l heatmapLayout, threads int) {
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			addr := l.addrs[th]
			for i := 0; i < heatmapOps; i++ {
				sys.Atomic(th, func(x tm.Tx) {
					v := x.Read(addr)
					x.Work(heatmapWork)
					x.Write(addr, v+1)
				})
			}
		}(th)
	}
	wg.Wait()
}

// heatmapSum totals the counters (increments are transactional, so the
// sum must equal threads*heatmapOps regardless of word sharing).
func heatmapSum(m *mem.Memory, l heatmapLayout) uint64 {
	seen := map[mem.Addr]bool{}
	var sum uint64
	for _, a := range l.addrs {
		if !seen[a] {
			seen[a] = true
			sum += m.Load(a)
		}
	}
	return sum
}

// runHeatmap plants the hotspot under both layouts for each system and
// reports the profiles side by side. With Options.ProfCheck the run fails
// unless (a) the packed line ranks in the merged sketch's top-K for every
// system and (b) packed runs show strictly more conflict aborts than
// spread runs — the observable form of the placement effect.
func runHeatmap(o Options) (*Result, error) {
	o = o.withDefaults([]int{4}, heatmapSystems)
	threads := o.Threads[0]
	p := o.Profile
	if p == nil {
		// The experiment is about the profiler: always profile, even when
		// the CLI did not ask for the time-series export.
		p = prof.New(prof.Config{})
	}
	out := &Result{Notes: []string{fmt.Sprintf(
		"# Heatmap: %d threads x %d transactional increments; packed = all counters on one line, spread = one line each",
		threads, heatmapOps)}}
	var violations []string
	for _, name := range o.Systems {
		conflicts := map[string]uint64{}
		for _, layout := range []string{"packed", "spread"} {
			p.Mark(fmt.Sprintf("heatmap %s layout=%s", name, layout))
			sys := Build(name, BuildOptions{
				DataWords: (threads + 1) * mem.LineWords, Threads: threads,
				PhysCores: o.PhysCores, Seed: o.Seed,
				Governor: o.Governor, Trace: o.Trace, Profile: p, Obs: o.Obs,
			})
			l := layoutCounters(sys.Memory(), layout, threads)
			runHeatmapLayout(sys, l, threads)
			if got, want := heatmapSum(sys.Memory(), l), uint64(threads*heatmapOps); got != want {
				return nil, fmt.Errorf("heatmap: %s/%s: lost updates: counters sum to %d, want %d",
					name, layout, got, want)
			}
			eng := EngineSnapshotOf(sys)
			if eng == nil {
				return nil, fmt.Errorf("heatmap: %s has no hardware engine to profile (pick engine-backed systems)", name)
			}
			conflicts[layout] = eng.AbortsConflict
			rep := captureProfile(p)
			if layout == "packed" {
				if msg := checkPlantedLines(rep, l.lines()); msg != "" {
					violations = append(violations, fmt.Sprintf("%s: %s", name, msg))
				}
			}
			out.Reports = append(out.Reports, SystemReport{
				System:  name,
				Threads: threads,
				Phase:   layout,
				Stats:   sys.Stats().Snapshot(),
				Engine:  eng,
				Latency: captureLatency(o.Trace),
				Profile: rep,
			})
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"# %s: conflict aborts packed=%d spread=%d", name, conflicts["packed"], conflicts["spread"]))
		if conflicts["packed"] <= conflicts["spread"] {
			violations = append(violations, fmt.Sprintf(
				"%s: no placement effect: packed conflict aborts (%d) not above spread (%d)",
				name, conflicts["packed"], conflicts["spread"]))
		}
	}
	if len(violations) > 0 {
		out.Notes = append(out.Notes, "# PROFILE CHECK FAILED:")
		for _, v := range violations {
			out.Notes = append(out.Notes, "#   "+v)
		}
		if o.ProfCheck {
			return out, fmt.Errorf("heatmap: profile check failed: %s", violations[0])
		}
	}
	return out, nil
}

// checkPlantedLines verifies the profiler attributed the packed layout's
// conflicts to the planted line: it must appear in the merged top-K with
// the top count. Returns a violation description, or "" when satisfied.
func checkPlantedLines(rep *ProfileReport, planted []uint32) string {
	if rep == nil || len(rep.HotLines) == 0 {
		return "profiler recorded no conflicts under the packed layout"
	}
	want := map[uint32]bool{}
	for _, ln := range planted {
		want[ln] = true
	}
	if !want[rep.HotLines[0].Line] {
		return fmt.Sprintf("top hot line is %d (count %d), not the planted line %v",
			rep.HotLines[0].Line, rep.HotLines[0].Count, planted)
	}
	return ""
}
