package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/tm"
)

// TestSoakStormLiveness is the deterministic version of the soak
// experiment's acceptance invariant: under a 100%-hardware-begin-failure
// storm, every system — governed, watchdog attached — keeps committing
// through its software/lock fallback (no hardware commits, no stall longer
// than the watchdog deadline), and once the storm clears, throughput
// recovers to within 1.5× of the pre-storm run of the same fixed workload.
func TestSoakStormLiveness(t *testing.T) {
	const threads = 4
	const txnsPerThread = 800
	for _, name := range SystemNames {
		t.Run(name, func(t *testing.T) {
			fcfg, phases, err := SoakFaultConfig("storm", 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(phases) != 3 || phases[1] != "storm" {
				t.Fatalf("storm campaign phases = %v", phases)
			}
			ccfg := core.DefaultConfig()
			ccfg.RetryBudget = 4
			ccfg.MaxBackoff = 0
			sys := Build(name, BuildOptions{
				DataWords: 1 << 12, Threads: threads, PhysCores: 4, Seed: 1,
				Core:  &ccfg,
				Fault: fcfg,
			})
			gov := governor.New(governor.DefaultConfig())
			sys.(interface{ SetGovernor(*governor.Governor) }).SetGovernor(gov)
			inj := (*fault.Injector)(nil)
			if eng := EngineOf(sys); eng != nil {
				inj = eng.Injector()
			}

			a := sys.Memory().Alloc(1)
			total := 0
			runPhase := func() time.Duration {
				start := time.Now()
				var wg sync.WaitGroup
				for th := 0; th < threads; th++ {
					wg.Add(1)
					go func(th int) {
						defer wg.Done()
						for i := 0; i < txnsPerThread; i++ {
							sys.Atomic(th, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
						}
					}(th)
				}
				wg.Wait()
				total += threads * txnsPerThread
				return time.Since(start)
			}
			nextPhase := func() {
				if inj != nil {
					inj.AdvancePhase()
				}
				sys.Stats().Reset()
			}
			watch := func() (*governor.Watchdog, *collectorT) {
				wcfg := governor.DefaultWatchdogConfig()
				wcfg.Interval = time.Millisecond
				wd := governor.NewWatchdog(wcfg, sys.Stats(), threads)
				wd.AttachGovernor(gov)
				c := &collectorT{}
				wd.OnAlarm(c.add)
				wd.Start()
				return wd, c
			}

			// Pre-storm: one warm-up pass, then the timed reference pass.
			runPhase()
			sys.Stats().Reset()
			pre := runPhase()

			// Storm: every hardware begin fails for the whole phase.
			nextPhase()
			wd, alarms := watch()
			runPhase()
			wd.Stop()
			st := sys.Stats().Snapshot()
			if st.Commits() != threads*txnsPerThread {
				t.Fatalf("storm commits = %d, want %d (lost transactions)",
					st.Commits(), threads*txnsPerThread)
			}
			if inj != nil && st.CommitsHTM != 0 {
				t.Fatalf("CommitsHTM = %d under a total begin storm", st.CommitsHTM)
			}
			if n := alarms.stalls(); n != 0 {
				t.Fatalf("%d stall alarms during the storm: no worker may stall past the watchdog deadline", n)
			}
			if inj != nil && st.FaultsInjected == 0 {
				t.Fatal("storm phase injected nothing")
			}

			// Clear: the breaker must let hardware back in and throughput
			// must recover. One warm-up pass absorbs the probe ramp.
			nextPhase()
			runPhase()
			sys.Stats().Reset()
			post := runPhase()
			if inj != nil {
				clear := sys.Stats().Snapshot()
				if clear.CommitsHTM == 0 {
					t.Fatalf("no hardware commits after the storm cleared (breaker stuck open?): %+v", clear)
				}
			}
			if limit := 3 * pre / 2; post > limit {
				t.Fatalf("post-storm phase took %v, more than 1.5× the pre-storm %v", post, pre)
			}

			if got := sys.Memory().Load(a); got != uint64(total) {
				t.Fatalf("counter = %d, want %d", got, total)
			}
		})
	}
}

// collectorT gathers watchdog alarms thread-safely.
type collectorT struct {
	mu     sync.Mutex
	alarms []governor.Alarm
}

func (c *collectorT) add(a governor.Alarm) {
	c.mu.Lock()
	c.alarms = append(c.alarms, a)
	c.mu.Unlock()
}

func (c *collectorT) stalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, a := range c.alarms {
		if a.Kind == governor.AlarmStall {
			n++
		}
	}
	return n
}

// TestSoakExperimentRuns drives the registered soak experiment end to end
// on a short window and checks the report shape: one row per (system,
// phase), phases in campaign order, throughput present, and the storm rows
// of engine-backed systems free of hardware commits.
func TestSoakExperimentRuns(t *testing.T) {
	exp, ok := Find("soak")
	if !ok {
		t.Fatal("soak experiment not registered")
	}
	systems := []string{"HTM-GL", "Part-HTM"}
	res, err := exp.Execute(Options{
		Threads:  []int{2},
		Duration: 40 * time.Millisecond,
		Systems:  systems,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, phases, _ := SoakFaultConfig("storm", 1)
	if want := len(systems) * len(phases); len(res.Reports) != want {
		t.Fatalf("%d reports, want %d", len(res.Reports), want)
	}
	for i, rep := range res.Reports {
		wantPhase := phases[i%len(phases)]
		if rep.Phase != wantPhase {
			t.Fatalf("report %d phase %q, want %q", i, rep.Phase, wantPhase)
		}
		if rep.Throughput == nil || rep.Throughput.OpsPerSec <= 0 {
			t.Fatalf("report %d (%s/%s) has no throughput", i, rep.System, rep.Phase)
		}
		if rep.Stats.Commits() == 0 {
			t.Fatalf("report %d (%s/%s) committed nothing", i, rep.System, rep.Phase)
		}
		if rep.Phase == "storm" && rep.Stats.CommitsHTM != 0 {
			t.Fatalf("%s storm phase has %d hardware commits", rep.System, rep.Stats.CommitsHTM)
		}
	}
	if res.Text() == "" {
		t.Fatal("empty text rendering")
	}
	// The unknown-campaign error path.
	if _, err := exp.Execute(Options{Campaign: "nope", Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}

// TestCheckRegression pins the CI regression gate: drops beyond the
// threshold are flagged, everything else passes.
func TestCheckRegression(t *testing.T) {
	mk := func(ktxs float64) *ResultSet {
		return &ResultSet{Results: []*Result{{
			ID: "chaos",
			Reports: []SystemReport{{
				System: "Part-HTM", Threads: 4,
				Throughput: &ThroughputResult{Projected: ktxs * 1e3},
			}},
		}}}
	}
	bad, err := CheckRegression(mk(100), mk(85), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("15%% drop with 10%% gate: %d rows flagged, want 1", len(bad))
	}
	if bad[0].OldKTxs != 100 || bad[0].NewKTxs != 85 {
		t.Fatalf("flagged row carries %v/%v", bad[0].OldKTxs, bad[0].NewKTxs)
	}
	if bad, err = CheckRegression(mk(100), mk(95), 10); err != nil || len(bad) != 0 {
		t.Fatalf("5%% drop with 10%% gate flagged: %v %v", bad, err)
	}
	if bad, err = CheckRegression(mk(100), mk(130), 10); err != nil || len(bad) != 0 {
		t.Fatalf("improvement flagged: %v %v", bad, err)
	}
	if _, err = CheckRegression(mk(100), &ResultSet{}, 10); err == nil {
		t.Fatal("disjoint sets must error")
	}
}
