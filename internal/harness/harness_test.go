package harness

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/stamp"
	"repro/internal/stamp/ssca2"
	"repro/internal/tm"
)

func TestBuildAllSystems(t *testing.T) {
	for _, name := range append(append([]string{}, AllSystemNames...), "Sequential") {
		sys := Build(name, BuildOptions{DataWords: 1 << 12, Threads: 2, PhysCores: 4})
		if sys == nil {
			t.Fatalf("Build(%q) returned nil", name)
		}
		if name != "Sequential" && sys.Name() != name {
			t.Errorf("Build(%q).Name() = %q", name, sys.Name())
		}
		a := sys.Memory().Alloc(1)
		sys.Atomic(0, func(x tm.Tx) { x.Write(a, 5) })
		if got := sys.Memory().Load(a); got != 5 {
			t.Errorf("%s: write lost", name)
		}
	}
}

func TestBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build("NoSuchTM", BuildOptions{DataWords: 64, Threads: 1})
}

func TestEngineOf(t *testing.T) {
	for _, name := range []string{"Part-HTM", "HTM-GL", "NOrecRH"} {
		if EngineOf(Build(name, BuildOptions{DataWords: 64, Threads: 1})) == nil {
			t.Errorf("EngineOf(%s) = nil", name)
		}
	}
	for _, name := range []string{"NOrec", "RingSTM", "Sequential"} {
		if EngineOf(Build(name, BuildOptions{DataWords: 64, Threads: 1})) != nil {
			t.Errorf("EngineOf(%s) != nil", name)
		}
	}
}

func TestOversubscriptionScalesEngine(t *testing.T) {
	o := BuildOptions{DataWords: 64, Threads: 8, PhysCores: 4}
	if got := o.engineConfig().WriteLines; got != 256 {
		t.Fatalf("oversubscribed WriteLines = %d, want 256", got)
	}
	o.Threads = 4
	if got := o.engineConfig().WriteLines; got != 512 {
		t.Fatalf("non-oversubscribed WriteLines = %d, want 512", got)
	}
}

func TestThroughputCountsOps(t *testing.T) {
	sys := Build("Part-HTM", BuildOptions{DataWords: 1 << 12, Threads: 2})
	a := sys.Memory().Alloc(1)
	op := func(th int, rng *rand.Rand) {
		sys.Atomic(th, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	res := Throughput(sys, op, 2, 50*time.Millisecond, 1)
	if res.OpsPerSec <= 0 || res.Projected <= 0 {
		t.Fatalf("throughput = %+v", res)
	}
}

func TestProjectModel(t *testing.T) {
	// 1s measured with 0.25s serial, 4 threads on a 1-core host:
	// projected wall = 0.25 + 0.75/4 = 0.4375s.
	r := project(1000, time.Second, 250*time.Millisecond, 4, 1)
	if got, want := r.Projected, 1000/0.4375; got < want*0.999 || got > want*1.001 {
		t.Fatalf("Projected = %f, want %f", got, want)
	}
	if r.OpsPerSec != 1000 {
		t.Fatalf("OpsPerSec = %f", r.OpsPerSec)
	}
	// Fully serial work cannot speed up.
	r = project(1000, time.Second, time.Second, 8, 1)
	if r.Projected != 1000 {
		t.Fatalf("fully-serial Projected = %f, want 1000", r.Projected)
	}
	// On a host with enough cores the projection is the identity.
	r = project(1000, time.Second, 0, 4, 4)
	if r.Projected != 1000 {
		t.Fatalf("same-cores Projected = %f, want 1000", r.Projected)
	}
	// Serial time beyond the wall is clamped, not amplified.
	r = project(1000, time.Second, 2*time.Second, 4, 1)
	if r.Projected != 1000 {
		t.Fatalf("clamped Projected = %f", r.Projected)
	}
}

func TestSpeedupRunsAndValidates(t *testing.T) {
	mk := func() stamp.App {
		c := ssca2.Default()
		c.Nodes, c.Edges = 256, 1024
		return ssca2.New(c)
	}
	res := Speedup(mk, "Part-HTM", 2, BuildOptions{PhysCores: 4, Seed: 1})
	if res.Raw <= 0 || res.Projected <= 0 {
		t.Fatalf("speedup = %+v", res)
	}
}

func TestTableFormatAndBest(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Metric:  "ops",
		Threads: []int{1, 2},
		Series: []Series{
			{System: "A", Values: []float64{1, 5}},
			{System: "B", Values: []float64{2, 3}},
		},
	}
	out := tbl.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "threads") {
		t.Fatalf("format output missing headers:\n%s", out)
	}
	best := tbl.Best()
	if best[0] != "B" || best[1] != "A" {
		t.Fatalf("Best = %v", best)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table1",
		"fig3a", "fig3b", "fig3c",
		"fig4a", "fig4b",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h", "fig5i",
		"fig6a", "fig6b",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := Find("fig9z"); ok {
		t.Error("Find accepted an unknown id")
	}
	if len(Experiments()) < len(want)+4 {
		t.Errorf("registry has %d experiments; ablations missing?", len(Experiments()))
	}
}

func TestTable1Runs(t *testing.T) {
	e, _ := Find("table1")
	res, err := e.Execute(Options{Threads: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Text()
	for _, needle := range []string{"HTM-GL", "Part-HTM", "capacity"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("table1 output missing %q:\n%s", needle, out)
		}
	}
	if res.ID != "table1" || len(res.Reports) != 2 {
		t.Fatalf("result = %q with %d reports", res.ID, len(res.Reports))
	}
	for _, rep := range res.Reports {
		if rep.Engine == nil {
			t.Fatalf("%s: no engine taxonomy on an engine-backed system", rep.System)
		}
		if rep.Stats.Commits() == 0 {
			t.Fatalf("%s: no commits recorded", rep.System)
		}
	}
}

func TestMicroExperimentRuns(t *testing.T) {
	e, _ := Find("fig3a")
	res, err := e.Run(Options{
		Threads:  []int{1, 2},
		Duration: 30 * time.Millisecond,
		Systems:  []string{"HTM-GL", "Part-HTM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Text()
	if !strings.Contains(out, "Part-HTM") || !strings.Contains(out, "projected") {
		t.Fatalf("fig3a output unexpected:\n%s", out)
	}
}

func TestAblationExperimentsRun(t *testing.T) {
	for _, id := range []string{"ablation-validation", "ablation-lockgrain", "ablation-ringsize", "ablation-redo"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := e.Run(Options{Threads: []int{1, 2}, Duration: 25 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Text()) == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}
