package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/prof"
)

// sampleProfileReport builds a valid profile block touching every field.
func sampleProfileReport() *ProfileReport {
	return &ProfileReport{
		ConflictEvents: 10,
		HotLines: []prof.HotLine{
			{Line: 100, Count: 7, Err: 0},
			{Line: 17, Count: 3, Err: 1},
		},
		Heat: []prof.SetHeat{
			{Set: 4, Conflicts: 8},
			{Set: 1, Capacity: 2},
		},
		Footprints: []prof.FootprintStat{{
			Class: "fast", Outcome: "commit", Count: 5,
			ReadP50: 2, ReadP95: 4, ReadP99: 4, ReadMax: 8,
			WriteP50: 1, WriteP95: 2, WriteP99: 2, WriteMax: 2,
			OccP50: 1, OccP95: 2, OccP99: 2, OccMax: 2,
		}},
	}
}

// TestProfileReportJSONRoundTrip: a ResultSet carrying profile blocks must
// survive encode + strict decode exactly.
func TestProfileReportJSONRoundTrip(t *testing.T) {
	res := sampleResult()
	res.Reports[0].Profile = sampleProfileReport()
	in := ResultSet{Results: []*Result{res}}
	data, err := json.MarshalIndent(&in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResultSet(data)
	if err != nil {
		t.Fatalf("strict decode rejected a valid profile: %v", err)
	}
	if !reflect.DeepEqual(&in, out) {
		t.Fatalf("round trip changed the result:\nin:  %+v\nout: %+v",
			in.Results[0].Reports[0].Profile, out.Results[0].Reports[0].Profile)
	}
	for _, key := range []string{
		`"profile"`, `"conflict_events"`, `"hot_lines"`, `"heat"`, `"footprints"`,
		`"line"`, `"count"`, `"err"`, `"set"`, `"conflicts"`, `"capacity"`,
		`"class"`, `"outcome"`, `"read_p50"`, `"write_p99"`, `"occ_max"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing key %s:\n%s", key, data)
		}
	}
}

// TestDecodeRejectsMalformedProfile: strict decoding must reject profile
// blocks with unknown fields or impossible values, with a diagnosable error.
func TestDecodeRejectsMalformedProfile(t *testing.T) {
	encode := func(mut func(*ProfileReport)) []byte {
		res := sampleResult()
		res.Reports[0].Profile = sampleProfileReport()
		mut(res.Reports[0].Profile)
		data, err := json.Marshal(&ResultSet{Results: []*Result{res}})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{
			name: "unknown field",
			data: []byte(strings.Replace(string(encode(func(*ProfileReport) {})),
				`"conflict_events"`, `"conflict_eventz"`, 1)),
			want: "unknown field",
		},
		{
			name: "err exceeds count",
			data: encode(func(pr *ProfileReport) { pr.HotLines[0].Err = 99 }),
			want: "err 99 exceeds count",
		},
		{
			name: "hot lines out of rank order",
			data: encode(func(pr *ProfileReport) { pr.HotLines[1].Count = 100 }),
			want: "not in descending order",
		},
		{
			name: "negative set",
			data: encode(func(pr *ProfileReport) { pr.Heat[0].Set = -1 }),
			want: "negative set",
		},
		{
			name: "unknown class",
			data: encode(func(pr *ProfileReport) { pr.Footprints[0].Class = "warp" }),
			want: `unknown class "warp"`,
		},
		{
			name: "unknown outcome",
			data: encode(func(pr *ProfileReport) { pr.Footprints[0].Outcome = "vanished" }),
			want: `unknown outcome "vanished"`,
		},
		{
			name: "empty cell",
			data: encode(func(pr *ProfileReport) { pr.Footprints[0].Count = 0 }),
			want: "count 0",
		},
		{
			name: "backwards read quantiles",
			data: encode(func(pr *ProfileReport) { pr.Footprints[0].ReadP50 = 50 }),
			want: "read quantiles not non-decreasing",
		},
		{
			name: "backwards occ quantiles",
			data: encode(func(pr *ProfileReport) { pr.Footprints[0].OccMax = 0 }),
			want: "occ quantiles not non-decreasing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeResultSet(tc.data)
			if err == nil {
				t.Fatalf("strict decode accepted a profile with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCompareIgnoresProfiles: regression comparison keys on throughput and
// stats only — attaching profile blocks to either side must not change the
// comparison at all.
func TestCompareIgnoresProfiles(t *testing.T) {
	mk := func(withProfile bool) *ResultSet {
		res := sampleResult()
		if withProfile {
			for i := range res.Reports {
				res.Reports[i].Profile = sampleProfileReport()
			}
		}
		return &ResultSet{Results: []*Result{res}}
	}
	plain, err := CompareResultSets(mk(false), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := CompareResultSets(mk(true), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if plain != profiled {
		t.Fatalf("profile blocks changed the comparison:\n--- plain ---\n%s--- profiled ---\n%s", plain, profiled)
	}
	rowsPlain, err := CheckRegression(mk(false), mk(false), 10)
	if err != nil {
		t.Fatal(err)
	}
	rowsProf, err := CheckRegression(mk(false), mk(true), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowsPlain, rowsProf) {
		t.Fatalf("profile blocks changed regression rows:\n%v\n%v", rowsPlain, rowsProf)
	}
}

// TestProfileTextRendering: profiled reports render the hot-line and
// footprint tables; unprofiled results render neither.
func TestProfileTextRendering(t *testing.T) {
	res := sampleResult()
	if strings.Contains(res.Text(), "# profile:") {
		t.Fatal("unprofiled result renders a profile block")
	}
	res.Reports[0].Profile = sampleProfileReport()
	out := res.Text()
	for _, needle := range []string{
		"# profile: hot conflict lines", "# profile: footprints",
		"100", "fast", "commit",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("profiled text missing %q:\n%s", needle, out)
		}
	}
}

// TestProfileReportOfEmpty: a profile that recorded nothing serializes to
// nil, so unprofiled runs keep their exact pre-profiler JSON shape.
func TestProfileReportOfEmpty(t *testing.T) {
	if rep := ProfileReportOf(nil); rep != nil {
		t.Fatal("nil profile produced a report")
	}
	if rep := ProfileReportOf(prof.New(prof.Config{})); rep != nil {
		t.Fatalf("empty profile produced a report: %+v", rep)
	}
}

// TestHeatmapExperiment runs the profiler's acceptance experiment with the
// checks armed: the planted packed line must top the sketch and the packed
// layout must show the conflict-abort excess, deterministically.
func TestHeatmapExperiment(t *testing.T) {
	exp, ok := Find("heatmap")
	if !ok {
		t.Fatal("heatmap experiment not registered")
	}
	res, err := exp.Run(Options{Threads: []int{4}, Seed: 1, ProfCheck: true})
	if err != nil {
		t.Fatalf("heatmap profile check failed: %v", err)
	}
	byPhase := map[string]map[string]SystemReport{}
	for _, rep := range res.Reports {
		if byPhase[rep.System] == nil {
			byPhase[rep.System] = map[string]SystemReport{}
		}
		byPhase[rep.System][rep.Phase] = rep
	}
	for _, sys := range []string{"HTM-GL", "Part-HTM"} {
		packed, ok := byPhase[sys]["packed"]
		if !ok {
			t.Fatalf("%s: no packed report", sys)
		}
		spread, ok := byPhase[sys]["spread"]
		if !ok {
			t.Fatalf("%s: no spread report", sys)
		}
		if packed.Profile == nil || len(packed.Profile.HotLines) == 0 {
			t.Fatalf("%s: packed run recorded no hot lines", sys)
		}
		if packed.Engine == nil || spread.Engine == nil {
			t.Fatalf("%s: missing engine snapshots", sys)
		}
		if packed.Engine.AbortsConflict <= spread.Engine.AbortsConflict {
			t.Fatalf("%s: no placement effect: packed %d <= spread %d", sys,
				packed.Engine.AbortsConflict, spread.Engine.AbortsConflict)
		}
	}
}
