package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tm"
	"repro/internal/trace"
)

// goldenTable is a fixed table exercising the alignment rules: uneven value
// widths, a missing trailing value, and multiple series.
func goldenTable() Table {
	return Table{
		Title:   "golden demo",
		Metric:  "M tx/sec",
		Threads: []int{1, 2, 4},
		Series: []Series{
			{System: "Part-HTM", Values: []float64{1, 2.5, 3.25}},
			{System: "HTM-GL", Values: []float64{0.5, 1}},
		},
	}
}

// TestTableFormatGolden pins Table.Format's exact text rendering against a
// checked-in golden file, so accidental layout drift fails loudly. Run with
// UPDATE_GOLDEN=1 to regenerate after an intentional change.
func TestTableFormatGolden(t *testing.T) {
	tbl := goldenTable()
	got := tbl.Format()
	path := filepath.Join("testdata", "table_format.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Table.Format drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// sampleResult builds a Result touching every field, with both report
// shapes (a taxonomy report and a throughput sweep report).
func sampleResult() *Result {
	return &Result{
		ID:     "demo",
		Title:  "Demo result",
		Notes:  []string{"# demo header"},
		Tables: []Table{goldenTable()},
		Reports: []SystemReport{
			{
				System:  "Part-HTM",
				Threads: 4,
				Stats: tm.Snapshot{
					CommitsHTM: 10, CommitsSW: 5, CommitsGL: 1,
					AbortsConflict: 7, AbortsCapacity: 3, AbortsExplicit: 2, AbortsOther: 1,
					SerialNanos:       12345,
					EscalationsBudget: 1, EscalationsStarve: 2, EscalationsLemming: 3,
					DegradedEnter: 1, DegradedExit: 1, DegradedCommits: 4,
					FaultsInjected: 9,
				},
				Engine: &EngineSnapshot{
					Commits: 11, AbortsConflict: 6, AbortsCapacity: 4,
					AbortsExplicit: 2, AbortsOther: 1,
				},
				Latency: &LatencyReport{
					Paths: []LatencyRow{
						{Label: "htm", Count: 10, P50: 100, P95: 200, P99: 250, Max: 300, Mean: 120},
						{Label: "sw", Count: 5, P50: 1000, P95: 2000, P99: 2500, Max: 3000, Mean: 1200},
					},
					Aborts: []LatencyRow{
						{Label: "capacity", Count: 3, P50: 400, P95: 500, P99: 500, Max: 500, Mean: 420},
					},
				},
			},
			{
				System:     "HTM-GL",
				Threads:    4,
				FaultRate:  0.25,
				Throughput: &ThroughputResult{OpsPerSec: 1000, Projected: 2000},
				Stats:      tm.Snapshot{CommitsHTM: 20, CommitsGL: 2},
			},
		},
	}
}

// TestResultJSONRoundTrip: a Result must survive JSON encode/decode exactly
// — the JSON document is the machine-readable contract of -json.
func TestResultJSONRoundTrip(t *testing.T) {
	in := ResultSet{Results: []*Result{sampleResult()}}
	data, err := json.MarshalIndent(&in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var out ResultSet
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&in, &out) {
		t.Fatalf("round trip changed the result:\nin:  %+v\nout: %+v", in.Results[0], out.Results[0])
	}
	// The machine contract: commit-path splits and the hardware abort
	// taxonomy must be present under stable snake_case keys.
	for _, key := range []string{
		`"commits_htm"`, `"commits_sw"`, `"commits_gl"`,
		`"aborts_conflict"`, `"aborts_capacity"`, `"aborts_explicit"`, `"aborts_other"`,
		`"faults_injected"`, `"escalations_budget"`, `"fault_rate"`, `"projected"`,
		`"latency"`, `"p50_ns"`, `"p99_ns"`, `"mean_ns"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing key %s:\n%s", key, data)
		}
	}
}

// TestResultTextShapes: the text renderer must produce the taxonomy layout
// for whole-run reports and the sweep layout for rate sweeps.
func TestResultTextShapes(t *testing.T) {
	taxonomy := &Result{
		Notes: []string{"# header"},
		Reports: []SystemReport{{
			System: "Part-HTM",
			Stats:  tm.Snapshot{CommitsHTM: 3, CommitsSW: 1},
			Engine: &EngineSnapshot{AbortsCapacity: 4},
		}},
	}
	out := taxonomy.Text()
	for _, needle := range []string{"# header", "capacity", "100.00%", "75.0%"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("taxonomy text missing %q:\n%s", needle, out)
		}
	}

	sweep := &Result{Reports: []SystemReport{
		{System: "A", FaultRate: 0, Throughput: &ThroughputResult{Projected: 5000}},
		{System: "A", FaultRate: 0.5, Throughput: &ThroughputResult{Projected: 4000}, Stats: tm.Snapshot{FaultsInjected: 7}},
		{System: "B", FaultRate: 0, Throughput: &ThroughputResult{Projected: 3000}},
	}}
	out = sweep.Text()
	for _, needle := range []string{"K tx/s", "injected", "degr-in/out", "0.50"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("sweep text missing %q:\n%s", needle, out)
		}
	}
	// Rows of the same system stay in one block; a system change inserts a
	// blank line (the grouping the text sweep has always used).
	if !strings.Contains(out, "\n\nB") {
		t.Fatalf("sweep text missing blank line between system blocks:\n%s", out)
	}
}

// TestResultTextLatencyBlock: reports carrying latency tables render the
// quantile block; untraced results render no latency header at all.
func TestResultTextLatencyBlock(t *testing.T) {
	res := sampleResult()
	out := res.Text()
	for _, needle := range []string{
		"# latency (ns)", "p50", "p99",
		"commit", "htm", "sw", "abort", "capacity",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("latency block missing %q:\n%s", needle, out)
		}
	}

	for i := range res.Reports {
		res.Reports[i].Latency = nil
	}
	if strings.Contains(res.Text(), "latency") {
		t.Fatalf("untraced result must not render a latency block:\n%s", res.Text())
	}
}

// TestLatencyReportOf: empty distributions are dropped, a fully empty
// snapshot converts to nil (untraced runs must serialize unchanged).
func TestLatencyReportOf(t *testing.T) {
	var snap trace.LatencySnapshot
	if rep := LatencyReportOf(snap); rep != nil {
		t.Fatalf("empty snapshot must convert to nil, got %+v", rep)
	}
	snap.Path[trace.PathSW] = trace.LatencyStat{Count: 2, P50: 10, P95: 20, P99: 20, Max: 21, Mean: 12}
	snap.Abort[trace.CauseCapacity] = trace.LatencyStat{Count: 1, P50: 5, P95: 5, P99: 5, Max: 5, Mean: 5}
	rep := LatencyReportOf(snap)
	if rep == nil || len(rep.Paths) != 1 || len(rep.Aborts) != 1 {
		t.Fatalf("report = %+v, want one path row and one abort row", rep)
	}
	if rep.Paths[0].Label != "sw" || rep.Paths[0].P50 != 10 {
		t.Fatalf("path row = %+v", rep.Paths[0])
	}
	if rep.Aborts[0].Label != "capacity" || rep.Aborts[0].Count != 1 {
		t.Fatalf("abort row = %+v", rep.Aborts[0])
	}
}
