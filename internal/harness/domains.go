// The domains experiment: throughput of the sharded-memory-domain topology
// as the domain count and the cross-domain transaction ratio sweep.
package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/bench/domwrite"
	"repro/internal/core"
)

// defaultDomainSweep and defaultCrossSweep are the grid the domains
// experiment runs when the -domains/-cross flags leave it unset.
var (
	defaultDomainSweep = []int{1, 2, 4, 8}
	defaultCrossSweep  = []float64{0, 0.2}
)

// runDomains sweeps Part-HTM over domain counts and cross-domain ratios on
// the write-heavy domwrite workload (thread-private data, so all contention
// is protocol metadata). One report row per (N, cross) cell, labelled
// Phase "N<d>/c<ratio>", carrying the throughput and the cross-domain
// counters — the N1 rows are the single-domain baseline the BENCH gate
// pins.
func runDomains(o Options) (*Result, error) {
	// Eight threads (two per domain at N=4) so the sharded topologies keep
	// every domain's commit pipeline busy while the single-domain baseline
	// funnels all eight through one ring.
	o = o.withDefaults([]int{8}, []string{"Part-HTM"})
	threads := o.Threads[0]
	domSweep := o.Domains
	if len(domSweep) == 0 {
		domSweep = defaultDomainSweep
	}
	crossSweep := o.Cross
	if len(crossSweep) == 0 {
		crossSweep = defaultCrossSweep
	}
	out := &Result{Notes: []string{fmt.Sprintf(
		"# Domains: sharded memory domains, write-heavy thread-private workload @%d threads (partitioned path)",
		threads)}}
	for _, nd := range domSweep {
		for _, cross := range crossSweep {
			phase := fmt.Sprintf("N%d/c%.2f", nd, cross)
			if o.Trace != nil {
				o.Trace.Mark("domains " + phase)
			}
			o.Profile.Mark("domains " + phase)
			cfg := core.DefaultConfig()
			// Isolate the partitioned path: the fast path commits the whole
			// transaction in one hardware window and touches no per-domain
			// software metadata, which is the contention under study.
			cfg.NoFastPath = true
			cfg.Domains = nd
			wcfg := domwrite.Default(nd, threads)
			wcfg.Cross = cross
			sys := Build("Part-HTM", BuildOptions{
				DataWords: wcfg.MemWords(), Threads: threads,
				PhysCores: o.PhysCores, Seed: o.Seed, Core: &cfg,
				Trace: o.Trace, Governor: o.Governor, Profile: o.Profile, Obs: o.Obs,
			})
			b := domwrite.New(sys, wcfg)
			op := func(th int, rng *rand.Rand) { b.Op(th, rng) }
			res := Throughput(sys, op, threads, o.Duration, o.Seed)
			out.Reports = append(out.Reports, SystemReport{
				System:     "Part-HTM",
				Threads:    threads,
				Phase:      phase,
				Throughput: &res,
				Stats:      sys.Stats().Snapshot(),
				Engine:     EngineSnapshotOf(sys),
				Latency:    captureLatency(o.Trace),
				Profile:    captureProfile(o.Profile),
			})
		}
	}
	return out, nil
}
