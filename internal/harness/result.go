// Structured experiment results: every experiment produces a Result value
// that renders either as the traditional aligned text or as JSON, so the
// same run can feed a terminal and a plotting pipeline.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Result is the structured outcome of one experiment run: the plotted
// tables, the per-system counter reports (Table 1 and the chaos sweep), and
// free-form header notes. It is the single source for both the text and the
// JSON renderings.
type Result struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Notes   []string       `json:"notes,omitempty"`
	Tables  []Table        `json:"tables,omitempty"`
	Reports []SystemReport `json:"reports,omitempty"`
}

// SystemReport is one system's counters from one run: the commit-path split
// and robustness counters from the TM layer, the hardware abort taxonomy
// from the engine (nil for pure-software systems), and, for throughput
// sweeps, the measured rates.
type SystemReport struct {
	System    string  `json:"system"`
	Threads   int     `json:"threads"`
	FaultRate float64 `json:"fault_rate"`
	// Phase names the chaos-campaign phase the report covers (soak
	// experiment); empty for single-phase runs.
	Phase string `json:"phase,omitempty"`
	// Throughput is set by rate sweeps (the chaos experiment); nil for
	// whole-run reports like Table 1.
	Throughput *ThroughputResult `json:"throughput,omitempty"`
	Stats      tm.Snapshot       `json:"stats"`
	Engine     *EngineSnapshot   `json:"engine,omitempty"`
	// Latency carries the traced commit/abort latency quantiles; nil when
	// the run was not traced.
	Latency *LatencyReport `json:"latency,omitempty"`
	// Profile carries the abort-attribution profile (hot conflict lines,
	// set heat, footprint quantiles); nil when the run was not profiled.
	Profile *ProfileReport `json:"profile,omitempty"`
}

// ProfileReport is one system's merged abort-attribution profile: the
// top-K conflict hot lines from the SpaceSaving sketches, the non-zero
// associativity-set heat counters, and the footprint quantiles per
// (commit-path class, outcome) cell.
type ProfileReport struct {
	ConflictEvents uint64         `json:"conflict_events"`
	HotLines       []prof.HotLine `json:"hot_lines,omitempty"`
	Heat           []prof.SetHeat `json:"heat,omitempty"`
	// Domains carries the per-memory-domain abort heat; present only when
	// the profiled system ran a sharded-domain topology.
	Domains    []prof.DomainHeat    `json:"domains,omitempty"`
	Footprints []prof.FootprintStat `json:"footprints,omitempty"`
}

// ProfileReportOf converts a profile's merged shard state into the
// serializable report, dropping zero-heat sets. Returns nil when nothing
// was recorded (so unprofiled runs serialize identically to before the
// profiler existed). Writers must have quiesced.
func ProfileReportOf(p *prof.Profile) *ProfileReport {
	if p == nil {
		return nil
	}
	rep := &ProfileReport{
		ConflictEvents: p.ConflictEvents(),
		HotLines:       p.TopK(0),
		Footprints:     p.Footprints(),
	}
	for _, h := range p.Heat() {
		if h.Conflicts != 0 || h.Capacity != 0 {
			rep.Heat = append(rep.Heat, h)
		}
	}
	for _, h := range p.DomainHeat() {
		if h.Conflicts != 0 || h.Capacity != 0 {
			rep.Domains = append(rep.Domains, h)
		}
	}
	if rep.ConflictEvents == 0 && len(rep.HotLines) == 0 &&
		len(rep.Heat) == 0 && len(rep.Domains) == 0 && len(rep.Footprints) == 0 {
		return nil
	}
	return rep
}

// validate rejects malformed profile blocks: decoding is strict (unknown
// fields already fail), but a structurally valid document can still carry
// impossible values — unknown class/outcome names, quantiles that run
// backwards, hot lines out of rank order. Downstream plotting pipelines
// rely on these shapes.
func (pr *ProfileReport) validate() error {
	for i, h := range pr.HotLines {
		if h.Err > h.Count {
			return fmt.Errorf("hot_lines[%d]: err %d exceeds count %d", i, h.Err, h.Count)
		}
		if i > 0 && h.Count > pr.HotLines[i-1].Count {
			return fmt.Errorf("hot_lines[%d]: counts not in descending order", i)
		}
	}
	for i, h := range pr.Heat {
		if h.Set < 0 {
			return fmt.Errorf("heat[%d]: negative set index %d", i, h.Set)
		}
	}
	for i, h := range pr.Domains {
		if h.Domain < 0 {
			return fmt.Errorf("domains[%d]: negative domain index %d", i, h.Domain)
		}
		if i > 0 && h.Domain <= pr.Domains[i-1].Domain {
			return fmt.Errorf("domains[%d]: domain indices not strictly increasing", i)
		}
	}
	classes := map[string]bool{}
	for c := uint8(0); c < prof.ClassCount; c++ {
		classes[prof.ClassName(c)] = true
	}
	outcomes := map[string]bool{}
	for o := uint8(0); o < prof.OutcomeCount; o++ {
		outcomes[prof.OutcomeName(o)] = true
	}
	mono := func(i int, dim string, p50, p95, p99, max int64) error {
		if p50 > p95 || p95 > p99 || p99 > max {
			return fmt.Errorf("footprints[%d]: %s quantiles not non-decreasing (%d/%d/%d/%d)",
				i, dim, p50, p95, p99, max)
		}
		return nil
	}
	for i, f := range pr.Footprints {
		if !classes[f.Class] {
			return fmt.Errorf("footprints[%d]: unknown class %q", i, f.Class)
		}
		if !outcomes[f.Outcome] {
			return fmt.Errorf("footprints[%d]: unknown outcome %q", i, f.Outcome)
		}
		if f.Count == 0 {
			return fmt.Errorf("footprints[%d]: empty cell serialized (count 0)", i)
		}
		if err := mono(i, "read", f.ReadP50, f.ReadP95, f.ReadP99, f.ReadMax); err != nil {
			return err
		}
		if err := mono(i, "write", f.WriteP50, f.WriteP95, f.WriteP99, f.WriteMax); err != nil {
			return err
		}
		if err := mono(i, "occ", f.OccP50, f.OccP95, f.OccP99, f.OccMax); err != nil {
			return err
		}
	}
	return nil
}

// LatencyRow is one latency distribution: commit latency of one execution
// path, or begin-to-abort latency of one abort cause. Times are
// nanoseconds.
type LatencyRow struct {
	Label string  `json:"label"`
	Count uint64  `json:"count"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

// LatencyReport is one system's traced latency tables: per-commit-path
// and per-abort-cause distributions (only populated rows are kept).
type LatencyReport struct {
	Paths  []LatencyRow `json:"paths,omitempty"`
	Aborts []LatencyRow `json:"aborts,omitempty"`
}

// LatencyReportOf converts a merged trace snapshot into the serializable
// report, dropping empty distributions. Returns nil when nothing was
// recorded (so untraced runs serialize identically to before tracing
// existed).
func LatencyReportOf(snap trace.LatencySnapshot) *LatencyReport {
	row := func(label string, st trace.LatencyStat) LatencyRow {
		return LatencyRow{Label: label, Count: st.Count,
			P50: st.P50, P95: st.P95, P99: st.P99, Max: st.Max, Mean: st.Mean}
	}
	var rep LatencyReport
	for p := uint8(0); p < trace.PathCount; p++ {
		if st := snap.Path[p]; st.Count > 0 {
			rep.Paths = append(rep.Paths, row(trace.PathName(p), st))
		}
	}
	for c := uint8(1); c < trace.CauseCount; c++ { // cause 0 = none, never recorded
		if st := snap.Abort[c]; st.Count > 0 {
			rep.Aborts = append(rep.Aborts, row(trace.CauseName(c), st))
		}
	}
	if len(rep.Paths) == 0 && len(rep.Aborts) == 0 {
		return nil
	}
	return &rep
}

// EngineSnapshot is a point-in-time copy of the hardware engine's abort
// taxonomy (htm.Stats holds live atomics; this is the serializable view).
type EngineSnapshot struct {
	Commits        uint64 `json:"commits"`
	AbortsConflict uint64 `json:"aborts_conflict"`
	AbortsCapacity uint64 `json:"aborts_capacity"`
	AbortsExplicit uint64 `json:"aborts_explicit"`
	AbortsOther    uint64 `json:"aborts_other"`
}

// Aborts returns the total hardware aborts across the taxonomy.
func (e *EngineSnapshot) Aborts() uint64 {
	return e.AbortsConflict + e.AbortsCapacity + e.AbortsExplicit + e.AbortsOther
}

// EngineSnapshotOf captures the engine taxonomy behind a system, or nil for
// pure-software systems.
func EngineSnapshotOf(sys tm.System) *EngineSnapshot {
	eng := EngineOf(sys)
	if eng == nil {
		return nil
	}
	es := eng.Stats()
	return &EngineSnapshot{
		Commits:        es.Commits.Load(),
		AbortsConflict: es.AbortsConflict.Load(),
		AbortsCapacity: es.AbortsCapacity.Load(),
		AbortsExplicit: es.AbortsExplicit.Load(),
		AbortsOther:    es.AbortsOther.Load(),
	}
}

// ResultSet is the top-level JSON document: one Result per experiment run.
type ResultSet struct {
	Results []*Result `json:"results"`
}

// DecodeResultSet parses one ResultSet document as emitted by
// `parthtm-bench -json`. It is the strict inverse of that encoding:
// unknown fields and trailing data are rejected, and corrupted or
// truncated input yields an error — never a panic — so downstream
// plotting pipelines can feed it artifacts of unknown provenance.
func DecodeResultSet(data []byte) (*ResultSet, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var set ResultSet
	if err := dec.Decode(&set); err != nil {
		return nil, fmt.Errorf("decoding ResultSet: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding ResultSet: trailing data after the document")
	}
	for _, res := range set.Results {
		if res == nil {
			continue
		}
		for i := range res.Reports {
			rep := &res.Reports[i]
			if rep.Profile == nil {
				continue
			}
			if err := rep.Profile.validate(); err != nil {
				return nil, fmt.Errorf("decoding ResultSet: %s/%s: malformed profile: %w",
					res.ID, rep.System, err)
			}
		}
	}
	return &set, nil
}

// Text renders the result as the traditional aligned-text report: notes,
// then counter reports, then tables.
func (r *Result) Text() string {
	var b strings.Builder
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	r.formatReports(&b)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Format())
	}
	return b.String()
}

// formatReports renders the per-system counter block. Two shapes exist:
// whole-run taxonomy reports (Table 1: abort and commit-path percentages)
// and rate sweeps (chaos: one row per fault rate with throughput and
// robustness counters), distinguished by whether Throughput is set.
func (r *Result) formatReports(b *strings.Builder) {
	if len(r.Reports) == 0 {
		return
	}
	if r.Reports[0].Throughput == nil {
		r.formatTaxonomyReports(b)
	} else {
		r.formatSweepReports(b)
	}
	r.formatLatencyReports(b)
	r.formatProfileReports(b)
}

// formatProfileReports renders the abort-attribution profile blocks, one
// per report that carries them (profiled runs only): the hot-line table
// and the footprint quantiles.
func (r *Result) formatProfileReports(b *strings.Builder) {
	any := false
	for i := range r.Reports {
		if r.Reports[i].Profile != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	const hotLimit = 10
	fmt.Fprintf(b, "# profile: hot conflict lines (SpaceSaving top-K merged across threads; count-err is a guaranteed lower bound)\n")
	fmt.Fprintf(b, "%-10s %-8s %10s %10s %8s\n", "system", "phase", "line", "count", "err")
	for _, rep := range r.Reports {
		pr := rep.Profile
		if pr == nil {
			continue
		}
		label := rep.Phase
		if label == "" {
			label = fmt.Sprintf("%.2f", rep.FaultRate)
		}
		if len(pr.HotLines) == 0 {
			fmt.Fprintf(b, "%-10s %-8s %10s (no conflicts recorded)\n", rep.System, label, "-")
			continue
		}
		for i, h := range pr.HotLines {
			if i == hotLimit {
				fmt.Fprintf(b, "%-10s %-8s %10s (%d more)\n", rep.System, label, "...", len(pr.HotLines)-hotLimit)
				break
			}
			fmt.Fprintf(b, "%-10s %-8s %10d %10d %8d\n", rep.System, label, h.Line, h.Count, h.Err)
		}
	}
	b.WriteByte('\n')
	domAny := false
	for i := range r.Reports {
		if pr := r.Reports[i].Profile; pr != nil && len(pr.Domains) > 0 {
			domAny = true
			break
		}
	}
	if domAny {
		fmt.Fprintf(b, "# profile: abort heat per memory domain (sharded topologies)\n")
		fmt.Fprintf(b, "%-10s %-8s %8s %12s %12s\n", "system", "phase", "domain", "conflicts", "capacity")
		for _, rep := range r.Reports {
			pr := rep.Profile
			if pr == nil || len(pr.Domains) == 0 {
				continue
			}
			label := rep.Phase
			if label == "" {
				label = fmt.Sprintf("%.2f", rep.FaultRate)
			}
			for _, h := range pr.Domains {
				fmt.Fprintf(b, "%-10s %-8s %8d %12d %12d\n", rep.System, label, h.Domain, h.Conflicts, h.Capacity)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "# profile: footprints (lines touched, peak set occupancy) per class and outcome\n")
	fmt.Fprintf(b, "%-10s %-8s %-5s %-9s %10s %14s %14s %12s\n",
		"system", "phase", "class", "outcome", "count", "read p50/p99", "write p50/p99", "occ p50/p99")
	for _, rep := range r.Reports {
		pr := rep.Profile
		if pr == nil {
			continue
		}
		label := rep.Phase
		if label == "" {
			label = fmt.Sprintf("%.2f", rep.FaultRate)
		}
		for _, f := range pr.Footprints {
			fmt.Fprintf(b, "%-10s %-8s %-5s %-9s %10d %6d/%-7d %6d/%-7d %5d/%-6d\n",
				rep.System, label, f.Class, f.Outcome, f.Count,
				f.ReadP50, f.ReadP99, f.WriteP50, f.WriteP99, f.OccP50, f.OccP99)
		}
	}
	b.WriteByte('\n')
}

// formatLatencyReports renders the traced latency tables, one block per
// report that carries them (traced runs only).
func (r *Result) formatLatencyReports(b *strings.Builder) {
	any := false
	for i := range r.Reports {
		if r.Reports[i].Latency != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(b, "# latency (ns): commit per path, begin-to-abort per cause\n")
	fmt.Fprintf(b, "%-10s %6s %-6s %-9s %10s %9s %9s %9s %10s\n",
		"system", "rate", "kind", "label", "count", "p50", "p95", "p99", "max")
	for _, rep := range r.Reports {
		if rep.Latency == nil {
			continue
		}
		writeRows := func(kind string, rows []LatencyRow) {
			for _, lr := range rows {
				fmt.Fprintf(b, "%-10s %6.2f %-6s %-9s %10d %9d %9d %9d %10d\n",
					rep.System, rep.FaultRate, kind, lr.Label,
					lr.Count, lr.P50, lr.P95, lr.P99, lr.Max)
			}
		}
		writeRows("commit", rep.Latency.Paths)
		writeRows("abort", rep.Latency.Aborts)
	}
	b.WriteByte('\n')
}

func (r *Result) formatTaxonomyReports(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %9s %9s %9s %9s | %7s %7s %7s\n",
		"system", "conflict", "capacity", "explicit", "other", "GL", "HTM", "SW")
	for _, rep := range r.Reports {
		eng := rep.Engine
		if eng == nil {
			eng = &EngineSnapshot{}
		}
		aborts := float64(eng.Aborts())
		if aborts == 0 {
			aborts = 1
		}
		commits := float64(rep.Stats.Commits())
		if commits == 0 {
			commits = 1
		}
		fmt.Fprintf(b, "%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% | %6.1f%% %6.1f%% %6.1f%%\n",
			rep.System,
			100*float64(eng.AbortsConflict)/aborts,
			100*float64(eng.AbortsCapacity)/aborts,
			100*float64(eng.AbortsExplicit)/aborts,
			100*float64(eng.AbortsOther)/aborts,
			100*float64(rep.Stats.CommitsGL)/commits,
			100*float64(rep.Stats.CommitsHTM)/commits,
			100*float64(rep.Stats.CommitsSW)/commits)
	}
}

func (r *Result) formatSweepReports(b *strings.Builder) {
	// Campaign runs (the soak experiment) label rows by phase; rate sweeps
	// (chaos) by fault rate.
	phased := false
	for i := range r.Reports {
		if r.Reports[i].Phase != "" {
			phased = true
			break
		}
	}
	col := "rate"
	if phased {
		col = "phase"
	}
	fmt.Fprintf(b, "%-10s %7s %10s %7s %7s %7s %10s %7s %9s %7s %6s\n",
		"system", col, "K tx/s", "HTM", "SW", "GL", "injected", "escal", "degr-in/out", "degrTx", "alarms")
	for i, rep := range r.Reports {
		if i > 0 && rep.System != r.Reports[i-1].System {
			b.WriteByte('\n')
		}
		st := rep.Stats
		commits := float64(st.Commits())
		if commits == 0 {
			commits = 1
		}
		var proj float64
		if rep.Throughput != nil {
			proj = rep.Throughput.Projected
		}
		label := fmt.Sprintf("%7.2f", rep.FaultRate)
		if phased {
			label = fmt.Sprintf("%7s", rep.Phase)
		}
		fmt.Fprintf(b, "%-10s %s %10.1f %6.1f%% %6.1f%% %6.1f%% %10d %7d %5d/%-4d %7d %6d\n",
			rep.System, label, proj/1e3,
			100*float64(st.CommitsHTM)/commits,
			100*float64(st.CommitsSW)/commits,
			100*float64(st.CommitsGL)/commits,
			st.FaultsInjected, st.Escalations(),
			st.DegradedEnter, st.DegradedExit, st.DegradedCommits,
			st.WatchdogAlarms)
	}
	b.WriteByte('\n')
}
