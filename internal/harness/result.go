// Structured experiment results: every experiment produces a Result value
// that renders either as the traditional aligned text or as JSON, so the
// same run can feed a terminal and a plotting pipeline.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/tm"
	"repro/internal/trace"
)

// Result is the structured outcome of one experiment run: the plotted
// tables, the per-system counter reports (Table 1 and the chaos sweep), and
// free-form header notes. It is the single source for both the text and the
// JSON renderings.
type Result struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Notes   []string       `json:"notes,omitempty"`
	Tables  []Table        `json:"tables,omitempty"`
	Reports []SystemReport `json:"reports,omitempty"`
}

// SystemReport is one system's counters from one run: the commit-path split
// and robustness counters from the TM layer, the hardware abort taxonomy
// from the engine (nil for pure-software systems), and, for throughput
// sweeps, the measured rates.
type SystemReport struct {
	System    string  `json:"system"`
	Threads   int     `json:"threads"`
	FaultRate float64 `json:"fault_rate"`
	// Phase names the chaos-campaign phase the report covers (soak
	// experiment); empty for single-phase runs.
	Phase string `json:"phase,omitempty"`
	// Throughput is set by rate sweeps (the chaos experiment); nil for
	// whole-run reports like Table 1.
	Throughput *ThroughputResult `json:"throughput,omitempty"`
	Stats      tm.Snapshot       `json:"stats"`
	Engine     *EngineSnapshot   `json:"engine,omitempty"`
	// Latency carries the traced commit/abort latency quantiles; nil when
	// the run was not traced.
	Latency *LatencyReport `json:"latency,omitempty"`
}

// LatencyRow is one latency distribution: commit latency of one execution
// path, or begin-to-abort latency of one abort cause. Times are
// nanoseconds.
type LatencyRow struct {
	Label string  `json:"label"`
	Count uint64  `json:"count"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

// LatencyReport is one system's traced latency tables: per-commit-path
// and per-abort-cause distributions (only populated rows are kept).
type LatencyReport struct {
	Paths  []LatencyRow `json:"paths,omitempty"`
	Aborts []LatencyRow `json:"aborts,omitempty"`
}

// LatencyReportOf converts a merged trace snapshot into the serializable
// report, dropping empty distributions. Returns nil when nothing was
// recorded (so untraced runs serialize identically to before tracing
// existed).
func LatencyReportOf(snap trace.LatencySnapshot) *LatencyReport {
	row := func(label string, st trace.LatencyStat) LatencyRow {
		return LatencyRow{Label: label, Count: st.Count,
			P50: st.P50, P95: st.P95, P99: st.P99, Max: st.Max, Mean: st.Mean}
	}
	var rep LatencyReport
	for p := uint8(0); p < trace.PathCount; p++ {
		if st := snap.Path[p]; st.Count > 0 {
			rep.Paths = append(rep.Paths, row(trace.PathName(p), st))
		}
	}
	for c := uint8(1); c < trace.CauseCount; c++ { // cause 0 = none, never recorded
		if st := snap.Abort[c]; st.Count > 0 {
			rep.Aborts = append(rep.Aborts, row(trace.CauseName(c), st))
		}
	}
	if len(rep.Paths) == 0 && len(rep.Aborts) == 0 {
		return nil
	}
	return &rep
}

// EngineSnapshot is a point-in-time copy of the hardware engine's abort
// taxonomy (htm.Stats holds live atomics; this is the serializable view).
type EngineSnapshot struct {
	Commits        uint64 `json:"commits"`
	AbortsConflict uint64 `json:"aborts_conflict"`
	AbortsCapacity uint64 `json:"aborts_capacity"`
	AbortsExplicit uint64 `json:"aborts_explicit"`
	AbortsOther    uint64 `json:"aborts_other"`
}

// Aborts returns the total hardware aborts across the taxonomy.
func (e *EngineSnapshot) Aborts() uint64 {
	return e.AbortsConflict + e.AbortsCapacity + e.AbortsExplicit + e.AbortsOther
}

// EngineSnapshotOf captures the engine taxonomy behind a system, or nil for
// pure-software systems.
func EngineSnapshotOf(sys tm.System) *EngineSnapshot {
	eng := EngineOf(sys)
	if eng == nil {
		return nil
	}
	es := eng.Stats()
	return &EngineSnapshot{
		Commits:        es.Commits.Load(),
		AbortsConflict: es.AbortsConflict.Load(),
		AbortsCapacity: es.AbortsCapacity.Load(),
		AbortsExplicit: es.AbortsExplicit.Load(),
		AbortsOther:    es.AbortsOther.Load(),
	}
}

// ResultSet is the top-level JSON document: one Result per experiment run.
type ResultSet struct {
	Results []*Result `json:"results"`
}

// DecodeResultSet parses one ResultSet document as emitted by
// `parthtm-bench -json`. It is the strict inverse of that encoding:
// unknown fields and trailing data are rejected, and corrupted or
// truncated input yields an error — never a panic — so downstream
// plotting pipelines can feed it artifacts of unknown provenance.
func DecodeResultSet(data []byte) (*ResultSet, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var set ResultSet
	if err := dec.Decode(&set); err != nil {
		return nil, fmt.Errorf("decoding ResultSet: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding ResultSet: trailing data after the document")
	}
	return &set, nil
}

// Text renders the result as the traditional aligned-text report: notes,
// then counter reports, then tables.
func (r *Result) Text() string {
	var b strings.Builder
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	r.formatReports(&b)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Format())
	}
	return b.String()
}

// formatReports renders the per-system counter block. Two shapes exist:
// whole-run taxonomy reports (Table 1: abort and commit-path percentages)
// and rate sweeps (chaos: one row per fault rate with throughput and
// robustness counters), distinguished by whether Throughput is set.
func (r *Result) formatReports(b *strings.Builder) {
	if len(r.Reports) == 0 {
		return
	}
	if r.Reports[0].Throughput == nil {
		r.formatTaxonomyReports(b)
	} else {
		r.formatSweepReports(b)
	}
	r.formatLatencyReports(b)
}

// formatLatencyReports renders the traced latency tables, one block per
// report that carries them (traced runs only).
func (r *Result) formatLatencyReports(b *strings.Builder) {
	any := false
	for i := range r.Reports {
		if r.Reports[i].Latency != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(b, "# latency (ns): commit per path, begin-to-abort per cause\n")
	fmt.Fprintf(b, "%-10s %6s %-6s %-9s %10s %9s %9s %9s %10s\n",
		"system", "rate", "kind", "label", "count", "p50", "p95", "p99", "max")
	for _, rep := range r.Reports {
		if rep.Latency == nil {
			continue
		}
		writeRows := func(kind string, rows []LatencyRow) {
			for _, lr := range rows {
				fmt.Fprintf(b, "%-10s %6.2f %-6s %-9s %10d %9d %9d %9d %10d\n",
					rep.System, rep.FaultRate, kind, lr.Label,
					lr.Count, lr.P50, lr.P95, lr.P99, lr.Max)
			}
		}
		writeRows("commit", rep.Latency.Paths)
		writeRows("abort", rep.Latency.Aborts)
	}
	b.WriteByte('\n')
}

func (r *Result) formatTaxonomyReports(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %9s %9s %9s %9s | %7s %7s %7s\n",
		"system", "conflict", "capacity", "explicit", "other", "GL", "HTM", "SW")
	for _, rep := range r.Reports {
		eng := rep.Engine
		if eng == nil {
			eng = &EngineSnapshot{}
		}
		aborts := float64(eng.Aborts())
		if aborts == 0 {
			aborts = 1
		}
		commits := float64(rep.Stats.Commits())
		if commits == 0 {
			commits = 1
		}
		fmt.Fprintf(b, "%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% | %6.1f%% %6.1f%% %6.1f%%\n",
			rep.System,
			100*float64(eng.AbortsConflict)/aborts,
			100*float64(eng.AbortsCapacity)/aborts,
			100*float64(eng.AbortsExplicit)/aborts,
			100*float64(eng.AbortsOther)/aborts,
			100*float64(rep.Stats.CommitsGL)/commits,
			100*float64(rep.Stats.CommitsHTM)/commits,
			100*float64(rep.Stats.CommitsSW)/commits)
	}
}

func (r *Result) formatSweepReports(b *strings.Builder) {
	// Campaign runs (the soak experiment) label rows by phase; rate sweeps
	// (chaos) by fault rate.
	phased := false
	for i := range r.Reports {
		if r.Reports[i].Phase != "" {
			phased = true
			break
		}
	}
	col := "rate"
	if phased {
		col = "phase"
	}
	fmt.Fprintf(b, "%-10s %7s %10s %7s %7s %7s %10s %7s %9s %7s %6s\n",
		"system", col, "K tx/s", "HTM", "SW", "GL", "injected", "escal", "degr-in/out", "degrTx", "alarms")
	for i, rep := range r.Reports {
		if i > 0 && rep.System != r.Reports[i-1].System {
			b.WriteByte('\n')
		}
		st := rep.Stats
		commits := float64(st.Commits())
		if commits == 0 {
			commits = 1
		}
		var proj float64
		if rep.Throughput != nil {
			proj = rep.Throughput.Projected
		}
		label := fmt.Sprintf("%7.2f", rep.FaultRate)
		if phased {
			label = fmt.Sprintf("%7s", rep.Phase)
		}
		fmt.Fprintf(b, "%-10s %s %10.1f %6.1f%% %6.1f%% %6.1f%% %10d %7d %5d/%-4d %7d %6d\n",
			rep.System, label, proj/1e3,
			100*float64(st.CommitsHTM)/commits,
			100*float64(st.CommitsSW)/commits,
			100*float64(st.CommitsGL)/commits,
			st.FaultsInjected, st.Escalations(),
			st.DegradedEnter, st.DegradedExit, st.DegradedCommits,
			st.WatchdogAlarms)
	}
	b.WriteByte('\n')
}
