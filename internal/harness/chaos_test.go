package harness

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tm"
)

// TestAbortStorm subjects every engine-backed system to a permanent
// hardware-abort storm — every hardware begin fails, as if timer interrupts
// never stopped firing — and requires that each one still commits every
// transaction through its software fallback: no hangs, no livelock, and of
// course no hardware commits.
func TestAbortStorm(t *testing.T) {
	const threads, txnsPerThread = 2, 25
	for _, name := range chaosSystems {
		t.Run(name, func(t *testing.T) {
			ccfg := core.DefaultConfig()
			ccfg.RetryBudget = 4
			ccfg.MaxBackoff = 0
			sys := Build(name, BuildOptions{
				DataWords: 1 << 12, Threads: threads, PhysCores: 4, Seed: 1,
				Core: &ccfg,
				Fault: &fault.Config{Seed: 1, Storms: []fault.Storm{
					{From: 1, To: fault.Forever, Reason: fault.Other},
				}},
			})
			a := sys.Memory().Alloc(1)
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					for i := 0; i < txnsPerThread; i++ {
						sys.Atomic(th, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
					}
				}(th)
			}
			wg.Wait()
			if got := sys.Memory().Load(a); got != threads*txnsPerThread {
				t.Fatalf("counter = %d, want %d (lost commits under storm)",
					got, threads*txnsPerThread)
			}
			st := sys.Stats().Snapshot()
			if st.Commits() != threads*txnsPerThread {
				t.Fatalf("commits = %d, want %d", st.Commits(), threads*txnsPerThread)
			}
			if st.CommitsHTM != 0 {
				t.Fatalf("CommitsHTM = %d under a total begin storm", st.CommitsHTM)
			}
			if st.FaultsInjected == 0 {
				t.Fatal("FaultsInjected = 0 under a total storm")
			}
			if _, isCore := sys.(*core.System); isCore && st.Escalations() == 0 {
				t.Fatal("Part-HTM never escalated under a total storm")
			}
		})
	}
}

// TestChaosCountersPayForUse: the robustness layer must cost nothing when
// unused — a run without an injector leaves every fault counter at exactly
// zero — and must register activity the moment one is installed.
func TestChaosCountersPayForUse(t *testing.T) {
	if chaosFaultConfig(0, 1) != nil {
		t.Fatal("chaosFaultConfig(0) must disable injection entirely")
	}
	const txns = 50
	run := func(rate float64) tm.Snapshot {
		ccfg := core.DefaultConfig()
		ccfg.MaxBackoff = 0
		sys := Build("Part-HTM", BuildOptions{
			DataWords: 1 << 12, Threads: 1, PhysCores: 4, Seed: 1,
			Core:  &ccfg,
			Fault: chaosFaultConfig(rate, 1),
		})
		if (EngineOf(sys).Injector() != nil) != (rate > 0) {
			t.Fatalf("rate %v: injector presence wrong", rate)
		}
		a := sys.Memory().Alloc(1)
		for i := 0; i < txns; i++ {
			sys.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
		}
		if got := sys.Memory().Load(a); got != txns {
			t.Fatalf("rate %v: counter = %d, want %d", rate, got, txns)
		}
		return sys.Stats().Snapshot()
	}
	clean := run(0)
	if clean.FaultsInjected != 0 || clean.Escalations() != 0 ||
		clean.DegradedEnter != 0 || clean.DegradedCommits != 0 {
		t.Fatalf("fault counters nonzero without an injector: %+v", clean)
	}
	dirty := run(1)
	if dirty.FaultsInjected == 0 {
		t.Fatal("no faults registered at rate 1")
	}
	if dirty.CommitsHTM != 0 {
		t.Fatalf("CommitsHTM = %d with every hardware begin failing", dirty.CommitsHTM)
	}
}
