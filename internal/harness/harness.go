// Package harness builds systems, runs workloads, and regenerates every
// table and figure of the paper's evaluation (see experiments.go for the
// per-experiment index).
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/norec"
	"repro/internal/norecrh"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/ring"
	"repro/internal/ringstm"
	"repro/internal/seq"
	"repro/internal/sig"
	"repro/internal/stamp"
	"repro/internal/tm"
	"repro/internal/trace"
)

// SystemNames lists every buildable system identifier in the order the
// paper's plots use.
var SystemNames = []string{
	"RingSTM", "NOrec", "NOrecRH", "HTM-GL", "Part-HTM", "Part-HTM-O",
}

// AllSystemNames additionally includes the Part-HTM-no-fast variant
// (Figure 3(b)).
var AllSystemNames = append(append([]string{}, SystemNames...), "Part-HTM-no-fast")

// BuildOptions controls how a system and its hardware model are built.
type BuildOptions struct {
	// DataWords is the simulated-memory budget the workload needs;
	// protocol metadata and (for Part-HTM-O) the lock-cell shadow are added
	// on top.
	DataWords int
	// Threads is the number of worker threads the run will use.
	Threads int
	// PhysCores models the machine: running more threads than cores halves
	// the per-transaction cache budgets (hyper-threading, as on the paper's
	// i7) — Figure 5(f)'s 4→8 thread drop. Zero disables the model.
	PhysCores int
	// Engine overrides the default hardware model when non-nil.
	Engine *htm.Config
	// Core overrides Part-HTM's configuration when non-nil (ablations).
	Core *core.Config
	// Seed seeds the engine's probabilistic models.
	Seed int64
	// Fault, when non-nil, installs a deterministic fault injector on the
	// hardware engine of every engine-backed system (chaos experiments).
	// Pure-software systems ignore it.
	Fault *fault.Config
	// Trace, when non-nil, attaches the event sink to the built system so
	// its runner records transaction lifecycle events and latency
	// histograms. Every system implements SetTrace.
	Trace *trace.Sink
	// Governor, when non-nil, attaches a fresh resource governor built from
	// this config to the system's execution kernel: admission budgets, load
	// shedding, and the per-thread HTM circuit breaker. Every system
	// implements SetGovernor.
	Governor *governor.Config
	// Profile, when non-nil, attaches the abort-attribution profiler to the
	// built system: engine-backed systems record conflict hot lines,
	// capacity overflows, and footprints into it, and the execution kernel
	// registers as the time-series sampler source. Every system implements
	// SetProfile.
	Profile *prof.Profile
	// Obs, when non-nil, registers the built system's telemetry sources —
	// its tm.Stats, the governor built here (if any), the attached trace
	// sink and profiler, and the kernel's degraded/pressure gauges — with
	// the live telemetry registry under the system's name. Registration is
	// boundary-only (it runs here, before workers start); re-building the
	// same system name replaces its registration, so sweeps keep the live
	// instance current.
	Obs *obs.Registry
}

// metaWords is the simulated-memory slack reserved for protocol metadata
// (ring, signatures, locks).
const metaWords = 1 << 17

// domainExtraWords is the additional metadata a multi-domain Part-HTM
// topology costs beyond metaWords: each domain past the first brings its
// own ring (entries plus the timestamp line) and write-locks signature,
// and every domain's chunk-aligned allocation arena can waste up to one
// chunk of alignment slack. Zero for single-domain topologies, so their
// memory layout — and every golden result — is unchanged.
func domainExtraWords(cfg core.Config) int {
	if cfg.Domains <= 1 {
		return 0
	}
	per := cfg.RingSize*ring.EntryWords + mem.LineWords + sig.Lines*mem.LineWords
	return (cfg.Domains-1)*per + (cfg.Domains+1)*domain.ChunkWords
}

// engineConfig resolves the hardware model for the options.
func (o BuildOptions) engineConfig() htm.Config {
	var cfg htm.Config
	if o.Engine != nil {
		cfg = *o.Engine
	} else {
		cfg = htm.DefaultConfig()
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.PhysCores > 0 && o.Threads > o.PhysCores {
		cfg = cfg.Oversubscribed()
	}
	return cfg
}

// buildEngine constructs the hardware engine over a fresh memory of the
// given size, installing the fault injector when one is configured.
func (o BuildOptions) buildEngine(words int) *htm.Engine {
	eng := htm.New(mem.New(words), o.engineConfig())
	if o.Fault != nil {
		fcfg := *o.Fault
		if fcfg.Threads < o.Threads {
			fcfg.Threads = o.Threads
		}
		eng.SetInjector(fault.New(fcfg))
	}
	return eng
}

// Build constructs the named system over a fresh memory sized for the
// options.
func Build(name string, o BuildOptions) tm.System {
	sys := build(name, o)
	if o.Trace != nil {
		if ts, ok := sys.(interface{ SetTrace(*trace.Sink) }); ok {
			ts.SetTrace(o.Trace)
		}
	}
	var gov *governor.Governor
	if o.Governor != nil {
		if gs, ok := sys.(interface{ SetGovernor(*governor.Governor) }); ok {
			gov = governor.New(*o.Governor)
			gs.SetGovernor(gov)
		}
	}
	if o.Profile != nil {
		if ps, ok := sys.(interface{ SetProfile(*prof.Profile) }); ok {
			ps.SetProfile(o.Profile)
		}
		// Sharded-domain topologies key abort heat by memory domain too.
		if cs, ok := sys.(*core.System); ok && cs.Domains() > 1 {
			ds := cs.DomainSet()
			o.Profile.SetDomainRouter(cs.Domains(), func(line uint32) int {
				return ds.Of(mem.Addr(line) * mem.LineWords)
			})
		} else {
			o.Profile.SetDomainRouter(0, nil)
		}
	}
	RegisterObs(o.Obs, name, sys, gov, o.Trace, o.Profile)
	return sys
}

// RegisterObs registers sys's telemetry sources with reg under name (nil
// reg is a no-op). Callers that attach their own governor after Build —
// the soak campaigns do — use it directly so the registry sees the
// governor actually driving the run. Boundary-only.
func RegisterObs(reg *obs.Registry, name string, sys tm.System, gov *governor.Governor, sink *trace.Sink, p *prof.Profile) {
	if reg == nil {
		return
	}
	src := obs.Source{Stats: sys.Stats(), Gov: gov, Sink: sink, Prof: p}
	if kg, ok := sys.(obs.KernelGauges); ok {
		src.Kernel = kg
	}
	reg.Register(name, src)
}

func build(name string, o BuildOptions) tm.System {
	coreCfg := core.DefaultConfig()
	if o.Core != nil {
		coreCfg = *o.Core
	}
	words := o.DataWords + metaWords + domainExtraWords(coreCfg)
	switch name {
	case "Sequential":
		return seq.New(mem.New(words))
	case "NOrec":
		return norec.New(mem.New(words), o.Threads)
	case "RingSTM":
		return ringstm.New(mem.New(words), o.Threads, coreCfg.RingSize)
	case "HTM-GL":
		return htmgl.New(o.buildEngine(words), htmgl.DefaultConfig())
	case "NOrecRH":
		return norecrh.New(o.buildEngine(words), o.Threads, norecrh.DefaultConfig())
	case "Part-HTM":
		return core.New(o.buildEngine(words), o.Threads, coreCfg)
	case "Part-HTM-no-fast":
		cfg := coreCfg
		cfg.NoFastPath = true
		return core.New(o.buildEngine(words), o.Threads, cfg)
	case "Part-HTM-O":
		cfg := coreCfg
		cfg.Opaque = true
		// The opaque shadow occupies the top half of the memory.
		return core.New(o.buildEngine(2*words+2*mem.LineWords), o.Threads, cfg)
	}
	panic(fmt.Sprintf("harness: unknown system %q", name))
}

// EngineOf returns the HTM engine behind a system, or nil for pure-software
// systems.
func EngineOf(sys tm.System) *htm.Engine {
	switch s := sys.(type) {
	case *core.System:
		return s.Engine()
	case *htmgl.System:
		return s.Engine()
	case *norecrh.System:
		return s.Engine()
	}
	return nil
}

// OpFunc executes one transaction on behalf of a thread.
type OpFunc func(thread int, rng *rand.Rand)

// ThroughputResult reports one throughput data point.
type ThroughputResult struct {
	// OpsPerSec is the raw committed-transactions-per-second as measured on
	// this host.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Projected is the Amdahl projection of OpsPerSec onto `threads` cores:
	// on a single-core host, N timesharing threads measure total work, and
	// the measured globally-serial time (tm.Stats.SerialNanos) is the part
	// that would not parallelize. Estimated N-core wall time is
	// serial + (measured-serial)/N. On a host with as many cores as
	// threads, Projected converges to OpsPerSec.
	Projected float64 `json:"projected"`
}

// Throughput drives op from the given number of threads for roughly the
// given duration (after a warm-up of a tenth of it) and returns committed
// operations per second, raw and projected (see ThroughputResult).
func Throughput(sys tm.System, op OpFunc, threads int, duration time.Duration, seed int64) ThroughputResult {
	warm := duration / 10
	run := func(d time.Duration) uint64 {
		// One result slot per worker, summed after the join: no mutex on
		// the result path, no shared cache line during the run.
		counts := make([]uint64, threads)
		var wg sync.WaitGroup
		deadline := time.Now().Add(d)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)*6151))
				var n uint64
				for {
					op(id, rng)
					n++
					// Checking the clock every iteration makes the timing
					// syscall dominate short transactions; every 64 ops is
					// accurate to well under the warm-up slack.
					if n&63 == 0 && !time.Now().Before(deadline) {
						break
					}
				}
				counts[id] = n
			}(t)
		}
		wg.Wait()
		var total uint64
		for _, n := range counts {
			total += n
		}
		return total
	}
	if warm > 0 {
		run(warm)
	}
	serial0 := sys.Stats().SerialNanos()
	start := time.Now()
	ops := run(duration)
	wall := time.Since(start)
	serial := time.Duration(sys.Stats().SerialNanos() - serial0)
	return project(float64(ops), wall, serial, threads, runtime.GOMAXPROCS(0))
}

// project converts a measured (ops, wall, serial) triple into raw and
// projected rates.
func project(ops float64, wall, serial time.Duration, threads, hostCores int) ThroughputResult {
	raw := ops / wall.Seconds()
	if serial > wall {
		serial = wall
	}
	// The measured window already exploited hostCores of parallelism; the
	// parallelizable work in CPU-seconds is (wall - serial) * min(threads,
	// hostCores).
	effective := hostCores
	if threads < effective {
		effective = threads
	}
	parallelCPU := (wall - serial).Seconds() * float64(effective)
	projWall := serial.Seconds() + parallelCPU/float64(threads)
	if projWall <= 0 {
		return ThroughputResult{OpsPerSec: raw, Projected: raw}
	}
	return ThroughputResult{OpsPerSec: raw, Projected: ops / projWall}
}

// TimeApp times one full App run (Setup excluded) on the given system.
func TimeApp(app stamp.App, sys tm.System, threads int) time.Duration {
	app.Setup(sys)
	start := time.Now()
	app.Run(threads)
	elapsed := time.Since(start)
	if err := app.Validate(); err != nil {
		panic(fmt.Sprintf("harness: %s failed validation on %s: %v", app.Name(), sys.Name(), err))
	}
	return elapsed
}

// SpeedupResult reports one speed-up data point, raw and projected (same
// model as ThroughputResult).
type SpeedupResult struct {
	Raw       float64
	Projected float64
}

// Speedup runs the app factory sequentially and then on the named system
// with the given thread count, returning seqTime/parTime (the Figure 5/6
// metric), both as measured on this host and projected onto `threads`
// cores.
func Speedup(mkApp func() stamp.App, sysName string, threads int, o BuildOptions) SpeedupResult {
	seqApp := mkApp()
	o.DataWords = seqApp.MemWords()
	seqTime := TimeApp(seqApp, Build("Sequential", o), 1)

	parApp := mkApp()
	o.DataWords = parApp.MemWords()
	o.Threads = threads
	sys := Build(sysName, o)
	parTime := TimeApp(parApp, sys, threads)
	serial := time.Duration(sys.Stats().SerialNanos())
	p := project(1, parTime, serial, threads, runtime.GOMAXPROCS(0))
	projWall := 1 / p.Projected
	return SpeedupResult{
		Raw:       seqTime.Seconds() / parTime.Seconds(),
		Projected: seqTime.Seconds() / projWall,
	}
}

// Series is one plotted line: a value per thread count.
type Series struct {
	System string    `json:"system"`
	Values []float64 `json:"values"`
}

// Table is one figure's data: thread counts on the x axis, one series per
// system.
type Table struct {
	Title   string   `json:"title"`
	Metric  string   `json:"metric"`
	Threads []int    `json:"threads"`
	Series  []Series `json:"series"`
}

// Format renders the table as aligned text, one row per thread count.
func (t *Table) Format() string {
	out := fmt.Sprintf("# %s (%s)\n", t.Title, t.Metric)
	out += fmt.Sprintf("%-8s", "threads")
	for _, s := range t.Series {
		out += fmt.Sprintf("%18s", s.System)
	}
	out += "\n"
	for i, th := range t.Threads {
		out += fmt.Sprintf("%-8d", th)
		for _, s := range t.Series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			out += fmt.Sprintf("%18.3f", v)
		}
		out += "\n"
	}
	return out
}

// Best returns, per thread count, the winning system (for quick shape
// checks in tests).
func (t *Table) Best() []string {
	best := make([]string, len(t.Threads))
	for i := range t.Threads {
		bi, bv := -1, -1.0
		for si, s := range t.Series {
			if i < len(s.Values) && s.Values[i] > bv {
				bi, bv = si, s.Values[i]
			}
		}
		if bi >= 0 {
			best[i] = t.Series[bi].System
		}
	}
	return best
}

// SortSeries orders the series to match the paper's legend order.
func (t *Table) SortSeries() {
	order := map[string]int{}
	for i, n := range AllSystemNames {
		order[n] = i
	}
	sort.SliceStable(t.Series, func(i, j int) bool {
		return order[t.Series[i].System] < order[t.Series[j].System]
	})
}
