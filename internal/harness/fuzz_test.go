package harness

import (
	"encoding/json"
	"testing"
)

// FuzzResultSetDecode hammers DecodeResultSet with corrupted, truncated,
// and adversarial documents. The contract under test: malformed input
// errors, it never panics, and anything accepted re-encodes cleanly.
func FuzzResultSetDecode(f *testing.F) {
	full, err := json.MarshalIndent(&ResultSet{Results: []*Result{sampleResult()}}, "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(full[:len(full)/2])    // truncated mid-document
	f.Add(append(full, full...)) // trailing second document
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"results": null}`))
	f.Add([]byte(`{"results": [{"id": 3}]}`)) // wrong field type
	f.Add([]byte(`{"surprise": true}`))       // unknown field
	f.Add([]byte(`{"results": [{"stats": {}}]}`))
	f.Add([]byte("\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := DecodeResultSet(data)
		if err != nil {
			return // rejected cleanly: exactly the contract
		}
		if set == nil {
			t.Fatal("DecodeResultSet returned nil set and nil error")
		}
		if _, err := json.Marshal(set); err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
	})
}
