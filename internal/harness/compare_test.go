package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/tm"
)

// sweepSet builds a minimal chaos-shaped ResultSet with the given projected
// throughput and abort counts per (system, rate) row.
func sweepSet(id string, rows []SystemReport) *ResultSet {
	return &ResultSet{Results: []*Result{{ID: id, Reports: rows}}}
}

func sweepRow(system string, rate, proj float64, commits, aborts uint64) SystemReport {
	return SystemReport{
		System: system, Threads: 4, FaultRate: rate,
		Throughput: &ThroughputResult{OpsPerSec: proj, Projected: proj},
		Stats:      tm.Snapshot{CommitsHTM: commits, AbortsConflict: aborts},
	}
}

// TestCompareResultSets: matched rows render throughput and abort-rate
// deltas; rows present on only one side are listed as unmatched.
func TestCompareResultSets(t *testing.T) {
	oldSet := sweepSet("chaos", []SystemReport{
		sweepRow("Part-HTM", 0, 100_000, 90, 10), // 10% aborts
		sweepRow("Part-HTM", 0.5, 50_000, 50, 50),
		sweepRow("HTM-GL", 0, 200_000, 100, 0),
	})
	newSet := sweepSet("chaos", []SystemReport{
		sweepRow("Part-HTM", 0, 110_000, 80, 20), // 20% aborts
		sweepRow("Part-HTM", 0.5, 50_000, 50, 50),
		sweepRow("NOrecRH", 0, 40_000, 10, 0),
	})
	out, err := CompareResultSets(oldSet, newSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"+10.0%",   // Part-HTM rate 0: 100k -> 110k
		"+10.00pp", // abort rate 10% -> 20%
		"+0.0%",    // unchanged row
		"# only in old: chaos/HTM-GL@4/0.00",
		"# only in new: chaos/NOrecRH@4/0.00",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("compare output missing %q:\n%s", needle, out)
		}
	}
}

// TestCompareResultSetsNoOverlap: disjoint experiment sets and table-only
// artifacts must yield clear errors, not empty output.
func TestCompareResultSetsNoOverlap(t *testing.T) {
	a := sweepSet("chaos", []SystemReport{sweepRow("Part-HTM", 0, 1, 1, 0)})
	b := sweepSet("table1", []SystemReport{sweepRow("Part-HTM", 0, 1, 1, 0)})
	if _, err := CompareResultSets(a, b); err == nil ||
		!strings.Contains(err.Error(), "no comparable reports") {
		t.Fatalf("disjoint sets: err = %v", err)
	}

	tables := &ResultSet{Results: []*Result{{ID: "fig3a", Tables: []Table{goldenTable()}}}}
	if _, err := CompareResultSets(tables, tables); err == nil ||
		!strings.Contains(err.Error(), "reports") {
		t.Fatalf("tables-only sets: err = %v", err)
	}
}

// TestCompareTaxonomyRows: rows without throughput (Table 1 shape) compare
// abort rates and render "-" for the missing throughput columns.
func TestCompareTaxonomyRows(t *testing.T) {
	row := SystemReport{System: "Part-HTM", Threads: 4,
		Stats: tm.Snapshot{CommitsHTM: 75, AbortsCapacity: 25}}
	set := sweepSet("table1", []SystemReport{row})
	out, err := CompareResultSets(set, set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-") || !strings.Contains(out, "25.00%") {
		t.Fatalf("taxonomy compare output:\n%s", out)
	}
}

// TestCompareDecodedArtifacts: the compare path consumes what -json emits —
// encode a sample, decode it strictly, and compare it against itself.
func TestCompareDecodedArtifacts(t *testing.T) {
	set := ResultSet{Results: []*Result{sampleResult()}}
	data, err := json.MarshalIndent(&set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResultSet(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := CompareResultSets(dec, dec)
	if err != nil {
		t.Fatal(err)
	}
	// Self-comparison: every delta is zero.
	if !strings.Contains(out, "+0.0%") || !strings.Contains(out, "+0.00pp") {
		t.Fatalf("self-compare output:\n%s", out)
	}
}
