package nrmw

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/tm"
)

func smallCfg() Config {
	return Config{ArraySize: 4096, N: 10, M: 10, PartitionEvery: 5}
}

func newPartHTM(words, threads int) tm.System {
	ecfg := htm.DefaultConfig()
	ecfg.ReadEvictProb = 0
	eng := htm.New(mem.New(words), ecfg)
	return core.New(eng, threads, core.DefaultConfig())
}

func newHTMGL(words int) tm.System {
	ecfg := htm.DefaultConfig()
	ecfg.ReadEvictProb = 0
	eng := htm.New(mem.New(words), ecfg)
	return htmgl.New(eng, htmgl.DefaultConfig())
}

func TestConfigsMatchPaper(t *testing.T) {
	a, b, c := Fig3a(), Fig3b(), Fig3c()
	if a.N != 10 || a.M != 10 || a.ArraySize != 100_000 {
		t.Errorf("Fig3a = %+v", a)
	}
	if b.N != 100_000 || b.M != 100 {
		t.Errorf("Fig3b = %+v", b)
	}
	if !c.IterMode || c.N != 100 || c.PartitionEvery != 25 {
		t.Errorf("Fig3c = %+v", c)
	}
}

func TestOpRunsAndWrites(t *testing.T) {
	cfg := smallCfg()
	sys := newPartHTM(cfg.MemWords()+1<<17, 4)
	b := New(sys, 4, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		b.Op(0, rng)
	}
	if st := sys.Stats().Snapshot(); st.Commits() != 50 {
		t.Fatalf("commits = %d, want 50", st.Commits())
	}
	// At least one destination slot must have been written.
	wrote := false
	m := sys.Memory()
	for i := 0; i < cfg.ArraySize; i++ {
		if m.Load(b.dst+mem.Addr(i)) != 0 {
			wrote = true
			break
		}
	}
	if !wrote {
		t.Fatal("no destination writes observed")
	}
}

func TestIterModeWritesSrcPlusOne(t *testing.T) {
	cfg := Config{ArraySize: 2048, N: 20, IterMode: true, WorkPerIter: 10, PartitionEvery: 5}
	sys := newPartHTM(cfg.MemWords()+1<<17, 2)
	b := New(sys, 2, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		b.Op(0, rng)
	}
	ok := b.VerifyDst(func(i int, v uint64) bool {
		return v == uint64(i)+2 // src[i] = i+1, dst[i] = src[i]+1
	})
	if !ok {
		t.Fatal("IterMode destination values wrong")
	}
}

func TestDisjointThreadsNoConflictAborts(t *testing.T) {
	cfg := Config{ArraySize: 8192, N: 10, M: 10, PartitionEvery: 0}
	sys := newHTMGL(cfg.MemWords() + 1<<16)
	b := New(sys, 4, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 100; i++ {
				b.Op(id, rng)
			}
		}(w)
	}
	wg.Wait()
	st := sys.Stats().Snapshot()
	if st.Commits() != 400 {
		t.Fatalf("commits = %d", st.Commits())
	}
	// Disjoint small transactions on HTM: essentially every commit should
	// be in hardware.
	if st.CommitsHTM < 390 {
		t.Fatalf("hardware commits = %d of 400; disjointness broken?", st.CommitsHTM)
	}
}

func TestBigReadSetFallsBackWithoutPartitioning(t *testing.T) {
	// Read set above the hard budget: HTM-GL must use the lock.
	cfg := Config{ArraySize: 8192, N: 8192, M: 1, PartitionEvery: 0}
	ecfg := htm.DefaultConfig()
	ecfg.ReadLinesSoft = 64
	ecfg.ReadLinesHard = 256
	eng := htm.New(mem.New(cfg.MemWords()+1<<16), ecfg)
	sys := htmgl.New(eng, htmgl.DefaultConfig())
	b := New(sys, 1, cfg)
	b.Op(0, rand.New(rand.NewSource(3)))
	st := sys.Stats().Snapshot()
	if st.CommitsGL != 1 {
		t.Fatalf("want GL commit for oversized read set, got %+v", st)
	}
	if st.AbortsCapacity == 0 {
		t.Fatal("expected capacity aborts")
	}
}

func TestPartitioningKeepsBigReadSetInHardwarePieces(t *testing.T) {
	cfg := Config{ArraySize: 8192, N: 8192, M: 1, PartitionEvery: 256}
	ecfg := htm.DefaultConfig()
	ecfg.ReadLinesSoft = 64
	ecfg.ReadLinesHard = 256
	eng := htm.New(mem.New(cfg.MemWords()+1<<17), ecfg)
	sys := core.New(eng, 1, core.DefaultConfig())
	b := New(sys, 1, cfg)
	b.Op(0, rand.New(rand.NewSource(3)))
	st := sys.Stats().Snapshot()
	if st.CommitsSW != 1 {
		t.Fatalf("want partitioned commit, got %+v", st)
	}
}
