// Package nrmw implements the N-Reads M-Writes micro-benchmark from the
// RSTM suite, used by the paper for Figure 3.
//
// Each transaction reads N elements from a source array and writes M
// elements to a destination array, both of a fixed size (100k elements in
// the paper). Accesses are disjoint across threads — each thread owns a
// slice of the index space — so aborts from true conflicts are minimized
// and the resource-limitation behaviour is isolated, exactly as the paper
// configures it.
//
// Three shapes reproduce the three sub-figures:
//
//   - Figure 3(a): N = M = 10 — everything fits in hardware.
//   - Figure 3(b): N = 100k, M = 100 — a read-dominated workload whose read
//     set exceeds the L1 but survives in hardware until shared-cache
//     pressure (beyond 8 threads) evicts it.
//   - Figure 3(c): IterMode — N iterations of {read, floating-point work,
//     write the same entry of the destination}, long in time rather than
//     space, partitioned every PartitionEvery iterations (25 in the paper).
package nrmw

import (
	"math/rand"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes one N-Reads M-Writes shape.
type Config struct {
	// ArraySize is the element count of the source and destination arrays.
	ArraySize int
	// N is the number of reads per transaction; M the number of writes.
	N, M int
	// IterMode switches to the Figure 3(c) shape: N iterations of
	// {read src[i], Work(WorkPerIter), write dst[i]}; M is ignored.
	IterMode bool
	// WorkPerIter is the transactional computation (cycles) between the
	// read and the write of an iteration (IterMode only).
	WorkPerIter int64
	// PartitionEvery inserts a partition point (tm.Tx.Pause) after this
	// many operations (reads in normal mode, iterations in IterMode);
	// zero disables partitioning.
	PartitionEvery int
}

// Fig3a returns the Figure 3(a) configuration: N=M=10 on 100k elements.
func Fig3a() Config {
	return Config{ArraySize: 100_000, N: 10, M: 10, PartitionEvery: 5}
}

// Fig3b returns the Figure 3(b) configuration: 100k reads, 100 writes.
func Fig3b() Config {
	return Config{ArraySize: 100_000, N: 100_000, M: 100, PartitionEvery: 8192}
}

// Fig3c returns the Figure 3(c) configuration: 100 iterations of
// read+work+write, partitioned every 25 (four sub-transactions, as in the
// paper).
func Fig3c() Config {
	return Config{ArraySize: 100_000, N: 100, IterMode: true, WorkPerIter: 1800, PartitionEvery: 25}
}

// Bench is an instantiated N-Reads M-Writes benchmark bound to a system.
type Bench struct {
	sys     tm.System
	cfg     Config
	threads int
	src     mem.Addr
	dst     mem.Addr
}

// New allocates the arrays in the system's memory and returns the bench.
// threads is the maximum number of concurrent threads (for the disjoint
// index partitioning).
func New(sys tm.System, threads int, cfg Config) *Bench {
	m := sys.Memory()
	b := &Bench{
		sys:     sys,
		cfg:     cfg,
		threads: threads,
		src:     m.AllocAligned(cfg.ArraySize),
		dst:     m.AllocAligned(cfg.ArraySize),
	}
	for i := 0; i < cfg.ArraySize; i++ {
		m.Store(b.src+mem.Addr(i), uint64(i)+1)
	}
	return b
}

// MemWords returns the simulated-memory footprint (words) a Config needs,
// for sizing the memory before the system is created.
func (c Config) MemWords() int { return 2*c.ArraySize + 4*mem.LineWords }

// indices fills idx with distinct element indices from the calling thread's
// disjoint slice of the array.
func (b *Bench) indices(thread int, rng *rand.Rand, idx []int) {
	chunk := b.cfg.ArraySize / b.threads
	if chunk < len(idx) {
		chunk = len(idx) // degenerate config: allow overlap rather than loop forever
	}
	base := (thread * chunk) % (b.cfg.ArraySize - chunk + 1)
	if len(idx) >= chunk {
		// Dense: take the whole chunk in order (the Figure 3(b) shape reads
		// every element of the thread's slice).
		for i := range idx {
			idx[i] = base + i%chunk
		}
		return
	}
	for i := range idx {
		idx[i] = base + rng.Intn(chunk)
	}
}

// Op executes one transaction on behalf of thread.
func (b *Bench) Op(thread int, rng *rand.Rand) {
	if b.cfg.IterMode {
		b.opIter(thread, rng)
		return
	}
	readIdx := make([]int, b.cfg.N)
	writeIdx := make([]int, b.cfg.M)
	b.indices(thread, rng, readIdx)
	b.indices(thread, rng, writeIdx)
	pe := b.cfg.PartitionEvery
	b.sys.Atomic(thread, func(x tm.Tx) {
		var acc uint64
		for i, k := range readIdx {
			acc += x.Read(b.src + mem.Addr(k))
			if pe > 0 && (i+1)%pe == 0 {
				x.Pause()
			}
		}
		for i, k := range writeIdx {
			x.Write(b.dst+mem.Addr(k), acc+uint64(i))
			if pe > 0 && (i+1)%pe == 0 {
				x.Pause()
			}
		}
	})
}

// opIter is the Figure 3(c) shape: read src[k], compute, write dst[k].
func (b *Bench) opIter(thread int, rng *rand.Rand) {
	idx := make([]int, b.cfg.N)
	b.indices(thread, rng, idx)
	pe := b.cfg.PartitionEvery
	w := b.cfg.WorkPerIter
	b.sys.Atomic(thread, func(x tm.Tx) {
		for i, k := range idx {
			v := x.Read(b.src + mem.Addr(k))
			x.Work(w)
			x.Write(b.dst+mem.Addr(k), v+1)
			if pe > 0 && (i+1)%pe == 0 && i+1 < len(idx) {
				x.Pause()
			}
		}
	})
}

// VerifyDst checks that every written destination slot carries a plausible
// value (IterMode writes src[k]+1 = k+2 into dst[k]); used by tests.
func (b *Bench) VerifyDst(check func(i int, v uint64) bool) bool {
	m := b.sys.Memory()
	for i := 0; i < b.cfg.ArraySize; i++ {
		v := m.Load(b.dst + mem.Addr(i))
		if v != 0 && !check(i, v) {
			return false
		}
	}
	return true
}
