// Package domwrite is the sharded-domain micro-benchmark: write-heavy
// transactions whose data is routed into per-thread home domains, with a
// tunable fraction of transactions additionally writing into a neighbour
// domain (cross-domain commits).
//
// Each thread owns two private arrays: a home array allocated in its home
// domain (thread mod N) and an away array allocated in the next domain
// around the ring. A transaction increments a run of words in the home
// array — partitioned into a few sub-HTM transactions — and, with
// probability Cross, also increments a word in the away array, forcing the
// commit to span two domains. Arrays are thread-private, so true data
// conflicts are zero by construction: all contention is on protocol
// metadata (the ring timestamp CAS, ring validation scans, and write-locks
// signature false sharing). That isolates exactly what sharded domains are
// supposed to relieve — on a single-domain topology every thread hammers
// the one ring and the one write-locks signature; with N domains and
// Cross=0 each thread's commits touch only its home domain's metadata.
//
// On systems without sharded domains (everything but Part-HTM variants
// with Config.Domains > 1) the allocation falls back to plain memory and
// every access takes domain-0 semantics; the workload still runs and
// measures the shared-metadata baseline.
package domwrite

import (
	"math/rand"

	"repro/internal/domain"
	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes one domwrite shape.
type Config struct {
	// Domains is the domain count the topology runs (used for routing the
	// per-thread arrays; 0 and 1 mean the single-domain layout).
	Domains int
	// Threads is the worker count the arrays are sized and routed for.
	Threads int
	// LinesPerThread is each per-thread array's size in cache lines.
	LinesPerThread int
	// Writes is the number of read-modify-write word operations per
	// transaction in the home array.
	Writes int
	// PartitionEvery inserts a partition point (tm.Tx.Pause) after this
	// many writes; zero disables partitioning.
	PartitionEvery int
	// Cross is the probability that a transaction also writes one word in
	// the neighbour domain's away array, making its commit cross-domain.
	Cross float64
}

// Default returns the write-heavy shape the domains experiment sweeps:
// small transactions (two sub-HTM segments) so commit-time metadata work
// dominates, which is the contention sharded domains are meant to cut.
func Default(domains, threads int) Config {
	return Config{
		Domains:        domains,
		Threads:        threads,
		LinesPerThread: 256,
		Writes:         4,
		PartitionEvery: 2,
		Cross:          0,
	}
}

// domainAllocator is implemented by systems whose memory is sharded into
// domains (core.System); everything else gets the plain-allocation
// fallback.
type domainAllocator interface {
	DomainSet() *domain.Domains
}

// Bench is an instantiated domwrite benchmark bound to a system.
type Bench struct {
	sys tm.System
	cfg Config
	// home[t] and away[t] are thread t's array bases: home in domain
	// t mod N, away in domain (t+1) mod N.
	home []mem.Addr
	away []mem.Addr
}

// MemWords returns the simulated-memory footprint (words) a Config needs.
// Chunk-aligned domain arenas can each waste up to a chunk of slack, and
// every grab rounds up to whole chunks, so the bound is deliberately
// generous — simulated memory is cheap.
func (c Config) MemWords() int {
	perArray := (c.LinesPerThread + domain.ChunkLines) * mem.LineWords
	return 2*c.Threads*perArray + (c.Domains+2)*domain.ChunkWords
}

// New allocates the per-thread arrays — routed into their domains when the
// system is sharded — and returns the bench.
func New(sys tm.System, cfg Config) *Bench {
	n := cfg.Domains
	if n <= 0 {
		n = 1
	}
	b := &Bench{
		sys:  sys,
		cfg:  cfg,
		home: make([]mem.Addr, cfg.Threads),
		away: make([]mem.Addr, cfg.Threads),
	}
	if da, ok := sys.(domainAllocator); ok && da.DomainSet().N() == n {
		ds := da.DomainSet()
		for t := 0; t < cfg.Threads; t++ {
			b.home[t] = ds.AllocLinesIn(t%n, cfg.LinesPerThread)
			b.away[t] = ds.AllocLinesIn((t+1)%n, cfg.LinesPerThread)
		}
		return b
	}
	m := sys.Memory()
	for t := 0; t < cfg.Threads; t++ {
		b.home[t] = m.AllocLines(cfg.LinesPerThread)
		b.away[t] = m.AllocLines(cfg.LinesPerThread)
	}
	return b
}

// Op executes one transaction on behalf of thread: Writes read-modify-write
// operations walking a random run of the thread's home array, partitioned
// every PartitionEvery writes, plus — with probability Cross — one
// increment in the away array (a cross-domain commit on sharded
// topologies).
func (b *Bench) Op(thread int, rng *rand.Rand) {
	words := b.cfg.LinesPerThread * mem.LineWords
	start := rng.Intn(words)
	cross := b.cfg.Cross > 0 && rng.Float64() < b.cfg.Cross
	crossIdx := rng.Intn(words)
	home, away := b.home[thread], b.away[thread]
	pe := b.cfg.PartitionEvery
	b.sys.Atomic(thread, func(x tm.Tx) {
		for i := 0; i < b.cfg.Writes; i++ {
			a := home + mem.Addr((start+i)%words)
			x.Write(a, x.Read(a)+1)
			if pe > 0 && (i+1)%pe == 0 && i+1 < b.cfg.Writes {
				x.Pause()
			}
		}
		if cross {
			a := away + mem.Addr(crossIdx)
			x.Write(a, x.Read(a)+1)
		}
	})
}

// Sum loads the grand total of both arrays' words — every committed
// transaction adds exactly Writes (+1 when cross-domain) to it, so tests
// can check conservation against the committed-operation count.
func (b *Bench) Sum() uint64 {
	m := b.sys.Memory()
	words := b.cfg.LinesPerThread * mem.LineWords
	var total uint64
	for t := 0; t < b.cfg.Threads; t++ {
		for i := 0; i < words; i++ {
			total += m.Load(b.home[t] + mem.Addr(i))
			total += m.Load(b.away[t] + mem.Addr(i))
		}
	}
	return total
}
