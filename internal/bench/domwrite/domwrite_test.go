package domwrite

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

func newSystem(t *testing.T, domains, threads int, words int) *core.System {
	t.Helper()
	ecfg := htm.DefaultConfig()
	ecfg.Quantum = 0
	ecfg.ReadEvictProb = 0
	cfg := core.DefaultConfig()
	cfg.NoFastPath = true
	cfg.Domains = domains
	eng := htm.New(mem.New(words), ecfg)
	return core.New(eng, threads, cfg)
}

// TestConservation runs the workload concurrently on sharded and
// single-domain topologies and checks the books: the grand total over both
// arrays must equal the committed write count exactly (every committed
// transaction adds Writes, plus one when it went cross-domain).
func TestConservation(t *testing.T) {
	for _, nd := range []int{1, 4} {
		cfg := Default(nd, 4)
		cfg.LinesPerThread = 16
		cfg.Cross = 0.3
		sys := newSystem(t, nd, 4, cfg.MemWords()+1<<17)
		b := New(sys, cfg)

		const opsPerThread = 300
		var wg sync.WaitGroup
		for th := 0; th < 4; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(th + 1)))
				for i := 0; i < opsPerThread; i++ {
					b.Op(th, rng)
				}
			}(th)
		}
		wg.Wait()

		// 4 threads * opsPerThread transactions, Writes increments each,
		// plus one per cross transaction. Recompute the expected total from
		// the same deterministic per-thread rng streams.
		var want uint64
		for th := 0; th < 4; th++ {
			rng := rand.New(rand.NewSource(int64(th + 1)))
			for i := 0; i < opsPerThread; i++ {
				rng.Intn(16 * mem.LineWords) // start
				cross := cfg.Cross > 0 && rng.Float64() < cfg.Cross
				rng.Intn(16 * mem.LineWords) // crossIdx
				want += uint64(cfg.Writes)
				if cross {
					want++
				}
			}
		}
		if got := b.Sum(); got != want {
			t.Fatalf("nd=%d: sum=%d want=%d", nd, got, want)
		}
	}
}

// TestRoutedAllocation: on a sharded system the home array of thread t
// lives in domain t mod N and the away array in the next domain; on a
// single-domain system everything routes to domain 0.
func TestRoutedAllocation(t *testing.T) {
	cfg := Default(4, 4)
	cfg.LinesPerThread = 8
	sys := newSystem(t, 4, 4, cfg.MemWords()+1<<17)
	b := New(sys, cfg)
	ds := sys.DomainSet()
	for th := 0; th < 4; th++ {
		if got, want := ds.Of(b.home[th]), th%4; got != want {
			t.Fatalf("home[%d] in domain %d, want %d", th, got, want)
		}
		if got, want := ds.Of(b.away[th]), (th+1)%4; got != want {
			t.Fatalf("away[%d] in domain %d, want %d", th, got, want)
		}
	}
}

// TestFallbackAllocation: a system without matching sharding (here: the
// bench asks for 4 domains on a 1-domain system) falls back to plain
// allocation and still runs.
func TestFallbackAllocation(t *testing.T) {
	cfg := Default(4, 2)
	cfg.LinesPerThread = 8
	sys := newSystem(t, 1, 2, cfg.MemWords()+1<<17)
	b := New(sys, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		b.Op(0, rng)
	}
	if b.Sum() == 0 {
		t.Fatal("fallback system committed nothing")
	}
}

var _ tm.System = (*core.System)(nil)
