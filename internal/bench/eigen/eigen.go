// Package eigen implements an EigenBench-style configurable workload (Hong
// et al., IISWC 2010), used by the paper for Figure 6.
//
// A transaction performs a configurable number of reads and writes against
// a shared "hot" array, optionally interleaved with non-transactional
// computation (the orthogonal "pollution"/working-set knobs of EigenBench
// collapse here to the parameters the paper actually varies):
//
//   - Figure 6(a): a 1024-word array, 50% long transactions (non-
//     transactional computation between operations) and 50% short ones,
//     disjoint accesses.
//   - Figure 6(b): a 32K-word hot array, 10K reads and 100 writes per
//     transaction with 50% repeated accesses, shared (contended) indices.
package eigen

import (
	"math/rand"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes an EigenBench workload.
type Config struct {
	// HotWords is the size of the shared transactional array.
	HotWords int
	// Reads and Writes are per-transaction operation counts.
	Reads, Writes int
	// LongFraction in [0,100]: percentage of transactions that interleave
	// NonTxWorkPerOp of non-transactional computation between operations.
	LongFraction int
	// NonTxWorkPerOp is the computation (cycles) between operations of a
	// long transaction.
	NonTxWorkPerOp int64
	// RepeatPercent in [0,100]: share of accesses that reuse an earlier
	// index of the same transaction (temporal locality knob).
	RepeatPercent int
	// Disjoint partitions the index space across threads (no true
	// conflicts); contended workloads share the whole array.
	Disjoint bool
	// PartitionEvery inserts a Pause after this many operations.
	PartitionEvery int
}

// Fig6a returns the Figure 6(a) configuration.
func Fig6a() Config {
	return Config{
		HotWords:       1024,
		Reads:          50,
		Writes:         5,
		LongFraction:   50,
		NonTxWorkPerOp: 3500,
		Disjoint:       true,
		PartitionEvery: 14,
	}
}

// Fig6b returns the Figure 6(b) high-contention configuration.
func Fig6b() Config {
	return Config{
		HotWords:       32 * 1024,
		Reads:          10_000,
		Writes:         100,
		RepeatPercent:  50,
		Disjoint:       false,
		PartitionEvery: 2048,
	}
}

// Bench is an instantiated EigenBench workload.
type Bench struct {
	sys     tm.System
	cfg     Config
	threads int
	hot     mem.Addr
}

// MemWords returns the simulated-memory footprint of the config.
func (c Config) MemWords() int { return c.HotWords + 2*mem.LineWords }

// New allocates the hot array and returns the bench.
func New(sys tm.System, threads int, cfg Config) *Bench {
	return &Bench{
		sys:     sys,
		cfg:     cfg,
		threads: threads,
		hot:     sys.Memory().AllocAligned(cfg.HotWords),
	}
}

// pick returns the next index, honouring the disjointness and repetition
// knobs.
func (b *Bench) pick(thread int, rng *rand.Rand, prev []int) int {
	if b.cfg.RepeatPercent > 0 && len(prev) > 0 && rng.Intn(100) < b.cfg.RepeatPercent {
		return prev[rng.Intn(len(prev))]
	}
	if b.cfg.Disjoint {
		chunk := b.cfg.HotWords / b.threads
		if chunk == 0 {
			chunk = 1
		}
		return (thread*chunk + rng.Intn(chunk)) % b.cfg.HotWords
	}
	return rng.Intn(b.cfg.HotWords)
}

// Op executes one transaction.
func (b *Bench) Op(thread int, rng *rand.Rand) {
	long := rng.Intn(100) < b.cfg.LongFraction
	n := b.cfg.Reads + b.cfg.Writes
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, b.pick(thread, rng, idx))
	}
	pe := b.cfg.PartitionEvery
	work := b.cfg.NonTxWorkPerOp
	reads := b.cfg.Reads
	b.sys.Atomic(thread, func(x tm.Tx) {
		var acc uint64
		for i, k := range idx {
			if i < reads {
				acc += x.Read(b.hot + mem.Addr(k))
			} else {
				x.Write(b.hot+mem.Addr(k), acc+uint64(i))
			}
			if long && work > 0 {
				x.NonTxWork(work)
			}
			if pe > 0 && (i+1)%pe == 0 && i+1 < len(idx) {
				x.Pause()
			}
		}
	})
}
