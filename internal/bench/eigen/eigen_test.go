package eigen

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/tm"
)

func newPartHTM(words, threads int) tm.System {
	ecfg := htm.DefaultConfig()
	ecfg.ReadEvictProb = 0
	eng := htm.New(mem.New(words), ecfg)
	return core.New(eng, threads, core.DefaultConfig())
}

func TestConfigsMatchPaper(t *testing.T) {
	a := Fig6a()
	if a.HotWords != 1024 || a.Reads != 50 || a.Writes != 5 || a.LongFraction != 50 || !a.Disjoint {
		t.Errorf("Fig6a = %+v", a)
	}
	b := Fig6b()
	if b.HotWords != 32*1024 || b.Reads != 10_000 || b.Writes != 100 || b.RepeatPercent != 50 || b.Disjoint {
		t.Errorf("Fig6b = %+v", b)
	}
}

func TestOpCommits(t *testing.T) {
	cfg := Config{HotWords: 1024, Reads: 20, Writes: 5, LongFraction: 50,
		NonTxWorkPerOp: 10, Disjoint: true, PartitionEvery: 8}
	sys := newPartHTM(cfg.MemWords()+1<<17, 2)
	b := New(sys, 2, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		b.Op(0, rng)
	}
	if st := sys.Stats().Snapshot(); st.Commits() != 40 {
		t.Fatalf("commits = %d", st.Commits())
	}
}

func TestRepeatedAccessesStayInRange(t *testing.T) {
	cfg := Config{HotWords: 256, Reads: 50, Writes: 10, RepeatPercent: 90, PartitionEvery: 16}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	b := New(sys, 1, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		b.Op(0, rng) // panics on out-of-range access; completing is the assertion
	}
}

func TestContendedCounterStaysConsistent(t *testing.T) {
	// With a tiny contended array every transaction conflicts; commits must
	// still be exact.
	cfg := Config{HotWords: 8, Reads: 2, Writes: 2, Disjoint: false}
	sys := newPartHTM(cfg.MemWords()+1<<17, 4)
	b := New(sys, 4, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 100; i++ {
				b.Op(id, rng)
			}
		}(w)
	}
	wg.Wait()
	if got := sys.Stats().Commits(); got != 400 {
		t.Fatalf("commits = %d, want 400", got)
	}
}

func TestLongTransactionsPreferPartitionedPathOverGL(t *testing.T) {
	// Long transactions exceed the quantum in one piece; Part-HTM should
	// commit them on the partitioned path, HTM-GL under the lock.
	cfg := Config{HotWords: 1024, Reads: 20, Writes: 5, LongFraction: 100,
		NonTxWorkPerOp: 100, Disjoint: true, PartitionEvery: 6}
	mkEng := func() *htm.Engine {
		ecfg := htm.DefaultConfig()
		ecfg.ReadEvictProb = 0
		ecfg.Quantum = 800
		return htm.New(mem.New(cfg.MemWords()+1<<17), ecfg)
	}
	p := core.New(mkEng(), 1, core.DefaultConfig())
	bp := New(p, 1, cfg)
	g := htmgl.New(mkEng(), htmgl.DefaultConfig())
	bg := New(g, 1, cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		bp.Op(0, rng)
		bg.Op(0, rng)
	}
	if sw := p.Stats().Snapshot().CommitsSW; sw == 0 {
		t.Fatalf("Part-HTM never used the partitioned path: %+v", p.Stats().Snapshot())
	}
	if gl := g.Stats().Snapshot().CommitsGL; gl == 0 {
		t.Fatalf("HTM-GL never fell back to the lock: %+v", g.Stats().Snapshot())
	}
}
