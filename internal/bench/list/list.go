// Package list implements the sorted-linked-list micro-benchmark of the
// paper's Figure 4: a transactional set supporting contains, insert, and
// remove, where every operation traverses the list from the head.
//
// Each node occupies one cache line of simulated memory — as separately
// heap-allocated nodes would on real hardware — so a traversal of a 10K
// list reads ~10K cache lines, far past the HTM read budget: precisely the
// resource-failure shape of Figure 4(b). A 1K list (Figure 4(a)) mostly
// fits, and HTM wins.
package list

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Node layout (one cache line): word 0 = key, word 1 = next (Addr; 0 = nil).
const (
	offKey  = 0
	offNext = 1
)

// Config describes a list benchmark instance.
type Config struct {
	// Size is the initial (and steady-state) number of elements.
	Size int
	// KeyRange is the key universe; keys are drawn uniformly from
	// [0, KeyRange). Defaults to 2*Size.
	KeyRange int
	// WritePercent is the share of update operations (insert+remove,
	// balanced); the rest are contains. The paper uses 50.
	WritePercent int
	// WorkPerHop is the computation (cycles) per traversal hop — the key
	// comparison and pointer chase. It is what makes a 10K-element
	// traversal exceed the timer quantum (the Figure 4(b) resource
	// failures) while a 1K traversal still fits.
	WorkPerHop int64
	// PartitionEvery inserts a Pause after this many traversal hops.
	PartitionEvery int
	// Capacity is the node-pool size; it must cover Size plus every insert
	// performed during the run (nodes are not recycled, mirroring an
	// epoch-based reclaimer that frees outside transactions).
	Capacity int
}

// Fig4a returns the Figure 4(a) configuration: 1K elements, 50% writes.
func Fig4a() Config {
	return Config{Size: 1000, WritePercent: 50, WorkPerHop: 20, PartitionEvery: 256}
}

// Fig4b returns the Figure 4(b) configuration: 10K elements, 50% writes.
func Fig4b() Config {
	return Config{Size: 10_000, WritePercent: 50, WorkPerHop: 20, PartitionEvery: 1024}
}

// List is a transactional sorted linked list bound to a system.
type List struct {
	sys  tm.System
	cfg  Config
	head mem.Addr // head pointer cell (line-aligned)
	pool mem.Addr // node arena
	next atomic.Int64
	cap  int64
}

// MemWords returns the simulated-memory footprint needed for the given
// config (nodes + head + slack).
func (c Config) MemWords() int {
	capacity := c.Capacity
	if capacity == 0 {
		capacity = 4 * c.Size
	}
	return (capacity+2)*mem.LineWords + 2*mem.LineWords
}

// New builds the list, pre-populated with cfg.Size random keys.
func New(sys tm.System, cfg Config) *List {
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 2 * cfg.Size
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 4 * cfg.Size
	}
	m := sys.Memory()
	l := &List{
		sys:  sys,
		cfg:  cfg,
		head: m.AllocLines(1),
		pool: m.AllocLines(cfg.Capacity),
		cap:  int64(cfg.Capacity),
	}
	// Populate sequentially with distinct sorted keys drawn without
	// replacement, linking non-transactionally.
	rng := rand.New(rand.NewSource(42))
	keys := make(map[int]struct{}, cfg.Size)
	for len(keys) < cfg.Size {
		keys[rng.Intn(cfg.KeyRange)] = struct{}{}
	}
	sorted := make([]int, 0, cfg.Size)
	for k := range keys {
		sorted = append(sorted, k)
	}
	// Simple insertion into a sorted slice.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var prev mem.Addr
	for _, k := range sorted {
		n := l.allocNode()
		m.Store(n+offKey, uint64(k))
		m.Store(n+offNext, 0)
		if prev == 0 {
			m.Store(l.head, uint64(n))
		} else {
			m.Store(prev+offNext, uint64(n))
		}
		prev = n
	}
	return l
}

// allocNode grabs a fresh line-sized node from the arena.
func (l *List) allocNode() mem.Addr {
	i := l.next.Add(1) - 1
	if i >= l.cap {
		panic("list: node pool exhausted; raise Config.Capacity")
	}
	return l.pool + mem.Addr(i*mem.LineWords)
}

// Contains reports whether key is in the set, as one transaction.
func (l *List) Contains(thread, key int) bool {
	var found bool
	pe := l.cfg.PartitionEvery
	l.sys.Atomic(thread, func(x tm.Tx) {
		found = false
		cur := mem.Addr(x.Read(l.head))
		hops := 0
		for cur != 0 {
			k := x.Read(cur + offKey)
			x.Work(l.cfg.WorkPerHop)
			if k == uint64(key) {
				found = true
				return
			}
			if k > uint64(key) {
				return
			}
			cur = mem.Addr(x.Read(cur + offNext))
			hops++
			if pe > 0 && hops%pe == 0 {
				x.Pause()
			}
		}
	})
	return found
}

// Insert adds key to the set, returning false if it was already present.
// The new node is claimed from the arena outside the transaction; if the
// key turns out to exist the node is simply wasted (like an aborted
// allocation under epoch reclamation).
func (l *List) Insert(thread, key int) bool {
	node := l.allocNode()
	var inserted bool
	pe := l.cfg.PartitionEvery
	l.sys.Atomic(thread, func(x tm.Tx) {
		inserted = false
		prev := mem.Addr(0)
		cur := mem.Addr(x.Read(l.head))
		hops := 0
		for cur != 0 {
			k := x.Read(cur + offKey)
			x.Work(l.cfg.WorkPerHop)
			if k == uint64(key) {
				return // already present
			}
			if k > uint64(key) {
				break
			}
			prev = cur
			cur = mem.Addr(x.Read(cur + offNext))
			hops++
			if pe > 0 && hops%pe == 0 {
				x.Pause()
			}
		}
		x.Write(node+offKey, uint64(key))
		x.Write(node+offNext, uint64(cur))
		if prev == 0 {
			x.Write(l.head, uint64(node))
		} else {
			x.Write(prev+offNext, uint64(node))
		}
		inserted = true
	})
	return inserted
}

// Remove deletes key from the set, returning false if it was absent. The
// removed node is unlinked but not recycled.
func (l *List) Remove(thread, key int) bool {
	var removed bool
	pe := l.cfg.PartitionEvery
	l.sys.Atomic(thread, func(x tm.Tx) {
		removed = false
		prev := mem.Addr(0)
		cur := mem.Addr(x.Read(l.head))
		hops := 0
		for cur != 0 {
			k := x.Read(cur + offKey)
			x.Work(l.cfg.WorkPerHop)
			if k == uint64(key) {
				next := x.Read(cur + offNext)
				if prev == 0 {
					x.Write(l.head, next)
				} else {
					x.Write(prev+offNext, next)
				}
				removed = true
				return
			}
			if k > uint64(key) {
				return
			}
			prev = cur
			cur = mem.Addr(x.Read(cur + offNext))
			hops++
			if pe > 0 && hops%pe == 0 {
				x.Pause()
			}
		}
	})
	return removed
}

// Op performs one benchmark operation: contains with probability
// 1-WritePercent/100, otherwise a balanced insert-or-remove of a random
// key.
func (l *List) Op(thread int, rng *rand.Rand) {
	key := rng.Intn(l.cfg.KeyRange)
	if rng.Intn(100) < l.cfg.WritePercent {
		if rng.Intn(2) == 0 {
			l.Insert(thread, key)
		} else {
			l.Remove(thread, key)
		}
	} else {
		l.Contains(thread, key)
	}
}

// Snapshot walks the list non-transactionally (quiescent state only) and
// returns the keys in order.
func (l *List) Snapshot() []uint64 {
	m := l.sys.Memory()
	var keys []uint64
	cur := mem.Addr(m.Load(l.head))
	for cur != 0 {
		keys = append(keys, m.Load(cur+offKey))
		cur = mem.Addr(m.Load(cur + offNext))
	}
	return keys
}

// Validate checks the structural invariant: strictly sorted, no duplicates,
// no cycles (bounded by the arena size).
func (l *List) Validate() bool {
	keys := l.Snapshot()
	if int64(len(keys)) > l.cap {
		return false
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return false
		}
	}
	return true
}

// Len returns the current number of elements (quiescent state only).
func (l *List) Len() int { return len(l.Snapshot()) }
