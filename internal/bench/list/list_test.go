package list

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/norec"
	"repro/internal/tm"
)

func newPartHTM(words, threads int) tm.System {
	ecfg := htm.DefaultConfig()
	ecfg.ReadEvictProb = 0
	eng := htm.New(mem.New(words), ecfg)
	return core.New(eng, threads, core.DefaultConfig())
}

func TestPopulateSortedAndSized(t *testing.T) {
	cfg := Config{Size: 200, WritePercent: 50}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	l := New(sys, cfg)
	if !l.Validate() {
		t.Fatal("initial list invalid")
	}
	if l.Len() != 200 {
		t.Fatalf("initial length = %d", l.Len())
	}
}

func TestContainsInsertRemove(t *testing.T) {
	cfg := Config{Size: 50, KeyRange: 1000, WritePercent: 50}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	l := New(sys, cfg)
	keys := l.Snapshot()
	present := int(keys[len(keys)/2])
	if !l.Contains(0, present) {
		t.Fatal("Contains missed a present key")
	}
	// Find an absent key.
	absent := -1
	onList := make(map[uint64]bool)
	for _, k := range keys {
		onList[k] = true
	}
	for k := 0; k < cfg.KeyRange; k++ {
		if !onList[uint64(k)] {
			absent = k
			break
		}
	}
	if l.Contains(0, absent) {
		t.Fatal("Contains found an absent key")
	}
	if !l.Insert(0, absent) {
		t.Fatal("Insert of absent key failed")
	}
	if l.Insert(0, absent) {
		t.Fatal("duplicate Insert succeeded")
	}
	if !l.Contains(0, absent) {
		t.Fatal("inserted key not found")
	}
	if !l.Remove(0, absent) {
		t.Fatal("Remove failed")
	}
	if l.Remove(0, absent) {
		t.Fatal("Remove of absent key succeeded")
	}
	if !l.Validate() {
		t.Fatal("list invalid after ops")
	}
}

func TestInsertAtHeadAndTail(t *testing.T) {
	cfg := Config{Size: 10, KeyRange: 100, WritePercent: 0, Capacity: 64}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	l := New(sys, cfg)
	keys := l.Snapshot()
	lo, hi := keys[0], keys[len(keys)-1]
	if lo > 0 {
		if !l.Insert(0, int(lo-1)) {
			t.Fatal("head insert failed")
		}
	}
	if !l.Insert(0, int(hi+1)) {
		t.Fatal("tail insert failed")
	}
	if !l.Validate() {
		t.Fatal("invalid after boundary inserts")
	}
	if got := l.Snapshot()[0]; lo > 0 && got != lo-1 {
		t.Fatalf("head = %d, want %d", got, lo-1)
	}
}

func TestRemoveHead(t *testing.T) {
	cfg := Config{Size: 10, KeyRange: 100, WritePercent: 0, Capacity: 64}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	l := New(sys, cfg)
	head := int(l.Snapshot()[0])
	if !l.Remove(0, head) {
		t.Fatal("head removal failed")
	}
	if l.Contains(0, head) {
		t.Fatal("removed head still present")
	}
	if !l.Validate() {
		t.Fatal("invalid after head removal")
	}
}

// concurrentStress hammers the list from several threads and checks the
// structural invariant afterwards.
func concurrentStress(t *testing.T, sys tm.System, cfg Config, threads, ops int) {
	t.Helper()
	l := New(sys, cfg)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			for i := 0; i < ops; i++ {
				l.Op(id, rng)
			}
		}(w)
	}
	wg.Wait()
	if !l.Validate() {
		t.Fatalf("%s: list structure corrupted", sys.Name())
	}
}

func TestConcurrentStressPartHTM(t *testing.T) {
	cfg := Config{Size: 300, WritePercent: 50, PartitionEvery: 64, Capacity: 4096}
	concurrentStress(t, newPartHTM(cfg.MemWords()+1<<18, 4), cfg, 4, 150)
}

func TestConcurrentStressHTMGL(t *testing.T) {
	cfg := Config{Size: 300, WritePercent: 50, PartitionEvery: 64, Capacity: 4096}
	ecfg := htm.DefaultConfig()
	ecfg.ReadEvictProb = 0
	eng := htm.New(mem.New(cfg.MemWords()+1<<18), ecfg)
	concurrentStress(t, htmgl.New(eng, htmgl.DefaultConfig()), cfg, 4, 150)
}

func TestConcurrentStressNOrec(t *testing.T) {
	cfg := Config{Size: 300, WritePercent: 50, Capacity: 4096}
	concurrentStress(t, norec.New(mem.New(cfg.MemWords()+1<<18), 4), cfg, 4, 150)
}

func TestPoolExhaustionPanics(t *testing.T) {
	cfg := Config{Size: 4, KeyRange: 1000, Capacity: 5}
	sys := newPartHTM(cfg.MemWords()+1<<17, 1)
	l := New(sys, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected pool-exhaustion panic")
		}
	}()
	for k := 0; k < 100; k++ {
		l.Insert(0, 500+k)
	}
}
