package domain

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/ring"
	"repro/internal/sig"
	"repro/internal/tm"
)

const testRing = 64

// TestSingleDomainLayoutIdentity pins the N=1 degeneration: a single-domain
// set must allocate exactly what the pre-domain protocol allocated — one
// ring, then one line-aligned write-locks signature — leaving the
// allocation cursor in the identical place, so every address downstream
// code allocates is unchanged by the refactor.
func TestSingleDomainLayoutIdentity(t *testing.T) {
	words := testRing*ring.EntryWords + 64*mem.LineWords
	md := mem.New(words)
	mr := mem.New(words)

	d := New(md, Config{N: 1, RingSize: testRing})
	rr := ring.New(mr, testRing)
	wl := mr.AllocLines(sig.Lines)

	if got, want := d.Ring(0).TimestampAddr(), rr.TimestampAddr(); got != want {
		t.Fatalf("ring timestamp addr: domain set %d, direct %d", got, want)
	}
	if got := d.Wlocks(0); got != wl {
		t.Fatalf("wlocks addr: domain set %d, direct %d", got, wl)
	}
	if a, b := md.AllocLines(1), mr.AllocLines(1); a != b {
		t.Fatalf("allocation cursor diverged: %d vs %d", a, b)
	}
	if d.Of(mem.Addr(words-1)) != 0 || d.Of(0) != 0 {
		t.Fatal("single-domain Of must answer 0 for every address")
	}
}

// TestRouting checks that AllocLinesIn routes exactly: every word of an
// array allocated in domain d answers d, and addresses never carved by
// AllocLinesIn (metadata, plain allocations) answer 0.
func TestRouting(t *testing.T) {
	const n = 4
	m := mem.New(n*testRing*ring.EntryWords + (n+4)*ChunkWords)
	d := New(m, Config{N: n, RingSize: testRing})

	plain := m.AllocLines(8)
	arrays := make([]mem.Addr, n)
	for i := 0; i < n; i++ {
		arrays[i] = d.AllocLinesIn(i, 16)
	}
	for i, a := range arrays {
		for w := 0; w < 16*mem.LineWords; w++ {
			if got := d.Of(a + mem.Addr(w)); got != i {
				t.Fatalf("Of(array[%d]+%d) = %d", i, w, got)
			}
		}
	}
	for w := 0; w < 8*mem.LineWords; w++ {
		if got := d.Of(plain + mem.Addr(w)); got != 0 {
			t.Fatalf("plain allocation routed to domain %d", got)
		}
	}
}

// TestAllocArena checks the arena behaviour: grabs are line-aligned, small
// allocations pack inside one chunk, and arenas of different domains never
// share a chunk (so a cache line — let alone a word — never straddles two
// domains).
func TestAllocArena(t *testing.T) {
	const n = 2
	m := mem.New(n*testRing*ring.EntryWords + 8*ChunkWords)
	d := New(m, Config{N: n, RingSize: testRing})

	a0 := d.AllocLinesIn(0, 4)
	a1 := d.AllocLinesIn(0, 4)
	b0 := d.AllocLinesIn(1, 4)
	if a0%mem.LineWords != 0 || b0%mem.LineWords != 0 {
		t.Fatal("arena grabs must be line-aligned")
	}
	if a1 != a0+4*mem.LineWords {
		t.Fatalf("second grab should pack in the same arena: %d after %d", a1, a0)
	}
	if a0/ChunkWords == b0/ChunkWords {
		t.Fatal("domains 0 and 1 share a chunk")
	}
	// Exceeding the arena triggers a new chunk-aligned grab, still routed.
	big := d.AllocLinesIn(1, ChunkLines+1)
	if big%mem.Addr(ChunkWords) != 0 {
		t.Fatalf("multi-chunk grab not chunk-aligned: %d", big)
	}
	if d.Of(big) != 1 || d.Of(big+mem.Addr(ChunkWords)) != 1 {
		t.Fatal("multi-chunk grab not fully routed to its domain")
	}
}

// TestMetadataLineDisjoint checks that domain-owned control structures —
// the write-locks signatures in particular — occupy disjoint cache lines
// per domain: false sharing between domains would reintroduce exactly the
// cross-domain metadata contention the sharding removes.
func TestMetadataLineDisjoint(t *testing.T) {
	const n = 8
	m := mem.New(n * (testRing*ring.EntryWords + 2*ChunkWords))
	d := New(m, Config{N: n, RingSize: testRing})
	lines := map[mem.Addr]int{}
	for i := 0; i < n; i++ {
		w := d.Wlocks(i)
		if w%mem.LineWords != 0 {
			t.Fatalf("wlocks[%d] not line-aligned: %d", i, w)
		}
		for l := mem.Addr(0); l < sig.Lines; l++ {
			line := w/mem.LineWords + l
			if prev, dup := lines[line]; dup {
				t.Fatalf("wlocks of domains %d and %d share line %d", prev, i, line)
			}
			lines[line] = i
		}
		if ts := d.Ring(i).TimestampAddr(); ts%mem.LineWords != 0 {
			t.Fatalf("ring[%d] timestamp not line-aligned: %d", i, ts)
		}
	}
}

// TestSnapshotTimestamps: single-domain sets take the one eager load the
// pre-domain protocol took; multi-domain sets leave start untouched (the
// kernel records starts lazily at first touch).
func TestSnapshotTimestamps(t *testing.T) {
	m := mem.New(2*testRing*ring.EntryWords + 4*ChunkWords)
	d1 := New(m, Config{N: 1, RingSize: testRing})
	m.Store(d1.Ring(0).TimestampAddr(), 7)
	start := []uint64{99}
	d1.SnapshotTimestamps(start)
	if start[0] != 7 {
		t.Fatalf("N=1 snapshot: got %d, want 7", start[0])
	}

	m2 := mem.New(2*testRing*ring.EntryWords + 8*ChunkWords)
	d2 := New(m2, Config{N: 2, RingSize: testRing})
	start2 := []uint64{99, 99}
	d2.SnapshotTimestamps(start2)
	if start2[0] != 99 || start2[1] != 99 {
		t.Fatalf("N>1 snapshot must be lazy, got %v", start2)
	}
}

// TestClaimPublishValidate drives one domain's commit pipeline by hand:
// claim, publish, then check that a reader whose read signature intersects
// the published write signature fails validation while a disjoint reader
// passes, and that both advance their start times on success.
func TestClaimPublishValidate(t *testing.T) {
	m := mem.New(2*testRing*ring.EntryWords + 8*ChunkWords)
	d := New(m, Config{N: 2, RingSize: testRing})
	var stats tm.Stats

	var wsig sig.Signature
	wsig.Add(1234)

	var empty sig.Signature
	start := uint64(0)
	ts, ok, roll := d.ClaimTimestamp(1, &empty, &start)
	if !ok || roll || ts != 1 {
		t.Fatalf("claim: ts=%d ok=%v roll=%v", ts, ok, roll)
	}
	if start != 0 {
		t.Fatalf("claim advanced start past its own entry: %d", start)
	}
	d.Publish(1, ts, &wsig)

	conflicted := NewTxnState(2, stats.Shard(0))
	conflicted.Touched = 1 << 1
	conflicted.Read[1].Add(1234)
	if ok, _ := d.Validate(conflicted); ok {
		t.Fatal("validation must fail against an intersecting entry")
	}

	clean := NewTxnState(2, stats.Shard(1))
	clean.Touched = 1 << 1
	clean.Read[1].Add(5678)
	if ok, roll := d.Validate(clean); !ok || roll {
		t.Fatalf("disjoint reader failed validation (rollover=%v)", roll)
	}
	if clean.Start[1] != ts {
		t.Fatalf("validation did not advance start: %d != %d", clean.Start[1], ts)
	}
	// Domain 0 is untouched by all of this.
	if got := d.Ring(0).Timestamp(); got != 0 {
		t.Fatalf("domain 0 timestamp moved: %d", got)
	}
}

// TestClaimStaleStart: a claim whose start is behind the domain timestamp
// validates the gap first and advances start before CASing.
func TestClaimStaleStart(t *testing.T) {
	m := mem.New(2*testRing*ring.EntryWords + 8*ChunkWords)
	d := New(m, Config{N: 2, RingSize: testRing})

	var wsig sig.Signature
	wsig.Add(42)
	var empty sig.Signature
	start := uint64(0)
	ts, ok, _ := d.ClaimTimestamp(0, &empty, &start)
	if !ok {
		t.Fatal("first claim failed")
	}
	d.Publish(0, ts, &wsig)

	// A disjoint reader claims with a stale start: must validate, advance,
	// and claim ts+1.
	var rsig sig.Signature
	rsig.Add(43)
	start2 := uint64(0)
	ts2, ok, _ := d.ClaimTimestamp(0, &rsig, &start2)
	if !ok || ts2 != ts+1 {
		t.Fatalf("stale-start claim: ts=%d ok=%v", ts2, ok)
	}
	if start2 != ts {
		t.Fatalf("stale-start claim did not advance start: %d", start2)
	}
	d.Publish(0, ts2, &empty)

	// An intersecting reader with a stale start must fail the claim.
	start3 := uint64(0)
	if _, ok, _ := d.ClaimTimestamp(0, &wsig, &start3); ok {
		t.Fatal("claim must fail when the gap intersects the read signature")
	}
}

// TestTxnState pins the Base-mask device: single-domain states keep domain
// 0 permanently touched (the pre-domain protocol's unconditional behaviour)
// while multi-domain states are footprint-driven, and Reset clears exactly
// the touched domains' signatures.
func TestTxnState(t *testing.T) {
	var stats tm.Stats
	one := NewTxnState(1, stats.Shard(0))
	if one.Base != 1 || one.Touched != 1 {
		t.Fatalf("N=1 state: Base=%d Touched=%d, want 1,1", one.Base, one.Touched)
	}
	if one.Count() != 1 {
		t.Fatalf("N=1 Count = %d", one.Count())
	}

	four := NewTxnState(4, stats.Shard(1))
	if four.Base != 0 || four.Touched != 0 {
		t.Fatalf("N=4 state: Base=%d Touched=%d, want 0,0", four.Base, four.Touched)
	}
	four.Touched = 1<<0 | 1<<2
	four.Wrote = 1 << 2
	four.Read[0].Add(1)
	four.Write[2].Add(2)
	four.Agg[2].Add(2)
	four.Read[3].Add(3) // untouched domain: Reset must not pay to clear it
	four.Reset()
	if four.Touched != 0 || four.Wrote != 0 {
		t.Fatalf("Reset masks: Touched=%d Wrote=%d", four.Touched, four.Wrote)
	}
	if !four.Read[0].Empty() || !four.Write[2].Empty() || !four.Agg[2].Empty() {
		t.Fatal("Reset left touched-domain signatures populated")
	}
	if four.Read[3].Empty() {
		t.Fatal("Reset cleared an untouched domain (Touched mask ignored)")
	}
	if four.Shard() != stats.Shard(1) {
		t.Fatal("Shard not owner-bound")
	}
}
