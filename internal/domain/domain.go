// Package domain shards the transactional-memory substrate into N
// independent memory domains. Each domain owns its own region of the
// simulated memory, its own RingSTM-style ring of committed write
// signatures, and its own shared write-locks signature, so transactions
// confined to one domain contend only on that domain's metadata.
//
// # Routing
//
// The address space is routed to domains at a fixed chunk granularity
// (ChunkLines cache lines): a flat table maps each chunk to its owning
// domain, and Of is a single table lookup. Chunks default to domain 0, so
// every address allocated outside AllocLinesIn — protocol metadata, plain
// mem.Alloc data, the Part-HTM-O lock-cell shadow — takes domain-0
// semantics. AllocLinesIn carves chunk-aligned arenas per domain
// (mem.AllocLinesAligned), so a cache line never straddles two domains and
// the routing table is exact.
//
// # Single-domain identity
//
// With N=1 the set degenerates to exactly today's topology: one ring and
// one write-locks signature allocated in the same order and the same
// number of words as before the refactor, Of always answers 0 without
// touching the table, AllocLinesIn(0, n) is a plain AllocLines(n), and
// SnapshotTimestamps performs exactly one timestamp load. Single-domain
// protocols are therefore byte-for-byte identical to the pre-domain code.
//
// # Cross-domain commit
//
// Transactions spanning domains coordinate commit by extending Part-HTM's
// sub-HTM stitching across every touched domain, always in canonical
// (ascending) domain order: write-locks signatures are acquired per domain
// in ascending order at each sub-commit, each written domain's timestamp
// is claimed with a validate-and-CAS and its ring entry published
// immediately (ClaimTimestamp/Publish), read-only domains are re-validated
// after the last publication, and locks are released in reverse order.
// Because a claimed timestamp is always published before the committer
// blocks on anything else, ring waiters only ever chain backwards within
// one domain's timestamp order — no cross-domain wait cycle can form.
package domain

import (
	"math/bits"

	"repro/internal/mem"
	"repro/internal/ring"
	"repro/internal/sig"
	"repro/internal/tm"
)

const (
	// ChunkLines is the addr→domain routing granularity in cache lines.
	// 512 lines = 32 KiB per chunk keeps the routing table tiny (one byte
	// per 32 KiB) while wasting at most one chunk of slack per arena grab.
	ChunkLines = 512
	// ChunkWords is the routing granularity in words.
	ChunkWords = ChunkLines * mem.LineWords

	// MaxDomains bounds the domain count: touched-domain sets are tracked
	// as single-word bitmasks.
	MaxDomains = 64
)

// Config parameterizes a domain set.
type Config struct {
	// N is the number of domains; 0 and 1 both mean a single domain.
	N int
	// RingSize is each domain's ring capacity in entries (power of two).
	RingSize int
}

// dom is one domain's metadata. The ring and the write-locks signature are
// separate line-aligned allocations, so domain-owned control structures
// never share a cache line with each other or with a neighbouring domain
// (no false sharing across domains).
type dom struct {
	ring   *ring.Ring
	wlocks mem.Addr

	// Chunk-aligned allocation arena for this domain's data.
	arenaNext, arenaEnd mem.Addr
}

// Domains is a set of N memory domains over one simulated memory. Metadata
// construction and allocation are single-threaded (setup time); routing and
// the commit helpers are safe for concurrent use.
type Domains struct {
	m    *mem.Memory
	n    int
	doms []dom

	// table maps chunk index → owning domain; chunks never carved by
	// AllocLinesIn stay 0 (domain-0 semantics for unrouted addresses).
	table []uint8
}

// New builds a domain set: per domain, one ring and one line-aligned
// write-locks signature, allocated in ascending domain order.
func New(m *mem.Memory, cfg Config) *Domains {
	n := cfg.N
	if n <= 0 {
		n = 1
	}
	if n > MaxDomains {
		panic("domain: more than MaxDomains domains")
	}
	d := &Domains{
		m:    m,
		n:    n,
		doms: make([]dom, n),
	}
	if n > 1 {
		d.table = make([]uint8, (m.Words()+ChunkWords-1)/ChunkWords)
	}
	for i := range d.doms {
		d.doms[i].ring = ring.New(m, cfg.RingSize)
		d.doms[i].wlocks = m.AllocLines(sig.Lines)
	}
	return d
}

// N returns the number of domains.
func (d *Domains) N() int { return d.n }

// Ring returns domain i's ring.
func (d *Domains) Ring(i int) *ring.Ring { return d.doms[i].ring }

// Wlocks returns the address of domain i's shared write-locks signature.
func (d *Domains) Wlocks(i int) mem.Addr { return d.doms[i].wlocks }

// Of routes a word address to its owning domain. Single-domain sets answer
// 0 unconditionally; otherwise it is one table lookup. Addresses never
// carved by AllocLinesIn (metadata, plain allocations) route to domain 0.
func (d *Domains) Of(a mem.Addr) int {
	if d.n == 1 {
		return 0
	}
	// ChunkWords is a power of two; the divide compiles to a shift.
	return int(d.table[a/ChunkWords])
}

// AllocLinesIn reserves n whole cache lines inside domain dm's region and
// returns the first word's address. Space is carved from the domain's
// arena, which grows in chunk-aligned grabs so routing stays exact; on a
// single-domain set it is exactly mem.AllocLines (identical layout to the
// pre-domain allocator). Setup-time only: not safe for concurrent use.
func (d *Domains) AllocLinesIn(dm, n int) mem.Addr {
	if dm < 0 || dm >= d.n {
		panic("domain: AllocLinesIn domain out of range")
	}
	if d.n == 1 {
		return d.m.AllocLines(n)
	}
	need := mem.Addr(n * mem.LineWords)
	da := &d.doms[dm]
	if da.arenaEnd-da.arenaNext < need {
		chunks := (n + ChunkLines - 1) / ChunkLines
		base := d.m.AllocLinesAligned(chunks*ChunkLines, ChunkLines)
		first := int(base) / ChunkWords
		for c := 0; c < chunks; c++ {
			d.table[first+c] = uint8(dm)
		}
		da.arenaNext, da.arenaEnd = base, base+mem.Addr(chunks*ChunkWords)
	}
	a := da.arenaNext
	da.arenaNext += need
	return a
}

// SnapshotTimestamps seeds start[d] for the domains a fresh attempt is
// born touching. A single-domain set performs exactly one load — the same
// read the pre-domain protocol issued at transaction start. Multi-domain
// sets load nothing: their footprints are discovered access by access, and
// the kernel records start[d] lazily at the first touch of each domain
// (every read of domain d happens at or after its first touch, so
// validation from that lazily-taken start still covers every read — no
// coherent cross-domain cut is needed, and single-domain transactions on a
// sharded topology pay one timestamp load instead of N).
func (d *Domains) SnapshotTimestamps(start []uint64) {
	if d.n == 1 {
		start[0] = d.doms[0].ring.Timestamp()
	}
}

// ClaimTimestamp claims the next commit timestamp of domain dm with the
// ring's validate-and-CAS loop: reads in that domain (readSig) are
// validated against every signature committed in (*start, now] before the
// CAS; on success *start is advanced to the claimed position. rollover
// reports that a failure was the ring lapping the validator rather than a
// genuine intersection.
//
// The caller MUST publish the claimed timestamp immediately (Publish)
// without blocking in between: validators of dm spin until the entry for
// the claimed timestamp appears, so an unpublished claim stalls the whole
// domain. Keeping claim→publish atomic per domain is also what makes the
// canonical-order cross-domain commit deadlock-free.
func (d *Domains) ClaimTimestamp(dm int, readSig *sig.Signature, start *uint64) (ts uint64, ok, rollover bool) {
	r := d.doms[dm].ring
	tsAddr := r.TimestampAddr()
	for {
		now := d.m.Load(tsAddr)
		if now != *start {
			vok, roll := r.ValidateDetail(readSig, *start, now)
			if !vok {
				return 0, false, roll
			}
			*start = now
		}
		if d.m.CAS(tsAddr, now, now+1) {
			return now + 1, true, false
		}
	}
}

// Publish publishes pub as domain dm's ring entry for the claimed
// timestamp ts (software publication; see ClaimTimestamp).
func (d *Domains) Publish(dm int, ts uint64, pub *sig.Signature) {
	d.doms[dm].ring.PublishSW(ts, pub)
}

// ReleaseWlocks clears s's bits from domain dm's write-locks signature.
func (d *Domains) ReleaseWlocks(dm int, s *sig.Signature) {
	w := d.doms[dm].wlocks
	for i := range s {
		if s[i] != 0 {
			d.m.AndNot(w+mem.Addr(i), s[i])
		}
	}
}

// TxnState is one transaction's per-domain footprint: read, write, and
// aggregate-write signatures plus a validation start time per domain, and
// single-word bitmasks of the domains touched and written by the current
// attempt. The signatures are indexed by domain; only domains present in
// Touched hold meaningful (possibly non-empty) state, and Reset clears
// exactly those, so attempts pay for the domains they used, not for N.
type TxnState struct {
	Read  []sig.Signature
	Write []sig.Signature
	Agg   []sig.Signature
	Start []uint64

	// Touched and Wrote are bitmasks over domain indices (MaxDomains=64).
	Touched uint64
	Wrote   uint64

	// Base is the mask Reset restores Touched to. Single-domain states set
	// it to 1 — domain 0 counts as permanently touched, mirroring the
	// pre-domain protocol, which unconditionally validated against and
	// acquired the one ring and write-locks signature even for footprint-
	// free attempts. Multi-domain states start from 0: footprint-driven.
	Base uint64

	sh *tm.Shard
}

// NewTxnState allocates per-domain transaction state for n domains, owned
// by the thread whose stats shard is sh.
func NewTxnState(n int, sh *tm.Shard) *TxnState {
	t := &TxnState{
		Read:  make([]sig.Signature, n),
		Write: make([]sig.Signature, n),
		Agg:   make([]sig.Signature, n),
		Start: make([]uint64, n),
		sh:    sh,
	}
	if n == 1 {
		t.Base = 1
	}
	t.Touched = t.Base
	return t
}

// Shard returns the owning thread's stats shard. Like exec.Thread.Shard,
// the result is owner-bound: only the thread owning this TxnState may
// increment counters through it (the singlewriter analyzer knows this
// origin).
func (t *TxnState) Shard() *tm.Shard { return t.sh }

// Count returns the number of domains the current attempt touched.
func (t *TxnState) Count() int { return bits.OnesCount64(t.Touched) }

// Reset clears the signatures of every touched domain and restores the
// masks (Touched to Base, Wrote to empty), preparing the state for a
// fresh attempt.
func (t *TxnState) Reset() {
	for m := t.Touched; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		t.Read[d].Clear()
		t.Write[d].Clear()
		t.Agg[d].Clear()
	}
	t.Touched, t.Wrote = t.Base, 0
}

// Validate re-validates every touched domain's reads against that domain's
// ring, advancing the per-domain start times, in canonical (ascending)
// domain order. ok=false means the transaction must abort; rollover
// reports that the failure was a ring lapping the validator.
func (d *Domains) Validate(t *TxnState) (ok, rollover bool) {
	for m := t.Touched; m != 0; m &= m - 1 {
		dm := bits.TrailingZeros64(m)
		r := d.doms[dm].ring
		now := r.Timestamp()
		if now == t.Start[dm] {
			continue
		}
		vok, roll := r.ValidateDetail(&t.Read[dm], t.Start[dm], now)
		if !vok {
			return false, roll
		}
		t.Start[dm] = now
	}
	return true, false
}
