package analysis

import "testing"

// TestCoreTreeClean runs the full suite over the packages whose invariants
// it encodes. These must stay diagnostic-free: a finding here is either a
// real discipline violation introduced by a change, or an analyzer
// regression — both block.
func TestCoreTreeClean(t *testing.T) {
	requireGoTool(t)
	diags, err := Check("", All(),
		"repro/internal/tm", "repro/internal/exec",
		"repro/internal/core", "repro/internal/domain")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
