// Package analysis is parthtm-vet: a suite of static analyzers that
// enforce the concurrency discipline this repository's comments promise
// but, until now, nothing checked.
//
// The repository's correctness rests on invariants that live outside the
// type system: tm.Counter is single-writer (owner thread only), bodies
// passed to tm.System.Atomic must be pure functions of their inputs and
// Reads, fields accessed through sync/atomic must never be touched
// plainly, and code running inside a simulated hardware-transaction
// window must not do things real TSX forbids (allocate, take locks, call
// into the runtime). Each analyzer turns one of those comments into a
// build-breaking check.
//
// The framework deliberately mirrors a small subset of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers read like standard vet checks — but it is built entirely on
// the standard library, because this module carries no third-party
// dependencies. Packages are loaded either by the stand-alone driver
// (load.go, via `go list -export`) or under `go vet -vettool=` through
// the unitchecker protocol (unitchecker.go).
//
// # Annotations
//
// Every analyzer has an escape hatch: a `// parthtm:<tag>` comment
// suppresses its diagnostics. The tag may be followed by free text
// giving the justification (write one — the annotation is a claim that a
// human proved the invariant by other means):
//
//	singlewriter  // parthtm:owner    — caller is the shard's owner thread
//	atomicmix     // parthtm:plain    — plain access is safe (e.g. pre-publication)
//	txpure        // parthtm:impure   — body's captured state is retry-safe
//	htmregion     // parthtm:htmsafe  — operation is safe inside the window
//	txfootprint   // parthtm:bigtx    — body is intentionally oversized (slow-path workload)
//	domainorder   // parthtm:ordered  — domain order proven by other means
//
// An annotation applies to the source line it trails (or the line
// directly above the flagged one), or to a whole function when placed in
// the function's doc comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Tag is the parthtm annotation tag that suppresses this analyzer's
	// diagnostics ("owner", "plain", "impure", "htmsafe").
	Tag string
	// Run performs the check on one package.
	Run func(*Pass)
}

// All returns the full parthtm-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SingleWriter, AtomicMix, TxPure, HTMRegion, TxFootprint, DomainOrder}
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics. Reportf filters suppressed positions, so analyzers
// do not handle annotations themselves.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-module view the pass runs inside; This is the
	// pass's own package within it. Under the stand-alone driver Prog
	// spans every matched package (cross-package walks reach real
	// declarations); under the unitchecker protocol it holds only This,
	// so interprocedural reach degrades gracefully to same-package.
	Prog *Program
	This *Package

	// IncludeTests, when false (the default for every driver in this
	// repository), makes the pass skip files whose name ends in _test.go:
	// the TM discipline binds production paths, while tests deliberately
	// poke at edges (aborted bodies, torn state) in ways every analyzer
	// would otherwise flag.
	IncludeTests bool

	diags *[]Diagnostic
}

// A Diagnostic is one finding, bound to a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a parthtm annotation for this
// analyzer's tag covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfIn(p.This, pos, format, args...)
}

// ReportfIn records a finding at pos inside an arbitrary program package —
// the sink for cross-package walks, which must resolve positions with the
// owning package's file set and honour the owning file's annotations.
func (p *Pass) ReportfIn(pkg *Package, pos token.Pos, format string, args ...any) {
	if p.suppressedIn(pkg, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles yields the files the pass analyzes, honouring IncludeTests.
func (p *Pass) SourceFiles() []*ast.File {
	if p.IncludeTests {
		return p.Files
	}
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// RunAnalyzers applies every analyzer to one loaded package and returns
// the findings sorted by position. The package is wrapped in a
// single-package Program, so interprocedural reach is same-package only —
// the unitchecker driver's view. Multi-package callers use RunAnalyzersIn.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) []Diagnostic {

	target := &Package{PkgPath: pkg.Path(), Fset: fset, Files: files, Types: pkg, Info: info}
	return RunAnalyzersIn(NewProgram(target), analyzers, target)
}

// RunAnalyzersIn applies every analyzer to one target package inside a
// whole-module Program, returning the findings sorted and deduplicated.
func RunAnalyzersIn(prog *Program, analyzers []*Analyzer, target *Package) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      target.Fset,
			Files:     target.Files,
			Pkg:       target.Types,
			TypesInfo: target.Info,
			Prog:      prog,
			This:      target,
			diags:     &diags,
		}
		a.Run(pass)
	}
	return sortDiagnostics(diags)
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer, and
// message, and drops exact repeats — a site can be reached twice within
// one pass (a function shared by two hardware-transaction windows) or
// across passes (a helper package walked from two analyzed roots). The
// canonical order makes -json, -sarif, and vettool output byte-stable
// across runs, so CI pins can diff them directly.
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	deduped := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped
}

// annotations indexes every parthtm comment in a package: line-scoped
// tags by (file, line) and function-scoped tags by body span.
type annotations struct {
	lines map[string]map[int]map[string]bool // filename -> line -> tag set
	funcs []funcNote
}

type funcNote struct {
	lo, hi token.Pos
	tags   map[string]bool
}

// annotationPrefix introduces a parthtm annotation inside a comment.
const annotationPrefix = "parthtm:"

func parseTags(text string) map[string]bool {
	var tags map[string]bool
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
		if !strings.HasPrefix(line, annotationPrefix) {
			continue
		}
		rest := strings.TrimPrefix(line, annotationPrefix)
		// The tag is the leading word; anything after it is justification.
		tag := rest
		if i := strings.IndexAny(rest, " \t—-"); i >= 0 {
			tag = rest[:i]
		}
		if tag == "" {
			continue
		}
		if tags == nil {
			tags = map[string]bool{}
		}
		tags[tag] = true
	}
	return tags
}

func collectAnnotations(fset *token.FileSet, files []*ast.File) annotations {
	notes := annotations{lines: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				tags := parseTags(c.Text)
				if tags == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := notes.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					notes.lines[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = map[string]bool{}
				}
				for t := range tags {
					byLine[pos.Line][t] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				return true
			}
			if tags := parseTags(fd.Doc.Text()); tags != nil {
				notes.funcs = append(notes.funcs, funcNote{
					lo: fd.Body.Pos(), hi: fd.Body.End(), tags: tags,
				})
			}
			return true
		})
	}
	return notes
}

// suppressedIn reports whether a parthtm annotation for the pass's tag
// covers pos in pkg: on the same line, on the line directly above, or in
// the enclosing function's doc comment.
func (p *Pass) suppressedIn(pkg *Package, pos token.Pos) bool {
	return p.Prog.notesFor(pkg).covers(pkg.Fset, pos, p.Analyzer.Tag)
}

// covers reports whether a parthtm annotation for tag covers pos: on the
// same line, on the line directly above, or in the enclosing function's
// doc comment.
func (n annotations) covers(fset *token.FileSet, pos token.Pos, tag string) bool {
	at := fset.Position(pos)
	if byLine := n.lines[at.Filename]; byLine != nil {
		if byLine[at.Line][tag] || byLine[at.Line-1][tag] {
			return true
		}
	}
	for _, fn := range n.funcs {
		if fn.lo <= pos && pos < fn.hi && fn.tags[tag] {
			return true
		}
	}
	return false
}

// ---- shared type helpers used by the analyzers ----

// Import paths of the packages whose invariants the suite encodes.
const (
	tmPath       = "repro/internal/tm"
	memPath      = "repro/internal/mem"
	htmPath      = "repro/internal/htm"
	execPath     = "repro/internal/exec"
	tracePath    = "repro/internal/trace"
	governorPath = "repro/internal/governor"
	profPath     = "repro/internal/prof"
	domainPath   = "repro/internal/domain"
	corePath     = "repro/internal/core"
	obsPath      = "repro/internal/obs"
)

// calleeFunc resolves the *types.Func a call invokes (methods and
// package-level functions), or nil for builtins, conversions, and
// function-valued expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedType unwraps pointers and aliases down to a named type, if any.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether t (or *t) is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// isMethodOf reports whether fn is a method named methodName declared on
// the named type pkgPath.recvName (value or pointer receiver).
func isMethodOf(fn *types.Func, pkgPath, recvName, methodName string) bool {
	if fn == nil || fn.Name() != methodName {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, recvName)
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// inspectStack walks every node of f in source order, maintaining the
// ancestor stack (outermost first, excluding n itself). Return false from
// visit to skip n's children.
func inspectStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFunc returns the innermost function literal or declaration in
// the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}
