// Testdata for profile reconciliation: every body here has a finite
// static bound, so ReconcileProfile has something falsifiable to check.
package reconcile

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// update reads and writes at most 64 distinct lines per attempt.
func update(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		for i := 0; i < 64; i++ {
			v := x.Read(base + mem.Addr(i*8))
			x.Write(base+mem.Addr(i*8), v+1)
		}
	})
}

// probe touches a handful of scalars — well inside update's bound.
func probe(sys tm.System, id int, a, b mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		x.Write(b, x.Read(a))
	})
}
