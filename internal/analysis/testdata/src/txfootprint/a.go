// Testdata for the txfootprint analyzer. The capacity model is
// htm.DefaultConfig: a 512-line write buffer (WriteLines), a 4096-line
// soft read budget (ReadLinesSoft), and a 65536-line hard read-set limit
// (ReadLinesHard). Addresses are word indices, 8 words per line.
package txfootprint

import (
	"repro/internal/exec"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// good: a handful of scalar accesses is nowhere near capacity.
func small(sys tm.System, id int, from, to mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		v := x.Read(from)
		x.Write(from, 0)
		x.Write(to, x.Read(to)+v)
	})
}

// good: a dense stride-1 scan of 1024 words touches ~129 lines — large,
// but comfortably inside every budget.
func denseScan(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		var sum uint64
		for i := 0; i < 1024; i++ {
			sum += x.Read(base + mem.Addr(i))
		}
		x.Write(base, sum)
	})
}

// bad: one full line written per iteration, 1024 iterations — double the
// 512-line write buffer. The fast path can never commit this.
func oversized(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically writes up to 1024 distinct lines, exceeding the 512-line HTM write buffer`
		for i := 0; i < 1024; i++ {
			x.Write(base+mem.Addr(i*8), 0)
		}
	})
}

// bad: 5000 read lines is past the 4096-line soft budget (but under the
// hard limit) — capacity aborts are likely, not certain.
func wideReader(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically reads up to 5000 distinct lines, past the 4096-line soft read budget`
		for i := 0; i < 5000; i++ {
			x.Read(base + mem.Addr(i*8))
		}
	})
}

// bad: 300 written lines fits the 512-line buffer in aggregate, but past
// half of it set-associativity evictions make aborts likely.
func setPressure(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically writes up to 300 distinct lines, past half the 512-line write buffer`
		for i := 0; i < 300; i++ {
			x.Write(base+mem.Addr(i*8), 1)
		}
	})
}

// bad: a data-dependent address list is unbounded, and the body declares
// no partition points.
func unbounded(sys tm.System, id int, addrs []mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically unbounded line footprint and declares no partition points`
		for _, a := range addrs {
			x.Write(a, 1)
		}
	})
}

// good: the same unbounded walk, but with Pause partition marks — the
// partitioned path splits it, which is the paper's answer to oversize.
func partitioned(sys tm.System, id int, addrs []mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		for _, a := range addrs {
			x.Write(a, 1)
			x.Pause()
		}
	})
}

// good: suppressed — the annotation routes the body to the fallback paths.
func deliberate(sys tm.System, id int, addrs []mem.Addr) {
	// parthtm:bigtx — region-growth workload, slow path by design
	sys.Atomic(id, func(x tm.Tx) {
		for _, a := range addrs {
			x.Write(a, 1)
		}
	})
}

// fill writes one line per call at a fixed offset from base.
func fill(x tm.Tx, base mem.Addr, k int) {
	x.Write(base+mem.Addr(k*8), 0)
	x.WriteLocal(base, uint64(k))
}

// bad: the interprocedural bound — fill's 2-line summary scaled by the
// 400-trip loop gives 800 written lines, past the 512-line buffer.
func helperLoop(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically writes up to 800 distinct lines, exceeding the 512-line HTM write buffer`
		for i := 0; i < 400; i++ {
			fill(x, base, i)
		}
	})
}

// good: the same helper called a handful of times stays tiny.
func helperFew(sys tm.System, id int, base mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		for i := 0; i < 4; i++ {
			fill(x, base, i)
		}
	})
}

// bad: only the Fast level runs under HTM, and this one writes 1024
// lines; the Mid level walking the same range is software and exempt.
func levels(base mem.Addr) exec.Txn {
	var ht *htm.Txn
	return exec.Txn{
		Fast: func() htm.Result { // want `fast-path level body statically writes up to 1024 distinct lines`
			for i := 0; i < 1024; i++ {
				ht.Write(uint32(base)+uint32(i)*8, 0)
			}
			return htm.Result{}
		},
		Mid: func() bool {
			for i := 0; i < 1024; i++ {
				ht.Write(uint32(base)+uint32(i)*8, 0)
			}
			return true
		},
	}
}

// bad: handing the transaction to a function value loses track of the
// footprint entirely.
func escapes(sys tm.System, id int, f func(tm.Tx)) {
	sys.Atomic(id, func(x tm.Tx) { // want `statically unbounded line footprint`
		f(x)
	})
}
