// Testdata for the domainorder analyzer's confinement rule: the ordered
// commit helpers may only be called from internal/core (or internal/domain
// itself) — this package is neither.
package domainorder

import (
	"repro/internal/domain"
	"repro/internal/mem"
)

// bad: every ordered commit helper called from outside the core commit
// sequence bypasses the protocol.
func rogue(ds *domain.Domains, sig *domain.Signature) {
	var start uint64
	ts, _, _ := ds.ClaimTimestamp(0, sig, &start) // want `ClaimTimestamp called outside internal/core's commit sequence`
	ds.Publish(0, ts, sig)                        // want `Publish called outside internal/core's commit sequence`
	ds.ReleaseWlocks(0, sig)                      // want `ReleaseWlocks called outside internal/core's commit sequence`
}

// good: the topology accessors are not commit-sequence helpers.
func fine(ds *domain.Domains, a mem.Addr) int {
	return ds.Of(a)
}
