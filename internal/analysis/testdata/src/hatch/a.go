// Testdata for parthtm annotation (escape hatch) semantics, run under the
// txpure and htmregion analyzers together: tag interaction on one
// declaration, method-doc scoping across receiver kinds, and placement
// edge cases.
package hatch

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// doubleVouched carries one hatch per analyzer in its doc comment: the
// txpure impurity and the htmregion allocation below are both suppressed
// function-wide, each by its own tag.
// parthtm:impure — attempt counting is deliberate and retry-safe
// parthtm:htmsafe — simulator-only scratch allocation
func doubleVouched(sys tm.System, eng *htm.Engine, id int, a mem.Addr) int {
	var attempts int
	sys.Atomic(id, func(x tm.Tx) {
		attempts++
		x.Write(a, uint64(attempts))
	})
	eng.Execute(id, func(t *htm.Txn) {
		buf := make([]uint64, 1)
		t.Write(0, buf[0])
	})
	return attempts
}

// wrongTag: a hatch for a different analyzer does not suppress — the
// htmsafe claim says nothing about purity.
func wrongTag(sys tm.System, id int, a mem.Addr) int {
	var attempts int
	sys.Atomic(id, func(x tm.Tx) {
		// parthtm:htmsafe — wrong hatch: says nothing about purity
		attempts++ // want `reads and writes captured variable .attempts.`
		x.Write(a, uint64(attempts))
	})
	return attempts
}

// tooFar: an annotation is out of scope once a line of code intervenes —
// only the same line, the line directly above, or the function doc count.
func tooFar(sys tm.System, id int, a mem.Addr) int {
	var attempts int
	sys.Atomic(id, func(x tm.Tx) {
		// parthtm:impure — right tag, wrong place: a line intervenes
		x.Write(a, uint64(attempts))
		attempts++ // want `reads and writes captured variable .attempts.`
	})
	return attempts
}

// below: an annotation on the line after the violation does not reach
// back up — coverage is the annotation's own line and the line below it.
func below(sys tm.System, id int, a mem.Addr) int {
	var attempts int
	sys.Atomic(id, func(x tm.Tx) {
		attempts++ // want `reads and writes captured variable .attempts.`
		// parthtm:impure — too late: hatches never cover the line above
		x.Write(a, uint64(attempts))
	})
	return attempts
}

type worker struct {
	sys tm.System
	id  int
}

// Inc is vouched for by its own doc hatch (pointer receiver).
// parthtm:impure — attempt counting is the point
func (w *worker) Inc(a mem.Addr) int {
	var n int
	w.sys.Atomic(w.id, func(x tm.Tx) {
		n++
		x.Write(a, uint64(n))
	})
	return n
}

// IncVal is the same shape on a value-receiver copy: the doc hatch binds
// to the declaration's body span, so the receiver kind changes nothing.
// parthtm:impure — attempt counting is the point
func (w worker) IncVal(a mem.Addr) int {
	var n int
	w.sys.Atomic(w.id, func(x tm.Tx) {
		n++
		x.Write(a, uint64(n))
	})
	return n
}

// IncBare has no hatch of its own: a sibling method's doc annotation
// must not leak into this body.
func (w *worker) IncBare(a mem.Addr) int {
	var n int
	w.sys.Atomic(w.id, func(x tm.Tx) {
		n++ // want `reads and writes captured variable .n.`
		x.Write(a, uint64(n))
	})
	return n
}
