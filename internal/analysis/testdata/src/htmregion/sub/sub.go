// Package sub is reached from htmregion's windows across the package
// boundary: the call-graph walk hops package views, reports findings in
// this file, and honours this file's own annotations.
package sub

import "time"

// Scratch allocates; calling it from a window is reported here, at the
// allocation, not at the cross-package call site.
func Scratch(n int) []uint64 {
	return make([]uint64, n) // want `make inside a hardware-transaction window`
}

// Stamp reads the clock, but the hatch in this file vouches for it.
func Stamp() time.Time {
	return time.Now() // parthtm:htmsafe — simulator-only timing
}
