// Testdata for the htmregion analyzer.
package htmregion

import (
	"fmt"
	"sync"
	"time"

	"htmregion/sub"

	"repro/internal/domain"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/trace"
)

var mu sync.Mutex

var results chan uint64

// good: allocation hoisted before the window, logging after it closes.
func disciplined(eng *htm.Engine, slot int) {
	buf := make([]uint64, 8)
	res := eng.Execute(slot, func(t *htm.Txn) {
		buf[0] = t.Read(0)
		t.Write(1, buf[0])
	})
	if res.Committed {
		fmt.Println("committed")
	}
}

// bad: forbidden operations inside an Execute body.
func sloppy(eng *htm.Engine, slot int) {
	eng.Execute(slot, func(t *htm.Txn) {
		buf := make([]uint64, 8) // want `make inside a hardware-transaction window`
		_ = buf
		fmt.Println(t.Read(0)) // want `fmt.Println inside a hardware-transaction window`
		mu.Lock()              // want `sync primitive .Mutex.Lock.`
		mu.Unlock()            // want `sync primitive .Mutex.Unlock.`
		results <- t.Read(1)   // want `channel send inside a hardware-transaction window`
	})
}

// bad: a Begin window runs until the first Commit/Cancel.
func window(eng *htm.Engine, slot int) time.Time {
	ht := eng.Begin(slot)
	start := time.Now() // want `time.Now inside a hardware-transaction window`
	ht.Write(0, 1)
	ht.Commit()
	end := time.Now() // after the window closes, anything goes
	_ = start
	return end
}

// helper is reached from a window below: the call-graph walk flags its
// body even though helper itself mentions no htm type.
func helper(vals []uint64) []uint64 {
	return append(vals, 1) // want `append inside a hardware-transaction window`
}

func callsHelper(eng *htm.Engine, slot int) {
	eng.Execute(slot, func(t *htm.Txn) {
		helper(nil)
	})
}

// bad: the walk crosses package boundaries — sub.Scratch's allocation is
// flagged in sub's own file, and sub.Stamp's clock read is vouched for by
// the hatch next to it there.
func callsAcross(eng *htm.Engine, slot int) {
	eng.Execute(slot, func(t *htm.Txn) {
		_ = sub.Scratch(4)
		_ = sub.Stamp()
		t.Write(0, 1)
	})
}

type node struct{ next *node }

// bad: any function taking *htm.Txn is window code.
func onTxn(t *htm.Txn, n *node) {
	t.Write(0, 1)
	p := &node{next: n} // want `heap allocation .&composite literal.`
	_ = p
}

// good: deferred work runs after the window; annotated operations are
// vouched for by a human.
func escapes(eng *htm.Engine, slot int) {
	eng.Execute(slot, func(t *htm.Txn) {
		defer fmt.Println("after commit")
		time.Sleep(0) // parthtm:htmsafe — simulator-only pacing
		t.Work(10)
	})
}

// good: the tracing fast path — Record/RecordMark with a timestamp
// captured before the window opens — is htmsafe by construction.
func traced(eng *htm.Engine, slot int, buf *trace.Buffer) {
	ts := trace.Now()
	eng.Execute(slot, func(t *htm.Txn) {
		t.Write(0, 1)
		buf.Record(ts, trace.EvBegin, 1, 0, 0, 0)
		buf.RecordMark(ts, trace.EvRingPub, 0)
	})
}

// good: the kernel pattern — admission decided before the window opens,
// breaker evidence recorded and the scope closed after it.
func kernelPattern(eng *htm.Engine, slot int, gov *governor.Governor, st *governor.State) {
	v, _ := gov.Begin(st, 0)
	if v == governor.Serialize {
		return
	}
	res := eng.Execute(slot, func(t *htm.Txn) {
		t.Write(0, 1)
	})
	if !res.Committed {
		st.NoteHWAbort()
	}
	gov.Finish(st, 0)
}

// bad: admission hooks run at the kernel boundary, never inside a window.
func selfGoverned(eng *htm.Engine, slot int, gov *governor.Governor, st *governor.State) {
	eng.Execute(slot, func(t *htm.Txn) {
		if !gov.ChargeAttempt(st, 0) { // want `governor.ChargeAttempt inside a hardware-transaction window`
			return
		}
		t.Write(0, 1)
		st.NoteHWAbort() // want `governor.NoteHWAbort inside a hardware-transaction window`
	})
	ht := eng.Begin(slot)
	ht.Write(0, 1)
	gov.Finish(st, 0) // want `governor.Finish inside a hardware-transaction window`
	ht.Commit()
}

// bad: every other trace helper is off-limits inside a window — Now reads
// the clock, Sink methods lock and allocate.
func tracedSloppy(eng *htm.Engine, slot int, buf *trace.Buffer, sink *trace.Sink) {
	eng.Execute(slot, func(t *htm.Txn) {
		buf.Record(trace.Now(), trace.EvBegin, 1, 0, 0, 0) // want `trace.Now inside a hardware-transaction window`
		sink.Mark("in-window")                             // want `trace.Mark inside a hardware-transaction window`
		t.Write(0, 1)
	})
}

// good: the profiler's record hooks — like trace.Buffer.Record — are
// htmsafe by construction; the shard pointer was cached before the window.
func profiled(eng *htm.Engine, slot int, ps *prof.Shard) {
	eng.Execute(slot, func(t *htm.Txn) {
		t.Write(0, 1)
		ps.RecordConflict(7)
		ps.RecordCapacity(7)
		ps.RecordFootprint(0, 1, 2, 1, 1)
	})
}

// bad: every other prof entry point locks, allocates (the merged
// queries), or reads the clock (the sampler's Mark).
func profSloppy(eng *htm.Engine, slot int, p *prof.Profile) {
	eng.Execute(slot, func(t *htm.Txn) {
		sh := p.Shard(slot) // want `prof.Shard inside a hardware-transaction window`
		sh.RecordConflict(1)
		p.Mark("in-window") // want `prof.Mark inside a hardware-transaction window`
		_ = p.TopK(4)       // want `prof.TopK inside a hardware-transaction window`
		t.Write(0, 1)
	})
}

// good: the domain topology accessors are pure reads of immutable routing
// state, and TxnState bookkeeping touches only the calling thread's masks.
func domainAccessors(eng *htm.Engine, slot int, ds *domain.Domains, st *domain.TxnState) {
	eng.Execute(slot, func(t *htm.Txn) {
		d := ds.Of(7)
		_ = ds.N()
		_ = ds.Ring(d)
		t.Write(uint32(ds.Wlocks(d)), 1)
		_ = st.Count()
		_ = st.Shard()
	})
}

// bad: the cross-domain software-commit helpers spin, CAS shared metadata,
// or publish ring entries — none of that may run inside a window.
func domainCommitInWindow(eng *htm.Engine, slot int, ds *domain.Domains, st *domain.TxnState, sig *domain.Signature) {
	eng.Execute(slot, func(t *htm.Txn) {
		var start uint64
		ts, _, _ := ds.ClaimTimestamp(0, sig, &start) // want `domain.ClaimTimestamp inside a hardware-transaction window`
		ds.Publish(0, ts, sig)                        // want `domain.Publish inside a hardware-transaction window`
		ds.ReleaseWlocks(0, sig)                      // want `domain.ReleaseWlocks inside a hardware-transaction window`
		t.Write(0, 1)
	})
}

// bad: the same rule applies in a Begin window and to the remaining
// helpers — snapshotting, validation, and allocation are software-path
// work.
func domainSetupInWindow(eng *htm.Engine, slot int, ds *domain.Domains, st *domain.TxnState) {
	var starts [4]uint64
	ht := eng.Begin(slot)
	ds.SnapshotTimestamps(starts[:]) // want `domain.SnapshotTimestamps inside a hardware-transaction window`
	_, _ = ds.Validate(st)           // want `domain.Validate inside a hardware-transaction window`
	_ = ds.AllocLinesIn(1, 4)        // want `domain.AllocLinesIn inside a hardware-transaction window`
	ht.Commit()
}

// good: telemetry sources are registered at the harness boundary, before
// any window opens; the scrape loop samples from its own goroutine.
func observed(eng *htm.Engine, slot int, reg *obs.Registry) {
	reg.Register("sys", obs.Source{})
	eng.Execute(slot, func(t *htm.Txn) {
		t.Write(0, t.Read(0)+1)
	})
	var snap obs.Snapshot
	reg.Sample(&snap)
}

// bad: the telemetry plane has no htmsafe surface — registration locks
// and sampling merges histograms across every shard.
func observeInWindow(eng *htm.Engine, slot int, reg *obs.Registry) {
	eng.Execute(slot, func(t *htm.Txn) {
		reg.Register("sys", obs.Source{}) // want `obs.Register inside a hardware-transaction window`
		var snap obs.Snapshot
		reg.Sample(&snap) // want `obs.Sample inside a hardware-transaction window`
		_ = reg.Len()     // want `obs.Len inside a hardware-transaction window`
		t.Write(0, 1)
	})
}
