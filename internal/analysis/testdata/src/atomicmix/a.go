// Testdata for the atomicmix analyzer.
package atomicmix

import "sync/atomic"

// good: a field accessed exclusively through sync/atomic.
type cleanStats struct{ hits uint64 }

func (s *cleanStats) hit() uint64 {
	atomic.AddUint64(&s.hits, 1)
	return atomic.LoadUint64(&s.hits)
}

// bad: the same field also accessed plainly.
type dirtyStats struct{ misses uint64 }

func (s *dirtyStats) miss() { atomic.AddUint64(&s.misses, 1) }

func (s *dirtyStats) reset() { s.misses = 0 } // want `plain access to .misses.`

func (s *dirtyStats) peekMisses() uint64 {
	return s.misses // want `plain access to .misses.`
}

// bad: a package-level word mixed the same way.
var seq uint64

func next() uint64 { return atomic.AddUint64(&seq, 1) }

func peekSeq() uint64 {
	return seq // want `plain access to .seq.`
}

// good: suppressed — the annotation claims pre-publication access.
type published struct{ n uint64 }

func newPublished() *published {
	p := &published{}
	p.n = 42 // parthtm:plain — not visible to other goroutines yet
	return p
}

func (p *published) bump() { atomic.AddUint64(&p.n, 1) }
