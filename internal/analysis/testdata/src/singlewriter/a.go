// Testdata for the singlewriter analyzer.
package singlewriter

import (
	"repro/internal/domain"
	"repro/internal/exec"
	"repro/internal/tm"
)

var global tm.Shard

var aggregate tm.Counter

// good: the sanctioned accessors tie the shard to the calling thread.
func viaStats(st *tm.Stats, thread int) {
	st.Shard(thread).CommitsHTM.Inc()
	sh := st.Shard(thread)
	sh.CommitsSW.Add(3)
}

// good: (*exec.Thread).Shard is per-thread by construction.
func viaThread(t *exec.Thread) {
	t.Shard().CommitsHTM.Inc()
}

// good: a *tm.Shard parameter means the caller vouches for ownership.
func viaParam(sh *tm.Shard) {
	sh.CommitsHTM.Inc()
}

type worker struct{ sh *tm.Shard }

// good: a cached per-thread field.
func (w *worker) hit() { w.sh.CommitsSW.Inc() }

// bad: ranging visits shards owned by other threads.
func overAll(st *tm.Stats) {
	for _, sh := range st.All() { // want `ranging over all shards`
		sh.CommitsHTM.Inc()
	}
}

// bad: indexing with an arbitrary index proves nothing about ownership.
func byIndex(shards []*tm.Shard, i int) {
	shards[i].CommitsHTM.Inc() // want `indexed out of a shard slice`
}

// bad: the alias does not launder the indexed origin.
func byAlias(shards []*tm.Shard, i int) {
	sh := shards[i] // want `indexed out of a shard slice`
	sh.CommitsSW.Add(1)
}

// bad: a package-level shard is shared by every thread.
func onGlobal() {
	global.CommitsHTM.Inc() // want `package-level shard`
}

// bad: a Counter outside any shard is an aggregate.
func onAggregate() {
	aggregate.Inc() // want `outside a tm.Shard`
}

// good: suppressed — the annotation claims single-threaded context.
// parthtm:owner — runs after every worker has joined
func summarize(st *tm.Stats) {
	for _, sh := range st.All() {
		sh.CommitsHTM.Inc()
	}
}

// good: (*domain.TxnState).Shard is owner-bound — the state belongs to one
// thread and its shard pointer was bound to that owner at construction.
func viaTxnState(st *domain.TxnState) {
	st.Shard().CommitsSW.Inc()
	sh := st.Shard()
	sh.CommitsHTM.Inc()
}
