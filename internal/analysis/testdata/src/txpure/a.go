// Testdata for the txpure analyzer.
package txpure

import (
	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
)

var hot uint64

// good: write-only captures are out-parameters, overwritten wholesale by
// whichever attempt commits.
func transfer(sys tm.System, id int, from, to mem.Addr) (moved uint64) {
	sys.Atomic(id, func(x tm.Tx) {
		v := x.Read(from)
		x.Write(from, 0)
		x.Write(to, x.Read(to)+v)
		moved = v
	})
	return moved
}

// bad: a read+write capture accumulates garbage across aborted attempts.
func leakySum(sys tm.System, id int, addrs []mem.Addr) uint64 {
	var sum uint64
	sys.Atomic(id, func(x tm.Tx) {
		for _, a := range addrs {
			sum += x.Read(a) // want `reads and writes captured variable .sum.`
		}
	})
	return sum
}

// bad: direct memory traffic bypasses the transaction.
func bypass(sys tm.System, id int, m *mem.Memory, a mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		m.Store(a, 1) // want `mem.Memory.Store directly`
	})
}

// bad: the body's effect depends on state no Tx.Read observed.
func impureRead(sys tm.System, id int, a mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		x.Write(a, hot) // want `reads package-level mutable variable .hot.`
	})
}

// bad: aborted attempts would leave their mark on package state.
func impureWrite(sys tm.System, id int, a mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		hot = x.Read(a) // want `writes package-level variable .hot.`
	})
}

// bad: exec.Txn levels are transaction bodies too.
func levels() exec.Txn {
	var retries int
	return exec.Txn{
		Mid: func() bool {
			retries++ // want `reads and writes captured variable .retries.`
			return retries < 8
		},
	}
}

// bad: admission belongs to the kernel — a body reruns on abort, so an
// in-body governor call is charged once per attempt.
func selfAdmitted(sys tm.System, id int, gov *governor.Governor, st *governor.State, a mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		if !gov.ChargeAttempt(st, 0) { // want `transaction body calls governor.ChargeAttempt`
			return
		}
		x.Write(a, 1)
		st.NoteHWAbort() // want `transaction body calls governor.NoteHWAbort`
	})
}

// good: suppressed — the annotation claims the impurity is retry-safe.
func instrumented(sys tm.System, id int, a mem.Addr) int {
	var attempts int
	sys.Atomic(id, func(x tm.Tx) {
		attempts++ // parthtm:impure — attempt counting is the point
		x.Write(a, uint64(attempts))
	})
	return attempts
}

// bad: impurity hidden behind one level of local function indirection —
// the bound literal's statements are part of the body, and its captures
// are the body's captures.
func indirected(sys tm.System, id int, a mem.Addr) uint64 {
	var count uint64
	bump := func() { count++ } // want `reads and writes captured variable .count.`
	sys.Atomic(id, func(x tm.Tx) {
		x.Write(a, count)
		bump()
	})
	return count
}

// good: a locally bound pure helper adds nothing to the body.
func indirectedPure(sys tm.System, id int, from, to mem.Addr) {
	move := func(x tm.Tx) {
		v := x.Read(from)
		x.Write(to, v)
	}
	sys.Atomic(id, func(x tm.Tx) {
		move(x)
	})
}

// bad: attribution belongs to the engine and the kernel — a body rerun on
// abort would double-count profiler events.
func selfProfiled(sys tm.System, id int, ps *prof.Shard, a mem.Addr) {
	sys.Atomic(id, func(x tm.Tx) {
		x.Write(a, 1)
		ps.RecordConflict(uint32(a))      // want `transaction body calls prof.RecordConflict`
		ps.RecordFootprint(0, 0, 1, 1, 1) // want `transaction body calls prof.RecordFootprint`
	})
}
