// Stub of repro/internal/exec for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package exec

import (
	"repro/internal/htm"
	"repro/internal/tm"
)

type Txn struct {
	Fast func() htm.Result
	Mid  func() bool
	Slow func()
}

type Thread struct{ sh *tm.Shard }

func (t *Thread) Shard() *tm.Shard { return t.sh }
