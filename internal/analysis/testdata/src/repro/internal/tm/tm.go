// Stub of repro/internal/tm for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package tm

import "repro/internal/mem"

type Counter struct{ v uint64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(n uint64) { c.v += n }
func (c *Counter) Load() uint64 { return c.v }

type Shard struct {
	CommitsHTM Counter
	CommitsSW  Counter
}

type Stats struct{ shards []*Shard }

func (s *Stats) Shard(thread int) *Shard { return s.shards[thread] }
func (s *Stats) All() []*Shard           { return s.shards }

type Tx interface {
	Read(a mem.Addr) uint64
	Write(a mem.Addr, v uint64)
	WriteLocal(a mem.Addr, v uint64)
	Pause()
}

type System interface {
	Atomic(thread int, body func(Tx))
}
