// Stub of repro/internal/domain for analyzer testdata: same import path
// and the same names the analyzers key on, none of the behaviour.
package domain

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

type Signature struct{}

type Ring struct{}

type Domains struct{}

func (d *Domains) N() int                { return 1 }
func (d *Domains) Ring(i int) *Ring      { return nil }
func (d *Domains) Wlocks(i int) mem.Addr { return 0 }
func (d *Domains) Of(a mem.Addr) int     { return 0 }
func (d *Domains) AllocLinesIn(dm, n int) mem.Addr {
	return 0
}
func (d *Domains) SnapshotTimestamps(start []uint64) {}
func (d *Domains) ClaimTimestamp(dm int, readSig *Signature, start *uint64) (uint64, bool, bool) {
	return 0, false, false
}
func (d *Domains) Publish(dm int, ts uint64, pub *Signature) {}
func (d *Domains) ReleaseWlocks(dm int, s *Signature)        {}
func (d *Domains) Validate(t *TxnState) (bool, bool)         { return true, false }

type TxnState struct {
	Touched, Wrote uint64
}

func (t *TxnState) Shard() *tm.Shard { return nil }
func (t *TxnState) Count() int       { return 0 }
func (t *TxnState) Reset()           {}
