// Stub of repro/internal/prof for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package prof

type HotLine struct {
	Line       uint32
	Count, Err uint64
}

type Shard struct{}

func (s *Shard) RecordConflict(line uint32)                                 {}
func (s *Shard) RecordCapacity(line uint32)                                 {}
func (s *Shard) RecordFootprint(class, outcome uint8, read, write, occ int) {}

type Profile struct{}

func (p *Profile) Shard(id int) *Shard  { return nil }
func (p *Profile) TopK(k int) []HotLine { return nil }
func (p *Profile) Mark(label string)    {}
