// Stub of repro/internal/htm for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package htm

type Result struct{ Committed bool }

type Engine struct{}

func (e *Engine) Begin(slot int) *Txn                      { return &Txn{} }
func (e *Engine) Execute(slot int, body func(*Txn)) Result { return Result{} }

type Txn struct{}

func (t *Txn) Read(a uint32) uint64     { return 0 }
func (t *Txn) Write(a uint32, v uint64) {}
func (t *Txn) Work(c int64)             {}
func (t *Txn) Commit()                  {}
func (t *Txn) Cancel()                  {}
