// Stub of internal/core's commit sequence for the domainorder analyzer:
// the same import path (so the calls count as confined) with the walk
// shapes distilled to their iteration structure.
package core

import (
	"math/bits"

	"repro/internal/domain"
)

// good: the canonical commit — claim/publish ascend the written mask and
// clear it each iteration, release descends, the mirror of acquisition.
func commitOrdered(ds *domain.Domains, st *domain.TxnState, rs, ws *domain.Signature) {
	var start uint64
	for m := st.Wrote; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		ts, ok, _ := ds.ClaimTimestamp(d, rs, &start)
		if !ok {
			return
		}
		ds.Publish(d, ts, ws)
	}
	for m := st.Wrote; m != 0; {
		d := 63 - bits.LeadingZeros64(m)
		ds.ReleaseWlocks(d, ws)
		m &^= 1 << uint(d)
	}
}

// good: a constant domain index needs no ordering proof.
func commitSingle(ds *domain.Domains, rs, ws *domain.Signature) {
	var start uint64
	ts, ok, _ := ds.ClaimTimestamp(0, rs, &start)
	if ok {
		ds.Publish(0, ts, ws)
	}
	ds.ReleaseWlocks(0, ws)
}

// bad: claim/publish walking the mask downward — two commits walking in
// different orders can deadlock on each other's serialization points.
func claimDescending(ds *domain.Domains, st *domain.TxnState, rs, ws *domain.Signature) {
	var start uint64
	for m := st.Wrote; m != 0; {
		d := 63 - bits.LeadingZeros64(m)
		ts, _, _ := ds.ClaimTimestamp(d, rs, &start) // want `ClaimTimestamp called in a descending mask walk`
		ds.Publish(d, ts, ws)                        // want `Publish called in a descending mask walk`
		m &^= 1 << uint(d)
	}
}

// bad: releases ascending — not the mirror of the acquisition order.
func releaseAscending(ds *domain.Domains, st *domain.TxnState, ws *domain.Signature) {
	for m := st.Wrote; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		ds.ReleaseWlocks(d, ws) // want `ReleaseWlocks called in an ascending mask walk`
	}
}

// bad: a plain counter proves nothing about the order the written
// domains are visited in.
func unprovableIndex(ds *domain.Domains, n int, ws *domain.Signature) {
	for d := 0; d < n; d++ {
		ds.ReleaseWlocks(d, ws) // want `neither a constant nor derived from a canonical mask walk`
	}
}

// bad: the walk never clears the mask — no progress.
func stuckWalk(ds *domain.Domains, st *domain.TxnState, rs, ws *domain.Signature) {
	var start uint64
	for m := st.Wrote; m != 0; {
		d := bits.TrailingZeros64(m)
		ts, _, _ := ds.ClaimTimestamp(d, rs, &start) // want `never clears the mask`
		ds.Publish(d, ts, ws)                        // want `never clears the mask`
	}
}

// bad: a loop that claims but never publishes leaves the domain's ring
// entry open, wedging every validator of that domain.
func claimNoPublish(ds *domain.Domains, st *domain.TxnState, rs *domain.Signature) {
	var start uint64
	for m := st.Wrote; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		ds.ClaimTimestamp(d, rs, &start) // want `claimed timestamp is never published in the same walk`
	}
}

// good: suppressed — the annotation claims the order is proven by other
// means (here, a single-domain topology where order is vacuous).
func vouched(ds *domain.Domains, st *domain.TxnState, rs, ws *domain.Signature) {
	var start uint64
	for m := st.Wrote; m != 0; m &= m - 1 {
		d := 63 - bits.LeadingZeros64(m)
		ts, _, _ := ds.ClaimTimestamp(d, rs, &start) // parthtm:ordered — single-domain build, order vacuous
		ds.Publish(d, ts, ws)                        // parthtm:ordered — single-domain build, order vacuous
	}
}
