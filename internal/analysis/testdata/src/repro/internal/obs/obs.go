// Stub of repro/internal/obs for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package obs

type Source struct{}

type Snapshot struct{}

type Registry struct{}

func NewRegistry() *Registry { return nil }

func (r *Registry) Register(name string, src Source) {}
func (r *Registry) Sample(dst *Snapshot)             {}
func (r *Registry) Len() int                         { return 0 }
