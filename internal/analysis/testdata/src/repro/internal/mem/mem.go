// Stub of repro/internal/mem for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package mem

type Addr uint32

type Memory struct{ words []uint64 }

func (m *Memory) Load(a Addr) uint64           { return m.words[a] }
func (m *Memory) Store(a Addr, v uint64)       { m.words[a] = v }
func (m *Memory) CAS(a Addr, o, n uint64) bool { return true }
