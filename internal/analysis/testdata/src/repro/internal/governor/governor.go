// Package governor stubs repro/internal/governor for the analyzer tests:
// the admission/breaker API shape the txpure and htmregion testdata call
// into. The hooks here are clean — they double as the good cases for
// htmregion's allocation-free enforcement (no `want` comments on them).
package governor

import (
	"sync"
	"sync/atomic"
)

// Verdict is the admission decision for one transaction.
type Verdict uint8

const (
	Admit Verdict = iota
	Probe
	Serialize
)

// Reason explains a Serialize verdict.
type Reason uint8

const (
	ReasonNone Reason = iota
	ReasonOverload
	ReasonBreaker
)

// Transition is a circuit-breaker state change observed at Finish.
type Transition uint8

const (
	TransNone Transition = iota
	TransTrip
	TransClose
)

// State is one thread's governor cell.
type State struct {
	open    bool
	sawHW   bool
	history []bool
}

// NoteHWAbort records breaker evidence. Allocation-free.
func (st *State) NoteHWAbort() { st.sawHW = true }

// Open reports whether the breaker is open.
func (st *State) Open() bool { return st.open }

// Governor is one system's resource-governance state.
type Governor struct {
	inflight atomic.Int64
	mu       sync.Mutex
	states   []*State
}

// New builds a governor.
func New() *Governor { return &Governor{} }

// State returns thread id's cell, growing the set as needed. Not a hot
// hook: it may lock and allocate.
func (g *Governor) State(id int) *State {
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.states) <= id {
		g.states = append(g.states, new(State))
	}
	return g.states[id]
}

// Begin admits one transaction. Allocation-free.
func (g *Governor) Begin(st *State, now int64) (Verdict, Reason) {
	st.sawHW = false
	if g.inflight.Add(1) > 64 {
		return Serialize, ReasonOverload
	}
	if st.open {
		return Serialize, ReasonBreaker
	}
	return Admit, ReasonNone
}

// ChargeAttempt charges one optimistic attempt. Allocation-free.
func (g *Governor) ChargeAttempt(st *State, now int64) bool { return true }

// Finish closes the transaction's governor scope. Allocation-free.
func (g *Governor) Finish(st *State, path uint8) Transition {
	g.inflight.Add(-1)
	if st.open {
		st.open = false
		return TransClose
	}
	return TransNone
}

// TryAcquire reserves one admission slot without blocking.
func (g *Governor) TryAcquire() bool { return g.inflight.Add(1) < 64 }

// Release returns a TryAcquire slot.
func (g *Governor) Release() { g.inflight.Add(-1) }
