// Bad cases for htmregion's allocation-free-hook enforcement: any
// function in this package whose doc claims "allocation-free" must not
// allocate, take a sync lock, call into fmt, or re-read the clock — in
// its own body or in any same-package function it calls.
package governor

import (
	"fmt"
	"sync"
	"time"
)

// journal is an (ill-conceived) admission audit trail.
type journal struct {
	mu      sync.Mutex
	entries []int64
}

// note records one admission. Allocation-free.
func (j *journal) note() {
	j.mu.Lock()                                          // want `note takes a lock \(Mutex\.Lock\) but is documented allocation-free`
	j.entries = append(j.entries, time.Now().UnixNano()) // want `note heap-allocates \(append\)` `note reads the clock \(time\.Now\)`
	j.mu.Unlock()                                        // want `note takes a lock \(Mutex\.Unlock\)`
}

// snapshot copies the journal. Its doc makes no fast-path claim, so the
// allocations below are legitimate.
func (j *journal) snapshot() []int64 {
	out := make([]int64, len(j.entries))
	copy(out, j.entries)
	return out
}

// describe renders the admission gauge. Allocation-free.
func describe(n int64) string {
	c := &cell{n: n}                       // want `describe heap-allocates \(&composite literal\)`
	return fmt.Sprintf("inflight=%d", c.n) // want `describe calls fmt\.Sprintf but is documented allocation-free`
}

type cell struct{ n int64 }

// reset clears one breaker cell via a shared helper: the call-graph walk
// holds the helper to the caller's contract. Allocation-free.
func (st *State) reset() {
	scrub(st)
}

func scrub(st *State) {
	st.history = make([]bool, 8) // want `reset heap-allocates \(make\)`
	go func() {                  // want `reset spawns a goroutine`
		st.history[0] = false
	}()
}
