// Stub of repro/internal/trace for analyzer testdata: same import path and
// the same names the analyzers key on, none of the behaviour.
package trace

type Kind uint8

const (
	EvBegin Kind = 1
	EvRingPub
)

func Now() int64 { return 0 }

type Buffer struct{}

func (b *Buffer) Record(ts int64, k Kind, id, arg uint64, cause, path uint8) {}
func (b *Buffer) RecordMark(ts int64, k Kind, arg uint64)                    {}

type Sink struct{}

func (s *Sink) Mark(label string) {}
