// Support for running the suite under the standard vet driver:
//
//	go vet -vettool=$(which parthtm-vet) ./...
//
// cmd/go speaks a fixed protocol to vet tools: it first queries the
// tool's flags (`tool -flags`, JSON on stdout), then invokes the tool
// once per package as `tool <flags> <objdir>/vet.cfg`, where the .cfg
// file is a JSON description of the type-checked package (files, import
// map, export-data locations). The tool exits non-zero if it found
// problems, printing them to stderr. Dependencies are visited with
// VetxOnly set, asking only for serialized facts — this suite uses no
// cross-package facts, so those runs just write an empty facts file.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// VetConfig mirrors cmd/go's vetConfig — the JSON payload of the .cfg
// file that `go vet` hands to a -vettool.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// RunUnitchecker executes one vet-driver invocation against cfgFile and
// returns the diagnostics. The vet driver hands over _test.go files as
// part of each package; like the stand-alone driver, the pass skips them
// (the TM discipline binds production paths — tests deliberately poke at
// torn state), so both drivers report identical findings.
func RunUnitchecker(analyzers []*Analyzer, cfgFile string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgFile, err)
	}

	// Facts output must exist even when empty, or cmd/go re-runs the tool
	// on every build. This suite carries no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("parthtm-vet: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := checkPackage(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	pass := RunAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	return pass, nil
}
