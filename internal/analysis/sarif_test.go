package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func diagAt(file string, line, col int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestSortDiagnosticsDeterministic(t *testing.T) {
	in := []Diagnostic{
		diagAt("b.go", 1, 1, "txpure", "z"),
		diagAt("a.go", 9, 2, "txpure", "m"),
		diagAt("a.go", 9, 2, "atomicmix", "m"),
		diagAt("a.go", 9, 2, "txpure", "m"), // exact repeat: dropped
		diagAt("a.go", 2, 5, "txpure", "m"),
	}
	got := sortDiagnostics(in)
	want := []Diagnostic{
		diagAt("a.go", 2, 5, "txpure", "m"),
		diagAt("a.go", 9, 2, "atomicmix", "m"),
		diagAt("a.go", 9, 2, "txpure", "m"),
		diagAt("b.go", 1, 1, "txpure", "z"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		diagAt("/work/repo/internal/tm/tm.go", 3, 7, "txpure", "bad"),
		diagAt("/elsewhere/x.go", 1, 1, "txfootprint", "worse"),
	}

	var first, second bytes.Buffer
	if err := WriteSARIF(&first, "/work/repo", All(), diags); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&second, "/work/repo", All(), diags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("SARIF output is not byte-stable across runs")
	}

	var doc sarifLog
	if err := json.Unmarshal(first.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("malformed log: version %q, %d runs", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "parthtm-vet" || len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("driver = %q with %d rules, want parthtm-vet with %d",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/tm/tm.go" {
		t.Errorf("in-repo path not relativized: %q", uri)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/x.go" {
		t.Errorf("out-of-repo path mangled: %q", uri)
	}
	if reg := run.Results[0].Locations[0].PhysicalLocation.Region; reg.StartLine != 3 || reg.StartColumn != 7 {
		t.Errorf("region = %+v, want line 3 col 7", reg)
	}

	// A clean run must carry an empty results array, not null — some
	// ingesters reject null.
	var clean bytes.Buffer
	if err := WriteSARIF(&clean, "", All(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clean.String(), `"results": []`) {
		t.Errorf("clean run results not an empty array:\n%s", clean.String())
	}
}
