// SARIF 2.1.0 output, the interchange format GitHub code scanning (and
// most analysis dashboards) ingest. The writer emits the minimal valid
// document: one run, the driver's rule table built from the analyzer
// suite, and one result per diagnostic. Diagnostics arrive already sorted
// and deduplicated (sortDiagnostics), so the document is byte-stable for
// identical findings.
package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes diags as an indented SARIF 2.1.0 document. File paths
// are made relative to baseDir (when possible) with forward slashes, the
// form code-scanning uploads expect; baseDir "" leaves them as reported.
func WriteSARIF(w io.Writer, baseDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	var rules []sarifRule
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{} // empty array, not null: some ingesters insist
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(baseDir, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "parthtm-vet", Rules: rules}},
			Results: results,
		}},
	})
}

func sarifURI(baseDir, filename string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
