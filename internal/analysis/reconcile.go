// Profile reconciliation: parthtm-vet -prof cross-checks the static
// footprint bounds computed by the txfootprint analyzer against the
// dynamic footprint histograms a tmprof profile recorded. The static
// estimator is deliberately conservative about what it can see — but it
// is blind to alias-based address arithmetic and data-dependent access
// patterns, so an *underestimate* (observed lines exceeding every static
// bound) means a body is touching memory the model did not account for.
// Reconciliation turns that blind spot into a checkable invariant.
package analysis

import (
	"fmt"
	"io"
	"os"

	"repro/internal/prof"
	"repro/internal/sig"
)

// Engine-side commit-protocol overhead, in cache lines, added to every
// static bound before comparing against observed footprints. The fast
// path brackets the body with protocol traffic the body-level estimator
// does not model: monitored reads of the global-lock line, the write-lock
// signature (sig.Lines lines per touched domain), the domain ring's
// timestamp line and entry header; and writes of the timestamp line plus
// the published ring entry (header line + sig.Lines signature lines).
// The margins cover one domain — the CI reconciliation smoke runs the
// single-domain harness — and a multi-domain sweep's extra overhead is
// dominated by bodies the estimator already classifies unbounded.
const (
	// ReadMarginLines = glock line + wlocks signature + timestamp line +
	// entry header line.
	ReadMarginLines = sig.Lines + 3
	// WriteMarginLines = timestamp line + entry header line + signature.
	WriteMarginLines = sig.Lines + 2
)

// A FootprintMismatch is one reconciliation finding: a recorded footprint
// quantile exceeded every static bound plus the protocol margin.
type FootprintMismatch struct {
	// Class/Outcome identify the offending profile row.
	Class   string
	Outcome string
	// Kind is "read" or "write".
	Kind string
	// Observed is the row's p99 line count; Static the largest static
	// bound over all transaction bodies; Allowed = Static + margin.
	Observed int64
	Static   int64
	Allowed  int64
}

func (m FootprintMismatch) String() string {
	return fmt.Sprintf(
		"profile reconciliation: observed %s footprint p99 of %d lines (class %s, outcome %s) exceeds the static bound of %d (+%d protocol margin): the txfootprint estimator underestimates a transaction body — likely alias-based or data-dependent addressing it cannot see",
		m.Kind, m.Observed, m.Class, m.Outcome, m.Static, m.Allowed-m.Static)
}

// ReconcileProfile checks a recorded profile series against the static
// footprint bounds of every transaction body in prog. It returns one
// mismatch per (class, outcome, kind) whose observed p99 exceeds the
// static maximum plus the protocol margin. A profile with no footprint
// rows is an error, not a pass — reconciling against nothing would make
// the CI smoke vacuous.
func ReconcileProfile(prog *Program, series *prof.Series) ([]FootprintMismatch, error) {
	if len(series.Footprints) == 0 {
		return nil, fmt.Errorf("profile contains no footprint rows: was it recorded with profiling enabled (-prof-out after a profiled run)?")
	}
	bounds := FootprintBounds(prog)
	if len(bounds) == 0 {
		return nil, fmt.Errorf("no transaction bodies found in the analyzed packages: nothing to reconcile the profile against")
	}

	// The profile merges every body's footprints, so the comparison point
	// is the maximum static bound over all bodies. One unbounded body makes
	// the corresponding dimension unfalsifiable — by then the txfootprint
	// analyzer has already demanded a Pause partition or a bigtx rationale.
	var maxRead, maxWrite int64
	readUnbounded, writeUnbounded := false, false
	for _, b := range bounds {
		if b.ReadUnbounded {
			readUnbounded = true
		} else if b.ReadLines > maxRead {
			maxRead = b.ReadLines
		}
		if b.WriteUnbounded {
			writeUnbounded = true
		} else if b.WriteLines > maxWrite {
			maxWrite = b.WriteLines
		}
	}

	var out []FootprintMismatch
	for _, st := range series.Footprints {
		if !readUnbounded && st.ReadP99 > maxRead+ReadMarginLines {
			out = append(out, FootprintMismatch{
				Class: st.Class, Outcome: st.Outcome, Kind: "read",
				Observed: st.ReadP99, Static: maxRead, Allowed: maxRead + ReadMarginLines,
			})
		}
		if !writeUnbounded && st.WriteP99 > maxWrite+WriteMarginLines {
			out = append(out, FootprintMismatch{
				Class: st.Class, Outcome: st.Outcome, Kind: "write",
				Observed: st.WriteP99, Static: maxWrite, Allowed: maxWrite + WriteMarginLines,
			})
		}
	}
	return out, nil
}

// CheckProfile loads patterns (as Check does), reads the tmprof series at
// profilePath, and reconciles it against the loaded packages' static
// bounds — the library entry point behind `parthtm-vet -prof`.
func CheckProfile(dir, profilePath string, patterns ...string) ([]FootprintMismatch, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	series, err := DecodeSeriesFile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", profilePath, err)
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return ReconcileProfile(NewProgram(pkgs...), series)
}

// DecodeSeriesFile parses a tmprof JSON series.
func DecodeSeriesFile(r io.Reader) (*prof.Series, error) {
	return prof.DecodeSeries(r)
}
