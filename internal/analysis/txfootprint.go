package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/htm"
	"repro/internal/mem"
)

// TxFootprint bounds every transaction body's memory footprint at vet
// time and classifies it against the simulated HTM capacity model.
//
// The paper's premise is that a transaction whose footprint exceeds
// best-effort HTM capacity can never commit in hardware: the write buffer
// is a set-associative L1 (htm.Config WriteSets × WriteWays, WriteLines
// total) and the read set tops out at ReadLinesHard monitored lines.
// Until now the repository discovered oversized transactions only at
// runtime, through tmprof's footprint histograms. This analyzer computes
// a conservative static bound on the distinct memory lines each tm.Tx /
// exec.Txn body reads and writes:
//
//   - every tm.Tx Read/Write/WriteLocal and htm.Txn Read/Write is one
//     access; its line contribution follows internal/mem geometry
//     (addresses are word indices, mem.LineWords words per line);
//   - an access whose address is invariant across its enclosing loops
//     contributes one line, however often the loops run;
//   - constant-bound loops multiply: an address affine in the loop
//     variable with word stride s over n iterations touches at most
//     min(n, s·(n−1)/LineWords + 2) distinct lines; non-affine addresses
//     are charged one line per iteration;
//   - calls are resolved through the shared call-graph summaries
//     (callgraph.go): a callee that receives a tm.Tx or *htm.Txn
//     contributes its own bound, multiplied by the caller's loop trips;
//     unknown callees (func values, unloaded packages, cycles) that
//     carry a transaction capability are unbounded;
//   - anything the estimator cannot bound — dynamic trip counts, range
//     over slices or maps — classifies the body *unbounded*.
//
// Classification against htm.DefaultConfig: a body whose write bound
// exceeds WriteLines (or read bound exceeds ReadLinesHard) must
// capacity-abort on the fast path every time and is flagged as such; a
// read bound past ReadLinesSoft or a write bound past half the write
// buffer likely aborts (set-associativity conflicts arrive well before
// the aggregate limit) and is flagged as likely. An unbounded body is
// flagged only when it declares no partition points (tm.Tx.Pause): Pause
// is the paper's prescription for oversized workloads — the partitioned
// path splits the body at those marks — so a pausing body has already
// opted in to resource management.
//
// `// parthtm:bigtx` suppresses a finding for intentionally oversized
// workloads (labyrinth-style region growth); the annotation is a claim
// that the body is expected to run on the partitioned or slow path. The
// static bounds of every body — including suppressed ones — are exported
// through FootprintBounds for the parthtm-vet -prof reconciliation mode,
// which cross-checks them against recorded tmprof footprint histograms.
var TxFootprint = &Analyzer{
	Name: "txfootprint",
	Tag:  "bigtx",
	Doc: "bound each transaction body's static read/write line footprint and " +
		"flag bodies that must or likely will capacity-abort on the fast path",
	Run: runTxFootprint,
}

// boundCap keeps line arithmetic far from int64 overflow while staying
// effectively infinite next to any real capacity limit.
const boundCap = int64(1) << 40

// A lineBound is a conservative count of distinct cache lines.
type lineBound struct {
	n         int64
	unbounded bool
}

func addBound(a, b lineBound) lineBound {
	if a.unbounded || b.unbounded {
		return lineBound{unbounded: true}
	}
	n := a.n + b.n
	if n > boundCap {
		n = boundCap
	}
	return lineBound{n: n}
}

// scaleBound multiplies a bound by k loop iterations (k < 0 = unbounded).
// Scaling zero stays zero: a loop that touches nothing costs nothing no
// matter how often it runs.
func scaleBound(b lineBound, k int64) lineBound {
	if !b.unbounded && b.n == 0 {
		return b
	}
	if b.unbounded || k < 0 {
		return lineBound{unbounded: true}
	}
	return lineBound{n: mulCap(b.n, k)}
}

func mulCap(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > boundCap/b {
		return boundCap
	}
	return a * b
}

// footFacts is one function's footprint summary: conservative bounds on
// distinct lines read and written per invocation, and whether it declares
// a partition point.
type footFacts struct {
	reads  lineBound
	writes lineBound
	pause  bool
}

// newFootTable builds the interprocedural summary table for prog.
func newFootTable(prog *Program) *SummaryTable[footFacts] {
	return NewSummaryTable(prog, func(n *FuncNode, callee func(*types.Func) (footFacts, bool)) footFacts {
		return scanFootprint(n.Pkg, n.Decl.Body, callee)
	})
}

// A txBody is one recognized transaction body in a package.
type txBody struct {
	lit  *ast.FuncLit
	kind string
}

// collectTxBodies finds every tm.Tx function literal and every exec.Txn
// Fast level literal in pkg's production files. Only the Fast level runs
// under HTM — Mid and Slow are software fallbacks with no capacity limit,
// and the FastCommitted/FastResource fields are post-window notification
// hooks — so only Fast bodies are footprint-bounded.
func collectTxBodies(pkg *Package) []txBody {
	var bodies []txBody
	for _, f := range sourceFilesOf(pkg) {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			switch {
			case isTxBody(pkg.Info, lit):
				bodies = append(bodies, txBody{lit: lit, kind: "transaction body"})
				return false
			case execLevelName(pkg.Info, lit, stack) == "Fast":
				bodies = append(bodies, txBody{lit: lit, kind: "fast-path level body"})
				return false
			}
			return true
		})
	}
	return bodies
}

// sourceFilesOf yields pkg's production files (the IncludeTests=false
// view shared by every driver).
func sourceFilesOf(pkg *Package) []*ast.File {
	var out []*ast.File
	for _, f := range pkg.Files {
		if !isTestFile(pkg.Fset, f) {
			out = append(out, f)
		}
	}
	return out
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

func runTxFootprint(pass *Pass) {
	table := newFootTable(pass.Prog)
	cfg := htm.DefaultConfig()
	for _, b := range collectTxBodies(pass.This) {
		facts := scanFootprint(pass.This, b.lit.Body, table.Of)
		switch {
		case facts.reads.unbounded || facts.writes.unbounded:
			if facts.pause {
				// The body declares partition points: the partitioned path
				// splits it at those marks, which is exactly the paper's
				// answer to unbounded footprints.
				continue
			}
			pass.Reportf(b.lit.Pos(),
				"%s has a statically unbounded line footprint and declares no partition points: best-effort HTM cannot commit an oversized transaction — add tm.Tx.Pause partition marks or annotate parthtm:bigtx with the slow-path rationale", b.kind)
		case facts.writes.n > int64(cfg.WriteLines):
			pass.Reportf(b.lit.Pos(),
				"%s statically writes up to %d distinct lines, exceeding the %d-line HTM write buffer: it must capacity-abort on the fast path every attempt — partition it (tm.Tx.Pause) or annotate parthtm:bigtx to route it to the fallback paths", b.kind, facts.writes.n, cfg.WriteLines)
		case facts.reads.n > int64(cfg.ReadLinesHard):
			pass.Reportf(b.lit.Pos(),
				"%s statically reads up to %d distinct lines, exceeding the %d-line hard read-set limit: it must capacity-abort on the fast path every attempt — partition it (tm.Tx.Pause) or annotate parthtm:bigtx", b.kind, facts.reads.n, cfg.ReadLinesHard)
		case facts.reads.n > int64(cfg.ReadLinesSoft):
			pass.Reportf(b.lit.Pos(),
				"%s statically reads up to %d distinct lines, past the %d-line soft read budget: capacity aborts are likely on the fast path — consider partitioning (tm.Tx.Pause) or annotate parthtm:bigtx", b.kind, facts.reads.n, cfg.ReadLinesSoft)
		case facts.writes.n > int64(cfg.WriteLines)/2:
			pass.Reportf(b.lit.Pos(),
				"%s statically writes up to %d distinct lines, past half the %d-line write buffer: set-associativity evictions make capacity aborts likely on the fast path — consider partitioning (tm.Tx.Pause) or annotate parthtm:bigtx", b.kind, facts.writes.n, cfg.WriteLines)
		}
	}
}

// BodyFootprint is one transaction body's static footprint bound, as
// exported for profile reconciliation (parthtm-vet -prof).
type BodyFootprint struct {
	Pos  token.Position
	Kind string

	// ReadLines/WriteLines are conservative distinct-line bounds, valid
	// when the corresponding Unbounded flag is false.
	ReadLines      int64
	WriteLines     int64
	ReadUnbounded  bool
	WriteUnbounded bool

	// Pause reports whether the body declares tm.Tx.Pause partition points.
	Pause bool
	// BigTx reports whether a parthtm:bigtx annotation covers the body.
	BigTx bool
}

// FootprintBounds computes the static footprint bound of every
// transaction body in the program — including bigtx-annotated ones, which
// still execute and still show up in recorded profiles.
func FootprintBounds(prog *Program) []BodyFootprint {
	table := newFootTable(prog)
	var out []BodyFootprint
	for _, pkg := range prog.Packages() {
		notes := prog.notesFor(pkg)
		for _, b := range collectTxBodies(pkg) {
			facts := scanFootprint(pkg, b.lit.Body, table.Of)
			out = append(out, BodyFootprint{
				Pos:            pkg.Fset.Position(b.lit.Pos()),
				Kind:           b.kind,
				ReadLines:      facts.reads.n,
				WriteLines:     facts.writes.n,
				ReadUnbounded:  facts.reads.unbounded,
				WriteUnbounded: facts.writes.unbounded,
				Pause:          facts.pause,
				BigTx:          notes.covers(pkg.Fset, b.lit.Pos(), TxFootprint.Tag),
			})
		}
	}
	return out
}

// ---- the estimator ----

// loopInfo is one enclosing loop's analysis: its trip-count bound, loop
// variable, and the set of variables it taints (declares, assigns, or
// takes the address of) — the variance oracle for addresses beneath it.
type loopInfo struct {
	trip    int64 // iteration bound; -1 = unbounded
	v       *types.Var
	tainted map[*types.Var]bool
}

// scanFootprint computes the footprint facts of one function or
// transaction body. callee resolves interprocedural summaries and reports
// ok=false for unknown bodies and cycles, which scan treats as unbounded
// when the callee carries a transaction capability.
func scanFootprint(view *Package, root ast.Node, callee func(*types.Func) (footFacts, bool)) footFacts {
	var facts footFacts
	loopIdx := map[ast.Node]*loopInfo{}
	loopsOf := func(stack []ast.Node) []*loopInfo {
		var out []*loopInfo
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				li := loopIdx[n]
				if li == nil {
					li = analyzeLoop(view, n)
					loopIdx[n] = li
				}
				out = append(out, li)
			}
		}
		return out
	}

	walkStack(root, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Conversions are transparent: keep walking the operand.
		if tv, ok := view.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		fn := calleeFunc(view.Info, call)

		var arg0 ast.Expr
		if len(call.Args) > 0 {
			arg0 = call.Args[0]
		}
		switch {
		case isMethodOf(fn, tmPath, "Tx", "Read") || isMethodOf(fn, htmPath, "Txn", "Read"):
			facts.reads = addBound(facts.reads, accessLines(view, arg0, loopsOf(stack)))
			return true
		case isMethodOf(fn, tmPath, "Tx", "Write") || isMethodOf(fn, tmPath, "Tx", "WriteLocal") ||
			isMethodOf(fn, htmPath, "Txn", "Write"):
			facts.writes = addBound(facts.writes, accessLines(view, arg0, loopsOf(stack)))
			return true
		case isMethodOf(fn, tmPath, "Tx", "Pause"):
			facts.pause = true
			return true
		}
		if fn == nil {
			// Func-value call: unbounded only if its type could carry the
			// transaction into unknown code.
			if tv, ok := view.Info.Types[call.Fun]; ok && typeCarriesTx(tv.Type, 0) {
				facts.reads.unbounded = true
				facts.writes.unbounded = true
			}
			return true
		}
		switch funcPkgPath(fn) {
		case tmPath, htmPath:
			// Remaining model-internal methods (Work, Thread, Commit, …)
			// touch no workload lines.
			return true
		}
		if !funcCarriesTx(fn) {
			return true // cannot access transactional memory
		}
		sub, ok := callee(fn)
		if !ok {
			// Unknown body (not loaded, interface method) or a call cycle:
			// assume the worst.
			facts.reads.unbounded = true
			facts.writes.unbounded = true
			return true
		}
		k := tripProduct(loopsOf(stack))
		facts.reads = addBound(facts.reads, scaleBound(sub.reads, k))
		facts.writes = addBound(facts.writes, scaleBound(sub.writes, k))
		facts.pause = facts.pause || sub.pause
		return true
	})
	return facts
}

// funcCarriesTx reports whether fn's parameters can carry a transaction
// handle into its body.
func funcCarriesTx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesTx(params.At(i).Type(), 0) {
			return true
		}
	}
	return false
}

// typeCarriesTx reports whether t contains a tm.Tx or htm.Txn capability
// (bounded structural descent).
func typeCarriesTx(t types.Type, depth int) bool {
	if depth > 3 || t == nil {
		return false
	}
	if isNamed(t, tmPath, "Tx") || isNamed(t, htmPath, "Txn") {
		return true
	}
	switch u := types.Unalias(t).(type) {
	case *types.Pointer:
		return typeCarriesTx(u.Elem(), depth+1)
	case *types.Slice:
		return typeCarriesTx(u.Elem(), depth+1)
	case *types.Array:
		return typeCarriesTx(u.Elem(), depth+1)
	case *types.Signature:
		params := u.Params()
		for i := 0; i < params.Len(); i++ {
			if typeCarriesTx(params.At(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Named:
		if s, ok := u.Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				if typeCarriesTx(s.Field(i).Type(), depth+1) {
					return true
				}
			}
		}
	}
	return false
}

// tripProduct multiplies the trip bounds of a loop stack (-1 when any
// loop is unbounded).
func tripProduct(loops []*loopInfo) int64 {
	k := int64(1)
	for _, L := range loops {
		if L.trip < 0 {
			return -1
		}
		k = mulCap(k, L.trip)
	}
	return k
}

// accessLines bounds the distinct lines one access touches across its
// enclosing loops: one line when the address is invariant, stride
// arithmetic when it is affine in a single bounded loop variable, one
// line per iteration of every loop it varies with otherwise.
func accessLines(view *Package, a ast.Expr, loops []*loopInfo) lineBound {
	if a == nil {
		return lineBound{n: 1}
	}
	var varying []*loopInfo
	for _, L := range loops {
		if exprVaries(view, a, L) {
			varying = append(varying, L)
		}
	}
	if len(varying) == 0 {
		return lineBound{n: 1}
	}
	for _, L := range varying {
		if L.trip < 0 {
			return lineBound{unbounded: true}
		}
	}
	if len(varying) == 1 {
		L := varying[0]
		if L.trip == 0 {
			return lineBound{}
		}
		if stride, ok := wordStride(view, a, L); ok {
			if stride == 0 {
				return lineBound{n: 1}
			}
			// Addresses are word indices: stride s over n iterations spans
			// s·(n−1) words ≤ span/LineWords + 2 distinct lines (one for
			// the span remainder, one for line misalignment).
			lines := stride*(L.trip-1)/int64(mem.LineWords) + 2
			if lines > L.trip {
				lines = L.trip
			}
			return lineBound{n: lines}
		}
		return lineBound{n: L.trip}
	}
	n := int64(1)
	for _, L := range varying {
		n = mulCap(n, L.trip)
	}
	return lineBound{n: n}
}

// exprVaries reports whether e's value can change across iterations of L:
// it references L's loop variable or anything L taints, or contains a
// non-conversion call. Reads through pointers mutated only via aliases
// are beyond this oracle — the -prof reconciliation mode exists to catch
// exactly those underestimates dynamically.
func exprVaries(view *Package, e ast.Expr, L *loopInfo) bool {
	varies := false
	ast.Inspect(e, func(n ast.Node) bool {
		if varies {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if tv, ok := view.Info.Types[x.Fun]; !ok || !tv.IsType() {
				varies = true
				return false
			}
		case *ast.Ident:
			if obj, ok := view.Info.Uses[x].(*types.Var); ok {
				if obj == L.v || L.tainted[obj] {
					varies = true
					return false
				}
			}
		}
		return true
	})
	return varies
}

// wordStride extracts the absolute word stride of an address affine in
// L's loop variable: stride(i) = 1, stride(c·x) = c·stride(x),
// stride(x±y) = stride(x)±stride(y), conversions transparent, invariant
// subexpressions stride 0. ok is false for anything else.
func wordStride(view *Package, e ast.Expr, L *loopInfo) (int64, bool) {
	s, ok := affineStride(view, e, L)
	if !ok {
		return 0, false
	}
	if s < 0 {
		s = -s
	}
	return s, true
}

func affineStride(view *Package, e ast.Expr, L *loopInfo) (int64, bool) {
	e = ast.Unparen(e)
	if !exprVaries(view, e, L) {
		return 0, true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj, ok := view.Info.Uses[x].(*types.Var); ok && obj == L.v {
			return 1, true
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB:
			sx, okx := affineStride(view, x.X, L)
			sy, oky := affineStride(view, x.Y, L)
			if okx && oky {
				if x.Op == token.ADD {
					return sx + sy, true
				}
				return sx - sy, true
			}
		case token.MUL:
			if c, ok := constInt(view, x.X); ok {
				if s, ok := affineStride(view, x.Y, L); ok {
					return mulCapSigned(s, c), true
				}
			}
			if c, ok := constInt(view, x.Y); ok {
				if s, ok := affineStride(view, x.X, L); ok {
					return mulCapSigned(s, c), true
				}
			}
		}
	case *ast.CallExpr:
		if tv, ok := view.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return affineStride(view, x.Args[0], L)
		}
	}
	return 0, false
}

func mulCapSigned(a, b int64) int64 {
	neg := (a < 0) != (b < 0)
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	n := mulCap(a, b)
	if neg {
		return -n
	}
	return n
}

// constInt evaluates e as a compile-time integer constant.
func constInt(view *Package, e ast.Expr) (int64, bool) {
	tv, ok := view.Info.Types[e]
	if !ok {
		return 0, false
	}
	return exactInt(tv)
}

// exactInt extracts an exact int64 from a constant type-and-value.
func exactInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// analyzeLoop computes one loop's trip bound, loop variable, and tainted
// variable set.
func analyzeLoop(view *Package, n ast.Node) *loopInfo {
	li := &loopInfo{trip: -1, tainted: map[*types.Var]bool{}}
	taintDef := func(id *ast.Ident) {
		if obj, ok := view.Info.Defs[id].(*types.Var); ok {
			li.tainted[obj] = true
		}
	}
	taintRoot := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				if obj, ok := view.Info.Uses[x].(*types.Var); ok {
					li.tainted[obj] = true
				} else if obj, ok := view.Info.Defs[x].(*types.Var); ok {
					li.tainted[obj] = true
				}
				return
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				taintRoot(lhs)
			}
		case *ast.IncDecStmt:
			taintRoot(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				taintRoot(e.X)
			}
		case *ast.ValueSpec:
			for _, name := range e.Names {
				taintDef(name)
			}
		case *ast.Field:
			for _, name := range e.Names {
				taintDef(name)
			}
		case *ast.RangeStmt:
			if id, ok := e.Key.(*ast.Ident); ok {
				taintDef(id)
				taintRoot(id)
			}
			if id, ok := e.Value.(*ast.Ident); ok {
				taintDef(id)
				taintRoot(id)
			}
		}
		return true
	})

	switch f := n.(type) {
	case *ast.ForStmt:
		li.trip, li.v = forTrip(view, f)
	case *ast.RangeStmt:
		li.trip, li.v = rangeTrip(view, f)
	}
	return li
}

// forTrip bounds the iterations of the canonical counted-for shapes
// `for i := lo; i < hi; i += s` (and <=, and the descending mirrors).
// Anything else — including a loop that reassigns its own variable in the
// body — is unbounded.
func forTrip(view *Package, f *ast.ForStmt) (int64, *types.Var) {
	init, ok := f.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return -1, nil
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return -1, nil
	}
	v, _ := view.Info.Defs[id].(*types.Var)
	if v == nil {
		return -1, nil
	}
	start, ok := constInt(view, init.Rhs[0])
	if !ok {
		return -1, nil
	}

	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		return -1, nil
	}
	condID, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || view.Info.Uses[condID] != v {
		return -1, nil
	}
	limit, ok := constInt(view, cond.Y)
	if !ok {
		return -1, nil
	}

	step, ascending, ok := postStep(view, f.Post, v)
	if !ok || step <= 0 {
		return -1, nil
	}
	// The body must not touch the loop variable behind the pattern's back.
	if bodyAssigns(view, f.Body, v) {
		return -1, nil
	}

	var span int64
	switch cond.Op {
	case token.LSS:
		if !ascending {
			return -1, nil
		}
		span = limit - start
	case token.LEQ:
		if !ascending {
			return -1, nil
		}
		span = limit - start + 1
	case token.GTR:
		if ascending {
			return -1, nil
		}
		span = start - limit
	case token.GEQ:
		if ascending {
			return -1, nil
		}
		span = start - limit + 1
	default:
		return -1, nil
	}
	if span <= 0 {
		return 0, v
	}
	return (span + step - 1) / step, v
}

// postStep decodes a for-post statement into (step magnitude, ascending).
func postStep(view *Package, post ast.Stmt, v *types.Var) (int64, bool, bool) {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		id, ok := ast.Unparen(p.X).(*ast.Ident)
		if !ok || view.Info.Uses[id] != v {
			return 0, false, false
		}
		return 1, p.Tok == token.INC, true
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return 0, false, false
		}
		id, ok := ast.Unparen(p.Lhs[0]).(*ast.Ident)
		if !ok || view.Info.Uses[id] != v {
			return 0, false, false
		}
		c, ok := constInt(view, p.Rhs[0])
		if !ok {
			return 0, false, false
		}
		switch p.Tok {
		case token.ADD_ASSIGN:
			if c < 0 {
				return -c, false, true
			}
			return c, true, true
		case token.SUB_ASSIGN:
			if c < 0 {
				return -c, true, true
			}
			return c, false, true
		}
	}
	return 0, false, false
}

// bodyAssigns reports whether body writes v (assignment, ++/--, or
// address-take).
func bodyAssigns(view *Package, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	check := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && view.Info.Uses[id] == v {
			found = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				check(e.X)
			}
		}
		return !found
	})
	return found
}

// rangeTrip bounds a range statement: arrays and range-over-int have
// compile-time trip counts; slices, maps, strings, channels, and
// iterators do not.
func rangeTrip(view *Package, f *ast.RangeStmt) (int64, *types.Var) {
	var v *types.Var
	if id, ok := f.Key.(*ast.Ident); ok {
		if obj, ok := view.Info.Defs[id].(*types.Var); ok {
			v = obj
		} else if obj, ok := view.Info.Uses[id].(*types.Var); ok {
			v = obj
		}
	}
	tv, ok := view.Info.Types[f.X]
	if !ok {
		return -1, v
	}
	if tv.Value != nil { // range over a constant int (go1.22)
		if n, ok := exactInt(tv); ok {
			return n, v
		}
		return -1, v
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return arr.Len(), v
	}
	return -1, v
}

// walkStack is inspectStack over an arbitrary root node.
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
