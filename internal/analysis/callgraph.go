// Interprocedural infrastructure shared by the analyzers: a whole-module
// Program view over every package one Load produced, a declaration index
// that resolves callees across package boundaries, and a memoized
// bottom-up function-summary table. htmregion's reachability walk,
// txpure's local-indirection handling, and txfootprint's footprint
// summaries are all built on this layer.
//
// One wrinkle shapes the whole design: every package is type-checked in
// its own universe (load.go checks each package against gc export data),
// so the *types.Func observed at a call site in package A is not
// pointer-identical to the *types.Func defined when package B was checked
// from source. Declarations are therefore indexed by a stable symbol key
// (package path, receiver, name) rather than by object identity.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// A FuncNode is one function declaration in the program, bundled with the
// package view (file set, type info, annotations) it was parsed under —
// everything a walker needs to scan the body and report into the right
// file with the right suppression context.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Fn   *types.Func
}

// A Program is the whole-module view of one load: every analyzed package,
// with a cross-package function-declaration index. The stand-alone driver
// builds one Program for all matched packages, giving the analyzers
// module-wide reach; the unitchecker driver sees one package per
// invocation, so its Program degrades gracefully to same-package reach.
type Program struct {
	pkgs   []*Package
	byPath map[string]*Package
	funcs  map[string]*FuncNode
	notes  map[*Package]annotations
}

// NewProgram indexes pkgs into a Program. Function declarations in
// _test.go files are not indexed: every driver in this repository runs
// with IncludeTests=false, and walking into test-only helpers would
// reintroduce the torn-state noise the passes deliberately skip.
func NewProgram(pkgs ...*Package) *Program {
	pr := &Program{
		byPath: map[string]*Package{},
		funcs:  map[string]*FuncNode{},
		notes:  map[*Package]annotations{},
	}
	for _, p := range pkgs {
		pr.pkgs = append(pr.pkgs, p)
		pr.byPath[p.PkgPath] = p
		for _, f := range p.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					pr.funcs[funcKey(fn)] = &FuncNode{Pkg: p, Decl: fd, Fn: fn}
				}
			}
		}
	}
	return pr
}

// Packages returns the indexed packages in load order.
func (pr *Program) Packages() []*Package { return pr.pkgs }

// Package returns the indexed package with the given import path, or nil.
func (pr *Program) Package(path string) *Package { return pr.byPath[path] }

// FuncNode resolves fn — observed in any package's type info — to its
// declaration in the program, or nil when the defining package was not
// loaded (standard library, or outside the analyzed pattern set).
func (pr *Program) FuncNode(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return pr.funcs[funcKey(fn)]
}

// funcKey is the cross-universe identity of a function: declarations and
// uses of the same function type-checked in different package universes
// map to the same key. Generic instantiations collapse to their origin.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedType(sig.Recv().Type()); named != nil {
			return funcPkgPath(fn) + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return funcPkgPath(fn) + "." + fn.Name()
}

// notesFor returns (building on first use) the annotation index of one
// program package, so cross-package diagnostics honour the target file's
// parthtm annotations exactly as same-package ones do.
func (pr *Program) notesFor(p *Package) annotations {
	if n, ok := pr.notes[p]; ok {
		return n
	}
	n := collectAnnotations(p.Fset, p.Files)
	pr.notes[p] = n
	return n
}

// A SummaryTable memoizes one bottom-up fact per function declaration —
// the reusable core of interprocedural analysis. compute derives the
// summary of one declaration, querying callees through the callback it is
// handed; the callback reports ok=false when the callee's body is unknown
// to the program (not loaded, interface method, func value) or when the
// callee is part of a call cycle still being computed — both cases the
// caller must treat with its own worst-case assumption, which keeps the
// framework conservative by construction.
type SummaryTable[T any] struct {
	prog    *Program
	compute func(n *FuncNode, callee func(*types.Func) (T, bool)) T
	memo    map[*FuncNode]*summaryEntry[T]
}

type summaryEntry[T any] struct {
	val  T
	done bool
}

// NewSummaryTable creates a summary table over prog.
func NewSummaryTable[T any](prog *Program,
	compute func(n *FuncNode, callee func(*types.Func) (T, bool)) T) *SummaryTable[T] {
	return &SummaryTable[T]{prog: prog, compute: compute, memo: map[*FuncNode]*summaryEntry[T]{}}
}

// Of returns fn's memoized summary. ok is false for unknown bodies and
// for cycles (see SummaryTable).
func (t *SummaryTable[T]) Of(fn *types.Func) (T, bool) {
	var zero T
	n := t.prog.FuncNode(fn)
	if n == nil {
		return zero, false
	}
	if e, ok := t.memo[n]; ok {
		if !e.done {
			return zero, false // cycle: still on the compute stack
		}
		return e.val, true
	}
	e := &summaryEntry[T]{}
	t.memo[n] = e
	e.val = t.compute(n, t.Of)
	e.done = true
	return e.val, true
}

// localFuncBindings indexes every binding of a local variable to a
// function literal under root: `f := func() {...}`, `var f = func() {...}`,
// and plain reassignment `f = func() {...}`. A variable bound more than
// once maps to all its literals — a caller that walks "the" bound body
// must walk every candidate to stay conservative.
func localFuncBindings(info *types.Info, root ast.Node) map[*types.Var][]*ast.FuncLit {
	bindings := map[*types.Var][]*ast.FuncLit{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Uses[id].(*types.Var)
		}
		if obj != nil {
			bindings[obj] = append(bindings[obj], lit)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range e.Rhs {
				if i < len(e.Lhs) {
					bind(e.Lhs[i], rhs)
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range e.Values {
				if i < len(e.Names) {
					bind(e.Names[i], rhs)
				}
			}
		}
		return true
	})
	return bindings
}

// sigHasTxnParam reports whether fn's signature declares a *htm.Txn
// parameter — the mark of a function that is itself a region root and is
// scanned when its own package's pass runs.
func sigHasTxnParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isNamed(params.At(i).Type(), htmPath, "Txn") {
			return true
		}
	}
	return false
}
