package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DomainOrder verifies the domain commit protocol's iteration discipline.
//
// With sharded memory domains, a cross-domain commit claims a timestamp
// and publishes a ring entry in every written domain. internal/domain's
// contract (and the deadlock argument in DESIGN.md) requires the walks to
// follow the canonical lock order: claim/publish visits written domains in
// ascending index order (`d := bits.TrailingZeros64(m)` over the written
// mask), and lock release descends (`d := 63 - bits.LeadingZeros64(m)`),
// the mirror of acquisition. Two commits that claimed domains in different
// orders could each hold one domain's serialization point while spinning
// on the other's — the classic lock-order deadlock, except here it wedges
// every validator of both domains.
//
// The analyzer checks three things:
//
//   - Confinement: Domains.ClaimTimestamp, Domains.Publish, and
//     Domains.ReleaseWlocks are called only from internal/core's commit
//     sequence (or internal/domain itself). Any other caller is bypassing
//     the protocol.
//   - Direction: inside core, a helper whose domain index comes from a
//     mask walk must walk in the right direction — ascending for
//     claim/publish, descending for release. An index that is neither a
//     compile-time constant nor a recognized mask walk is flagged as
//     unverifiable.
//   - Progress and pairing: a mask walk must clear the mask each
//     iteration (`m &= m - 1` or `m &^= 1 << d`), and a loop that claims
//     a timestamp must publish in the same loop — a claimed-but-never-
//     published entry's seqlock never closes, wedging every validator of
//     that domain.
//
// `// parthtm:ordered` suppresses a finding where the order is proven by
// other means (e.g. a single-domain topology where order is vacuous).
var DomainOrder = &Analyzer{
	Name: "domainorder",
	Tag:  "ordered",
	Doc: "check that domain claim/publish walks ascend, release walks descend, " +
		"and the commit helpers stay confined to internal/core's commit sequence",
	Run: runDomainOrder,
}

// walkDir is the direction of a recognized mask walk.
type walkDir int

const (
	dirUnknown walkDir = iota
	dirAscending
	dirDescending
)

// domainHelperKind classifies a call as one of the three ordered commit
// helpers, or "".
func domainHelperKind(fn *types.Func) string {
	switch {
	case isMethodOf(fn, domainPath, "Domains", "ClaimTimestamp"):
		return "ClaimTimestamp"
	case isMethodOf(fn, domainPath, "Domains", "Publish"):
		return "Publish"
	case isMethodOf(fn, domainPath, "Domains", "ReleaseWlocks"):
		return "ReleaseWlocks"
	}
	return ""
}

func runDomainOrder(pass *Pass) {
	confined := pass.This.PkgPath == corePath || pass.This.PkgPath == domainPath
	for _, f := range pass.SourceFiles() {
		// Claim/publish pairing is judged per enclosing loop.
		claims := map[*ast.ForStmt][]*ast.CallExpr{}
		publishes := map[*ast.ForStmt]bool{}

		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := domainHelperKind(calleeFunc(pass.TypesInfo, call))
			if kind == "" {
				return true
			}
			if !confined {
				pass.Reportf(call.Pos(),
					"domain.Domains.%s called outside internal/core's commit sequence: the ordered claim/publish/release walks are confined to the core commit protocol", kind)
				return true
			}
			loop := innermostFor(stack)
			if kind == "ClaimTimestamp" && loop != nil {
				claims[loop] = append(claims[loop], call)
			}
			if kind == "Publish" && loop != nil {
				publishes[loop] = true
			}
			checkWalkCall(pass, call, kind, stack)
			return true
		})

		for loop, cs := range claims {
			if publishes[loop] {
				continue
			}
			for _, c := range cs {
				pass.Reportf(c.Pos(),
					"claimed timestamp is never published in the same walk: an unpublished claim leaves the domain's ring entry unpublished, wedging every validator of that domain")
			}
		}
	}
}

// checkWalkCall verifies one confined helper call's index derivation and
// walk direction.
func checkWalkCall(pass *Pass, call *ast.CallExpr, kind string, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if _, ok := constIntOf(pass.TypesInfo, arg); ok {
		return // a constant domain index needs no ordering
	}
	dir, loop, mask := classifyIndex(pass.TypesInfo, arg, stack)
	if dir == dirUnknown {
		pass.Reportf(call.Pos(),
			"domain.Domains.%s index is neither a constant nor derived from a canonical mask walk (ascending d := bits.TrailingZeros64(m), descending d := 63 - bits.LeadingZeros64(m)): iteration order is unverifiable", kind)
		return
	}
	want := dirAscending
	if kind == "ReleaseWlocks" {
		want = dirDescending
	}
	if dir != want {
		if want == dirAscending {
			pass.Reportf(call.Pos(),
				"domain.Domains.%s called in a descending mask walk: claim/publish must visit written domains in ascending index order (d := bits.TrailingZeros64(m)) — two commits walking in different orders can deadlock on each other's serialization points", kind)
		} else {
			pass.Reportf(call.Pos(),
				"domain.Domains.%s called in an ascending mask walk: releases must descend (d := 63 - bits.LeadingZeros64(m)), the mirror of the ascending acquisition order", kind)
		}
		return
	}
	if mask != nil && loop != nil && !maskCleared(pass.TypesInfo, loop, mask) {
		pass.Reportf(call.Pos(),
			"mask walk around domain.Domains.%s never clears the mask (expected `m &= m - 1` or `m &^= 1 << d`): the walk cannot make progress", kind)
	}
}

// classifyIndex resolves a domain-index expression to the mask walk that
// derives it: the index must be a local variable defined inside an
// enclosing for loop as bits.TrailingZeros64(m) (ascending) or
// 63 - bits.LeadingZeros64(m) (descending). Returns the walk's direction,
// loop, and mask variable.
func classifyIndex(info *types.Info, arg ast.Expr, stack []ast.Node) (walkDir, *ast.ForStmt, *types.Var) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return dirUnknown, nil, nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		return dirUnknown, nil, nil
	}
	for i := len(stack) - 1; i >= 0; i-- {
		loop, ok := stack[i].(*ast.ForStmt)
		if !ok {
			continue
		}
		dir, mask := findIndexDef(info, loop, v)
		if dir != dirUnknown {
			return dir, loop, mask
		}
	}
	return dirUnknown, nil, nil
}

// findIndexDef looks for `v := <walk expr>` in loop's body and classifies
// the walk expression.
func findIndexDef(info *types.Info, loop *ast.ForStmt, v *types.Var) (walkDir, *types.Var) {
	dir := dirUnknown
	var mask *types.Var
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != types.Object(v) {
			return true
		}
		d, m := classifyWalkExpr(info, as.Rhs[0])
		if d != dirUnknown {
			dir, mask = d, m
			return false
		}
		// v is assigned something that is not a walk expression: the
		// derivation is not canonical.
		dir, mask = dirUnknown, nil
		return false
	})
	return dir, mask
}

// classifyWalkExpr recognizes the two canonical index derivations:
// bits.TrailingZeros64(m) (ascending) and 63 - bits.LeadingZeros64(m)
// (descending).
func classifyWalkExpr(info *types.Info, e ast.Expr) (walkDir, *types.Var) {
	e = ast.Unparen(e)
	if m := bitsCallMask(info, e, "TrailingZeros64"); m != nil {
		return dirAscending, m
	}
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.SUB {
		if c, ok := constIntOf(info, bin.X); ok && c == 63 {
			if m := bitsCallMask(info, bin.Y, "LeadingZeros64"); m != nil {
				return dirDescending, m
			}
		}
	}
	return dirUnknown, nil
}

// bitsCallMask matches math/bits.<name>(m) for a local mask variable m.
func bitsCallMask(info *types.Info, e ast.Expr, name string) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != "math/bits" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	m, _ := info.Uses[id].(*types.Var)
	return m
}

// maskCleared reports whether the loop updates the mask variable each
// iteration (body or post statement) — the progress condition of a mask
// walk. Any assignment or ++/-- counts as an update; the canonical forms
// are `m &= m - 1` and `m &^= 1 << uint(d)`.
func maskCleared(info *types.Info, loop *ast.ForStmt, mask *types.Var) bool {
	found := false
	check := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == types.Object(mask) {
			found = true
		}
	}
	scan := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(s.X)
			}
			return !found
		})
	}
	scan(loop.Body)
	scan(loop.Post)
	return found
}

// innermostFor returns the innermost enclosing for statement, or nil.
func innermostFor(stack []ast.Node) *ast.ForStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if f, ok := stack[i].(*ast.ForStmt); ok {
			return f
		}
	}
	return nil
}

// constIntOf evaluates e as a compile-time integer constant against info.
func constIntOf(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok {
		return 0, false
	}
	return exactInt(tv)
}
