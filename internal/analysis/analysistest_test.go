package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The tests below mirror x/tools' analysistest: each analyzer runs over a
// package under testdata/src and its diagnostics are diffed against
// `// want "regexp"` comments in the sources. The testdata tree carries
// stubs of repro/internal/{tm,mem,htm,exec} at their real import paths, so
// the analyzers' path-based type matching works without loading the real
// packages.

func TestSingleWriter(t *testing.T) { runAnalyzerTest(t, SingleWriter, "singlewriter") }
func TestAtomicMix(t *testing.T)    { runAnalyzerTest(t, AtomicMix, "atomicmix") }
func TestTxPure(t *testing.T)       { runAnalyzerTest(t, TxPure, "txpure") }
func TestTxFootprint(t *testing.T)  { runAnalyzerTest(t, TxFootprint, "txfootprint") }

// htmregion's walk crosses package boundaries: the sub package carries
// want cases reported by the walk rooted in the parent package.
func TestHTMRegion(t *testing.T) {
	runSuiteTest(t, []*Analyzer{HTMRegion}, []string{"htmregion"}, []string{"htmregion/sub"})
}

// The governor stub package doubles as the fixture for htmregion's
// allocation-free-hook enforcement: its clean hooks must produce no
// diagnostics, its badhooks.go carries the want cases.
func TestHTMRegionGovernorHooks(t *testing.T) {
	runAnalyzerTest(t, HTMRegion, "repro/internal/governor")
}

// The domainorder walk-direction and pairing rules only apply inside the
// commit sequence, so their fixture is a stub at internal/core's import
// path; the confinement rule is exercised from an unrelated package.
func TestDomainOrderWalks(t *testing.T) {
	runAnalyzerTest(t, DomainOrder, "repro/internal/core")
}

func TestDomainOrderConfinement(t *testing.T) {
	runAnalyzerTest(t, DomainOrder, "domainorder")
}

// Escape-hatch interaction: two analyzers over one fixture, with tags
// stacked on one declaration, wrong-tag and placement negatives, and
// method-doc scoping across receiver kinds.
func TestEscapeHatchInteractions(t *testing.T) {
	runSuiteTest(t, []*Analyzer{TxPure, HTMRegion}, []string{"hatch"}, nil)
}

func runAnalyzerTest(t *testing.T, a *Analyzer, pkgPath string) {
	runSuiteTest(t, []*Analyzer{a}, []string{pkgPath}, nil)
}

// runSuiteTest loads runPaths from testdata/src, builds one Program over
// every testdata package the load touched (so cross-package walks reach
// real declarations, as under the stand-alone driver), applies the
// analyzers to each package in runPaths, and diffs the combined
// diagnostics against `// want` comments in runPaths ∪ wantPaths.
func runSuiteTest(t *testing.T, analyzers []*Analyzer, runPaths, wantPaths []string) {
	requireGoTool(t)
	fset := token.NewFileSet()
	imp := newTestdataImporter(fset)

	var targets, wantPkgs []*Package
	for _, path := range runPaths {
		pkg, err := imp.loadSource(path)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, pkg)
		wantPkgs = append(wantPkgs, pkg)
	}
	for _, path := range wantPaths {
		pkg, err := imp.loadSource(path)
		if err != nil {
			t.Fatal(err)
		}
		wantPkgs = append(wantPkgs, pkg)
	}

	var all []*Package
	for _, pkg := range imp.pkgs {
		all = append(all, pkg)
	}
	prog := NewProgram(all...)

	var diags []Diagnostic
	for _, target := range targets {
		diags = append(diags, RunAnalyzersIn(prog, analyzers, target)...)
	}
	diags = sortDiagnostics(diags)

	var files []*ast.File
	for _, pkg := range wantPkgs {
		files = append(files, pkg.Files...)
	}
	wants := collectWants(t, fset, files)

	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	var keys []lineKey
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func requireGoTool(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
}

type lineKey struct {
	file string
	line int
}

// want is one expectation from a `// want "regexp"` comment: a diagnostic
// on the comment's line whose message matches re.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts want expectations. A want comment holds one or
// more Go-quoted regexps: // want `first` "second".
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}

// testdataImporter type-checks packages rooted at testdata/src. Import
// paths with a directory there resolve from the stub sources (so the repro
// stubs shadow the real packages); everything else — the standard library
// — resolves through the toolchain's export data via `go list -export`.
type testdataImporter struct {
	fset    *token.FileSet
	root    string
	pkgs    map[string]*Package
	std     types.Importer
	exports map[string]string
}

func newTestdataImporter(fset *token.FileSet) *testdataImporter {
	imp := &testdataImporter{
		fset:    fset,
		root:    filepath.Join("testdata", "src"),
		pkgs:    map[string]*Package{},
		exports: map[string]string{},
	}
	imp.std = importer.ForCompiler(fset, "gc", imp.stdExport)
	return imp
}

// stdExport returns export data for a standard-library package, shelling
// out to `go list -export -deps` once per new root and caching the rest.
func (imp *testdataImporter) stdExport(path string) (io.ReadCloser, error) {
	if f, ok := imp.exports[path]; ok {
		return os.Open(f)
	}
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "-deps", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := imp.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

func (imp *testdataImporter) Import(path string) (*types.Package, error) {
	pkg, err := imp.loadSource(path)
	if err == errNotTestdata {
		return imp.std.Import(path)
	}
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

var errNotTestdata = fmt.Errorf("not a testdata package")

// loadSource parses and type-checks testdata/src/<path>, memoized.
func (imp *testdataImporter) loadSource(path string) (*Package, error) {
	if p, ok := imp.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(imp.root, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return nil, errNotTestdata
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var asts []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	if len(asts) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, imp.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata package %s: %v", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Fset: imp.fset, Files: asts, Types: tpkg, Info: info}
	imp.pkgs[path] = pkg
	return pkg, nil
}
