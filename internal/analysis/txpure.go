package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TxPure enforces the purity contract on transaction bodies.
//
// A body passed to tm.System.Atomic (or run as an exec.Txn level) may be
// executed several times: every aborted attempt runs the body again, and
// partial effects of an aborted attempt must not influence the next one.
// tm.Tx's doc states the rule — "it must be a pure function of its inputs
// and the values it Reads" — and this analyzer checks the part of it the
// compiler can see:
//
//   - a captured variable that the body both reads and writes carries
//     state across attempts (a classic `sum += tx.Read(a)` accumulates
//     garbage from aborted runs) — every write to such a variable is
//     flagged. Write-only captures are allowed: they are out-parameters,
//     overwritten wholesale by whichever attempt commits.
//   - direct loads/stores through mem.Memory bypass the transaction
//     entirely (no monitoring, no buffering, and strong atomicity will
//     doom hardware transactions that touch the same lines) — every
//     mem.Memory access inside a body is flagged.
//   - package-level mutable state read inside a body makes the body's
//     result depend on values no Tx ever read — reads and writes of
//     package-level variables inside bodies are flagged.
//   - calls into repro/internal/governor are admission traffic: the
//     execution kernel owns admission (it brackets the attempts with
//     Begin/ChargeAttempt/Finish), and a body reruns on abort, so an
//     in-body governor call would charge budgets or record breaker
//     evidence once per attempt instead of once per transaction — every
//     governor call inside a body is flagged.
//   - calls into repro/internal/prof are attribution traffic: the engine
//     and the kernel own the profiler's record hooks (conflicts are
//     attributed at the doom sites, footprints at commit/abort), and a
//     body reruns on abort, so an in-body prof call would double-count
//     events per attempt and mutate a shard the body's thread may not
//     own — every prof call inside a body is flagged.
//
// A body that calls a locally bound function value (`f := func() {...}`
// somewhere in the enclosing function, then `f()` inside the body) is
// checked through that one level of indirection: the bound literal's
// statements are part of the body for every rule above, and a variable
// captured by the bound literal from the enclosing function counts as a
// capture of the body.
//
// Bodies are recognized structurally: every function literal whose
// parameter list includes a tm.Tx, and every literal installed in an
// exec.Txn level (Fast/Mid/Slow or assigned to those fields).
// `// parthtm:impure` suppresses a finding where the impurity is
// deliberate and retry-safe.
var TxPure = &Analyzer{
	Name: "txpure",
	Tag:  "impure",
	Doc: "check that transaction bodies route shared-memory access through " +
		"tm.Tx (bodies may rerun on abort and must be pure)",
	Run: runTxPure,
}

func runTxPure(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		bindings := localFuncBindings(pass.TypesInfo, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !isTxBody(pass.TypesInfo, lit) && !isExecLevel(pass.TypesInfo, lit, stack) {
				return true
			}
			checkBody(pass, lit, bindings)
			// Nested literals inside the body are part of the body and
			// already covered by checkBody's single walk; do not re-enter.
			return false
		})
	}
}

// isTxBody reports whether lit takes a tm.Tx parameter — the signature of
// every workload transaction body (func(x tm.Tx)) and of the bodies the
// hle locks accept.
func isTxBody(info *types.Info, lit *ast.FuncLit) bool {
	sig, ok := info.Types[lit].Type.(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isNamed(params.At(i).Type(), tmPath, "Tx") {
			return true
		}
	}
	return false
}

// isExecLevel reports whether lit is installed as an exec.Txn level: a
// Fast/Mid/Slow field of a composite literal of type exec.Txn, or the RHS
// of an assignment to such a field.
func isExecLevel(info *types.Info, lit *ast.FuncLit, stack []ast.Node) bool {
	return execLevelName(info, lit, stack) != ""
}

// execLevelName returns the exec.Txn level field lit is installed in
// ("Fast", "Mid", …), or "" when lit is not a level body.
func execLevelName(info *types.Info, lit *ast.FuncLit, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.KeyValueExpr:
		if parent.Value != lit {
			return ""
		}
		key, ok := parent.Key.(*ast.Ident)
		if !ok || !isLevelName(key.Name) {
			return ""
		}
		if len(stack) < 2 {
			return ""
		}
		comp, ok := stack[len(stack)-2].(*ast.CompositeLit)
		if !ok {
			return ""
		}
		if isNamed(info.Types[comp].Type, execPath, "Txn") {
			return key.Name
		}
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs != lit || i >= len(parent.Lhs) {
				continue
			}
			sel, ok := ast.Unparen(parent.Lhs[i]).(*ast.SelectorExpr)
			if !ok || !isLevelName(sel.Sel.Name) {
				continue
			}
			if s, ok := info.Selections[sel]; ok && isNamed(s.Recv(), execPath, "Txn") {
				return sel.Sel.Name
			}
		}
	}
	return ""
}

func isLevelName(name string) bool {
	switch name {
	case "Fast", "FastCommitted", "FastResource", "Mid", "Slow":
		return true
	}
	return false
}

// checkBody applies the purity rules to one transaction-body literal.
// bindings indexes the file's local `f := func() {...}` definitions: a
// body calling such an f is checked through that single level of
// indirection — the bound literals become additional body segments.
func checkBody(pass *Pass, lit *ast.FuncLit, bindings map[*types.Var][]*ast.FuncLit) {
	info := pass.TypesInfo

	// The body plus every locally bound literal it calls (one level).
	segments := []*ast.FuncLit{lit}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := info.Uses[id].(*types.Var)
		for _, bound := range bindings[obj] {
			seen := false
			for _, s := range segments {
				if s == bound {
					seen = true
				}
			}
			// A literal nested inside the body is already part of its
			// segment's walk; only out-of-body bindings add segments.
			if !seen && (bound.Pos() < lit.Pos() || bound.Pos() > lit.End()) {
				segments = append(segments, bound)
			}
		}
		return true
	})

	inSegments := func(pos token.Pos) bool {
		for _, s := range segments {
			if s.Pos() <= pos && pos <= s.End() {
				return true
			}
		}
		return false
	}
	captured := func(obj *types.Var) bool {
		if obj == nil || obj.IsField() {
			return false
		}
		// Declared outside every body segment, not package-level (those
		// are handled separately), and actually a variable of the
		// enclosing function — i.e. a closure capture.
		if obj.Parent() == nil || obj.Parent().Parent() == types.Universe {
			return false
		}
		return !inSegments(obj.Pos())
	}
	pkgLevel := func(obj *types.Var) bool {
		return obj != nil && !obj.IsField() && obj.Parent() != nil && obj.Parent().Parent() == types.Universe
	}

	// First walk: mark the identifiers that appear in write position
	// (assignment LHS roots, ++/--, and address-takes, which open an
	// unseen write path). An augmented assignment (`x += ...`) is both.
	writeIdents := map[*ast.Ident]bool{}
	readAlso := map[*ast.Ident]bool{}
	markWrite := func(e ast.Expr, alsoRead bool) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			writeIdents[id] = true
			if alsoRead {
				readAlso[id] = true
			}
		}
	}
	for _, seg := range segments {
		ast.Inspect(seg.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				augmented := e.Tok != token.ASSIGN && e.Tok != token.DEFINE
				for _, lhs := range e.Lhs {
					markWrite(lhs, augmented)
				}
			case *ast.IncDecStmt:
				markWrite(e.X, true)
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					markWrite(e.X, true)
				}
			}
			return true
		})
	}

	// Second walk: classify every identifier use and check calls.
	reads := map[*types.Var][]ast.Node{}
	writes := map[*types.Var][]ast.Node{}
	for _, seg := range segments {
		ast.Inspect(seg.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkMemAccess(pass, e)
				checkGovernorCall(pass, e)
				checkProfCall(pass, e)
			case *ast.Ident:
				obj, _ := info.Uses[e].(*types.Var)
				if obj == nil {
					return true
				}
				if writeIdents[e] {
					writes[obj] = append(writes[obj], e)
					if readAlso[e] {
						reads[obj] = append(reads[obj], e)
					}
				} else {
					reads[obj] = append(reads[obj], e)
				}
			}
			return true
		})
	}

	for obj, ws := range writes {
		if !captured(obj) && !pkgLevel(obj) {
			continue
		}
		if pkgLevel(obj) {
			for _, w := range ws {
				pass.Reportf(w.Pos(),
					"transaction body writes package-level variable %q: bodies may rerun on abort and must not mutate shared state outside the Tx", obj.Name())
			}
			continue
		}
		if len(reads[obj]) == 0 {
			continue // write-only out-parameter: overwritten per attempt
		}
		for _, w := range ws {
			pass.Reportf(w.Pos(),
				"transaction body reads and writes captured variable %q: state carried across aborted attempts breaks the pure-function contract of tm.Tx", obj.Name())
		}
	}
	// Package-level reads: constants never reach here (they are not
	// *types.Var), so any hit is genuinely mutable state.
	for obj, rs := range reads {
		if !pkgLevel(obj) || len(writes[obj]) > 0 {
			continue // write case already reported above
		}
		for _, r := range rs {
			pass.Reportf(r.Pos(),
				"transaction body reads package-level mutable variable %q: the result would depend on state no Tx.Read observed", obj.Name())
		}
	}
}

// checkMemAccess flags direct mem.Memory traffic inside a body.
func checkMemAccess(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isNamed(sig.Recv().Type(), memPath, "Memory") {
		return
	}
	switch fn.Name() {
	case "Load", "Store", "CAS", "Add", "AndNot", "Or", "RawLoad", "RawStore", "WithLine":
		pass.Reportf(call.Pos(),
			"transaction body calls mem.Memory.%s directly: shared memory must be accessed through the tm.Tx parameter (unmonitored access breaks isolation and dooms hardware transactions)", fn.Name())
	}
}

// checkGovernorCall flags governor admission traffic inside a body. The
// kernel brackets every transaction with the governor hooks itself; a
// body reruns on abort, so a call here would be charged once per attempt,
// not once per transaction.
func checkGovernorCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if funcPkgPath(fn) != governorPath {
		return
	}
	pass.Reportf(call.Pos(),
		"transaction body calls governor.%s: admission belongs to the execution kernel — a body rerun on abort would re-charge budgets or double-count breaker evidence", fn.Name())
}

// checkProfCall flags profiler mutation inside a body. Attribution
// belongs to the engine (conflict/capacity at the doom and overflow
// sites) and the kernel (footprints at commit/abort); a body reruns on
// abort, so a call here would double-count events per attempt.
func checkProfCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if funcPkgPath(fn) != profPath {
		return
	}
	pass.Reportf(call.Pos(),
		"transaction body calls prof.%s: abort attribution belongs to the engine and the execution kernel — a body rerun on abort would double-count profiler events", fn.Name())
}
