// Package loading for the stand-alone driver. The module carries no
// third-party dependencies, so instead of golang.org/x/tools/go/packages
// the loader shells out to `go list -export`, parses the target packages
// with go/parser, and type-checks them against the compiler's export data
// via go/importer — the same artifacts the build itself produces, so the
// analyzers always see exactly the types the compiler saw.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked module package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns (in dir, "" for the current directory), compiles
// export data for every dependency, and returns the matched packages
// parsed and type-checked. Test files are not loaded — the stand-alone
// driver checks production sources; `go vet -vettool=` covers tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := checkPackage(t.ImportPath, t.Dir, files, func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses files and type-checks them as package pkgPath,
// resolving imports through lookup (which must return gc export data).
func checkPackage(pkgPath, dir string, files []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   asts,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Check runs the given analyzers over every package matched by patterns
// and returns the combined diagnostics, sorted and deduplicated. All
// matched packages share one Program, so interprocedural walks cross
// package boundaries. It is the library entry point the driver and the
// regression tests share.
func Check(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	prog := NewProgram(pkgs...)
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, RunAnalyzersIn(prog, analyzers, p)...)
	}
	return sortDiagnostics(diags), nil
}
