package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags mixed atomic and plain access to the same variable.
//
// A word accessed through the sync/atomic function API anywhere in a
// package must be accessed that way everywhere: one plain load can read a
// torn or stale value, one plain store can lose a concurrent
// read-modify-write. (The typed atomic.Uint64-style API makes this
// mistake impossible — which is why the repository prefers it — but the
// function API still appears around simulated-memory words and imported
// idioms, and nothing else polices it.)
//
// The analyzer collects every struct field and package-level variable
// whose address is passed to a sync/atomic function, then reports every
// other syntactic use of those variables: reads, writes, and address
// captures that do not feed sync/atomic. `// parthtm:plain` suppresses a
// finding (the classic justification: access before the variable is
// published to other goroutines).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Tag:  "plain",
	Doc: "check that variables accessed through sync/atomic functions are " +
		"never read or written plainly",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	files := pass.SourceFiles()

	// Pass 1: every object whose address feeds a sync/atomic call, and
	// the exact identifier nodes that do so (they are the sanctioned uses).
	atomicObjs := map[*types.Var]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isSyncAtomicFunc(fn) {
				return true
			}
			for _, arg := range call.Args {
				obj, node := addressedVar(pass.TypesInfo, arg)
				if obj != nil {
					atomicObjs[obj] = true
					sanctioned[node] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: every other use of those objects is a mixed access.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj *types.Var
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[e]; ok {
					obj, _ = sel.Obj().(*types.Var)
				}
			case *ast.Ident:
				obj, _ = pass.TypesInfo.Uses[e].(*types.Var)
			default:
				return true
			}
			if obj == nil || !atomicObjs[obj] || sanctioned[n] {
				return true
			}
			// Field selectors are visited both as SelectorExpr and as the
			// trailing Ident; report the selector form only.
			if id, ok := n.(*ast.Ident); ok {
				if obj.IsField() && !definesObj(pass.TypesInfo, id, obj) {
					return true
				}
			}
			if isFieldDecl(pass.TypesInfo, n, obj) {
				return true
			}
			pass.Reportf(n.Pos(),
				"plain access to %q, which is accessed with sync/atomic elsewhere in this package: mixing atomic and non-atomic access races", obj.Name())
			return true
		})
	}
}

// isSyncAtomicFunc reports whether fn is one of sync/atomic's
// address-taking functions (Load*, Store*, Add*, Swap*, CompareAndSwap*).
func isSyncAtomicFunc(fn *types.Func) bool {
	if funcPkgPath(fn) != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedVar unwraps `&x` or `&s.f` and returns the addressed struct
// field or package-level variable (nil for locals, which cannot be shared
// without also escaping through other checks) plus the selector/ident
// node that names it.
func addressedVar(info *types.Info, arg ast.Expr) (*types.Var, ast.Node) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	switch e := ast.Unparen(un.X).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v, e
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return v, e
		}
	}
	return nil, nil
}

// definesObj reports whether id is the declaring identifier of obj (the
// struct field declaration itself, which is not an access).
func definesObj(info *types.Info, id *ast.Ident, obj *types.Var) bool {
	return info.Defs[id] == obj
}

// isFieldDecl reports whether n is the declaration site of field obj.
func isFieldDecl(info *types.Info, n ast.Node, obj *types.Var) bool {
	id, ok := n.(*ast.Ident)
	return ok && info.Defs[id] == obj
}
