package analysis

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/prof"
)

// loadTestdataProgram builds a single-package Program over one testdata
// package — the reconciliation tests' stand-in for a driver load.
func loadTestdataProgram(t *testing.T, path string) *Program {
	t.Helper()
	requireGoTool(t)
	fset := token.NewFileSet()
	imp := newTestdataImporter(fset)
	pkg, err := imp.loadSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return NewProgram(pkg)
}

func TestFootprintBounds(t *testing.T) {
	bounds := FootprintBounds(loadTestdataProgram(t, "reconcile"))
	if len(bounds) != 2 {
		t.Fatalf("got %d bodies, want 2: %+v", len(bounds), bounds)
	}
	var maxRead, maxWrite int64
	for _, b := range bounds {
		if b.ReadUnbounded || b.WriteUnbounded {
			t.Fatalf("unexpected unbounded body at %s: %+v", b.Pos, b)
		}
		if b.ReadLines > maxRead {
			maxRead = b.ReadLines
		}
		if b.WriteLines > maxWrite {
			maxWrite = b.WriteLines
		}
	}
	// update's 64-iteration stride-8 loop touches one line per iteration.
	if maxRead != 64 || maxWrite != 64 {
		t.Fatalf("max bounds = (%d reads, %d writes), want (64, 64)", maxRead, maxWrite)
	}
}

func TestReconcileProfile(t *testing.T) {
	prog := loadTestdataProgram(t, "reconcile")

	within := prof.FootprintStat{
		Class: "fast", Outcome: "commit", Count: 10,
		ReadP99: 64 + ReadMarginLines, WriteP99: 64 + WriteMarginLines,
	}
	mism, err := ReconcileProfile(prog, &prof.Series{Footprints: []prof.FootprintStat{within}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mism) != 0 {
		t.Fatalf("within-margin row produced mismatches: %v", mism)
	}

	beyond := prof.FootprintStat{
		Class: "fast", Outcome: "capacity", Count: 3,
		ReadP99: 64 + ReadMarginLines + 1, WriteP99: 64 + WriteMarginLines + 9,
	}
	mism, err = ReconcileProfile(prog, &prof.Series{Footprints: []prof.FootprintStat{within, beyond}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mism) != 2 {
		t.Fatalf("got %d mismatches, want read+write: %v", len(mism), mism)
	}
	read, write := mism[0], mism[1]
	if read.Kind != "read" || read.Observed != 64+ReadMarginLines+1 || read.Static != 64 || read.Allowed != 64+ReadMarginLines {
		t.Errorf("read mismatch fields wrong: %+v", read)
	}
	if write.Kind != "write" || write.Observed != 64+WriteMarginLines+9 || write.Allowed != 64+WriteMarginLines {
		t.Errorf("write mismatch fields wrong: %+v", write)
	}
	if s := read.String(); !strings.Contains(s, "underestimates") || !strings.Contains(s, "capacity") {
		t.Errorf("mismatch message lacks diagnosis: %q", s)
	}

	// A profile with no footprint rows is an error, not a vacuous pass.
	if _, err := ReconcileProfile(prog, &prof.Series{}); err == nil {
		t.Error("empty profile reconciled without error")
	}

	// A program with no transaction bodies has nothing to check against.
	if _, err := ReconcileProfile(loadTestdataProgram(t, "repro/internal/tm"), &prof.Series{Footprints: []prof.FootprintStat{within}}); err == nil {
		t.Error("body-less program reconciled without error")
	}
}

// An unbounded body makes its dimension unfalsifiable: by then txfootprint
// has already demanded a Pause partition or a bigtx rationale, so
// reconciliation must not pile on.
func TestReconcileUnboundedUnfalsifiable(t *testing.T) {
	prog := loadTestdataProgram(t, "txfootprint")
	huge := prof.FootprintStat{
		Class: "fast", Outcome: "commit", Count: 1,
		ReadP99: 1 << 30, WriteP99: 1 << 30,
	}
	mism, err := ReconcileProfile(prog, &prof.Series{Footprints: []prof.FootprintStat{huge}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mism) != 0 {
		t.Fatalf("unbounded program still produced mismatches: %v", mism)
	}
}
