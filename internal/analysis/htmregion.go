package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HTMRegion polices code that runs inside a hardware-transaction window.
//
// On real TSX hardware, the code between _xbegin and _xend shares the
// transaction's cache footprint and abort surface: a heap allocation can
// touch allocator metadata lines shared with every other thread ("The
// Influence of Malloc Placement on TSX Hardware Transactional Memory"),
// a lock acquisition writes a contended word into the write set, a
// syscall or scheduler interaction aborts unconditionally, and anything
// that grows the footprint (fmt's reflection, channel machinery) burns
// capacity that Part-HTM's whole contribution is to conserve. The
// simulator will happily execute all of these — silently making the
// model optimistic — so the analyzer forbids them statically instead.
//
// The tracing and profiling fast paths are the sanctioned exceptions:
// (*trace.Buffer).Record and RecordMark are allocation-free single-writer
// ring writes that take a pre-captured timestamp, so they may appear in a
// window, and so may the profiler's (*prof.Shard).RecordConflict,
// RecordCapacity, and RecordFootprint — bounded scans plus plain stores
// into the calling thread's padded shard. Any other repro/internal/trace
// call there — trace.Now (reads the clock) or the Sink methods (lock,
// allocate) — is flagged, as is any other repro/internal/prof call (the
// merged queries lock and allocate; the sampler reads the clock).
//
// A region is:
//
//   - the body of a function literal passed to (*htm.Engine).Execute,
//   - the statements of a function after a call to (*htm.Engine).Begin,
//     up to the first call to Commit or Cancel on the returned *htm.Txn
//     (or the end of the function),
//   - the body of any function declared with a *htm.Txn parameter (such
//     functions only make sense inside a window).
//
// Within a region — and within every module function reachable from it,
// found by the shared call-graph walk (callgraph.go), across package
// boundaries when the driver loaded the callee's package — the analyzer
// flags: time.Now, time.Since, time.Sleep; any call into fmt; channel
// operations, select, and go statements; sync primitive usage; and heap
// allocation via make, new, append, or &-composite literals. Deferred
// functions are exempt (they run after the window closes), as is the htm
// package itself (it is the simulated hardware, not code running on it).
// A function declaring its own *htm.Txn parameter is not re-walked from a
// caller: it is a region root of its own package's pass, so each finding
// is reported exactly once.
//
// The sharded-memory-domain substrate (repro/internal/domain) is split the
// same way: the pure topology accessors (Of, N, Ring, Wlocks) and the
// thread-private TxnState bookkeeping are htmsafe, while the software
// commit helpers (ClaimTimestamp, Publish, ReleaseWlocks,
// SnapshotTimestamps, AllocLinesIn, Validate) spin, CAS shared metadata,
// or publish ring entries and are forbidden inside a window.
//
// The resource governor gets two rules of its own. Calls into
// repro/internal/governor are forbidden inside a window outright:
// admission hooks run at the kernel boundary, between hardware attempts —
// inside a window the shared admission gauge would join the write set,
// and breaker evidence would be recorded by an attempt that may yet
// abort. And inside the governor package itself, every function whose doc
// comment claims it is "allocation-free" — the per-transaction hooks the
// kernel calls on its admission fast path — is scanned (with the same
// call-graph walk) for allocations, locks, formatting, and clock reads,
// making the documented contract build-breaking.
// `// parthtm:htmsafe` suppresses a finding.
var HTMRegion = &Analyzer{
	Name: "htmregion",
	Tag:  "htmsafe",
	Doc: "check that code reachable from a hardware-transaction window does " +
		"not allocate, lock, print, or touch the scheduler",
	Run: runHTMRegion,
}

func runHTMRegion(pass *Pass) {
	// The htm package is the hardware model itself: its internals run
	// "below" the transaction, with their own locking discipline.
	if pass.Pkg.Path() == htmPath {
		return
	}
	// Inside the governor package, hold the admission hooks to their
	// documented allocation-free contract.
	if pass.Pkg.Path() == governorPath {
		checkGovernorHooks(pass)
	}
	w := &regionWalker{pass: pass, visited: map[*FuncNode]bool{}}

	for _, f := range pass.SourceFiles() {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				// Execute body literal: the whole literal is a region.
				fn := calleeFunc(pass.TypesInfo, e)
				if isMethodOf(fn, htmPath, "Engine", "Execute") {
					for _, arg := range e.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							w.scan(pass.This, lit.Body)
						}
					}
				}
			case *ast.FuncDecl:
				if e.Body != nil && hasTxnParam(pass.TypesInfo, e.Type) {
					w.scan(pass.This, e.Body)
					return false // body is fully covered; Begin inside would be nested
				}
			case *ast.FuncLit:
				if hasTxnParam(pass.TypesInfo, e.Type) {
					w.scan(pass.This, e.Body)
					return false
				}
			case *ast.BlockStmt:
				w.scanBeginWindows(e)
			}
			return true
		})
	}
}

// hasTxnParam reports whether ft declares a parameter of type *htm.Txn.
func hasTxnParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isNamed(info.Types[field.Type].Type, htmPath, "Txn") {
			return true
		}
	}
	return false
}

// regionWalker scans region statements and walks the module call graph
// from them, reporting forbidden operations. The visited set is shared by
// every region root of the pass, so a function reachable from several
// windows is scanned — and reported — once.
type regionWalker struct {
	pass    *Pass
	visited map[*FuncNode]bool
}

// scanBeginWindows finds `x := eng.Begin(slot)` inside block and scans
// the statements from there to the first Commit/Cancel on x (or the end
// of the block). Only the statement list of the block containing Begin is
// window-scoped; nested blocks of those statements are scanned whole.
func (w *regionWalker) scanBeginWindows(block *ast.BlockStmt) {
	for i, stmt := range block.List {
		if !callsBegin(w.pass, stmt) {
			continue
		}
		for _, rest := range block.List[i+1:] {
			if endsWindow(w.pass, rest) {
				break
			}
			w.scan(w.pass.This, rest)
		}
		break
	}
}

// callsBegin reports whether stmt contains a call to (*htm.Engine).Begin.
func callsBegin(pass *Pass, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isMethodOf(calleeFunc(pass.TypesInfo, call), htmPath, "Engine", "Begin") {
				found = true
			}
		}
		return !found
	})
	return found
}

// endsWindow reports whether stmt contains a Commit or Cancel call on an
// *htm.Txn — the `_xend` that closes the window.
func endsWindow(pass *Pass, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(pass.TypesInfo, call)
			if isMethodOf(fn, htmPath, "Txn", "Commit") || isMethodOf(fn, htmPath, "Txn", "Cancel") {
				found = true
			}
		}
		return !found
	})
	return found
}

// scan checks one region node parsed under view and recurses into module
// callees, hopping package views as the walk crosses package boundaries.
func (w *regionWalker) scan(view *Package, region ast.Node) {
	pass := w.pass
	ast.Inspect(region, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.DeferStmt:
			// Deferred functions run after the window has closed (commit
			// or abort-unwind) — registration is cheap, skip the body.
			return false

		case *ast.GoStmt:
			pass.ReportfIn(view, e.Pos(), "go statement inside a hardware-transaction window: spawning a goroutine would abort a real transaction")
			return false

		case *ast.SelectStmt:
			pass.ReportfIn(view, e.Pos(), "select inside a hardware-transaction window: channel machinery aborts a real transaction")
			return false

		case *ast.SendStmt:
			pass.ReportfIn(view, e.Pos(), "channel send inside a hardware-transaction window: channel machinery aborts a real transaction")

		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.ReportfIn(view, e.Pos(), "channel receive inside a hardware-transaction window: channel machinery aborts a real transaction")
			} else if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.ReportfIn(view, e.Pos(), "heap allocation (&composite literal) inside a hardware-transaction window: allocator metadata shares cache lines with every thread; hoist the allocation before the window")
				}
			}

		case *ast.RangeStmt:
			if t := view.Info.Types[e.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.ReportfIn(view, e.Pos(), "range over a channel inside a hardware-transaction window: channel machinery aborts a real transaction")
				}
			}

		case *ast.CallExpr:
			w.checkRegionCall(view, e)
		}
		return true
	})
}

// checkRegionCall classifies one call made inside a region.
func (w *regionWalker) checkRegionCall(view *Package, call *ast.CallExpr) {
	pass := w.pass

	// Builtins: allocation and channel close.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := view.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.ReportfIn(view, call.Pos(), "%s inside a hardware-transaction window: heap allocation touches allocator state shared with every thread; hoist it before the window", id.Name)
			case "append":
				pass.ReportfIn(view, call.Pos(), "append inside a hardware-transaction window: growth reallocates on the hot path; pre-size the buffer outside the window")
			case "close":
				pass.ReportfIn(view, call.Pos(), "channel close inside a hardware-transaction window: channel machinery aborts a real transaction")
			}
			return
		}
	}

	fn := calleeFunc(view.Info, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Sleep":
			pass.ReportfIn(view, call.Pos(), "time.%s inside a hardware-transaction window: a real transaction would abort on the timer/vDSO access", fn.Name())
		}
		return
	case "fmt":
		pass.ReportfIn(view, call.Pos(), "fmt.%s inside a hardware-transaction window: formatting allocates and may lock; log after the window closes", fn.Name())
		return
	case "sync":
		pass.ReportfIn(view, call.Pos(), "sync primitive (%s.%s) inside a hardware-transaction window: lock words join the transaction's write set and serialize every window on the same lock", recvTypeName(fn), fn.Name())
		return
	case "runtime":
		if fn.Name() == "Gosched" {
			pass.ReportfIn(view, call.Pos(), "runtime.Gosched inside a hardware-transaction window: yielding to the scheduler aborts a real transaction")
		}
		return
	case htmPath:
		// The simulated hardware itself: Read/Write/Work/Commit run below
		// the transaction and are never walked into.
		return
	case memPath:
		// The memory substrate is the other half of the simulated hardware:
		// a mem.Memory call from a window models a deliberate unmonitored
		// access (e.g. reading a domain timestamp non-transactionally), and
		// the stripe locks and Gosched retries inside it are simulator
		// plumbing with no counterpart in the hardware being modeled.
		return
	case governorPath:
		pass.ReportfIn(view, call.Pos(), "governor.%s inside a hardware-transaction window: admission hooks run at the kernel boundary, between attempts — in a window the admission gauge joins the write set and breaker evidence comes from an attempt that may yet abort", fn.Name())
		return
	case tracePath:
		// (*trace.Buffer).Record and RecordMark are htmsafe by
		// construction: they nil-check, write only the calling thread's
		// pre-allocated ring, and take the timestamp as an argument —
		// captured by the caller outside the window. Everything else in
		// the package is off-limits: trace.Now reads the clock (a real
		// transaction aborts on the vDSO access) and the Sink methods
		// lock or allocate.
		if isMethodOf(fn, tracePath, "Buffer", "Record") ||
			isMethodOf(fn, tracePath, "Buffer", "RecordMark") {
			return
		}
		pass.ReportfIn(view, call.Pos(), "trace.%s inside a hardware-transaction window: only (*trace.Buffer).Record/RecordMark are htmsafe; capture timestamps with trace.Now before the window and record after it closes", fn.Name())
		return
	case profPath:
		// The profiler's Shard record hooks are htmsafe by construction,
		// exactly like trace.Buffer.Record: nil-checked, allocation-free,
		// a bounded scan plus plain stores into the calling thread's
		// padded shard. Everything else in the package locks, allocates
		// (the merged queries), or reads the clock (the sampler).
		if isMethodOf(fn, profPath, "Shard", "RecordConflict") ||
			isMethodOf(fn, profPath, "Shard", "RecordCapacity") ||
			isMethodOf(fn, profPath, "Shard", "RecordFootprint") {
			return
		}
		pass.ReportfIn(view, call.Pos(), "prof.%s inside a hardware-transaction window: only the (*prof.Shard).Record* hooks are htmsafe; cache the shard pointer at Begin and run merged queries after the window closes", fn.Name())
		return
	case domainPath:
		// The sharded-memory-domain substrate splits cleanly: the topology
		// accessors (Of, N, Ring, Wlocks) are pure reads of immutable
		// routing state and the TxnState methods touch only the calling
		// thread's footprint masks — both htmsafe. The software-commit
		// helpers are the opposite: ClaimTimestamp spins on a CAS,
		// Publish stores a whole ring entry that validators spin on,
		// ReleaseWlocks RMWs shared signature words, and AllocLinesIn
		// mutates the allocator — inside a window they would put hotly
		// contended metadata into the hardware read/write sets (instant
		// conflict aborts on real TSX) or, worse, publish state that the
		// enclosing window may yet roll back. They belong between
		// windows, on the software commit path.
		if isMethodOf(fn, domainPath, "Domains", "Of") ||
			isMethodOf(fn, domainPath, "Domains", "N") ||
			isMethodOf(fn, domainPath, "Domains", "Ring") ||
			isMethodOf(fn, domainPath, "Domains", "Wlocks") ||
			isMethodOf(fn, domainPath, "TxnState", "Shard") ||
			isMethodOf(fn, domainPath, "TxnState", "Count") ||
			isMethodOf(fn, domainPath, "TxnState", "Reset") {
			return
		}
		pass.ReportfIn(view, call.Pos(), "domain.%s inside a hardware-transaction window: the cross-domain software-commit helpers spin, CAS shared metadata, or publish ring entries — run them between windows; only the Of/N/Ring/Wlocks accessors and TxnState bookkeeping are htmsafe", fn.Name())
		return
	case obsPath:
		// The telemetry plane has no htmsafe surface at all: registration
		// takes the registry lock, sampling merges histograms and reads
		// every shard, and the encoders allocate. The whole package runs
		// at the scrape boundary by design.
		pass.ReportfIn(view, call.Pos(), "obs.%s inside a hardware-transaction window: telemetry collection and encoding run at the scrape boundary — register sources and sample outside windows", fn.Name())
		return
	}

	// Module callee with a known declaration: walk into it (memoized;
	// cycles terminate, multi-root reachability reports once). A callee
	// declaring its own *htm.Txn parameter is a region root of its own
	// package's pass and is not re-walked here.
	if node := pass.Prog.FuncNode(fn); node != nil && !w.visited[node] {
		if sigHasTxnParam(node.Fn) {
			return
		}
		w.visited[node] = true
		w.scan(node.Pkg, node.Decl.Body)
	}
}

// checkGovernorHooks makes the governor package's own "allocation-free"
// doc claims binding. The per-transaction hooks (Begin, ChargeAttempt,
// NoteHWAbort, Finish) each document that contract — the kernel calls
// them on every transaction, so one allocation or lock there taxes every
// commit in the system. Rather than hard-coding the hook list, the check
// keys off the doc comment: any function in this package documented
// "allocation-free" (and any same-package function it calls, resolved
// through the shared call-graph index) must not allocate, take a sync
// lock, call into fmt, or re-read the clock.
func checkGovernorHooks(pass *Pass) {
	visited := map[*FuncNode]bool{}
	var scanHook func(hook string, body *ast.BlockStmt)
	scanHook = func(hook string, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(e.Pos(), "%s spawns a goroutine but is documented allocation-free: admission hooks run on the kernel's per-transaction fast path", hook)
				return false
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
						pass.Reportf(e.Pos(), "%s heap-allocates (&composite literal) but is documented allocation-free: admission hooks run on the kernel's per-transaction fast path", hook)
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "make", "new", "append":
							pass.Reportf(e.Pos(), "%s heap-allocates (%s) but is documented allocation-free: admission hooks run on the kernel's per-transaction fast path", hook, id.Name)
						}
						return true
					}
				}
				fn := calleeFunc(pass.TypesInfo, e)
				if fn == nil {
					return true
				}
				switch funcPkgPath(fn) {
				case "sync":
					// sync/atomic has its own path and stays allowed: the
					// hooks' whole design is atomics on padded cells.
					pass.Reportf(e.Pos(), "%s takes a lock (%s.%s) but is documented allocation-free: a lock-free admission path cannot be stalled by a blocked thread", hook, recvTypeName(fn), fn.Name())
				case "fmt":
					pass.Reportf(e.Pos(), "%s calls fmt.%s but is documented allocation-free: formatting allocates", hook, fn.Name())
				case "time":
					switch fn.Name() {
					case "Now", "Since":
						pass.Reportf(e.Pos(), "%s reads the clock (time.%s): the kernel captures timestamps once per transaction and passes them in", hook, fn.Name())
					}
				case pass.Pkg.Path():
					if node := pass.Prog.FuncNode(fn); node != nil && node.Pkg == pass.This && !visited[node] {
						visited[node] = true
						scanHook(hook, node.Decl.Body)
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.SourceFiles() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fd.Doc.Text()), "allocation-free") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if node := pass.Prog.FuncNode(fn); node != nil && !visited[node] {
					visited[node] = true
					scanHook(fd.Name.Name, fd.Body)
				}
			}
		}
	}
}

// recvTypeName names fn's receiver type ("Mutex"), or its package for
// plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "sync"
	}
	if named := namedType(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return "sync"
}
