package analysis

import (
	"go/ast"
	"go/types"
)

// SingleWriter enforces tm.Counter's single-writer contract.
//
// Counter.Inc and Counter.Add are a plain load+store pair on a private
// cache line: they are only safe when the calling goroutine owns the
// enclosing Shard. The analyzer therefore requires the receiver of every
// Inc/Add call to be a Counter field of a tm.Shard whose origin it can
// trace to an owner-bound source:
//
//   - the result of (*tm.Stats).Shard(thread), (*exec.Thread).Shard(), or
//     (*domain.TxnState).Shard() (a TxnState is owned by one thread, and
//     its shard pointer is bound to that owner at construction),
//   - a function parameter or method receiver of type *tm.Shard (the
//     caller vouches for ownership),
//   - a struct field of type *tm.Shard (per-thread cached pointers).
//
// It flags shards reached by ranging over a shard slice, by indexing into
// one with a loop variable, or counters stored outside a Shard entirely
// (an aggregate shared by every thread). `// parthtm:owner` suppresses a
// finding where ownership holds for reasons the tracer cannot see.
var SingleWriter = &Analyzer{
	Name: "singlewriter",
	Tag:  "owner",
	Doc: "check that tm.Counter.Inc/Add are only called on a shard owned by " +
		"the calling thread (tm.Counter is single-writer)",
	Run: runSingleWriter,
}

func runSingleWriter(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isMethodOf(fn, tmPath, "Counter", "Inc") && !isMethodOf(fn, tmPath, "Counter", "Add") {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			checkCounterWrite(pass, sel.X, fn.Name(), stack)
			return true
		})
	}
}

// checkCounterWrite validates one Inc/Add receiver (the Counter
// expression, i.e. `<shard>.<field>` in the well-formed case).
func checkCounterWrite(pass *Pass, counter ast.Expr, method string, stack []ast.Node) {
	counter = ast.Unparen(counter)

	// The Counter must be a field selected from a tm.Shard. Anything else
	// — a package-level Counter, a Counter field of some other struct —
	// is an aggregate that several threads would write concurrently.
	csel, ok := counter.(*ast.SelectorExpr)
	if !ok {
		pass.Reportf(counter.Pos(),
			"tm.Counter.%s on a counter stored outside a tm.Shard: Counter is single-writer and must live in a per-thread shard", method)
		return
	}
	fieldSel, ok := pass.TypesInfo.Selections[csel]
	if !ok || !fieldOfShard(fieldSel) {
		pass.Reportf(counter.Pos(),
			"tm.Counter.%s on a counter stored outside a tm.Shard: Counter is single-writer and must live in a per-thread shard", method)
		return
	}

	shard := ast.Unparen(csel.X)
	reportBadOrigin(pass, shard, method, stack, 0)
}

// fieldOfShard reports whether sel selects a field declared on tm.Shard.
func fieldOfShard(sel *types.Selection) bool {
	if sel.Kind() != types.FieldVal {
		return false
	}
	return isNamed(sel.Recv(), tmPath, "Shard")
}

// maxOriginDepth bounds alias chasing through local assignments.
const maxOriginDepth = 8

// reportBadOrigin traces how the shard expression was obtained and
// reports when the origin cannot belong to the calling thread.
func reportBadOrigin(pass *Pass, shard ast.Expr, method string, stack []ast.Node, depth int) {
	if depth > maxOriginDepth {
		return
	}
	shard = ast.Unparen(shard)
	if star, ok := shard.(*ast.StarExpr); ok {
		shard = ast.Unparen(star.X)
	}

	switch e := shard.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, e)
		if isMethodOf(fn, tmPath, "Stats", "Shard") ||
			isMethodOf(fn, execPath, "Thread", "Shard") ||
			isMethodOf(fn, domainPath, "TxnState", "Shard") {
			return // the sanctioned owner-bound accessors
		}
		// Some other call returning a shard: nothing ties it to this
		// thread, but nothing proves sharing either. Trust it — the
		// function's own body is checked where it obtains the shard.
		return

	case *ast.SelectorExpr:
		// A struct field of shard type (e.g. exec.Thread.sh): a cached
		// per-thread pointer. Ownership was established where the field
		// was populated.
		return

	case *ast.IndexExpr:
		pass.Reportf(shard.Pos(),
			"tm.Counter.%s on a shard indexed out of a shard slice: only the owner thread may write; use (*tm.Stats).Shard(thread)", method)
		return

	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[e].(*types.Var)
		if obj == nil {
			return
		}
		if obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(shard.Pos(),
				"tm.Counter.%s on a package-level shard shared by every thread: Counter is single-writer", method)
			return
		}
		fn := enclosingFunc(stack)
		if fn == nil {
			return
		}
		if isParamOrReceiver(pass, fn, obj) {
			return // the caller vouches for ownership
		}
		// Chase the local variable's defining assignments.
		checkLocalShardOrigin(pass, fn, obj, method, stack, depth)
	}
}

// isParamOrReceiver reports whether obj is a parameter or receiver of the
// function node fn.
func isParamOrReceiver(pass *Pass, fn ast.Node, obj *types.Var) bool {
	var ft *ast.FuncType
	var recv *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft, recv = f.Type, f.Recv
	case *ast.FuncLit:
		ft = f.Type
	}
	match := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return match(recv) || (ft != nil && match(ft.Params))
}

// checkLocalShardOrigin inspects every assignment that defines obj inside
// fn and flags origins that cannot be owner-bound: range clauses over a
// shard set, and indexed loads.
func checkLocalShardOrigin(pass *Pass, fn ast.Node, obj *types.Var, method string, stack []ast.Node, depth int) {
	ast.Inspect(fn, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{s.Key, s.Value} {
				id, ok := lhs.(*ast.Ident)
				if ok && (pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj) {
					pass.Reportf(id.Pos(),
						"tm.Counter.%s on a shard obtained by ranging over all shards: only the owner thread may write", method)
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (pass.TypesInfo.Defs[id] != obj && pass.TypesInfo.Uses[id] != obj) {
					continue
				}
				if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
					reportBadOrigin(pass, s.Rhs[i], method, stack, depth+1)
				}
			}
		}
		return true
	})
}
