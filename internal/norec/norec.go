// Package norec implements the NOrec software transactional memory of
// Dalessandro, Spear and Scott (PPoPP 2010), one of the paper's two STM
// baselines.
//
// NOrec uses a single global sequence lock and value-based validation: a
// transaction snapshots the (even) sequence number at begin, logs
// (address, value) pairs for its reads, buffers its writes, and commits by
// acquiring the sequence lock with a CAS, writing back, and releasing. Any
// time the sequence number moves, the read log is revalidated by value.
//
// NOrec is domain-oblivious: one global sequence lock covers the whole
// address space, so every address takes domain-0 semantics (the
// single-domain topology of internal/domain); sharded memory domains are a
// Part-HTM (internal/core) mechanism.
package norec

import (
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

// retryPanic unwinds an aborted software attempt back to the retry loop.
type retryPanic struct{}

// System is a NOrec instance.
type System struct {
	m       *mem.Memory
	seq     mem.Addr // global sequence lock (odd = write-back in progress)
	threads []*thread
	stats   tm.Stats
	run     *exec.Runner
}

type readRec struct {
	addr mem.Addr
	val  uint64
}

type thread struct {
	id        int
	ts        uint64
	readLog   []readRec
	redo      map[mem.Addr]uint64
	redoOrder []mem.Addr
	sh        *tm.Shard
	xtxn      exec.Txn
	body      func(tm.Tx)
}

// New creates a NOrec system on m for up to maxThreads threads.
func New(m *mem.Memory, maxThreads int) *System {
	s := &System{
		m:       m,
		seq:     m.AllocLines(1),
		threads: make([]*thread, maxThreads),
	}
	// A pure STM is an unbounded mid level to the exec kernel: no fast
	// level, no gates, no slow path to fall to.
	s.run = exec.New(exec.Policy{}, &s.stats, nil)
	for i := range s.threads {
		t := &thread{id: i, redo: make(map[mem.Addr]uint64, 16)}
		t.sh = s.stats.Shard(i)
		x := &tx{s: s, t: t}
		t.xtxn = exec.Txn{
			Mid:  func() bool { return s.attempt(t, x, t.body) },
			Slow: func() { panic("norec: unbounded software loop cannot fall through") },
		}
		s.threads[i] = t
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "NOrec" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// SetTrace attaches a trace sink to the execution kernel (nil detaches).
// Attach before starting workers.
func (s *System) SetTrace(sink *trace.Sink) { s.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (s *System) SetGovernor(g *governor.Governor) { s.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches). NOrec
// runs no hardware windows, so only the time-series plane is fed: the
// kernel registers as the sampler source. Attach before starting workers.
func (s *System) SetProfile(p *prof.Profile) { s.run.SetProfile(p) }

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (s *System) BumpPressure(n int64) { s.run.BumpPressure(n) }

// Degraded reports whether the system is currently in degraded serialized
// mode (observability and tests).
func (s *System) Degraded() bool { return s.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (s *System) Pressure() int64 { return s.run.Pressure() }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

func (t *thread) reset() {
	t.readLog = t.readLog[:0]
	for _, a := range t.redoOrder {
		delete(t.redo, a)
	}
	t.redoOrder = t.redoOrder[:0]
}

// begin waits for an even (unlocked) sequence number and snapshots it.
func (s *System) begin(t *thread) {
	for {
		ts := s.m.Load(s.seq)
		if ts&1 == 0 {
			t.ts = ts
			return
		}
		runtime.Gosched()
	}
}

// revalidate waits for an even sequence number, re-reads every logged
// location, and compares values. On a mismatch the transaction aborts; on
// success the snapshot moves forward to the observed sequence number.
func (s *System) revalidate(t *thread) {
	for {
		ts := s.m.Load(s.seq)
		if ts&1 != 0 {
			runtime.Gosched()
			continue
		}
		ok := true
		for _, r := range t.readLog {
			if s.m.Load(r.addr) != r.val {
				ok = false
				break
			}
		}
		if !ok {
			panic(retryPanic{})
		}
		if s.m.Load(s.seq) == ts {
			t.ts = ts
			return
		}
	}
}

// read performs a NOrec transactional read.
func (s *System) read(t *thread, a mem.Addr) uint64 {
	if v, ok := t.redo[a]; ok {
		return v
	}
	for {
		v := s.m.Load(a)
		if s.m.Load(s.seq) == t.ts {
			t.readLog = append(t.readLog, readRec{addr: a, val: v})
			return v
		}
		s.revalidate(t)
	}
}

// write buffers a NOrec transactional write.
func (t *thread) write(a mem.Addr, v uint64) {
	if _, dup := t.redo[a]; !dup {
		t.redoOrder = append(t.redoOrder, a)
	}
	t.redo[a] = v
}

// commit acquires the sequence lock, writes back, and releases.
func (s *System) commit(t *thread) {
	if len(t.redoOrder) == 0 {
		return // read-only: every read was validated against its snapshot
	}
	for !s.m.CAS(s.seq, t.ts, t.ts+1) {
		s.revalidate(t)
	}
	start := time.Now()
	for _, a := range t.redoOrder {
		s.m.Store(a, t.redo[a])
	}
	s.m.Store(s.seq, t.ts+2)
	t.sh.AddSerial(time.Since(start))
}

// tx adapts a thread to tm.Tx.
type tx struct {
	s *System
	t *thread
}

var _ tm.Tx = (*tx)(nil)

func (x *tx) Thread() int { return x.t.id }
func (x *tx) Pause()      {}
func (x *tx) Read(a mem.Addr) uint64 {
	tm.Spin(tm.SWReadBarrier) // modelled barrier cost (see tm package docs)
	return x.s.read(x.t, a)
}

func (x *tx) Write(a mem.Addr, v uint64) {
	tm.Spin(tm.SWWriteBarrier)
	x.t.write(a, v)
}

// WriteLocal stores thread-private data directly: no redo buffering, no
// validation. A later abort leaves the scratch value behind, which is fine
// for private data.
func (x *tx) WriteLocal(a mem.Addr, v uint64) { x.s.m.Store(a, v) }
func (x *tx) Work(c int64)                    { tm.Spin(c) }
func (x *tx) NonTxWork(c int64)               { tm.Spin(c) }

// Atomic implements tm.System: the exec kernel retries the software
// attempt until it commits and records commit/abort outcomes.
func (s *System) Atomic(thread int, body func(tm.Tx)) {
	t := s.threads[thread]
	t.body = body
	s.run.Run(thread, &t.xtxn)
	t.body = nil
}

func (s *System) attempt(t *thread, x *tx, body func(tm.Tx)) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, isRetry := r.(retryPanic); isRetry {
			ok = false
			return
		}
		panic(r)
	}()
	t.reset()
	s.begin(t)
	body(x)
	s.commit(t)
	return true
}
