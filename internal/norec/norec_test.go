package norec

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/tm"
)

func newSys(threads int) *System {
	return New(mem.New(1<<16), threads)
}

func TestReadYourWrites(t *testing.T) {
	s := newSys(1)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		x.Write(a, 9)
		if got := x.Read(a); got != 9 {
			t.Errorf("read-your-write = %d", got)
		}
	})
	if got := s.Memory().Load(a); got != 9 {
		t.Fatalf("a = %d", got)
	}
}

func TestReadOnlyDoesNotBumpSequence(t *testing.T) {
	s := newSys(1)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Read(a) })
	if got := s.Memory().Load(s.seq); got != 0 {
		t.Fatalf("sequence = %d after read-only commit", got)
	}
}

func TestWriterBumpsSequenceByTwo(t *testing.T) {
	s := newSys(1)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Write(a, 1) })
	if got := s.Memory().Load(s.seq); got != 2 {
		t.Fatalf("sequence = %d, want 2 (even, one commit)", got)
	}
}

func TestValueBasedValidationToleratesSilentRepeats(t *testing.T) {
	// NOrec's value-based validation admits a writer that rewrote the same
	// value: the reader needs no abort. We can only observe the absence of
	// livelock here: reads concurrent with same-value writers commit fine.
	s := newSys(2)
	a := s.Memory().Alloc(1)
	s.Memory().Store(a, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Atomic(0, func(x tm.Tx) { x.Write(a, 5) })
		}
	}()
	for i := 0; i < 200; i++ {
		var v uint64
		s.Atomic(1, func(x tm.Tx) { v = x.Read(a) })
		if v != 5 {
			t.Fatalf("read %d, want 5", v)
		}
	}
	wg.Wait()
}

func TestAbortsCountedOnConflict(t *testing.T) {
	s := newSys(2)
	a := s.Memory().Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Atomic(id, func(x tm.Tx) {
					x.Write(a, x.Read(a)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	if got := s.Memory().Load(a); got != 1000 {
		t.Fatalf("counter = %d", got)
	}
	if s.Stats().Snapshot().CommitsSW != 1000 {
		t.Fatalf("commits = %d", s.Stats().Snapshot().CommitsSW)
	}
}

func TestRevalidationAbortsOnChangedValue(t *testing.T) {
	// Reader snapshots a value, a writer changes it, and the reader's next
	// read triggers revalidation, which must abort and retry the reader.
	s := newSys(2)
	m := s.Memory()
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	m.Store(a, 1)

	var once sync.Once
	mid := make(chan struct{})
	goOn := make(chan struct{})
	done := make(chan struct{})
	go func() {
		var va, vb uint64
		s.Atomic(0, func(x tm.Tx) {
			va = x.Read(a)
			if va == 1 {
				once.Do(func() {
					close(mid)
					<-goOn
				})
			}
			vb = x.Read(b)
		})
		// The retry must observe the writer's consistent pair.
		if va != vb {
			t.Errorf("committed with torn snapshot: a=%d b=%d", va, vb)
		}
		close(done)
	}()
	<-mid
	s.Atomic(1, func(x tm.Tx) {
		x.Write(a, 7)
		x.Write(b, 7)
	})
	close(goOn)
	<-done
	if got := s.Stats().Snapshot().AbortsConflict; got == 0 {
		t.Fatal("no abort recorded despite an invalidated snapshot")
	}
}

func TestWritebackIsAtomicToReaders(t *testing.T) {
	s := newSys(2)
	m := s.Memory()
	x0 := m.AllocLines(1)
	y0 := m.AllocLines(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Atomic(0, func(x tm.Tx) {
				x.Write(x0, i)
				x.Write(y0, i)
			})
		}
	}()
	for i := 0; i < 300; i++ {
		var vx, vy uint64
		s.Atomic(1, func(x tm.Tx) {
			vx = x.Read(x0)
			vy = x.Read(y0)
		})
		if vx != vy {
			t.Fatalf("torn snapshot: %d vs %d", vx, vy)
		}
	}
	close(stop)
	wg.Wait()
}
