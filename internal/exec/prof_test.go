package exec

import (
	"testing"
	"time"

	"repro/internal/prof"
	"repro/internal/tm"
)

// TestProfileSamplerSeesRunnerStats: attaching a profile registers the
// runner as the time-series source, so the periodic sampler picks up the
// runner's commit counters.
func TestProfileSamplerSeesRunnerStats(t *testing.T) {
	var st tm.Stats
	r := New(Policy{MidAttempts: 1}, &st, nil)
	p := prof.New(prof.Config{SampleEvery: time.Millisecond, SampleCap: 64})
	r.SetProfile(p)
	if r.Profile() != p {
		t.Fatal("Profile() does not return the attached profile")
	}

	r.Run(0, &Txn{Mid: func() bool { return true }, Slow: func() {}})

	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		samples := p.Samples()
		if len(samples) > 0 {
			last := samples[len(samples)-1]
			if last.CommitsSW >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler never observed the commit: %+v", samples)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProfileDetachClearsSource: swapping the profile out detaches the old
// one — its sampler stops producing new points for this runner.
func TestProfileDetachClearsSource(t *testing.T) {
	var st tm.Stats
	r := New(Policy{}, &st, nil)
	p := prof.New(prof.Config{SampleEvery: time.Millisecond, SampleCap: 8})
	r.SetProfile(p)
	r.SetProfile(nil)
	p.Start()
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	if n := len(p.Samples()); n != 0 {
		t.Fatalf("detached profile still sampled %d points", n)
	}
}
