// Package exec is the shared transactional execution kernel: the retry /
// backoff / lemming-wait / escalation loop that every system in this
// repository used to re-implement privately. A system describes its commit
// levels as a Policy (how many attempts per level, which gates apply) and
// each transaction as a Txn (the fast hardware attempt, the mid-level
// software attempt, the always-succeeds slow path); the Runner drives the
// levels, charges the hardware-abort budget, bids eldest priority for
// starving transactions, applies jittered exponential backoff, runs the
// graceful-degradation mode, and records every commit and abort into the
// per-thread tm.Stats shards.
//
// The level structure mirrors the paper's Part-HTM schedule (fast →
// partitioned → global lock) but degenerates cleanly: HTM-GL and HLE use
// only Fast+Slow, the pure STMs (NOrec, RingSTM) use only an unbounded Mid,
// and NOrecRH uses Fast plus an unbounded Mid.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Policy describes a system's retry schedule and contention-management
// parameters. The zero value is a valid minimal policy: no fast level, an
// unbounded mid level, no gates, no budget — the shape of a pure STM.
type Policy struct {
	// FastAttempts is how many Fast (hardware) attempts are made before
	// moving on. Zero disables the fast level.
	FastAttempts int
	// StopFastOnResource abandons remaining fast attempts after a capacity
	// or timer abort (retrying would fail the same way; the next level is
	// the remedy). Part-HTM and NOrecRH set it; HTM-GL retries through.
	StopFastOnResource bool
	// MidAttempts is how many Mid attempts are made before falling through
	// to Slow. Zero with a non-nil Txn.Mid means retry forever (the pure
	// STMs' loop, which has no slow path to fall to).
	MidAttempts int
	// GateMid applies the lemming-wait gate before each Mid attempt too
	// (Part-HTM waits for the global lock before a partitioned attempt).
	GateMid bool
	// Backoff applies jittered exponential backoff between failed Mid
	// attempts.
	Backoff bool
	// MaxBackoff bounds the exponential backoff; <= 0 degrades backoff to
	// a bare yield.
	MaxBackoff time.Duration

	// RetryBudget caps the hardware aborts one transaction may absorb
	// before it escalates straight to the slow path. Zero disables the
	// budget.
	RetryBudget int
	// StarveThreshold is how many mid-level aborts in a row make a
	// transaction bid for eldest priority (see Runner.bidPriority). Zero
	// disables priority bidding — and age-ticket issuance entirely.
	StarveThreshold int
	// LemmingWaitSpins bounds the pre-attempt wait on the gate; a waiter
	// that exceeds the (jittered) bound escalates to the slow path instead
	// of feeding the lemming convoy. Zero means wait unbounded.
	LemmingWaitSpins int
	// DegradeThreshold is the contention-pressure level at which the
	// runner enters the degraded serialized mode (every transaction goes
	// straight to Slow), recovering as commits drain the pressure. Zero
	// disables degradation.
	DegradeThreshold int
}

// Txn describes one transaction's level implementations. The kernel owns
// all stats recording: level callbacks only execute and report.
type Txn struct {
	// SkipFast skips the fast level for this transaction only (self-tuned
	// fast-path avoidance); the policy's FastAttempts is unchanged.
	SkipFast bool
	// Fast runs one hardware attempt. nil disables the fast level.
	Fast func() htm.Result
	// FastCommitted, when non-nil, observes a fast-level commit (Part-HTM
	// resets its fast-fail streak there).
	FastCommitted func()
	// FastResource, when non-nil, observes a fast-level resource abort
	// (after budget accounting, before the level is abandoned).
	FastResource func()
	// Mid runs one software attempt, reporting whether it committed. nil
	// disables the mid level.
	Mid func() bool
	// Slow runs the transaction to guaranteed completion (global lock).
	Slow func()
	// Domains, when non-nil, reports how many memory domains the most
	// recent fast or mid attempt touched (sharded-domain systems only).
	// The kernel uses it to attribute commits and aborts of cross-domain
	// transactions; nil or a result < 2 means single-domain.
	Domains func() int
}

// Thread is one thread's kernel-side state: its stats shard, contention
// budget, age ticket, and backoff PRNG. Obtain via Runner.Thread and use
// from one goroutine at a time.
type Thread struct {
	r  *Runner
	id int
	sh *tm.Shard

	rngState uint64

	// Per-transaction contention-manager state: the age ticket, the
	// remaining hardware-abort budget, the consecutive-mid-abort score
	// (decayed on commit), and whether an escalation was already recorded.
	ticket    uint64
	budget    int
	starve    int
	escalated bool

	// Tracing state (nil buf = tracing disabled; the hot path pays one
	// branch). txID identifies the current transaction across retries;
	// beginTS anchors the latency histograms; degSeen tracks the last
	// degraded-mode state this thread observed, so mode edges are recorded
	// exactly once per thread.
	buf     *trace.Buffer
	lat     *trace.LatShard
	txSeq   uint64
	txID    uint64
	beginTS int64
	degSeen bool

	// Governor state (nil gv = no governor; the hot path pays one branch,
	// mirroring the tracing plumbing). lastPath remembers the committing
	// path for the breaker's Finish feedback.
	gv       *governor.State
	lastPath uint8
}

// Shard returns the thread's stats shard (for system-specific counters the
// kernel does not own, e.g. serial-time accounting).
func (t *Thread) Shard() *tm.Shard { return t.sh }

func (t *Thread) rng() uint64 {
	t.rngState = t.rngState*6364136223846793005 + 1442695040888963407
	return t.rngState >> 11
}

// NoteHWAbort charges one hardware abort against the transaction's budget
// and accounts injector-forced faults. Systems whose level callbacks absorb
// hardware aborts internally (Part-HTM's sub-HTM transactions) call this
// for each one; the kernel calls it itself for fast-level aborts. When
// tracing is on it also records the abort event with its cause and feeds
// the begin-to-abort latency histogram (the caller is by definition
// outside the hardware window — the abort already happened).
func (t *Thread) NoteHWAbort(res htm.Result) {
	if res.Injected {
		t.sh.FaultsInjected.Inc()
	}
	if t.gv != nil {
		t.gv.NoteHWAbort() // circuit-breaker evidence
	}
	if t.r.pol.RetryBudget > 0 {
		t.budget--
	}
	if t.buf != nil {
		ts := trace.Now()
		c := uint8(res.Reason)
		t.buf.Record(ts, trace.EvHWAbort, t.txID, 0, c, 0)
		if int(c) < len(t.lat.Abort) {
			t.lat.Abort[c].Add(ts - t.beginTS)
		}
	}
}

// TraceEvent records one protocol event against the thread's current
// transaction (sub-HTM begin/commit, lock traffic, ring publication —
// events the kernel cannot see because they happen inside the systems'
// level callbacks). A no-op when tracing is off. Callers must be outside
// hardware windows: the timestamp is taken here.
func (t *Thread) TraceEvent(k trace.Kind, arg uint64) {
	if t.buf != nil {
		t.buf.Record(trace.Now(), k, t.txID, arg, 0, 0)
	}
}

// traceBegin opens the transaction's trace scope: degraded-mode edges the
// thread has not yet observed, a fresh transaction ID, and the begin event
// anchoring the latency measurements.
func (r *Runner) traceBegin(t *Thread) {
	if t.buf == nil {
		return
	}
	ts := trace.Now()
	if r.pol.DegradeThreshold > 0 {
		if d := r.degraded.Load(); d != t.degSeen {
			t.degSeen = d
			if d {
				t.buf.RecordMark(ts, trace.EvDegEnter, 0)
			} else {
				t.buf.RecordMark(ts, trace.EvDegLeave, 0)
			}
		}
	}
	t.txSeq++
	t.txID = uint64(t.id)<<32 | (t.txSeq & (1<<32 - 1))
	t.beginTS = ts
	t.buf.Record(ts, trace.EvBegin, t.txID, 0, 0, 0)
}

// traceCommit closes the scope: the commit event tagged with the final
// execution path, and the begin-to-commit latency for that path.
func (t *Thread) traceCommit(path uint8) {
	if t.buf == nil {
		return
	}
	ts := trace.Now()
	t.buf.Record(ts, trace.EvCommit, t.txID, 0, 0, path)
	t.lat.Path[path].Add(ts - t.beginTS)
}

// traceSWAbort records a software-level abort (mid-level validation or
// conflict failure) and its begin-to-abort latency under the conflict
// cause.
func (t *Thread) traceSWAbort() {
	if t.buf == nil {
		return
	}
	ts := trace.Now()
	t.buf.Record(ts, trace.EvSWAbort, t.txID, 0, trace.CauseConflict, 0)
	t.lat.Abort[trace.CauseConflict].Add(ts - t.beginTS)
}

func (t *Thread) budgetExhausted() bool {
	return t.r.pol.RetryBudget > 0 && t.budget <= 0
}

// Runner drives transactions through a Policy's levels. One Runner per
// system instance; it owns the system's contention-manager state and writes
// all level outcomes into the system's tm.Stats.
type Runner struct {
	pol   Policy
	stats *tm.Stats
	// gateFree reports whether the optimistic levels' gate (in every
	// current system: the global lock) is open. nil means ungated.
	gateFree func() bool

	mu      sync.Mutex // guards thread-slice growth, the trace sink, the governor, and the profile
	threads atomic.Pointer[[]*Thread]
	sink    *trace.Sink
	gov     *governor.Governor
	prof    *prof.Profile

	// ticketCtr issues age tickets (smaller = elder); prio holds the
	// ticket of the transaction currently granted eldest priority (0 =
	// none). pressure/degraded drive the graceful degradation mode.
	ticketCtr atomic.Uint64
	prio      atomic.Uint64
	pressure  atomic.Int64
	degraded  atomic.Bool
}

// New creates a Runner over the system's stats. gateFree may be nil when
// the policy uses no gate.
func New(pol Policy, stats *tm.Stats, gateFree func() bool) *Runner {
	return &Runner{pol: pol, stats: stats, gateFree: gateFree}
}

// Thread returns thread id's kernel state, growing the set as needed.
// Callers on a measured path should cache the pointer per thread.
func (r *Runner) Thread(id int) *Thread {
	if p := r.threads.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return r.growThread(id)
}

func (r *Runner) growThread(id int) *Thread {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur []*Thread
	if p := r.threads.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) {
		return cur[id]
	}
	next := make([]*Thread, id+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		t := &Thread{
			r:        r,
			id:       i,
			sh:       r.stats.Shard(i),
			rngState: uint64(i)*0x9E3779B97F4A7C15 + 0x1234567,
		}
		if r.sink != nil {
			t.buf = r.sink.Thread(i)
			t.lat = r.sink.Lat(i)
		}
		if r.gov != nil {
			t.gv = r.gov.State(i)
		}
		next[i] = t
	}
	r.threads.Store(&next)
	return next[id]
}

// SetTrace attaches a trace sink to the runner (nil detaches): every
// existing and future Thread gets its per-thread event buffer and latency
// shard. Like SetEscalateHook it must not be flipped while transactions
// run — attach before starting workers, detach after joining them.
func (r *Runner) SetTrace(s *trace.Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
	if p := r.threads.Load(); p != nil {
		for _, t := range *p {
			if s != nil {
				t.buf = s.Thread(t.id)
				t.lat = s.Lat(t.id)
			} else {
				t.buf = nil
				t.lat = nil
			}
		}
	}
}

// TraceSink returns the attached trace sink (nil when tracing is off).
func (r *Runner) TraceSink() *trace.Sink {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// SetGovernor attaches the resource governor (nil detaches): every existing
// and future Thread gets its per-thread governor cell. Like SetTrace it
// must not be flipped while transactions run — attach before starting
// workers.
func (r *Runner) SetGovernor(g *governor.Governor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gov = g
	if p := r.threads.Load(); p != nil {
		for _, t := range *p {
			if g != nil {
				t.gv = g.State(t.id)
			} else {
				t.gv = nil
			}
		}
	}
}

// Governor returns the attached governor (nil when none).
func (r *Runner) Governor() *governor.Governor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gov
}

// SetProfile attaches the abort-attribution profiler to the runner's
// lifecycle (nil detaches): the runner registers itself as the profile's
// time-series source, so the periodic sampler snapshots this system's
// tm.Stats shards and governor state for the duration of the attachment.
// The address-level capture planes are fed by the htm engine (systems with
// an engine attach it too); the runner owns the counters the time series
// is made of. Like SetTrace it must not be flipped while transactions run.
func (r *Runner) SetProfile(p *prof.Profile) {
	r.mu.Lock()
	old := r.prof
	r.prof = p
	r.mu.Unlock()
	if old != nil && old != p {
		old.SetSource(nil)
	}
	if p != nil {
		p.SetSource(r.sampleSource)
	}
}

// Profile returns the attached profiler (nil when profiling is off).
func (r *Runner) Profile() *prof.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prof
}

// sampleSource builds one time-series sample from the runner's stats
// shards, governor gauges, and degradation state. Called by the profile's
// sampler goroutine; any-thread-safe (Snapshot and the gauges are).
func (r *Runner) sampleSource() prof.Sample {
	snap := r.stats.Snapshot()
	s := prof.Sample{
		CommitsHTM:       snap.CommitsHTM,
		CommitsSW:        snap.CommitsSW,
		CommitsGL:        snap.CommitsGL,
		AbortsConflict:   snap.AbortsConflict,
		AbortsCapacity:   snap.AbortsCapacity,
		AbortsExplicit:   snap.AbortsExplicit,
		AbortsOther:      snap.AbortsOther,
		Escalations:      snap.Escalations(),
		DegradedCommits:  snap.DegradedCommits,
		Shed:             snap.ShedSerialized,
		BudgetSerialized: snap.BudgetSerialized,
		BreakerTrips:     snap.BreakerTrips,
		BreakerSlow:      snap.BreakerSlow,
		Degraded:         r.degraded.Load(),
		Pressure:         r.pressure.Load(),
	}
	r.mu.Lock()
	g := r.gov
	r.mu.Unlock()
	if g != nil {
		s.Inflight = g.Inflight()
		s.TimeBudgetNanos = int64(g.TimeBudget())
	}
	return s
}

// govNow returns the timestamp the governor's hooks need — zero unless a
// time budget makes the clock worth reading.
func (r *Runner) govNow() int64 {
	if r.gov.NeedsTime() {
		return trace.Now()
	}
	return 0
}

// govCharge charges one optimistic attempt against the governor's budgets,
// reporting false when the transaction must serialize. Called only with a
// governor attached.
func (r *Runner) govCharge(t *Thread) bool {
	if r.gov.ChargeAttempt(t.gv, r.govNow()) {
		return true
	}
	t.sh.BudgetSerialized.Inc()
	t.TraceEvent(trace.EvShed, 1)
	return false
}

// escalation kinds, matching the tm.Stats escalation counters.
type escalation uint8

const (
	escBudget escalation = iota
	escStarve
	escLemming
)

// escalateHook, when set, observes every escalation (test instrumentation).
var escalateHook func(threadID int, ticket uint64)

// SetEscalateHook installs f to be called on every contention-manager
// escalation with the escalating thread and its age ticket (nil to remove).
// Test instrumentation; not safe to flip while transactions run.
func SetEscalateHook(f func(threadID int, ticket uint64)) { escalateHook = f }

// Run executes one transaction for thread id through the policy's levels.
// It always commits (the slow path cannot fail), so it returns only when
// the transaction's effects are durable.
func (r *Runner) Run(id int, txn *Txn) {
	t := r.Thread(id)
	r.cmBegin(t)
	r.traceBegin(t)
	defer r.cmFinish(t)

	// Governor admission: load shedding and the per-thread circuit breaker
	// act before any work is done. Serialize verdicts need a slow path to
	// serialize onto — the pure STMs (no Slow) run their normal unbounded
	// software loop regardless, which for them is the guaranteed path.
	probe := false
	if t.gv != nil {
		verdict, reason := r.gov.Begin(t.gv, r.govNow())
		switch verdict {
		case governor.Serialize:
			if txn.Slow != nil {
				if reason == governor.ReasonBreaker {
					t.sh.BreakerSlow.Inc()
				} else {
					t.sh.ShedSerialized.Inc()
					t.TraceEvent(trace.EvShed, 0)
				}
				r.runSlow(t, txn)
				return
			}
		case governor.Probe:
			probe = true
			t.sh.BreakerProbes.Inc()
			t.TraceEvent(trace.EvBreakerProbe, 0)
		}
	}

	if r.pol.DegradeThreshold > 0 && r.degraded.Load() {
		// Degraded mode: serialize everything until the pressure that
		// tripped it has drained (each commit decays it by one).
		t.sh.DegradedCommits.Inc()
		t.TraceEvent(trace.EvDegRun, 0)
		r.runSlow(t, txn)
		return
	}

	if txn.Fast != nil && (!txn.SkipFast || probe) && r.pol.FastAttempts > 0 {
		t.TraceEvent(trace.EvPathFast, 0)
		for attempt := 0; attempt < r.pol.FastAttempts; attempt++ {
			// Lemming-effect avoidance: do not even start while the gate
			// (global lock) is held.
			if !r.awaitGate(t) {
				r.escalate(t, escLemming)
				r.runSlow(t, txn)
				return
			}
			if t.gv != nil && !r.govCharge(t) {
				r.runSlow(t, txn)
				return
			}
			res := txn.Fast()
			if res.Committed {
				t.sh.CommitsHTM.Inc()
				if txn.Domains != nil && txn.Domains() > 1 {
					t.sh.CrossDomainCommits.Inc()
				}
				t.lastPath = trace.PathHTM
				t.traceCommit(trace.PathHTM)
				if txn.FastCommitted != nil {
					txn.FastCommitted()
				}
				return
			}
			t.sh.RecordAbort(res.Reason)
			if txn.Domains != nil && txn.Domains() > 1 {
				t.sh.CrossDomainAborts.Inc()
			}
			t.NoteHWAbort(res)
			if t.budgetExhausted() {
				r.escalate(t, escBudget)
				r.runSlow(t, txn)
				return
			}
			if res.Reason == htm.Capacity || res.Reason == htm.Other {
				// Resource failure: the next level is the remedy; more
				// fast retries would fail the same way.
				if txn.FastResource != nil {
					txn.FastResource()
				}
				if r.pol.StopFastOnResource {
					break
				}
			}
		}
	}

	if txn.Mid != nil {
		t.TraceEvent(trace.EvPathPart, 0)
		for attempt := 0; r.pol.MidAttempts == 0 || attempt < r.pol.MidAttempts; attempt++ {
			if r.pol.GateMid && !r.awaitGate(t) {
				r.escalate(t, escLemming)
				r.runSlow(t, txn)
				return
			}
			if t.gv != nil && txn.Slow != nil && !r.govCharge(t) {
				r.runSlow(t, txn)
				return
			}
			if txn.Mid() {
				t.sh.CommitsSW.Inc()
				if txn.Domains != nil && txn.Domains() > 1 {
					t.sh.CrossDomainCommits.Inc()
				}
				t.lastPath = trace.PathSW
				t.traceCommit(trace.PathSW)
				return
			}
			t.sh.AbortsConflict.Inc()
			if txn.Domains != nil && txn.Domains() > 1 {
				t.sh.CrossDomainAborts.Inc()
			}
			t.traceSWAbort()
			t.starve++
			if t.budgetExhausted() {
				r.escalate(t, escBudget)
				r.runSlow(t, txn)
				return
			}
			if r.pol.StarveThreshold > 0 && t.starve >= r.pol.StarveThreshold && r.bidPriority(t) {
				// The eldest starving transaction serializes: it cannot
				// lose another conflict on the slow path, and younger
				// starvers keep retrying until the ticket frees (or they
				// become eldest).
				r.escalate(t, escStarve)
				r.runSlow(t, txn)
				return
			}
			if r.pol.Backoff {
				r.backoff(t, attempt)
			}
		}
	}

	r.runSlow(t, txn)
}

// runSlow runs the guaranteed level and accounts the commit.
func (r *Runner) runSlow(t *Thread, txn *Txn) {
	t.TraceEvent(trace.EvPathSlow, 0)
	txn.Slow()
	t.sh.CommitsGL.Inc()
	t.lastPath = trace.PathGL
	t.traceCommit(trace.PathGL)
}

// cmBegin opens one transaction's contention-manager scope: a fresh age
// ticket (only when priority bidding is on — tickets are meaningless
// otherwise) and a full hardware-abort budget.
func (r *Runner) cmBegin(t *Thread) {
	if r.pol.StarveThreshold > 0 {
		t.ticket = r.ticketCtr.Add(1)
	}
	t.budget = r.pol.RetryBudget
	t.escalated = false
}

// cmFinish closes the scope after the commit (every Run commits): the
// priority ticket is released, the starvation score decays, and one unit
// of degradation pressure drains.
func (r *Runner) cmFinish(t *Thread) {
	if t.gv != nil {
		// Breaker feedback on the final path: a hardware commit closes an
		// open breaker, a lock-saved hardware failure feeds the trip streak.
		switch r.gov.Finish(t.gv, t.lastPath) {
		case governor.TransTrip:
			t.sh.BreakerTrips.Inc()
			t.TraceEvent(trace.EvBreakerTrip, 0)
		case governor.TransClose:
			t.sh.BreakerCloses.Inc()
			t.TraceEvent(trace.EvBreakerClose, 0)
		}
	}
	if r.pol.StarveThreshold > 0 && r.prio.Load() == t.ticket {
		r.prio.CompareAndSwap(t.ticket, 0)
	}
	t.starve >>= 1
	if r.pol.DegradeThreshold > 0 {
		r.decayPressure()
	}
}

// escalate records one slow-path escalation (once per transaction).
func (r *Runner) escalate(t *Thread, kind escalation) {
	if t.escalated {
		return
	}
	t.escalated = true
	switch kind {
	case escBudget:
		t.sh.EscalationsBudget.Inc()
	case escStarve:
		t.sh.EscalationsStarve.Inc()
	case escLemming:
		t.sh.EscalationsLemming.Inc()
	}
	t.TraceEvent(trace.EvEscalate, uint64(kind))
	if h := escalateHook; h != nil {
		h(t.id, t.ticket)
	}
}

// bidPriority tries to acquire the eldest-priority ticket. The smallest
// (oldest) ticket wins: a younger holder is displaced, a younger bidder is
// refused. The total order on tickets makes the outcome acyclic, so exactly
// one of two mutually-aborting transactions escalates first — no livelock.
func (r *Runner) bidPriority(t *Thread) bool {
	for {
		cur := r.prio.Load()
		switch {
		case cur == t.ticket:
			return true
		case cur != 0 && cur < t.ticket:
			return false // an elder transaction already holds priority
		}
		if r.prio.CompareAndSwap(cur, t.ticket) {
			return true
		}
	}
}

// awaitGate waits for the gate to open before an optimistic attempt. It
// returns false when the bounded (jittered) wait expired — the caller
// escalates instead of feeding the lemming convoy. With LemmingWaitSpins
// zero the wait is unbounded. A nil gate is always open. The lemming
// enter/exit events are recorded only when the gate actually blocks, so
// the gate-open common case stays one function call.
func (r *Runner) awaitGate(t *Thread) bool {
	if r.gateFree == nil || r.gateFree() {
		return true
	}
	t.TraceEvent(trace.EvLemmingEnter, 0)
	ok := true
	spins := r.pol.LemmingWaitSpins
	if spins <= 0 {
		for !r.gateFree() {
			runtime.Gosched()
		}
	} else {
		limit := spins + int(t.rng()%uint64(spins/4+1))
		ok = false
		for i := 1; i < limit; i++ {
			runtime.Gosched()
			if r.gateFree() {
				ok = true
				break
			}
		}
	}
	var expired uint64
	if !ok {
		expired = 1
	}
	t.TraceEvent(trace.EvLemmingExit, expired)
	return ok
}

// BumpPressure raises the degradation pressure by n, tripping degraded mode
// at the threshold. Pressure is capped so recovery stays bounded. The
// degraded-mode transitions are rare events; they are attributed to shard 0.
func (r *Runner) BumpPressure(n int64) {
	thr := int64(r.pol.DegradeThreshold)
	if thr <= 0 {
		return
	}
	if v := r.pressure.Add(n); v >= thr {
		if v > 2*thr {
			r.pressure.Store(2 * thr) // cap (racy, heuristic counter)
		}
		if r.degraded.CompareAndSwap(false, true) {
			r.stats.Shard(0).DegradedEnter.Inc()
		}
	}
}

// decayPressure drains one unit of degradation pressure and leaves degraded
// mode when it reaches zero.
func (r *Runner) decayPressure() {
	for {
		cur := r.pressure.Load()
		if cur <= 0 {
			// Never entered, or already drained by a racing decay: make
			// sure the mode flag cannot stay stuck.
			if r.degraded.Load() && r.degraded.CompareAndSwap(true, false) {
				r.stats.Shard(0).DegradedExit.Inc()
			}
			return
		}
		if r.pressure.CompareAndSwap(cur, cur-1) {
			if cur-1 == 0 && r.degraded.CompareAndSwap(true, false) {
				r.stats.Shard(0).DegradedExit.Inc()
			}
			return
		}
	}
}

// Degraded reports whether the runner is currently in degraded serialized
// mode (observability and tests).
func (r *Runner) Degraded() bool { return r.degraded.Load() }

// Pressure returns the current degradation-pressure level.
func (r *Runner) Pressure() int64 { return r.pressure.Load() }

// PriorityTicket returns the age ticket currently holding eldest priority
// (0 = none).
func (r *Runner) PriorityTicket() uint64 { return r.prio.Load() }

// maxBackoffShift caps the backoff exponent: beyond it the doubling has
// long exceeded any sane MaxBackoff, and past 63 the shift would overflow.
const maxBackoffShift = 20

// backoff sleeps for an exponentially growing, jittered duration after a
// mid-level abort (Figure 1, line 59 of the paper).
func (r *Runner) backoff(t *Thread, attempt int) {
	max := r.pol.MaxBackoff
	if max <= 0 {
		runtime.Gosched()
		return
	}
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	d := time.Duration(1<<uint(attempt)) * time.Microsecond
	if d > max {
		d = max
	}
	jitter := time.Duration(t.rng() % uint64(d+1))
	time.Sleep(d/2 + jitter/2)
}
