package exec

import (
	"testing"
	"time"

	"repro/internal/htm"
	"repro/internal/tm"
)

// TestBackoffShiftClamped: huge attempt numbers must neither overflow the
// shift nor stall; before the clamp, 1<<attempt overflowed time.Duration
// from attempt 63 on.
func TestBackoffShiftClamped(t *testing.T) {
	var st tm.Stats
	r := New(Policy{MaxBackoff: 100 * time.Microsecond}, &st, nil)
	th := r.Thread(0)
	for _, attempt := range []int{0, maxBackoffShift, 63, 64, 1000} {
		start := time.Now()
		r.backoff(th, attempt)
		if el := time.Since(start); el > time.Second {
			t.Fatalf("backoff(%d) took %v", attempt, el)
		}
	}
}

// TestLevelSchedule drives a transaction whose fast level always aborts and
// whose mid level commits on the third attempt, checking the kernel walks
// the levels in order and records every outcome.
func TestLevelSchedule(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 2, MidAttempts: 5}, &st, nil)
	fast, mid := 0, 0
	txn := &Txn{
		Fast: func() htm.Result { fast++; return htm.Result{Reason: htm.Conflict} },
		Mid:  func() bool { mid++; return mid == 3 },
		Slow: func() { t.Fatal("slow path reached despite mid commit") },
	}
	r.Run(0, txn)
	if fast != 2 || mid != 3 {
		t.Fatalf("fast = %d, mid = %d", fast, mid)
	}
	snap := st.Snapshot()
	if snap.CommitsSW != 1 || snap.AbortsConflict != 4 { // 2 fast + 2 mid aborts
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestResourceAbortStopsFast: with StopFastOnResource a capacity abort must
// abandon the remaining fast attempts and call the FastResource hook.
func TestResourceAbortStopsFast(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 5, StopFastOnResource: true}, &st, nil)
	fast, hook := 0, 0
	txn := &Txn{
		Fast:         func() htm.Result { fast++; return htm.Result{Reason: htm.Capacity} },
		FastResource: func() { hook++ },
		Slow:         func() {},
	}
	r.Run(0, txn)
	if fast != 1 || hook != 1 {
		t.Fatalf("fast = %d, resource hook = %d, want 1 and 1", fast, hook)
	}
	snap := st.Snapshot()
	if snap.AbortsCapacity != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestSkipFast: a transaction flagged SkipFast must go straight to the mid
// level without touching the policy's fast schedule.
func TestSkipFast(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 5, MidAttempts: 1}, &st, nil)
	txn := &Txn{
		SkipFast: true,
		Fast:     func() htm.Result { t.Fatal("fast level run despite SkipFast"); return htm.Result{} },
		Mid:      func() bool { return true },
		Slow:     func() {},
	}
	r.Run(0, txn)
	if st.Snapshot().CommitsSW != 1 {
		t.Fatalf("snapshot = %+v", st.Snapshot())
	}
}

// TestBudgetEscalates: exhausting the hardware-abort budget must escalate
// to the slow path and record exactly one budget escalation.
func TestBudgetEscalates(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 100, RetryBudget: 3}, &st, nil)
	fast, slow := 0, 0
	txn := &Txn{
		Fast: func() htm.Result { fast++; return htm.Result{Reason: htm.Conflict} },
		Slow: func() { slow++ },
	}
	r.Run(0, txn)
	if fast != 3 || slow != 1 {
		t.Fatalf("fast = %d, slow = %d", fast, slow)
	}
	snap := st.Snapshot()
	if snap.EscalationsBudget != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The budget refills per transaction: a second Run burns it again.
	r.Run(0, txn)
	if fast != 6 {
		t.Fatalf("fast = %d after second txn, want 6", fast)
	}
}

// TestLemmingEscalates: a permanently held gate with a bounded wait must
// escalate instead of spinning forever.
func TestLemmingEscalates(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1, LemmingWaitSpins: 8}, &st,
		func() bool { return false })
	slow := 0
	txn := &Txn{
		Fast: func() htm.Result { t.Fatal("fast level ran with the gate held"); return htm.Result{} },
		Slow: func() { slow++ },
	}
	r.Run(0, txn)
	if slow != 1 {
		t.Fatalf("slow = %d", slow)
	}
	snap := st.Snapshot()
	if snap.EscalationsLemming != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestStarvationEscalates: enough consecutive mid-level aborts must win the
// priority bid and serialize; the ticket must be released after the commit.
func TestStarvationEscalates(t *testing.T) {
	var st tm.Stats
	r := New(Policy{MidAttempts: 100, StarveThreshold: 2}, &st, nil)
	mid := 0
	txn := &Txn{
		Mid:  func() bool { mid++; return false },
		Slow: func() {},
	}
	r.Run(0, txn)
	if mid != 2 {
		t.Fatalf("mid attempts = %d, want exactly StarveThreshold", mid)
	}
	snap := st.Snapshot()
	if snap.EscalationsStarve != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if r.PriorityTicket() != 0 {
		t.Fatalf("priority ticket %d still held after commit", r.PriorityTicket())
	}
}

// TestDegradedModeSerializes: above-threshold pressure must route every
// transaction to Slow until commits drain it.
func TestDegradedModeSerializes(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1, DegradeThreshold: 2}, &st, nil)
	fast, slow := 0, 0
	txn := &Txn{
		Fast: func() htm.Result { fast++; return htm.Result{Committed: true} },
		Slow: func() { slow++ },
	}
	r.BumpPressure(2)
	if !r.Degraded() {
		t.Fatal("not degraded at threshold")
	}
	r.Run(0, txn) // drains pressure 2 -> 1, still degraded
	if !r.Degraded() || slow != 1 || fast != 0 {
		t.Fatalf("degraded=%v slow=%d fast=%d after first drain commit", r.Degraded(), slow, fast)
	}
	r.Run(0, txn) // drains 1 -> 0: mode exits
	if r.Degraded() {
		t.Fatalf("degraded mode did not recover (pressure %d)", r.Pressure())
	}
	r.Run(0, txn) // back on the fast path
	if fast != 1 || slow != 2 {
		t.Fatalf("fast = %d, slow = %d after recovery", fast, slow)
	}
	snap := st.Snapshot()
	if snap.DegradedEnter != 1 || snap.DegradedExit != 1 || snap.DegradedCommits != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestZeroPolicyIsPureSTM: the zero policy must loop the mid level until it
// commits — the pure-STM shape — with no gates and no tickets issued.
func TestZeroPolicyIsPureSTM(t *testing.T) {
	var st tm.Stats
	r := New(Policy{}, &st, nil)
	mid := 0
	txn := &Txn{
		Mid:  func() bool { mid++; return mid == 50 },
		Slow: func() { t.Fatal("slow path reached in an unbounded mid loop") },
	}
	r.Run(0, txn)
	if mid != 50 {
		t.Fatalf("mid = %d", mid)
	}
	snap := st.Snapshot()
	if snap.CommitsSW != 1 || snap.AbortsConflict != 49 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if r.ticketCtr.Load() != 0 {
		t.Fatal("tickets issued with priority bidding disabled")
	}
}

// TestInjectedFaultCounted: NoteHWAbort must count injector-forced aborts.
func TestInjectedFaultCounted(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 2}, &st, nil)
	first := true
	txn := &Txn{
		Fast: func() htm.Result {
			if first {
				first = false
				return htm.Result{Reason: htm.Other, Injected: true}
			}
			return htm.Result{Committed: true}
		},
		Slow: func() {},
	}
	r.Run(0, txn)
	snap := st.Snapshot()
	if snap.FaultsInjected != 1 || snap.CommitsHTM != 1 || snap.AbortsOther != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
