package exec

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/tm"
	"repro/internal/trace"
)

// TestAbortCauseEnumMatchesTrace pins the cast NoteHWAbort relies on:
// trace's cause constants must stay value-identical to htm.AbortReason.
func TestAbortCauseEnumMatchesTrace(t *testing.T) {
	pairs := []struct {
		hw htm.AbortReason
		tr uint8
	}{
		{htm.NoAbort, trace.CauseNone},
		{htm.Conflict, trace.CauseConflict},
		{htm.Capacity, trace.CauseCapacity},
		{htm.Explicit, trace.CauseExplicit},
		{htm.Other, trace.CauseOther},
	}
	for _, p := range pairs {
		if uint8(p.hw) != p.tr {
			t.Fatalf("htm.AbortReason %d != trace cause %d (%s)", p.hw, p.tr, trace.CauseName(p.tr))
		}
	}
	if int(trace.CauseCount) != 5 {
		t.Fatalf("trace.CauseCount = %d; extend the pin above", trace.CauseCount)
	}
}

func kinds(evs []trace.Event) []trace.Kind {
	out := make([]trace.Kind, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}

func countKind(evs []trace.Event, k trace.Kind) int {
	n := 0
	for _, e := range evs {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestTraceLifecycle drives a transaction through every level — two fast
// aborts, two mid aborts, a mid commit — and checks the recorded event
// stream and latency histograms.
func TestTraceLifecycle(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 2, MidAttempts: 5}, &st, nil)
	sink := trace.NewSink(256)
	r.SetTrace(sink)
	mid := 0
	txn := &Txn{
		Fast: func() htm.Result { return htm.Result{Reason: htm.Conflict} },
		Mid:  func() bool { mid++; return mid == 3 },
		Slow: func() { t.Fatal("slow path reached") },
	}
	r.Run(0, txn)

	evs := sink.Events()
	if countKind(evs, trace.EvBegin) != 1 || countKind(evs, trace.EvCommit) != 1 {
		t.Fatalf("events: %v", kinds(evs))
	}
	if countKind(evs, trace.EvHWAbort) != 2 || countKind(evs, trace.EvSWAbort) != 2 {
		t.Fatalf("aborts: %v", kinds(evs))
	}
	if countKind(evs, trace.EvPathFast) != 1 || countKind(evs, trace.EvPathPart) != 1 {
		t.Fatalf("path transitions: %v", kinds(evs))
	}
	// Event ordering: begin first, commit last, fast level before mid.
	if evs[0].Kind != trace.EvBegin || evs[len(evs)-1].Kind != trace.EvCommit {
		t.Fatalf("begin/commit not bracketing: %v", kinds(evs))
	}
	if evs[len(evs)-1].Path != trace.PathSW {
		t.Fatalf("commit path = %d, want PathSW", evs[len(evs)-1].Path)
	}
	// All events of the run share one transaction ID.
	id := evs[0].ID
	if id == 0 {
		t.Fatal("transaction ID must be nonzero")
	}
	for _, e := range evs {
		if e.ID != id {
			t.Fatalf("event %s has ID %#x, want %#x", e.Kind, e.ID, id)
		}
	}

	lat := sink.Latency()
	if lat.Path[trace.PathSW].Count != 1 {
		t.Fatalf("SW commit latency count = %d, want 1", lat.Path[trace.PathSW].Count)
	}
	if lat.Path[trace.PathHTM].Count != 0 || lat.Path[trace.PathGL].Count != 0 {
		t.Fatal("no HTM/GL commits happened; their histograms must be empty")
	}
	// 2 HW conflict aborts + 2 SW aborts all land under the conflict cause.
	if lat.Abort[trace.CauseConflict].Count != 4 {
		t.Fatalf("conflict abort latency count = %d, want 4", lat.Abort[trace.CauseConflict].Count)
	}
}

// TestTraceHTMAndSlowPaths checks the two other commit paths and the
// capacity-cause histogram.
func TestTraceHTMAndSlowPaths(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 2, StopFastOnResource: true}, &st, nil)
	sink := trace.NewSink(256)
	r.SetTrace(sink)

	r.Run(0, &Txn{
		Fast: func() htm.Result { return htm.Result{Committed: true} },
		Slow: func() { t.Fatal("slow reached on committing fast") },
	})
	// Second transaction: capacity abort ends the fast level, no mid →
	// slow path.
	r.Run(0, &Txn{
		Fast: func() htm.Result { return htm.Result{Reason: htm.Capacity} },
		Slow: func() {},
	})

	evs := sink.Events()
	if countKind(evs, trace.EvPathSlow) != 1 {
		t.Fatalf("slow transitions: %v", kinds(evs))
	}
	lat := sink.Latency()
	if lat.Path[trace.PathHTM].Count != 1 || lat.Path[trace.PathGL].Count != 1 {
		t.Fatalf("path counts = %+v", lat.Path)
	}
	if lat.Abort[trace.CauseCapacity].Count != 1 {
		t.Fatalf("capacity abort count = %d, want 1", lat.Abort[trace.CauseCapacity].Count)
	}
	// The two transactions have distinct IDs on one thread.
	var ids = map[uint64]bool{}
	for _, e := range evs {
		if e.Kind == trace.EvBegin {
			ids[e.ID] = true
		}
	}
	if len(ids) != 2 {
		t.Fatalf("distinct tx IDs = %d, want 2", len(ids))
	}
}

// TestTraceEscalationAndDegraded checks escalation events and degraded
// enter/run/leave edges.
func TestTraceEscalationAndDegraded(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1, RetryBudget: 1, DegradeThreshold: 1}, &st, nil)
	sink := trace.NewSink(256)
	r.SetTrace(sink)

	// Budget escalation: one fast abort exhausts the budget of 1.
	r.Run(0, &Txn{
		Fast: func() htm.Result { return htm.Result{Reason: htm.Conflict} },
		Slow: func() {},
	})
	evs := sink.Events()
	found := false
	for _, e := range evs {
		if e.Kind == trace.EvEscalate {
			found = true
			if e.Arg != uint64(escBudget) {
				t.Fatalf("escalation arg = %d, want budget (%d)", e.Arg, escBudget)
			}
		}
	}
	if !found {
		t.Fatalf("no escalation event: %v", kinds(evs))
	}

	// Degraded mode: bump pressure over the threshold, run (serialized,
	// records EvDegEnter+EvDegRun), drain, run again (records EvDegLeave).
	r.BumpPressure(5)
	if !r.Degraded() {
		t.Fatal("pressure bump did not trip degraded mode")
	}
	for i := 0; i < 8 && r.Degraded(); i++ {
		r.Run(0, &Txn{Slow: func() {}})
	}
	if r.Degraded() {
		t.Fatal("degraded mode did not drain")
	}
	r.Run(0, &Txn{Mid: func() bool { return true }, Slow: func() {}})
	evs = sink.Events()
	if countKind(evs, trace.EvDegEnter) != 1 || countKind(evs, trace.EvDegRun) == 0 {
		t.Fatalf("degraded events: %v", kinds(evs))
	}
	if countKind(evs, trace.EvDegLeave) != 1 {
		t.Fatalf("degraded leave events: %v", kinds(evs))
	}
}

// TestTraceDetachStopsRecording: SetTrace(nil) must restore the untraced
// fast path.
func TestTraceDetachStopsRecording(t *testing.T) {
	var st tm.Stats
	r := New(Policy{}, &st, nil)
	sink := trace.NewSink(64)
	r.SetTrace(sink)
	r.Run(0, &Txn{Mid: func() bool { return true }})
	n := len(sink.Events())
	if n == 0 {
		t.Fatal("tracing attached but nothing recorded")
	}
	r.SetTrace(nil)
	r.Run(0, &Txn{Mid: func() bool { return true }})
	if len(sink.Events()) != n {
		t.Fatal("events recorded after detach")
	}
	if r.TraceSink() != nil {
		t.Fatal("TraceSink must be nil after detach")
	}
}

// TestTraceLemmingEvents: a blocked gate must record enter/exit; the
// bounded wait that expires must mark the exit expired and escalate.
func TestTraceLemmingEvents(t *testing.T) {
	var st tm.Stats
	open := false
	r := New(Policy{FastAttempts: 1, LemmingWaitSpins: 8}, &st, nil)
	r.gateFree = func() bool { return open }
	sink := trace.NewSink(64)
	r.SetTrace(sink)
	r.Run(0, &Txn{
		Fast: func() htm.Result { t.Fatal("fast ran with gate closed"); return htm.Result{} },
		Slow: func() {},
	})
	evs := sink.Events()
	if countKind(evs, trace.EvLemmingEnter) != 1 {
		t.Fatalf("lemming enter: %v", kinds(evs))
	}
	exitOK := false
	for _, e := range evs {
		if e.Kind == trace.EvLemmingExit {
			exitOK = true
			if e.Arg != 1 {
				t.Fatalf("lemming exit arg = %d, want 1 (expired)", e.Arg)
			}
		}
	}
	if !exitOK {
		t.Fatalf("no lemming exit: %v", kinds(evs))
	}

	// Open gate: the common case records nothing.
	open = true
	before := len(sink.Events())
	r.Run(0, &Txn{
		Fast: func() htm.Result { return htm.Result{Committed: true} },
		Slow: func() {},
	})
	for _, e := range sink.Events()[before:] {
		if e.Kind == trace.EvLemmingEnter || e.Kind == trace.EvLemmingExit {
			t.Fatal("open gate must record no lemming events")
		}
	}
}

// TestTraceBackfillsExistingThreads: threads created before SetTrace (the
// core package pre-creates them in New) must still get buffers.
func TestTraceBackfillsExistingThreads(t *testing.T) {
	var st tm.Stats
	r := New(Policy{}, &st, nil)
	_ = r.Thread(0)
	_ = r.Thread(3)
	sink := trace.NewSink(64)
	r.SetTrace(sink)
	r.Run(3, &Txn{Mid: func() bool { return true }})
	found := false
	for _, e := range sink.Events() {
		if e.Thread == 3 && e.Kind == trace.EvCommit {
			found = true
		}
	}
	if !found {
		t.Fatal("pre-created thread recorded nothing after SetTrace")
	}
}
