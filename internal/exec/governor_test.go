package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/tm"
	"repro/internal/trace"
)

// failingFast builds a Txn whose fast level aborts while broken is set and
// commits otherwise, with a counting slow path.
func breakerTxn(broken *atomic.Bool, fastTries, slowRuns *atomic.Int64) *Txn {
	return &Txn{
		Fast: func() htm.Result {
			fastTries.Add(1)
			if broken.Load() {
				return htm.Result{Reason: htm.Other, Injected: true}
			}
			return htm.Result{Committed: true}
		},
		Slow: func() { slowRuns.Add(1) },
	}
}

// TestGovernorBreakerCycleThroughRunner drives the full trip → open →
// half-open probe → close cycle through Run and checks every counter and
// trace event the kernel records along the way.
func TestGovernorBreakerCycleThroughRunner(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1}, &st, nil)
	g := governor.New(governor.Config{BreakerThreshold: 3, BreakerProbeEvery: 4})
	r.SetGovernor(g)
	sink := trace.NewSink(256)
	r.SetTrace(sink)

	var broken atomic.Bool
	var fastTries, slowRuns atomic.Int64
	txn := breakerTxn(&broken, &fastTries, &slowRuns)

	// Hardware broken: the first 3 transactions each abort in hardware and
	// fall through to the slow path, and the third trips the breaker.
	broken.Store(true)
	for i := 0; i < 3; i++ {
		r.Run(0, txn)
	}
	snap := st.Snapshot()
	if snap.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d after threshold failures, want 1", snap.BreakerTrips)
	}
	if !g.State(0).Open() {
		t.Fatal("breaker not open")
	}
	if fastTries.Load() != 3 {
		t.Fatalf("fast attempts = %d, want 3", fastTries.Load())
	}

	// Open: transactions go direct-to-slow without touching the hardware,
	// except every 4th, which probes (and fails — hardware still broken).
	for i := 0; i < 8; i++ {
		r.Run(0, txn)
	}
	snap = st.Snapshot()
	if snap.BreakerSlow != 6 {
		t.Fatalf("BreakerSlow = %d, want 6 of 8", snap.BreakerSlow)
	}
	if snap.BreakerProbes != 2 {
		t.Fatalf("BreakerProbes = %d, want 2 of 8", snap.BreakerProbes)
	}
	if got := fastTries.Load(); got != 5 { // 3 trips + 2 failed probes
		t.Fatalf("fast attempts = %d, want 5 (only probes retry hardware)", got)
	}
	if snap.BreakerCloses != 0 || g.State(0).Open() != true {
		t.Fatal("failed probes must not close the breaker")
	}

	// Hardware recovers: the next probe commits in hardware and closes the
	// breaker; subsequent transactions run the fast path normally again.
	broken.Store(false)
	for i := 0; i < 4; i++ {
		r.Run(0, txn)
	}
	snap = st.Snapshot()
	if snap.BreakerCloses != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", snap.BreakerCloses)
	}
	if g.State(0).Open() {
		t.Fatal("breaker still open after hardware recovery")
	}
	before := fastTries.Load()
	for i := 0; i < 5; i++ {
		r.Run(0, txn)
	}
	if got := fastTries.Load() - before; got != 5 {
		t.Fatalf("post-close fast attempts = %d of 5, want all", got)
	}
	if snap.CommitsGL != uint64(slowRuns.Load()) { // every slow run was accounted
		t.Fatalf("CommitsGL = %d, slow runs = %d", snap.CommitsGL, slowRuns.Load())
	}

	// The trace stream carries the breaker edges in order.
	var kinds []trace.Kind
	for _, e := range sink.Events() {
		switch e.Kind {
		case trace.EvBreakerTrip, trace.EvBreakerProbe, trace.EvBreakerClose:
			kinds = append(kinds, e.Kind)
		}
	}
	want := []trace.Kind{
		trace.EvBreakerTrip, trace.EvBreakerProbe, trace.EvBreakerProbe,
		trace.EvBreakerProbe, trace.EvBreakerClose,
	}
	if len(kinds) != len(want) {
		t.Fatalf("breaker events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("breaker events = %v, want %v", kinds, want)
		}
	}
}

// TestGovernorProbeOverridesSkipFast: a half-open probe must retry the
// hardware even when self-tuning set SkipFast — otherwise a system that
// stopped trying the fast path could never close its breaker.
func TestGovernorProbeOverridesSkipFast(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1}, &st, nil)
	g := governor.New(governor.Config{BreakerThreshold: 1, BreakerProbeEvery: 1})
	r.SetGovernor(g)

	var broken atomic.Bool
	var fastTries, slowRuns atomic.Int64
	txn := breakerTxn(&broken, &fastTries, &slowRuns)
	broken.Store(true)
	r.Run(0, txn) // trips immediately (threshold 1)
	if !g.State(0).Open() {
		t.Fatal("breaker not open")
	}

	broken.Store(false)
	txn.SkipFast = true
	r.Run(0, txn) // probe (probe-every 1) must override SkipFast
	if g.State(0).Open() {
		t.Fatal("probe did not run the fast level under SkipFast")
	}
	if st.Snapshot().BreakerCloses != 1 {
		t.Fatal("breaker close not recorded")
	}
}

// TestGovernorSheddingAndBudgets: the kernel maps overload shedding and
// exhausted attempt budgets onto the slow path with their own counters.
func TestGovernorShedding(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 1}, &st, nil)
	g := governor.New(governor.Config{MaxConcurrent: 1})
	r.SetGovernor(g)

	// Saturate the ceiling from the outside (a service-boundary caller),
	// then run a transaction: it must serialize and count as shed.
	if !g.TryAcquire() {
		t.Fatal("acquire refused")
	}
	ran := false
	r.Run(0, &Txn{
		Fast: func() htm.Result { t.Fatal("fast level run while shed"); return htm.Result{} },
		Slow: func() { ran = true },
	})
	g.Release()
	if !ran {
		t.Fatal("slow path not run")
	}
	snap := st.Snapshot()
	if snap.ShedSerialized != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v, want 1 shed + 1 GL commit", snap)
	}

	// With the ceiling free again transactions are admitted.
	r.Run(0, &Txn{Fast: func() htm.Result { return htm.Result{Committed: true} }, Slow: func() {}})
	if st.Snapshot().ShedSerialized != 1 {
		t.Fatal("admitted transaction counted as shed")
	}
}

func TestGovernorAttemptBudget(t *testing.T) {
	var st tm.Stats
	r := New(Policy{FastAttempts: 10, MidAttempts: 10}, &st, nil)
	r.SetGovernor(governor.New(governor.Config{AttemptBudget: 3}))
	fast, mid := 0, 0
	r.Run(0, &Txn{
		Fast: func() htm.Result { fast++; return htm.Result{Reason: htm.Conflict} },
		Mid:  func() bool { mid++; return false },
		Slow: func() {},
	})
	if fast+mid != 3 {
		t.Fatalf("optimistic attempts = %d (%d fast, %d mid), want 3", fast+mid, fast, mid)
	}
	snap := st.Snapshot()
	if snap.BudgetSerialized != 1 || snap.CommitsGL != 1 {
		t.Fatalf("snapshot = %+v, want 1 budget-serialized + 1 GL commit", snap)
	}
}

func TestGovernorTimeBudget(t *testing.T) {
	var st tm.Stats
	r := New(Policy{MidAttempts: 1 << 20}, &st, nil)
	r.SetGovernor(governor.New(governor.Config{TimeBudget: time.Millisecond}))
	r.Run(0, &Txn{
		Mid:  func() bool { time.Sleep(200 * time.Microsecond); return false },
		Slow: func() {},
	})
	snap := st.Snapshot()
	if snap.BudgetSerialized != 1 {
		t.Fatalf("BudgetSerialized = %d, want 1 (deadline must cut the retry loop)", snap.BudgetSerialized)
	}
	if snap.CommitsGL != 1 {
		t.Fatalf("CommitsGL = %d, want 1", snap.CommitsGL)
	}
}

// TestGovernorPureSTMUnaffected: a policy with no slow path (the pure STMs)
// must run its unbounded software loop regardless of governor verdicts —
// there is nothing to serialize onto.
func TestGovernorPureSTMUnaffected(t *testing.T) {
	var st tm.Stats
	r := New(Policy{}, &st, nil) // zero policy: unbounded mid, no slow
	g := governor.New(governor.Config{MaxConcurrent: 1, AttemptBudget: 1})
	r.SetGovernor(g)
	if !g.TryAcquire() { // force the ceiling so Begin would shed
		t.Fatal("acquire refused")
	}
	mid := 0
	r.Run(0, &Txn{Mid: func() bool { mid++; return mid == 3 }})
	g.Release()
	snap := st.Snapshot()
	if snap.CommitsSW != 1 || mid != 3 {
		t.Fatalf("mid = %d, snapshot = %+v", mid, snap)
	}
	if snap.ShedSerialized != 0 || snap.BudgetSerialized != 0 {
		t.Fatalf("governor serialized a pure STM: %+v", snap)
	}
}

// TestGovernorBreakerHammer exercises the breaker cycle from many threads
// concurrently under -race: per-thread breaker cells must stay single-
// writer, and the shared admission gauge must return to zero.
func TestGovernorBreakerHammer(t *testing.T) {
	const threads = 8
	const txns = 400
	var st tm.Stats
	r := New(Policy{FastAttempts: 1, DegradeThreshold: 8}, &st, nil)
	g := governor.New(governor.Config{
		BreakerThreshold:  2,
		BreakerProbeEvery: 3,
		MaxConcurrent:     threads / 2, // force real shedding traffic
		AttemptBudget:     4,
	})
	r.SetGovernor(g)

	// Phase 1: hardware broken everywhere — every thread trips. Phase 2:
	// hardware recovered — every thread's probes must close the breaker.
	// The phases are barrier-separated so no thread can finish before the
	// recovery becomes visible to it.
	var broken atomic.Bool
	phase := func() {
		var wg sync.WaitGroup
		for id := 0; id < threads; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				var fastTries, slowRuns atomic.Int64
				txn := breakerTxn(&broken, &fastTries, &slowRuns)
				for i := 0; i < txns; i++ {
					r.Run(id, txn)
				}
			}(id)
		}
		wg.Wait()
	}
	broken.Store(true)
	phase()
	broken.Store(false)
	phase()

	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight gauge = %d after quiesce, want 0", got)
	}
	snap := st.Snapshot()
	if snap.Commits() != 2*threads*txns {
		t.Fatalf("commits = %d, want %d (every Run must commit)", snap.Commits(), 2*threads*txns)
	}
	if snap.BreakerTrips == 0 {
		t.Fatal("hammer never tripped a breaker")
	}
	if snap.BreakerCloses == 0 {
		t.Fatal("hammer never closed a breaker after recovery")
	}
	// Every thread's breaker must end closed: hardware recovered long
	// before the run ended and probes re-enable the fast path.
	for id := 0; id < threads; id++ {
		if g.State(id).Open() {
			t.Fatalf("thread %d breaker still open after recovery", id)
		}
	}
}

// TestDegradedEdgesUnderEscalationRace drives degraded-mode entry/exit
// edges while many threads concurrently escalate through eldest-ticket
// priority bidding — the recovery transition under contention. Run with
// -race; the assertion is that the mode edges stay balanced and the system
// quiesces un-degraded with pressure drained.
func TestDegradedEdgesUnderEscalationRace(t *testing.T) {
	const threads = 8
	const txns = 300
	var st tm.Stats
	r := New(Policy{
		FastAttempts:     1,
		MidAttempts:      2,
		RetryBudget:      3,
		StarveThreshold:  1, // escalate aggressively: maximal prio churn
		DegradeThreshold: 4,
	}, &st, nil)

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := &Txn{
				Fast: func() htm.Result { return htm.Result{Reason: htm.Conflict} },
				Mid:  func() bool { return false },
				Slow: func() {},
			}
			for i := 0; i < txns; i++ {
				// Every few transactions, push the pressure over the
				// threshold so entry races against the commits draining it.
				if i%4 == 0 {
					r.BumpPressure(5)
				}
				r.Run(id, txn)
			}
		}(id)
	}
	wg.Wait()

	// Drain any residual pressure the way commits do, then check the mode
	// edges balanced: every entry has a matching exit once drained.
	for r.Pressure() > 0 || r.Degraded() {
		r.decayPressure()
	}
	snap := st.Snapshot()
	if snap.DegradedEnter == 0 {
		t.Fatal("hammer never entered degraded mode")
	}
	if snap.DegradedEnter != snap.DegradedExit {
		t.Fatalf("degraded edges unbalanced: %d enters, %d exits",
			snap.DegradedEnter, snap.DegradedExit)
	}
	if snap.Commits() != threads*txns {
		t.Fatalf("commits = %d, want %d", snap.Commits(), threads*txns)
	}
	if r.PriorityTicket() != 0 {
		t.Fatalf("priority ticket %d still held after quiesce", r.PriorityTicket())
	}
}
