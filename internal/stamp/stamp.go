// Package stamp defines the common harness interface for the Go
// re-implementations of the STAMP applications the paper evaluates
// (Figure 5 and Table 1): kmeans, ssca2, labyrinth, intruder, vacation,
// yada, and genome.
//
// Each application reproduces the transaction shape — footprint, duration,
// contention — that the paper's analysis of its STAMP counterpart relies
// on; the speed-up plots normalize against the same application run on the
// sequential executor, exactly as the paper normalizes against
// "sequential (non-transactional) execution".
package stamp

import "repro/internal/tm"

// App is one STAMP application instance. The lifecycle is:
//
//	app := pkg.New(cfg)
//	sys := ... memory sized with app.MemWords() ...
//	app.Setup(sys)
//	app.Run(threads)
//	if err := app.Validate(); err != nil { ... }
//
// Run distributes the application's fixed amount of work across the given
// number of threads (thread IDs 0..threads-1 drive sys.Atomic). An App is
// single-use: create a fresh one for every run.
type App interface {
	// Name is the application's STAMP name ("kmeans", "labyrinth", ...).
	Name() string
	// MemWords returns the simulated-memory words the app needs, so the
	// caller can size the memory before creating the system.
	MemWords() int
	// Setup allocates and initializes the app's data in sys's memory.
	Setup(sys tm.System)
	// Run executes the whole workload using threads worker goroutines.
	Run(threads int)
	// Validate checks the application's correctness invariants after Run.
	Validate() error
}
