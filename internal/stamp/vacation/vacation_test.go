package vacation

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func small(queryRange int) Config {
	return Config{Relations: 128, Customers: 32, Tasks: 200,
		QueriesPer: 3, QueryRangePc: queryRange, Seed: 5}
}

func TestSequentialRunValidates(t *testing.T) {
	for _, qr := range []int{10, 90} {
		app := New(small(qr))
		app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
		app.Run(1)
		if err := app.Validate(); err != nil {
			t.Fatalf("queryRange %d: %v", qr, err)
		}
	}
}

func TestReservationsActuallyHappen(t *testing.T) {
	app := New(small(90))
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	var sold uint64
	m := sys.Memory()
	for tbl := 0; tbl < numTables; tbl++ {
		for i := 0; i < app.cfg.Relations; i++ {
			sold += app.initFree - m.Load(app.item(tbl, i)+offFree)
		}
	}
	if sold == 0 {
		t.Fatal("no reservations made")
	}
}

func TestNoOverselling(t *testing.T) {
	// High contention on a tiny range: items sell out; free must never
	// wrap below zero (it is unsigned — Validate catches free > initFree).
	cfg := Config{Relations: 16, Customers: 8, Tasks: 500,
		QueriesPer: 4, QueryRangePc: 10, Seed: 5}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsImbalance(t *testing.T) {
	app := New(small(90))
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	sys.Memory().Store(app.customer(0)+offCount, 9999)
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted an imbalanced customer count")
	}
}

func TestContentionConfigsDiffer(t *testing.T) {
	if LowContention().QueryRangePc <= HighContention().QueryRangePc {
		t.Fatal("low contention must query a wider range")
	}
}
