// Package vacation re-implements STAMP's vacation: an in-memory travel
// reservation database with car/flight/room tables and customer records.
// Each client task queries several random items and reserves the cheapest
// available one per table, all in one medium-sized transaction. The
// contention level is set by the fraction of the tables the queries touch,
// matching STAMP's low-contention (-q90) and high-contention (-q10/-q60)
// run modes used for Figures 5(f)/(g).
package vacation

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Table indices.
const (
	tabCar = iota
	tabFlight
	tabRoom
	numTables
)

// Item record layout (one cache line): [free, price, reserved].
const (
	offFree     = 0
	offPrice    = 1
	offReserved = 2
)

// Customer record layout (one cache line): [reservations, totalPrice].
const (
	offCount = 0
	offTotal = 1
)

// Config describes a vacation instance.
type Config struct {
	Relations    int // items per table
	Customers    int
	Tasks        int // total client transactions
	QueriesPer   int // random items examined per table per task
	QueryRangePc int // percent of each table the queries may touch
	Seed         int64
}

// LowContention mirrors STAMP vacation-low.
func LowContention() Config {
	return Config{Relations: 4096, Customers: 1024, Tasks: 4096,
		QueriesPer: 2, QueryRangePc: 90, Seed: 51}
}

// HighContention mirrors STAMP vacation-high.
func HighContention() Config {
	return Config{Relations: 4096, Customers: 1024, Tasks: 4096,
		QueriesPer: 4, QueryRangePc: 10, Seed: 51}
}

// App is a vacation instance.
type App struct {
	cfg Config
	sys tm.System

	tables    [numTables]mem.Addr
	customers mem.Addr

	initFree uint64
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "vacation" }

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	return (numTables*a.cfg.Relations+a.cfg.Customers)*mem.LineWords + 8*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	m := sys.Memory()
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	a.initFree = 10
	for t := 0; t < numTables; t++ {
		a.tables[t] = m.AllocAligned(a.cfg.Relations * mem.LineWords)
		for i := 0; i < a.cfg.Relations; i++ {
			rec := a.item(t, i)
			m.Store(rec+offFree, a.initFree)
			m.Store(rec+offPrice, uint64(50+rng.Intn(500)))
		}
	}
	a.customers = m.AllocAligned(a.cfg.Customers * mem.LineWords)
}

func (a *App) item(table, i int) mem.Addr {
	return a.tables[table] + mem.Addr(i*mem.LineWords)
}

func (a *App) customer(c int) mem.Addr {
	return a.customers + mem.Addr(c*mem.LineWords)
}

// task runs one reservation transaction: for each table, query
// cfg.QueriesPer random items within the query range and reserve the
// cheapest one with availability.
func (a *App) task(id int, rng *rand.Rand) {
	cfg := a.cfg
	rangeSize := cfg.Relations * cfg.QueryRangePc / 100
	if rangeSize < 1 {
		rangeSize = 1
	}
	cust := rng.Intn(cfg.Customers)
	var queries [numTables][]int
	for t := 0; t < numTables; t++ {
		for q := 0; q < cfg.QueriesPer; q++ {
			queries[t] = append(queries[t], rng.Intn(rangeSize))
		}
	}
	a.sys.Atomic(id, func(x tm.Tx) {
		custRec := a.customer(cust)
		count := x.Read(custRec + offCount)
		total := x.Read(custRec + offTotal)
		reservedAny := false
		for t := 0; t < numTables; t++ {
			best := -1
			var bestPrice uint64
			for _, i := range queries[t] {
				rec := a.item(t, i)
				free := x.Read(rec + offFree)
				price := x.Read(rec + offPrice)
				if free > 0 && (best < 0 || price < bestPrice) {
					best, bestPrice = i, price
				}
			}
			if best >= 0 {
				rec := a.item(t, best)
				x.Write(rec+offFree, x.Read(rec+offFree)-1)
				x.Write(rec+offReserved, x.Read(rec+offReserved)+1)
				count++
				total += bestPrice
				reservedAny = true
			}
			x.Pause()
		}
		if reservedAny {
			x.Write(custRec+offCount, count)
			x.Write(custRec+offTotal, total)
		}
	})
}

// Run implements stamp.App.
func (a *App) Run(threads int) {
	var wg sync.WaitGroup
	chunk := (a.cfg.Tasks + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > a.cfg.Tasks {
			hi = a.cfg.Tasks
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(a.cfg.Seed + int64(id)*971))
			for i := lo; i < hi; i++ {
				a.task(id, rng)
			}
		}(t, lo, hi)
	}
	wg.Wait()
}

// Validate implements stamp.App: conservation — reservations recorded on
// items equal the drop in availability and equal the total customer
// reservation count; no item oversold.
func (a *App) Validate() error {
	m := a.sys.Memory()
	var soldByItems, reservedMarks uint64
	for t := 0; t < numTables; t++ {
		for i := 0; i < a.cfg.Relations; i++ {
			rec := a.item(t, i)
			free := m.Load(rec + offFree)
			res := m.Load(rec + offReserved)
			if free > a.initFree {
				return fmt.Errorf("vacation: item (%d,%d) free %d exceeds initial %d",
					t, i, free, a.initFree)
			}
			if a.initFree-free != res {
				return fmt.Errorf("vacation: item (%d,%d) free %d and reserved %d disagree",
					t, i, free, res)
			}
			soldByItems += a.initFree - free
			reservedMarks += res
		}
	}
	var custCount uint64
	for c := 0; c < a.cfg.Customers; c++ {
		custCount += m.Load(a.customer(c) + offCount)
	}
	if custCount != soldByItems {
		return fmt.Errorf("vacation: customers hold %d reservations, items sold %d",
			custCount, soldByItems)
	}
	if reservedMarks != soldByItems {
		return fmt.Errorf("vacation: reserved marks %d != sold %d", reservedMarks, soldByItems)
	}
	return nil
}
