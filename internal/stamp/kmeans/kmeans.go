// Package kmeans re-implements STAMP's kmeans: iterative K-means
// clustering where the per-point assignment is computed outside
// transactions (it only reads the stable previous-iteration centres) and
// each point's contribution to its cluster's accumulator is one short
// transaction — the short, genuinely conflicting transactions of Figures
// 5(a)/(b). Contention is set by the cluster count: STAMP's low-contention
// run uses more clusters (fewer collisions per accumulator) than the
// high-contention run.
package kmeans

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes a kmeans instance.
type Config struct {
	Points     int
	Dims       int
	Clusters   int
	Iterations int
	Seed       int64
}

// LowContention mirrors STAMP kmeans-low (more clusters).
func LowContention() Config {
	return Config{Points: 2048, Dims: 8, Clusters: 40, Iterations: 6, Seed: 11}
}

// HighContention mirrors STAMP kmeans-high (few clusters, hot
// accumulators).
func HighContention() Config {
	return Config{Points: 2048, Dims: 8, Clusters: 5, Iterations: 6, Seed: 11}
}

// App is a kmeans instance.
type App struct {
	cfg Config
	sys tm.System

	points  [][]int64 // read-only input, non-transactional
	centers [][]int64 // previous-iteration centres, stable during a phase

	// accumulators in simulated memory: per cluster, a line-aligned block
	// of [count, sum_0 .. sum_{D-1}].
	acc       mem.Addr
	blockSize int // words per cluster block, line aligned

	lastAssign []int // final-iteration assignment, for validation
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "kmeans" }

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	block := (a.cfg.Dims + 1 + mem.LineWords - 1) / mem.LineWords * mem.LineWords
	return a.cfg.Clusters*block + 4*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	cfg := a.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	a.points = make([][]int64, cfg.Points)
	for i := range a.points {
		p := make([]int64, cfg.Dims)
		for d := range p {
			p[d] = int64(rng.Intn(1 << 16))
		}
		a.points[i] = p
	}
	a.centers = make([][]int64, cfg.Clusters)
	for c := range a.centers {
		a.centers[c] = append([]int64(nil), a.points[rng.Intn(cfg.Points)]...)
	}
	a.blockSize = (cfg.Dims + 1 + mem.LineWords - 1) / mem.LineWords * mem.LineWords
	a.acc = sys.Memory().AllocAligned(cfg.Clusters * a.blockSize)
	a.lastAssign = make([]int, cfg.Points)
}

// block returns the accumulator base address of cluster c.
func (a *App) block(c int) mem.Addr { return a.acc + mem.Addr(c*a.blockSize) }

// nearest returns the closest centre to point p (pure computation).
func (a *App) nearest(p []int64) int {
	best, bestD := 0, int64(1)<<62
	for c, ctr := range a.centers {
		var d int64
		for i := range p {
			diff := p[i] - ctr[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Run implements stamp.App.
func (a *App) Run(threads int) {
	cfg := a.cfg
	m := a.sys.Memory()
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Zero accumulators (master phase, non-transactional).
		for c := 0; c < cfg.Clusters; c++ {
			for w := 0; w <= cfg.Dims; w++ {
				m.Store(a.block(c)+mem.Addr(w), 0)
			}
		}
		// Parallel assignment + transactional accumulation.
		var wg sync.WaitGroup
		chunk := (cfg.Points + threads - 1) / threads
		for t := 0; t < threads; t++ {
			lo, hi := t*chunk, (t+1)*chunk
			if hi > cfg.Points {
				hi = cfg.Points
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(id, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					p := a.points[i]
					c := a.nearest(p) // non-transactional compute
					a.lastAssign[i] = c
					base := a.block(c)
					// The accumulator update touches 1+Dims contiguous words —
					// a handful of lines for any realistic dimensionality —
					// but Dims is runtime configuration the static bound
					// cannot see (tmprof reconciliation covers the gap).
					// parthtm:bigtx — footprint is 1+Dims words, config-sized
					a.sys.Atomic(id, func(x tm.Tx) {
						x.Write(base, x.Read(base)+1)
						for d := 0; d < cfg.Dims; d++ {
							w := base + 1 + mem.Addr(d)
							x.Write(w, x.Read(w)+uint64(p[d]))
						}
					})
				}
			}(t, lo, hi)
		}
		wg.Wait()
		// Master: recompute centres from the accumulators.
		for c := 0; c < cfg.Clusters; c++ {
			n := m.Load(a.block(c))
			if n == 0 {
				continue
			}
			for d := 0; d < cfg.Dims; d++ {
				sum := int64(m.Load(a.block(c) + 1 + mem.Addr(d)))
				a.centers[c][d] = sum / int64(n)
			}
		}
	}
}

// Validate implements stamp.App: the final iteration's transactional
// accumulators must equal a sequential recomputation from the recorded
// assignments — any lost or doubled update breaks the equality.
func (a *App) Validate() error {
	cfg := a.cfg
	m := a.sys.Memory()
	counts := make([]uint64, cfg.Clusters)
	sums := make([][]uint64, cfg.Clusters)
	for c := range sums {
		sums[c] = make([]uint64, cfg.Dims)
	}
	for i, c := range a.lastAssign {
		counts[c]++
		for d := 0; d < cfg.Dims; d++ {
			sums[c][d] += uint64(a.points[i][d])
		}
	}
	var total uint64
	for c := 0; c < cfg.Clusters; c++ {
		got := m.Load(a.block(c))
		if got != counts[c] {
			return fmt.Errorf("kmeans: cluster %d count = %d, want %d", c, got, counts[c])
		}
		total += got
		for d := 0; d < cfg.Dims; d++ {
			gs := m.Load(a.block(c) + 1 + mem.Addr(d))
			if gs != sums[c][d] {
				return fmt.Errorf("kmeans: cluster %d dim %d sum = %d, want %d", c, d, gs, sums[c][d])
			}
		}
	}
	if total != uint64(cfg.Points) {
		return fmt.Errorf("kmeans: total count = %d, want %d", total, cfg.Points)
	}
	return nil
}
