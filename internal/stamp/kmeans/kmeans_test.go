package kmeans

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func TestSequentialRunValidates(t *testing.T) {
	cfg := Config{Points: 300, Dims: 4, Clusters: 8, Iterations: 3, Seed: 5}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorBlocksAreLineAligned(t *testing.T) {
	cfg := LowContention()
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	for c := 0; c < cfg.Clusters; c++ {
		if app.block(c)%mem.LineWords != 0 {
			t.Fatalf("cluster %d accumulator not line aligned", c)
		}
	}
}

func TestNearestIsDeterministic(t *testing.T) {
	cfg := Config{Points: 50, Dims: 3, Clusters: 4, Iterations: 1, Seed: 9}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	for i := 0; i < 10; i++ {
		p := app.points[i]
		c1 := app.nearest(p)
		c2 := app.nearest(p)
		if c1 != c2 {
			t.Fatalf("nearest not deterministic for point %d", i)
		}
		if c1 < 0 || c1 >= cfg.Clusters {
			t.Fatalf("nearest out of range: %d", c1)
		}
	}
}

func TestContentionConfigsDiffer(t *testing.T) {
	if LowContention().Clusters <= HighContention().Clusters {
		t.Fatal("low contention must use more clusters than high contention")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	cfg := Config{Points: 100, Dims: 2, Clusters: 4, Iterations: 1, Seed: 3}
	app := New(cfg)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	// Corrupt one accumulator count.
	sys.Memory().Store(app.block(0), sys.Memory().Load(app.block(0))+1)
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted a corrupted accumulator")
	}
}
