// Package yada re-implements the transaction shape of STAMP's yada
// (Yet Another Delaunay Application): mesh refinement where each
// transaction takes a "bad" element from a shared work queue, collects the
// retriangulation cavity around it (a neighbourhood read of a few dozen
// shared records), rewrites every record in the cavity, and may push a
// newly created bad element back onto the queue.
//
// Cavities of nearby elements overlap, so transactions are long AND
// genuinely conflicting — the workload of Figure 5(h), where every system
// struggles and Part-HTM degrades the least.
package yada

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Element record layout (one cache line):
// [quality, version, n0, n1, n2] — three neighbour links (index+1; 0 none).
const (
	offQuality = 0
	offVersion = 1
	offNbr     = 2
	numNbr     = 3
)

// Config describes a yada instance.
type Config struct {
	Elements    int
	InitialBad  int
	CavityDepth int // neighbourhood radius of a retriangulation
	RespawnPc   int // percent chance a refinement creates a new bad element
	// WorkPerElem is the geometric computation (cycles) per cavity element
	// — the circumcircle tests and re-triangulation arithmetic. It is what
	// makes yada's transactions long enough to exhaust the timer quantum,
	// the paper's Figure 5(h) profile.
	WorkPerElem int64
	Seed        int64
}

// Default is a scaled-down equivalent of STAMP yada on ttimeu10000.2:
// cavities of ~25-45 elements whose per-element work pushes a whole
// cavity past the hardware timer quantum, with heavy overlap between
// neighbouring cavities.
func Default() Config {
	return Config{Elements: 2048, InitialBad: 256, CavityDepth: 3,
		RespawnPc: 25, WorkPerElem: 6000, Seed: 61}
}

// App is a yada instance.
type App struct {
	cfg Config
	sys tm.System

	elems mem.Addr // Elements line-sized records
	// Shared work queue of bad element ids (fixed ring, head/tail words on
	// separate lines).
	queue mem.Addr
	qhead mem.Addr
	qtail mem.Addr
	qcap  uint64

	processed mem.Addr // refinement counter (own line)
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "yada" }

// queueCap bounds the total number of work items ever enqueued: every
// initial bad element spawns at most a geometric number of successors, and
// the ring never wraps past its capacity because slots are never reused.
func (c Config) queueCap() int { return c.Elements * 4 }

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	return a.cfg.Elements*mem.LineWords + a.cfg.queueCap() + 16*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	cfg := a.cfg
	m := sys.Memory()
	a.elems = m.AllocAligned(cfg.Elements * mem.LineWords)
	a.qcap = uint64(cfg.queueCap())
	a.queue = m.AllocAligned(int(a.qcap))
	a.qhead = m.AllocLines(1)
	a.qtail = m.AllocLines(1)
	a.processed = m.AllocLines(1)

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Mesh topology: a random 3-regular-ish neighbourhood graph with
	// locality (neighbours are nearby indices), so cavities overlap.
	for e := 0; e < cfg.Elements; e++ {
		rec := a.elem(e)
		m.Store(rec+offQuality, 1) // good
		for n := 0; n < numNbr; n++ {
			delta := rng.Intn(17) - 8
			nb := e + delta
			if nb < 0 || nb >= cfg.Elements || nb == e {
				m.Store(rec+offNbr+mem.Addr(n), 0)
			} else {
				m.Store(rec+offNbr+mem.Addr(n), uint64(nb)+1)
			}
		}
	}
	// Seed the queue with distinct bad elements.
	bad := rng.Perm(cfg.Elements)[:cfg.InitialBad]
	for i, e := range bad {
		m.Store(a.elem(e)+offQuality, 0) // bad
		m.Store(a.queue+mem.Addr(i), uint64(e)+1)
	}
	m.Store(a.qtail, uint64(len(bad)))
}

func (a *App) elem(e int) mem.Addr { return a.elems + mem.Addr(e*mem.LineWords) }

// Run implements stamp.App: threads refine until the queue drains.
func (a *App) Run(threads int) {
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for a.refineOne(id) {
			}
		}(t)
	}
	wg.Wait()
}

// refineOne pops one bad element and retriangulates its cavity. It returns
// false when the queue is empty.
func (a *App) refineOne(id int) bool {
	cfg := a.cfg
	var progress bool
	a.sys.Atomic(id, func(x tm.Tx) {
		progress = false
		h := x.Read(a.qhead)
		t := x.Read(a.qtail)
		if h >= t {
			return // drained
		}
		x.Write(a.qhead, h+1)
		e := int(x.Read(a.queue+mem.Addr(h%a.qcap))) - 1
		progress = true

		// Collect the cavity: BFS over neighbour links to CavityDepth,
		// paying the geometric tests per discovered element.
		cavity := []int{e}
		seen := map[int]bool{e: true}
		frontier := []int{e}
		for d := 0; d < cfg.CavityDepth; d++ {
			var next []int
			for _, c := range frontier {
				rec := a.elem(c)
				for n := 0; n < numNbr; n++ {
					nb := int(x.Read(rec + offNbr + mem.Addr(n)))
					if nb == 0 {
						continue
					}
					nb--
					if !seen[nb] {
						seen[nb] = true
						x.Work(cfg.WorkPerElem)
						cavity = append(cavity, nb)
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		x.Pause()
		// Retriangulate: rewrite every cavity record.
		var respawn int = -1
		for i, c := range cavity {
			rec := a.elem(c)
			ver := x.Read(rec + offVersion)
			x.Write(rec+offVersion, ver+1)
			x.Write(rec+offQuality, 1)
			// Deterministic-respawn decision from transactional state.
			if respawn < 0 && cfg.RespawnPc > 0 &&
				int((ver+uint64(c))%100) < cfg.RespawnPc && i > 0 {
				respawn = c
			}
		}
		if respawn >= 0 {
			tl := x.Read(a.qtail)
			if tl < a.qcap {
				// Mark bad only if the work item fits the ring, so the
				// drained-queue invariant (no bad elements left) holds.
				x.Write(a.elem(respawn)+offQuality, 0)
				x.Write(a.queue+mem.Addr(tl%a.qcap), uint64(respawn)+1)
				x.Write(a.qtail, tl+1)
			}
		}
		x.Write(a.processed, x.Read(a.processed)+1)
	})
	return progress
}

// Validate implements stamp.App: the queue drained, every element is good,
// and the processed counter equals the number of enqueued items.
func (a *App) Validate() error {
	m := a.sys.Memory()
	h, t := m.Load(a.qhead), m.Load(a.qtail)
	if h != t {
		return fmt.Errorf("yada: queue not drained (head %d, tail %d)", h, t)
	}
	if got := m.Load(a.processed); got != h {
		return fmt.Errorf("yada: processed %d, dequeued %d", got, h)
	}
	for e := 0; e < a.cfg.Elements; e++ {
		if m.Load(a.elem(e)+offQuality) != 1 {
			return fmt.Errorf("yada: element %d still bad after drain", e)
		}
	}
	return nil
}
