package yada

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func small() Config {
	c := Default()
	c.Elements, c.InitialBad = 128, 16
	return c
}

func TestSequentialRunValidates(t *testing.T) {
	app := New(small())
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRespawnBoundedByQueueCap(t *testing.T) {
	c := small()
	c.RespawnPc = 90 // aggressive respawning still terminates
	app := New(c)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Memory().Load(app.qtail); got > app.qcap {
		t.Fatalf("tail %d exceeded capacity %d", got, app.qcap)
	}
}

func TestInitialQueueSeeded(t *testing.T) {
	c := small()
	app := New(c)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	m := sys.Memory()
	if got := m.Load(app.qtail); got != uint64(c.InitialBad) {
		t.Fatalf("tail = %d, want %d", got, c.InitialBad)
	}
	bad := 0
	for e := 0; e < c.Elements; e++ {
		if m.Load(app.elem(e)+offQuality) == 0 {
			bad++
		}
	}
	if bad != c.InitialBad {
		t.Fatalf("bad elements = %d, want %d", bad, c.InitialBad)
	}
}

func TestValidateDetectsLeftoverBad(t *testing.T) {
	app := New(small())
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	sys.Memory().Store(app.elem(3)+offQuality, 0)
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted a leftover bad element")
	}
}
