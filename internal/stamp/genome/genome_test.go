package genome

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func small() Config {
	return Config{Gene: 64, Segments: 512, HashSlots: 256, Seed: 11}
}

func TestSequentialRunValidates(t *testing.T) {
	app := New(small())
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeduplication(t *testing.T) {
	app := New(small())
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	distinct := map[uint64]bool{}
	for _, v := range app.reads {
		distinct[v] = true
	}
	if got := app.unique.Load(); got != uint64(len(distinct)) {
		t.Fatalf("unique = %d, want %d", got, len(distinct))
	}
}

func TestLinksFollowSuccessors(t *testing.T) {
	app := New(small())
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	if app.linked.Load() == 0 {
		t.Fatal("no overlap links claimed")
	}
	// Validate() checks every link's target value; rely on it plus spot
	// checks through memory here.
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupRejectsBadHashConfig(t *testing.T) {
	for _, slots := range []int{100, 32} { // not power of two; not > Gene
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HashSlots=%d accepted", slots)
				}
			}()
			app := New(Config{Gene: 64, Segments: 10, HashSlots: slots, Seed: 1})
			app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
		}()
	}
}

func TestValidateDetectsDuplicateEntry(t *testing.T) {
	app := New(small())
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	// Forge a duplicate value into an empty slot.
	m := sys.Memory()
	var existing uint64
	for s := 0; s < app.cfg.HashSlots; s++ {
		if v := m.Load(app.table + mem.Addr(s)); v != 0 {
			existing = v
			break
		}
	}
	for s := 0; s < app.cfg.HashSlots; s++ {
		if m.Load(app.table+mem.Addr(s)) == 0 {
			m.Store(app.table+mem.Addr(s), existing)
			break
		}
	}
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted a duplicate entry")
	}
}
