// Package genome re-implements STAMP's genome: gene sequencing by segment
// deduplication and overlap matching. Phase 1 inserts every (duplicated)
// segment into a shared open-addressing hash set transactionally; phase 2
// links each unique segment to its overlap successor, claiming links
// transactionally. Transactions are short-to-medium with low contention —
// the Figure 5(i) shape.
package genome

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes a genome instance.
type Config struct {
	// Gene is the number of distinct segments in the underlying genome.
	Gene int
	// Segments is the number of (duplicated) reads sampled from the gene.
	Segments int
	// HashSlots is the open-addressing table size (power of two, > Gene).
	HashSlots int
	Seed      int64
}

// Default is a scaled-down equivalent of STAMP genome -g256 -s16 -n16384.
func Default() Config {
	return Config{Gene: 1024, Segments: 8192, HashSlots: 4096, Seed: 71}
}

// App is a genome instance.
type App struct {
	cfg Config
	sys tm.System

	reads []uint64 // sampled segment values (with duplicates)

	table mem.Addr // HashSlots words: 0 empty, else segment value
	links mem.Addr // HashSlots words: successor claims, parallel to table

	unique atomic.Uint64
	linked atomic.Uint64
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "genome" }

// MemWords implements stamp.App.
func (a *App) MemWords() int { return 2*a.cfg.HashSlots + 8*mem.LineWords }

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	cfg := a.cfg
	if cfg.HashSlots&(cfg.HashSlots-1) != 0 || cfg.HashSlots <= cfg.Gene {
		panic("genome: HashSlots must be a power of two larger than Gene")
	}
	m := sys.Memory()
	a.table = m.AllocAligned(cfg.HashSlots)
	a.links = m.AllocAligned(cfg.HashSlots)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Segment values are encoded so that value v's overlap successor is
	// v+1 (the "next segment of the gene"): values 1..Gene.
	a.reads = make([]uint64, cfg.Segments)
	for i := range a.reads {
		a.reads[i] = uint64(rng.Intn(cfg.Gene)) + 1
	}
}

func hashOf(v uint64, mask int) int {
	return int((v * 0x9E3779B97F4A7C15 >> 33)) & mask
}

// insert adds v to the hash set (one transaction); reports whether v was
// new.
func (a *App) insert(id int, v uint64) bool {
	mask := a.cfg.HashSlots - 1
	var isNew bool
	a.sys.Atomic(id, func(x tm.Tx) {
		isNew = false
		h := hashOf(v, mask)
		for probe := 0; probe < a.cfg.HashSlots; probe++ {
			slot := a.table + mem.Addr((h+probe)&mask)
			cur := x.Read(slot)
			if cur == v {
				return // duplicate
			}
			if cur == 0 {
				x.Write(slot, v)
				isNew = true
				return
			}
			if probe%32 == 31 {
				x.Pause()
			}
		}
		panic("genome: hash table full")
	})
	return isNew
}

// lookup finds v's slot index, or -1 (one transaction).
func (a *App) lookup(id int, v uint64) int {
	mask := a.cfg.HashSlots - 1
	found := -1
	// The probe loop is bounded only by the runtime table size, but chains
	// terminate at the first empty slot, so the dynamic read set tracks the
	// load factor (tmprof reconciliation covers the gap); a pathological
	// full-table probe belongs on the fallback paths.
	// parthtm:bigtx — read set is load-factor-sized at runtime
	a.sys.Atomic(id, func(x tm.Tx) {
		found = -1
		h := hashOf(v, mask)
		for probe := 0; probe < a.cfg.HashSlots; probe++ {
			idx := (h + probe) & mask
			cur := x.Read(a.table + mem.Addr(idx))
			if cur == v {
				found = idx
				return
			}
			if cur == 0 {
				return
			}
		}
	})
	return found
}

// Run implements stamp.App.
func (a *App) Run(threads int) {
	// Phase 1: deduplicate all reads into the hash set.
	var wg sync.WaitGroup
	chunk := (len(a.reads) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(a.reads) {
			hi = len(a.reads)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if a.insert(id, a.reads[i]) {
					a.unique.Add(1)
				}
			}
		}(t, lo, hi)
	}
	wg.Wait()

	// Phase 2: for every table slot holding v, claim the link to v+1 if
	// v+1 exists in the set (overlap matching).
	slotChunk := (a.cfg.HashSlots + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*slotChunk, (t+1)*slotChunk
		if hi > a.cfg.HashSlots {
			hi = a.cfg.HashSlots
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			m := a.sys.Memory()
			for s := lo; s < hi; s++ {
				v := m.Load(a.table + mem.Addr(s)) // phase-1 output is stable now
				if v == 0 {
					continue
				}
				succ := a.lookup(id, v+1)
				if succ < 0 {
					continue
				}
				claimed := false
				slot := a.links + mem.Addr(s)
				a.sys.Atomic(id, func(x tm.Tx) {
					claimed = false
					if x.Read(slot) == 0 {
						x.Write(slot, uint64(succ)+1)
						claimed = true
					}
				})
				if claimed {
					a.linked.Add(1)
				}
			}
		}(t, lo, hi)
	}
	wg.Wait()
}

// Validate implements stamp.App: the set contains each distinct read
// exactly once; every link points from v's slot to (v+1)'s slot.
func (a *App) Validate() error {
	m := a.sys.Memory()
	distinct := make(map[uint64]bool)
	for _, v := range a.reads {
		distinct[v] = true
	}
	inTable := make(map[uint64]int)
	for s := 0; s < a.cfg.HashSlots; s++ {
		if v := m.Load(a.table + mem.Addr(s)); v != 0 {
			if _, dup := inTable[v]; dup {
				return fmt.Errorf("genome: value %d stored twice", v)
			}
			inTable[v] = s
		}
	}
	if len(inTable) != len(distinct) {
		return fmt.Errorf("genome: table holds %d values, want %d", len(inTable), len(distinct))
	}
	if a.unique.Load() != uint64(len(distinct)) {
		return fmt.Errorf("genome: unique count %d, want %d", a.unique.Load(), len(distinct))
	}
	for v := range distinct {
		if _, ok := inTable[v]; !ok {
			return fmt.Errorf("genome: value %d missing from table", v)
		}
	}
	var links uint64
	for s := 0; s < a.cfg.HashSlots; s++ {
		l := m.Load(a.links + mem.Addr(s))
		if l == 0 {
			continue
		}
		links++
		v := m.Load(a.table + mem.Addr(s))
		succSlot := int(l) - 1
		succV := m.Load(a.table + mem.Addr(succSlot))
		if succV != v+1 {
			return fmt.Errorf("genome: slot %d (value %d) linked to value %d", s, v, succV)
		}
	}
	if links != a.linked.Load() {
		return fmt.Errorf("genome: %d links in memory, %d claimed", links, a.linked.Load())
	}
	return nil
}
