package intruder

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func TestSequentialRunValidates(t *testing.T) {
	cfg := Config{Flows: 32, FragsPerFlow: 4, DetectWork: 10, Seed: 1}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := app.detected.Load(); got != 32 {
		t.Fatalf("detected = %d", got)
	}
}

func TestFragmentsShuffledButComplete(t *testing.T) {
	cfg := Config{Flows: 16, FragsPerFlow: 4, Seed: 7}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	if len(app.frags) != 64 {
		t.Fatalf("fragments = %d", len(app.frags))
	}
	counts := map[int]int{}
	shuffled := false
	for i, f := range app.frags {
		counts[f.flow]++
		if f.flow != i/4 || f.seq != i%4 {
			shuffled = true
		}
	}
	if !shuffled {
		t.Fatal("fragment order not shuffled")
	}
	for f, n := range counts {
		if n != 4 {
			t.Fatalf("flow %d has %d fragments", f, n)
		}
	}
}

func TestValidateDetectsMissingFragment(t *testing.T) {
	cfg := Config{Flows: 8, FragsPerFlow: 4, Seed: 3}
	app := New(cfg)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	sys.Memory().Store(app.flow(2)+2, 0) // clear a fragment slot
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted a missing fragment")
	}
}
