// Package intruder re-implements STAMP's intruder: network packet
// reassembly and signature detection. Threads pull packet fragments off a
// single shared queue and insert them into per-flow reassembly slots, both
// transactionally; completed flows are scanned (detection) outside the
// transaction. The shared queue head makes transactions short but
// genuinely conflicting — the shape of Figure 5(e), where HTM handles the
// conflicts best and Part-HTM follows closely.
package intruder

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes an intruder instance.
type Config struct {
	Flows        int
	FragsPerFlow int
	DetectWork   int64 // non-transactional detection cost per completed flow
	Seed         int64
}

// Default is comparable (scaled) to STAMP intruder -a10 -l16 -n2038.
func Default() Config {
	return Config{Flows: 512, FragsPerFlow: 8, DetectWork: 400, Seed: 41}
}

// Fragment is one unit of input.
type fragment struct {
	flow int
	seq  int
}

// App is an intruder instance.
type App struct {
	cfg Config
	sys tm.System

	frags []fragment // shuffled input

	head mem.Addr // shared queue head index (the hot word)
	// Per flow, a line-aligned block: [received, done, frag_0 ...].
	flows     mem.Addr
	blockSize int

	detected atomic.Uint64
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "intruder" }

func (c Config) blockSize() int {
	return (c.FragsPerFlow + 2 + mem.LineWords - 1) / mem.LineWords * mem.LineWords
}

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	return a.cfg.Flows*a.cfg.blockSize() + 8*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	a.blockSize = a.cfg.blockSize()
	a.head = sys.Memory().AllocLines(1)
	a.flows = sys.Memory().AllocAligned(a.cfg.Flows * a.blockSize)
	a.frags = make([]fragment, 0, a.cfg.Flows*a.cfg.FragsPerFlow)
	for f := 0; f < a.cfg.Flows; f++ {
		for s := 0; s < a.cfg.FragsPerFlow; s++ {
			a.frags = append(a.frags, fragment{flow: f, seq: s})
		}
	}
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	rng.Shuffle(len(a.frags), func(i, j int) {
		a.frags[i], a.frags[j] = a.frags[j], a.frags[i]
	})
}

func (a *App) flow(f int) mem.Addr { return a.flows + mem.Addr(f*a.blockSize) }

// Run implements stamp.App.
func (a *App) Run(threads int) {
	var wg sync.WaitGroup
	total := uint64(len(a.frags))
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				var have, completed bool
				a.sys.Atomic(id, func(x tm.Tx) {
					have, completed = false, false
					h := x.Read(a.head)
					if h >= total {
						return
					}
					x.Write(a.head, h+1)
					// Body-local fragment: captured variables must be
					// write-only result slots because the body may rerun on
					// abort (enforced by parthtm-vet).
					f := a.frags[h]
					have = true
					base := a.flow(f.flow)
					rcv := x.Read(base)
					x.Write(base+2+mem.Addr(f.seq), uint64(f.seq)+1)
					x.Write(base, rcv+1)
					if rcv+1 == uint64(a.cfg.FragsPerFlow) {
						x.Write(base+1, 1) // flow complete
						completed = true
					}
				})
				if !have {
					return
				}
				if completed {
					// Detection scan runs outside the transaction.
					tm.Spin(a.cfg.DetectWork)
					a.detected.Add(1)
				}
			}
		}(t)
	}
	wg.Wait()
}

// Validate implements stamp.App: every flow fully reassembled exactly
// once, every fragment slot filled, detection count equals flow count.
func (a *App) Validate() error {
	m := a.sys.Memory()
	if got := m.Load(a.head); got != uint64(len(a.frags)) {
		return fmt.Errorf("intruder: queue head = %d, want %d", got, len(a.frags))
	}
	for f := 0; f < a.cfg.Flows; f++ {
		base := a.flow(f)
		if got := m.Load(base); got != uint64(a.cfg.FragsPerFlow) {
			return fmt.Errorf("intruder: flow %d received %d fragments, want %d",
				f, got, a.cfg.FragsPerFlow)
		}
		if m.Load(base+1) != 1 {
			return fmt.Errorf("intruder: flow %d not marked complete", f)
		}
		for s := 0; s < a.cfg.FragsPerFlow; s++ {
			if got := m.Load(base + 2 + mem.Addr(s)); got != uint64(s)+1 {
				return fmt.Errorf("intruder: flow %d slot %d = %d", f, s, got)
			}
		}
	}
	if got := a.detected.Load(); got != uint64(a.cfg.Flows) {
		return fmt.Errorf("intruder: detected %d flows, want %d", got, a.cfg.Flows)
	}
	return nil
}
