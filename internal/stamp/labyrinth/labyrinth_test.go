package labyrinth

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func small() Config {
	c := Default()
	c.W, c.H, c.Pairs, c.LongDist, c.MaxThreads = 32, 32, 12, 16, 4
	return c
}

func TestSequentialRunValidates(t *testing.T) {
	app := New(small())
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.Routed() == 0 {
		t.Fatal("no routes placed")
	}
}

func TestRoutedPlusFailedEqualsPairs(t *testing.T) {
	cfg := small()
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if app.Routed()+int(app.Failed()) != cfg.Pairs {
		t.Fatalf("routed %d + failed %d != %d", app.Routed(), app.Failed(), cfg.Pairs)
	}
}

func TestPathsDoNotOverlap(t *testing.T) {
	cfg := small()
	app := New(cfg)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	// Every grid cell holds at most one path id by construction; recount
	// the ids and ensure each routed pair's endpoints carry its own id.
	m := sys.Memory()
	app.routed.Range(func(k, v any) bool {
		id := uint64(k.(int))
		p := v.(pair)
		if m.Load(app.grid+mem.Addr(app.cell(p.sx, p.sy))) != id {
			t.Errorf("path %d source cell overwritten", id)
		}
		if m.Load(app.grid+mem.Addr(app.cell(p.dx, p.dy))) != id {
			t.Errorf("path %d destination cell overwritten", id)
		}
		return true
	})
}

func TestValidateDetectsDisconnectedPath(t *testing.T) {
	cfg := small()
	app := New(cfg)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	// Break one routed path in the middle.
	var victim uint64
	app.routed.Range(func(k, _ any) bool {
		victim = uint64(k.(int))
		return false
	})
	m := sys.Memory()
	broke := false
	for c := 0; c < cfg.W*cfg.H && !broke; c++ {
		a := app.grid + mem.Addr(c)
		if m.Load(a) == victim {
			p, _ := app.routed.Load(int(victim))
			pp := p.(pair)
			if c != app.cell(pp.sx, pp.sy) && c != app.cell(pp.dx, pp.dy) {
				m.Store(a, 0)
				broke = true
			}
		}
	}
	if !broke {
		t.Skip("victim path has no interior cell")
	}
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted a broken path")
	}
}

func TestHeavyFractionAssigned(t *testing.T) {
	cfg := Default()
	cfg.HeavyFrac = 100
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	for _, p := range app.pairs {
		if !p.heavy {
			t.Fatal("HeavyFrac=100 left a light pair")
		}
	}
}
