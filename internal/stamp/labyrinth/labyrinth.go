// Package labyrinth re-implements STAMP's labyrinth: Lee-style maze
// routing on a shared grid. Each routing request is one transaction that
// flood-fills from source toward destination — reading a large region of
// the shared grid and, exactly like STAMP's private-grid-copy, writing a
// wavefront value per visited cell to a per-thread scratch region inside
// the transaction — then writes the chosen path back to the shared grid.
//
// Long routes therefore produce transactions whose write footprint (the
// scratch wavefront) exceeds the L1 write budget and whose expansion work
// exceeds the timer quantum: the resource-failure profile of Table 1
// (>90% capacity+other aborts under HTM-GL) and Figure 5(d). True
// conflicts — two routes crossing — are rare on a large grid.
package labyrinth

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes a labyrinth instance.
type Config struct {
	W, H      int
	Pairs     int // routing requests
	ShortFrac int // percent of requests with short Manhattan distance
	ShortDist int // max distance of a short request
	LongDist  int // max distance of a long request (min = ShortDist+1)
	Margin    int // bounding-box margin around (src,dst) for expansion
	WorkPer   int64
	// HeavyFrac is the percent of requests routed through "difficult
	// terrain": their per-cell work is 24 times WorkPer, so they exhaust
	// the timer quantum before the write budget (the "other" aborts of
	// Table 1).
	HeavyFrac  int
	PauseEvery int // visited cells per sub-transaction
	MaxThreads int // sizes the per-thread scratch regions
	Seed       int64
}

// Default returns the configuration used for Figure 5(d) and Table 1:
// about half of the routes exceed the hardware resource budget — the long
// ones flood a bounding box whose wavefront writes overflow the L1 write
// budget (capacity aborts), with the expansion work pushing the rest over
// the timer quantum (other aborts).
func Default() Config {
	return Config{
		W: 128, H: 128, Pairs: 96,
		ShortFrac: 35, ShortDist: 8, LongDist: 70,
		Margin: 20, WorkPer: 12, HeavyFrac: 25, PauseEvery: 256,
		MaxThreads: 16, Seed: 31,
	}
}

type pair struct {
	sx, sy, dx, dy int
	heavy          bool
}

// App is a labyrinth instance.
type App struct {
	cfg Config
	sys tm.System

	grid    mem.Addr // W*H words: 0 free, else path id
	scratch mem.Addr // MaxThreads regions of W*H words
	pairs   []pair

	nextPair atomic.Int64
	failed   atomic.Uint64
	routed   sync.Map // path id -> pair

	// per-thread reusable visited/parent buffers with generation tags
	visitGen []int32
	visit    [][]int32 // cell -> generation when visited
	parent   [][]int32 // cell -> predecessor cell + 1
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "labyrinth" }

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	cells := a.cfg.W * a.cfg.H
	return (1+a.cfg.MaxThreads)*cells + 8*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	cfg := a.cfg
	cells := cfg.W * cfg.H
	a.grid = sys.Memory().AllocAligned(cells)
	a.scratch = sys.Memory().AllocAligned(cfg.MaxThreads * cells)
	rng := rand.New(rand.NewSource(cfg.Seed))
	a.pairs = make([]pair, cfg.Pairs)
	for i := range a.pairs {
		maxD := cfg.LongDist
		if rng.Intn(100) < cfg.ShortFrac {
			maxD = cfg.ShortDist
		}
		for {
			sx, sy := rng.Intn(cfg.W), rng.Intn(cfg.H)
			d := 1 + rng.Intn(maxD)
			ang := rng.Intn(4)
			dx, dy := sx, sy
			switch ang {
			case 0:
				dx = sx + d
			case 1:
				dx = sx - d
			case 2:
				dy = sy + d
			case 3:
				dy = sy - d
			}
			// Bend the route target to 2D.
			dy += rng.Intn(d+1) - d/2
			if dx >= 0 && dx < cfg.W && dy >= 0 && dy < cfg.H && (dx != sx || dy != sy) {
				a.pairs[i] = pair{sx: sx, sy: sy, dx: dx, dy: dy,
					heavy: rng.Intn(100) < cfg.HeavyFrac}
				break
			}
		}
	}
	a.visitGen = make([]int32, cfg.MaxThreads)
	a.visit = make([][]int32, cfg.MaxThreads)
	a.parent = make([][]int32, cfg.MaxThreads)
	for t := range a.visit {
		a.visit[t] = make([]int32, cells)
		a.parent[t] = make([]int32, cells)
	}
}

func (a *App) cell(x, y int) int { return y*a.cfg.W + x }

// Run implements stamp.App: threads pull routing requests from a shared
// work list until it is drained.
func (a *App) Run(threads int) {
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				i := int(a.nextPair.Add(1)) - 1
				if i >= len(a.pairs) {
					return
				}
				if a.route(id, i) {
					a.routed.Store(i+1, a.pairs[i])
				} else {
					a.failed.Add(1)
				}
			}
		}(t)
	}
	wg.Wait()
}

// route runs one routing transaction; the path id is the request index+1.
func (a *App) route(id, idx int) bool {
	cfg := a.cfg
	p := a.pairs[idx]
	pathID := uint64(idx + 1)
	src := a.cell(p.sx, p.sy)
	dst := a.cell(p.dx, p.dy)
	// Expansion bounding box.
	x0, x1 := minInt(p.sx, p.dx)-cfg.Margin, maxInt(p.sx, p.dx)+cfg.Margin
	y0, y1 := minInt(p.sy, p.dy)-cfg.Margin, maxInt(p.sy, p.dy)+cfg.Margin
	x0, y0 = maxInt(x0, 0), maxInt(y0, 0)
	x1, y1 = minInt(x1, cfg.W-1), minInt(y1, cfg.H-1)

	workPer := cfg.WorkPer
	if p.heavy {
		workPer *= 40
	}
	visit := a.visit[id]
	parent := a.parent[id]
	scratch := a.scratch + mem.Addr(id*cfg.W*cfg.H)
	ok := false

	a.sys.Atomic(id, func(x tm.Tx) {
		ok = false
		// Fresh generation for this body execution; the tag only
		// distinguishes executions of the Go-local buffers and never
		// influences which transactional operations run.
		a.visitGen[id]++
		gen := a.visitGen[id]

		if x.Read(a.grid+mem.Addr(src)) != 0 || x.Read(a.grid+mem.Addr(dst)) != 0 {
			return // endpoint already taken: unroutable
		}
		queue := make([]int32, 0, 256)
		queue = append(queue, int32(src))
		visit[src] = gen
		parent[src] = 0
		found := false
		steps := 0
		for qi := 0; qi < len(queue) && !found; qi++ {
			c := int(queue[qi])
			cx, cy := c%cfg.W, c/cfg.W
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < x0 || nx > x1 || ny < y0 || ny > y1 {
					continue
				}
				n := a.cell(nx, ny)
				if visit[n] == gen {
					continue
				}
				visit[n] = gen
				parent[n] = int32(c) + 1
				v := x.Read(a.grid + mem.Addr(n)) // shared grid read
				x.Work(workPer)                   // expansion computation
				steps++
				if cfg.PauseEvery > 0 && steps%cfg.PauseEvery == 0 {
					x.Pause()
				}
				if n == dst {
					found = true
					break
				}
				if v == 0 {
					// Wavefront write to the private copy (scratch): this
					// is the write footprint that breaks the L1 budget on
					// long routes, as in STAMP.
					x.WriteLocal(scratch+mem.Addr(n), uint64(qi)+1)
					queue = append(queue, int32(n))
				}
			}
		}
		if !found {
			return
		}
		// Write the path back to the shared grid.
		x.Pause()
		for c := dst; ; {
			x.Write(a.grid+mem.Addr(c), pathID)
			pc := parent[c]
			if pc == 0 {
				break
			}
			c = int(pc) - 1
		}
		ok = true
	})
	return ok
}

// Failed returns the number of unroutable requests.
func (a *App) Failed() uint64 { return a.failed.Load() }

// Routed returns the number of successfully routed requests.
func (a *App) Routed() int {
	n := 0
	a.routed.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Validate implements stamp.App: every routed path's cells must form a
// connected region containing both endpoints, and no cell may carry an id
// that was never routed.
func (a *App) Validate() error {
	cfg := a.cfg
	m := a.sys.Memory()
	if uint64(a.Routed())+a.failed.Load() != uint64(len(a.pairs)) {
		return fmt.Errorf("labyrinth: routed %d + failed %d != %d pairs",
			a.Routed(), a.failed.Load(), len(a.pairs))
	}
	cellsByID := make(map[uint64][]int)
	for c := 0; c < cfg.W*cfg.H; c++ {
		if v := m.Load(a.grid + mem.Addr(c)); v != 0 {
			cellsByID[v] = append(cellsByID[v], c)
		}
	}
	for idv, cells := range cellsByID {
		pv, okr := a.routed.Load(int(idv))
		if !okr {
			return fmt.Errorf("labyrinth: grid carries unrouted id %d", idv)
		}
		p := pv.(pair)
		src, dst := a.cell(p.sx, p.sy), a.cell(p.dx, p.dy)
		set := make(map[int]bool, len(cells))
		for _, c := range cells {
			set[c] = true
		}
		if !set[src] || !set[dst] {
			return fmt.Errorf("labyrinth: path %d missing an endpoint", idv)
		}
		// Connectivity of the path cells.
		seen := map[int]bool{src: true}
		stack := []int{src}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := c%cfg.W, c/cfg.W
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= cfg.W || ny < 0 || ny >= cfg.H {
					continue
				}
				n := a.cell(nx, ny)
				if set[n] && !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		if !seen[dst] {
			return fmt.Errorf("labyrinth: path %d is disconnected", idv)
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
