package ssca2

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/seq"
)

func TestSequentialRunValidates(t *testing.T) {
	cfg := Config{Nodes: 128, Edges: 512, MaxDegree: 32, Seed: 2}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.dropped.Load() != 0 {
		t.Fatalf("dropped %d edges with a generous degree cap", app.dropped.Load())
	}
}

func TestDegreeCapDropsExcessEdges(t *testing.T) {
	// One node, many edges: everything beyond MaxDegree must be dropped
	// and accounted for.
	cfg := Config{Nodes: 1, Edges: 20, MaxDegree: 4, Seed: 2}
	app := New(cfg)
	app.Setup(seq.New(mem.New(app.MemWords() + 1<<12)))
	app.Run(1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := app.dropped.Load(); got != 16 {
		t.Fatalf("dropped = %d, want 16", got)
	}
}

func TestValidateDetectsOverflow(t *testing.T) {
	cfg := Config{Nodes: 16, Edges: 32, MaxDegree: 8, Seed: 2}
	app := New(cfg)
	sys := seq.New(mem.New(app.MemWords() + 1<<12))
	app.Setup(sys)
	app.Run(1)
	sys.Memory().Store(app.node(0), uint64(cfg.MaxDegree)+1)
	if err := app.Validate(); err == nil {
		t.Fatal("Validate accepted an over-cap degree")
	}
}
