// Package ssca2 re-implements the kernel of STAMP's SSCA2 benchmark:
// parallel graph construction, where each edge insertion appends to the
// endpoint's adjacency array inside a tiny transaction. Transactions are
// very short and contend only when two edges hit the same vertex —
// the low-contention, HTM-friendly shape of Figure 5(c).
package ssca2

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Config describes an SSCA2 instance.
type Config struct {
	Nodes     int
	Edges     int
	MaxDegree int // adjacency capacity per node
	Seed      int64
}

// Default returns a configuration comparable (scaled down) to STAMP's
// ssca2 -s13.
func Default() Config {
	return Config{Nodes: 4096, Edges: 16384, MaxDegree: 64, Seed: 21}
}

// App is an SSCA2 instance.
type App struct {
	cfg Config
	sys tm.System

	edges [][2]int // pre-generated edge list (immutable input)

	// Per node, a line-aligned block: [degree, slot_0 .. slot_{MaxDegree-1}].
	adj       mem.Addr
	blockSize int

	dropped atomic.Uint64 // edges skipped because a node hit MaxDegree
}

// New creates the app.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements stamp.App.
func (a *App) Name() string { return "ssca2" }

func (c Config) blockSize() int {
	return (c.MaxDegree + 1 + mem.LineWords - 1) / mem.LineWords * mem.LineWords
}

// MemWords implements stamp.App.
func (a *App) MemWords() int {
	return a.cfg.Nodes*a.cfg.blockSize() + 4*mem.LineWords
}

// Setup implements stamp.App.
func (a *App) Setup(sys tm.System) {
	a.sys = sys
	a.blockSize = a.cfg.blockSize()
	a.adj = sys.Memory().AllocAligned(a.cfg.Nodes * a.blockSize)
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	a.edges = make([][2]int, a.cfg.Edges)
	for i := range a.edges {
		u := rng.Intn(a.cfg.Nodes)
		v := rng.Intn(a.cfg.Nodes)
		a.edges[i] = [2]int{u, v}
	}
}

func (a *App) node(u int) mem.Addr { return a.adj + mem.Addr(u*a.blockSize) }

// Run implements stamp.App: threads insert disjoint chunks of the edge
// list; each insertion is one transaction on the target node's block.
func (a *App) Run(threads int) {
	var wg sync.WaitGroup
	chunk := (len(a.edges) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(a.edges) {
			hi = len(a.edges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			maxDeg := uint64(a.cfg.MaxDegree)
			for i := lo; i < hi; i++ {
				u, v := a.edges[i][0], a.edges[i][1]
				base := a.node(u)
				full := false
				a.sys.Atomic(id, func(x tm.Tx) {
					full = false
					deg := x.Read(base)
					if deg >= maxDeg {
						full = true
						return
					}
					x.Write(base+1+mem.Addr(deg), uint64(v)+1)
					x.Write(base, deg+1)
				})
				if full {
					a.dropped.Add(1)
				}
			}
		}(t, lo, hi)
	}
	wg.Wait()
}

// Validate implements stamp.App: every inserted slot is populated, degrees
// are within bounds, and inserted+dropped equals the input edge count.
func (a *App) Validate() error {
	m := a.sys.Memory()
	var total uint64
	for u := 0; u < a.cfg.Nodes; u++ {
		deg := m.Load(a.node(u))
		if deg > uint64(a.cfg.MaxDegree) {
			return fmt.Errorf("ssca2: node %d degree %d exceeds cap", u, deg)
		}
		for s := uint64(0); s < deg; s++ {
			if m.Load(a.node(u)+1+mem.Addr(s)) == 0 {
				return fmt.Errorf("ssca2: node %d slot %d empty below degree", u, s)
			}
		}
		total += deg
	}
	if want := uint64(a.cfg.Edges) - a.dropped.Load(); total != want {
		return fmt.Errorf("ssca2: total degree %d, want %d (%d dropped)", total, want, a.dropped.Load())
	}
	return nil
}
