package stamp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/norec"
	"repro/internal/norecrh"
	"repro/internal/ringstm"
	"repro/internal/seq"
	"repro/internal/stamp"
	"repro/internal/stamp/genome"
	"repro/internal/stamp/intruder"
	"repro/internal/stamp/kmeans"
	"repro/internal/stamp/labyrinth"
	"repro/internal/stamp/ssca2"
	"repro/internal/stamp/vacation"
	"repro/internal/stamp/yada"
	"repro/internal/tm"
)

// sysFactory builds a system over a memory of at least words words.
type sysFactory struct {
	name string
	make func(words, threads int) tm.System
}

func engine(words int) *htm.Engine {
	cfg := htm.DefaultConfig()
	cfg.ReadEvictProb = 0 // deterministic tests
	return htm.New(mem.New(words), cfg)
}

func factories() []sysFactory {
	return []sysFactory{
		{"Part-HTM", func(w, n int) tm.System {
			return core.New(engine(w), n, core.DefaultConfig())
		}},
		{"Part-HTM-O", func(w, n int) tm.System {
			cfg := core.DefaultConfig()
			cfg.Opaque = true
			return core.New(engine(2*w+1<<18), n, cfg)
		}},
		{"HTM-GL", func(w, n int) tm.System {
			return htmgl.New(engine(w), htmgl.DefaultConfig())
		}},
		{"NOrec", func(w, n int) tm.System { return norec.New(mem.New(w), n) }},
		{"RingSTM", func(w, n int) tm.System { return ringstm.New(mem.New(w), n, 1024) }},
		{"NOrecRH", func(w, n int) tm.System {
			return norecrh.New(engine(w), n, norecrh.DefaultConfig())
		}},
	}
}

// apps returns small test-sized instances of every STAMP application.
func apps() map[string]func() stamp.App {
	return map[string]func() stamp.App{
		"kmeans-low": func() stamp.App {
			c := kmeans.LowContention()
			c.Points, c.Iterations = 400, 3
			return kmeans.New(c)
		},
		"kmeans-high": func() stamp.App {
			c := kmeans.HighContention()
			c.Points, c.Iterations = 400, 3
			return kmeans.New(c)
		},
		"ssca2": func() stamp.App {
			c := ssca2.Default()
			c.Nodes, c.Edges = 512, 2048
			return ssca2.New(c)
		},
		"labyrinth": func() stamp.App {
			c := labyrinth.Default()
			c.W, c.H, c.Pairs, c.LongDist = 48, 48, 16, 24
			return labyrinth.New(c)
		},
		"intruder": func() stamp.App {
			c := intruder.Default()
			c.Flows = 96
			return intruder.New(c)
		},
		"vacation-low": func() stamp.App {
			c := vacation.LowContention()
			c.Relations, c.Tasks, c.Customers = 512, 400, 128
			return vacation.New(c)
		},
		"vacation-high": func() stamp.App {
			c := vacation.HighContention()
			c.Relations, c.Tasks, c.Customers = 512, 400, 128
			return vacation.New(c)
		},
		"yada": func() stamp.App {
			c := yada.Default()
			c.Elements, c.InitialBad = 512, 64
			return yada.New(c)
		},
		"genome": func() stamp.App {
			c := genome.Default()
			c.Gene, c.Segments, c.HashSlots = 256, 2048, 1024
			return genome.New(c)
		},
	}
}

// TestSequentialBaseline: every app must run and validate on the
// sequential executor — the ground truth for the speed-up figures.
func TestSequentialBaseline(t *testing.T) {
	for name, mk := range apps() {
		t.Run(name, func(t *testing.T) {
			app := mk()
			sys := seq.New(mem.New(app.MemWords() + 1<<14))
			app.Setup(sys)
			app.Run(1)
			if err := app.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllAppsAllSystems: every app validates on every transactional system
// at 4 threads.
func TestAllAppsAllSystems(t *testing.T) {
	for appName, mk := range apps() {
		for _, f := range factories() {
			t.Run(appName+"/"+f.name, func(t *testing.T) {
				t.Parallel()
				app := mk()
				sys := f.make(app.MemWords()+1<<18, 4)
				app.Setup(sys)
				app.Run(4)
				if err := app.Validate(); err != nil {
					t.Fatal(err)
				}
				if sys.Stats().Commits() == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestLabyrinthResourceProfile checks the Table 1 precondition: under
// HTM-GL a majority of labyrinth's aborts are resource (capacity/other)
// aborts, and a substantial share of commits go through the global lock;
// under Part-HTM the partitioned path absorbs them.
func TestLabyrinthResourceProfile(t *testing.T) {
	mkApp := func() stamp.App {
		c := labyrinth.Default()
		return labyrinth.New(c)
	}

	app := mkApp()
	gl := htmgl.New(engine(app.MemWords()+1<<18), htmgl.DefaultConfig())
	app.Setup(gl)
	app.Run(4)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	glEng := gl.Engine().Stats()
	resource := glEng.AbortsCapacity.Load() + glEng.AbortsOther.Load()
	total := glEng.Aborts()
	if total == 0 || resource*2 < total {
		t.Fatalf("HTM-GL labyrinth: resource aborts %d of %d — expected a resource-dominated profile", resource, total)
	}
	glStats := gl.Stats().Snapshot()
	if glStats.CommitsGL == 0 {
		t.Fatalf("HTM-GL labyrinth: no global-lock commits: %+v", glStats)
	}

	app2 := mkApp()
	ph := core.New(engine(app2.MemWords()+1<<18), 4, core.DefaultConfig())
	app2.Setup(ph)
	app2.Run(4)
	if err := app2.Validate(); err != nil {
		t.Fatal(err)
	}
	phStats := ph.Stats().Snapshot()
	if phStats.CommitsSW == 0 {
		t.Fatalf("Part-HTM labyrinth: partitioned path unused: %+v", phStats)
	}
	if phStats.CommitsGL > phStats.Commits()/10 {
		t.Fatalf("Part-HTM labyrinth: too many global-lock commits: %+v", phStats)
	}
}
