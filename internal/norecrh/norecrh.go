// Package norecrh implements Reduced Hardware NOrec (Matveev & Shavit),
// the HybridTM baseline of the paper's evaluation.
//
// NOrecRH first tries the whole transaction in hardware (5 attempts,
// subscribing to NOrec's sequence lock so hardware and software
// transactions stay mutually consistent). Transactions that fail in
// hardware run the NOrec software protocol, but their commit — validation
// against the sequence number plus the write-back — executes as one small
// ("reduced") hardware transaction, eliding the sequence lock. If even the
// reduced transaction cannot commit in hardware (e.g. the write-back
// exceeds capacity), the commit falls back to NOrec's original CAS-locked
// write-back.
//
// NOrecRH inherits NOrec's single global sequence lock and is likewise
// domain-oblivious: every address takes domain-0 semantics (the
// single-domain topology of internal/domain); sharded memory domains are a
// Part-HTM (internal/core) mechanism.
package norecrh

import (
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

const codeSeqLocked uint8 = 1
const codeSeqMoved uint8 = 2

type retryPanic struct{}

// Config tunes NOrecRH.
type Config struct {
	// HWRetries is the number of full-hardware attempts before switching
	// to the software path (5 in the paper's evaluation).
	HWRetries int
}

// DefaultConfig matches the paper's evaluation.
func DefaultConfig() Config { return Config{HWRetries: 5} }

// System is a NOrecRH instance.
type System struct {
	m       *mem.Memory
	eng     *htm.Engine
	seq     mem.Addr
	cfg     Config
	threads []*thread
	stats   tm.Stats
	run     *exec.Runner
}

type readRec struct {
	addr mem.Addr
	val  uint64
}

type thread struct {
	id        int
	ts        uint64
	readLog   []readRec
	redo      map[mem.Addr]uint64
	redoOrder []mem.Addr
	sh        *tm.Shard
	xtxn      exec.Txn
	body      func(tm.Tx)
}

// New creates a NOrecRH system over the engine's memory.
func New(eng *htm.Engine, maxThreads int, cfg Config) *System {
	if cfg.HWRetries <= 0 {
		cfg.HWRetries = 5
	}
	s := &System{
		m:       eng.Memory(),
		eng:     eng,
		seq:     eng.Memory().AllocLines(1),
		cfg:     cfg,
		threads: make([]*thread, maxThreads),
	}
	// HWRetries full-hardware attempts gated on the sequence lock being
	// even (resource aborts stop retrying early), then the unbounded NOrec
	// software loop with the reduced-hardware commit.
	s.run = exec.New(exec.Policy{
		FastAttempts:       cfg.HWRetries,
		StopFastOnResource: true,
	}, &s.stats, func() bool { return s.m.Load(s.seq)&1 == 0 })
	for i := range s.threads {
		t := &thread{id: i, redo: make(map[mem.Addr]uint64, 16)}
		t.sh = s.stats.Shard(i)
		x := &swTx{s: s, t: t}
		t.xtxn = exec.Txn{
			// Kernel dispatch: the level runs the caller's body, unbounded at
			// this site; a capacity abort stops hardware retries
			// (StopFastOnResource) and falls to the NOrec software path.
			// parthtm:bigtx — dispatch wrapper, bounded at the workload site
			Fast: func() htm.Result { return s.hwAttempt(t.id, t.body) },
			Mid:  func() bool { return s.swAttempt(t, x, t.body) },
			Slow: func() { panic("norecrh: unbounded software loop cannot fall through") },
		}
		s.threads[i] = t
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "NOrecRH" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// SetTrace attaches a trace sink to the execution kernel (nil detaches).
// Attach before starting workers.
func (s *System) SetTrace(sink *trace.Sink) { s.run.SetTrace(sink) }

// SetGovernor attaches the resource governor to the execution kernel (nil
// detaches): admission budgets, load shedding, and the per-thread HTM
// circuit breaker. Attach before starting workers.
func (s *System) SetGovernor(g *governor.Governor) { s.run.SetGovernor(g) }

// SetProfile attaches the abort-attribution profiler (nil detaches): the
// engine records conflict lines, capacity overflows, and hardware-run
// footprints; the kernel registers as the time-series source. Attach
// before starting workers.
func (s *System) SetProfile(p *prof.Profile) {
	s.run.SetProfile(p)
	s.eng.SetProfile(p)
}

// BumpPressure raises the kernel's degradation pressure by n — the progress
// watchdog's forced-recovery hook: enough pressure serializes the system so
// stalled work completes on the guaranteed path.
func (s *System) BumpPressure(n int64) { s.run.BumpPressure(n) }

// Degraded reports whether the system is currently in degraded serialized
// mode (observability and tests).
func (s *System) Degraded() bool { return s.run.Degraded() }

// Pressure returns the current degradation-pressure level.
func (s *System) Pressure() int64 { return s.run.Pressure() }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// Engine returns the underlying HTM engine.
func (s *System) Engine() *htm.Engine { return s.eng }

// ---------------------------------------------------------------------------
// Full-hardware fast path

type hwTx struct {
	s      *System
	thread int
	ht     *htm.Txn
	wrote  bool
}

var _ tm.Tx = (*hwTx)(nil)

func (x *hwTx) Thread() int { return x.thread }
func (x *hwTx) Pause()      {}

func (x *hwTx) Read(a mem.Addr) uint64     { return x.ht.Read(a) }
func (x *hwTx) Write(a mem.Addr, v uint64) { x.ht.Write(a, v); x.wrote = true }

// WriteLocal still costs hardware write capacity but does not make the
// transaction a writer for sequence-number purposes: private data needs no
// visibility.
func (x *hwTx) WriteLocal(a mem.Addr, v uint64) { x.ht.WriteLocal(a, v) }
func (x *hwTx) Work(c int64)                    { x.ht.Work(c); tm.Spin(c) }
func (x *hwTx) NonTxWork(c int64)               { x.ht.Work(c); tm.Spin(c) }

func (s *System) hwAttempt(thread int, body func(tm.Tx)) (res htm.Result) {
	x := &hwTx{s: s, thread: thread}
	defer func() {
		r := recover()
		if ar, ok := htm.AsAbort(r); ok {
			res = ar
		} else if r != nil {
			if x.ht != nil {
				x.ht.Cancel()
			}
			panic(r)
		}
	}()
	ht := s.eng.Begin(thread)
	x.ht = ht
	seq := ht.Read(s.seq)
	if seq&1 != 0 {
		ht.Abort(codeSeqLocked)
	}
	body(x)
	if x.wrote {
		// Bump the sequence number (staying even) inside the hardware
		// transaction so software readers revalidate against our writes.
		ht.Write(s.seq, seq+2)
	}
	ht.Commit()
	return htm.Result{Committed: true}
}

// ---------------------------------------------------------------------------
// Software path: NOrec with a reduced-hardware commit

func (t *thread) reset() {
	t.readLog = t.readLog[:0]
	for _, a := range t.redoOrder {
		delete(t.redo, a)
	}
	t.redoOrder = t.redoOrder[:0]
}

func (s *System) begin(t *thread) {
	for {
		ts := s.m.Load(s.seq)
		if ts&1 == 0 {
			t.ts = ts
			return
		}
		runtime.Gosched()
	}
}

func (s *System) revalidate(t *thread) {
	for {
		ts := s.m.Load(s.seq)
		if ts&1 != 0 {
			runtime.Gosched()
			continue
		}
		for _, r := range t.readLog {
			if s.m.Load(r.addr) != r.val {
				panic(retryPanic{})
			}
		}
		if s.m.Load(s.seq) == ts {
			t.ts = ts
			return
		}
	}
}

func (s *System) read(t *thread, a mem.Addr) uint64 {
	if v, ok := t.redo[a]; ok {
		return v
	}
	for {
		v := s.m.Load(a)
		if s.m.Load(s.seq) == t.ts {
			t.readLog = append(t.readLog, readRec{addr: a, val: v})
			return v
		}
		s.revalidate(t)
	}
}

func (t *thread) write(a mem.Addr, v uint64) {
	if _, dup := t.redo[a]; !dup {
		t.redoOrder = append(t.redoOrder, a)
	}
	t.redo[a] = v
}

// commit performs the reduced hardware transaction: check the sequence
// number is still the snapshot, write everything back, and bump the
// sequence, all atomically in hardware. Capacity failures fall back to the
// original NOrec locked write-back.
func (s *System) commit(t *thread) {
	if len(t.redoOrder) == 0 {
		return
	}
	for {
		start := time.Now()
		res := s.eng.Execute(t.id, func(ht *htm.Txn) {
			if ht.Read(s.seq) != t.ts {
				ht.Abort(codeSeqMoved)
			}
			for _, a := range t.redoOrder {
				ht.Write(a, t.redo[a])
			}
			ht.Write(s.seq, t.ts+2)
		})
		if res.Committed {
			// Writers serialize on the sequence word even in hardware.
			t.sh.AddSerial(time.Since(start))
			return
		}
		t.sh.RecordAbort(res.Reason)
		if res.Injected {
			t.sh.FaultsInjected.Inc()
		}
		if res.Reason == htm.Capacity || res.Reason == htm.Other {
			// The reduced transaction itself does not fit: software
			// write-back under the sequence lock.
			for !s.m.CAS(s.seq, t.ts, t.ts+1) {
				s.revalidate(t)
			}
			wb := time.Now()
			for _, a := range t.redoOrder {
				s.m.Store(a, t.redo[a])
			}
			s.m.Store(s.seq, t.ts+2)
			t.sh.AddSerial(time.Since(wb))
			return
		}
		// Conflict or a moved sequence number: revalidate (which may abort
		// the transaction) and try the reduced commit again.
		s.revalidate(t)
	}
}

type swTx struct {
	s *System
	t *thread
}

var _ tm.Tx = (*swTx)(nil)

func (x *swTx) Thread() int { return x.t.id }
func (x *swTx) Pause()      {}
func (x *swTx) Read(a mem.Addr) uint64 {
	tm.Spin(tm.SWReadBarrier) // modelled barrier cost (see tm package docs)
	return x.s.read(x.t, a)
}

func (x *swTx) Write(a mem.Addr, v uint64) {
	tm.Spin(tm.SWWriteBarrier)
	x.t.write(a, v)
}

// WriteLocal stores thread-private data directly, outside the redo log.
func (x *swTx) WriteLocal(a mem.Addr, v uint64) { x.s.m.Store(a, v) }
func (x *swTx) Work(c int64)                    { tm.Spin(c) }
func (x *swTx) NonTxWork(c int64)               { tm.Spin(c) }

// Atomic implements tm.System. The exec kernel drives the schedule —
// gated hardware attempts, then the unbounded software loop — and records
// all commit/abort outcomes.
func (s *System) Atomic(thread int, body func(tm.Tx)) {
	t := s.threads[thread]
	t.body = body
	s.run.Run(thread, &t.xtxn)
	t.body = nil
}

func (s *System) swAttempt(t *thread, x *swTx, body func(tm.Tx)) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, isRetry := r.(retryPanic); isRetry {
			ok = false
			return
		}
		panic(r)
	}()
	t.reset()
	s.begin(t)
	body(x)
	s.commit(t)
	return true
}
