package norecrh

import (
	"sync"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

func newSys(threads int, mut func(*htm.Config)) *System {
	cfg := htm.DefaultConfig()
	cfg.Quantum = 0
	cfg.ReadEvictProb = 0
	if mut != nil {
		mut(&cfg)
	}
	return New(htm.New(mem.New(1<<16), cfg), threads, DefaultConfig())
}

func TestSmallTxUsesHardware(t *testing.T) {
	s := newSys(1, nil)
	a := s.Memory().Alloc(1)
	for i := 0; i < 10; i++ {
		s.Atomic(0, func(x tm.Tx) { x.Write(a, x.Read(a)+1) })
	}
	st := s.Stats().Snapshot()
	if st.CommitsHTM != 10 || st.CommitsSW != 0 {
		t.Fatalf("want 10 hardware commits, got %+v", st)
	}
}

func TestHardwareCommitBumpsSequence(t *testing.T) {
	s := newSys(1, nil)
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) { x.Write(a, 1) })
	if got := s.Memory().Load(s.seq); got != 2 {
		t.Fatalf("sequence = %d, want 2 (hardware commits must be visible to software validation)", got)
	}
}

func TestResourceFailureUsesSoftwarePathWithReducedCommit(t *testing.T) {
	// The transaction's work exceeds the quantum, so the full-hardware
	// attempt dies; the software path with the small reduced-hardware
	// commit must take over.
	s := newSys(1, func(c *htm.Config) { c.Quantum = 100 })
	a := s.Memory().Alloc(1)
	s.Atomic(0, func(x tm.Tx) {
		x.NonTxWork(500)
		x.Write(a, 3)
	})
	st := s.Stats().Snapshot()
	if st.CommitsSW != 1 {
		t.Fatalf("want software commit, got %+v", st)
	}
	if got := s.Memory().Load(a); got != 3 {
		t.Fatalf("a = %d", got)
	}
	// The reduced hardware commit (2 written lines: data + sequence) fits
	// the quantum? The commit transaction performs few operations, so it
	// must have committed in hardware; the engine therefore recorded at
	// least one hardware commit even though the transaction is counted SW.
	if s.Engine().Stats().Commits.Load() == 0 {
		t.Fatal("reduced hardware commit did not run in hardware")
	}
}

func TestReducedCommitCapacityFallsBackToLockedWriteback(t *testing.T) {
	// Write set too large even for the reduced commit: the software
	// fallback write-back (CAS on the sequence lock) must complete it.
	s := newSys(1, func(c *htm.Config) {
		c.WriteLines = 2
		c.WriteWays = 64
		c.WriteSets = 1
	})
	m := s.Memory()
	base := m.AllocLines(6)
	s.Atomic(0, func(x tm.Tx) {
		for l := 0; l < 6; l++ {
			x.Write(base+mem.Addr(l*mem.LineWords), uint64(l+1))
		}
	})
	for l := 0; l < 6; l++ {
		if got := m.Load(base + mem.Addr(l*mem.LineWords)); got != uint64(l+1) {
			t.Fatalf("line %d = %d", l, got)
		}
	}
	if s.Stats().Snapshot().CommitsSW != 1 {
		t.Fatalf("want software commit, got %+v", s.Stats().Snapshot())
	}
	if got := m.Load(s.seq); got != 2 {
		t.Fatalf("sequence = %d, want 2", got)
	}
}

func TestMixedHardwareSoftwareCounter(t *testing.T) {
	// Threads alternate between small (hardware) and long (software)
	// increments; the counter must stay exact across the hybrid boundary.
	s := newSys(4, func(c *htm.Config) { c.Quantum = 300 })
	a := s.Memory().Alloc(1)
	var wg sync.WaitGroup
	const per = 150
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				long := i%2 == 0
				s.Atomic(id, func(x tm.Tx) {
					if long {
						x.NonTxWork(1000)
					}
					x.Write(a, x.Read(a)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	if got := s.Memory().Load(a); got != 4*per {
		t.Fatalf("counter = %d, want %d", got, 4*per)
	}
	st := s.Stats().Snapshot()
	if st.CommitsHTM == 0 || st.CommitsSW == 0 {
		t.Fatalf("expected both paths to be exercised, got %+v", st)
	}
}
