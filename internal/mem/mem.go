// Package mem provides the simulated shared memory every transactional
// protocol in this repository runs against.
//
// Memory is word addressable: a word is 8 bytes and an Addr is a word index.
// Words are grouped into 64-byte cache lines (8 words per line), the
// granularity at which the best-effort HTM engine (internal/htm) detects
// conflicts, exactly like Intel TSX. All access to a word — transactional or
// not — is serialized through a per-line striped lock, which both makes the
// simulator race-free and gives the HTM engine a sound place to observe
// non-transactional accesses (strong atomicity).
package mem

import (
	"fmt"
	"runtime"
	"sync"
)

// Addr is a word index into a Memory. Addr 0 is reserved as a null address
// and never returned by Alloc.
type Addr uint32

const (
	// WordBytes is the size of one memory word.
	WordBytes = 8
	// LineWords is the number of words per cache line.
	LineWords = 8
	// LineBytes is the size of one cache line.
	LineBytes = WordBytes * LineWords

	// stripeCount is the number of line-lock stripes. Must be a power of two.
	stripeCount = 4096
)

// Line identifies a cache line within a Memory.
type Line uint32

// LineOf returns the cache line containing addr.
func LineOf(a Addr) Line { return Line(a / LineWords) }

// Observer is notified of non-transactional accesses, under the line's
// stripe lock. The HTM engine registers itself as an Observer so that
// non-transactional reads and writes abort conflicting hardware
// transactions (strong atomicity, as Intel TSX provides).
//
// A callback returns true when the access cannot proceed yet (a hardware
// transaction is mid-commit on that line); the accessor releases the stripe
// lock, yields, and retries, so the non-transactional access never observes
// a partially published hardware write set.
type Observer interface {
	// NonTxRead is called before a non-transactional read of line.
	// It must abort hardware transactions that have line in their write set.
	NonTxRead(l Line) (retry bool)
	// NonTxWrite is called before a non-transactional write of line.
	// It must abort hardware transactions that have line in their read or
	// write set.
	NonTxWrite(l Line) (retry bool)
}

// Memory is a flat simulated shared memory.
//
// All exported accessors are safe for concurrent use. The zero value is not
// usable; create instances with New.
type Memory struct {
	words   []uint64
	stripes [stripeCount]sync.Mutex

	allocMu sync.Mutex
	next    Addr
	limit   Addr // Alloc may not reach past this (see ReserveTop)

	obs Observer
}

// New creates a Memory holding capWords words, all zero.
func New(capWords int) *Memory {
	if capWords < LineWords {
		capWords = LineWords
	}
	// Round up to a whole number of lines.
	capWords = (capWords + LineWords - 1) / LineWords * LineWords
	return &Memory{
		words: make([]uint64, capWords),
		next:  LineWords, // line 0 (incl. Addr 0) is reserved
		limit: Addr(capWords),
	}
}

// ReserveTop carves n whole lines' worth of words off the top of the memory
// as a dedicated region that Alloc can never grow into (Part-HTM-O uses
// this for its lock-cell shadow). It returns the region's first address.
func (m *Memory) ReserveTop(n int) Addr {
	if n <= 0 {
		panic("mem: ReserveTop of non-positive size")
	}
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	n = (n + LineWords - 1) / LineWords * LineWords
	if int(m.limit)-n < int(m.next) {
		panic(fmt.Sprintf("mem: ReserveTop(%d) overlaps allocated space", n))
	}
	m.limit -= Addr(n)
	return m.limit
}

// Words returns the capacity of the memory in words.
func (m *Memory) Words() int { return len(m.words) }

// Lines returns the capacity of the memory in cache lines.
func (m *Memory) Lines() int { return len(m.words) / LineWords }

// SetObserver installs the strong-atomicity observer. It must be called
// before any concurrent access; installing an observer mid-run is racy.
func (m *Memory) SetObserver(o Observer) { m.obs = o }

// Alloc reserves n consecutive words and returns the address of the first.
// It panics if the memory is exhausted: simulated memory is sized up front
// by the workload, so exhaustion is a configuration bug, not a runtime
// condition to handle.
func (m *Memory) Alloc(n int) Addr {
	if n <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	a := m.next
	if int(a)+n > int(m.limit) {
		panic(fmt.Sprintf("mem: out of simulated memory (limit %d words, need %d more)", m.limit, n))
	}
	m.next += Addr(n)
	return a
}

// AllocAligned reserves n words starting on a cache-line boundary. Metadata
// such as signatures must be line aligned so that the number of lines they
// occupy (and hence their HTM conflict footprint) is exact.
func (m *Memory) AllocAligned(n int) Addr {
	if n <= 0 {
		panic("mem: AllocAligned of non-positive size")
	}
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	a := (m.next + LineWords - 1) / LineWords * LineWords
	if int(a)+n > int(m.limit) {
		panic(fmt.Sprintf("mem: out of simulated memory (limit %d words, need %d more)", m.limit, n))
	}
	m.next = a + Addr(n)
	return a
}

// AllocLines reserves n whole cache lines and returns the address of the
// first word of the first line.
func (m *Memory) AllocLines(n int) Addr { return m.AllocAligned(n * LineWords) }

// AllocLinesAligned reserves n whole cache lines starting on an
// alignLines-line boundary (alignLines must be a power of two). Domain
// arenas carve chunk-aligned regions with it so the addr→domain routing
// table stays exact at chunk granularity and lines never straddle two
// domains.
func (m *Memory) AllocLinesAligned(n, alignLines int) Addr {
	if n <= 0 {
		panic("mem: AllocLinesAligned of non-positive size")
	}
	if alignLines <= 0 || alignLines&(alignLines-1) != 0 {
		panic("mem: AllocLinesAligned alignment must be a positive power of two")
	}
	alignWords := Addr(alignLines * LineWords)
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	a := (m.next + alignWords - 1) / alignWords * alignWords
	need := n * LineWords
	if int(a)+need > int(m.limit) {
		panic(fmt.Sprintf("mem: out of simulated memory (limit %d words, need %d more)", m.limit, need))
	}
	m.next = a + Addr(need)
	return a
}

// stripe returns the lock guarding addr's line.
func (m *Memory) stripe(l Line) *sync.Mutex {
	return &m.stripes[uint32(l)&(stripeCount-1)]
}

// WithLine runs f under the stripe lock of line l. The HTM engine uses this
// to make monitor registration and the data access it guards atomic. f must
// not block or re-enter memory accessors for a line in a different stripe
// ordering; single-line critical sections only.
func (m *Memory) WithLine(l Line, f func()) {
	mu := m.stripe(l)
	mu.Lock()
	f()
	mu.Unlock()
}

// Lock acquires line l's stripe directly. Hot paths use Lock/Unlock instead
// of WithLine to avoid a closure per access; the same single-line critical-
// section discipline applies.
func (m *Memory) Lock(l Line) { m.stripe(l).Lock() }

// Unlock releases line l's stripe.
func (m *Memory) Unlock(l Line) { m.stripe(l).Unlock() }

// RawLoad reads a word without locking or observer notification. Callers
// must hold the line's stripe (see WithLine); the HTM engine is the intended
// caller.
func (m *Memory) RawLoad(a Addr) uint64 { return m.words[a] }

// RawStore writes a word without locking or observer notification. Callers
// must hold the line's stripe.
func (m *Memory) RawStore(a Addr, v uint64) { m.words[a] = v }

// access runs f under a's stripe lock after the observer has granted the
// access, retrying while a hardware transaction is mid-commit on the line.
func (m *Memory) access(a Addr, write bool, f func()) {
	l := LineOf(a)
	mu := m.stripe(l)
	for {
		mu.Lock()
		if m.obs != nil {
			var retry bool
			if write {
				retry = m.obs.NonTxWrite(l)
			} else {
				retry = m.obs.NonTxRead(l)
			}
			if retry {
				mu.Unlock()
				runtime.Gosched()
				continue
			}
		}
		f()
		mu.Unlock()
		return
	}
}

// Load performs a non-transactional read of a word. Hardware transactions
// holding the word's line in their write set are aborted (strong atomicity).
func (m *Memory) Load(a Addr) uint64 {
	var v uint64
	m.access(a, false, func() { v = m.words[a] })
	return v
}

// Store performs a non-transactional write of a word. Hardware transactions
// holding the word's line in their read or write set are aborted.
func (m *Memory) Store(a Addr, v uint64) {
	m.access(a, true, func() { m.words[a] = v })
}

// CAS atomically compares-and-swaps a word, returning whether the swap
// happened. Like Store it aborts conflicting hardware transactions.
func (m *Memory) CAS(a Addr, old, new uint64) bool {
	var ok bool
	m.access(a, true, func() {
		ok = m.words[a] == old
		if ok {
			m.words[a] = new
		}
	})
	return ok
}

// Add atomically adds delta to a word and returns the new value.
func (m *Memory) Add(a Addr, delta uint64) uint64 {
	var v uint64
	m.access(a, true, func() {
		m.words[a] += delta
		v = m.words[a]
	})
	return v
}

// AndNot atomically clears the bits of mask in the word at a and returns the
// new value. Part-HTM uses this to release its write locks from the shared
// write-locks signature.
func (m *Memory) AndNot(a Addr, mask uint64) uint64 {
	var v uint64
	m.access(a, true, func() {
		m.words[a] &^= mask
		v = m.words[a]
	})
	return v
}

// Or atomically sets the bits of mask in the word at a and returns the new
// value.
func (m *Memory) Or(a Addr, mask uint64) uint64 {
	var v uint64
	m.access(a, true, func() {
		m.words[a] |= mask
		v = m.words[a]
	})
	return v
}
