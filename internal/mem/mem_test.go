package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRoundsUpToLines(t *testing.T) {
	m := New(1)
	if m.Words() != LineWords {
		t.Fatalf("Words() = %d, want %d", m.Words(), LineWords)
	}
	m = New(9)
	if m.Words() != 2*LineWords {
		t.Fatalf("Words() = %d, want %d", m.Words(), 2*LineWords)
	}
	if m.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2", m.Lines())
	}
}

func TestAllocSequentialAndNonZero(t *testing.T) {
	m := New(1024)
	a := m.Alloc(3)
	b := m.Alloc(2)
	if a == 0 {
		t.Fatal("Alloc returned the reserved null address")
	}
	if b != a+3 {
		t.Fatalf("second Alloc = %d, want %d", b, a+3)
	}
}

func TestAllocAligned(t *testing.T) {
	m := New(4096)
	m.Alloc(3) // misalign the bump pointer
	a := m.AllocAligned(16)
	if a%LineWords != 0 {
		t.Fatalf("AllocAligned returned %d, not line aligned", a)
	}
	l := m.AllocLines(2)
	if l%LineWords != 0 {
		t.Fatalf("AllocLines returned %d, not line aligned", l)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(2 * LineWords)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	m.Alloc(10 * LineWords)
}

func TestAllocZeroPanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Alloc(0)")
		}
	}()
	m.Alloc(0)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1024)
	a := m.Alloc(4)
	m.Store(a, 42)
	m.Store(a+1, 43)
	if got := m.Load(a); got != 42 {
		t.Fatalf("Load(a) = %d, want 42", got)
	}
	if got := m.Load(a + 1); got != 43 {
		t.Fatalf("Load(a+1) = %d, want 43", got)
	}
	if got := m.Load(a + 2); got != 0 {
		t.Fatalf("Load of fresh word = %d, want 0", got)
	}
}

func TestCAS(t *testing.T) {
	m := New(64)
	a := m.Alloc(1)
	m.Store(a, 5)
	if m.CAS(a, 4, 9) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if got := m.Load(a); got != 5 {
		t.Fatalf("failed CAS modified memory: %d", got)
	}
	if !m.CAS(a, 5, 9) {
		t.Fatal("CAS with right expected value failed")
	}
	if got := m.Load(a); got != 9 {
		t.Fatalf("Load after CAS = %d, want 9", got)
	}
}

func TestAddOrAndNot(t *testing.T) {
	m := New(64)
	a := m.Alloc(1)
	if got := m.Add(a, 7); got != 7 {
		t.Fatalf("Add = %d, want 7", got)
	}
	if got := m.Or(a, 0x18); got != 0x1f {
		t.Fatalf("Or = %#x, want 0x1f", got)
	}
	if got := m.AndNot(a, 0x6); got != 0x19 {
		t.Fatalf("AndNot = %#x, want 0x19", got)
	}
}

func TestLineOf(t *testing.T) {
	cases := []struct {
		a Addr
		l Line
	}{{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.l {
			t.Errorf("LineOf(%d) = %d, want %d", c.a, got, c.l)
		}
	}
}

func TestConcurrentAddIsAtomic(t *testing.T) {
	m := New(64)
	a := m.Alloc(1)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(a, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Load(a); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	m := New(64)
	a := m.Alloc(1)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					v := m.Load(a)
					if m.CAS(a, v, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Load(a); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// recObserver records observed accesses and never asks for a retry.
type recObserver struct {
	mu     sync.Mutex
	reads  []Line
	writes []Line
}

func (o *recObserver) NonTxRead(l Line) bool {
	o.mu.Lock()
	o.reads = append(o.reads, l)
	o.mu.Unlock()
	return false
}

func (o *recObserver) NonTxWrite(l Line) bool {
	o.mu.Lock()
	o.writes = append(o.writes, l)
	o.mu.Unlock()
	return false
}

func TestObserverSeesAccesses(t *testing.T) {
	m := New(1024)
	o := &recObserver{}
	m.SetObserver(o)
	a := m.AllocAligned(LineWords * 2)
	m.Store(a, 1)
	m.Load(a + LineWords)
	m.CAS(a, 1, 2)
	m.Add(a+LineWords, 1)
	if len(o.writes) != 3 {
		t.Fatalf("observer saw %d writes, want 3 (Store, CAS, Add)", len(o.writes))
	}
	if len(o.reads) != 1 {
		t.Fatalf("observer saw %d reads, want 1", len(o.reads))
	}
	if o.writes[0] != LineOf(a) || o.reads[0] != LineOf(a+LineWords) {
		t.Fatalf("observer recorded wrong lines: %v %v", o.writes, o.reads)
	}
}

// retryOnce asks for one retry, then allows the access; the accessor must
// loop rather than fail.
type retryOnce struct {
	left int
}

func (o *retryOnce) NonTxRead(Line) bool { return false }
func (o *retryOnce) NonTxWrite(Line) bool {
	if o.left > 0 {
		o.left--
		return true
	}
	return false
}

func TestObserverRetryLoops(t *testing.T) {
	m := New(64)
	m.SetObserver(&retryOnce{left: 3})
	a := m.Alloc(1)
	m.Store(a, 77)
	m.SetObserver(nil)
	if got := m.Load(a); got != 77 {
		t.Fatalf("Load = %d, want 77 after retried Store", got)
	}
}

func TestQuickStoreLoad(t *testing.T) {
	m := New(1 << 16)
	base := m.Alloc(1 << 10)
	f := func(off uint16, v uint64) bool {
		a := base + Addr(off)%(1<<10)
		m.Store(a, v)
		return m.Load(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReserveTop(t *testing.T) {
	m := New(1 << 12)
	shadow := m.ReserveTop(1 << 11)
	if int(shadow) != 1<<11 {
		t.Fatalf("shadow base = %d, want %d", shadow, 1<<11)
	}
	// Allocations must stay below the reserved region.
	a := m.Alloc(100)
	if int(a)+100 > int(shadow) {
		t.Fatalf("Alloc %d crossed into the reserved region", a)
	}
	// Exhausting the remaining lower half must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	m.Alloc(1 << 11)
}

func TestReserveTopOverlapPanics(t *testing.T) {
	m := New(256)
	m.Alloc(200)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overlap panic")
		}
	}()
	m.ReserveTop(128)
}

func TestLockUnlockDirect(t *testing.T) {
	m := New(256)
	a := m.Alloc(1)
	l := LineOf(a)
	m.Lock(l)
	m.RawStore(a, 12)
	v := m.RawLoad(a)
	m.Unlock(l)
	if v != 12 {
		t.Fatalf("RawLoad = %d", v)
	}
	if got := m.Load(a); got != 12 {
		t.Fatalf("Load = %d", got)
	}
}

func TestAllocLinesAligned(t *testing.T) {
	m := New(1 << 14)
	m.AllocLines(3) // skew the cursor off any large alignment
	a := m.AllocLinesAligned(4, 16)
	if a%(16*LineWords) != 0 {
		t.Fatalf("AllocLinesAligned(4,16) = %d, not 16-line aligned", a)
	}
	// The next plain allocation starts after the aligned region.
	b := m.AllocLines(1)
	if b < a+4*LineWords {
		t.Fatalf("allocation overlap: %d inside aligned region at %d", b, a)
	}
	// Already-aligned cursors are not padded further.
	c := m.AllocLinesAligned(16, 16)
	d := m.AllocLinesAligned(16, 16)
	if d != c+16*LineWords {
		t.Fatalf("back-to-back aligned grabs left a gap: %d after %d", d, c)
	}
}

func TestAllocLinesAlignedPanics(t *testing.T) {
	m := New(1 << 10)
	for _, bad := range [][2]int{{0, 16}, {-1, 16}, {4, 0}, {4, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllocLinesAligned(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			m.AllocLinesAligned(bad[0], bad[1])
		}()
	}
}
