package governor

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// finishQuiet drives Finish ignoring the transition (helper).
func run(g *Governor, st *State, path uint8) Transition {
	g.Begin(st, 0)
	return g.Finish(st, path)
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	g := New(Config{BreakerThreshold: 3, BreakerProbeEvery: 4})
	st := g.State(0)

	// Hardware-failed, lock-saved transactions lengthen the streak; the
	// threshold-th one trips the breaker.
	for i := 0; i < 2; i++ {
		g.Begin(st, 0)
		st.NoteHWAbort()
		if tr := g.Finish(st, trace.PathGL); tr != TransNone {
			t.Fatalf("txn %d: transition %v, want none", i, tr)
		}
	}
	g.Begin(st, 0)
	st.NoteHWAbort()
	if tr := g.Finish(st, trace.PathGL); tr != TransTrip {
		t.Fatalf("third failure: transition %v, want trip", tr)
	}
	if !st.Open() {
		t.Fatal("breaker not open after trip")
	}

	// While open: serialize, except every 4th transaction probes.
	var probes, serialized int
	for i := 0; i < 8; i++ {
		v, reason := g.Begin(st, 0)
		switch v {
		case Probe:
			probes++
			// Probe fails: hardware still broken, saved by the lock.
			st.NoteHWAbort()
			if tr := g.Finish(st, trace.PathGL); tr != TransNone {
				t.Fatalf("failed probe: transition %v, want none", tr)
			}
			if !st.Open() {
				t.Fatal("failed probe closed the breaker")
			}
		case Serialize:
			if reason != ReasonBreaker {
				t.Fatalf("serialize reason %v, want breaker", reason)
			}
			serialized++
			g.Finish(st, trace.PathGL)
		default:
			t.Fatalf("verdict %v while breaker open", v)
		}
	}
	if probes != 2 || serialized != 6 {
		t.Fatalf("probes=%d serialized=%d, want 2/6", probes, serialized)
	}

	// Next probe commits in hardware: the breaker closes.
	for {
		v, _ := g.Begin(st, 0)
		if v == Probe {
			break
		}
		g.Finish(st, trace.PathGL)
	}
	if tr := g.Finish(st, trace.PathHTM); tr != TransClose {
		t.Fatalf("hardware probe commit: transition %v, want close", tr)
	}
	if st.Open() {
		t.Fatal("breaker still open after close")
	}

	// Closed again: normal admission, streak restarts from zero.
	if v, _ := g.Begin(st, 0); v != Admit {
		t.Fatalf("verdict %v after close, want admit", v)
	}
	g.Finish(st, trace.PathHTM)
}

func TestBreakerIgnoresSoftwareAndCleanLockCommits(t *testing.T) {
	g := New(Config{BreakerThreshold: 2})
	st := g.State(0)

	// Lock commits without hardware evidence: pure contention, no streak.
	for i := 0; i < 10; i++ {
		if tr := run(g, st, trace.PathGL); tr != TransNone {
			t.Fatalf("clean GL commit %d: transition %v", i, tr)
		}
	}
	// Software commits after hardware aborts: partitioned path absorbed the
	// failure; neither trip evidence nor recovery proof.
	for i := 0; i < 10; i++ {
		g.Begin(st, 0)
		st.NoteHWAbort()
		if tr := g.Finish(st, trace.PathSW); tr != TransNone {
			t.Fatalf("SW commit %d: transition %v", i, tr)
		}
	}
	if st.Open() {
		t.Fatal("breaker tripped without lock-saved hardware failures")
	}
	// One failure then a hardware commit: streak resets.
	g.Begin(st, 0)
	st.NoteHWAbort()
	g.Finish(st, trace.PathGL)
	run(g, st, trace.PathHTM)
	g.Begin(st, 0)
	st.NoteHWAbort()
	if tr := g.Finish(st, trace.PathGL); tr != TransNone {
		t.Fatalf("post-reset failure tripped early: %v", tr)
	}
}

func TestBreakerDisabled(t *testing.T) {
	g := New(Config{}) // zero threshold: no breaker
	st := g.State(0)
	for i := 0; i < 100; i++ {
		g.Begin(st, 0)
		st.NoteHWAbort()
		if tr := g.Finish(st, trace.PathGL); tr != TransNone {
			t.Fatalf("disabled breaker produced transition %v", tr)
		}
	}
	if st.Open() {
		t.Fatal("disabled breaker opened")
	}
}

func TestAdmissionShedding(t *testing.T) {
	g := New(Config{MaxConcurrent: 2})
	a, b, c := g.State(0), g.State(1), g.State(2)
	if v, _ := g.Begin(a, 0); v != Admit {
		t.Fatalf("first: %v", v)
	}
	if v, _ := g.Begin(b, 0); v != Admit {
		t.Fatalf("second: %v", v)
	}
	v, reason := g.Begin(c, 0)
	if v != Serialize || reason != ReasonOverload {
		t.Fatalf("third over ceiling: %v/%v, want serialize/overload", v, reason)
	}
	if got := g.Inflight(); got != 3 {
		t.Fatalf("inflight %d, want 3 (shed txns hold their slot)", got)
	}
	g.Finish(c, trace.PathGL)
	g.Finish(b, trace.PathHTM)
	if v, _ := g.Begin(c, 0); v != Admit {
		t.Fatalf("after release: %v, want admit", v)
	}
	g.Finish(c, trace.PathHTM)
	g.Finish(a, trace.PathHTM)
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight %d after all finished", got)
	}
}

func TestTryAcquireRejects(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	if !g.TryAcquire() {
		t.Fatal("first acquire refused")
	}
	if g.TryAcquire() {
		t.Fatal("second acquire admitted over the ceiling")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("acquire refused after release")
	}
	g.Release()
	if g.Inflight() != 0 {
		t.Fatalf("inflight %d, want 0", g.Inflight())
	}
	// No ceiling: always admits.
	open := New(Config{})
	for i := 0; i < 10; i++ {
		if !open.TryAcquire() {
			t.Fatal("unlimited governor refused")
		}
	}
}

func TestAttemptBudget(t *testing.T) {
	g := New(Config{AttemptBudget: 3})
	st := g.State(0)
	g.Begin(st, 0)
	for i := 0; i < 3; i++ {
		if !g.ChargeAttempt(st, 0) {
			t.Fatalf("attempt %d refused within budget", i+1)
		}
	}
	if g.ChargeAttempt(st, 0) {
		t.Fatal("fourth attempt admitted over a budget of 3")
	}
	g.Finish(st, trace.PathGL)
	// Budget resets per transaction.
	g.Begin(st, 0)
	if !g.ChargeAttempt(st, 0) {
		t.Fatal("fresh transaction refused its first attempt")
	}
	g.Finish(st, trace.PathGL)
}

func TestTimeBudget(t *testing.T) {
	g := New(Config{TimeBudget: time.Millisecond})
	if !g.NeedsTime() {
		t.Fatal("NeedsTime false with a time budget set")
	}
	st := g.State(0)
	now := trace.Now()
	g.Begin(st, now)
	if !g.ChargeAttempt(st, now) {
		t.Fatal("attempt within deadline refused")
	}
	if g.ChargeAttempt(st, now+2*int64(time.Millisecond)) {
		t.Fatal("attempt past deadline admitted")
	}
	g.Finish(st, trace.PathGL)

	// Disabling the budget stops deadline checks for new transactions.
	g.SetTimeBudget(0)
	if g.NeedsTime() {
		t.Fatal("NeedsTime true after disabling")
	}
	g.Begin(st, 0)
	if !g.ChargeAttempt(st, 0) {
		t.Fatal("attempt refused with no budgets")
	}
	g.Finish(st, trace.PathGL)
}

func TestAutoTune(t *testing.T) {
	g := New(Config{AutoTuneFactor: 4})
	var snap trace.LatencySnapshot
	g.AutoTune(snap) // no commits: unchanged
	if g.TimeBudget() != 0 {
		t.Fatalf("empty snapshot tuned budget to %v", g.TimeBudget())
	}
	snap.Path[trace.PathHTM] = trace.LatencyStat{Count: 100, P99: 1000}
	snap.Path[trace.PathSW] = trace.LatencyStat{Count: 10, P99: 5000}
	g.AutoTune(snap)
	if got := g.TimeBudget(); got != 20000*time.Nanosecond {
		t.Fatalf("tuned budget %v, want 20µs (4 × slowest p99)", got)
	}
}

// TestHooksAllocationFree pins the admission fast path allocation-free (the
// -benchmem benchmarks show the same; this fails fast in plain `go test`).
func TestHooksAllocationFree(t *testing.T) {
	g := New(Config{
		TimeBudget:       time.Second,
		AttemptBudget:    8,
		MaxConcurrent:    64,
		BreakerThreshold: 4,
	})
	st := g.State(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now := trace.Now()
		g.Begin(st, now)
		g.ChargeAttempt(st, now)
		st.NoteHWAbort()
		g.Finish(st, trace.PathGL)
	})
	if allocs != 0 {
		t.Fatalf("admission hooks allocate %v per transaction, want 0", allocs)
	}
}

func BenchmarkAdmit(b *testing.B) {
	g := New(DefaultConfig())
	st := g.State(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Begin(st, 0)
		g.ChargeAttempt(st, 0)
		g.Finish(st, trace.PathHTM)
	}
}

func BenchmarkAdmitAllBudgets(b *testing.B) {
	g := New(Config{
		TimeBudget:       time.Second,
		AttemptBudget:    8,
		MaxConcurrent:    64,
		BreakerThreshold: 4,
	})
	st := g.State(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := trace.Now()
		g.Begin(st, now)
		g.ChargeAttempt(st, now)
		g.Finish(st, trace.PathHTM)
	}
}
