package governor

import (
	"sync/atomic"
	"time"

	"repro/internal/tm"
	"repro/internal/trace"
)

// AlarmKind classifies a progress-watchdog alarm.
type AlarmKind uint8

const (
	// AlarmStall: a worker (or the whole system) kept aborting without a
	// single commit for the stall deadline.
	AlarmStall AlarmKind = iota
	// AlarmLemming: lemming-wait escalations piled up faster than the
	// configured per-sample bound — the optimistic gate is a convoy.
	AlarmLemming
	// AlarmOscillation: degraded mode flapped on and off more often than
	// the configured bound within the sampling window.
	AlarmOscillation
)

// String returns the alarm kind's stable name.
func (k AlarmKind) String() string {
	switch k {
	case AlarmStall:
		return "stall"
	case AlarmLemming:
		return "lemming-pileup"
	case AlarmOscillation:
		return "degraded-oscillation"
	}
	return "alarm(?)"
}

// Alarm is one watchdog finding. Thread is the stalled worker, or -1 for
// system-wide alarms; Value carries the kind-specific magnitude (aborts
// absorbed during the stall, lemming escalations in the sample, degraded
// edges in the window).
type Alarm struct {
	Kind   AlarmKind
	Thread int
	Value  uint64
}

// WatchdogConfig tunes the progress watchdog. The zero value is not
// useful; start from DefaultWatchdogConfig.
type WatchdogConfig struct {
	// Interval is the sampling period.
	Interval time.Duration
	// StallSamples is how many consecutive no-commit-progress samples
	// (while aborts keep arriving, or transactions are in flight) raise a
	// stall alarm. The stall deadline is Interval * StallSamples.
	StallSamples int
	// LemmingPerSample raises a lemming-pileup alarm when more than this
	// many lemming escalations land within one sample. Zero disables.
	LemmingPerSample uint64
	// OscillationWindow and OscillationEdges raise an oscillation alarm
	// when degraded mode enters+exits more than OscillationEdges times
	// within the last OscillationWindow samples. Zero window disables.
	OscillationWindow int
	OscillationEdges  uint64
	// RecoverStall, with a Degrader attached, answers a stall alarm by
	// bumping RecoverPressure units of degradation pressure — serializing
	// the system so the stalled work completes on the guaranteed path.
	RecoverStall    bool
	RecoverPressure int64
}

// DefaultWatchdogConfig samples every 10ms, alarms after 5 samples without
// commit progress (a 50ms stall deadline), flags more than 1024 lemming
// escalations per sample, and flags 16 degraded edges within a second.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		Interval:          10 * time.Millisecond,
		StallSamples:      5,
		LemmingPerSample:  1024,
		OscillationWindow: 100,
		OscillationEdges:  16,
		RecoverPressure:   64,
	}
}

// Deadline returns the stall deadline the configuration implies.
func (c WatchdogConfig) Deadline() time.Duration {
	return c.Interval * time.Duration(c.StallSamples)
}

// Degrader forces serialized recovery; exec.Runner implements it.
type Degrader interface{ BumpPressure(n int64) }

// Watchdog is a sampling progress monitor over a system's per-thread stats
// shards. It runs in its own goroutine between Start and Stop, records
// alarms into its own stats shard slot (index = worker count, preserving
// the single-writer discipline) and, when a trace sink is attached, into
// its own trace buffer slot.
type Watchdog struct {
	cfg     WatchdogConfig
	stats   *tm.Stats
	threads int

	gov      *Governor // optional: inflight gauge for global-stall detection
	degrader Degrader  // optional: forced recovery target
	onAlarm  func(Alarm)
	buf      *trace.Buffer
	sh       *tm.Shard

	alarms atomic.Uint64
	stop   chan struct{}
	done   chan struct{}

	// Sampler state (watchdog goroutine only).
	lastCommits []uint64
	lastAborts  []uint64
	stallFor    []int
	lastTotal   uint64
	totalStall  int
	lastLemming uint64
	lastEdges   uint64
	edgeWindow  []uint64
	edgeHead    int
}

// NewWatchdog builds a watchdog over stats for a system running the given
// number of worker threads. Attach options (AttachGovernor, SetDegrader,
// SetTrace, OnAlarm) before Start.
func NewWatchdog(cfg WatchdogConfig, stats *tm.Stats, threads int) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogConfig().Interval
	}
	if cfg.StallSamples <= 0 {
		cfg.StallSamples = DefaultWatchdogConfig().StallSamples
	}
	if cfg.RecoverPressure <= 0 {
		cfg.RecoverPressure = DefaultWatchdogConfig().RecoverPressure
	}
	w := &Watchdog{
		cfg:         cfg,
		stats:       stats,
		threads:     threads,
		sh:          stats.Shard(threads), // own slot, one past the workers
		lastCommits: make([]uint64, threads),
		lastAborts:  make([]uint64, threads),
		stallFor:    make([]int, threads),
	}
	if cfg.OscillationWindow > 0 {
		w.edgeWindow = make([]uint64, cfg.OscillationWindow)
	}
	return w
}

// AttachGovernor lets the watchdog use the governor's inflight gauge to
// tell "everything is idle" from "everything is stuck".
func (w *Watchdog) AttachGovernor(g *Governor) { w.gov = g }

// SetDegrader attaches the forced-recovery target (the system's runner).
func (w *Watchdog) SetDegrader(d Degrader) { w.degrader = d }

// SetTrace attaches a sink; alarms are recorded as marks in the watchdog's
// own buffer slot (index = worker count).
func (w *Watchdog) SetTrace(s *trace.Sink) { w.buf = s.Thread(w.threads) }

// OnAlarm installs a callback invoked from the watchdog goroutine on every
// alarm. Install before Start.
func (w *Watchdog) OnAlarm(f func(Alarm)) { w.onAlarm = f }

// Alarms returns the total alarms raised so far.
func (w *Watchdog) Alarms() uint64 { return w.alarms.Load() }

// Start launches the sampling goroutine. Call at most once per watchdog.
func (w *Watchdog) Start() {
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop()
}

// Stop terminates the sampling goroutine and waits for it to exit. Safe to
// call once after Start.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.sample()
		}
	}
}

// sample takes one reading of the shards and raises due alarms.
func (w *Watchdog) sample() {
	var totalCommits, totalAborts uint64
	for i := 0; i < w.threads; i++ {
		sh := w.stats.Shard(i)
		commits := sh.CommitsHTM.Load() + sh.CommitsSW.Load() + sh.CommitsGL.Load()
		aborts := sh.AbortsConflict.Load() + sh.AbortsCapacity.Load() +
			sh.AbortsExplicit.Load() + sh.AbortsOther.Load()
		totalCommits += commits
		totalAborts += aborts
		// Per-thread stall: aborts keep arriving but nothing commits. A
		// fully idle thread (neither moves) is not stalled.
		if commits == w.lastCommits[i] && aborts > w.lastAborts[i] {
			w.stallFor[i]++
			if w.stallFor[i] == w.cfg.StallSamples {
				w.alarm(AlarmStall, i, aborts-w.lastAborts[i])
				w.stallFor[i] = 0 // re-arm after the deadline, not per sample
			}
		} else {
			w.stallFor[i] = 0
		}
		w.lastCommits[i] = commits
		w.lastAborts[i] = aborts
	}

	// Global stall: transactions in flight (per the governor's gauge) but
	// no commit anywhere — catches workers stuck in waits that produce
	// neither commits nor aborts (a convoy on the optimistic gate).
	if w.gov != nil && totalCommits == w.lastTotal && w.gov.Inflight() > 0 {
		w.totalStall++
		if w.totalStall == w.cfg.StallSamples {
			w.alarm(AlarmStall, -1, uint64(w.gov.Inflight()))
			w.totalStall = 0
		}
	} else {
		w.totalStall = 0
	}
	w.lastTotal = totalCommits

	snap := w.stats.Snapshot()

	// Lemming pileup: escalation rate through the bounded gate wait.
	if w.cfg.LemmingPerSample > 0 {
		// A Stats.Reset between campaign phases drops counters below the
		// last sample; clamp the delta instead of underflowing.
		if d := counterDelta(snap.EscalationsLemming, w.lastLemming); d > w.cfg.LemmingPerSample {
			w.alarm(AlarmLemming, -1, d)
		}
		w.lastLemming = snap.EscalationsLemming
	}

	// Degraded-mode oscillation: mode edges within the sampling window.
	if w.cfg.OscillationWindow > 0 {
		edges := snap.DegradedEnter + snap.DegradedExit
		w.edgeWindow[w.edgeHead] = counterDelta(edges, w.lastEdges)
		w.edgeHead = (w.edgeHead + 1) % len(w.edgeWindow)
		w.lastEdges = edges
		var inWindow uint64
		for _, e := range w.edgeWindow {
			inWindow += e
		}
		if inWindow > w.cfg.OscillationEdges {
			w.alarm(AlarmOscillation, -1, inWindow)
			for i := range w.edgeWindow { // reset so one flap storm = one alarm
				w.edgeWindow[i] = 0
			}
		}
	}
}

// counterDelta is cur-last, treating a counter that moved backwards (a
// Stats.Reset between campaign phases) as restarting from zero.
func counterDelta(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// alarm records one finding everywhere it is observable: the watchdog's
// stats shard slot, the trace stream, the callback, and (for stalls, when
// configured) the forced-recovery path.
func (w *Watchdog) alarm(kind AlarmKind, thread int, value uint64) {
	w.alarms.Add(1)
	w.sh.WatchdogAlarms.Inc()
	if w.buf != nil {
		arg := uint64(kind)<<32 | uint64(uint32(int32(thread)))
		w.buf.RecordMark(trace.Now(), trace.EvWatchdog, arg)
	}
	if w.onAlarm != nil {
		w.onAlarm(Alarm{Kind: kind, Thread: thread, Value: value})
	}
	if kind == AlarmStall && w.cfg.RecoverStall && w.degrader != nil {
		w.degrader.BumpPressure(w.cfg.RecoverPressure)
	}
}
