// Package governor is the resource-governance layer over the transactional
// execution kernel: the part of the stack that *acts* on sustained
// best-effort-HTM failure instead of merely absorbing it. The paper's
// premise is that hardware transactions may always fail for reasons the
// program never caused; the retry/escalation machinery in internal/exec
// guarantees each individual transaction completes, but gives no global
// policy. The governor adds three:
//
//   - Admission control: per-transaction time and attempt budgets bound how
//     long one transaction may stay optimistic before it is serialized, and
//     a concurrency ceiling sheds load by serializing (or, at a service
//     boundary, rejecting) transactions that arrive beyond it.
//   - A per-thread HTM circuit breaker: after a run of transactions that
//     suffered hardware aborts and were only saved by the global-lock path,
//     the thread stops attempting hardware at all and goes direct to the
//     slow path; a half-open probe every few transactions retries the
//     hardware so the fast and partitioned paths come back as soon as
//     hardware transactions succeed again.
//   - A progress watchdog (watchdog.go): a sampling monitor over the
//     per-thread stats shards that detects stalled workers, lemming-wait
//     pileups, and degraded-mode oscillation.
//
// The per-transaction hooks — Begin, ChargeAttempt, NoteHWAbort, Finish —
// are allocation-free and touch only the calling thread's cache-line-padded
// State (plus one shared counter when a concurrency ceiling is set), so an
// attached-but-idle governor costs the kernel a few branches per
// transaction. The hooks are pure state machines: the kernel owns all stats
// recording and trace emission, keyed off the returned verdicts and
// transitions. None of the hooks may be called from inside a hardware
// window (parthtm-vet's htmregion analyzer enforces this, and checks the
// hooks allocation-free).
package governor

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Verdict is the admission decision for one transaction.
type Verdict uint8

const (
	// Admit runs the transaction through the normal level schedule.
	Admit Verdict = iota
	// Probe is Admit while the breaker is open: the transaction retries
	// the hardware levels as a half-open probe, and its outcome decides
	// whether the breaker closes.
	Probe
	// Serialize sends the transaction straight to the guaranteed slow
	// path. Inside the kernel this is the strongest possible response —
	// Atomic must commit; callers at a service boundary that can refuse
	// work use TryAcquire/Release instead, where shedding is a rejection.
	Serialize
)

// Reason explains a Serialize verdict.
type Reason uint8

const (
	// ReasonNone accompanies Admit and Probe.
	ReasonNone Reason = iota
	// ReasonOverload is admission-control load shedding: more transactions
	// in flight than the configured ceiling.
	ReasonOverload
	// ReasonBreaker is an open circuit breaker: this thread's hardware has
	// been failing persistently.
	ReasonBreaker
)

// Transition is a circuit-breaker state change observed at Finish.
type Transition uint8

const (
	// TransNone: no breaker edge.
	TransNone Transition = iota
	// TransTrip: the breaker opened (persistent HTM-path failure).
	TransTrip
	// TransClose: the breaker closed (a probe committed in hardware).
	TransClose
)

// Config tunes one Governor. The zero value disables every mechanism; use
// DefaultConfig for the breaker-enabled defaults.
type Config struct {
	// TimeBudget bounds one transaction's optimistic phase: once it has
	// been running longer than this, the next attempt is skipped and the
	// transaction serializes. Zero disables the bound; AutoTune derives one
	// from observed commit latencies.
	TimeBudget time.Duration
	// AttemptBudget bounds the optimistic attempts (hardware and software)
	// one transaction makes before it serializes. Zero disables the bound.
	AttemptBudget int
	// MaxConcurrent is the admission ceiling: transactions beginning while
	// this many are already in flight are shed (serialized in the kernel,
	// rejected at TryAcquire). Zero disables shedding.
	MaxConcurrent int
	// BreakerThreshold trips a thread's circuit breaker after this many
	// consecutive transactions that suffered hardware aborts and had to be
	// saved by the global-lock path. Zero disables the breaker.
	BreakerThreshold int
	// BreakerProbeEvery, while the breaker is open, lets every Nth
	// transaction probe the hardware (half-open). Values below 1 default
	// to 16.
	BreakerProbeEvery int
	// AutoTuneFactor scales the observed p99 commit latency into a
	// TimeBudget when AutoTune is called. Values <= 0 default to 8.
	AutoTuneFactor float64
}

// DefaultConfig returns the governor defaults: breaker at 8 consecutive
// hardware-failed transactions, a probe every 16th transaction while open,
// no static time/attempt budgets (AutoTune can derive a time budget), no
// concurrency ceiling.
func DefaultConfig() Config {
	return Config{
		BreakerThreshold:  8,
		BreakerProbeEvery: 16,
		AutoTuneFactor:    8,
	}
}

// State is one thread's private governor cell: the circuit-breaker state
// machine and the current transaction's admission budget. Single-writer —
// only the owning thread's hooks touch it — and padded so neighbouring
// threads never share a cache line.
type State struct {
	deadline  int64  // absolute trace.Now() deadline; 0 = no time budget
	sinceTrip uint64 // transactions begun since the breaker last tripped
	streak    int32  // consecutive hardware-failed, lock-saved transactions
	attempts  int32  // optimistic attempts charged to the current txn
	open      bool   // breaker open: hardware attempts suspended
	probing   bool   // current transaction is a half-open probe
	sawHW     bool   // current transaction suffered >= 1 hardware abort
	_         [64 - 8 - 8 - 4 - 4 - 3]byte
}

// Open reports whether the thread's breaker is currently open.
func (st *State) Open() bool { return st.open }

// NoteHWAbort records that the current transaction suffered a hardware
// abort (breaker evidence). Owner thread only; allocation-free.
func (st *State) NoteHWAbort() { st.sawHW = true }

// Governor is one system's resource-governance state: the shared admission
// gauge plus per-thread breaker/budget cells. Attach via the system's
// SetGovernor (which forwards to exec.Runner); one Governor serves one
// system instance.
type Governor struct {
	cfg Config

	// timeBudget is the live per-transaction time budget in nanoseconds
	// (TimeBudget, unless AutoTune rewrote it). Atomic so AutoTune may run
	// while workers are admitting.
	timeBudget atomic.Int64
	// inflight is the admission gauge (only maintained when MaxConcurrent
	// or TryAcquire shedding is in use).
	inflight atomic.Int64

	mu     sync.Mutex // guards state-slice growth
	states atomic.Pointer[[]*State]
}

// New builds a governor from cfg, applying the documented defaults for
// unset breaker/auto-tune fields.
func New(cfg Config) *Governor {
	if cfg.BreakerProbeEvery < 1 {
		cfg.BreakerProbeEvery = 16
	}
	if cfg.AutoTuneFactor <= 0 {
		cfg.AutoTuneFactor = 8
	}
	g := &Governor{cfg: cfg}
	g.timeBudget.Store(int64(cfg.TimeBudget))
	return g
}

// Config returns the governor's configuration (time budget as configured;
// see TimeBudget for the live, possibly auto-tuned value).
func (g *Governor) Config() Config { return g.cfg }

// State returns thread id's governor cell, growing the set as needed.
// Callers on a measured path must cache the pointer per thread.
func (g *Governor) State(id int) *State {
	if p := g.states.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return g.growState(id)
}

func (g *Governor) growState(id int) *State {
	g.mu.Lock()
	defer g.mu.Unlock()
	var cur []*State
	if p := g.states.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) {
		return cur[id]
	}
	next := make([]*State, id+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new(State)
	}
	g.states.Store(&next)
	return next[id]
}

// NeedsTime reports whether admission needs a timestamp (a time budget is
// set): the kernel reads the clock only when it will be used.
func (g *Governor) NeedsTime() bool { return g.timeBudget.Load() > 0 }

// TimeBudget returns the live per-transaction time budget (zero when
// disabled).
func (g *Governor) TimeBudget() time.Duration {
	return time.Duration(g.timeBudget.Load())
}

// SetTimeBudget replaces the live time budget (zero disables it). Safe
// while workers run.
func (g *Governor) SetTimeBudget(d time.Duration) {
	if d < 0 {
		d = 0
	}
	g.timeBudget.Store(int64(d))
}

// Inflight returns the current admission gauge (meaningful only when a
// concurrency ceiling or TryAcquire is in use).
func (g *Governor) Inflight() int64 { return g.inflight.Load() }

// Begin admits one transaction for the owning thread of st, resetting the
// per-transaction state and returning the verdict. now is a trace.Now()
// timestamp, required only when NeedsTime() (pass 0 otherwise).
// Allocation-free. Every Begin must be paired with exactly one Finish.
func (g *Governor) Begin(st *State, now int64) (Verdict, Reason) {
	st.attempts = 0
	st.sawHW = false
	st.probing = false
	st.deadline = 0
	if now != 0 {
		if b := g.timeBudget.Load(); b > 0 {
			st.deadline = now + b
		}
	}
	if m := g.cfg.MaxConcurrent; m > 0 {
		if g.inflight.Add(1) > int64(m) {
			return Serialize, ReasonOverload
		}
	}
	if st.open {
		st.sinceTrip++
		if st.sinceTrip%uint64(g.cfg.BreakerProbeEvery) == 0 {
			st.probing = true
			return Probe, ReasonNone
		}
		return Serialize, ReasonBreaker
	}
	return Admit, ReasonNone
}

// ChargeAttempt charges one optimistic attempt against the current
// transaction's budgets, reporting false when the attempt or time budget is
// exhausted — the caller serializes instead of attempting. now carries a
// trace.Now() timestamp when NeedsTime() (pass 0 otherwise).
// Allocation-free; owner thread only.
func (g *Governor) ChargeAttempt(st *State, now int64) bool {
	st.attempts++
	if b := g.cfg.AttemptBudget; b > 0 && int(st.attempts) > b {
		return false
	}
	if st.deadline != 0 && now > st.deadline {
		return false
	}
	return true
}

// Finish closes the transaction's governor scope: the admission slot is
// released and the breaker state machine advances on the final execution
// path (a trace.Path* value). A whole-hardware commit resets the failure
// streak and closes an open breaker; a transaction that suffered hardware
// aborts and was saved by the global-lock path lengthens the streak,
// tripping the breaker at the threshold. Software commits leave the streak
// unchanged — they neither prove nor disprove the hardware.
// Allocation-free; owner thread only.
func (g *Governor) Finish(st *State, path uint8) Transition {
	if g.cfg.MaxConcurrent > 0 {
		g.inflight.Add(-1)
	}
	if g.cfg.BreakerThreshold <= 0 {
		return TransNone
	}
	switch {
	case path == trace.PathHTM:
		st.streak = 0
		if st.open {
			st.open = false
			st.sinceTrip = 0
			return TransClose
		}
	case st.open:
		// Still open: a failed probe (or a serialized transaction) keeps
		// the breaker as it is.
	case st.sawHW && path == trace.PathGL:
		st.streak++
		if int(st.streak) >= g.cfg.BreakerThreshold {
			st.open = true
			st.sinceTrip = 0
			st.streak = 0
			return TransTrip
		}
	default:
		// A software commit, or a lock-path commit with no hardware abort
		// observed (pure contention): not hardware's fault.
	}
	return TransNone
}

// TryAcquire reserves one admission slot without blocking, for callers at
// a service boundary (a server's request path) that can refuse work: false
// means the ceiling is reached and the request should be rejected or
// queued rather than started. Pair every true with one Release. With no
// ceiling configured TryAcquire always admits (and still maintains the
// gauge for observability).
func (g *Governor) TryAcquire() bool {
	n := g.inflight.Add(1)
	if m := g.cfg.MaxConcurrent; m > 0 && n > int64(m) {
		g.inflight.Add(-1)
		return false
	}
	return true
}

// Release returns a TryAcquire slot.
func (g *Governor) Release() { g.inflight.Add(-1) }

// AutoTune derives the per-transaction time budget from observed commit
// latencies: AutoTuneFactor times the slowest per-path p99 (a transaction
// that has been optimistic for several times the p99 commit latency is not
// going to win — serialize it). Snapshots with no commits leave the budget
// unchanged. Safe while workers run.
func (g *Governor) AutoTune(snap trace.LatencySnapshot) {
	var p99 int64
	for p := range snap.Path {
		if s := &snap.Path[p]; s.Count > 0 && s.P99 > p99 {
			p99 = s.P99
		}
	}
	if p99 <= 0 {
		return
	}
	g.timeBudget.Store(int64(g.cfg.AutoTuneFactor * float64(p99)))
}
