package governor

import (
	"sync"
	"testing"
	"time"

	"repro/internal/tm"
	"repro/internal/trace"
)

// collector gathers alarms thread-safely (the callback runs on the
// watchdog goroutine).
type collector struct {
	mu     sync.Mutex
	alarms []Alarm
}

func (c *collector) add(a Alarm) {
	c.mu.Lock()
	c.alarms = append(c.alarms, a)
	c.mu.Unlock()
}

func (c *collector) byKind(k AlarmKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, a := range c.alarms {
		if a.Kind == k {
			n++
		}
	}
	return n
}

// newTestWatchdog builds a watchdog sampling fast enough for test use.
func newTestWatchdog(stats *tm.Stats, threads int, mut func(*WatchdogConfig)) (*Watchdog, *collector) {
	cfg := DefaultWatchdogConfig()
	cfg.Interval = time.Millisecond
	cfg.StallSamples = 3
	if mut != nil {
		mut(&cfg)
	}
	w := NewWatchdog(cfg, stats, threads)
	c := &collector{}
	w.OnAlarm(c.add)
	return w, c
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatchdogStallDetection(t *testing.T) {
	stats := &tm.Stats{}
	w, c := newTestWatchdog(stats, 2, nil)
	w.Start()
	defer w.Stop()

	// Thread 0 commits steadily; thread 1 only aborts: a stall.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sh0, sh1 := stats.Shard(0), stats.Shard(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh0.CommitsSW.Inc()
			sh1.AbortsConflict.Inc()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitFor(t, func() bool { return c.byKind(AlarmStall) > 0 }, "stall alarm")
	close(stop)
	wg.Wait()

	c.mu.Lock()
	var found *Alarm
	for i := range c.alarms {
		if c.alarms[i].Kind == AlarmStall {
			found = &c.alarms[i]
			break
		}
	}
	c.mu.Unlock()
	if found.Thread != 1 {
		t.Fatalf("stall attributed to thread %d, want 1", found.Thread)
	}
	if got := stats.Snapshot().WatchdogAlarms; got == 0 {
		t.Fatal("WatchdogAlarms counter not recorded")
	}
}

func TestWatchdogNoAlarmWhenIdleOrProgressing(t *testing.T) {
	stats := &tm.Stats{}
	w, c := newTestWatchdog(stats, 2, nil)
	w.Start()
	// Idle system: nothing moves, no alarm.
	time.Sleep(20 * time.Millisecond)
	// Progressing system: commits and aborts both advance.
	sh := stats.Shard(0)
	for i := 0; i < 10; i++ {
		sh.CommitsHTM.Inc()
		sh.AbortsConflict.Inc()
		time.Sleep(2 * time.Millisecond)
	}
	w.Stop()
	c.mu.Lock()
	n := len(c.alarms)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d alarms on a healthy system, want 0: %+v", n, c.alarms)
	}
}

func TestWatchdogGlobalStallViaInflightGauge(t *testing.T) {
	stats := &tm.Stats{}
	g := New(Config{MaxConcurrent: 8})
	w, c := newTestWatchdog(stats, 2, nil)
	w.AttachGovernor(g)
	w.Start()
	defer w.Stop()

	// Transactions in flight, but no commits and no aborts anywhere — a
	// convoy producing no counter movement at all.
	g.Begin(g.State(0), 0)
	waitFor(t, func() bool { return c.byKind(AlarmStall) > 0 }, "global stall alarm")
}

func TestWatchdogLemmingPileup(t *testing.T) {
	stats := &tm.Stats{}
	w, c := newTestWatchdog(stats, 1, func(cfg *WatchdogConfig) {
		cfg.LemmingPerSample = 10
	})
	w.Start()
	defer w.Stop()
	sh := stats.Shard(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.EscalationsLemming.Add(100)
			sh.CommitsGL.Inc() // progressing, so no stall alarm interferes
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitFor(t, func() bool { return c.byKind(AlarmLemming) > 0 }, "lemming alarm")
	close(stop)
	wg.Wait()
}

func TestWatchdogDegradedOscillation(t *testing.T) {
	stats := &tm.Stats{}
	w, c := newTestWatchdog(stats, 1, func(cfg *WatchdogConfig) {
		cfg.OscillationWindow = 10
		cfg.OscillationEdges = 4
	})
	w.Start()
	defer w.Stop()
	sh := stats.Shard(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.DegradedEnter.Inc()
			sh.DegradedExit.Inc()
			sh.CommitsGL.Inc()
			sh.AbortsConflict.Inc()
			time.Sleep(time.Millisecond)
		}
	}()
	waitFor(t, func() bool { return c.byKind(AlarmOscillation) > 0 }, "oscillation alarm")
	close(stop)
	wg.Wait()
}

// fakeDegrader records forced-recovery requests.
type fakeDegrader struct{ n atomic64 }

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (d *fakeDegrader) BumpPressure(n int64) {
	d.n.mu.Lock()
	d.n.v += n
	d.n.mu.Unlock()
}
func (d *fakeDegrader) load() int64 {
	d.n.mu.Lock()
	defer d.n.mu.Unlock()
	return d.n.v
}

func TestWatchdogForcedRecovery(t *testing.T) {
	stats := &tm.Stats{}
	d := &fakeDegrader{}
	w, _ := newTestWatchdog(stats, 1, func(cfg *WatchdogConfig) {
		cfg.RecoverStall = true
		cfg.RecoverPressure = 7
	})
	w.SetDegrader(d)
	w.Start()
	defer w.Stop()
	sh := stats.Shard(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.AbortsOther.Inc()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitFor(t, func() bool { return d.load() >= 7 }, "forced recovery bump")
	close(stop)
	wg.Wait()
}

// TestWatchdogTraceAndShardSlots pins that the watchdog writes only its own
// slot (index = worker count) in both the stats shards and the trace sink —
// the single-writer discipline the analyzers enforce for workers.
func TestWatchdogTraceAndShardSlots(t *testing.T) {
	stats := &tm.Stats{}
	const threads = 2
	sink := trace.NewSink(64)
	w, _ := newTestWatchdog(stats, threads, nil)
	w.SetTrace(sink)
	w.Start()
	sh := stats.Shard(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.AbortsConflict.Inc()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitFor(t, func() bool { return w.Alarms() > 0 }, "alarm")
	close(stop)
	wg.Wait()
	w.Stop()

	for i := 0; i < threads; i++ {
		if got := stats.Shard(i).WatchdogAlarms.Load(); got != 0 {
			t.Fatalf("worker shard %d has WatchdogAlarms=%d, want 0", i, got)
		}
	}
	if got := stats.Shard(threads).WatchdogAlarms.Load(); got == 0 {
		t.Fatal("watchdog's own shard slot recorded nothing")
	}
	var sawMark bool
	for _, e := range sink.Events() {
		if e.Kind == trace.EvWatchdog {
			sawMark = true
			if e.Thread != int32(threads) {
				t.Fatalf("watchdog event on thread %d, want %d", e.Thread, threads)
			}
		}
	}
	if !sawMark {
		t.Fatal("no EvWatchdog event recorded")
	}
}
