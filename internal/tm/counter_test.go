package tm

import "testing"

// TestCounterNilGuard pins the nil-receiver contract: a degraded path that
// lost its shard pointer must record nothing, not crash. Counter methods
// are otherwise a plain load+store (single-writer), so the guard is the
// only defensive branch they carry.
func TestCounterNilGuard(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Load(); got != 0 {
		t.Fatalf("nil Counter.Load() = %d, want 0", got)
	}

	// Contrast with the live path: a real shard still counts.
	var sh Shard
	sh.CommitsHTM.Inc()
	sh.CommitsHTM.Add(2)
	if got := sh.CommitsHTM.Load(); got != 3 {
		t.Fatalf("Counter after Inc+Add(2) = %d, want 3", got)
	}
}
