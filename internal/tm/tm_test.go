package tm

import (
	"testing"
	"time"

	"repro/internal/htm"
)

func TestStatsCommitAndAbortTotals(t *testing.T) {
	var s Stats
	s.CommitsHTM.Add(2)
	s.CommitsSW.Add(3)
	s.CommitsGL.Add(4)
	if got := s.Commits(); got != 9 {
		t.Fatalf("Commits = %d", got)
	}
	s.RecordAbort(htm.Conflict)
	s.RecordAbort(htm.Capacity)
	s.RecordAbort(htm.Capacity)
	s.RecordAbort(htm.Explicit)
	s.RecordAbort(htm.Other)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts = %d", got)
	}
	if s.AbortsCapacity.Load() != 2 {
		t.Fatalf("capacity = %d", s.AbortsCapacity.Load())
	}
	// NoAbort must not be counted.
	s.RecordAbort(htm.NoAbort)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts after NoAbort = %d", got)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	var s Stats
	s.CommitsHTM.Add(1)
	s.RecordAbort(htm.Conflict)
	s.AddSerial(3 * time.Millisecond)
	snap := s.Snapshot()
	if snap.CommitsHTM != 1 || snap.AbortsConflict != 1 || snap.SerialNanos != int64(3*time.Millisecond) {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Commits() != 1 || snap.Aborts() != 1 {
		t.Fatal("snapshot totals wrong")
	}
	s.Reset()
	if s.Commits() != 0 || s.Aborts() != 0 || s.SerialNanos.Load() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSpinScalesRoughlyLinearly(t *testing.T) {
	// Warm up.
	Spin(10000)
	t0 := time.Now()
	for i := 0; i < 50; i++ {
		Spin(1000)
	}
	small := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 50; i++ {
		Spin(10000)
	}
	big := time.Since(t0)
	if big < small {
		t.Fatalf("Spin(10000) total %v faster than Spin(1000) total %v", big, small)
	}
}
