package tm

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/htm"
)

func TestStatsCommitAndAbortTotals(t *testing.T) {
	var s Stats
	s.CommitsHTM.Add(2)
	s.CommitsSW.Add(3)
	s.CommitsGL.Add(4)
	if got := s.Commits(); got != 9 {
		t.Fatalf("Commits = %d", got)
	}
	s.RecordAbort(htm.Conflict)
	s.RecordAbort(htm.Capacity)
	s.RecordAbort(htm.Capacity)
	s.RecordAbort(htm.Explicit)
	s.RecordAbort(htm.Other)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts = %d", got)
	}
	if s.AbortsCapacity.Load() != 2 {
		t.Fatalf("capacity = %d", s.AbortsCapacity.Load())
	}
	// NoAbort must not be counted.
	s.RecordAbort(htm.NoAbort)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts after NoAbort = %d", got)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	var s Stats
	s.CommitsHTM.Add(1)
	s.RecordAbort(htm.Conflict)
	s.AddSerial(3 * time.Millisecond)
	snap := s.Snapshot()
	if snap.CommitsHTM != 1 || snap.AbortsConflict != 1 || snap.SerialNanos != int64(3*time.Millisecond) {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Commits() != 1 || snap.Aborts() != 1 {
		t.Fatal("snapshot totals wrong")
	}
	s.Reset()
	if s.Commits() != 0 || s.Aborts() != 0 || s.SerialNanos.Load() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestStatsResetAndSnapshotCoverEveryCounter walks the Stats struct by
// reflection: every counter must survive into the same-named Snapshot field
// and be zeroed by Reset, so a counter added to Stats but forgotten in
// either fails here instead of silently leaking stale values between
// measurement phases.
func TestStatsResetAndSnapshotCoverEveryCounter(t *testing.T) {
	var s Stats
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		switch c := sv.Field(i).Addr().Interface().(type) {
		case *atomic.Uint64:
			c.Store(uint64(i + 1))
		case *atomic.Int64:
			c.Store(int64(i + 1))
		default:
			t.Fatalf("Stats field %s has unhandled type %T",
				sv.Type().Field(i).Name, c)
		}
	}
	snap := reflect.ValueOf(s.Snapshot())
	if snap.NumField() != sv.NumField() {
		t.Fatalf("Snapshot has %d fields, Stats has %d", snap.NumField(), sv.NumField())
	}
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		f := snap.FieldByName(name)
		if !f.IsValid() {
			t.Errorf("Snapshot has no field %s", name)
			continue
		}
		var got uint64
		switch v := f.Interface().(type) {
		case uint64:
			got = v
		case int64:
			got = uint64(v)
		default:
			t.Fatalf("Snapshot field %s has unhandled type %T", name, v)
		}
		if got != uint64(i+1) {
			t.Errorf("Snapshot field %s = %d, want %d", name, got, i+1)
		}
	}
	s.Reset()
	for i := 0; i < sv.NumField(); i++ {
		var got uint64
		switch c := sv.Field(i).Addr().Interface().(type) {
		case *atomic.Uint64:
			got = c.Load()
		case *atomic.Int64:
			got = uint64(c.Load())
		}
		if got != 0 {
			t.Errorf("Reset left field %s = %d", sv.Type().Field(i).Name, got)
		}
	}
}

func TestSpinScalesRoughlyLinearly(t *testing.T) {
	// Warm up.
	Spin(10000)
	t0 := time.Now()
	for i := 0; i < 50; i++ {
		Spin(1000)
	}
	small := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 50; i++ {
		Spin(10000)
	}
	big := time.Since(t0)
	if big < small {
		t.Fatalf("Spin(10000) total %v faster than Spin(1000) total %v", big, small)
	}
}
