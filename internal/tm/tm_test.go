package tm

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/htm"
)

func TestStatsCommitAndAbortTotals(t *testing.T) {
	var s Stats
	sh := s.Shard(0)
	sh.CommitsHTM.Add(2)
	sh.CommitsSW.Add(3)
	s.Shard(1).CommitsGL.Add(4)
	if got := s.Commits(); got != 9 {
		t.Fatalf("Commits = %d", got)
	}
	sh.RecordAbort(htm.Conflict)
	sh.RecordAbort(htm.Capacity)
	s.Shard(1).RecordAbort(htm.Capacity)
	sh.RecordAbort(htm.Explicit)
	sh.RecordAbort(htm.Other)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts = %d", got)
	}
	if got := s.Snapshot().AbortsCapacity; got != 2 {
		t.Fatalf("capacity = %d", got)
	}
	// NoAbort must not be counted.
	sh.RecordAbort(htm.NoAbort)
	if got := s.Aborts(); got != 5 {
		t.Fatalf("Aborts after NoAbort = %d", got)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	var s Stats
	s.Shard(0).CommitsHTM.Inc()
	s.Shard(0).RecordAbort(htm.Conflict)
	s.Shard(2).AddSerial(3 * time.Millisecond)
	snap := s.Snapshot()
	if snap.CommitsHTM != 1 || snap.AbortsConflict != 1 || snap.SerialNanos != int64(3*time.Millisecond) {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Commits() != 1 || snap.Aborts() != 1 {
		t.Fatal("snapshot totals wrong")
	}
	sh := s.Shard(0) // shard pointers stay valid across Reset
	s.Reset()
	if s.Commits() != 0 || s.Aborts() != 0 || s.SerialNanos() != 0 {
		t.Fatal("Reset incomplete")
	}
	sh.CommitsHTM.Inc()
	if s.Commits() != 1 {
		t.Fatal("pre-Reset shard pointer no longer feeds Snapshot")
	}
}

// shardCounterFields returns the names of Shard's counter fields, failing
// the test on any field that is neither a Counter nor padding.
func shardCounterFields(t *testing.T) []string {
	t.Helper()
	var names []string
	st := reflect.TypeOf(Shard{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Name == "_" {
			continue // cache-line padding
		}
		if f.Type != reflect.TypeOf(Counter{}) {
			t.Fatalf("Shard field %s has type %s, want tm.Counter", f.Name, f.Type)
		}
		names = append(names, f.Name)
	}
	return names
}

// TestShardAndSnapshotCoverEveryCounter walks the Shard struct by
// reflection: every counter must have a same-named Snapshot field, survive
// aggregation across multiple shards, and be zeroed by Reset — so a counter
// added to Shard but forgotten in Snapshot, Shard.add, Shard.reset, or the
// Snapshot struct fails here instead of silently leaking or vanishing.
func TestShardAndSnapshotCoverEveryCounter(t *testing.T) {
	names := shardCounterFields(t)
	snapType := reflect.TypeOf(Snapshot{})
	if got, want := snapType.NumField(), len(names); got != want {
		t.Fatalf("Snapshot has %d fields, Shard has %d counters", got, want)
	}

	var s Stats
	// Distinct values in two shards: field i carries i+1 in shard 0 and
	// 10*(i+1) in shard 3, so the snapshot must show 11*(i+1).
	for si, scale := range map[int]uint64{0: 1, 3: 10} {
		sv := reflect.ValueOf(s.Shard(si)).Elem()
		for i, name := range names {
			c := sv.FieldByName(name).Addr().Interface().(*Counter)
			c.Add(scale * uint64(i+1))
		}
	}
	snap := reflect.ValueOf(s.Snapshot())
	for i, name := range names {
		f := snap.FieldByName(name)
		if !f.IsValid() {
			t.Errorf("Snapshot has no field %s", name)
			continue
		}
		var got uint64
		switch v := f.Interface().(type) {
		case uint64:
			got = v
		case int64:
			got = uint64(v)
		default:
			t.Fatalf("Snapshot field %s has unhandled type %T", name, v)
		}
		if want := 11 * uint64(i+1); got != want {
			t.Errorf("Snapshot field %s = %d, want %d", name, got, want)
		}
	}

	s.Reset()
	for _, si := range []int{0, 3} {
		sv := reflect.ValueOf(s.Shard(si)).Elem()
		for _, name := range names {
			c := sv.FieldByName(name).Addr().Interface().(*Counter)
			if got := c.Load(); got != 0 {
				t.Errorf("Reset left shard %d field %s = %d", si, name, got)
			}
		}
	}
}

// TestShardPadding: a shard must span whole cache lines so two threads'
// shards never share one.
func TestShardPadding(t *testing.T) {
	if sz := reflect.TypeOf(Shard{}).Size(); sz%64 != 0 {
		t.Fatalf("Shard size %d is not a multiple of the 64-byte line", sz)
	}
}

// TestStatsParallelHammer drives every counter from many goroutines — one
// per shard, the single-writer discipline the systems follow — while other
// goroutines take snapshots mid-flight, and asserts the final Snapshot
// equals the per-thread activity exactly. Run with -race this also proves
// the load+store increment discipline is data-race-free against concurrent
// readers.
func TestStatsParallelHammer(t *testing.T) {
	const threads = 8
	const perThread = 5000
	var s Stats
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent snapshot readers: totals observed mid-flight must never
	// exceed the final totals and never go backwards.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := s.Snapshot().Commits()
				if got < last {
					t.Errorf("snapshot went backwards: %d after %d", got, last)
					return
				}
				last = got
			}
		}()
	}

	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			sh := s.Shard(th)
			for i := 0; i < perThread; i++ {
				switch i % 3 {
				case 0:
					sh.CommitsHTM.Inc()
				case 1:
					sh.CommitsSW.Inc()
				case 2:
					sh.CommitsGL.Inc()
				}
				sh.RecordAbort(htm.AbortReason(1 + i%4))
				sh.AddSerial(time.Nanosecond)
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := s.Snapshot()
	if got, want := snap.Commits(), uint64(threads*perThread); got != want {
		t.Fatalf("Commits = %d, want %d", got, want)
	}
	if got, want := snap.Aborts(), uint64(threads*perThread); got != want {
		t.Fatalf("Aborts = %d, want %d", got, want)
	}
	if got, want := snap.SerialNanos, int64(threads*perThread); got != want {
		t.Fatalf("SerialNanos = %d, want %d", got, want)
	}
	// Per-shard activity must sum to the whole: no counts leaked across
	// shards, none lost.
	var perShard uint64
	for th := 0; th < threads; th++ {
		sh := s.Shard(th)
		perShard += sh.CommitsHTM.Load() + sh.CommitsSW.Load() + sh.CommitsGL.Load()
	}
	if perShard != snap.Commits() {
		t.Fatalf("sum of shards %d != snapshot %d", perShard, snap.Commits())
	}
}

func TestSpinScalesRoughlyLinearly(t *testing.T) {
	// Warm up.
	Spin(10000)
	t0 := time.Now()
	for i := 0; i < 50; i++ {
		Spin(1000)
	}
	small := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 50; i++ {
		Spin(10000)
	}
	big := time.Since(t0)
	if big < small {
		t.Fatalf("Spin(10000) total %v faster than Spin(1000) total %v", big, small)
	}
}

// TestAccessorsResnapshotButSnapshotIsCoherent pins the contract the doc
// comment on the accessors states: each accessor call re-sums the live
// shards (two calls straddling an increment disagree), while a Snapshot,
// once taken, is one coherent value copy — every figure derived from it
// stays mutually consistent no matter what the shards do afterwards. A
// report line must therefore be built from a single Snapshot.
func TestAccessorsResnapshotButSnapshotIsCoherent(t *testing.T) {
	var st Stats
	sh := st.Shard(0)
	sh.CommitsHTM.Inc()
	sh.AbortsConflict.Inc()

	snap := st.Snapshot()
	before := st.Commits()

	// The run moves on underneath the accessors...
	sh.CommitsSW.Inc()
	sh.AbortsCapacity.Inc()

	if after := st.Commits(); after == before {
		t.Fatalf("accessor calls must re-sum the live shards: %d == %d", after, before)
	}
	// ...but the snapshot taken earlier is frozen, and self-consistent:
	if snap.Commits() != 1 || snap.Aborts() != 1 {
		t.Fatalf("snapshot drifted after it was taken: commits=%d aborts=%d",
			snap.Commits(), snap.Aborts())
	}
	if snap.Commits() != snap.CommitsHTM+snap.CommitsSW+snap.CommitsGL {
		t.Fatal("snapshot-derived sum inconsistent with its own fields")
	}
}
