// Package tm defines the protocol-neutral transactional-memory API that
// every system in this repository implements — Part-HTM, Part-HTM-O, and
// the competitors (HTM-GL, RingSTM, NOrec, NOrecRH) — so that workloads are
// written once and run unchanged against each, exactly as the paper's
// evaluation requires.
package tm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/htm"
	"repro/internal/mem"
)

// Tx is the transactional view a workload body operates through. A body may
// be executed several times (aborted attempts are retried by the System),
// so it must be a pure function of its inputs and the values it Reads:
// derive randomness and parameters outside Atomic.
type Tx interface {
	// Read returns the word at a within the transaction.
	Read(a mem.Addr) uint64
	// Write sets the word at a within the transaction.
	Write(a mem.Addr, v uint64)
	// WriteLocal sets a word that is private to the calling thread (a
	// scratch buffer, like STAMP labyrinth's private grid copy). Inside a
	// hardware transaction it still occupies write-buffer capacity — the
	// hardware buffers every store — but the software frameworks do not
	// instrument it: no read/write signatures, no locks, no undo logging.
	// The word's post-transaction value is unspecified if the transaction
	// aborts; only thread-private data may be written through it.
	WriteLocal(a mem.Addr, v uint64)
	// Work models transactional computation of c cycles between memory
	// accesses: it counts against the hardware timer quantum when executed
	// inside a hardware transaction.
	Work(c int64)
	// NonTxWork models computation that is not semantically transactional.
	// Systems that must run it inside a hardware transaction anyway
	// (HTM-GL's single hardware transaction) pay its quantum cost; Part-HTM
	// runs it in the software framework, outside sub-HTM transactions.
	NonTxWork(c int64)
	// Pause marks a partition point: a position where Part-HTM may split
	// the transaction into sub-HTM transactions (the paper's statically
	// profiled breaking points). All other systems ignore it.
	Pause()
	// Thread returns the executing thread's index.
	Thread() int
}

// System is one complete transactional-memory implementation.
type System interface {
	// Name identifies the system in benchmark output ("Part-HTM", ...).
	Name() string
	// Atomic executes body as one transaction on behalf of thread,
	// retrying internally until it commits. thread must be in [0, threads)
	// and each thread value must be used by at most one goroutine at a
	// time.
	Atomic(thread int, body func(Tx))
	// Stats returns the system's commit/abort counters.
	Stats() *Stats
	// Memory returns the simulated memory the system operates on.
	Memory() *mem.Memory
}

// Counter is one sharded counter cell. It is single-writer: only the
// thread owning the enclosing Shard increments it, so an increment is a
// plain load+store pair on a private cache line — no cross-thread
// read-modify-write. It is NOT safe for concurrent writers: two threads
// incrementing the same Counter lose updates (the parthtm-vet
// singlewriter analyzer enforces the ownership rule statically). Any
// thread may read it concurrently (Snapshot does).
//
// All methods tolerate a nil receiver as a no-op, so degraded paths that
// lost their shard pointer record nothing rather than crash.
type Counter struct{ v atomic.Uint64 }

// Inc adds one (owner thread only).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Store(c.v.Load() + 1)
}

// Add adds n (owner thread only).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(c.v.Load() + n)
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Shard is one thread's private cell of the Stats counters. Commit counters
// are split by execution path so Table 1 of the paper can be regenerated;
// abort counters follow the hardware abort taxonomy with
// Aborted-by-validation mapped to Conflict. Field names mirror Snapshot
// field for field (enforced by reflection in the tests).
type Shard struct {
	CommitsHTM Counter // committed as a single hardware transaction
	CommitsSW  Counter // committed by the software framework / STM path
	CommitsGL  Counter // committed under the global lock

	AbortsConflict Counter
	AbortsCapacity Counter
	AbortsExplicit Counter
	AbortsOther    Counter

	// SerialNanos accumulates time spent in globally serializing critical
	// sections — global-lock holds, STM write-back windows, ring-entry
	// publication — during which no other transaction can commit. The
	// harness uses it to project single-core measurements onto N cores
	// (Amdahl): estimated wall = serial + (measured - serial)/N.
	SerialNanos Counter

	// Contention-manager escalations: transactions forced onto the
	// global-lock path ahead of the normal retry schedule because the
	// hardware-abort budget ran out, because the starving transaction won
	// eldest priority, or because the bounded lemming-wait on the global
	// lock expired.
	EscalationsBudget  Counter
	EscalationsStarve  Counter
	EscalationsLemming Counter

	// Graceful degradation: entries into and exits from the degraded
	// serialized mode, and transactions committed while it was active.
	DegradedEnter   Counter
	DegradedExit    Counter
	DegradedCommits Counter

	// FaultsInjected counts aborts this system absorbed that were forced by
	// the fault injector (exactly zero when no injector is installed).
	FaultsInjected Counter

	// Resource-governor outcomes (exactly zero when no governor is
	// attached). ShedSerialized counts transactions sent straight to the
	// slow path by admission-control load shedding; BudgetSerialized counts
	// transactions whose optimistic phase was cut short by the per-
	// transaction time or attempt budget. The breaker counters follow the
	// per-thread HTM circuit breaker: trips (closed→open), half-open probe
	// transactions, closes (probe committed in hardware), and transactions
	// routed direct-to-slow while open. WatchdogAlarms counts progress-
	// watchdog alarms (recorded by the watchdog's own shard slot).
	ShedSerialized   Counter
	BudgetSerialized Counter
	BreakerTrips     Counter
	BreakerProbes    Counter
	BreakerCloses    Counter
	BreakerSlow      Counter
	WatchdogAlarms   Counter

	// Sharded memory domains (exactly zero on single-domain topologies).
	// CrossDomainCommits/CrossDomainAborts count committed and aborted
	// attempts whose footprint touched two or more domains;
	// DomainRingRollovers counts validations that failed because a domain's
	// ring lapped the validator.
	CrossDomainCommits  Counter
	CrossDomainAborts   Counter
	DomainRingRollovers Counter

	// Padding to a multiple of the cache-line size so neighbouring shards
	// never share a line even if an allocator packs them back to back.
	_ [64 - (25*8)%64]byte
}

// AddSerial records d of globally serialized execution.
func (sh *Shard) AddSerial(d time.Duration) { sh.SerialNanos.Add(uint64(d)) }

// RecordAbort classifies an abort result into the counters.
func (sh *Shard) RecordAbort(r htm.AbortReason) {
	switch r {
	case htm.Conflict:
		sh.AbortsConflict.Inc()
	case htm.Capacity:
		sh.AbortsCapacity.Inc()
	case htm.Explicit:
		sh.AbortsExplicit.Inc()
	case htm.Other:
		sh.AbortsOther.Inc()
	}
}

// reset zeroes every counter of the shard.
func (sh *Shard) reset() {
	sh.CommitsHTM.v.Store(0)
	sh.CommitsSW.v.Store(0)
	sh.CommitsGL.v.Store(0)
	sh.AbortsConflict.v.Store(0)
	sh.AbortsCapacity.v.Store(0)
	sh.AbortsExplicit.v.Store(0)
	sh.AbortsOther.v.Store(0)
	sh.SerialNanos.v.Store(0)
	sh.EscalationsBudget.v.Store(0)
	sh.EscalationsStarve.v.Store(0)
	sh.EscalationsLemming.v.Store(0)
	sh.DegradedEnter.v.Store(0)
	sh.DegradedExit.v.Store(0)
	sh.DegradedCommits.v.Store(0)
	sh.FaultsInjected.v.Store(0)
	sh.ShedSerialized.v.Store(0)
	sh.BudgetSerialized.v.Store(0)
	sh.BreakerTrips.v.Store(0)
	sh.BreakerProbes.v.Store(0)
	sh.BreakerCloses.v.Store(0)
	sh.BreakerSlow.v.Store(0)
	sh.WatchdogAlarms.v.Store(0)
	sh.CrossDomainCommits.v.Store(0)
	sh.CrossDomainAborts.v.Store(0)
	sh.DomainRingRollovers.v.Store(0)
}

// add folds the shard into a snapshot.
func (sh *Shard) add(out *Snapshot) {
	out.CommitsHTM += sh.CommitsHTM.Load()
	out.CommitsSW += sh.CommitsSW.Load()
	out.CommitsGL += sh.CommitsGL.Load()
	out.AbortsConflict += sh.AbortsConflict.Load()
	out.AbortsCapacity += sh.AbortsCapacity.Load()
	out.AbortsExplicit += sh.AbortsExplicit.Load()
	out.AbortsOther += sh.AbortsOther.Load()
	out.SerialNanos += int64(sh.SerialNanos.Load())
	out.EscalationsBudget += sh.EscalationsBudget.Load()
	out.EscalationsStarve += sh.EscalationsStarve.Load()
	out.EscalationsLemming += sh.EscalationsLemming.Load()
	out.DegradedEnter += sh.DegradedEnter.Load()
	out.DegradedExit += sh.DegradedExit.Load()
	out.DegradedCommits += sh.DegradedCommits.Load()
	out.FaultsInjected += sh.FaultsInjected.Load()
	out.ShedSerialized += sh.ShedSerialized.Load()
	out.BudgetSerialized += sh.BudgetSerialized.Load()
	out.BreakerTrips += sh.BreakerTrips.Load()
	out.BreakerProbes += sh.BreakerProbes.Load()
	out.BreakerCloses += sh.BreakerCloses.Load()
	out.BreakerSlow += sh.BreakerSlow.Load()
	out.WatchdogAlarms += sh.WatchdogAlarms.Load()
	out.CrossDomainCommits += sh.CrossDomainCommits.Load()
	out.CrossDomainAborts += sh.CrossDomainAborts.Load()
	out.DomainRingRollovers += sh.DomainRingRollovers.Load()
}

// Stats aggregates transaction outcomes across per-thread shards. The hot
// path — a commit or abort increment — touches only the calling thread's
// cache-line-padded Shard; the shards are summed only when a report is
// taken via Snapshot (or the aggregate helpers). The zero value is ready to
// use: shards materialize on first access.
type Stats struct {
	mu     sync.Mutex // guards shard-slice growth
	shards atomic.Pointer[[]*Shard]
}

// Shard returns thread's private counter cell, growing the shard set as
// needed. Callers on a measured path should cache the pointer per thread.
func (s *Stats) Shard(thread int) *Shard {
	if p := s.shards.Load(); p != nil && thread < len(*p) {
		return (*p)[thread]
	}
	return s.growShard(thread)
}

func (s *Stats) growShard(thread int) *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*Shard
	if p := s.shards.Load(); p != nil {
		cur = *p
	}
	if thread < len(cur) {
		return cur[thread]
	}
	next := make([]*Shard, thread+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new(Shard)
	}
	s.shards.Store(&next)
	return next[thread]
}

// all returns the current shard set.
func (s *Stats) all() []*Shard {
	if p := s.shards.Load(); p != nil {
		return *p
	}
	return nil
}

// The convenience accessors below each take a full Snapshot per call:
// two calls sum the live shards twice and may observe different values
// while workers are running. When a report line needs more than one
// figure, call Snapshot() once and read the fields of that one coherent
// copy instead.

// Escalations returns the total contention-manager escalations.
func (s *Stats) Escalations() uint64 { return s.Snapshot().Escalations() }

// Commits returns the total committed transactions across all paths.
func (s *Stats) Commits() uint64 { return s.Snapshot().Commits() }

// Aborts returns the total aborted transaction attempts.
func (s *Stats) Aborts() uint64 { return s.Snapshot().Aborts() }

// SerialNanos returns the accumulated globally-serialized execution time.
func (s *Stats) SerialNanos() int64 { return s.Snapshot().SerialNanos }

// Reset zeroes every counter (between measurement phases). Existing Shard
// pointers remain valid: counters are cleared in place.
func (s *Stats) Reset() {
	for _, sh := range s.all() {
		sh.reset()
	}
}

// Snapshot is a plain copy of the counters for reporting.
type Snapshot struct {
	CommitsHTM          uint64 `json:"commits_htm"`
	CommitsSW           uint64 `json:"commits_sw"`
	CommitsGL           uint64 `json:"commits_gl"`
	AbortsConflict      uint64 `json:"aborts_conflict"`
	AbortsCapacity      uint64 `json:"aborts_capacity"`
	AbortsExplicit      uint64 `json:"aborts_explicit"`
	AbortsOther         uint64 `json:"aborts_other"`
	SerialNanos         int64  `json:"serial_nanos"`
	EscalationsBudget   uint64 `json:"escalations_budget"`
	EscalationsStarve   uint64 `json:"escalations_starve"`
	EscalationsLemming  uint64 `json:"escalations_lemming"`
	DegradedEnter       uint64 `json:"degraded_enter"`
	DegradedExit        uint64 `json:"degraded_exit"`
	DegradedCommits     uint64 `json:"degraded_commits"`
	FaultsInjected      uint64 `json:"faults_injected"`
	ShedSerialized      uint64 `json:"shed_serialized,omitempty"`
	BudgetSerialized    uint64 `json:"budget_serialized,omitempty"`
	BreakerTrips        uint64 `json:"breaker_trips,omitempty"`
	BreakerProbes       uint64 `json:"breaker_probes,omitempty"`
	BreakerCloses       uint64 `json:"breaker_closes,omitempty"`
	BreakerSlow         uint64 `json:"breaker_slow,omitempty"`
	WatchdogAlarms      uint64 `json:"watchdog_alarms,omitempty"`
	CrossDomainCommits  uint64 `json:"cross_domain_commits,omitempty"`
	CrossDomainAborts   uint64 `json:"cross_domain_aborts,omitempty"`
	DomainRingRollovers uint64 `json:"domain_ring_rollovers,omitempty"`
}

// Snapshot sums the per-thread shards into one coherent copy.
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	for _, sh := range s.all() {
		sh.add(&out)
	}
	return out
}

// sub returns a-b clamped at zero, so a counter that was Reset between
// two snapshots (prev larger than cur) reads as zero progress instead of
// wrapping around.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Delta returns the per-counter difference s - prev, each field clamped
// at zero. It turns two cumulative snapshots into the activity between
// them — the rate view the live telemetry plane renders — and tolerates a
// Stats.Reset between the two samples (every field of the later snapshot
// is then smaller, and the delta reads zero rather than underflowing).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		CommitsHTM:          sub(s.CommitsHTM, prev.CommitsHTM),
		CommitsSW:           sub(s.CommitsSW, prev.CommitsSW),
		CommitsGL:           sub(s.CommitsGL, prev.CommitsGL),
		AbortsConflict:      sub(s.AbortsConflict, prev.AbortsConflict),
		AbortsCapacity:      sub(s.AbortsCapacity, prev.AbortsCapacity),
		AbortsExplicit:      sub(s.AbortsExplicit, prev.AbortsExplicit),
		AbortsOther:         sub(s.AbortsOther, prev.AbortsOther),
		EscalationsBudget:   sub(s.EscalationsBudget, prev.EscalationsBudget),
		EscalationsStarve:   sub(s.EscalationsStarve, prev.EscalationsStarve),
		EscalationsLemming:  sub(s.EscalationsLemming, prev.EscalationsLemming),
		DegradedEnter:       sub(s.DegradedEnter, prev.DegradedEnter),
		DegradedExit:        sub(s.DegradedExit, prev.DegradedExit),
		DegradedCommits:     sub(s.DegradedCommits, prev.DegradedCommits),
		FaultsInjected:      sub(s.FaultsInjected, prev.FaultsInjected),
		ShedSerialized:      sub(s.ShedSerialized, prev.ShedSerialized),
		BudgetSerialized:    sub(s.BudgetSerialized, prev.BudgetSerialized),
		BreakerTrips:        sub(s.BreakerTrips, prev.BreakerTrips),
		BreakerProbes:       sub(s.BreakerProbes, prev.BreakerProbes),
		BreakerCloses:       sub(s.BreakerCloses, prev.BreakerCloses),
		BreakerSlow:         sub(s.BreakerSlow, prev.BreakerSlow),
		WatchdogAlarms:      sub(s.WatchdogAlarms, prev.WatchdogAlarms),
		CrossDomainCommits:  sub(s.CrossDomainCommits, prev.CrossDomainCommits),
		CrossDomainAborts:   sub(s.CrossDomainAborts, prev.CrossDomainAborts),
		DomainRingRollovers: sub(s.DomainRingRollovers, prev.DomainRingRollovers),
	}
	if s.SerialNanos > prev.SerialNanos {
		d.SerialNanos = s.SerialNanos - prev.SerialNanos
	}
	return d
}

// Escalations of the snapshot across all escalation kinds.
func (s Snapshot) Escalations() uint64 {
	return s.EscalationsBudget + s.EscalationsStarve + s.EscalationsLemming
}

// Commits of the snapshot across all paths.
func (s Snapshot) Commits() uint64 { return s.CommitsHTM + s.CommitsSW + s.CommitsGL }

// Aborts of the snapshot across all reasons.
func (s Snapshot) Aborts() uint64 {
	return s.AbortsConflict + s.AbortsCapacity + s.AbortsExplicit + s.AbortsOther
}

// Software-barrier cost calibration.
//
// The simulator's base memory access (a striped-lock word access, ~50ns)
// stands in for a ~1ns hardware cache access, which deflates every
// *software* overhead around it by more than an order of magnitude relative
// to real machines. To preserve the paper's cost ordering — hardware
// transactional accesses ≈ free, lightly-instrumented sub-HTM accesses
// slightly dearer, full STM barriers several times dearer — the pure-STM
// systems (NOrec, RingSTM, and NOrecRH's software path) charge these
// additional Spin units per barrier, calibrated so an STM read costs ~4x a
// plain simulated access, matching the relative per-barrier costs reported
// for these algorithms on real hardware.
const (
	// SWReadBarrier is the extra modelled cost of one STM read barrier.
	SWReadBarrier = 150
	// SWWriteBarrier is the extra modelled cost of one STM write barrier.
	SWWriteBarrier = 100
)

// Spin burns roughly c small work units of CPU so that modelled computation
// consumes real wall-clock time in throughput measurements. Long
// computations yield periodically so that, on hosts with fewer cores than
// worker threads, transactions still interleave at fine grain — without
// the yields, timeshared goroutines would almost never overlap and
// contention phenomena (conflict aborts, lock waiting) would vanish from
// the measurements.
func Spin(c int64) {
	var x int64
	for i := int64(0); i < c; i++ {
		x += i ^ (x >> 3)
		if i&4095 == 4095 {
			spinSink.Store(x)
			runtime.Gosched()
		}
	}
	spinSink.Store(x) // keep the loop from being optimized away
}

var spinSink atomic.Int64
