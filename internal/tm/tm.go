// Package tm defines the protocol-neutral transactional-memory API that
// every system in this repository implements — Part-HTM, Part-HTM-O, and
// the competitors (HTM-GL, RingSTM, NOrec, NOrecRH) — so that workloads are
// written once and run unchanged against each, exactly as the paper's
// evaluation requires.
package tm

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/htm"
	"repro/internal/mem"
)

// Tx is the transactional view a workload body operates through. A body may
// be executed several times (aborted attempts are retried by the System),
// so it must be a pure function of its inputs and the values it Reads:
// derive randomness and parameters outside Atomic.
type Tx interface {
	// Read returns the word at a within the transaction.
	Read(a mem.Addr) uint64
	// Write sets the word at a within the transaction.
	Write(a mem.Addr, v uint64)
	// WriteLocal sets a word that is private to the calling thread (a
	// scratch buffer, like STAMP labyrinth's private grid copy). Inside a
	// hardware transaction it still occupies write-buffer capacity — the
	// hardware buffers every store — but the software frameworks do not
	// instrument it: no read/write signatures, no locks, no undo logging.
	// The word's post-transaction value is unspecified if the transaction
	// aborts; only thread-private data may be written through it.
	WriteLocal(a mem.Addr, v uint64)
	// Work models transactional computation of c cycles between memory
	// accesses: it counts against the hardware timer quantum when executed
	// inside a hardware transaction.
	Work(c int64)
	// NonTxWork models computation that is not semantically transactional.
	// Systems that must run it inside a hardware transaction anyway
	// (HTM-GL's single hardware transaction) pay its quantum cost; Part-HTM
	// runs it in the software framework, outside sub-HTM transactions.
	NonTxWork(c int64)
	// Pause marks a partition point: a position where Part-HTM may split
	// the transaction into sub-HTM transactions (the paper's statically
	// profiled breaking points). All other systems ignore it.
	Pause()
	// Thread returns the executing thread's index.
	Thread() int
}

// System is one complete transactional-memory implementation.
type System interface {
	// Name identifies the system in benchmark output ("Part-HTM", ...).
	Name() string
	// Atomic executes body as one transaction on behalf of thread,
	// retrying internally until it commits. thread must be in [0, threads)
	// and each thread value must be used by at most one goroutine at a
	// time.
	Atomic(thread int, body func(Tx))
	// Stats returns the system's commit/abort counters.
	Stats() *Stats
	// Memory returns the simulated memory the system operates on.
	Memory() *mem.Memory
}

// Stats aggregates transaction outcomes. Commit counters are split by
// execution path so Table 1 of the paper can be regenerated; abort counters
// follow the hardware abort taxonomy with Aborted-by-validation mapped to
// Conflict.
type Stats struct {
	CommitsHTM atomic.Uint64 // committed as a single hardware transaction
	CommitsSW  atomic.Uint64 // committed by the software framework / STM path
	CommitsGL  atomic.Uint64 // committed under the global lock

	AbortsConflict atomic.Uint64
	AbortsCapacity atomic.Uint64
	AbortsExplicit atomic.Uint64
	AbortsOther    atomic.Uint64

	// SerialNanos accumulates time spent in globally serializing critical
	// sections — global-lock holds, STM write-back windows, ring-entry
	// publication — during which no other transaction can commit. The
	// harness uses it to project single-core measurements onto N cores
	// (Amdahl): estimated wall = serial + (measured - serial)/N.
	SerialNanos atomic.Int64

	// Contention-manager escalations: transactions forced onto the
	// global-lock path ahead of the normal retry schedule because the
	// hardware-abort budget ran out, because the starving transaction won
	// eldest priority, or because the bounded lemming-wait on the global
	// lock expired.
	EscalationsBudget  atomic.Uint64
	EscalationsStarve  atomic.Uint64
	EscalationsLemming atomic.Uint64

	// Graceful degradation: entries into and exits from the degraded
	// serialized mode, and transactions committed while it was active.
	DegradedEnter   atomic.Uint64
	DegradedExit    atomic.Uint64
	DegradedCommits atomic.Uint64

	// FaultsInjected counts aborts this system absorbed that were forced by
	// the fault injector (exactly zero when no injector is installed).
	FaultsInjected atomic.Uint64
}

// Escalations returns the total contention-manager escalations.
func (s *Stats) Escalations() uint64 {
	return s.EscalationsBudget.Load() + s.EscalationsStarve.Load() +
		s.EscalationsLemming.Load()
}

// AddSerial records d of globally serialized execution.
func (s *Stats) AddSerial(d time.Duration) { s.SerialNanos.Add(int64(d)) }

// Commits returns the total committed transactions across all paths.
func (s *Stats) Commits() uint64 {
	return s.CommitsHTM.Load() + s.CommitsSW.Load() + s.CommitsGL.Load()
}

// Aborts returns the total aborted transaction attempts.
func (s *Stats) Aborts() uint64 {
	return s.AbortsConflict.Load() + s.AbortsCapacity.Load() +
		s.AbortsExplicit.Load() + s.AbortsOther.Load()
}

// RecordAbort classifies an abort result into the counters.
func (s *Stats) RecordAbort(r htm.AbortReason) {
	switch r {
	case htm.Conflict:
		s.AbortsConflict.Add(1)
	case htm.Capacity:
		s.AbortsCapacity.Add(1)
	case htm.Explicit:
		s.AbortsExplicit.Add(1)
	case htm.Other:
		s.AbortsOther.Add(1)
	}
}

// Reset zeroes every counter (between measurement phases).
func (s *Stats) Reset() {
	s.CommitsHTM.Store(0)
	s.CommitsSW.Store(0)
	s.CommitsGL.Store(0)
	s.AbortsConflict.Store(0)
	s.AbortsCapacity.Store(0)
	s.AbortsExplicit.Store(0)
	s.AbortsOther.Store(0)
	s.SerialNanos.Store(0)
	s.EscalationsBudget.Store(0)
	s.EscalationsStarve.Store(0)
	s.EscalationsLemming.Store(0)
	s.DegradedEnter.Store(0)
	s.DegradedExit.Store(0)
	s.DegradedCommits.Store(0)
	s.FaultsInjected.Store(0)
}

// Snapshot is a plain copy of the counters for reporting.
type Snapshot struct {
	CommitsHTM, CommitsSW, CommitsGL                            uint64
	AbortsConflict, AbortsCapacity, AbortsExplicit, AbortsOther uint64
	SerialNanos                                                 int64
	EscalationsBudget, EscalationsStarve, EscalationsLemming    uint64
	DegradedEnter, DegradedExit, DegradedCommits                uint64
	FaultsInjected                                              uint64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		CommitsHTM:         s.CommitsHTM.Load(),
		CommitsSW:          s.CommitsSW.Load(),
		CommitsGL:          s.CommitsGL.Load(),
		AbortsConflict:     s.AbortsConflict.Load(),
		AbortsCapacity:     s.AbortsCapacity.Load(),
		AbortsExplicit:     s.AbortsExplicit.Load(),
		AbortsOther:        s.AbortsOther.Load(),
		SerialNanos:        s.SerialNanos.Load(),
		EscalationsBudget:  s.EscalationsBudget.Load(),
		EscalationsStarve:  s.EscalationsStarve.Load(),
		EscalationsLemming: s.EscalationsLemming.Load(),
		DegradedEnter:      s.DegradedEnter.Load(),
		DegradedExit:       s.DegradedExit.Load(),
		DegradedCommits:    s.DegradedCommits.Load(),
		FaultsInjected:     s.FaultsInjected.Load(),
	}
}

// Escalations of the snapshot across all escalation kinds.
func (s Snapshot) Escalations() uint64 {
	return s.EscalationsBudget + s.EscalationsStarve + s.EscalationsLemming
}

// Commits of the snapshot across all paths.
func (s Snapshot) Commits() uint64 { return s.CommitsHTM + s.CommitsSW + s.CommitsGL }

// Aborts of the snapshot across all reasons.
func (s Snapshot) Aborts() uint64 {
	return s.AbortsConflict + s.AbortsCapacity + s.AbortsExplicit + s.AbortsOther
}

// Software-barrier cost calibration.
//
// The simulator's base memory access (a striped-lock word access, ~50ns)
// stands in for a ~1ns hardware cache access, which deflates every
// *software* overhead around it by more than an order of magnitude relative
// to real machines. To preserve the paper's cost ordering — hardware
// transactional accesses ≈ free, lightly-instrumented sub-HTM accesses
// slightly dearer, full STM barriers several times dearer — the pure-STM
// systems (NOrec, RingSTM, and NOrecRH's software path) charge these
// additional Spin units per barrier, calibrated so an STM read costs ~4x a
// plain simulated access, matching the relative per-barrier costs reported
// for these algorithms on real hardware.
const (
	// SWReadBarrier is the extra modelled cost of one STM read barrier.
	SWReadBarrier = 150
	// SWWriteBarrier is the extra modelled cost of one STM write barrier.
	SWWriteBarrier = 100
)

// Spin burns roughly c small work units of CPU so that modelled computation
// consumes real wall-clock time in throughput measurements. Long
// computations yield periodically so that, on hosts with fewer cores than
// worker threads, transactions still interleave at fine grain — without
// the yields, timeshared goroutines would almost never overlap and
// contention phenomena (conflict aborts, lock waiting) would vanish from
// the measurements.
func Spin(c int64) {
	var x int64
	for i := int64(0); i < c; i++ {
		x += i ^ (x >> 3)
		if i&4095 == 4095 {
			spinSink.Store(x)
			runtime.Gosched()
		}
	}
	spinSink.Store(x) // keep the loop from being optimized away
}

var spinSink atomic.Int64
