package fault

import "testing"

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1, Threads: 2})
	for i := 0; i < 10_000; i++ {
		for s := Site(0); s < NumSites; s++ {
			if _, _, ok := in.Draw(s, i%2); ok {
				t.Fatalf("draw %d at %v injected", i, s)
			}
		}
	}
	if in.Stats().Total() != 0 {
		t.Fatalf("stats nonzero: %d", in.Stats().Total())
	}
	if in.Quantum(0, 1000) != 1000 {
		t.Fatal("quantum perturbed without jitter")
	}
}

func TestRateDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []bool {
		cfg := Config{Seed: seed, Threads: 1}
		cfg.Rates[SiteHTMBegin] = SiteRate{Prob: 0.3, Reason: Other}
		in := New(cfg)
		out := make([]bool, 200)
		for i := range out {
			_, _, out[i] = in.Draw(SiteHTMBegin, 0)
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	hits, differs := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] != c[i] {
			differs = true
		}
		if a[i] {
			hits++
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical sequences")
	}
	if hits < 20 || hits > 120 {
		t.Fatalf("rate 0.3 hit %d/200 draws", hits)
	}
}

func TestRateReasonPropagates(t *testing.T) {
	cfg := Config{Seed: 1, Threads: 1}
	cfg.Rates[SiteHTMCommit] = SiteRate{Prob: 1, Reason: Capacity}
	in := New(cfg)
	r, _, ok := in.Draw(SiteHTMCommit, 0)
	if !ok || r != Capacity {
		t.Fatalf("got (%v,%v), want forced Capacity", r, ok)
	}
	if in.Stats().BySite(SiteHTMCommit) != 1 {
		t.Fatal("site counter not bumped")
	}
}

func TestStormWindow(t *testing.T) {
	in := New(Config{
		Seed: 1, Threads: 1,
		Storms: []Storm{{From: 3, To: 6, Reason: Other}},
	})
	var got []bool
	for i := 0; i < 8; i++ {
		_, _, ok := in.Draw(SiteHTMBegin, 0)
		got = append(got, ok)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("begin %d: injected=%v want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	// Non-begin sites must not consume the storm clock.
	if in.Clock() != 8 {
		t.Fatalf("clock = %d", in.Clock())
	}
	in.Draw(SiteHTMCommit, 0)
	if in.Clock() != 8 {
		t.Fatal("commit draw advanced the begin clock")
	}
}

func TestStormPeriodic(t *testing.T) {
	// Every 4th window of 1 begin aborts: begins 1, 5, 9, ...
	in := New(Config{
		Seed: 1, Threads: 1,
		Storms: []Storm{{From: 1, To: 2, Period: 4, Reason: Other}},
	})
	for i := 1; i <= 12; i++ {
		_, _, ok := in.Draw(SiteHTMBegin, 0)
		if want := i%4 == 1; ok != want {
			t.Fatalf("begin %d: injected=%v want %v", i, ok, want)
		}
	}
}

func TestTotalStormKillsEveryBegin(t *testing.T) {
	in := New(Config{Seed: 1, Threads: 2, Storms: []Storm{{From: 1, To: Forever, Reason: Other}}})
	for i := 0; i < 100; i++ {
		if r, _, ok := in.Draw(SiteHTMBegin, i%2); !ok || r != Other {
			t.Fatalf("begin %d survived the total storm", i)
		}
	}
}

func TestScriptOrderAndExhaustion(t *testing.T) {
	in := New(Config{
		Seed: 1, Threads: 2,
		Scripts: map[int][]ScriptEvent{
			1: {
				{Site: SiteHTMCommit, Reason: Explicit, Code: 3, Count: 2},
				{Site: SiteHTMBegin, Reason: Capacity, Count: 1},
			},
		},
	})
	// Thread 0 has no script: nothing fires.
	if _, _, ok := in.Draw(SiteHTMCommit, 0); ok {
		t.Fatal("unscripted thread injected")
	}
	// Head event is for commit: begin draws pass through untouched.
	if _, _, ok := in.Draw(SiteHTMBegin, 1); ok {
		t.Fatal("begin fired while commit event was at the head")
	}
	for i := 0; i < 2; i++ {
		r, code, ok := in.Draw(SiteHTMCommit, 1)
		if !ok || r != Explicit || code != 3 {
			t.Fatalf("commit draw %d: (%v,%d,%v)", i, r, code, ok)
		}
	}
	// Commit event exhausted: the begin event is now the head.
	if _, _, ok := in.Draw(SiteHTMCommit, 1); ok {
		t.Fatal("commit fired past its scripted count")
	}
	if r, _, ok := in.Draw(SiteHTMBegin, 1); !ok || r != Capacity {
		t.Fatalf("scripted begin: (%v,%v)", r, ok)
	}
	// Script fully drained.
	if _, _, ok := in.Draw(SiteHTMBegin, 1); ok {
		t.Fatal("drained script still firing")
	}
	if got := in.Stats().Total(); got != 3 {
		t.Fatalf("injected total = %d, want 3", got)
	}
}

func TestExplicitScriptDefaultsInjectedCode(t *testing.T) {
	in := New(Config{Seed: 1, Threads: 1, Scripts: map[int][]ScriptEvent{
		0: {{Site: SiteRingPub, Reason: Explicit, Count: 1}},
	}})
	_, code, ok := in.Draw(SiteRingPub, 0)
	if !ok || code != InjectedCode {
		t.Fatalf("code = %#x, ok=%v", code, ok)
	}
}

func TestQuantumJitterBoundedAndDeterministic(t *testing.T) {
	mk := func() *Injector {
		return New(Config{Seed: 5, Threads: 1, QuantumJitter: 0.5})
	}
	a, b := mk(), mk()
	varied := false
	prev := int64(-1)
	for i := 0; i < 100; i++ {
		qa, qb := a.Quantum(0, 1000), b.Quantum(0, 1000)
		if qa != qb {
			t.Fatalf("draw %d: %d != %d with same seed", i, qa, qb)
		}
		if qa < 500 || qa > 1500 {
			t.Fatalf("draw %d: quantum %d outside ±50%%", i, qa)
		}
		if prev >= 0 && qa != prev {
			varied = true
		}
		prev = qa
	}
	if !varied {
		t.Fatal("jittered quantum never varied")
	}
	if mk().Quantum(0, 0) != 0 {
		t.Fatal("unlimited quantum must stay unlimited")
	}
}
