package fault

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestValidateRejectsMalformedConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative threads", func(c *Config) { c.Threads = -1 }, "negative"},
		{"nan jitter", func(c *Config) { c.QuantumJitter = math.NaN() }, "finite"},
		{"inf jitter", func(c *Config) { c.QuantumJitter = math.Inf(1) }, "finite"},
		{"jitter over one", func(c *Config) { c.QuantumJitter = 1.5 }, "[0,1]"},
		{"negative jitter", func(c *Config) { c.QuantumJitter = -0.1 }, "[0,1]"},
		{"nan rate", func(c *Config) { c.Rates[SiteHTMBegin].Prob = math.NaN() }, "finite"},
		{"negative rate", func(c *Config) { c.Rates[SiteRingPub].Prob = -0.5 }, "[0,1]"},
		{"rate over one", func(c *Config) { c.Rates[SiteHTMCommit].Prob = 2 }, "[0,1]"},
		{"rate bad reason", func(c *Config) {
			c.Rates[SiteHTMBegin] = SiteRate{Prob: 0.5, Reason: Reason(99)}
		}, "reason"},
		{"storm from zero", func(c *Config) {
			c.Storms = []Storm{{From: 0, To: 5}}
		}, "From=0"},
		{"storm empty window", func(c *Config) {
			c.Storms = []Storm{{From: 5, To: 5}}
		}, "empty"},
		{"storm inverted window", func(c *Config) {
			c.Storms = []Storm{{From: 5, To: 3}}
		}, "empty"},
		{"storm past period", func(c *Config) {
			c.Storms = []Storm{{From: 10, To: 12, Period: 4}}
		}, "never fires"},
		{"storm bad reason", func(c *Config) {
			c.Storms = []Storm{{From: 1, To: 2, Reason: Reason(7)}}
		}, "reason"},
		{"script negative thread", func(c *Config) {
			c.Scripts = map[int][]ScriptEvent{-1: {{Site: SiteHTMBegin, Count: 1}}}
		}, "thread range"},
		{"script thread out of range", func(c *Config) {
			c.Threads = 2
			c.Scripts = map[int][]ScriptEvent{2: {{Site: SiteHTMBegin, Count: 1}}}
		}, "thread range"},
		{"script thread past default", func(c *Config) {
			c.Scripts = map[int][]ScriptEvent{64: {{Site: SiteHTMBegin, Count: 1}}}
		}, "thread range"},
		{"script bad site", func(c *Config) {
			c.Scripts = map[int][]ScriptEvent{0: {{Site: NumSites, Count: 1}}}
		}, "site"},
		{"script bad reason", func(c *Config) {
			c.Scripts = map[int][]ScriptEvent{0: {{Site: SiteHTMBegin, Reason: Reason(9), Count: 1}}}
		}, "reason"},
		{"script negative count", func(c *Config) {
			c.Scripts = map[int][]ScriptEvent{0: {{Site: SiteHTMBegin, Count: -3}}}
		}, "count"},
		{"campaign bad rate", func(c *Config) {
			c.Campaign = []Phase{{Name: "storm"}}
			c.Campaign[0].Rates[SiteHTMBegin].Prob = math.Inf(-1)
		}, "finite"},
		{"campaign bad storm", func(c *Config) {
			c.Campaign = []Phase{{Name: "storm", Storms: []Storm{{From: 0, To: Forever}}}}
		}, "From=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Seed: 1, Threads: 4}
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsGoodConfigs(t *testing.T) {
	cfg := Config{Seed: 1, Threads: 4, QuantumJitter: 0.5}
	cfg.Rates[SiteHTMBegin] = SiteRate{Prob: 1, Reason: Capacity}
	cfg.Storms = []Storm{{From: 1, To: Forever, Reason: Other}, {From: 2, To: 4, Period: 8}}
	cfg.Scripts = map[int][]ScriptEvent{3: {{Site: SiteLockSigRead, Reason: Explicit, Code: 1, Count: 5}}}
	cfg.Campaign = []Phase{
		{Name: "storm", Storms: []Storm{{From: 1, To: Forever, Reason: Other}}, Begins: 100},
		{Name: "clear"},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected a well-formed config: %v", err)
	}
	if err := (&Config{}).Validate(); err != nil {
		t.Fatalf("Validate rejected the zero config: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a config Validate rejects")
		}
	}()
	New(Config{Storms: []Storm{{From: 0, To: 5}}})
}

// TestCampaignAutoAdvance drives a three-phase campaign (clean → total
// storm → clean with a rate) on a single thread and pins the exact begin
// ticks at which phases change.
func TestCampaignAutoAdvance(t *testing.T) {
	cfg := Config{Seed: 1, Threads: 1}
	cfg.Campaign = []Phase{
		{Name: "pre", Begins: 4},
		{Name: "storm", Storms: []Storm{{From: 1, To: Forever, Reason: Capacity}}, Begins: 6},
		{Name: "clear"},
	}
	in := New(cfg)
	if got, name := in.PhaseIndex(), in.PhaseName(); got != 0 || name != "pre" {
		t.Fatalf("initial phase %d %q, want 0 \"pre\"", got, name)
	}
	var got []bool
	for i := 0; i < 14; i++ {
		_, _, ok := in.Draw(SiteHTMBegin, 0)
		got = append(got, ok)
	}
	// Begins 1-4: pre (clean). Begins 5-10: storm (all fail). 11+: clear.
	want := []bool{
		false, false, false, false,
		true, true, true, true, true, true,
		false, false, false, false,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("begin %d: injected=%v want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if got, name := in.PhaseIndex(), in.PhaseName(); got != 2 || name != "clear" {
		t.Fatalf("final phase %d %q, want 2 \"clear\"", got, name)
	}
}

// TestCampaignPhaseRates pins that non-begin sites read the current
// phase's rates, not the config-level ones.
func TestCampaignPhaseRates(t *testing.T) {
	cfg := Config{Seed: 1, Threads: 1}
	cfg.Rates[SiteHTMCommit] = SiteRate{Prob: 1, Reason: Conflict} // must be ignored
	ph := Phase{Name: "hot", Begins: 2}
	ph.Rates[SiteHTMCommit] = SiteRate{Prob: 1, Reason: Capacity}
	cfg.Campaign = []Phase{{Name: "quiet", Begins: 2}, ph, {Name: "done"}}
	in := New(cfg)

	if _, _, ok := in.Draw(SiteHTMCommit, 0); ok {
		t.Fatal("quiet phase injected at commit")
	}
	in.Draw(SiteHTMBegin, 0)
	in.Draw(SiteHTMBegin, 0)
	in.Draw(SiteHTMBegin, 0) // tick 3: now in "hot"
	if in.PhaseName() != "hot" {
		t.Fatalf("phase %q after 3 begins, want hot", in.PhaseName())
	}
	if r, _, ok := in.Draw(SiteHTMCommit, 0); !ok || r != Capacity {
		t.Fatalf("hot phase commit draw: (%v,%v), want injected Capacity", r, ok)
	}
}

// TestCampaignManualAdvance drives phases by AdvancePhase, the way the
// harness sequences wall-clock soak phases, and checks the storm clock
// restarts at each phase boundary.
func TestCampaignManualAdvance(t *testing.T) {
	cfg := Config{Seed: 1, Threads: 1}
	cfg.Campaign = []Phase{
		{Name: "pre"},
		{Name: "storm", Storms: []Storm{{From: 1, To: Forever, Reason: Other}}},
		{Name: "post"},
	}
	in := New(cfg)
	for i := 0; i < 5; i++ {
		if _, _, ok := in.Draw(SiteHTMBegin, 0); ok {
			t.Fatalf("pre-phase begin %d injected", i+1)
		}
	}
	if got := in.AdvancePhase(); got != 1 {
		t.Fatalf("AdvancePhase returned %d, want 1", got)
	}
	// The storm's From=1 is phase-relative: it must fire immediately even
	// though the global clock already stands at 5.
	for i := 0; i < 5; i++ {
		if _, _, ok := in.Draw(SiteHTMBegin, 0); !ok {
			t.Fatalf("storm-phase begin %d survived", i+1)
		}
	}
	if got := in.AdvancePhase(); got != 2 {
		t.Fatalf("AdvancePhase returned %d, want 2", got)
	}
	for i := 0; i < 5; i++ {
		if _, _, ok := in.Draw(SiteHTMBegin, 0); ok {
			t.Fatalf("post-phase begin %d injected", i+1)
		}
	}
	// Past the last phase: no-op.
	if got := in.AdvancePhase(); got != 2 {
		t.Fatalf("AdvancePhase past the end returned %d, want 2", got)
	}
	// No campaign: -1 and no-op.
	if got := New(Config{Seed: 1, Threads: 1}).AdvancePhase(); got != -1 {
		t.Fatalf("AdvancePhase without campaign returned %d, want -1", got)
	}
}

// TestCampaignAdvanceConcurrent hammers auto-advance from many threads and
// checks the phase transition stays exact: the storm phase injects on
// precisely its Begins-budget worth of ticks.
func TestCampaignAdvanceConcurrent(t *testing.T) {
	const threads = 8
	const perThread = 500
	cfg := Config{Seed: 1, Threads: threads}
	cfg.Campaign = []Phase{
		{Name: "pre", Begins: 1000},
		{Name: "storm", Storms: []Storm{{From: 1, To: Forever, Reason: Other}}, Begins: 1500},
		{Name: "clear"},
	}
	in := New(cfg)
	var wg sync.WaitGroup
	var injected [threads]int
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				if _, _, ok := in.Draw(SiteHTMBegin, th); ok {
					injected[th]++
				}
			}
		}(th)
	}
	wg.Wait()
	total := 0
	for _, n := range injected {
		total += n
	}
	// 4000 begins total: ticks 1-1000 clean, 1001-2500 storm, 2501+ clean.
	if total != 1500 {
		t.Fatalf("storm injected %d begins, want exactly 1500", total)
	}
	if in.PhaseIndex() != 2 {
		t.Fatalf("final phase %d, want 2", in.PhaseIndex())
	}
}
