// Package fault implements a deterministic, seeded fault injector for the
// simulated best-effort HTM stack.
//
// Best-effort HTM can abort at any instruction for reasons the program
// never caused — timer interrupts, cache pressure from a sibling
// hyper-thread, TLB shootdowns. The engine in internal/htm models the
// *systematic* part of that behaviour (capacity, quantum), but robustness
// work needs the *adversarial* part too: abort storms, unlucky threads,
// protocol-targeted failures. This package supplies it reproducibly.
//
// An Injector is consulted at named protocol sites:
//
//   - SiteHTMBegin: every hardware transaction begin (fast path, sub-HTM
//     transactions, reduced-hardware commits);
//   - SiteHTMCommit: every hardware commit;
//   - SiteRingPub: publication of a committed write signature into the
//     global ring (hardware fast-path publication and the software
//     publisher in Part-HTM's global commit);
//   - SiteLockSigRead: the monitored read of the shared write-locks
//     signature that gates every Part-HTM validation.
//
// Three mechanisms decide whether a fault fires, checked in order:
//
//  1. Scripted schedules: a per-thread FIFO of events, each forcing a
//     specific abort reason (and _xabort code) at a specific site for a
//     given number of draws. Scripts make pathological interleavings —
//     two transactions forever invalidating each other — exactly
//     reproducible.
//  2. Abort storms: windows of the global hardware-begin clock during
//     which every hardware attempt fails, modelling timer-interrupt
//     bursts and migration flurries. A storm may repeat periodically.
//  3. Per-site probabilities, drawn from a per-thread seeded generator,
//     so two runs with the same seed and thread count inject the same
//     faults at the same per-thread decision points.
//
// Independently, QuantumJitter perturbs each transaction's timer quantum
// by a seeded factor, modelling the variance of where in a scheduling
// quantum a transaction happens to start.
//
// The injector is pay-for-use: engines without one (the default) take a
// single nil check per site, and every counter stays exactly zero.
package fault

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Site names one fault-injection point in the protocol stack.
type Site uint8

const (
	// SiteHTMBegin is the begin of any hardware transaction.
	SiteHTMBegin Site = iota
	// SiteHTMCommit is the commit of any hardware transaction.
	SiteHTMCommit
	// SiteRingPub is the publication of a write signature into the ring.
	SiteRingPub
	// SiteLockSigRead is the read of the shared write-locks signature.
	SiteLockSigRead
	// NumSites is the number of injection sites.
	NumSites
)

// String returns the site's name.
func (s Site) String() string {
	switch s {
	case SiteHTMBegin:
		return "htm-begin"
	case SiteHTMCommit:
		return "htm-commit"
	case SiteRingPub:
		return "ring-pub"
	case SiteLockSigRead:
		return "locksig-read"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Reason classifies an injected abort. Values mirror htm.AbortReason
// (None/Conflict/Capacity/Explicit/Other) without importing it, so this
// package stays at the bottom of the dependency graph.
type Reason uint8

const (
	// None means no fault (the zero value; injected faults with reason
	// None default to Conflict).
	None Reason = iota
	// Conflict models a coherence invalidation by another thread.
	Conflict
	// Capacity models exhausted cache resources.
	Capacity
	// Explicit models an _xabort with a user code.
	Explicit
	// Other models a timer interrupt or any unclassified hardware event.
	Other
)

// String returns the lower-case reason name.
func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Explicit:
		return "explicit"
	case Other:
		return "other"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// InjectedCode is the _xabort code carried by injected Explicit aborts
// that do not specify one.
const InjectedCode uint8 = 0xFF

// SiteRate is the probabilistic model of one site: each draw fires with
// probability Prob and aborts with Reason (Conflict if unset).
type SiteRate struct {
	Prob   float64
	Reason Reason
}

// Storm is a window of the global hardware-begin clock during which every
// hardware attempt (SiteHTMBegin draw) fails: begins From..To-1, counted
// from 1. A nonzero Period repeats the window every Period begins —
// periodic abort bursts, as a timer interrupt delivers.
type Storm struct {
	From, To uint64
	Period   uint64
	Reason   Reason
}

// Forever is a convenient Storm.To for a storm that never ends.
const Forever = math.MaxUint64

// ScriptEvent forces Count draws at Site (for the scripted thread) to
// abort with Reason and, for Explicit, the given _xabort Code. Events of
// one thread's script fire strictly in order: draws at other sites pass
// through (rates and storms still apply) until the head event's site
// comes up.
type ScriptEvent struct {
	Site   Site
	Reason Reason
	Code   uint8
	Count  int
}

// Phase is one stage of a multi-phase chaos Campaign: its own per-site
// rates and storm windows, active while the phase is current. Storm windows
// are relative to the phase's start on the hardware-begin clock. Begins
// bounds the phase in hardware-begin ticks, after which the injector
// advances to the next phase on its own; zero means the phase only ends
// when AdvancePhase is called (wall-clock-driven harness phases).
type Phase struct {
	Name   string
	Rates  [NumSites]SiteRate
	Storms []Storm
	Begins uint64
}

// Config describes one injector. The zero value injects nothing.
type Config struct {
	// Seed makes every probabilistic decision reproducible; per-thread
	// generators are derived from it.
	Seed int64
	// Threads is the number of hardware thread slots covered (default 64,
	// the engine's MaxSlots ceiling).
	Threads int
	// Rates is the per-site probabilistic fault model.
	Rates [NumSites]SiteRate
	// Storms are hardware-begin abort windows.
	Storms []Storm
	// QuantumJitter perturbs each transaction's timer quantum by a factor
	// uniform in [1-QuantumJitter, 1+QuantumJitter].
	QuantumJitter float64
	// Scripts holds per-thread forced schedules.
	Scripts map[int][]ScriptEvent
	// Campaign, when non-empty, sequences multi-phase chaos (storm →
	// sustained degradation → clear): the current phase's Rates and Storms
	// replace the Config-level ones, while Scripts and QuantumJitter stay
	// in force throughout. Phases advance on their Begins budget or via
	// AdvancePhase; the last phase holds forever.
	Campaign []Phase
}

// Validate checks cfg for malformed values — NaN or out-of-range
// probabilities, empty or never-firing storm windows, script events for
// thread slots the injector does not cover — and returns an explicit error
// for the first problem found. New panics on an invalid config, so callers
// building configs from user input (flags, JSON) should Validate first and
// report the error gracefully.
func (cfg *Config) Validate() error {
	if cfg.Threads < 0 {
		return fmt.Errorf("fault: Threads %d is negative", cfg.Threads)
	}
	if math.IsNaN(cfg.QuantumJitter) || math.IsInf(cfg.QuantumJitter, 0) {
		return fmt.Errorf("fault: QuantumJitter %v is not a finite number", cfg.QuantumJitter)
	}
	if cfg.QuantumJitter < 0 || cfg.QuantumJitter > 1 {
		return fmt.Errorf("fault: QuantumJitter %v outside [0,1]", cfg.QuantumJitter)
	}
	for i := range cfg.Rates {
		if err := validateRate(fmt.Sprintf("Rates[%v]", Site(i)), cfg.Rates[i]); err != nil {
			return err
		}
	}
	for i, st := range cfg.Storms {
		if err := validateStorm(fmt.Sprintf("Storms[%d]", i), st); err != nil {
			return err
		}
	}
	threads := cfg.Threads
	if threads == 0 {
		threads = 64
	}
	for th, evs := range cfg.Scripts {
		if th < 0 || th >= threads {
			return fmt.Errorf("fault: Scripts[%d] outside thread range [0,%d)", th, threads)
		}
		for j, ev := range evs {
			where := fmt.Sprintf("Scripts[%d][%d]", th, j)
			if ev.Site >= NumSites {
				return fmt.Errorf("fault: %s targets unknown site %d", where, ev.Site)
			}
			if ev.Reason > Other {
				return fmt.Errorf("fault: %s has unknown reason %d", where, ev.Reason)
			}
			if ev.Count < 0 {
				return fmt.Errorf("fault: %s has negative count %d", where, ev.Count)
			}
		}
	}
	for pi := range cfg.Campaign {
		ph := &cfg.Campaign[pi]
		tag := fmt.Sprintf("Campaign[%d]", pi)
		if ph.Name != "" {
			tag = fmt.Sprintf("Campaign[%d] %q", pi, ph.Name)
		}
		for i := range ph.Rates {
			if err := validateRate(fmt.Sprintf("%s Rates[%v]", tag, Site(i)), ph.Rates[i]); err != nil {
				return err
			}
		}
		for i, st := range ph.Storms {
			if err := validateStorm(fmt.Sprintf("%s Storms[%d]", tag, i), st); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateRate(where string, r SiteRate) error {
	if math.IsNaN(r.Prob) || math.IsInf(r.Prob, 0) {
		return fmt.Errorf("fault: %s probability %v is not a finite number", where, r.Prob)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: %s probability %v outside [0,1]", where, r.Prob)
	}
	if r.Reason > Other {
		return fmt.Errorf("fault: %s has unknown reason %d", where, r.Reason)
	}
	return nil
}

func validateStorm(where string, st Storm) error {
	if st.From == 0 {
		return fmt.Errorf("fault: %s begins count from 1, got From=0", where)
	}
	if st.To <= st.From {
		return fmt.Errorf("fault: %s window [%d,%d) is empty", where, st.From, st.To)
	}
	if st.Period > 0 && st.From > st.Period {
		return fmt.Errorf("fault: %s From %d past its period %d: the window never fires", where, st.From, st.Period)
	}
	if st.Reason > Other {
		return fmt.Errorf("fault: %s has unknown reason %d", where, st.Reason)
	}
	return nil
}

// Stats counts injected faults per site.
type Stats struct {
	Injected [NumSites]atomic.Uint64
}

// Total returns the number of faults injected across all sites.
func (st *Stats) Total() uint64 {
	var n uint64
	for i := range st.Injected {
		n += st.Injected[i].Load()
	}
	return n
}

// BySite returns the number of faults injected at one site.
func (st *Stats) BySite(s Site) uint64 { return st.Injected[s].Load() }

// threadState is one thread's private draw state. Draw is only ever
// called by the thread owning the slot, so no locking is needed; the
// struct is padded to keep neighbouring threads off one cache line.
type threadState struct {
	rng    uint64
	script []ScriptEvent
	_      [5]uint64
}

// phaseState is the campaign position, published as one immutable value so
// concurrent draws never see a phase index paired with another phase's
// clock base. start is the last begin tick of the previous phase: ticks
// start+1, start+2, ... are phase-relative ticks 1, 2, ...
type phaseState struct {
	idx   int
	start uint64
}

// Injector decides, per protocol site and thread, whether to inject a
// fault. One injector serves one engine (and the software framework above
// it); all methods except the per-thread Draw state are concurrency safe.
type Injector struct {
	cfg     Config
	threads []threadState
	clock   atomic.Uint64 // global hardware-begin counter (storm time base)
	phase   atomic.Pointer[phaseState]
	stats   Stats
}

// New builds an injector from cfg. It panics if cfg is invalid; callers
// holding untrusted configs should call Validate first.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 64
	}
	in := &Injector{cfg: cfg, threads: make([]threadState, cfg.Threads)}
	for i := range in.threads {
		// splitmix-style per-thread seed derivation.
		z := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
		z ^= z >> 30
		z *= 0x94D049BB133111EB
		in.threads[i].rng = z ^ z>>31 | 1
		if ev, ok := cfg.Scripts[i]; ok {
			in.threads[i].script = append([]ScriptEvent(nil), ev...)
		}
	}
	if len(cfg.Campaign) > 0 {
		in.phase.Store(&phaseState{})
	}
	return in
}

// Stats returns the injector's counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// Clock returns the number of hardware begins observed so far.
func (in *Injector) Clock() uint64 { return in.clock.Load() }

// PhaseIndex returns the index of the current campaign phase, or -1 when
// the injector runs no campaign.
func (in *Injector) PhaseIndex() int {
	ps := in.phase.Load()
	if ps == nil {
		return -1
	}
	return ps.idx
}

// PhaseName returns the name of the current campaign phase ("" when the
// injector runs no campaign).
func (in *Injector) PhaseName() string {
	ps := in.phase.Load()
	if ps == nil {
		return ""
	}
	return in.cfg.Campaign[ps.idx].Name
}

// AdvancePhase manually moves the campaign to its next phase — the
// mechanism for wall-clock-driven harness phases (Begins == 0). The new
// phase's storm clock starts at the present begin count. It returns the
// index of the phase now current; calling past the last phase (or without
// a campaign) is a no-op.
func (in *Injector) AdvancePhase() int {
	for {
		ps := in.phase.Load()
		if ps == nil {
			return -1
		}
		if ps.idx+1 >= len(in.cfg.Campaign) {
			return ps.idx
		}
		next := &phaseState{idx: ps.idx + 1, start: in.clock.Load()}
		if in.phase.CompareAndSwap(ps, next) {
			return next.idx
		}
	}
}

// advancePhases applies begin-budget auto-advance at tick: while the
// current phase has a Begins budget and tick lies past it, step to the
// next phase with a deterministic clock base (start + Begins), so the
// transition tick is the same no matter which thread draws it.
func (in *Injector) advancePhases(ps *phaseState, tick uint64) *phaseState {
	for {
		ph := &in.cfg.Campaign[ps.idx]
		if ph.Begins == 0 || tick-ps.start <= ph.Begins || ps.idx+1 >= len(in.cfg.Campaign) {
			return ps
		}
		next := &phaseState{idx: ps.idx + 1, start: ps.start + ph.Begins}
		if in.phase.CompareAndSwap(ps, next) {
			ps = next
		} else {
			// Lost the race (auto- or manual advance); re-evaluate from
			// whatever state won.
			ps = in.phase.Load()
		}
	}
}

// rand01 advances thread state ts and returns a uniform float64 in [0,1).
func (ts *threadState) rand01() float64 {
	ts.rng = ts.rng*6364136223846793005 + 1442695040888963407
	return float64(ts.rng>>11) / float64(1<<53)
}

func reasonOr(r Reason) Reason {
	if r == None {
		return Conflict
	}
	return r
}

// Draw decides whether a fault fires at site for thread, returning the
// abort reason and _xabort code when it does. Draw must only be called by
// the thread owning the slot (the same discipline the HTM engine already
// imposes); draws at SiteHTMBegin advance the global storm clock.
func (in *Injector) Draw(site Site, thread int) (Reason, uint8, bool) {
	ts := &in.threads[thread]

	// 1. Scripted schedule: strict per-thread order.
	for len(ts.script) > 0 && ts.script[0].Count <= 0 {
		ts.script = ts.script[1:]
	}
	if len(ts.script) > 0 && ts.script[0].Site == site {
		ev := &ts.script[0]
		ev.Count--
		in.stats.Injected[site].Add(1)
		code := ev.Code
		if ev.Reason == Explicit && code == 0 {
			code = InjectedCode
		}
		return reasonOr(ev.Reason), code, true
	}

	// Resolve the active fault model: the current campaign phase's rates
	// and storms when a campaign runs, the config-level ones otherwise.
	rates := &in.cfg.Rates
	storms := in.cfg.Storms
	var base uint64 // storm clock base (phase start)

	// 2. Abort storms, on the global hardware-begin clock.
	if site == SiteHTMBegin {
		tick := in.clock.Add(1)
		if ps := in.phase.Load(); ps != nil {
			ps = in.advancePhases(ps, tick)
			ph := &in.cfg.Campaign[ps.idx]
			rates, storms, base = &ph.Rates, ph.Storms, ps.start
		}
		// A manual AdvancePhase can set base at the current clock while a
		// slower thread still holds an earlier tick; such stragglers fall
		// outside the new phase's storm window rather than wrapping.
		if tick > base {
			pt := tick - base
			for i := range storms {
				st := &storms[i]
				eff := pt
				if st.Period > 0 {
					eff = (pt-1)%st.Period + 1
				}
				if eff >= st.From && eff < st.To {
					in.stats.Injected[site].Add(1)
					return reasonOr(st.Reason), InjectedCode, true
				}
			}
		}
	} else if ps := in.phase.Load(); ps != nil {
		rates = &in.cfg.Campaign[ps.idx].Rates
	}

	// 3. Per-site probability.
	if r := &rates[site]; r.Prob > 0 && ts.rand01() < r.Prob {
		in.stats.Injected[site].Add(1)
		return reasonOr(r.Reason), InjectedCode, true
	}
	return None, 0, false
}

// Quantum returns the jittered timer quantum for one transaction of the
// given thread (base when jitter is disabled or the quantum is unlimited).
func (in *Injector) Quantum(thread int, base int64) int64 {
	j := in.cfg.QuantumJitter
	if j <= 0 || base <= 0 {
		return base
	}
	ts := &in.threads[thread]
	q := int64(float64(base) * (1 + j*(2*ts.rand01()-1)))
	if q < 1 {
		q = 1
	}
	return q
}
