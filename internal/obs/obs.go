// Package obs is the live telemetry plane over the repository's
// single-writer counter substrate: a registry that takes one coherent
// sample of every registered system's tm.Stats shards, latency
// histograms, footprint distributions, and governor/kernel gauges, an
// OpenMetrics exporter over net/http, a black-box flight recorder, and an
// in-terminal watch renderer. It is the serving-loop telemetry substrate
// the ROADMAP's parthtm-kv service mounts directly.
//
// # Snapshot coherence
//
// Every consumer — the /metrics handler, the /snapshot JSON view, the
// flight-recorder ring, the watch renderer — goes through Registry.Sample,
// which takes exactly one tm.Stats.Snapshot per system per poll and reads
// each gauge once (PR 5's one-snapshot-per-report rule: two reads of a
// live counter set may disagree, one copy cannot).
//
// # What may be sampled live
//
// The sampling path only reads state that is safe while workers run:
// tm.Counter and trace/hist counters are atomic cells any thread may read
// concurrently, and the governor/kernel gauges are atomics. The profiler's
// conflict sketch and set-heat arrays are plain single-writer memory and
// may only be read after workers quiesce — they are deliberately absent
// from the live plane (the post-run ProfileReport covers them), as are the
// trace ring cursors. The same split drives the htmsafety rule: no obs
// function is ever reachable from a hardware window; registration is
// boundary-only and collection runs on the scrape/poller goroutine
// (parthtm-vet's htmregion analyzer enforces this statically).
//
// # Allocation discipline
//
// Registry.Sample is allocation-free once the destination snapshot has
// grown to the registry's size: it fills pre-allocated per-system sample
// structs in place. The OpenMetrics encoder, the JSON view, and the
// flight-recorder dump path may allocate — they run at the boundary, per
// scrape or per dump, never per transaction.
package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/governor"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

// KernelGauges is the execution kernel's live degradation view. Every
// system satisfies it by forwarding to its exec.Runner.
type KernelGauges interface {
	Degraded() bool
	Pressure() int64
}

// Source names the telemetry surfaces of one registered system. Stats is
// required; everything else is optional and gates the corresponding
// metric families.
type Source struct {
	// Stats is the system's commit/abort counter set (required).
	Stats *tm.Stats
	// Gov, when attached, contributes the admission gauges (inflight,
	// live time budget).
	Gov *governor.Governor
	// Sink, when attached, contributes per-path and per-cause latency
	// quantiles (trace/hist shards; live-read-safe).
	Sink *trace.Sink
	// Prof, when attached, contributes footprint quantiles per
	// (class, outcome) cell. The sketch and heat planes are quiesce-only
	// and stay out of the live sample.
	Prof *prof.Profile
	// Kernel, when attached, contributes the degraded/pressure gauges.
	Kernel KernelGauges
}

// SystemSample is one system's coherent telemetry point.
type SystemSample struct {
	Name    string                                                 `json:"system"`
	TM      tm.Snapshot                                            `json:"tm"`
	Latency trace.LatencySnapshot                                  `json:"latency"`
	Foot    [prof.ClassCount][prof.OutcomeCount]prof.FootprintCell `json:"footprints"`

	Inflight        int64 `json:"inflight"`
	TimeBudgetNanos int64 `json:"time_budget_ns"`
	Degraded        bool  `json:"degraded"`
	Pressure        int64 `json:"pressure"`

	HasGov    bool `json:"has_gov"`
	HasSink   bool `json:"has_sink"`
	HasProf   bool `json:"has_prof"`
	HasKernel bool `json:"has_kernel"`
}

// Snapshot is one coherent sample of every registered system.
type Snapshot struct {
	// TS is the sample instant on the trace.Now clock (nanoseconds).
	TS int64 `json:"ts_ns"`
	// Seq increments per Sample call across all consumers.
	Seq uint64 `json:"seq"`
	// Systems holds one sample per registered system, in registration
	// order.
	Systems []SystemSample `json:"systems"`
}

// Registry holds the telemetry sources of the systems under observation.
// Registration allocates and locks — it is a boundary operation, done
// before workers start (or between runs of a sweep); re-registering a name
// replaces its source, so a sweep that rebuilds a system keeps the live
// instance current. Sampling is concurrency-safe against registration.
type Registry struct {
	mu    sync.Mutex
	names []string
	srcs  []Source
	seq   atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds (or replaces) the named system's telemetry source. A nil
// Stats source is ignored. Boundary-only: never call from a hardware
// window or a measured path.
func (r *Registry) Register(name string, src Source) {
	if r == nil || src.Stats == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.names {
		if n == name {
			r.srcs[i] = src
			return
		}
	}
	r.names = append(r.names, name)
	r.srcs = append(r.srcs, src)
}

// Names returns the registered system names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Len returns the number of registered systems.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.names)
}

// Sample fills dst with one coherent sample of every registered system:
// per system, exactly one tm.Stats.Snapshot, one latency merge, one
// footprint merge, and one read of each gauge. Allocation-free once
// dst.Systems has grown to the registry's size (the only allocation is
// that one growth). Safe to call while workers run — it reads only
// atomic counter cells and gauges.
func (r *Registry) Sample(dst *Snapshot) {
	dst.TS = trace.Now()
	dst.Seq = r.seq.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap(dst.Systems) < len(r.srcs) {
		dst.Systems = make([]SystemSample, len(r.srcs))
	}
	dst.Systems = dst.Systems[:len(r.srcs)]
	for i := range r.srcs {
		sampleOne(&dst.Systems[i], r.names[i], &r.srcs[i])
	}
}

// sampleOne fills one system's sample in place.
func sampleOne(out *SystemSample, name string, src *Source) {
	out.Name = name
	out.TM = src.Stats.Snapshot()

	out.HasSink = src.Sink != nil
	if src.Sink != nil {
		out.Latency = src.Sink.Latency()
	} else {
		out.Latency = trace.LatencySnapshot{}
	}

	out.HasProf = src.Prof != nil
	if src.Prof != nil {
		src.Prof.FootprintCells(&out.Foot)
	} else {
		out.Foot = [prof.ClassCount][prof.OutcomeCount]prof.FootprintCell{}
	}

	out.HasGov = src.Gov != nil
	out.Inflight, out.TimeBudgetNanos = 0, 0
	if src.Gov != nil {
		out.Inflight = src.Gov.Inflight()
		out.TimeBudgetNanos = int64(src.Gov.TimeBudget())
	}

	out.HasKernel = src.Kernel != nil
	out.Degraded, out.Pressure = false, 0
	if src.Kernel != nil {
		out.Degraded = src.Kernel.Degraded()
		out.Pressure = src.Kernel.Pressure()
	}
}
