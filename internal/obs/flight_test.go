package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/governor"
	"repro/internal/trace"
)

// flightFixture builds a recorder over one full source with a temp dump
// dir, the background sampler NOT started — tests drive sampleOnce by
// hand for determinism.
func flightFixture(t *testing.T, cfg FlightConfig) (*FlightRecorder, Source, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Dir = dir
	reg := NewRegistry()
	src := fullSource(t)
	reg.Register("sys", src)
	f := NewFlightRecorder(reg, cfg)
	f.SetSink(src.Sink)
	return f, src, dir
}

func TestFlightAlarmArmsAndFlushDumps(t *testing.T) {
	f, _, dir := flightFixture(t, FlightConfig{})
	f.sampleOnce()
	f.sampleOnce()
	if f.Armed() != "" {
		t.Fatalf("recorder armed with no trigger: %q", f.Armed())
	}

	// Flushing while disarmed writes nothing.
	if name, err := f.Flush("quiet"); err != nil || name != "" {
		t.Fatalf("disarmed Flush = %q, %v", name, err)
	}

	f.NoteAlarm(governor.Alarm{Kind: governor.AlarmStall})
	if got := f.Armed(); got != "watchdog-stall" {
		t.Fatalf("Armed = %q, want watchdog-stall", got)
	}
	name, err := f.Flush("phase1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "flight-watchdog-stall-phase1-") {
		t.Fatalf("artifact basename = %q", name)
	}
	if f.Armed() != "" {
		t.Fatalf("Flush did not disarm: %q", f.Armed())
	}
	if d := f.Dumps(); len(d) != 1 || d[0] != name {
		t.Fatalf("Dumps = %v", d)
	}

	// The trace artifact must decode through the same checker the CLI
	// -trace-check uses.
	raw, err := os.ReadFile(filepath.Join(dir, name+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.DecodeChrome(raw); err != nil {
		t.Fatalf("flight trace artifact does not decode: %v", err)
	}

	// The metrics CSV carries the pinned header and one row per ring
	// sample (two sampleOnce calls, one system).
	csv, err := os.ReadFile(filepath.Join(dir, name+".metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(csv), "\n"), "\n")
	if lines[0] != flightCSVHeader {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want 2 samples", len(lines)-1)
	}
	cols := strings.Count(flightCSVHeader, ",") + 1
	for _, ln := range lines[1:] {
		if got := strings.Count(ln, ",") + 1; got != cols {
			t.Fatalf("CSV row has %d columns, header has %d: %q", got, cols, ln)
		}
	}
}

func TestFlightCooldown(t *testing.T) {
	f, _, _ := flightFixture(t, FlightConfig{Cooldown: time.Hour})
	f.sampleOnce()
	f.NoteAlarm(governor.Alarm{Kind: governor.AlarmStall})
	if name, err := f.Flush("a"); err != nil || name == "" {
		t.Fatalf("first Flush = %q, %v", name, err)
	}
	f.NoteAlarm(governor.Alarm{Kind: governor.AlarmStall})
	if name, err := f.Flush("b"); err != nil || name != "" {
		t.Fatalf("Flush within cooldown wrote %q, %v", name, err)
	}
	if len(f.Dumps()) != 1 {
		t.Fatalf("cooldown did not suppress: %v", f.Dumps())
	}
	// DumpNow ignores the cooldown (SIGQUIT path).
	if name, err := f.DumpNow("sigquit"); err != nil || name == "" {
		t.Fatalf("DumpNow = %q, %v", name, err)
	}
}

// TestFlightBreakerBurstTrigger drives the counter-delta trigger: a burst
// of breaker trips between two samples arms the recorder without any
// watchdog involvement.
func TestFlightBreakerBurstTrigger(t *testing.T) {
	f, src, _ := flightFixture(t, FlightConfig{BreakerBurst: 4})
	f.sampleOnce() // baseline
	src.Stats.Shard(0).BreakerTrips.Add(3)
	f.sampleOnce()
	if f.Armed() != "" {
		t.Fatalf("armed below burst threshold: %q", f.Armed())
	}
	src.Stats.Shard(0).BreakerTrips.Add(4)
	f.sampleOnce()
	if got := f.Armed(); got != "breaker-storm-sys" {
		t.Fatalf("Armed = %q, want breaker-storm-sys", got)
	}
}

// TestFlightPhaseDegraded covers the third trigger and reason sanitizing.
func TestFlightPhaseDegraded(t *testing.T) {
	f, _, _ := flightFixture(t, FlightConfig{})
	f.sampleOnce()
	f.ArmPhaseDegraded("Part-HTM", "storm/1")
	if got := f.Armed(); got != "degraded-Part-HTM-storm_1" {
		t.Fatalf("Armed = %q", got)
	}
	name, err := f.Flush("")
	if err != nil || name == "" {
		t.Fatalf("Flush = %q, %v", name, err)
	}
}

// TestFlightRingWraps checks the ring keeps only the newest RingCap
// samples, oldest first in the CSV.
func TestFlightRingWraps(t *testing.T) {
	f, _, dir := flightFixture(t, FlightConfig{RingCap: 4})
	for i := 0; i < 10; i++ {
		f.sampleOnce()
	}
	name, err := f.DumpNow("wrap")
	if err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, name+".metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(csv), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV rows = %d, want RingCap=4", len(lines)-1)
	}
	// seq column (index 1) must be the last four samples in order.
	for i, want := range []string{"7", "8", "9", "10"} {
		if cols := strings.Split(lines[1+i], ","); cols[1] != want {
			t.Fatalf("row %d seq = %s, want %s", i, cols[1], want)
		}
	}
}
