package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tm"
	"repro/internal/trace"
)

// goldenExposition pins the exact exposition of a minimal snapshot: one
// system with bare tm counters and no optional sources. Every always-
// present family appears (zeros included), the gauge and quantile
// families contribute only their headers, and the scrape ends in # EOF.
// A diff here means the wire format changed — update deliberately, with
// the README's Prometheus recipe in mind.
const goldenExposition = `# TYPE parthtm_scrapes counter
# HELP parthtm_scrapes Coherent samples taken by the obs registry.
parthtm_scrapes_total 7
# TYPE parthtm_systems gauge
# HELP parthtm_systems Systems registered in this scrape.
parthtm_systems 1
# TYPE parthtm_commits counter
# HELP parthtm_commits Committed transactions by execution path.
parthtm_commits_total{system="Part-HTM",path="htm"} 12345
parthtm_commits_total{system="Part-HTM",path="sw"} 67
parthtm_commits_total{system="Part-HTM",path="gl"} 8
# TYPE parthtm_aborts counter
# HELP parthtm_aborts Aborted transaction attempts by hardware abort cause.
parthtm_aborts_total{system="Part-HTM",cause="conflict"} 9
parthtm_aborts_total{system="Part-HTM",cause="capacity"} 0
parthtm_aborts_total{system="Part-HTM",cause="explicit"} 0
parthtm_aborts_total{system="Part-HTM",cause="other"} 0
# TYPE parthtm_escalations counter
# HELP parthtm_escalations Contention-manager escalations onto the global-lock path.
parthtm_escalations_total{system="Part-HTM",kind="budget"} 0
parthtm_escalations_total{system="Part-HTM",kind="starve"} 0
parthtm_escalations_total{system="Part-HTM",kind="lemming"} 0
# TYPE parthtm_serial_seconds counter
# HELP parthtm_serial_seconds Time spent in globally serializing critical sections.
parthtm_serial_seconds_total{system="Part-HTM"} 1.5
# TYPE parthtm_degraded_transitions counter
# HELP parthtm_degraded_transitions Entries into and exits from degraded serialized mode.
parthtm_degraded_transitions_total{system="Part-HTM",edge="enter"} 0
parthtm_degraded_transitions_total{system="Part-HTM",edge="exit"} 0
# TYPE parthtm_degraded_commits counter
# HELP parthtm_degraded_commits Transactions committed while degraded mode was active.
parthtm_degraded_commits_total{system="Part-HTM"} 0
# TYPE parthtm_faults_injected counter
# HELP parthtm_faults_injected Aborts forced by the fault injector.
parthtm_faults_injected_total{system="Part-HTM"} 0
# TYPE parthtm_serialized counter
# HELP parthtm_serialized Transactions sent to the slow path by the resource governor.
parthtm_serialized_total{system="Part-HTM",reason="shed"} 0
parthtm_serialized_total{system="Part-HTM",reason="budget"} 0
# TYPE parthtm_breaker_events counter
# HELP parthtm_breaker_events Per-thread HTM circuit-breaker state events.
parthtm_breaker_events_total{system="Part-HTM",event="trip"} 0
parthtm_breaker_events_total{system="Part-HTM",event="probe"} 0
parthtm_breaker_events_total{system="Part-HTM",event="close"} 0
parthtm_breaker_events_total{system="Part-HTM",event="slow"} 0
# TYPE parthtm_watchdog_alarms counter
# HELP parthtm_watchdog_alarms Progress-watchdog alarms.
parthtm_watchdog_alarms_total{system="Part-HTM"} 2
# TYPE parthtm_cross_domain counter
# HELP parthtm_cross_domain Transaction attempts spanning two or more memory domains.
parthtm_cross_domain_total{system="Part-HTM",outcome="commit"} 0
parthtm_cross_domain_total{system="Part-HTM",outcome="abort"} 0
# TYPE parthtm_domain_ring_rollovers counter
# HELP parthtm_domain_ring_rollovers Validations that failed because a domain ring lapped the validator.
parthtm_domain_ring_rollovers_total{system="Part-HTM"} 0
# TYPE parthtm_degraded gauge
# HELP parthtm_degraded Whether degraded serialized mode is active (0/1).
# TYPE parthtm_pressure gauge
# HELP parthtm_pressure Kernel back-pressure level.
# TYPE parthtm_inflight gauge
# HELP parthtm_inflight Transactions admitted by the governor and not yet finished.
# TYPE parthtm_time_budget_seconds gauge
# HELP parthtm_time_budget_seconds Live per-transaction optimistic-phase time budget.
# TYPE parthtm_commit_latency_seconds gauge
# HELP parthtm_commit_latency_seconds Commit latency quantiles by execution path.
# TYPE parthtm_commit_latency_count gauge
# HELP parthtm_commit_latency_count Commit latency recordings by execution path.
# TYPE parthtm_abort_latency_seconds gauge
# HELP parthtm_abort_latency_seconds Attempt-to-abort latency quantiles by abort cause.
# TYPE parthtm_abort_latency_count gauge
# HELP parthtm_abort_latency_count Abort latency recordings by abort cause.
# TYPE parthtm_footprint_lines gauge
# HELP parthtm_footprint_lines Transaction footprint quantiles (cache lines / set ways).
# TYPE parthtm_footprint_count gauge
# HELP parthtm_footprint_count Transaction outcomes profiled per footprint cell.
# EOF
`

func TestWriteOpenMetricsGolden(t *testing.T) {
	snap := &Snapshot{
		Seq: 7,
		Systems: []SystemSample{{
			Name: "Part-HTM",
			TM: tm.Snapshot{
				CommitsHTM: 12345, CommitsSW: 67, CommitsGL: 8,
				AbortsConflict: 9,
				SerialNanos:    int64(1500 * time.Millisecond),
				WatchdogAlarms: 2,
			},
		}},
	}
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, snap); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenExposition {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, goldenExposition)
	}
}

// TestExpositionRoundTrip scrapes a live registry through the encoder and
// the strict parser and checks the parsed values against the very
// tm.Snapshot the scrape was built from.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	src := fullSource(t)
	reg.Register("sys", src)
	var snap Snapshot
	reg.Sample(&snap)

	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, &snap); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("strict parse of own output: %v", err)
	}

	s := &snap.Systems[0]
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"parthtm_scrapes_total", nil, float64(snap.Seq)},
		{"parthtm_systems", nil, 1},
		{"parthtm_commits_total", map[string]string{"system": "sys", "path": "htm"}, float64(s.TM.CommitsHTM)},
		{"parthtm_commits_total", map[string]string{"system": "sys", "path": "gl"}, float64(s.TM.CommitsGL)},
		{"parthtm_aborts_total", map[string]string{"system": "sys", "cause": "conflict"}, float64(s.TM.AbortsConflict)},
		{"parthtm_watchdog_alarms_total", map[string]string{"system": "sys"}, float64(s.TM.WatchdogAlarms)},
		{"parthtm_serial_seconds_total", map[string]string{"system": "sys"}, float64(s.TM.SerialNanos) / 1e9},
		{"parthtm_pressure", map[string]string{"system": "sys"}, float64(s.Pressure)},
		{"parthtm_degraded", map[string]string{"system": "sys"}, 1},
		{"parthtm_inflight", map[string]string{"system": "sys"}, float64(s.Inflight)},
		{"parthtm_commit_latency_count", map[string]string{"system": "sys", "path": "htm"},
			float64(s.Latency.Path[trace.PathHTM].Count)},
		{"parthtm_commit_latency_seconds", map[string]string{"system": "sys", "path": "htm", "q": "0.99"},
			float64(s.Latency.Path[trace.PathHTM].P99) / 1e9},
		{"parthtm_abort_latency_count", map[string]string{"system": "sys", "cause": "conflict"},
			float64(s.Latency.Abort[trace.CauseConflict].Count)},
		{"parthtm_footprint_count", map[string]string{"system": "sys", "class": "fast", "outcome": "commit"}, 10},
		{"parthtm_footprint_lines", map[string]string{
			"system": "sys", "class": "fast", "outcome": "commit", "dim": "read", "q": "max"}, 8},
	}
	for _, c := range checks {
		got, ok := exp.Value(c.name, c.labels)
		if !ok {
			t.Errorf("sample %s%v missing from exposition", c.name, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, got, c.want)
		}
	}
	if len(exp.Families()) < 20 {
		t.Errorf("only %d families declared: %v", len(exp.Families()), exp.Families())
	}
}

func TestParseExpositionStrict(t *testing.T) {
	bad := []struct {
		name, in, wantErr string
	}{
		{"no-eof", "# TYPE a gauge\na 1\n", "does not end with # EOF"},
		{"blank-line", "# TYPE a gauge\n\na 1\n# EOF\n", "blank line"},
		{"after-eof", "# EOF\nx 1\n", "content after # EOF"},
		{"no-type", "a 1\n# EOF\n", "no preceding TYPE"},
		{"counter-no-total", "# TYPE a counter\na 1\n# EOF\n", "missing _total"},
		{"unknown-directive", "# FOO a b\n# EOF\n", "unknown directive"},
		{"dup-type", "# TYPE a gauge\n# TYPE a gauge\n# EOF\n", "duplicate TYPE"},
		{"help-first", "# HELP a h\n# EOF\n", "undeclared family"},
		{"bad-escape", "# TYPE a gauge\na{l=\"\\q\"} 1\n# EOF\n", `bad escape`},
		{"unterminated-label", "# TYPE a gauge\na{l=\"x} 1\n# EOF\n", "unterminated"},
		{"no-value", "# TYPE a gauge\na{l=\"x\"}\n# EOF\n", "missing value"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseExposition(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	// Label escapes survive a round trip through encoder-style escaping.
	in := "# TYPE a gauge\na{l=\"x\\\\y\\\"z\\n\"} 4\n# EOF\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := exp.Value("a", map[string]string{"l": "x\\y\"z\n"})
	if !ok || got != 4 {
		t.Fatalf("escaped label lookup: got %g, ok %v", got, ok)
	}
	if escapeLabel("x\\y\"z\n") != `x\\y\"z\n` {
		t.Fatalf("escapeLabel = %q", escapeLabel("x\\y\"z\n"))
	}
}
