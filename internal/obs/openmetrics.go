package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prof"
	"repro/internal/trace"
)

// ContentType is the OpenMetrics exposition media type served by /metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// quantile label values for the latency and footprint summaries.
var quantileLabels = [...]string{"0.50", "0.95", "0.99", "max"}

// omEnc accumulates an OpenMetrics exposition, sticky-error style.
type omEnc struct {
	w   *bufio.Writer
	err error
}

func (e *omEnc) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// family emits the TYPE/HELP header of one metric family.
func (e *omEnc) family(name, typ, help string) {
	e.printf("# TYPE %s %s\n# HELP %s %s\n", name, typ, name, help)
}

// row emits one sample line. labels alternate name, value.
func (e *omEnc) row(sample string, v float64, labels ...string) {
	if e.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(sample)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(labels[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, e.err = e.w.WriteString(sb.String())
}

// escapeLabel escapes a label value per the exposition grammar.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

const nanosPerSecond = 1e9

// WriteOpenMetrics encodes one registry snapshot in OpenMetrics text
// exposition format: every family grouped under its TYPE/HELP header,
// one row per (system, label) combination in deterministic order, and a
// trailing # EOF. The tm counter families are always present (zeros
// included, so rate() over a scrape series never sees a disappearing
// series); the gauge families appear only for systems that carry the
// corresponding source, and latency/footprint rows only for cells that
// have observed at least one value. The encoder allocates freely — it
// runs per scrape, never on the sampling path.
func WriteOpenMetrics(w io.Writer, snap *Snapshot) error {
	e := &omEnc{w: bufio.NewWriter(w)}

	e.family("parthtm_scrapes", "counter", "Coherent samples taken by the obs registry.")
	e.row("parthtm_scrapes_total", float64(snap.Seq))
	e.family("parthtm_systems", "gauge", "Systems registered in this scrape.")
	e.row("parthtm_systems", float64(len(snap.Systems)))

	e.family("parthtm_commits", "counter", "Committed transactions by execution path.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_commits_total", float64(s.TM.CommitsHTM), "system", s.Name, "path", "htm")
		e.row("parthtm_commits_total", float64(s.TM.CommitsSW), "system", s.Name, "path", "sw")
		e.row("parthtm_commits_total", float64(s.TM.CommitsGL), "system", s.Name, "path", "gl")
	}
	e.family("parthtm_aborts", "counter", "Aborted transaction attempts by hardware abort cause.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_aborts_total", float64(s.TM.AbortsConflict), "system", s.Name, "cause", "conflict")
		e.row("parthtm_aborts_total", float64(s.TM.AbortsCapacity), "system", s.Name, "cause", "capacity")
		e.row("parthtm_aborts_total", float64(s.TM.AbortsExplicit), "system", s.Name, "cause", "explicit")
		e.row("parthtm_aborts_total", float64(s.TM.AbortsOther), "system", s.Name, "cause", "other")
	}
	e.family("parthtm_escalations", "counter", "Contention-manager escalations onto the global-lock path.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_escalations_total", float64(s.TM.EscalationsBudget), "system", s.Name, "kind", "budget")
		e.row("parthtm_escalations_total", float64(s.TM.EscalationsStarve), "system", s.Name, "kind", "starve")
		e.row("parthtm_escalations_total", float64(s.TM.EscalationsLemming), "system", s.Name, "kind", "lemming")
	}
	e.family("parthtm_serial_seconds", "counter", "Time spent in globally serializing critical sections.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_serial_seconds_total", float64(s.TM.SerialNanos)/nanosPerSecond, "system", s.Name)
	}
	e.family("parthtm_degraded_transitions", "counter", "Entries into and exits from degraded serialized mode.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_degraded_transitions_total", float64(s.TM.DegradedEnter), "system", s.Name, "edge", "enter")
		e.row("parthtm_degraded_transitions_total", float64(s.TM.DegradedExit), "system", s.Name, "edge", "exit")
	}
	e.family("parthtm_degraded_commits", "counter", "Transactions committed while degraded mode was active.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_degraded_commits_total", float64(s.TM.DegradedCommits), "system", s.Name)
	}
	e.family("parthtm_faults_injected", "counter", "Aborts forced by the fault injector.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_faults_injected_total", float64(s.TM.FaultsInjected), "system", s.Name)
	}
	e.family("parthtm_serialized", "counter", "Transactions sent to the slow path by the resource governor.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_serialized_total", float64(s.TM.ShedSerialized), "system", s.Name, "reason", "shed")
		e.row("parthtm_serialized_total", float64(s.TM.BudgetSerialized), "system", s.Name, "reason", "budget")
	}
	e.family("parthtm_breaker_events", "counter", "Per-thread HTM circuit-breaker state events.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_breaker_events_total", float64(s.TM.BreakerTrips), "system", s.Name, "event", "trip")
		e.row("parthtm_breaker_events_total", float64(s.TM.BreakerProbes), "system", s.Name, "event", "probe")
		e.row("parthtm_breaker_events_total", float64(s.TM.BreakerCloses), "system", s.Name, "event", "close")
		e.row("parthtm_breaker_events_total", float64(s.TM.BreakerSlow), "system", s.Name, "event", "slow")
	}
	e.family("parthtm_watchdog_alarms", "counter", "Progress-watchdog alarms.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_watchdog_alarms_total", float64(s.TM.WatchdogAlarms), "system", s.Name)
	}
	e.family("parthtm_cross_domain", "counter", "Transaction attempts spanning two or more memory domains.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_cross_domain_total", float64(s.TM.CrossDomainCommits), "system", s.Name, "outcome", "commit")
		e.row("parthtm_cross_domain_total", float64(s.TM.CrossDomainAborts), "system", s.Name, "outcome", "abort")
	}
	e.family("parthtm_domain_ring_rollovers", "counter", "Validations that failed because a domain ring lapped the validator.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		e.row("parthtm_domain_ring_rollovers_total", float64(s.TM.DomainRingRollovers), "system", s.Name)
	}

	e.family("parthtm_degraded", "gauge", "Whether degraded serialized mode is active (0/1).")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if !s.HasKernel {
			continue
		}
		v := 0.0
		if s.Degraded {
			v = 1
		}
		e.row("parthtm_degraded", v, "system", s.Name)
	}
	e.family("parthtm_pressure", "gauge", "Kernel back-pressure level.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if s.HasKernel {
			e.row("parthtm_pressure", float64(s.Pressure), "system", s.Name)
		}
	}
	e.family("parthtm_inflight", "gauge", "Transactions admitted by the governor and not yet finished.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if s.HasGov {
			e.row("parthtm_inflight", float64(s.Inflight), "system", s.Name)
		}
	}
	e.family("parthtm_time_budget_seconds", "gauge", "Live per-transaction optimistic-phase time budget.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if s.HasGov {
			e.row("parthtm_time_budget_seconds", float64(s.TimeBudgetNanos)/nanosPerSecond, "system", s.Name)
		}
	}

	e.family("parthtm_commit_latency_seconds", "gauge", "Commit latency quantiles by execution path.")
	e.latencyRows(snap, "parthtm_commit_latency_seconds", true, false)
	e.family("parthtm_commit_latency_count", "gauge", "Commit latency recordings by execution path.")
	e.latencyRows(snap, "parthtm_commit_latency_count", true, true)
	e.family("parthtm_abort_latency_seconds", "gauge", "Attempt-to-abort latency quantiles by abort cause.")
	e.latencyRows(snap, "parthtm_abort_latency_seconds", false, false)
	e.family("parthtm_abort_latency_count", "gauge", "Abort latency recordings by abort cause.")
	e.latencyRows(snap, "parthtm_abort_latency_count", false, true)

	e.family("parthtm_footprint_lines", "gauge", "Transaction footprint quantiles (cache lines / set ways).")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if !s.HasProf {
			continue
		}
		for c := 0; c < int(prof.ClassCount); c++ {
			for o := 0; o < int(prof.OutcomeCount); o++ {
				cell := &s.Foot[c][o]
				if cell.Count == 0 {
					continue
				}
				cl, out := prof.ClassName(uint8(c)), prof.OutcomeName(uint8(o))
				dims := [...]struct {
					dim           string
					p50, p99, max int64
				}{
					{"read", cell.ReadP50, cell.ReadP99, cell.ReadMax},
					{"write", cell.WriteP50, cell.WriteP99, cell.WriteMax},
					{"occ", cell.OccP50, cell.OccP99, cell.OccMax},
				}
				for _, d := range dims {
					e.row("parthtm_footprint_lines", float64(d.p50), "system", s.Name, "class", cl, "outcome", out, "dim", d.dim, "q", "0.50")
					e.row("parthtm_footprint_lines", float64(d.p99), "system", s.Name, "class", cl, "outcome", out, "dim", d.dim, "q", "0.99")
					e.row("parthtm_footprint_lines", float64(d.max), "system", s.Name, "class", cl, "outcome", out, "dim", d.dim, "q", "max")
				}
			}
		}
	}
	e.family("parthtm_footprint_count", "gauge", "Transaction outcomes profiled per footprint cell.")
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if !s.HasProf {
			continue
		}
		for c := 0; c < int(prof.ClassCount); c++ {
			for o := 0; o < int(prof.OutcomeCount); o++ {
				if n := s.Foot[c][o].Count; n != 0 {
					e.row("parthtm_footprint_count", float64(n),
						"system", s.Name, "class", prof.ClassName(uint8(c)), "outcome", prof.OutcomeName(uint8(o)))
				}
			}
		}
	}

	e.printf("# EOF\n")
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// latencyRows emits one latency family's rows: quantiles (in seconds) or
// counts, over commit paths or abort causes, gated on non-empty stats.
func (e *omEnc) latencyRows(snap *Snapshot, sample string, commit, count bool) {
	for i := range snap.Systems {
		s := &snap.Systems[i]
		if !s.HasSink {
			continue
		}
		if commit {
			for p := range s.Latency.Path {
				e.latencyRow(sample, s.Name, "path", trace.PathName(uint8(p)), &s.Latency.Path[p], count)
			}
		} else {
			for c := range s.Latency.Abort {
				e.latencyRow(sample, s.Name, "cause", trace.CauseName(uint8(c)), &s.Latency.Abort[c], count)
			}
		}
	}
}

func (e *omEnc) latencyRow(sample, system, labelKey, labelVal string, st *trace.LatencyStat, count bool) {
	if st.Count == 0 {
		return
	}
	if count {
		e.row(sample, float64(st.Count), "system", system, labelKey, labelVal)
		return
	}
	qs := [...]int64{st.P50, st.P95, st.P99, st.Max}
	for qi, v := range qs {
		e.row(sample, float64(v)/nanosPerSecond,
			"system", system, labelKey, labelVal, "q", quantileLabels[qi])
	}
}

// Point is one parsed sample line.
type Point struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed OpenMetrics scrape.
type Exposition struct {
	// Types maps metric family name (without the _total suffix) to its
	// declared type.
	Types map[string]string
	// Points holds every sample line in exposition order.
	Points []Point
}

// ParseExposition parses OpenMetrics text exposition strictly: every
// sample must belong to a family with a preceding # TYPE line (counter
// samples carry the family name plus _total), label values must be
// well-formed quoted strings, unknown comment directives and malformed
// lines are errors, and the exposition must end with # EOF. It exists so
// the round-trip tests and parthtm-bench -metrics-check validate exactly
// what the encoder claims to emit, not a lenient subset.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawEOF := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			return nil, fmt.Errorf("line %d: blank line in exposition", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case line == "# EOF":
				sawEOF = true
			case strings.HasPrefix(line, "# TYPE "):
				rest := strings.TrimPrefix(line, "# TYPE ")
				name, typ, ok := strings.Cut(rest, " ")
				if !ok || name == "" || typ == "" {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
				}
				exp.Types[name] = typ
			case strings.HasPrefix(line, "# HELP "):
				rest := strings.TrimPrefix(line, "# HELP ")
				name, _, ok := strings.Cut(rest, " ")
				if !ok || name == "" {
					return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
				}
				if _, declared := exp.Types[name]; !declared {
					return nil, fmt.Errorf("line %d: HELP for undeclared family %q", lineNo, name)
				}
			default:
				return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, line)
			}
			continue
		}
		pt, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := pt.Name
		if typ, ok := exp.Types[family]; ok {
			if typ == "counter" {
				return nil, fmt.Errorf("line %d: counter sample %q missing _total suffix", lineNo, pt.Name)
			}
		} else if f, found := strings.CutSuffix(pt.Name, "_total"); found && exp.Types[f] == "counter" {
			family = f
		} else {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, pt.Name)
		}
		exp.Points = append(exp.Points, pt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("exposition does not end with # EOF")
	}
	return exp, nil
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(line string) (Point, error) {
	pt := Point{}
	i := 0
	for i < len(line) && isNameChar(line[i]) {
		i++
	}
	if i == 0 {
		return pt, fmt.Errorf("malformed sample %q", line)
	}
	pt.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		labels := map[string]string{}
		j := 1
		for j < len(rest) {
			if rest[j] == '}' {
				end = j
				break
			}
			k := j
			for k < len(rest) && isNameChar(rest[k]) {
				k++
			}
			if k == j || k >= len(rest) || rest[k] != '=' || k+1 >= len(rest) || rest[k+1] != '"' {
				return pt, fmt.Errorf("malformed label set in %q", line)
			}
			key := rest[j:k]
			val, n, err := unescapeLabel(rest[k+2:])
			if err != nil {
				return pt, fmt.Errorf("%v in %q", err, line)
			}
			labels[key] = val
			j = k + 2 + n + 1 // past key= , opening quote, value, closing quote
			if j < len(rest) && rest[j] == ',' {
				j++
			}
		}
		if end == -1 {
			return pt, fmt.Errorf("unterminated label set in %q", line)
		}
		pt.Labels = labels
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return pt, fmt.Errorf("missing value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return pt, fmt.Errorf("malformed value/timestamp in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return pt, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	pt.Value = v
	return pt, nil
}

func isNameChar(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// unescapeLabel consumes a label value up to its closing quote, returning
// the value and the number of raw bytes consumed (excluding the quote).
func unescapeLabel(s string) (string, int, error) {
	var sb strings.Builder
	i := 0
	for i < len(s) {
		switch s[i] {
		case '"':
			return sb.String(), i, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i+1])
			}
			i += 2
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// Value returns the value of the sample with the given name and exactly
// the given labels (nil matches an unlabelled sample).
func (exp *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for i := range exp.Points {
		pt := &exp.Points[i]
		if pt.Name != name || len(pt.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if pt.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return pt.Value, true
		}
	}
	return 0, false
}

// Families returns the declared family names in sorted order.
func (exp *Exposition) Families() []string {
	out := make([]string, 0, len(exp.Types))
	for name := range exp.Types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
