package obs

import (
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/governor"
	"repro/internal/trace"
)

// FlightConfig sizes the flight recorder. The zero value selects the
// defaults.
type FlightConfig struct {
	// Dir is where dump artifacts are written (required).
	Dir string
	// SampleEvery is the metric-sampling period (10ms when <= 0).
	SampleEvery time.Duration
	// RingCap is the metric-sample ring capacity (512 when <= 0) — at the
	// default cadence about five seconds of history.
	RingCap int
	// Cooldown suppresses further dumps for this long after one fires
	// (2s when <= 0), so an alarm storm leaves one artifact per episode,
	// not hundreds.
	Cooldown time.Duration
	// BreakerBurst is the repeatedly-tripping threshold: this many breaker
	// trips within one sampling period arms a dump (8 when <= 0).
	BreakerBurst uint64
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Millisecond
	}
	if c.RingCap <= 0 {
		c.RingCap = 512
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.BreakerBurst == 0 {
		c.BreakerBurst = 8
	}
	return c
}

// FlightRecorder is the black box: a background sampler fills a bounded
// ring of registry snapshots, and when something goes wrong — a watchdog
// alarm, a breaker-trip storm, a campaign phase that ends degraded, a
// SIGQUIT — the recent history is dumped as a timestamped artifact pair:
// a Chrome/Perfetto trace JSON (decodable by parthtm-bench -trace-check)
// and a metrics CSV of the ring.
//
// Triggers only *arm* the recorder; the artifact is written at the next
// quiesce point (Flush, called by the harness between campaign phases and
// at end of run), because the trace rings are single-writer memory that
// may only be read once workers have stopped. DumpNow exists for
// boundaries where the caller knows the workers are quiet, and the
// SIGQUIT handler uses it best-effort (a wedged run is about to die; a
// torn trace beats no trace).
type FlightRecorder struct {
	cfg FlightConfig
	reg *Registry

	mu      sync.Mutex
	ring    []Snapshot
	pos     int
	wrap    bool
	prev    Snapshot
	hasPrev bool
	armed   string // first pending trigger reason ("" = disarmed)
	lastDmp time.Time
	dumps   []string
	sink    *trace.Sink

	stop chan struct{}
	done chan struct{}
}

// NewFlightRecorder creates a recorder over reg, dumping into cfg.Dir.
func NewFlightRecorder(reg *Registry, cfg FlightConfig) *FlightRecorder {
	return &FlightRecorder{cfg: cfg.withDefaults(), reg: reg}
}

// SetSink attaches the trace sink whose event rings are dumped into the
// Perfetto artifact. Boundary-only.
func (f *FlightRecorder) SetSink(s *trace.Sink) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.sink = s
	f.mu.Unlock()
}

// Start launches the background sampler. Stop must be called before the
// process exits if a final Flush is wanted.
func (f *FlightRecorder) Start() {
	if f == nil || f.stop != nil {
		return
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go f.run(f.stop, f.done)
}

// Stop halts the background sampler (without flushing).
func (f *FlightRecorder) Stop() {
	if f == nil || f.stop == nil {
		return
	}
	close(f.stop)
	<-f.done
	f.stop, f.done = nil, nil
}

func (f *FlightRecorder) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(f.cfg.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			f.sampleOnce()
		}
	}
}

// sampleOnce takes one coherent sample into the ring and checks the
// counter-delta triggers: any watchdog alarm, or a breaker-trip burst
// beyond BreakerBurst within one period.
func (f *FlightRecorder) sampleOnce() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ring == nil {
		f.ring = make([]Snapshot, f.cfg.RingCap)
	}
	slot := &f.ring[f.pos]
	f.reg.Sample(slot)
	f.pos++
	if f.pos == len(f.ring) {
		f.pos, f.wrap = 0, true
	}
	if f.hasPrev {
		for i := range slot.Systems {
			cur := &slot.Systems[i]
			var prev *SystemSample
			for j := range f.prev.Systems {
				if f.prev.Systems[j].Name == cur.Name {
					prev = &f.prev.Systems[j]
					break
				}
			}
			if prev == nil {
				continue
			}
			d := cur.TM.Delta(prev.TM)
			if d.WatchdogAlarms > 0 {
				f.armLocked("watchdog-" + cur.Name)
			}
			if d.BreakerTrips >= f.cfg.BreakerBurst {
				f.armLocked("breaker-storm-" + cur.Name)
			}
		}
	}
	// Deep-copying the sample into prev would allocate per tick; reusing
	// prev's slice via the same fill path keeps the steady state clean.
	f.prev.Systems = f.prev.Systems[:0]
	f.prev.Systems = append(f.prev.Systems[:0], slot.Systems...)
	f.prev.TS, f.prev.Seq = slot.TS, slot.Seq
	f.hasPrev = true
}

// armLocked records the first pending trigger reason (mu held).
func (f *FlightRecorder) armLocked(reason string) {
	if f.armed == "" {
		f.armed = sanitizeReason(reason)
	}
}

// NoteAlarm arms the recorder from a watchdog alarm callback. Safe to
// call from the watchdog goroutine; allocation-light and non-blocking
// beyond a short mutex.
func (f *FlightRecorder) NoteAlarm(a governor.Alarm) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.armLocked("watchdog-" + a.Kind.String())
	f.mu.Unlock()
}

// ArmPhaseDegraded arms the recorder because a campaign phase ended with
// the system still in degraded mode.
func (f *FlightRecorder) ArmPhaseDegraded(system, phase string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.armLocked("degraded-" + system + "-" + phase)
	f.mu.Unlock()
}

// Armed reports the pending trigger reason ("" when disarmed).
func (f *FlightRecorder) Armed() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

// Flush writes the armed dump, if any, tagging the artifact with label
// (a phase or run identifier). Call only at quiesce points — workers
// stopped or between campaign phases — because it reads the trace rings.
// Returns the artifact basename ("" when disarmed or within cooldown).
func (f *FlightRecorder) Flush(label string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	reason := f.armed
	f.armed = ""
	if reason == "" {
		f.mu.Unlock()
		return "", nil
	}
	if !f.lastDmp.IsZero() && time.Since(f.lastDmp) < f.cfg.Cooldown {
		f.mu.Unlock()
		return "", nil
	}
	name, err := f.dumpLocked(reason, label)
	f.mu.Unlock()
	return name, err
}

// DumpNow writes an artifact unconditionally (no arming, no cooldown).
// The SIGQUIT handler uses it; tests use it to exercise the writer.
func (f *FlightRecorder) DumpNow(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpLocked(sanitizeReason(reason), "")
}

// Dumps returns the artifact basenames written so far.
func (f *FlightRecorder) Dumps() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.dumps))
	copy(out, f.dumps)
	return out
}

// dumpLocked writes the trace JSON and metrics CSV artifacts (mu held).
func (f *FlightRecorder) dumpLocked(reason, label string) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405.000")
	stamp = strings.ReplaceAll(stamp, ".", "_")
	base := "flight-" + reason
	if label != "" {
		base += "-" + sanitizeReason(label)
	}
	base += "-" + stamp

	if f.sink != nil {
		tf, err := os.Create(filepath.Join(f.cfg.Dir, base+".trace.json"))
		if err != nil {
			return "", err
		}
		err = trace.WriteChrome(tf, f.sink)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", fmt.Errorf("flight trace dump: %w", err)
		}
	}

	mf, err := os.Create(filepath.Join(f.cfg.Dir, base+".metrics.csv"))
	if err != nil {
		return "", err
	}
	err = f.writeCSVLocked(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("flight metrics dump: %w", err)
	}

	f.lastDmp = time.Now()
	f.dumps = append(f.dumps, base)
	return base, nil
}

// flightCSVHeader is the metrics-CSV column set: the ring sample
// identity, every tm.Snapshot counter, and the live gauges.
const flightCSVHeader = "ts_ns,seq,system," +
	"commits_htm,commits_sw,commits_gl," +
	"aborts_conflict,aborts_capacity,aborts_explicit,aborts_other," +
	"serial_nanos,escalations_budget,escalations_starve,escalations_lemming," +
	"degraded_enter,degraded_exit,degraded_commits,faults_injected," +
	"shed_serialized,budget_serialized," +
	"breaker_trips,breaker_probes,breaker_closes,breaker_slow," +
	"watchdog_alarms,cross_domain_commits,cross_domain_aborts,domain_ring_rollovers," +
	"inflight,time_budget_ns,degraded,pressure"

// writeCSVLocked writes the ring, oldest sample first (mu held).
func (f *FlightRecorder) writeCSVLocked(w *os.File) error {
	if _, err := fmt.Fprintln(w, flightCSVHeader); err != nil {
		return err
	}
	emit := func(snap *Snapshot) error {
		for i := range snap.Systems {
			s := &snap.Systems[i]
			t := &s.TM
			degraded := 0
			if s.Degraded {
				degraded = 1
			}
			row := strings.Join([]string{
				strconv.FormatInt(snap.TS, 10), strconv.FormatUint(snap.Seq, 10), s.Name,
				u(t.CommitsHTM), u(t.CommitsSW), u(t.CommitsGL),
				u(t.AbortsConflict), u(t.AbortsCapacity), u(t.AbortsExplicit), u(t.AbortsOther),
				strconv.FormatInt(t.SerialNanos, 10),
				u(t.EscalationsBudget), u(t.EscalationsStarve), u(t.EscalationsLemming),
				u(t.DegradedEnter), u(t.DegradedExit), u(t.DegradedCommits), u(t.FaultsInjected),
				u(t.ShedSerialized), u(t.BudgetSerialized),
				u(t.BreakerTrips), u(t.BreakerProbes), u(t.BreakerCloses), u(t.BreakerSlow),
				u(t.WatchdogAlarms), u(t.CrossDomainCommits), u(t.CrossDomainAborts), u(t.DomainRingRollovers),
				strconv.FormatInt(s.Inflight, 10), strconv.FormatInt(s.TimeBudgetNanos, 10),
				strconv.Itoa(degraded), strconv.FormatInt(s.Pressure, 10),
			}, ",")
			if _, err := fmt.Fprintln(w, row); err != nil {
				return err
			}
		}
		return nil
	}
	if f.wrap {
		for i := f.pos; i < len(f.ring); i++ {
			if err := emit(&f.ring[i]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < f.pos; i++ {
		if err := emit(&f.ring[i]); err != nil {
			return err
		}
	}
	return nil
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }

// sanitizeReason maps a trigger reason onto the filename-safe alphabet.
func sanitizeReason(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// InstallSIGQUIT registers a best-effort SIGQUIT dump: on the first
// SIGQUIT the recorder dumps immediately (the trace read may be torn —
// the process is presumed wedged) and the signal is re-raised with the
// default handler so the usual goroutine dump still happens. Returns an
// uninstall func.
func (f *FlightRecorder) InstallSIGQUIT() func() {
	if f == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		if name, err := f.DumpNow("sigquit"); err == nil && name != "" {
			fmt.Fprintf(os.Stderr, "flight recorder: dumped %s on SIGQUIT\n", name)
		}
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
