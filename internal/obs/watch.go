package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Watch renders a refreshing in-terminal view of a registry: per system
// one line of live rates (throughput, abort mix), path split, p99 commit
// latency per path, and the degraded/breaker state — the parthtm-bench
// -watch dashboard. Rates come from tm.Snapshot.Delta between successive
// samples, so a Stats.Reset between frames shows as a quiet frame, not
// as negative rates.
type Watch struct {
	reg   *Registry
	w     io.Writer
	every time.Duration

	mu      sync.Mutex
	snap    Snapshot
	prev    Snapshot
	hasPrev bool
	lines   int

	stop chan struct{}
	done chan struct{}
}

// NewWatch creates a watch over reg writing frames to w every interval
// (250ms when <= 0).
func NewWatch(reg *Registry, w io.Writer, every time.Duration) *Watch {
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	return &Watch{reg: reg, w: w, every: every}
}

// Start launches the renderer goroutine.
func (v *Watch) Start() {
	if v == nil || v.stop != nil {
		return
	}
	v.stop = make(chan struct{})
	v.done = make(chan struct{})
	go v.run(v.stop, v.done)
}

// Stop halts the renderer, leaving the last frame on screen.
func (v *Watch) Stop() {
	if v == nil || v.stop == nil {
		return
	}
	close(v.stop)
	<-v.done
	v.stop, v.done = nil, nil
}

func (v *Watch) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(v.every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			v.Frame()
		}
	}
}

// Frame samples the registry and redraws the view in place (ANSI
// cursor-up over the previous frame).
func (v *Watch) Frame() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.reg.Sample(&v.snap)
	var sb strings.Builder
	if v.lines > 0 {
		fmt.Fprintf(&sb, "\x1b[%dA", v.lines)
	}
	n := v.renderLocked(&sb, true)
	v.lines = n
	_, _ = io.WriteString(v.w, sb.String())
	v.retain()
}

// RenderOnce samples the registry and writes one plain frame (no cursor
// control) to w — the testable core of the dashboard.
func (v *Watch) RenderOnce(w io.Writer) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.reg.Sample(&v.snap)
	var sb strings.Builder
	v.renderLocked(&sb, false)
	_, _ = io.WriteString(w, sb.String())
	v.retain()
}

// retain keeps the current sample as the next frame's rate baseline
// (mu held).
func (v *Watch) retain() {
	v.prev.Systems = append(v.prev.Systems[:0], v.snap.Systems...)
	v.prev.TS, v.prev.Seq = v.snap.TS, v.snap.Seq
	v.hasPrev = true
}

// renderLocked writes one frame and returns its line count (mu held).
func (v *Watch) renderLocked(sb *strings.Builder, ansi bool) int {
	clear := ""
	if ansi {
		clear = "\x1b[2K"
	}
	dt := time.Duration(0)
	if v.hasPrev {
		dt = time.Duration(v.snap.TS - v.prev.TS)
	}
	fmt.Fprintf(sb, "%sparthtm watch · %d system(s) · sample #%d\n", clear, len(v.snap.Systems), v.snap.Seq)
	lines := 1
	for i := range v.snap.Systems {
		s := &v.snap.Systems[i]
		d := s.TM
		if v.hasPrev {
			for j := range v.prev.Systems {
				if v.prev.Systems[j].Name == s.Name {
					d = s.TM.Delta(v.prev.Systems[j].TM)
					break
				}
			}
		}
		commits, aborts := d.Commits(), d.Aborts()
		rate := 0.0
		if dt > 0 {
			rate = float64(commits) / dt.Seconds()
		}
		pathMix := mixString(d.CommitsHTM, d.CommitsSW, d.CommitsGL, "htm", "sw", "gl")
		abortMix := mixString(d.AbortsConflict, d.AbortsCapacity, d.AbortsExplicit+d.AbortsOther, "con", "cap", "oth")
		state := "ok"
		switch {
		case s.Degraded:
			state = "DEGRADED"
		case d.BreakerTrips > 0:
			state = "breaker-tripping"
		}
		fmt.Fprintf(sb, "%s%-16s %10.0f tx/s  commits %s  aborts %d (%s)  %s",
			clear, s.Name, rate, pathMix, aborts, abortMix, state)
		if s.HasKernel && s.Pressure != 0 {
			fmt.Fprintf(sb, "  pressure=%d", s.Pressure)
		}
		if d.WatchdogAlarms > 0 {
			fmt.Fprintf(sb, "  ALARMS+%d", d.WatchdogAlarms)
		}
		sb.WriteByte('\n')
		lines++
		if s.HasSink {
			fmt.Fprintf(sb, "%s%-16s p99 htm=%s sw=%s gl=%s\n", clear, "",
				latP99(&s.Latency.Path[trace.PathHTM]),
				latP99(&s.Latency.Path[trace.PathSW]),
				latP99(&s.Latency.Path[trace.PathGL]))
			lines++
		}
	}
	return lines
}

// mixString renders a three-way percentage split of a total.
func mixString(a, b, c uint64, la, lb, lc string) string {
	total := a + b + c
	if total == 0 {
		return "-"
	}
	pct := func(v uint64) int { return int(float64(v) / float64(total) * 100) }
	return fmt.Sprintf("%s%d%%/%s%d%%/%s%d%%", la, pct(a), lb, pct(b), lc, pct(c))
}

// latP99 formats one path's p99 ("-" when the path is unused).
func latP99(st *trace.LatencyStat) string {
	if st.Count == 0 {
		return "-"
	}
	return time.Duration(st.P99).String()
}
