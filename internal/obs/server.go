package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server exposes a Registry over HTTP:
//
//	/metrics   OpenMetrics text exposition, one coherent sample per scrape
//	/healthz   liveness probe ("ok")
//	/snapshot  the same coherent sample as JSON
//
// Each handler takes exactly one Registry.Sample per request; concurrent
// scrapes serialize on the server's sample buffer, so two overlapping
// scrapes see two distinct coherent samples, never an interleaving. The
// encoder runs on the request goroutine — well outside any hardware
// window — and the sample buffer is reused across scrapes, so the
// steady-state sampling work allocates nothing (the text/JSON encoding
// does, per scrape, by design).
type Server struct {
	reg *Registry

	mu   sync.Mutex // serializes Sample+encode across scrapes
	snap Snapshot
	buf  bytes.Buffer

	srv *http.Server
	ln  net.Listener
}

// NewServer returns an unstarted server over reg.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg}
}

// Handler returns the telemetry mux (for tests and for embedding into an
// existing server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine. It returns the bound address, so callers that
// asked for :0 can find the endpoint.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Stop shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Stop() {
	if s.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	s.srv, s.ln = nil, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reg.Sample(&s.snap)
	s.buf.Reset()
	err := WriteOpenMetrics(&s.buf, &s.snap)
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body := append([]byte(nil), s.buf.Bytes()...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reg.Sample(&s.snap)
	body, err := json.MarshalIndent(&s.snap, "", "  ")
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(body, '\n'))
}
