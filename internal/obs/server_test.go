package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Register("sys", fullSource(t))
	srv := NewServer(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, ContentType)
	}
	exp, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape is not strict OpenMetrics: %v", err)
	}
	if v, ok := exp.Value("parthtm_commits_total",
		map[string]string{"system": "sys", "path": "htm"}); !ok || v != 100 {
		t.Fatalf("scraped commits = %g, ok %v", v, ok)
	}

	// Each scrape is one coherent snapshot: the scrape counter advances.
	_, body2 := get("/metrics")
	exp2, err := ParseExposition(strings.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := exp.Value("parthtm_scrapes_total", nil)
	s2, _ := exp2.Value("parthtm_scrapes_total", nil)
	if s2 != s1+1 {
		t.Fatalf("scrape seq did not advance: %g then %g", s1, s2)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, body = get("/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if len(snap.Systems) != 1 || snap.Systems[0].Name != "sys" ||
		snap.Systems[0].TM.CommitsHTM != 100 {
		t.Fatalf("/snapshot = %+v", snap)
	}
}

func TestServerStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Register("sys", fullSource(t))
	srv := NewServer(reg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("bound server unreachable at %s: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	srv.Stop()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Stop")
	}
}
