package obs

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/governor"
	"repro/internal/prof"
	"repro/internal/tm"
	"repro/internal/trace"
)

// fakeKernel satisfies KernelGauges for registry tests.
type fakeKernel struct {
	degraded bool
	pressure int64
}

func (k *fakeKernel) Degraded() bool  { return k.degraded }
func (k *fakeKernel) Pressure() int64 { return k.pressure }

// fullSource builds a source with every optional surface attached and a
// few recognizable counter values.
func fullSource(t testing.TB) Source {
	t.Helper()
	stats := &tm.Stats{}
	sh := stats.Shard(0)
	sh.CommitsHTM.Add(100)
	sh.CommitsGL.Add(3)
	sh.AbortsConflict.Add(7)
	sh.WatchdogAlarms.Add(1)
	sh.AddSerial(1500 * time.Millisecond)

	sink := trace.NewSink(64)
	lat := sink.Lat(0)
	for i := 0; i < 10; i++ {
		lat.Path[trace.PathHTM].Add(int64(1000 * (i + 1)))
		lat.Abort[trace.CauseConflict].Add(int64(500 * (i + 1)))
	}

	p := prof.New(prof.Config{})
	ps := p.Shard(0)
	for i := 0; i < 10; i++ {
		ps.RecordFootprint(prof.ClassFast, prof.OutcomeCommit, 8, 4, 12)
	}

	gov := governor.New(governor.DefaultConfig())
	return Source{Stats: stats, Sink: sink, Prof: p, Gov: gov,
		Kernel: &fakeKernel{degraded: true, pressure: 5}}
}

func TestRegistryRegisterReplace(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatalf("empty registry Len = %d", reg.Len())
	}
	// A source without Stats is refused.
	reg.Register("ghost", Source{})
	if reg.Len() != 0 {
		t.Fatalf("nil-Stats registration was accepted")
	}

	a, b := &tm.Stats{}, &tm.Stats{}
	a.Shard(0).CommitsHTM.Add(1)
	b.Shard(0).CommitsHTM.Add(2)
	reg.Register("sys", Source{Stats: a})
	reg.Register("other", Source{Stats: a})
	reg.Register("sys", Source{Stats: b}) // replace keeps order
	names := reg.Names()
	if len(names) != 2 || names[0] != "sys" || names[1] != "other" {
		t.Fatalf("Names = %v, want [sys other]", names)
	}
	var snap Snapshot
	reg.Sample(&snap)
	if got := snap.Systems[0].TM.CommitsHTM; got != 2 {
		t.Fatalf("replaced source not sampled: CommitsHTM = %d, want 2", got)
	}
}

func TestSampleCoherence(t *testing.T) {
	reg := NewRegistry()
	reg.Register("full", fullSource(t))
	bare := &tm.Stats{}
	bare.Shard(0).CommitsSW.Add(9)
	reg.Register("bare", Source{Stats: bare})

	var snap Snapshot
	reg.Sample(&snap)
	if snap.Seq != 1 {
		t.Fatalf("Seq = %d, want 1", snap.Seq)
	}
	if len(snap.Systems) != 2 {
		t.Fatalf("Systems = %d, want 2", len(snap.Systems))
	}
	full, bareS := &snap.Systems[0], &snap.Systems[1]
	if full.TM.CommitsHTM != 100 || full.TM.AbortsConflict != 7 {
		t.Fatalf("full TM sample = %+v", full.TM)
	}
	if !full.HasSink || !full.HasProf || !full.HasGov || !full.HasKernel {
		t.Fatalf("full source presence flags = %+v", full)
	}
	if !full.Degraded || full.Pressure != 5 {
		t.Fatalf("kernel gauges = degraded %v pressure %d", full.Degraded, full.Pressure)
	}
	if full.Latency.Path[trace.PathHTM].Count != 10 {
		t.Fatalf("latency count = %d, want 10", full.Latency.Path[trace.PathHTM].Count)
	}
	if full.Foot[prof.ClassFast][prof.OutcomeCommit].Count != 10 {
		t.Fatalf("footprint count = %d, want 10",
			full.Foot[prof.ClassFast][prof.OutcomeCommit].Count)
	}
	if bareS.HasSink || bareS.HasProf || bareS.HasGov || bareS.HasKernel {
		t.Fatalf("bare source claims optional surfaces: %+v", bareS)
	}
	if bareS.TM.CommitsSW != 9 {
		t.Fatalf("bare TM sample = %+v", bareS.TM)
	}

	// Re-sampling into the same destination bumps Seq and keeps shape.
	reg.Sample(&snap)
	if snap.Seq != 2 || len(snap.Systems) != 2 {
		t.Fatalf("resample: Seq=%d Systems=%d", snap.Seq, len(snap.Systems))
	}
}

// TestSampleAllocFree pins the sampling-path allocation contract: once the
// destination snapshot has grown to the registry's size, Sample does not
// allocate — it may run at flight-recorder cadence forever without GC
// pressure. The encoder is exempt (it runs per scrape and may allocate).
func TestSampleAllocFree(t *testing.T) {
	reg := NewRegistry()
	reg.Register("full", fullSource(t))
	var snap Snapshot
	reg.Sample(&snap) // grow once
	allocs := testing.AllocsPerRun(100, func() {
		reg.Sample(&snap)
	})
	if allocs != 0 {
		t.Fatalf("Registry.Sample allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestConcurrentScrape hammers Sample and the encoder from several
// goroutines while writer goroutines mutate every live-sampleable surface.
// Run under -race this is the proof that the live plane reads only
// atomic state.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	src := fullSource(t)
	reg.Register("sys", src)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sh := src.Stats.Shard(id)
			lat := src.Sink.Lat(id)
			ps := src.Prof.Shard(id)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sh.CommitsHTM.Inc()
				sh.AbortsConflict.Inc()
				lat.Path[trace.PathHTM].Add(int64(i%4096 + 1))
				ps.RecordFootprint(prof.ClassFast, prof.OutcomeCommit, 4, 2, 6)
			}
		}(w)
	}
	var scrapers sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var snap Snapshot
			for i := 0; i < 50; i++ {
				reg.Sample(&snap)
				if err := WriteOpenMetrics(io.Discard, &snap); err != nil {
					t.Errorf("WriteOpenMetrics: %v", err)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	wg.Wait()

	var snap Snapshot
	reg.Sample(&snap)
	if snap.Systems[0].TM.CommitsHTM <= 100 {
		t.Fatalf("writers made no progress: CommitsHTM = %d", snap.Systems[0].TM.CommitsHTM)
	}
}
