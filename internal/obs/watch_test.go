package obs

import (
	"strings"
	"testing"

	"repro/internal/tm"
)

func TestWatchRenderOnce(t *testing.T) {
	reg := NewRegistry()
	src := fullSource(t)
	reg.Register("Part-HTM", src)
	bare := &tm.Stats{}
	reg.Register("bare", Source{Stats: bare})

	v := NewWatch(reg, nil, 0)
	var sb strings.Builder
	v.RenderOnce(&sb)
	first := sb.String()
	if !strings.Contains(first, "Part-HTM") || !strings.Contains(first, "bare") {
		t.Fatalf("frame missing systems:\n%s", first)
	}
	if !strings.Contains(first, "2 system(s)") {
		t.Fatalf("frame missing header:\n%s", first)
	}
	if strings.Contains(first, "\x1b[") {
		t.Fatalf("RenderOnce emitted ANSI control codes:\n%s", first)
	}
	// The full source carries a sink, so its p99 line renders.
	if !strings.Contains(first, "p99 htm=") {
		t.Fatalf("frame missing latency line:\n%s", first)
	}
	// The kernel gauge says degraded.
	if !strings.Contains(first, "DEGRADED") {
		t.Fatalf("frame missing degraded state:\n%s", first)
	}

	// Rates are deltas: commits between frames show up, resets do not go
	// negative.
	src.Stats.Shard(0).CommitsHTM.Add(500)
	sb.Reset()
	v.RenderOnce(&sb)
	second := sb.String()
	if !strings.Contains(second, "sample #2") {
		t.Fatalf("second frame did not advance seq:\n%s", second)
	}
	src.Stats.Reset()
	sb.Reset()
	v.RenderOnce(&sb) // must not panic or render negative counts
	if strings.Contains(sb.String(), "-") && strings.Contains(sb.String(), "tx/s-") {
		t.Fatalf("negative rate after reset:\n%s", sb.String())
	}
}

func TestMixString(t *testing.T) {
	if got := mixString(0, 0, 0, "a", "b", "c"); got != "-" {
		t.Fatalf("empty mix = %q", got)
	}
	if got := mixString(50, 25, 25, "a", "b", "c"); got != "a50%/b25%/c25%" {
		t.Fatalf("mix = %q", got)
	}
}
