package tmtest

import (
	"testing"

	"repro/internal/tm"
)

func TestCounterStressAllSystems(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(8, 1<<16)
		CounterStress(t, sys, 8, 150)
	})
}

func TestBankStressAllSystems(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(6, 1<<16)
		BankStress(t, sys, 6, 120, 16, false)
	})
}

func TestBankStressWithPartitionPoints(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(6, 1<<16)
		BankStress(t, sys, 6, 120, 16, true)
	})
}

func TestLargeTxStressAllSystems(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(4, 1<<18)
		// 48 lines per transaction: far above the conformance engine's
		// per-set associativity for adjacent lines (sets cycle every 64
		// lines, so 48 adjacent lines spread across 48 sets — raise to
		// overflow the total budget instead via many pauses).
		LargeTxStress(t, sys, 4, 40, 48)
	})
}

func TestLongTxStressAllSystems(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(4, 1<<14)
		LongTxStress(t, sys, 4, 30, 300, 4)
	})
}

func TestSingleThreadedSmoke(t *testing.T) {
	RunAll(t, func(t *testing.T, fac Factory) {
		sys := fac.New(1, 1<<14)
		m := sys.Memory()
		a := m.Alloc(2)
		m.Store(a, 10)
		sys.Atomic(0, func(x tm.Tx) {
			v := x.Read(a)
			x.Write(a+1, v*2)
			x.Pause()
			x.Work(10)
			x.NonTxWork(10)
			x.Write(a, v+1)
			if x.Thread() != 0 {
				t.Errorf("Thread() = %d, want 0", x.Thread())
			}
		})
		if m.Load(a) != 11 || m.Load(a+1) != 20 {
			t.Fatalf("%s: got (%d,%d), want (11,20)", sys.Name(), m.Load(a), m.Load(a+1))
		}
		// One snapshot per check: each accessor call would re-sum the live
		// shards and could disagree with the previous one mid-run.
		if st := sys.Stats().Snapshot(); st.Commits() != 1 {
			t.Fatalf("%s: commits = %d, want 1", sys.Name(), st.Commits())
		}
	})
}
