package tmtest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

// newShardedSystem builds a Part-HTM system with n memory domains on the
// partitioned path (no fast path, so every transaction exercises the
// software cross-domain commit machinery under test).
func newShardedSystem(t *testing.T, n, threads int, opaque bool) *core.System {
	t.Helper()
	words := 1 << 18
	cfg := core.DefaultConfig()
	cfg.NoFastPath = true
	cfg.Domains = n
	cfg.Opaque = opaque
	if opaque {
		words *= 2
	}
	eng := htm.New(mem.New(words), testEngineConfig())
	return core.New(eng, threads, cfg)
}

// TestCrossDomainLostUpdate is the cross-domain atomicity oracle: every
// transaction increments one counter in domain 0 and one in domain 1 (with
// a partition point between the two), so each commit must stitch both
// domains' rings. Any lost update on either side means the two-domain
// publication was not atomic.
func TestCrossDomainLostUpdate(t *testing.T) {
	for _, opaque := range []bool{false, true} {
		name := "plain"
		if opaque {
			name = "opaque"
		}
		t.Run(name, func(t *testing.T) {
			const threads, perThread = 4, 250
			sys := newShardedSystem(t, 2, threads, opaque)
			ds := sys.DomainSet()
			a := ds.AllocLinesIn(0, 1)
			b := ds.AllocLinesIn(1, 1)
			if ds.Of(a) != 0 || ds.Of(b) != 1 {
				t.Fatalf("routing: Of(a)=%d Of(b)=%d", ds.Of(a), ds.Of(b))
			}
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						sys.Atomic(id, func(x tm.Tx) {
							x.Write(a, x.Read(a)+1)
							x.Pause()
							x.Write(b, x.Read(b)+1)
						})
					}
				}(w)
			}
			wg.Wait()
			want := uint64(threads * perThread)
			m := sys.Memory()
			if got := m.Load(a); got != want {
				t.Fatalf("domain-0 counter = %d, want %d (lost updates)", got, want)
			}
			if got := m.Load(b); got != want {
				t.Fatalf("domain-1 counter = %d, want %d (lost updates)", got, want)
			}
			st := sys.Stats().Snapshot()
			if st.CrossDomainCommits == 0 {
				t.Fatal("no cross-domain commits recorded — the oracle did not exercise the cross-domain path")
			}
		})
	}
}

// TestCrossDomainWriteSkew probes serializability across the domain
// boundary: x lives in domain 0 and y in domain 1; transaction A writes x
// only if y is zero, transaction B writes y only if x is zero. Each is
// read-only in one domain and writes the other — exactly the shape where a
// missing post-publish validation of the read-only domain would let both
// commit (write skew: x and y both set in one round).
func TestCrossDomainWriteSkew(t *testing.T) {
	const rounds = 400
	sys := newShardedSystem(t, 2, 2, false)
	ds := sys.DomainSet()
	x := ds.AllocLinesIn(0, 1)
	y := ds.AllocLinesIn(1, 1)
	m := sys.Memory()

	for r := 0; r < rounds; r++ {
		m.Store(x, 0)
		m.Store(y, 0)
		var start, wg sync.WaitGroup
		start.Add(1)
		wg.Add(2)
		go func() {
			defer wg.Done()
			start.Wait()
			sys.Atomic(0, func(tx tm.Tx) {
				if tx.Read(y) == 0 {
					tx.Write(x, 1)
				}
			})
		}()
		go func() {
			defer wg.Done()
			start.Wait()
			sys.Atomic(1, func(tx tm.Tx) {
				if tx.Read(x) == 0 {
					tx.Write(y, 1)
				}
			})
		}()
		start.Done()
		wg.Wait()
		if m.Load(x) == 1 && m.Load(y) == 1 {
			t.Fatalf("round %d: write skew — both x and y set", r)
		}
	}
}

// TestCrossDomainOppositeOrderNoDeadlock is the deterministic
// deadlock-freedom test: two threads repeatedly run transactions touching
// domains {0, 1} in opposite body order (one writes domain 0 then domain 1,
// the other domain 1 then domain 0). Commit-time acquisition is canonical
// (ascending domain order) regardless of body order and a claimed timestamp
// is always published before the committer blocks on anything else, so the
// pairs must always drain; a watchdog converts a wedged pair into a
// failure. Conservation is checked at the end.
func TestCrossDomainOppositeOrderNoDeadlock(t *testing.T) {
	const pairs = 300
	sys := newShardedSystem(t, 2, 2, false)
	ds := sys.DomainSet()
	a := ds.AllocLinesIn(0, 1)
	b := ds.AllocLinesIn(1, 1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				sys.Atomic(0, func(x tm.Tx) {
					x.Write(a, x.Read(a)+1)
					x.Pause()
					x.Write(b, x.Read(b)+1)
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				sys.Atomic(1, func(x tm.Tx) {
					x.Write(b, x.Read(b)+1)
					x.Pause()
					x.Write(a, x.Read(a)+1)
				})
			}
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("opposite-order cross-domain pairs wedged (deadlock)")
	}
	want := uint64(2 * pairs)
	m := sys.Memory()
	if got := m.Load(a); got != want {
		t.Fatalf("counter a = %d, want %d", got, want)
	}
	if got := m.Load(b); got != want {
		t.Fatalf("counter b = %d, want %d", got, want)
	}
}

// TestShardedSingleDomainTxns: on a sharded topology, transactions whose
// footprints stay inside one domain still interleave correctly with
// cross-domain traffic touching the same counters.
func TestShardedMixedTraffic(t *testing.T) {
	const threads, perThread = 4, 200
	sys := newShardedSystem(t, 4, threads, false)
	ds := sys.DomainSet()
	ctr := make([]mem.Addr, 4)
	for d := range ctr {
		ctr[d] = ds.AllocLinesIn(d, 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			home := ctr[id%4]
			next := ctr[(id+1)%4]
			for i := 0; i < perThread; i++ {
				if i%3 == 0 {
					// Cross-domain: move a unit from home to neighbour.
					sys.Atomic(id, func(x tm.Tx) {
						x.Write(home, x.Read(home)+1)
						x.Pause()
						x.Write(next, x.Read(next)+1)
					})
				} else {
					sys.Atomic(id, func(x tm.Tx) {
						x.Write(home, x.Read(home)+2)
					})
				}
			}
		}(w)
	}
	wg.Wait()
	m := sys.Memory()
	var total uint64
	for _, c := range ctr {
		total += m.Load(c)
	}
	// Per thread: ceil(perThread/3) cross ops add 2 each; the rest add 2.
	want := uint64(threads * perThread * 2)
	if total != want {
		t.Fatalf("grand total = %d, want %d", total, want)
	}
}
