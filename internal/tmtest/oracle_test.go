package tmtest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/seq"
	"repro/internal/tm"
)

// script is a generated sequence of transactions, each a sequence of
// operations over a small address window. Executed single-threaded, every
// system must produce exactly the sequential executor's final memory state
// — regardless of which paths (fast, partitioned, slow) its transactions
// took internally.
type script struct {
	txns [][]scriptOp
}

type scriptOp struct {
	kind  uint8 // 0 read, 1 write, 2 write-derived, 3 pause, 4 work
	slot  uint8 // address index within the window
	value uint64
}

const scriptWindow = 24 // addresses; spread over distinct lines below

// genScript derives a script from a random seed (quick generates seeds, we
// build structure deterministically from them — simpler than implementing
// quick.Generator for nested slices).
func genScript(seed int64) script {
	rng := rand.New(rand.NewSource(seed))
	nTx := 1 + rng.Intn(6)
	var s script
	for i := 0; i < nTx; i++ {
		nOps := 1 + rng.Intn(24)
		ops := make([]scriptOp, nOps)
		for j := range ops {
			ops[j] = scriptOp{
				kind:  uint8(rng.Intn(5)),
				slot:  uint8(rng.Intn(scriptWindow)),
				value: uint64(rng.Intn(1000)) + 1,
			}
		}
		s.txns = append(s.txns, ops)
	}
	return s
}

// run executes the script single-threaded on sys and returns the window's
// final contents.
func (s script) run(sys tm.System) [scriptWindow]uint64 {
	m := sys.Memory()
	base := m.AllocLines(scriptWindow) // one line per address: realistic footprints
	addr := func(slot uint8) mem.Addr { return base + mem.Addr(int(slot)*mem.LineWords) }
	for i := 0; i < scriptWindow; i++ {
		m.Store(addr(uint8(i)), uint64(i)*17)
	}
	for _, ops := range s.txns {
		sys.Atomic(0, func(x tm.Tx) {
			var acc uint64
			for _, op := range ops {
				switch op.kind {
				case 0:
					acc += x.Read(addr(op.slot))
				case 1:
					x.Write(addr(op.slot), op.value)
				case 2:
					// Value derived from prior reads: exercises the replay
					// machinery's value checking.
					x.Write(addr(op.slot), acc+op.value)
				case 3:
					x.Pause()
				case 4:
					x.Work(int64(op.value % 64))
				}
			}
		})
	}
	var out [scriptWindow]uint64
	for i := 0; i < scriptWindow; i++ {
		out[i] = m.Load(addr(uint8(i)))
	}
	return out
}

// TestQuickSequentialEquivalence: for random scripts, every system's
// single-threaded result equals the sequential executor's.
func TestQuickSequentialEquivalence(t *testing.T) {
	for _, fac := range Factories() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) {
			f := func(seed int64) bool {
				s := genScript(seed)
				want := s.run(seq.New(mem.New(1 << 16)))
				got := s.run(fac.New(1, 1<<18))
				return got == want
			}
			cfg := &quick.Config{MaxCount: 25}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSequentialEquivalenceTinyHardware repeats the oracle check with
// a starved hardware model, pushing Part-HTM onto its partitioned and slow
// paths (and HTM-GL onto its lock) for nearly every transaction.
func TestQuickSequentialEquivalenceTinyHardware(t *testing.T) {
	for _, fac := range TinyHardwareFactories() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) {
			f := func(seed int64) bool {
				s := genScript(seed)
				want := s.run(seq.New(mem.New(1 << 16)))
				got := s.run(fac.New(1, 1<<18))
				return got == want
			}
			cfg := &quick.Config{MaxCount: 15}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
