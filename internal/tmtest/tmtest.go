// Package tmtest provides conformance stress tests applied to every
// transactional system in the repository through the tm.System interface:
// atomicity (no lost updates), consistency (invariants preserved across
// partition points), and isolation under capacity- and time-limited
// workloads that force each system onto its fallback machinery.
package tmtest

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/norec"
	"repro/internal/norecrh"
	"repro/internal/ringstm"
	"repro/internal/tm"
)

// Factory constructs a fresh system (with its own memory) for maxThreads
// threads over memWords words of simulated memory.
type Factory struct {
	Name string
	New  func(maxThreads, memWords int) tm.System
}

// testEngineConfig returns a deterministic engine model for conformance
// tests: generous but finite space budgets and no timer so that small test
// transactions never abort for resources unless a test asks for it.
func testEngineConfig() htm.Config {
	cfg := htm.DefaultConfig()
	cfg.Quantum = 0
	cfg.ReadEvictProb = 0
	return cfg
}

// Factories returns one factory per system under test, including the
// Part-HTM variants. Memories are sized up to fit protocol metadata (the
// 1024-entry ring alone occupies 40960 words).
func Factories() []Factory {
	pad := func(f func(n, w int) tm.System) func(n, w int) tm.System {
		return func(n, w int) tm.System {
			if w < 1<<17 {
				w = 1 << 17
			}
			return f(n, w)
		}
	}
	fs := []Factory{
		{"Part-HTM", func(n, w int) tm.System {
			eng := htm.New(mem.New(w), testEngineConfig())
			return core.New(eng, n, core.DefaultConfig())
		}},
		{"Part-HTM-no-fast", func(n, w int) tm.System {
			eng := htm.New(mem.New(w), testEngineConfig())
			cfg := core.DefaultConfig()
			cfg.NoFastPath = true
			return core.New(eng, n, cfg)
		}},
		{"Part-HTM-O", func(n, w int) tm.System {
			eng := htm.New(mem.New(2*w), testEngineConfig())
			cfg := core.DefaultConfig()
			cfg.Opaque = true
			return core.New(eng, n, cfg)
		}},
		{"Part-HTM-end-validation", func(n, w int) tm.System {
			eng := htm.New(mem.New(w), testEngineConfig())
			cfg := core.DefaultConfig()
			cfg.ValidateEverySub = false
			return core.New(eng, n, cfg)
		}},
		{"HTM-GL", func(n, w int) tm.System {
			eng := htm.New(mem.New(w), testEngineConfig())
			return htmgl.New(eng, htmgl.DefaultConfig())
		}},
		{"NOrec", func(n, w int) tm.System {
			return norec.New(mem.New(w), n)
		}},
		{"RingSTM", func(n, w int) tm.System {
			return ringstm.New(mem.New(w), n, 1024)
		}},
		{"NOrecRH", func(n, w int) tm.System {
			eng := htm.New(mem.New(w), testEngineConfig())
			return norecrh.New(eng, n, norecrh.DefaultConfig())
		}},
	}
	for i := range fs {
		fs[i].New = pad(fs[i].New)
	}
	return fs
}

// TinyHardwareFactories builds the HTM-based systems over a starved
// hardware model (4-line write budget, 8-line read budget, 600-cycle
// quantum) so that nearly every generated transaction exceeds some
// resource and exercises the fallback machinery.
func TinyHardwareFactories() []Factory {
	tiny := func() htm.Config {
		cfg := htm.DefaultConfig()
		cfg.WriteSets = 1
		cfg.WriteWays = 64
		cfg.WriteLines = 4
		cfg.ReadLinesSoft = 8
		cfg.ReadLinesHard = 8
		cfg.ReadEvictProb = 0
		cfg.Quantum = 600
		return cfg
	}
	return []Factory{
		{"Part-HTM", func(n, w int) tm.System {
			return core.New(htm.New(mem.New(w), tiny()), n, core.DefaultConfig())
		}},
		{"Part-HTM-O", func(n, w int) tm.System {
			cfg := core.DefaultConfig()
			cfg.Opaque = true
			return core.New(htm.New(mem.New(2*w), tiny()), n, cfg)
		}},
		{"Part-HTM-no-autopart", func(n, w int) tm.System {
			cfg := core.DefaultConfig()
			cfg.AutoPartition = false
			return core.New(htm.New(mem.New(w), tiny()), n, cfg)
		}},
		{"HTM-GL", func(n, w int) tm.System {
			return htmgl.New(htm.New(mem.New(w), tiny()), htmgl.DefaultConfig())
		}},
		{"NOrecRH", func(n, w int) tm.System {
			return norecrh.New(htm.New(mem.New(w), tiny()), n, norecrh.DefaultConfig())
		}},
	}
}

// RunAll runs f once per factory as a subtest.
func RunAll(t *testing.T, f func(t *testing.T, fac Factory)) {
	for _, fac := range Factories() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) { f(t, fac) })
	}
}

// CounterStress checks atomicity: concurrent increments must not be lost.
func CounterStress(t *testing.T, sys tm.System, threads, perThread int) {
	t.Helper()
	a := sys.Memory().Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, func(x tm.Tx) {
					x.Write(a, x.Read(a)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	want := uint64(threads * perThread)
	if got := sys.Memory().Load(a); got != want {
		t.Fatalf("%s: counter = %d, want %d (lost updates)", sys.Name(), got, want)
	}
}

// BankStress checks snapshot consistency: random transfers preserve the
// total balance, and observers always see the invariant hold.
func BankStress(t *testing.T, sys tm.System, threads, perThread, accounts int, pauses bool) {
	t.Helper()
	m := sys.Memory()
	base := m.AllocLines(accounts) // one account per cache line
	const initBalance = 1000
	for i := 0; i < accounts; i++ {
		m.Store(base+mem.Addr(i*mem.LineWords), initBalance)
	}
	acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineWords) }

	var badSnapshots sync.Map
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := uint64(id)*0x9E3779B97F4A7C15 + 7
			next := func() uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return rng >> 33
			}
			for i := 0; i < perThread; i++ {
				if i%4 == 3 {
					// Observer transaction: sum a window of accounts twice
					// with a partition point between; the two sums must
					// agree (the window total is only changed by balanced
					// transfers within it... it is not, transfers cross the
					// window) — so instead check the global invariant over
					// ALL accounts.
					// Body-local accumulator, published once: captured
					// variables must be write-only result slots because the
					// body may rerun on abort (enforced by parthtm-vet).
					var sum uint64
					sys.Atomic(id, func(x tm.Tx) {
						var s uint64
						for k := 0; k < accounts; k++ {
							s += x.Read(acct(k))
							if pauses && k == accounts/2 {
								x.Pause()
							}
						}
						sum = s
					})
					if sum != uint64(accounts*initBalance) {
						badSnapshots.Store(sum, true)
					}
					continue
				}
				from := int(next()) % accounts
				to := int(next()) % accounts
				amt := next() % 10
				sys.Atomic(id, func(x tm.Tx) {
					f := x.Read(acct(from))
					if pauses {
						x.Pause()
					}
					tv := x.Read(acct(to))
					if from != to && f >= amt {
						x.Write(acct(from), f-amt)
						if pauses {
							x.Pause()
						}
						x.Write(acct(to), tv+amt)
					}
				})
			}
		}(w)
	}
	wg.Wait()

	badSnapshots.Range(func(k, _ any) bool {
		t.Errorf("%s: observer saw inconsistent total %v", sys.Name(), k)
		return true
	})
	var total uint64
	for i := 0; i < accounts; i++ {
		total += m.Load(acct(i))
	}
	if total != uint64(accounts*initBalance) {
		t.Fatalf("%s: total balance = %d, want %d", sys.Name(), total, accounts*initBalance)
	}
}

// LargeTxStress drives transactions whose write sets exceed the hardware
// write capacity, forcing every HTM-based system onto its fallback
// (Part-HTM: partitioned path; HTM-GL: global lock). Each transaction
// rotates a block of lines by adding a constant; the per-line invariant is
// that all words in a block stay equal.
func LargeTxStress(t *testing.T, sys tm.System, threads, perThread, linesPerTx int) {
	t.Helper()
	m := sys.Memory()
	blocks := threads // one block per thread is contention-free; overlap below
	base := m.AllocLines(blocks * linesPerTx)
	blockAddr := func(b, l int) mem.Addr {
		return base + mem.Addr((b*linesPerTx+l)*mem.LineWords)
	}
	var mu sync.Mutex
	var committedDivergence bool
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				b := (id + i) % blocks // overlapping access across threads
				var diverged bool
				sys.Atomic(id, func(x tm.Tx) {
					// A doomed attempt of a non-opaque system may observe a
					// half-updated block (that is the anomaly Part-HTM-O
					// exists to remove), so divergence only counts if the
					// final — committed — execution of the body saw it.
					diverged = false
					v := x.Read(blockAddr(b, 0))
					for l := 0; l < linesPerTx; l++ {
						if got := x.Read(blockAddr(b, l)); got != v {
							diverged = true
						}
						x.Write(blockAddr(b, l), v+1)
						if l%8 == 7 {
							x.Pause()
						}
					}
				})
				if diverged {
					mu.Lock()
					committedDivergence = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if committedDivergence {
		t.Fatalf("%s: a committed transaction observed a torn block", sys.Name())
	}
	// Every block's lines must agree after the dust settles.
	for b := 0; b < blocks; b++ {
		v := m.Load(blockAddr(b, 0))
		for l := 1; l < linesPerTx; l++ {
			if got := m.Load(blockAddr(b, l)); got != v {
				t.Fatalf("%s: block %d line %d = %d, want %d", sys.Name(), b, l, got, v)
			}
		}
	}
}

// LongTxStress drives transactions whose Work exceeds the timer quantum,
// forcing time-limited fallback, with Pause points that let Part-HTM keep
// them in hardware pieces.
func LongTxStress(t *testing.T, sys tm.System, threads, perThread int, workPerSeg int64, segs int) {
	t.Helper()
	m := sys.Memory()
	a := m.AllocLines(1)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, func(x tm.Tx) {
					v := x.Read(a)
					for s := 0; s < segs; s++ {
						x.Work(workPerSeg)
						x.Pause()
					}
					x.Write(a, v+1)
				})
			}
		}(w)
	}
	wg.Wait()
	want := uint64(threads * perThread)
	if got := m.Load(a); got != want {
		t.Fatalf("%s: counter = %d, want %d", sys.Name(), got, want)
	}
}
