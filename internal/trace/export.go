package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The output is the classic JSON-object trace
// format ({"traceEvents": [...]}), which both chrome://tracing and
// Perfetto's UI load directly. One track (tid) per worker thread; each
// transaction renders as a nested pair of slices — the outer slice spans
// begin→commit, the inner slices split it per attempt at every abort —
// with instant events for aborts, path transitions, lock traffic, ring
// publication, lemming waits, escalations and degraded-mode edges, and
// flow arrows (ph s/t/f) chaining the retries of one transaction ID.

// ChromeEvent is one entry of the trace-event array. Fields not used by a
// given phase are omitted from the JSON.
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Cat  string            `json:"cat,omitempty"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id,omitempty"` // flow-event binding id
	S    string            `json:"s,omitempty"`  // instant scope (t/p/g)
	BP   string            `json:"bp,omitempty"` // flow binding point
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event document.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// DecodeChrome parses a trace-event document as emitted by WriteChrome.
// Like harness.DecodeResultSet it is a strict inverse: unknown fields and
// trailing data are rejected, and malformed input yields an error, never
// a panic.
func DecodeChrome(data []byte) (*ChromeTrace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tr ChromeTrace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding trace: trailing data after the document")
	}
	return &tr, nil
}

const chromePID = 1

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// exporter accumulates the trace-event array for one sink.
type exporter struct {
	out []ChromeEvent
}

func (x *exporter) add(e ChromeEvent) {
	e.PID = chromePID
	x.out = append(x.out, e)
}

func (x *exporter) instant(ts int64, tid int, name string, args map[string]string) {
	x.add(ChromeEvent{Name: name, Ph: "i", TS: usec(ts), TID: tid, S: "t", Args: args})
}

// openTx is the per-thread reconstruction state for the transaction
// currently being replayed from the ring.
type openTx struct {
	id       uint64
	beginTS  int64
	attempTS int64 // start of the current attempt (begin or last abort)
	attempt  int
	flowed   bool // a flow-start has been emitted for this id
	open     bool
}

func flowID(id uint64) string { return fmt.Sprintf("0x%x", id) }

// thread replays one buffer's events (already in recording order) into
// trace events. Ring overwrite means the stream may open mid-transaction
// (a commit whose begin was dropped) or end mid-transaction (an in-flight
// begin with no commit); both degrade to instants instead of slices.
func (x *exporter) thread(tid int, evs []Event) {
	var tx openTx
	for _, e := range evs {
		switch e.Kind {
		case EvBegin:
			tx = openTx{id: e.ID, beginTS: e.TS, attempTS: e.TS, open: true}
			x.instant(e.TS, tid, "begin", map[string]string{"tx": flowID(e.ID)})
		case EvHWAbort, EvSWAbort:
			args := map[string]string{"cause": CauseName(e.Cause)}
			x.instant(e.TS, tid, e.Kind.String(), args)
			if tx.open && e.ID == tx.id {
				x.add(ChromeEvent{
					Name: fmt.Sprintf("attempt %d (%s:%s)", tx.attempt, e.Kind, CauseName(e.Cause)),
					Ph:   "X", Cat: "attempt",
					TS: usec(tx.attempTS), Dur: usec(e.TS - tx.attempTS), TID: tid,
				})
				ph := "t"
				if !tx.flowed {
					ph = "s"
					tx.flowed = true
				}
				x.add(ChromeEvent{Name: "retry", Ph: ph, Cat: "retry",
					TS: usec(e.TS), TID: tid, ID: flowID(tx.id)})
				tx.attempTS = e.TS
				tx.attempt++
			}
		case EvCommit:
			path := PathName(e.Path)
			if tx.open && e.ID == tx.id {
				x.add(ChromeEvent{
					Name: fmt.Sprintf("attempt %d (commit:%s)", tx.attempt, path),
					Ph:   "X", Cat: "attempt",
					TS: usec(tx.attempTS), Dur: usec(e.TS - tx.attempTS), TID: tid,
				})
				x.add(ChromeEvent{
					Name: "tx " + path, Ph: "X", Cat: "tx",
					TS: usec(tx.beginTS), Dur: usec(e.TS - tx.beginTS), TID: tid,
					Args: map[string]string{"tx": flowID(tx.id), "path": path,
						"attempts": fmt.Sprintf("%d", tx.attempt+1)},
				})
				if tx.flowed {
					x.add(ChromeEvent{Name: "retry", Ph: "f", Cat: "retry", BP: "e",
						TS: usec(e.TS), TID: tid, ID: flowID(tx.id)})
				}
			} else {
				x.instant(e.TS, tid, "commit "+path, map[string]string{"tx": flowID(e.ID)})
			}
			tx = openTx{}
		case EvEscalate:
			x.instant(e.TS, tid, e.Kind.String(), map[string]string{"kind": escalateName(e.Arg)})
		case EvLemmingExit:
			args := map[string]string{"expired": "false"}
			if e.Arg != 0 {
				args["expired"] = "true"
			}
			x.instant(e.TS, tid, e.Kind.String(), args)
		default:
			x.instant(e.TS, tid, e.Kind.String(), nil)
		}
	}
}

func escalateName(arg uint64) string {
	switch arg {
	case 0:
		return "budget"
	case 1:
		return "starve"
	case 2:
		return "lemming"
	}
	return fmt.Sprintf("kind(%d)", arg)
}

// WriteChrome emits the sink's events as a trace-event JSON document.
// Call after the recording workers have quiesced.
func WriteChrome(w io.Writer, s *Sink) error {
	x := &exporter{}
	x.add(ChromeEvent{Name: "process_name", Ph: "M",
		Args: map[string]string{"name": "parthtm"}})
	for _, b := range s.buffers() {
		tid := b.Thread()
		x.add(ChromeEvent{Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]string{"name": fmt.Sprintf("worker-%d", tid)}})
		x.thread(tid, b.Events(nil))
	}
	for _, m := range s.Marks() {
		x.add(ChromeEvent{Name: m.Label, Ph: "i", TS: usec(m.TS), S: "p"})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&ChromeTrace{TraceEvents: x.out, DisplayTimeUnit: "ns"})
}

// WriteText dumps the sink's events as one line per event, globally
// ordered by timestamp, for grepping and quick inspection.
func WriteText(w io.Writer, s *Sink) error {
	marks := s.Marks()
	mi := 0
	for _, e := range s.Events() {
		for mi < len(marks) && marks[mi].TS <= e.TS {
			if _, err := fmt.Fprintf(w, "%12d --- mark %q\n", marks[mi].TS, marks[mi].Label); err != nil {
				return err
			}
			mi++
		}
		if err := writeTextEvent(w, e); err != nil {
			return err
		}
	}
	for ; mi < len(marks); mi++ {
		if _, err := fmt.Fprintf(w, "%12d --- mark %q\n", marks[mi].TS, marks[mi].Label); err != nil {
			return err
		}
	}
	if d := s.Dropped(); d != 0 {
		if _, err := fmt.Fprintf(w, "# %d events overwritten by ring wrap\n", d); err != nil {
			return err
		}
	}
	return nil
}

func writeTextEvent(w io.Writer, e Event) error {
	var err error
	switch e.Kind {
	case EvHWAbort, EvSWAbort:
		_, err = fmt.Fprintf(w, "%12d t%02d %-16s tx=%#x cause=%s\n",
			e.TS, e.Thread, e.Kind, e.ID, CauseName(e.Cause))
	case EvCommit:
		_, err = fmt.Fprintf(w, "%12d t%02d %-16s tx=%#x path=%s\n",
			e.TS, e.Thread, e.Kind, e.ID, PathName(e.Path))
	case EvEscalate:
		_, err = fmt.Fprintf(w, "%12d t%02d %-16s tx=%#x kind=%s\n",
			e.TS, e.Thread, e.Kind, e.ID, escalateName(e.Arg))
	default:
		if e.Arg != 0 {
			_, err = fmt.Fprintf(w, "%12d t%02d %-16s tx=%#x arg=%d\n",
				e.TS, e.Thread, e.Kind, e.ID, e.Arg)
		} else {
			_, err = fmt.Fprintf(w, "%12d t%02d %-16s tx=%#x\n",
				e.TS, e.Thread, e.Kind, e.ID)
		}
	}
	return err
}
