package trace

import (
	"sync"
	"testing"
)

func TestNilSinkAndBufferAreNoOps(t *testing.T) {
	var s *Sink
	if s.Thread(3) != nil || s.Lat(3) != nil {
		t.Fatal("nil sink must hand out nil shards")
	}
	s.Mark("ignored")
	if s.Marks() != nil || s.Events() != nil || s.Dropped() != 0 {
		t.Fatal("nil sink accessors must return zero values")
	}

	var b *Buffer
	b.Record(1, EvBegin, 1, 0, 0, 0)
	b.RecordMark(1, EvDegEnter, 0)
	if b.Len() != 0 || b.Cap() != 0 || b.Dropped() != 0 || b.Thread() != 0 {
		t.Fatal("nil buffer accessors must return zeros")
	}
	if got := b.Events(nil); got != nil {
		t.Fatal("nil buffer Events must pass out unchanged")
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	s := NewSink(8)
	b := s.Thread(0)
	if b.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", b.Cap())
	}
	for i := int64(1); i <= 20; i++ {
		b.Record(i, EvBegin, uint64(i), 0, 0, 0)
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
	if b.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", b.Dropped())
	}
	ev := b.Events(nil)
	if len(ev) != 8 {
		t.Fatalf("Events len = %d, want 8", len(ev))
	}
	for i, e := range ev {
		if want := int64(13 + i); e.TS != want {
			t.Fatalf("event %d TS = %d, want %d (ring must keep newest)", i, e.TS, want)
		}
	}
}

func TestSinkCapRounding(t *testing.T) {
	if got := NewSink(0).Thread(0).Cap(); got != DefaultCap {
		t.Errorf("cap(0) = %d, want DefaultCap %d", got, DefaultCap)
	}
	if got := NewSink(100).Thread(0).Cap(); got != 128 {
		t.Errorf("cap(100) = %d, want 128", got)
	}
	if got := NewSink(64).Thread(0).Cap(); got != 64 {
		t.Errorf("cap(64) = %d, want 64", got)
	}
}

func TestSinkThreadGrowthStable(t *testing.T) {
	s := NewSink(16)
	b3 := s.Thread(3)
	if b3.Thread() != 3 {
		t.Fatalf("thread id = %d, want 3", b3.Thread())
	}
	b0 := s.Thread(0)
	if s.Thread(3) != b3 || s.Thread(0) != b0 {
		t.Fatal("growth must preserve existing buffer identity")
	}
	l2 := s.Lat(2)
	if s.Lat(5) == nil || s.Lat(2) != l2 {
		t.Fatal("latency shard growth must preserve identity")
	}
}

func TestSinkConcurrentGrowth(t *testing.T) {
	s := NewSink(16)
	const n = 16
	bufs := make([]*Buffer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			b := s.Thread(id)
			l := s.Lat(id)
			for j := 0; j < 100; j++ {
				b.Record(Now(), EvBegin, uint64(j), 0, 0, 0)
				l.Path[PathHTM].Add(int64(j))
			}
			bufs[id] = b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if s.Thread(i) != bufs[i] {
			t.Fatalf("thread %d buffer identity changed after concurrent growth", i)
		}
		if s.Thread(i).Len() != 16 {
			t.Fatalf("thread %d Len = %d, want full ring", i, s.Thread(i).Len())
		}
	}
	snap := s.Latency()
	if snap.Path[PathHTM].Count != n*100 {
		t.Fatalf("latency count = %d, want %d", snap.Path[PathHTM].Count, n*100)
	}
}

func TestEventsGloballySorted(t *testing.T) {
	s := NewSink(16)
	s.Thread(1).Record(30, EvBegin, 1, 0, 0, 0)
	s.Thread(0).Record(10, EvBegin, 2, 0, 0, 0)
	s.Thread(1).Record(50, EvCommit, 1, 0, 0, PathHTM)
	s.Thread(0).Record(20, EvCommit, 2, 0, 0, PathSW)
	s.Thread(2).Record(20, EvBegin, 3, 0, 0, 0)
	ev := s.Events()
	if len(ev) != 5 {
		t.Fatalf("Events len = %d, want 5", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("events out of order at %d: %d after %d", i, ev[i].TS, ev[i-1].TS)
		}
		if ev[i].TS == ev[i-1].TS && ev[i].Thread < ev[i-1].Thread {
			t.Fatalf("tie at ts=%d not broken by thread", ev[i].TS)
		}
	}
}

func TestLatencySnapshotAndReset(t *testing.T) {
	s := NewSink(16)
	l := s.Lat(0)
	for i := 0; i < 100; i++ {
		l.Path[PathHTM].Add(1000)
		l.Abort[CauseConflict].Add(50)
	}
	l2 := s.Lat(1)
	for i := 0; i < 100; i++ {
		l2.Path[PathHTM].Add(3000)
	}
	snap := s.Latency()
	if snap.Path[PathHTM].Count != 200 {
		t.Fatalf("merged path count = %d, want 200", snap.Path[PathHTM].Count)
	}
	if snap.Path[PathHTM].P50 < 900 || snap.Path[PathHTM].P50 > 1100 {
		t.Errorf("p50 = %d, want ~1000", snap.Path[PathHTM].P50)
	}
	if snap.Path[PathHTM].P99 < 2800 || snap.Path[PathHTM].P99 > 3200 {
		t.Errorf("p99 = %d, want ~3000", snap.Path[PathHTM].P99)
	}
	if snap.Abort[CauseConflict].Count != 100 {
		t.Fatalf("abort count = %d, want 100", snap.Abort[CauseConflict].Count)
	}
	if snap.Path[PathGL].Count != 0 {
		t.Fatal("untouched path must stay empty")
	}
	s.ResetLatency()
	snap = s.Latency()
	if snap.Path[PathHTM].Count != 0 || snap.Abort[CauseConflict].Count != 0 {
		t.Fatal("ResetLatency must zero every shard")
	}
}

func TestKindAndEnumNames(t *testing.T) {
	seen := map[string]bool{}
	for k := EvNone; k < kindCount; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Error("out-of-range kind must format numerically")
	}
	if PathName(PathHTM) != "htm" || PathName(PathSW) != "sw" || PathName(PathGL) != "gl" {
		t.Error("path names changed; exporter and result tables depend on them")
	}
	if CauseName(CauseConflict) != "conflict" || CauseName(CauseCapacity) != "capacity" ||
		CauseName(CauseExplicit) != "explicit" || CauseName(CauseOther) != "other" {
		t.Error("cause names changed; exporter depends on them")
	}
	if PathName(9) == "" || CauseName(9) == "" {
		t.Error("out-of-range path/cause must format numerically")
	}
}

func TestMarks(t *testing.T) {
	s := NewSink(16)
	s.Mark("a")
	s.Mark("b")
	m := s.Marks()
	if len(m) != 2 || m[0].Label != "a" || m[1].Label != "b" {
		t.Fatalf("marks = %+v", m)
	}
	if m[1].TS < m[0].TS {
		t.Fatal("mark timestamps must be monotone")
	}
	m[0].Label = "mutated"
	if s.Marks()[0].Label != "a" {
		t.Fatal("Marks must return a copy")
	}
}

// BenchmarkRecord pins the hot-path cost and, more importantly, proves
// recording is allocation-free.
func BenchmarkRecord(b *testing.B) {
	s := NewSink(1 << 12)
	buf := s.Thread(0)
	ts := Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Record(ts, EvBegin, uint64(i), 0, 0, 0)
	}
	if testing.AllocsPerRun(1000, func() {
		buf.Record(ts, EvCommit, 1, 0, 0, PathHTM)
	}) != 0 {
		b.Fatal("Record must not allocate")
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var buf *Buffer
	ts := Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(ts, EvBegin, uint64(i), 0, 0, 0)
	}
}
