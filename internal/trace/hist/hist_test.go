package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// quantileOracle returns the ceil(q*n)-th smallest element of sorted —
// the exact value the histogram's Quantile approximates.
func quantileOracle(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// withinBucketError checks got against want under the documented bound:
// exact below subCount, ~2^-(subBits+1) relative above (we allow the full
// bucket width to absorb oracle-vs-representative skew at boundaries).
func withinBucketError(got, want int64) bool {
	if want < subCount {
		return got == want
	}
	slack := want >> (subBits - 1) // one full bucket width plus margin
	if slack < 1 {
		slack = 1
	}
	return got >= want-slack && got <= want+slack
}

func TestQuantileAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(100) },
		"uniform-large": func() int64 { return rng.Int63n(50_000_000) },
		"exponentialish": func() int64 {
			return int64(1) << uint(rng.Intn(30)) // spans many octaves
		},
		"latency-like": func() int64 { return 200 + rng.Int63n(5000)*rng.Int63n(100) },
	}
	qs := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for name, gen := range dists {
		var h Histogram
		vals := make([]int64, 20_000)
		for i := range vals {
			vals[i] = gen()
			h.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range qs {
			want := quantileOracle(vals, q)
			got := h.Quantile(q)
			if !withinBucketError(got, want) {
				t.Errorf("%s: Quantile(%g) = %d, oracle %d (outside bucket error)", name, q, got, want)
			}
		}
		if h.Count() != uint64(len(vals)) {
			t.Errorf("%s: Count = %d, want %d", name, h.Count(), len(vals))
		}
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		if mean := h.Mean(); mean != sum/float64(len(vals)) {
			t.Errorf("%s: Mean = %g, want exact %g", name, mean, sum/float64(len(vals)))
		}
		if !withinBucketError(h.Max(), vals[len(vals)-1]) {
			t.Errorf("%s: Max = %d, want ~%d", name, h.Max(), vals[len(vals)-1])
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(7)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%g) on single value = %d, want 7", q, got)
		}
	}
	h.Add(-100) // clamps to 0
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) after negative add = %d, want 0", got)
	}

	var nilH *Histogram
	nilH.Add(1) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 || nilH.Max() != 0 {
		t.Error("nil histogram accessors must return zeros")
	}
	nilH.Merge(&h)
	nilH.Reset()
}

func TestBucketLayout(t *testing.T) {
	// Every value maps into a bucket whose [low, nextLow) range contains it,
	// and bucket bounds are monotone.
	for i := 1; i < nBuckets; i++ {
		if bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucketLow not strictly increasing at %d: %d <= %d",
				i, bucketLow(i), bucketLow(i-1))
		}
	}
	probe := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<20 + 12345, 1<<40 - 1}
	for _, v := range probe {
		i := bucketOf(v)
		lo := bucketLow(i)
		hi := int64(1) << 62
		if i+1 < nBuckets {
			hi = bucketLow(i + 1)
		}
		if v < lo || v >= hi {
			t.Errorf("bucketOf(%d) = %d with range [%d, %d)", v, i, lo, hi)
		}
	}
	// Values beyond the supported exponent clamp into the last bucket.
	if bucketOf(1<<41) != nBuckets-1 || bucketOf(1<<62) != nBuckets-1 {
		t.Error("oversized values must clamp to the final bucket")
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = new(Histogram)
		for j := 0; j < 5000; j++ {
			shards[i].Add(rng.Int63n(1_000_000))
		}
	}

	// (((a+b)+c)+d) vs (a+(b+(c+d))) vs pairwise tree — all must agree.
	var left Histogram
	for _, s := range shards {
		left.Merge(s)
	}
	var right Histogram
	for i := len(shards) - 1; i >= 0; i-- {
		right.Merge(shards[i])
	}
	var ab, cd, tree Histogram
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	cd.Merge(shards[2])
	cd.Merge(shards[3])
	tree.Merge(&ab)
	tree.Merge(&cd)

	for _, other := range []*Histogram{&right, &tree} {
		if left.Count() != other.Count() || left.Mean() != other.Mean() {
			t.Fatal("merge groupings disagree on count/mean")
		}
		for i := range left.counts {
			if left.counts[i].Load() != other.counts[i].Load() {
				t.Fatalf("merge groupings disagree at bucket %d", i)
			}
		}
	}
	if left.Count() != 4*5000 {
		t.Fatalf("merged count = %d, want %d", left.Count(), 4*5000)
	}
}

func TestResetEmpties(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Add(i * i)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("Reset must empty the histogram")
	}
}

// TestConcurrentSingleWriter hammers the single-writer discipline under
// -race: one writer goroutine per shard records while a reader merges and
// queries concurrently. The race detector validates the memory model; the
// final merged count validates no update was lost.
func TestConcurrentSingleWriter(t *testing.T) {
	const writers = 4
	const perWriter = 20_000
	shards := make([]*Histogram, writers)
	for i := range shards {
		shards[i] = new(Histogram)
	}

	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader: merge + quantile while writes fly
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var m Histogram
			for _, s := range shards {
				m.Merge(s)
			}
			_ = m.Quantile(0.99)
			_ = m.Mean()
		}
	}()

	var writersDone sync.WaitGroup
	for i := 0; i < writers; i++ {
		writersDone.Add(1)
		go func(h *Histogram, seed int64) {
			defer writersDone.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perWriter; j++ {
				h.Add(rng.Int63n(1 << 20))
			}
		}(shards[i], int64(i))
	}
	writersDone.Wait()
	close(stop)
	readerDone.Wait()

	var m Histogram
	for _, s := range shards {
		m.Merge(s)
	}
	if m.Count() != writers*perWriter {
		t.Fatalf("merged count = %d, want %d (single-writer updates lost)", m.Count(), writers*perWriter)
	}
}
